// Controlflow: the "standard jump instructions" of the paper's processor
// class, end to end.  The brancher model adds a comparator, a 1-bit flag
// register and a next-PC multiplexer to the accumulator machine;
// instruction-set extraction turns the multiplexer into jump RT templates
// (the conditional ones carrying dynamic flag guards), and internal/cflow
// compiles genuine runtime loops against them — no unrolling.
//
//	go run ./examples/controlflow
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cflow"
	"repro/internal/cfront"
	"repro/internal/core"
	"repro/internal/models"
)

const program = `
int n = 27;
int steps;
int peak;

void main() {
  steps = 0;
  peak = n;
  while (n != 1) {
    if ((n & 1) == 1) { n = 3*n + 1; }
    else { n = n >> 1; }
    if (n > peak) { peak = n; }
    steps = steps + 1;
  }
}
`

func main() {
	target, err := core.RetargetContext(context.Background(), models.BrancherMDL, core.RetargetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retargeted to %s: %d templates\n", target.Name, target.Stats.Templates)

	// Show the extracted jump templates.
	fmt.Println("\nPC-destination RT templates found by instruction-set extraction:")
	for _, tpl := range target.Base.Templates {
		if tpl.Dest == "pc.r" {
			fmt.Printf("  %s\n", tpl)
		}
	}

	prog, err := cfront.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cflow.Compile(target, prog, cflow.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled Collatz(27) with real branches: %d words, %d basic blocks\n",
		res.Code.Len(), len(res.CFG.Blocks))
	fmt.Print(target.Encoder.Listing(res.Code))

	if err := cflow.CheckAgainstOracle(target, res, cflow.Options{}); err != nil {
		log.Fatal(err)
	}
	env, err := cflow.Execute(target, res, cflow.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated on the netlist (oracle-checked): steps = %d, peak = %d\n",
		env["steps"][0], env["peak"][0])
	fmt.Println("(the trip count is data-dependent — this cannot be unrolled at compile time)")
}
