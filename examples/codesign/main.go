// Codesign: the paper's motivating use case — because retargeting takes
// seconds rather than compiler-engineering months, you can explore the
// HW/SW trade-off between processor architectures and program execution
// speed.  This example compiles the same DSP kernel for every bundled
// processor model and compares code size (≈ cycle count for these
// single-cycle machines) and retargeting effort.
//
//	go run ./examples/codesign
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/models"
)

// The workload: a small sum-of-products filter — the bread and butter of
// the DSP-domain ASIPs the paper targets.
const kernel = `
int x[4] = {10, 20, 30, 40};
int h[4] = {1, 2, 3, 4};
int y;

void main() {
  y = 0;
  for (i = 0; i < 4; i++) {
    y = y + h[i] * x[i];
  }
}
`

func main() {
	fmt.Println("HW/SW codesign exploration: one kernel, six architectures")
	fmt.Println()
	fmt.Printf("%-12s %10s %12s %8s %8s %10s\n",
		"processor", "templates", "retarget", "RTs", "words", "vs best")
	fmt.Println(strings.Repeat("-", 66))

	type row struct {
		name  string
		words int
	}
	var rows []row
	best := 1 << 30
	for _, e := range models.All() {
		target, err := core.RetargetContext(context.Background(), e.MDL, core.RetargetOptions{})
		if err != nil {
			log.Fatalf("%s: %v", e.Name, err)
		}
		res, err := target.CompileSourceContext(context.Background(), kernel, core.CompileOptions{})
		if err != nil {
			// An architecture that cannot run the kernel is itself a
			// codesign data point.
			fmt.Printf("%-12s %10d %12v %8s %8s %10s\n",
				e.Name, target.Stats.Templates, target.Stats.Total, "-", "-",
				"cannot run kernel")
			continue
		}
		if err := target.CheckAgainstOracle(res); err != nil {
			log.Fatalf("%s: wrong code: %v", e.Name, err)
		}
		fmt.Printf("%-12s %10d %12v %8d %8d",
			e.Name, target.Stats.Templates, target.Stats.Total,
			res.SeqLen(), res.CodeLen())
		fmt.Println()
		rows = append(rows, row{e.Name, res.CodeLen()})
		if res.CodeLen() < best {
			best = res.CodeLen()
		}
	}

	fmt.Println()
	fmt.Println("relative execution time (best = 1.00):")
	for _, r := range rows {
		fmt.Printf("  %-12s %5.2fx", r.name, float64(r.words)/float64(best))
		fmt.Printf("  %s\n", strings.Repeat("#", r.words/2+1))
	}
	fmt.Println()
	fmt.Println("Reading the chart: the dual-memory DSP (tms320c25) and the wide")
	fmt.Println("synthetic machines pipeline the multiply-accumulate into few words,")
	fmt.Println("while the bus-based educational machines serialize every transfer —")
	fmt.Println("exactly the architecture/speed trade-off the paper's short")
	fmt.Println("retargeting times let a designer measure instead of guess.")
}
