// Dspkernel: compile a DSPStone FIR filter for the TMS320C25-style DSP
// model, show how tree parsing selects chained multiply-accumulate RTs and
// how compaction software-pipelines them into the dual-memory MAC, then
// run the filter on the simulated netlist.
//
//	go run ./examples/dspkernel
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dspstone"
	"repro/internal/models"
	"repro/internal/naive"
)

func main() {
	mdl, _ := models.Get("tms320c25")
	target, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retargeted to %s: %d templates, %v\n\n",
		target.Name, target.Stats.Templates, target.Stats.Total)

	kernel, _ := dspstone.Get("fir")
	fmt.Printf("kernel %s (N=%d), hand-written reference: %d words\n\n",
		kernel.Name, kernel.N, kernel.HandWords)

	res, err := target.CompileSourceContext(context.Background(), kernel.Source, core.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := target.CheckAgainstOracle(res); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("selected RT code (%d instructions after peephole; %d loads and %d stores eliminated):\n",
		res.SeqLen(), res.Opt.LoadsRemoved, res.Opt.StoresRemoved)
	fmt.Print(res.Seq)

	fmt.Printf("\ncompacted to %d words (%.0f%% of hand-written):\n",
		res.CodeLen(), 100*float64(res.CodeLen())/float64(kernel.HandWords))
	fmt.Print(target.Listing(res))

	// Show the MAC software pipeline: words executing ALU, multiplier and
	// T-load in parallel.
	parallel := 0
	for _, w := range res.Code.Words {
		if len(w.Instrs) >= 2 {
			parallel++
		}
	}
	fmt.Printf("\n%d of %d words execute more than one RT in parallel\n",
		parallel, res.CodeLen())

	// Compare with the naive macro-expansion baseline.
	nv, err := naive.CompileSource(target, kernel.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive baseline needs %d words (%.0f%% of hand-written)\n\n",
		nv.CodeLen(), 100*float64(nv.CodeLen())/float64(kernel.HandWords))

	env, err := target.Execute(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated filter output: y = %d, shifted delay line x = %v\n",
		env["y"][0], env["x"])
}
