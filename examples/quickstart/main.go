// Quickstart: retarget the compiler to a processor you describe in a few
// lines of HDL, compile a C-subset program for it, and run the result on
// the cycle-accurate netlist simulator.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
)

// A complete processor model: a 16-bit accumulator machine with an ALU,
// one data memory and an immediate path, plus program counter and
// instruction ROM.  This is all the compiler needs — the instruction set
// is *extracted* from the structure, never written down by hand.
const processor = `
PROCESSOR quickstart;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN b: WORD; IN op: 3; OUT y: WORD);
BEGIN
  y <- CASE op OF
         0: a + b;
         1: a - b;
         2: a & b;
         3: a | b;
         4: a ^ b;
         5: b;
         6: a * b;
         7: -b;
       END;
END;

MODULE BMux (IN m: WORD; IN imm: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: m; 1: imm; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE Rom (IN a: 8; OUT q: 32);
VAR m: 32 [256];
BEGIN q <- m[a]; END;

MODULE Inc (IN a: 8; OUT y: 8);
BEGIN y <- a + 1; END;

MODULE PcReg (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; r <- d; END;

PARTS
  alu  : Alu;
  bmux : BMux;
  acc  : Reg;
  ram  : Ram;
  imem : Rom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc;

CONNECT
  alu.a    <- acc.q;
  alu.b    <- bmux.y;
  alu.op   <- imem.q[31:29];
  bmux.m   <- ram.q;
  bmux.imm <- imem.q[15:0];
  bmux.s   <- imem.q[28];
  acc.d    <- alu.y;
  acc.ld   <- imem.q[27];
  ram.a    <- imem.q[7:0];
  ram.d    <- acc.q;
  ram.w    <- imem.q[26];
  imem.a   <- pc.q;
  pinc.a   <- pc.q;
  pc.d     <- pinc.y;
END.
`

// A program in RecC, the C subset the compiler accepts.
const program = `
int a = 6;
int b = 7;
int sum;
int prod;
int mix;

void main() {
  sum  = a + b;
  prod = a * b;
  mix  = (sum ^ prod) & 255;
}
`

func main() {
	// 1. Retarget: HDL model -> netlist -> instruction-set extraction ->
	//    tree grammar -> code selector.
	target, err := core.RetargetContext(context.Background(), processor, core.RetargetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retargeted to %q in %v: %d RT templates extracted, %d after extension\n\n",
		target.Name, target.Stats.Total, target.Stats.Extracted, target.Stats.Templates)

	// 2. Compile.
	res, err := target.CompileSourceContext(context.Background(), program, core.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d RT instructions packed into %d instruction words\n\n",
		res.SeqLen(), res.CodeLen())
	fmt.Print(target.Listing(res))

	// 3. Execute on the netlist simulator and cross-check against the IR
	//    interpreter oracle.
	if err := target.CheckAgainstOracle(res); err != nil {
		log.Fatal(err)
	}
	env, err := target.Execute(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated on the netlist (oracle-checked):\n")
	fmt.Printf("  sum  = %d\n  prod = %d\n  mix  = %d\n",
		env["sum"][0], env["prod"][0], env["mix"][0])
}
