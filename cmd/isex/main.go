// Command isex runs instruction-set extraction on an HDL processor model
// and dumps the RT template base, the constructed tree grammar, or the
// generated parser source.
//
// Usage:
//
//	isex -model tms320c25 -templates
//	isex -mdl processor.mdl -grammar
//	isex -model demo -parser > demo_parser.go
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/burs"
	"repro/internal/core"
	"repro/internal/models"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "isex:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelName   = flag.String("model", "", "bundled processor model name")
		mdlFile     = flag.String("mdl", "", "MDL processor model file")
		templates   = flag.Bool("templates", false, "dump the RT template base")
		grammarDump = flag.Bool("grammar", false, "dump the tree grammar")
		parserSrc   = flag.Bool("parser", false, "emit the generated parser as Go source")
		conditions  = flag.Bool("conditions", false, "include execution conditions with templates")
		noExtension = flag.Bool("no-extension", false, "skip template-base extension")
	)
	flag.Parse()

	var mdl string
	switch {
	case *modelName != "":
		var ok bool
		mdl, ok = models.Get(*modelName)
		if !ok {
			return fmt.Errorf("unknown model %q", *modelName)
		}
	case *mdlFile != "":
		b, err := os.ReadFile(*mdlFile)
		if err != nil {
			return err
		}
		mdl = string(b)
	default:
		return fmt.Errorf("no processor model: use -model or -mdl")
	}

	target, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{NoExtension: *noExtension})
	if err != nil {
		return err
	}

	s := target.Stats
	fmt.Printf("processor %s: %d extracted RT templates, %d after extension\n",
		target.Name, s.Extracted, s.Templates)
	fmt.Printf("retargeting time %v (frontend %v, ISE %v, extension %v, grammar %v, parser %v)\n",
		s.Total, s.Frontend, s.ISE, s.Extension, s.Grammar, s.ParserGen)
	fmt.Printf("grammar: %d nonterminals, %d terminals, %d start + %d RT + %d stop rules (%d chain)\n",
		s.GrammarSz.Nonterminals, s.GrammarSz.Terminals, s.GrammarSz.StartRules,
		s.GrammarSz.RTRules, s.GrammarSz.StopRules, s.GrammarSz.ChainRules)

	if *templates {
		fmt.Println("\nRT template base:")
		for _, t := range target.Base.Templates {
			fmt.Printf("%4d: %s", t.ID, t)
			if t.Synthetic {
				fmt.Print("  [synthetic]")
			}
			if *conditions {
				fmt.Printf("\n      cond: %s", target.ISE.Vars.M.String(t.Cond.Static))
			}
			fmt.Println()
		}
	}
	if *grammarDump {
		fmt.Println("\ntree grammar:")
		fmt.Print(target.Grammar.String())
	}
	if *parserSrc {
		fmt.Println(burs.EmitGo(target.Grammar, "generatedparser"))
	}
	return nil
}
