// Command rtsim compiles a RecC program for a processor model, executes it
// on the cycle-accurate netlist simulator, cross-checks the result against
// the IR interpreter oracle, and dumps the final variable values.
//
// Usage:
//
//	rtsim -model tms320c25 -src program.c
//	rtsim -model tms320c25 -kernel fir -trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dspstone"
	"repro/internal/models"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rtsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelName  = flag.String("model", "", "bundled processor model name")
		mdlFile    = flag.String("mdl", "", "MDL processor model file")
		srcFile    = flag.String("src", "", "RecC source file")
		kernelName = flag.String("kernel", "", "bundled DSPStone kernel")
		trace      = flag.Bool("trace", false, "print the PC and register state per cycle")
	)
	flag.Parse()

	var mdl string
	switch {
	case *modelName != "":
		var ok bool
		mdl, ok = models.Get(*modelName)
		if !ok {
			return fmt.Errorf("unknown model %q", *modelName)
		}
	case *mdlFile != "":
		b, err := os.ReadFile(*mdlFile)
		if err != nil {
			return err
		}
		mdl = string(b)
	default:
		return fmt.Errorf("no processor model: use -model or -mdl")
	}

	var src string
	switch {
	case *kernelName != "":
		k, ok := dspstone.Get(*kernelName)
		if !ok {
			return fmt.Errorf("unknown kernel %q", *kernelName)
		}
		src = k.Source
	case *srcFile != "":
		b, err := os.ReadFile(*srcFile)
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("no source: use -src or -kernel")
	}

	target, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		return err
	}
	res, err := target.CompileSourceContext(context.Background(), src, core.CompileOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("compiled for %s: %d RTs, %d words\n", target.Name, res.SeqLen(), res.CodeLen())

	if *trace {
		if err := traceRun(target, res); err != nil {
			return err
		}
	}

	if err := target.CheckAgainstOracle(res); err != nil {
		return fmt.Errorf("simulation disagrees with the IR oracle: %w", err)
	}
	env, err := target.Execute(res)
	if err != nil {
		return err
	}
	fmt.Println("final variable values (oracle-checked):")
	names := make([]string, 0, len(env))
	for n := range env {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-12s %v\n", n, env[n])
	}
	return nil
}

func traceRun(target *core.Target, res *core.CompileResult) error {
	s := sim.New(target.Net)
	for storage, img := range res.Binding.InitialImages(res.Program) {
		if err := s.SetMemory(storage, img); err != nil {
			return err
		}
	}
	words := res.Words()
	if err := s.LoadProgram(words); err != nil {
		return err
	}
	// Registers to display: every single-cell data storage.
	var regs []string
	for _, st := range target.Net.DataStorages() {
		if st.Size() == 1 {
			regs = append(regs, st.QName())
		}
	}
	sort.Strings(regs)
	for cycle := 0; cycle < len(words); cycle++ {
		fmt.Printf("cycle %3d  pc=%-4d", cycle, s.PC())
		for _, r := range regs {
			fmt.Printf("  %s=%d", r, s.Mem[r][0])
		}
		fmt.Println()
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}
