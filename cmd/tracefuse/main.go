// Command tracefuse merges span dumps from a recordd fleet into one
// cross-process Chrome trace.
//
// Each argument is either a node base URL (its /v1/debug/spans is
// fetched) or a path to a JSON file holding a previously saved dump.
// Spans join by trace ID, clocks align via request/response span-pair
// skew estimation, and every node gets its own pid lane named by its
// node identity — load the output in chrome://tracing or Perfetto to
// see one compile cross the whole fleet.
//
//	tracefuse -out fused.json http://n1:8347 http://n2:8347 http://n3:8347
//	tracefuse -trace 0123...ef -out fused.json http://n1:8347 http://n2:8347
//
// Flags:
//
//	-out file    output path (default fused-trace.json)
//	-trace id    keep only the given trace ID (32 hex digits)
//	-timeout d   total fetch budget (default 10s)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/tracefuse"
)

func main() {
	out := flag.String("out", "fused-trace.json", "output path for the merged Chrome trace")
	trace := flag.String("trace", "", "keep only this trace ID (32 hex digits)")
	timeout := flag.Duration("timeout", 10*time.Second, "total fetch budget")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tracefuse: no endpoints or dump files (usage: tracefuse [flags] url|file ...)")
		os.Exit(2)
	}
	if err := run(flag.Args(), *out, *trace, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "tracefuse: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out, trace string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	var dumps []obs.SpanDump
	var urls []string
	for _, a := range args {
		if strings.HasPrefix(a, "http://") || strings.HasPrefix(a, "https://") {
			urls = append(urls, strings.TrimRight(a, "/"))
			continue
		}
		data, err := os.ReadFile(a)
		if err != nil {
			return err
		}
		var d obs.SpanDump
		if err := json.Unmarshal(data, &d); err != nil {
			return fmt.Errorf("%s: %w", a, err)
		}
		dumps = append(dumps, d)
	}
	fetched, err := tracefuse.Fetch(ctx, nil, urls)
	if err != nil {
		return err
	}
	dumps = append(dumps, fetched...)

	f, err := tracefuse.Fuse(dumps, tracefuse.Options{Trace: trace})
	if err != nil {
		return err
	}
	w, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := f.WriteChrome(w); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	total := 0
	for _, d := range dumps {
		total += len(d.Spans)
	}
	fmt.Printf("tracefuse: fused %d dumps (%d spans) into %s (nodes: %s)\n",
		len(dumps), total, out, strings.Join(f.Nodes, ", "))
	return nil
}
