package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

const validExposition = `# HELP record_core_phase_seconds wall-clock seconds per pipeline phase
# TYPE record_core_phase_seconds histogram
record_core_phase_seconds_bucket{phase="ise",le="0.01"} 1
record_core_phase_seconds_bucket{phase="ise",le="+Inf"} 1
record_core_phase_seconds_sum{phase="ise"} 0.004
record_core_phase_seconds_count{phase="ise"} 1
# HELP record_core_retargets_total retargeting pipeline runs
# TYPE record_core_retargets_total counter
record_core_retargets_total 1
# HELP record_recordd_inflight_compiles in-flight compile requests
# TYPE record_recordd_inflight_compiles gauge
record_recordd_inflight_compiles 0
`

func TestValidateMetricsValid(t *testing.T) {
	families, samples, err := validateMetrics(strings.NewReader(validExposition))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if families != 3 {
		t.Errorf("families = %d, want 3", families)
	}
	if samples != 6 {
		t.Errorf("samples = %d, want 6", samples)
	}
}

func TestValidateMetricsInvalid(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"sample without TYPE", "record_foo_total 1\n"},
		{"unknown TYPE", "# TYPE record_foo_total summary\nrecord_foo_total 1\n"},
		{"bad value", "# TYPE record_foo_total counter\nrecord_foo_total banana\n"},
		{"bad label pair", "# TYPE record_foo_total counter\nrecord_foo_total{tier=mem} 1\n"},
		{"unsorted families", "# TYPE record_b_total counter\nrecord_b_total 1\n# TYPE record_a_total counter\nrecord_a_total 1\n"},
		{"family without samples", "# TYPE record_foo_total counter\n"},
		{"histogram missing +Inf", "# TYPE record_h histogram\nrecord_h_bucket{le=\"1\"} 1\nrecord_h_sum 0.5\nrecord_h_count 1\n"},
		{"histogram missing sum", "# TYPE record_h histogram\nrecord_h_bucket{le=\"+Inf\"} 1\nrecord_h_count 1\n"},
		{"bucket without le", "# TYPE record_h histogram\nrecord_h_bucket 1\nrecord_h_sum 0.5\nrecord_h_count 1\n"},
		{"stray comment", "# just a note\n"},
	}
	for _, tc := range cases {
		if _, _, err := validateMetrics(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: accepted invalid exposition", tc.name)
		}
	}
}

// TestValidateMetricsAgainstRegistry feeds a real registry exposition —
// the same code path recordd serves on /metrics — through the validator,
// pinning the two implementations to each other.
func TestValidateMetricsAgainstRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("record_core_retargets_total", "retargeting pipeline runs").Inc()
	reg.CounterVec("record_rcache_hits_total", "cache hits by tier", "tier").With("mem").Add(2)
	reg.Gauge("record_recordd_inflight_compiles", "in-flight compile requests").Set(3)
	reg.HistogramVec("record_core_phase_seconds", "wall-clock seconds per pipeline phase", nil, "phase").
		With("ise").Observe(0.004)

	var b strings.Builder
	reg.WritePrometheus(&b)
	families, samples, err := validateMetrics(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("registry exposition rejected: %v\n%s", err, b.String())
	}
	if families != 4 {
		t.Errorf("families = %d, want 4\n%s", families, b.String())
	}
	if samples == 0 {
		t.Error("no samples parsed")
	}
}
