// Command benchtab regenerates the paper's evaluation artifacts as text
// tables: table 3 (RT template counts and retargeting times per processor
// model) and figure 2 (relative code size for the DSPStone kernels on the
// TMS320C25 model, hand-written = 100%).
//
// Usage:
//
//	benchtab -table3
//	benchtab -fig2
//	benchtab          (both)
//	benchtab -validate-metrics metrics.txt   (check a /metrics scrape, - for stdin)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dspstone"
	"repro/internal/models"
	"repro/internal/naive"
)

func main() {
	var (
		table3  = flag.Bool("table3", false, "print table 3 (retargeting)")
		fig2    = flag.Bool("fig2", false, "print figure 2 (code size)")
		metrics = flag.String("validate-metrics", "", "validate a Prometheus text exposition from this file (- for stdin) and exit")
	)
	flag.Parse()
	if *metrics != "" {
		if err := runValidateMetrics(*metrics); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}
	if !*table3 && !*fig2 {
		*table3, *fig2 = true, true
	}
	if *table3 {
		if err := printTable3(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
	}
	if *fig2 {
		if err := printFig2(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
	}
}

func runValidateMetrics(path string) error {
	in := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	families, samples, err := validateMetrics(in)
	if err != nil {
		return fmt.Errorf("invalid metrics exposition: %w", err)
	}
	fmt.Printf("metrics OK: %d families, %d samples\n", families, samples)
	return nil
}

func printTable3() error {
	fmt.Println("Table 3: RT templates and retargeting time per processor model")
	fmt.Println("(paper reports SPARC-20 CPU seconds; we report wall time on this host)")
	fmt.Println()
	fmt.Printf("%-12s %10s %10s %14s %12s %12s %12s\n",
		"processor", "extracted", "templates", "retarget time", "ISE", "grammar", "parser gen")
	fmt.Println(strings.Repeat("-", 88))
	for _, e := range models.All() {
		tg, err := core.RetargetContext(context.Background(), e.MDL, core.RetargetOptions{EmitParserSource: true})
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		s := tg.Stats
		fmt.Printf("%-12s %10d %10d %14v %12v %12v %12v\n",
			e.Name, s.Extracted, s.Templates, s.Total, s.ISE, s.Grammar, s.ParserGen)
	}
	fmt.Println()
	return nil
}

func printFig2() error {
	fmt.Println("Figure 2: relative code size on TMS320C25 (hand-written = 100%)")
	fmt.Println("(the naive macro-expansion baseline plays the vendor C compiler's role)")
	fmt.Println()
	mdl, _ := models.Get("tms320c25")
	tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %6s %8s %8s %9s %9s\n",
		"kernel", "hand", "record", "naive", "record%", "naive%")
	fmt.Println(strings.Repeat("-", 66))
	for _, k := range dspstone.Suite() {
		rec, err := tg.CompileSourceContext(context.Background(), k.Source, core.CompileOptions{})
		if err != nil {
			return fmt.Errorf("%s (record): %w", k.Name, err)
		}
		if err := tg.CheckAgainstOracle(rec); err != nil {
			return fmt.Errorf("%s (record oracle): %w", k.Name, err)
		}
		nv, err := naive.CompileSource(tg, k.Source)
		if err != nil {
			return fmt.Errorf("%s (naive): %w", k.Name, err)
		}
		if err := tg.CheckAgainstOracle(nv); err != nil {
			return fmt.Errorf("%s (naive oracle): %w", k.Name, err)
		}
		fmt.Printf("%-20s %6d %8d %8d %8d%% %8d%%\n",
			k.Name, k.HandWords, rec.CodeLen(), nv.CodeLen(),
			100*rec.CodeLen()/k.HandWords, 100*nv.CodeLen()/k.HandWords)
	}
	fmt.Println()
	return nil
}
