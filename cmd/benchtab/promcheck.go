package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Prometheus text-format validator (version 0.0.4), used by CI to check
// that a live recordd /metrics scrape is well-formed: every sample belongs
// to a declared family, values parse, histograms carry cumulative buckets
// ending in +Inf, and families appear in sorted order so scrapes are
// deterministic.

var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$`)
	labelPair  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

type promFamily struct {
	typ     string
	hasHelp bool
	samples int
	// histogram bookkeeping
	infBucket bool
	sum       bool
	count     bool
}

// baseFamily strips the histogram sample suffixes so _bucket/_sum/_count
// lines resolve to their declaring family.
func baseFamily(name string, fams map[string]*promFamily) (string, string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b := strings.TrimSuffix(name, suf); b != name {
			if f, ok := fams[b]; ok && f.typ == "histogram" {
				return b, suf
			}
		}
	}
	return name, ""
}

// validateMetrics checks a Prometheus text exposition, returning family
// and sample counts for reporting.
func validateMetrics(r io.Reader) (families, samples int, err error) {
	fams := make(map[string]*promFamily)
	var lastFamily string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("line %d: %s (%q)", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return 0, 0, fail("comment is neither HELP nor TYPE")
			}
			name := fields[2]
			if !metricName.MatchString(name) {
				return 0, 0, fail("bad metric name %q", name)
			}
			f := fams[name]
			if f == nil {
				f = &promFamily{}
				fams[name] = f
				families++
				if lastFamily != "" && name <= lastFamily {
					return 0, 0, fail("family %q not in sorted order after %q", name, lastFamily)
				}
				lastFamily = name
			}
			if fields[1] == "HELP" {
				f.hasHelp = true
				continue
			}
			typ := fields[3]
			switch typ {
			case "counter", "gauge", "histogram":
				f.typ = typ
			default:
				return 0, 0, fail("unknown TYPE %q", typ)
			}
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return 0, 0, fail("not a valid sample line")
		}
		name, labels, value := m[1], m[2], m[3]
		base, suffix := baseFamily(name, fams)
		f, ok := fams[base]
		if !ok || f.typ == "" {
			return 0, 0, fail("sample %q has no preceding TYPE declaration", name)
		}
		if (suffix != "") != (f.typ == "histogram") {
			return 0, 0, fail("sample %q does not match its family type %q", name, f.typ)
		}
		var le string
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				lm := labelPair.FindStringSubmatch(pair)
				if lm == nil {
					return 0, 0, fail("bad label pair %q", pair)
				}
				if lm[1] == "le" {
					le = lm[2]
				}
			}
		}
		switch suffix {
		case "_bucket":
			if le == "" {
				return 0, 0, fail("histogram bucket without an le label")
			}
			if le == "+Inf" {
				f.infBucket = true
			}
		case "_sum":
			f.sum = true
		case "_count":
			f.count = true
		}
		v := value
		if v != "+Inf" && v != "-Inf" && v != "NaN" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				return 0, 0, fail("unparseable value %q", value)
			}
		}
		f.samples++
		samples++
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	for name, f := range fams {
		switch {
		case f.typ == "":
			return 0, 0, fmt.Errorf("family %s has HELP but no TYPE", name)
		case f.samples == 0:
			return 0, 0, fmt.Errorf("family %s declares a TYPE but has no samples", name)
		case f.typ == "histogram" && (!f.infBucket || !f.sum || !f.count):
			return 0, 0, fmt.Errorf("histogram %s is missing +Inf bucket, _sum or _count", name)
		}
	}
	if families == 0 {
		return 0, 0, fmt.Errorf("no metric families in input")
	}
	return families, samples, nil
}

// splitLabels splits the inside of a label block on commas that are not
// inside quoted values.
func splitLabels(s string) []string {
	var out []string
	var b strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\':
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}
