package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/faultpoint"
)

// record invokes the driver like a shell would and captures both streams.
func record(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListExitsZero(t *testing.T) {
	code, out, _ := record(t, "-list")
	if code != exitOK {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "tms320c25") || !strings.Contains(out, "dot_product") {
		t.Errorf("listing incomplete:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-kernel", "dot_product"},                      // no model
		{"-model", "nosuch", "-kernel", "dot_product"},  // unknown model
		{"-model", "demo"},                              // no program
		{"-model", "demo", "-mdl", "x.mdl"},             // conflicting model flags
		{"-model", "demo", "-kernel", "nosuch"},         // unknown kernel
		{"-badflag"},                                    // unknown flag
		{"-model", "demo", "-faultpoints", "plain-bad"}, // malformed spec
	}
	for _, args := range cases {
		if code, _, _ := record(t, args...); code != exitUsage {
			t.Errorf("record %v: exit = %d, want %d", args, code, exitUsage)
		}
	}
}

// TestDegradedRunStillOracleChecks is the headline robustness scenario: a
// route explosion injected into one destination (acc1.r of the demo model)
// produces exactly one warning, and the kernel still compiles, executes and
// oracle-checks on what is left of the instruction set.
func TestDegradedRunStillOracleChecks(t *testing.T) {
	code, out, errs := record(t,
		"-model", "demo", "-kernel", "dot_product", "-run",
		"-faultpoints", "ise.route.explosion@acc1.r=error")
	if code != exitOK {
		t.Fatalf("exit = %d\nstderr:\n%s", code, errs)
	}
	if n := strings.Count(errs, "warning:"); n != 1 {
		t.Errorf("warnings = %d, want exactly 1:\n%s", n, errs)
	}
	if !strings.Contains(errs, "acc1.r") {
		t.Errorf("warning does not name the dropped destination:\n%s", errs)
	}
	if !strings.Contains(out, "oracle-checked") {
		t.Errorf("missing oracle-checked variable dump:\n%s", out)
	}
}

// TestStrictPromotesDegradationToFailure: the same run under -strict must
// fail with the input/compile exit code.
func TestStrictPromotesDegradationToFailure(t *testing.T) {
	code, _, errs := record(t,
		"-model", "demo", "-kernel", "dot_product", "-run", "-strict",
		"-faultpoints", "ise.route.explosion@acc1.r=error")
	if code != exitInput {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitInput, errs)
	}
	if !strings.Contains(errs, "error: [ise]") {
		t.Errorf("promoted warning missing from listing:\n%s", errs)
	}
}

// TestMultiErrorListing: every syntax error of a broken model appears on
// stderr as file:line:col in a single pass.
func TestMultiErrorListing(t *testing.T) {
	mdl := filepath.Join(t.TempDir(), "bad.mdl")
	src := `PROCESSOR bad;
CONST = 4;
MODULE Alu (IN a: 8; OUT q: 8);
BEGIN
  q <- a + ;
END;
PORT OUT res : ;
`
	if err := os.WriteFile(mdl, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errs := record(t, "-mdl", mdl, "-kernel", "dot_product")
	if code != exitInput {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitInput, errs)
	}
	for _, want := range []string{mdl + ":2:", mdl + ":5:", mdl + ":7:"} {
		if !strings.Contains(errs, want) {
			t.Errorf("listing missing %q:\n%s", want, errs)
		}
	}
	if strings.Contains(errs, "more errors") {
		t.Errorf("mashed single-line error leaked into stderr:\n%s", errs)
	}
}

// TestInternalFaultExitCode: a panic inside a phase is recovered at the
// phase boundary and classified as an internal fault.
func TestInternalFaultExitCode(t *testing.T) {
	code, _, errs := record(t,
		"-model", "demo", "-kernel", "dot_product",
		"-faultpoints", "grammar.rule=panic")
	if code != exitInternal {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitInternal, errs)
	}
	if !strings.Contains(errs, "recovered at phase boundary") {
		t.Errorf("missing recovery diagnostic:\n%s", errs)
	}
}

// TestTimeoutBudget: an immediately-expired deadline aborts retargeting
// with an input/resource failure, not a hang or a crash.
func TestTimeoutBudget(t *testing.T) {
	code, _, errs := record(t,
		"-model", "demo", "-kernel", "dot_product", "-timeout", "1ns")
	if code != exitInput {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitInput, errs)
	}
}

// TestMaxErrors caps the listing.
func TestMaxErrors(t *testing.T) {
	mdl := filepath.Join(t.TempDir(), "bad.mdl")
	var b strings.Builder
	b.WriteString("PROCESSOR bad;\n")
	for i := 0; i < 10; i++ {
		b.WriteString("CONST = 1;\n")
	}
	if err := os.WriteFile(mdl, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errs := record(t, "-mdl", mdl, "-kernel", "dot_product", "-max-errors", "3")
	if code != exitInput {
		t.Fatalf("exit = %d, want %d", code, exitInput)
	}
	if !strings.Contains(errs, "too many errors (limit 3)") {
		t.Errorf("missing bail diagnostic:\n%s", errs)
	}
	if n := strings.Count(errs, "error:"); n > 5 {
		t.Errorf("listing not capped: %d error lines\n%s", n, errs)
	}
}

// TestHealthyRunHasNoDiagnostics guards against diagnostic noise on the
// happy path.
func TestHealthyRunHasNoDiagnostics(t *testing.T) {
	code, out, errs := record(t, "-model", "demo", "-kernel", "real_update", "-run")
	if code != exitOK {
		t.Fatalf("exit = %d\nstderr:\n%s", code, errs)
	}
	if errs != "" {
		t.Errorf("unexpected stderr output:\n%s", errs)
	}
	if !strings.Contains(out, "oracle-checked") {
		t.Errorf("missing variable dump:\n%s", out)
	}
}

// TestCacheDirHitMiss exercises the -cache-dir satellite: the first run
// retargets and stores an artifact, the second run (a fresh process in
// spirit — a fresh cache instance in practice) reuses it, and identical
// code comes out of both.
func TestCacheDirHitMiss(t *testing.T) {
	dir := t.TempDir()
	code, out1, errs := record(t, "-model", "demo", "-kernel", "real_update",
		"-cache-dir", dir, "-stats")
	if code != exitOK {
		t.Fatalf("cold run exit = %d\nstderr:\n%s", code, errs)
	}
	if !strings.Contains(out1, "cache: miss") {
		t.Errorf("cold run did not report a miss:\n%s", out1)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".rart" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no artifact persisted in %s", dir)
	}

	code, out2, errs := record(t, "-model", "demo", "-kernel", "real_update",
		"-cache-dir", dir, "-stats")
	if code != exitOK {
		t.Fatalf("warm run exit = %d\nstderr:\n%s", code, errs)
	}
	if !strings.Contains(out2, "cache: hit") {
		t.Errorf("warm run did not report a hit:\n%s", out2)
	}

	// Same machine code either way: compare the listing sections.
	cut := func(s string) string { return s[strings.Index(s, "code for"):] }
	if cut(out1) != cut(out2) {
		t.Errorf("cached run produced different output:\ncold:\n%s\nwarm:\n%s", cut(out1), cut(out2))
	}
}

func TestJobsParallelSources(t *testing.T) {
	dir := t.TempDir()
	srcs := []string{
		"int a = 2; int b = 3; int y; y = a + b;",
		"int a = 7; int b = 2; int y; y = a - b;",
		"int a = 4; int y; y = a + a;",
	}
	var files []string
	for i, src := range srcs {
		f := filepath.Join(dir, "p"+string(rune('0'+i))+".c")
		if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}

	serial, parallel := []string{"-model", "demo", "-jobs", "1"}, []string{"-model", "demo", "-jobs", "3"}
	code, outSerial, _ := record(t, append(serial, files...)...)
	if code != exitOK {
		t.Fatalf("serial batch: exit %d\n%s", code, outSerial)
	}
	code, outParallel, _ := record(t, append(parallel, files...)...)
	if code != exitOK {
		t.Fatalf("parallel batch: exit %d\n%s", code, outParallel)
	}
	// Output is buffered per file and replayed in argument order, so
	// parallel must be byte-identical to serial.
	if outParallel != outSerial {
		t.Fatalf("-jobs 3 output differs from -jobs 1:\n--- serial ---\n%s\n--- parallel ---\n%s", outSerial, outParallel)
	}
	for _, f := range files {
		if !strings.Contains(outParallel, "==> "+f) {
			t.Errorf("missing section for %s", f)
		}
	}
}

func TestJobsBatchPartialFailure(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.c")
	bad := filepath.Join(dir, "bad.c")
	if err := os.WriteFile(good, []byte("int a = 1; int y; y = a + a;"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("int a = 1; int y; y = a + ;"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errs := record(t, "-model", "demo", "-jobs", "2", good, bad)
	if code != exitInput {
		t.Fatalf("exit %d, want %d\nstderr: %s", code, exitInput, errs)
	}
	// The good file still compiled and printed.
	if !strings.Contains(out, "==> "+good) || !strings.Contains(out, "code for demo") {
		t.Errorf("good file output missing:\n%s", out)
	}
	if !strings.Contains(errs, bad) || !strings.Contains(errs, "1 of 2 source files failed") {
		t.Errorf("failure summary missing:\n%s", errs)
	}
}

func TestJobsUsageErrors(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "p.c")
	if err := os.WriteFile(f, []byte("int a = 1; int y; y = a;"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-model", "demo", "-jobs", "-2", f},            // negative jobs
		{"-model", "demo", "-src", f, f},                // -src plus positional
		{"-model", "demo", "-kernel", "dot_product", f}, // -kernel plus positional
	} {
		if code, _, _ := record(t, args...); code != exitUsage {
			t.Errorf("record %v: exit = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestFaultpointsListPrintsEverySite(t *testing.T) {
	code, out, _ := record(t, "-faultpoints", "list")
	if code != exitOK {
		t.Fatalf("exit = %d", code)
	}
	for _, site := range faultpoint.Sites() {
		if !strings.Contains(out, site.Name) {
			t.Errorf("site %s missing from listing:\n%s", site.Name, out)
		}
	}
}

func TestServerFlagUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-server", "http://x", "-model", "demo", "-kernel", "dot_product", "-naive"},
		{"-server", "http://x", "-model", "demo", "-kernel", "dot_product", "-run"},
		{"-server", "http://x", "-model", "demo", "-kernel", "dot_product", "-seq"},
		{"-server", "http://x", "-model", "demo", "-kernel", "dot_product", "-cache-dir", "d"},
	}
	for _, args := range cases {
		if code, _, _ := record(t, args...); code != exitUsage {
			t.Errorf("%v: exit = %d, want %d", args, code, exitUsage)
		}
	}
}

// TestServerRemoteCompile drives the -server path against a stub speaking
// the recordd wire protocol; the end-to-end version against a live daemon
// runs in CI.
func TestServerRemoteCompile(t *testing.T) {
	var retargets, compiles atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/retarget":
			retargets.Add(1)
			fmt.Fprint(w, `{"key":"k1","name":"demo","templates":5,"rules":9,"cache":"miss"}`)
		case "/v1/compile":
			if compiles.Add(1) == 1 { // one injected transient failure
				w.WriteHeader(http.StatusInternalServerError)
				fmt.Fprint(w, `{"error":"injected fault recordd.worker.spawn"}`)
				return
			}
			fmt.Fprint(w, `{"key":"k1","name":"demo","cache":"hit","seq_len":4,"code_len":3,"words":[1,2,3],"listing":"0000 nop\n"}`)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer srv.Close()

	code, out, stderr := record(t, "-server", srv.URL, "-model", "demo", "-kernel", "dot_product")
	if code != exitOK {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "code for demo: 4 RT instructions in 3 words") {
		t.Errorf("remote output shape differs from local:\n%s", out)
	}
	if retargets.Load() != 1 {
		t.Errorf("retargets = %d, want 1", retargets.Load())
	}
	if compiles.Load() != 2 {
		t.Errorf("compiles = %d, want 2 (retry through the injected failure)", compiles.Load())
	}
}
