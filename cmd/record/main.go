// Command record is the retargetable compiler driver: it retargets to an
// HDL processor model and compiles a RecC source program into compacted,
// encoded machine code.
//
// Usage:
//
//	record -model tms320c25 -src program.c [flags]
//	record -mdl processor.mdl -src program.c [flags]
//
// Flags:
//
//	-model name        use a bundled processor model (see -list)
//	-mdl file          read an MDL processor model from file
//	-src file          RecC source program ("-" for stdin)
//	-list              list bundled models
//	-naive             use the naive macro-expansion baseline
//	-no-compaction     disable code compaction
//	-no-peephole       disable redundant-load/dead-store elimination
//	-no-extension      disable template-base extension
//	-seq               print the sequential RT code as well
//	-stats             print retargeting and compilation statistics
//	-run               execute on the netlist simulator and dump variables
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/cflow"
	"repro/internal/cfront"
	"repro/internal/core"
	"repro/internal/dspstone"
	"repro/internal/ir"
	"repro/internal/models"
	"repro/internal/naive"
	"repro/internal/vhdl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "record:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelName    = flag.String("model", "", "bundled processor model name")
		mdlFile      = flag.String("mdl", "", "MDL processor model file")
		vhdlFile     = flag.String("vhdl", "", "VHDL processor model file (translated to MDL)")
		srcFile      = flag.String("src", "", "RecC source file (- for stdin)")
		kernelName   = flag.String("kernel", "", "compile a bundled DSPStone kernel")
		list         = flag.Bool("list", false, "list bundled models and kernels")
		useNaive     = flag.Bool("naive", false, "use the naive baseline compiler")
		noCompaction = flag.Bool("no-compaction", false, "disable code compaction")
		noPeephole   = flag.Bool("no-peephole", false, "disable peephole optimization")
		noExtension  = flag.Bool("no-extension", false, "disable template-base extension")
		showSeq      = flag.Bool("seq", false, "print sequential RT code")
		showStats    = flag.Bool("stats", false, "print statistics")
		execute      = flag.Bool("run", false, "simulate and dump final variables")
	)
	flag.Parse()

	if *list {
		fmt.Println("bundled processor models:")
		for _, e := range models.All() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Description)
		}
		fmt.Println("bundled DSPStone kernels:")
		for _, k := range dspstone.Suite() {
			fmt.Printf("  %-20s hand-written reference: %d words\n", k.Name, k.HandWords)
		}
		return nil
	}

	mdl, err := loadModel(*modelName, *mdlFile, *vhdlFile)
	if err != nil {
		return err
	}
	src, err := loadSource(*srcFile, *kernelName)
	if err != nil {
		return err
	}

	target, err := core.Retarget(mdl, core.RetargetOptions{NoExtension: *noExtension})
	if err != nil {
		return err
	}
	if *showStats {
		printRetargetStats(target)
	}

	prog, err := cfront.Parse(src)
	if err != nil {
		return err
	}
	if ir.HasControlFlow(prog) {
		if *useNaive {
			return fmt.Errorf("the naive baseline does not support control flow")
		}
		return runControlFlow(target, prog, *execute)
	}

	var res *core.CompileResult
	if *useNaive {
		res, err = naive.Compile(target, prog)
	} else {
		res, err = target.CompileProgram(prog, core.CompileOptions{
			NoCompaction: *noCompaction,
			NoPeephole:   *noPeephole,
		})
	}
	if err != nil {
		return err
	}

	if *showSeq {
		fmt.Println("sequential RT code:")
		fmt.Print(res.Seq)
		fmt.Println()
	}
	fmt.Printf("code for %s: %d RT instructions in %d words\n\n",
		target.Name, res.SeqLen(), res.CodeLen())
	fmt.Print(target.Listing(res))

	if *showStats {
		fmt.Printf("\nselection: %d trees, cost %d, %d spills; peephole removed %d loads, %d stores\n",
			res.Stats.Trees, res.Stats.SelectCost, res.Stats.Spills,
			res.Opt.LoadsRemoved, res.Opt.StoresRemoved)
	}

	if *execute {
		env, err := target.Execute(res)
		if err != nil {
			return err
		}
		if err := target.CheckAgainstOracle(res); err != nil {
			return fmt.Errorf("simulation disagrees with the IR oracle: %w", err)
		}
		fmt.Println("\nfinal variable values (simulated, oracle-checked):")
		names := make([]string, 0, len(env))
		for n := range env {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-12s %v\n", n, env[n])
		}
	}
	return nil
}

// runControlFlow compiles and optionally executes a program with branches
// through the control-flow extension.
func runControlFlow(target *core.Target, prog *ir.Program, execute bool) error {
	res, err := cflow.Compile(target, prog, cflow.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("control-flow code for %s: %d basic blocks, %d words\n\n",
		target.Name, len(res.CFG.Blocks), res.Code.Len())
	fmt.Print(target.Encoder.Listing(res.Code))
	if execute {
		if err := cflow.CheckAgainstOracle(target, res, cflow.Options{}); err != nil {
			return fmt.Errorf("simulation disagrees with the oracle: %w", err)
		}
		env, err := cflow.Execute(target, res, cflow.Options{})
		if err != nil {
			return err
		}
		fmt.Println("\nfinal variable values (simulated, oracle-checked):")
		names := make([]string, 0, len(env))
		for n := range env {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-12s %v\n", n, env[n])
		}
	}
	return nil
}

func loadModel(name, file, vhdlFile string) (string, error) {
	count := 0
	for _, s := range []string{name, file, vhdlFile} {
		if s != "" {
			count++
		}
	}
	if count > 1 {
		return "", fmt.Errorf("use exactly one of -model, -mdl, -vhdl")
	}
	switch {
	case name != "":
		mdl, ok := models.Get(name)
		if !ok {
			return "", fmt.Errorf("unknown model %q (try -list)", name)
		}
		return mdl, nil
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return "", err
		}
		return string(b), nil
	case vhdlFile != "":
		b, err := os.ReadFile(vhdlFile)
		if err != nil {
			return "", err
		}
		return vhdl.Translate(string(b))
	}
	return "", fmt.Errorf("no processor model: use -model, -mdl or -vhdl")
}

func loadSource(file, kernel string) (string, error) {
	switch {
	case file != "" && kernel != "":
		return "", fmt.Errorf("use either -src or -kernel, not both")
	case kernel != "":
		k, ok := dspstone.Get(kernel)
		if !ok {
			return "", fmt.Errorf("unknown kernel %q (try -list)", kernel)
		}
		return k.Source, nil
	case file == "-":
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	case file != "":
		b, err := os.ReadFile(file)
		return string(b), err
	}
	return "", fmt.Errorf("no source program: use -src or -kernel")
}

func printRetargetStats(t *core.Target) {
	s := t.Stats
	fmt.Printf("retargeted %s in %v\n", t.Name, s.Total)
	fmt.Printf("  HDL frontend + elaboration  %v\n", s.Frontend)
	fmt.Printf("  instruction-set extraction  %v (%d routes, %d unsat pruned)\n",
		s.ISE, s.ISEDetails.RoutesEnumerated, s.ISEDetails.Unsatisfiable)
	fmt.Printf("  template-base extension     %v (%d -> %d templates)\n",
		s.Extension, s.Extracted, s.Templates)
	fmt.Printf("  grammar construction        %v (%d rules, %d nonterminals)\n",
		s.Grammar, s.GrammarSz.RTRules+s.GrammarSz.StartRules+s.GrammarSz.StopRules,
		s.GrammarSz.Nonterminals)
	fmt.Printf("  parser generation           %v\n\n", s.ParserGen)
}
