// Command record is the retargetable compiler driver: it retargets to an
// HDL processor model and compiles a RecC source program into compacted,
// encoded machine code.
//
// Usage:
//
//	record -model tms320c25 -src program.c [flags]
//	record -mdl processor.mdl -src program.c [flags]
//	record -model tms320c25 -jobs 4 a.c b.c c.c   (parallel batch)
//
// Positional arguments are RecC source files; the model is retargeted
// once and the files compile concurrently across -jobs workers (safe
// because retargeted targets are frozen).  Output appears in argument
// order.
//
// Flags (each maps onto the identically-spirited core.Config field, see
// README "Configuration"):
//
//	-model name        use a bundled processor model (see -list)
//	-mdl file          read an MDL processor model from file
//	-src file          RecC source program ("-" for stdin)
//	-jobs n            parallel workers for positional source files
//	-list              list bundled models
//	-naive             use the naive macro-expansion baseline
//	-no-compaction     disable code compaction
//	-no-peephole       disable redundant-load/dead-store elimination
//	-no-extension      disable template-base extension
//	-seq               print the sequential RT code as well
//	-stats             print retargeting and compilation statistics
//	-trace file        write a Chrome trace_event JSON file of the run
//	                   (open in chrome://tracing or Perfetto); with
//	                   -server the root span propagates to the service
//	                   as X-Record-Trace, and -stats prints the trace ID
//	                   the service echoes back
//	-cache-dir dir     reuse retarget artifacts across runs (prints
//	                   "cache: hit|miss" under -stats)
//	-run               execute on the netlist simulator and dump variables
//	-strict            treat warnings as errors
//	-max-errors n      stop after n errors (0 = unlimited)
//	-timeout d         wall-clock budget for the whole run (0 = unlimited)
//	-max-bdd-nodes n   cap the BDD universe during extraction
//	-max-routes n      cap route enumeration per traversal point
//	-server urls       compile remotely against running recordd node(s);
//	                   the client retries transient failures (429/5xx,
//	                   Retry-After-aware) and circuit-breaks per model.
//	                   A comma-separated list forms a fleet: requests
//	                   shard by artifact content address and fail over
//	                   to the next ring replica when a node is down
//	-faultpoints s     arm fault-injection points (testing); "list"
//	                   prints every planted site and exits
//
// Exit codes: 0 success, 1 usage error, 2 input or compilation error
// (including warnings under -strict), 3 internal fault.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/cflow"
	"repro/internal/cfront"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dspstone"
	"repro/internal/faultpoint"
	"repro/internal/hdl"
	"repro/internal/ir"
	"repro/internal/models"
	"repro/internal/naive"
	"repro/internal/obs"
	"repro/internal/rcache"
	"repro/internal/rclient"
	"repro/internal/vhdl"
)

// Driver exit codes.
const (
	exitOK       = 0
	exitUsage    = 1 // bad flags or flag combinations
	exitInput    = 2 // model/program errors, oracle mismatches, -strict warnings
	exitInternal = 3 // recovered panics and other pipeline faults
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed command line: driver-only concerns (what to load,
// what to print) plus the pipeline knobs, which live in core.Config so the
// CLI and recordd share one validated surface.
type config struct {
	modelName, mdlFile, vhdlFile string
	srcFile, kernelName          string
	list, useNaive               bool
	showSeq, showStats, execute  bool

	cacheDir    string
	traceFile   string
	faultpoints string
	serverURL   string   // remote compile against a recordd instance
	priority    string   // QoS class declared to the service
	srcFiles    []string // positional: parallel multi-source mode

	core core.Config
}

// run is the testable driver entry point: it parses args, runs the
// pipeline, writes results to stdout and the diagnostic listing to stderr,
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	var c config
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&c.modelName, "model", "", "bundled processor model name")
	fs.StringVar(&c.mdlFile, "mdl", "", "MDL processor model file")
	fs.StringVar(&c.vhdlFile, "vhdl", "", "VHDL processor model file (translated to MDL)")
	fs.StringVar(&c.srcFile, "src", "", "RecC source file (- for stdin)")
	fs.StringVar(&c.kernelName, "kernel", "", "compile a bundled DSPStone kernel")
	fs.BoolVar(&c.list, "list", false, "list bundled models and kernels")
	fs.BoolVar(&c.useNaive, "naive", false, "use the naive baseline compiler")
	fs.BoolVar(&c.core.NoCompaction, "no-compaction", false, "disable code compaction")
	fs.BoolVar(&c.core.NoPeephole, "no-peephole", false, "disable peephole optimization")
	fs.BoolVar(&c.core.NoExtension, "no-extension", false, "disable template-base extension")
	fs.BoolVar(&c.showSeq, "seq", false, "print sequential RT code")
	fs.BoolVar(&c.showStats, "stats", false, "print statistics")
	fs.BoolVar(&c.execute, "run", false, "simulate and dump final variables")
	fs.StringVar(&c.cacheDir, "cache-dir", "", "retarget artifact cache directory (skips ISE on repeat runs)")
	fs.StringVar(&c.traceFile, "trace", "", "write a Chrome trace_event JSON file of the run")
	fs.BoolVar(&c.core.Strict, "strict", false, "treat warnings as errors")
	fs.IntVar(&c.core.MaxErrors, "max-errors", 0, "stop after this many errors (0 = unlimited)")
	fs.DurationVar(&c.core.Timeout, "timeout", 0, "wall-clock budget for the whole run (0 = unlimited)")
	fs.IntVar(&c.core.MaxBDDNodes, "max-bdd-nodes", 0, "cap the BDD universe during extraction (0 = unlimited)")
	fs.IntVar(&c.core.MaxRoutes, "max-routes", 0, "cap route enumeration per traversal point (0 = default)")
	fs.IntVar(&c.core.Jobs, "jobs", 1, "parallel workers for positional source files")
	fs.StringVar(&c.serverURL, "server", "",
		"compile against running recordd node(s) instead of locally; comma-separate base URLs for a fleet with sharding, failover and hedging")
	fs.StringVar(&c.priority, "priority", "",
		"QoS class declared to the service: interactive or batch (default: the server's per-route default)")
	fs.StringVar(&c.faultpoints, "faultpoints", "",
		"comma-separated fault injection specs name[@match]=kind[:arg][*times] (testing); \"list\" prints sites")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	c.srcFiles = fs.Args()
	if err := c.core.Validate(); err != nil {
		fmt.Fprintf(stderr, "record: %v\n", err)
		return exitUsage
	}

	if c.faultpoints == "list" {
		fmt.Fprintln(stdout, "faultpoint sites (arm with -faultpoints name[@match]=kind[:arg][*times]):")
		for _, site := range faultpoint.Sites() {
			fmt.Fprintf(stdout, "  %-24s %s\n", site.Name, site.Where)
		}
		return exitOK
	}
	if c.faultpoints != "" {
		for _, spec := range strings.Split(c.faultpoints, ",") {
			if err := faultpoint.ArmSpec(strings.TrimSpace(spec)); err != nil {
				fmt.Fprintf(stderr, "record: -faultpoints: %v\n", err)
				return exitUsage
			}
		}
		defer faultpoint.Reset()
	}

	if c.list {
		fmt.Fprintln(stdout, "bundled processor models:")
		for _, e := range models.All() {
			fmt.Fprintf(stdout, "  %-12s %s\n", e.Name, e.Description)
		}
		fmt.Fprintln(stdout, "bundled DSPStone kernels:")
		for _, k := range dspstone.Suite() {
			fmt.Fprintf(stdout, "  %-20s hand-written reference: %d words\n", k.Name, k.HandWords)
		}
		return exitOK
	}

	rep := c.core.Reporter()
	budget, cancel := c.core.Budget(context.Background())
	defer cancel()

	// -trace instruments the whole run: every pipeline phase and compile
	// stage spans under one record.run root, exported as Chrome
	// trace_event JSON on exit.  The registry rides along so pipeline
	// counters have somewhere to land.
	var tracer *obs.Tracer
	var rootSpan *obs.Span
	if c.traceFile != "" {
		tracer = obs.NewTracer()
		rootSpan, c.core.Obs = obs.NewScope(obs.NewRegistry(), tracer).Start("record.run")
	}

	err := compile(&c, rep, budget, stdout, stderr)
	if tracer != nil {
		rootSpan.End()
		if werr := writeTrace(c.traceFile, tracer); werr != nil {
			fmt.Fprintf(stderr, "record: -trace: %v\n", werr)
			if err == nil {
				err = werr
			}
		}
		if c.showStats && tracer.Dropped() > 0 {
			fmt.Fprintf(stdout, "trace: %d spans dropped past the ring bound\n", tracer.Dropped())
		}
	}
	listDiagnostics(stderr, rep, c.modelSourceName())
	switch {
	case err != nil:
		var ue *usageError
		if errors.As(err, &ue) {
			fmt.Fprintf(stderr, "record: %v\n", err)
			return exitUsage
		}
		var pe *diag.PanicError
		if errors.As(err, &pe) {
			fmt.Fprintf(stderr, "record: internal fault: %v\n", pe.Value)
			return exitInternal
		}
		// Positioned frontend errors already appear in the listing; avoid
		// repeating them as one mashed-together line.
		if len(hdl.Errors(err)) == 0 {
			fmt.Fprintf(stderr, "record: %v\n", err)
		}
		return exitInput
	case rep.Errors() > 0:
		// -strict promoted warnings, or phases reported errors while still
		// producing output.
		fmt.Fprintf(stderr, "record: failing due to %s\n", rep.Summary())
		return exitInput
	}
	return exitOK
}

// usageError marks command-line mistakes (exit code 1) as opposed to input
// or pipeline failures (exit code 2).
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...interface{}) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// modelSourceName returns the name to prefix positioned diagnostics with.
func (c *config) modelSourceName() string {
	switch {
	case c.mdlFile != "":
		return c.mdlFile
	case c.vhdlFile != "":
		return c.vhdlFile
	case c.modelName != "":
		return c.modelName
	}
	return "model"
}

// listDiagnostics writes every collected diagnostic to stderr, prefixing
// positioned ones (frontend syntax errors) with the model source name so
// they read file:line:col.
func listDiagnostics(stderr io.Writer, rep *diag.Reporter, source string) {
	for _, d := range rep.Diags() {
		if d.Pos.IsValid() {
			fmt.Fprintf(stderr, "%s:%s\n", source, d)
		} else {
			fmt.Fprintln(stderr, d)
		}
	}
}

// compile runs the full pipeline per the parsed configuration.
func compile(c *config, rep *diag.Reporter, budget *diag.Budget, stdout, stderr io.Writer) error {
	if c.serverURL != "" {
		return compileRemote(c, budget, stdout)
	}
	mdl, err := loadModel(c.modelName, c.mdlFile, c.vhdlFile)
	if err != nil {
		return err
	}
	var src string
	if len(c.srcFiles) == 0 {
		if src, err = loadSource(c.srcFile, c.kernelName); err != nil {
			return err
		}
	} else if c.srcFile != "" || c.kernelName != "" {
		return usagef("use either -src/-kernel or positional source files, not both")
	}

	ropts := c.core.Retarget(rep, budget)
	var target *core.Target
	var comp *core.Compiler
	if c.cacheDir != "" {
		cache, err := rcache.New(rcache.Options{Dir: c.cacheDir, MaxEntries: 1, Reporter: rep, Obs: c.core.Obs})
		if err != nil {
			return err
		}
		ctx := context.Background()
		if budget != nil && budget.Ctx != nil {
			ctx = budget.Ctx
		}
		entry, outcome, err := cache.GetContext(ctx, mdl, ropts)
		if err != nil {
			return err
		}
		target = entry.Target()
		comp = entry.Compiler()
		if c.showStats {
			state := "miss"
			if outcome.Hit() {
				state = "hit"
			}
			fmt.Fprintf(stdout, "cache: %s\n", state)
		}
	} else {
		var err error
		target, err = core.RetargetContext(context.Background(), mdl, ropts)
		if err != nil {
			return err
		}
	}
	if c.showStats {
		printRetargetStats(stdout, target)
	}

	// One Compiler for the whole run: every file, worker goroutine and
	// control-flow block compiles through its pooled sessions.
	if comp == nil {
		if comp, err = core.NewCompiler(target, c.core); err != nil {
			return err
		}
	}

	if len(c.srcFiles) > 0 {
		return compileMany(c, comp, budget, stdout, stderr)
	}
	return compileOne(c, comp, src, rep, budget, stdout)
}

// compileRemote compiles against a running recordd instead of the local
// pipeline.  The model is retargeted once server-side (paying at most one
// cache miss); programs then compile by artifact key.  The client retries
// transient failures (shed 429s, drain/breaker 503s, injected 5xx faults)
// with backoff and honors the service's Retry-After — a briefly unhealthy
// service costs latency, not a failed build.
func compileRemote(c *config, budget *diag.Budget, stdout io.Writer) error {
	switch {
	case c.useNaive:
		return usagef("-naive runs locally; it cannot be combined with -server")
	case c.execute:
		return usagef("-run (simulation) is local-only; it cannot be combined with -server")
	case c.showSeq:
		return usagef("-seq is local-only; it cannot be combined with -server")
	case c.cacheDir != "":
		return usagef("-cache-dir is local-only; the server has its own artifact cache")
	case c.priority != "" && c.priority != "interactive" && c.priority != "batch":
		return usagef("-priority must be interactive or batch, not %q", c.priority)
	}

	// Bundled models go by name (the server has them); file-based models
	// ship their source inline.  VHDL is translated locally first.
	ref := rclient.ModelRef{ModelName: c.modelName}
	if c.modelName == "" {
		mdl, err := loadModel(c.modelName, c.mdlFile, c.vhdlFile)
		if err != nil {
			return err
		}
		ref = rclient.ModelRef{Model: mdl}
	}

	ctx := context.Background()
	if budget != nil && budget.Ctx != nil {
		ctx = budget.Ctx
	}
	// Under -trace the run's root scope rides the context, so every
	// request leg spans client-side AND ships its trace identity to the
	// service in X-Record-Trace — the fleet's span rings then hold the
	// server half of the same trace ID.
	ctx = obs.ContextWithScope(ctx, c.core.Obs)
	// -server takes 1..N comma-separated URLs through one constructor: a
	// single endpoint gets the plain client, more get the fleet client
	// (content-address sharding, failover, hedging) — same Service either
	// way, no branching here.
	cl, err := rclient.New(strings.Split(c.serverURL, ","), rclient.Options{Priority: c.priority})
	if err != nil {
		return err
	}
	rt, err := cl.Retarget(ctx, ref)
	if err != nil {
		return err
	}
	if c.showStats {
		state := "miss"
		if rt.Cache == "hit" || rt.Cache == "hit-disk" || rt.Cache == "coalesced" {
			state = "hit"
		}
		fmt.Fprintf(stdout, "cache: %s (remote)\n", state)
		fmt.Fprintf(stdout, "retargeted %s remotely: %d templates, %d rules\n",
			rt.Name, rt.Templates, rt.Rules)
		if rt.Trace != "" {
			fmt.Fprintf(stdout, "trace: %s\n", rt.Trace)
		}
	}

	byKey := rclient.ModelRef{Key: rt.Key}
	opts := rclient.CompileOptions{
		NoCompaction: c.core.NoCompaction,
		NoPeephole:   c.core.NoPeephole,
	}
	sources := c.srcFiles
	if len(sources) == 0 {
		src, err := loadSource(c.srcFile, c.kernelName)
		if err != nil {
			return err
		}
		res, err := cl.Compile(ctx, byKey, src, opts)
		if err != nil {
			return err
		}
		printRemoteResult(stdout, res)
		if c.showStats && res.Trace != "" {
			fmt.Fprintf(stdout, "trace: %s\n", res.Trace)
		}
		printHedgeStats(c, cl, stdout)
		return nil
	}
	var firstErr error
	failed := 0
	for _, file := range sources {
		fmt.Fprintf(stdout, "==> %s\n", file)
		src, err := os.ReadFile(file)
		if err == nil {
			var res *rclient.CompileResult
			if res, err = cl.Compile(ctx, byKey, string(src), opts); err == nil {
				printRemoteResult(stdout, res)
			}
		}
		if err != nil {
			fmt.Fprintf(stdout, "record: %s: %v\n", file, err)
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	printHedgeStats(c, cl, stdout)
	if firstErr != nil {
		return fmt.Errorf("%d of %d source files failed: %w", failed, len(sources), firstErr)
	}
	return nil
}

// printHedgeStats reports how fleet hedge legs fared under -stats; a
// single-endpoint client (or a run that never hedged) prints nothing.
func printHedgeStats(c *config, cl rclient.Service, stdout io.Writer) {
	if !c.showStats {
		return
	}
	f, ok := cl.(*rclient.Fleet)
	if !ok {
		return
	}
	if started, won := f.Hedges(); started > 0 {
		_, cancelled, failed := f.HedgeOutcomes()
		fmt.Fprintf(stdout, "hedges: %d started, %d won, %d cancelled, %d failed\n",
			started, won, cancelled, failed)
	}
}

// printRemoteResult writes a remote compile in the same shape as the local
// driver's output, so scripts cannot tell the difference.
func printRemoteResult(stdout io.Writer, res *rclient.CompileResult) {
	fmt.Fprintf(stdout, "code for %s: %d RT instructions in %d words\n\n",
		res.Name, res.SeqLen, res.CodeLen)
	fmt.Fprint(stdout, res.Listing)
}

// compileMany compiles every positional source file against one frozen
// target, fanning files across -jobs workers.  Per-file output and
// diagnostics are buffered and replayed in argument order, so parallel
// runs are byte-identical to serial ones.
func compileMany(c *config, comp *core.Compiler, budget *diag.Budget, stdout, stderr io.Writer) error {
	type job struct {
		out, diags bytes.Buffer
		err        error
	}
	jobs := make([]job, len(c.srcFiles))
	sem := make(chan struct{}, c.core.JobCount())
	var wg sync.WaitGroup
	for i, file := range c.srcFiles {
		wg.Add(1)
		go func(i int, file string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			j := &jobs[i]
			rep := c.core.Reporter()
			src, err := os.ReadFile(file)
			if err != nil {
				j.err = err
				return
			}
			j.err = compileOne(c, comp, string(src), rep, budget, &j.out)
			listDiagnostics(&j.diags, rep, file)
			if j.err == nil && rep.Errors() > 0 {
				j.err = fmt.Errorf("failing due to %s", rep.Summary())
			}
		}(i, file)
	}
	wg.Wait()

	var firstErr error
	failed := 0
	for i := range jobs {
		j := &jobs[i]
		fmt.Fprintf(stdout, "==> %s\n", c.srcFiles[i])
		_, _ = io.Copy(stdout, &j.out)
		_, _ = io.Copy(stderr, &j.diags)
		if j.err != nil {
			fmt.Fprintf(stderr, "record: %s: %v\n", c.srcFiles[i], j.err)
			failed++
			if firstErr == nil {
				firstErr = j.err
			}
		}
	}
	if firstErr != nil {
		// Wrap rather than replace so the worst failure still drives the
		// exit code (internal faults unwrap to diag.PanicError).
		return fmt.Errorf("%d of %d source files failed: %w", failed, len(jobs), firstErr)
	}
	return nil
}

// compileOne compiles a single RecC source against the target, writing
// listings and statistics to stdout.
func compileOne(c *config, comp *core.Compiler, src string, rep *diag.Reporter, budget *diag.Budget, stdout io.Writer) error {
	target := comp.Target()
	prog, err := cfront.Parse(src)
	if err != nil {
		rep.Errorf("recc", diag.Pos{}, "%v", err)
		return err
	}
	if ir.HasControlFlow(prog) {
		if c.useNaive {
			return usagef("the naive baseline does not support control flow")
		}
		return runControlFlow(comp, prog, c, rep, budget, stdout)
	}

	var res *core.CompileResult
	err = diag.Guard(rep, "compile", func() error {
		var err error
		if c.useNaive {
			res, err = naive.Compile(target, prog)
		} else {
			ctx := context.Background()
			if budget != nil && budget.Ctx != nil {
				ctx = budget.Ctx
			}
			res, err = comp.CompileProgramOpts(ctx, prog, c.core.Compile())
		}
		return err
	})
	if err != nil {
		return err
	}

	if c.showSeq {
		fmt.Fprintln(stdout, "sequential RT code:")
		fmt.Fprint(stdout, res.Seq)
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "code for %s: %d RT instructions in %d words\n\n",
		target.Name, res.SeqLen(), res.CodeLen())
	fmt.Fprint(stdout, target.Listing(res))

	if c.showStats {
		fmt.Fprintf(stdout, "\nselection: %d trees, cost %d, %d spills; peephole removed %d loads, %d stores\n",
			res.Stats.Trees, res.Stats.SelectCost, res.Stats.Spills,
			res.Opt.LoadsRemoved, res.Opt.StoresRemoved)
	}

	if c.execute {
		var env ir.Env
		err := diag.Guard(rep, "sim", func() error {
			var err error
			if env, err = target.Execute(res); err != nil {
				return err
			}
			if err := target.CheckAgainstOracle(res); err != nil {
				return fmt.Errorf("simulation disagrees with the IR oracle: %w", err)
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nfinal variable values (simulated, oracle-checked):")
		printEnv(stdout, env)
	}
	return nil
}

// runControlFlow compiles and optionally executes a program with branches
// through the control-flow extension.
func runControlFlow(comp *core.Compiler, prog *ir.Program, c *config, rep *diag.Reporter, budget *diag.Budget, stdout io.Writer) error {
	target := comp.Target()
	sess := comp.AcquireSession()
	defer comp.ReleaseSession(sess)
	opts := cflow.Options{
		NoCompaction: c.core.NoCompaction,
		Reporter:     rep,
		Budget:       budget,
		Obs:          c.core.Obs,
		Session:      sess,
	}
	var res *cflow.Result
	err := diag.Guard(rep, "cflow", func() error {
		var err error
		res, err = cflow.Compile(target, prog, opts)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "control-flow code for %s: %d basic blocks, %d words\n\n",
		target.Name, len(res.CFG.Blocks), res.Code.Len())
	fmt.Fprint(stdout, target.Encoder.Listing(res.Code))
	if c.execute {
		var env ir.Env
		err := diag.Guard(rep, "sim", func() error {
			if err := cflow.CheckAgainstOracle(target, res, opts); err != nil {
				return fmt.Errorf("simulation disagrees with the oracle: %w", err)
			}
			var err error
			env, err = cflow.Execute(target, res, opts)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nfinal variable values (simulated, oracle-checked):")
		printEnv(stdout, env)
	}
	return nil
}

// writeTrace exports the run's spans as Chrome trace_event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tr.WriteChromeTrace(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func printEnv(stdout io.Writer, env ir.Env) {
	names := make([]string, 0, len(env))
	for n := range env {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(stdout, "  %-12s %v\n", n, env[n])
	}
}

func loadModel(name, file, vhdlFile string) (string, error) {
	count := 0
	for _, s := range []string{name, file, vhdlFile} {
		if s != "" {
			count++
		}
	}
	if count > 1 {
		return "", usagef("use exactly one of -model, -mdl, -vhdl")
	}
	switch {
	case name != "":
		mdl, ok := models.Get(name)
		if !ok {
			return "", usagef("unknown model %q (try -list)", name)
		}
		return mdl, nil
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return "", err
		}
		return string(b), nil
	case vhdlFile != "":
		b, err := os.ReadFile(vhdlFile)
		if err != nil {
			return "", err
		}
		return vhdl.Translate(string(b))
	}
	return "", usagef("no processor model: use -model, -mdl or -vhdl")
}

func loadSource(file, kernel string) (string, error) {
	switch {
	case file != "" && kernel != "":
		return "", usagef("use either -src or -kernel, not both")
	case kernel != "":
		k, ok := dspstone.Get(kernel)
		if !ok {
			return "", usagef("unknown kernel %q (try -list)", kernel)
		}
		return k.Source, nil
	case file == "-":
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	case file != "":
		b, err := os.ReadFile(file)
		return string(b), err
	}
	return "", usagef("no source program: use -src or -kernel")
}

func printRetargetStats(stdout io.Writer, t *core.Target) {
	s := t.Stats
	fmt.Fprintf(stdout, "retargeted %s in %v\n", t.Name, s.Total)
	fmt.Fprintf(stdout, "  HDL frontend + elaboration  %v\n", s.Frontend)
	fmt.Fprintf(stdout, "  instruction-set extraction  %v (%d routes, %d unsat pruned, %d destinations dropped)\n",
		s.ISE, s.ISEDetails.RoutesEnumerated, s.ISEDetails.Unsatisfiable, s.ISEDetails.Dropped)
	fmt.Fprintf(stdout, "  templates discarded         encoding-conflict=%d bus-contention=%d budget=%d\n",
		s.ISEDetails.UnsatEncoding, s.ISEDetails.UnsatBus, s.ISEDetails.DiscardedBudget)
	fmt.Fprintf(stdout, "  template-base extension     %v (%d -> %d templates)\n",
		s.Extension, s.Extracted, s.Templates)
	fmt.Fprintf(stdout, "  grammar construction        %v (%d rules, %d nonterminals)\n",
		s.Grammar, s.GrammarSz.RTRules+s.GrammarSz.StartRules+s.GrammarSz.StopRules,
		s.GrammarSz.Nonterminals)
	fmt.Fprintf(stdout, "  parser generation           %v\n", s.ParserGen)
	fmt.Fprintf(stdout, "  freeze (bake encode tables) %v\n\n", s.Freeze)
}
