// Command benchtraj appends BenchmarkParallelCompile results to the bench
// trajectory file — a JSON array tracking parallel-compile throughput
// across commits, so scaling regressions show up as data rather than
// anecdotes.  BenchmarkServerCompile* lines (recordd request latency on
// the happy path and under shedding) ride along in server_ns_per_op, so
// the resilience layers' overhead is tracked the same way, and
// BenchmarkCompile{Baseline,Traced} lines land in compile_ns_per_op —
// the per-compile cost without and with a live span-producing obs scope
// (repeat lines from -count N keep the minimum, so the floors are
// noise-free).  BenchmarkCompileTracedOverhead's "overhead" metric —
// measured by interleaving plain and traced compiles so machine-load
// drift cancels out of the ratio — lands in traced_overhead, which
// -max-traced-overhead turns into a CI ceiling on the tracing tax.
//
// Usage:
//
//	go test -bench BenchmarkParallelCompile -benchtime 1s . | benchtraj -out bench/trajectory.json -label "$SHA"
//
// The tool parses the standard `go test -bench` text format, keeps only
// BenchmarkParallelCompile<N> lines, and appends one entry per invocation:
//
//	{"label": "...", "ns_per_op": {"1": 527672, "4": 1268698},
//	 "speedup_at_4": 0.41,
//	 "server_ns_per_op": {"base": 353216, "shed": 337470}}
//
// speedup_at_4 is ns/op(1 worker) / ns/op(4 workers): >1 means parallel
// compilation pays off (expect near-linear on multicore; ~1 or below on a
// single-CPU runner where workers only add scheduling overhead).
//
// With -phase-trace the entry additionally carries per-phase wall time
// summed from a Chrome trace produced by `record -trace`:
//
//	record -model demo -kernel fir -trace out.json
//	benchtraj -phase-trace out.json -out bench/trajectory.json -label "$SHA"
//
// When -phase-trace is given, bench input is optional: an entry with only
// phase_seconds is still recorded.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// Entry is one benchmark run in the trajectory.
type Entry struct {
	Label          string             `json:"label"`
	NsPerOp        map[string]float64 `json:"ns_per_op,omitempty"`
	SpeedupAt4     float64            `json:"speedup_at_4,omitempty"`
	SpeedupAt16    float64            `json:"speedup_at_16,omitempty"`
	ServerNsPerOp  map[string]float64 `json:"server_ns_per_op,omitempty"`
	CompileNsPerOp map[string]float64 `json:"compile_ns_per_op,omitempty"`
	TracedOverhead float64            `json:"traced_overhead,omitempty"`
	PhaseSeconds   map[string]float64 `json:"phase_seconds,omitempty"`
}

// errNoBench marks input that contained no benchmark lines — fatal on its
// own, tolerated when a phase trace supplies the entry's payload instead.
var errNoBench = errors.New("benchtraj: no BenchmarkParallelCompile, BenchmarkServerCompile or BenchmarkCompile{Baseline,Traced,TracedOverhead} lines in input")

var (
	benchLine    = regexp.MustCompile(`^BenchmarkParallelCompile(\d+)\S*\s+\d+\s+([\d.]+) ns/op`)
	serverLine   = regexp.MustCompile(`^BenchmarkServerCompile(\w*)\S*\s+\d+\s+([\d.]+) ns/op`)
	compileLine  = regexp.MustCompile(`^BenchmarkCompile(Baseline|Traced)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)
	overheadLine = regexp.MustCompile(`^BenchmarkCompileTracedOverhead\S*\s+\d+\s+[\d.]+ ns/op\s+([\d.]+) overhead`)
)

// serverKeys maps BenchmarkServerCompile<Suffix> onto trajectory keys.
var serverKeys = map[string]string{"": "base", "Shed": "shed", "QoS": "qos"}

// compileKeys maps BenchmarkCompile<Suffix> onto trajectory keys.
var compileKeys = map[string]string{"Baseline": "base", "Traced": "traced"}

// parse extracts worker-count → ns/op (parallel-compile lines), scenario
// → ns/op (server-latency lines), base/traced → ns/op (single-compile
// observability cost lines) and the interleaved traced/base overhead
// ratio from `go test -bench` output.  The compile pair and the overhead
// ratio keep the MINIMUM across repeated lines, so CI can run them with
// -count N and gate on the noise-free floor rather than on whichever
// single run the scheduler disturbed.
func parse(r io.Reader) (ns, server, compile map[string]float64, overhead float64, err error) {
	ns = make(map[string]float64)
	server = make(map[string]float64)
	compile = make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if m := overheadLine.FindStringSubmatch(line); m != nil {
			v, perr := strconv.ParseFloat(m[1], 64)
			if perr != nil {
				return nil, nil, nil, 0, fmt.Errorf("benchtraj: bad overhead in %q: %w", line, perr)
			}
			if overhead == 0 || v < overhead {
				overhead = v
			}
			continue
		}
		if m := benchLine.FindStringSubmatch(line); m != nil {
			v, perr := strconv.ParseFloat(m[2], 64)
			if perr != nil {
				return nil, nil, nil, 0, fmt.Errorf("benchtraj: bad ns/op in %q: %w", line, perr)
			}
			ns[m[1]] = v
			continue
		}
		if m := serverLine.FindStringSubmatch(line); m != nil {
			key, ok := serverKeys[m[1]]
			if !ok {
				key = m[1] // unknown scenario: keep it under its own name
			}
			v, perr := strconv.ParseFloat(m[2], 64)
			if perr != nil {
				return nil, nil, nil, 0, fmt.Errorf("benchtraj: bad ns/op in %q: %w", line, perr)
			}
			server[key] = v
			continue
		}
		if m := compileLine.FindStringSubmatch(line); m != nil {
			key := compileKeys[m[1]]
			v, perr := strconv.ParseFloat(m[2], 64)
			if perr != nil {
				return nil, nil, nil, 0, fmt.Errorf("benchtraj: bad ns/op in %q: %w", line, perr)
			}
			if prev, ok := compile[key]; !ok || v < prev {
				compile[key] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, 0, err
	}
	if len(ns) == 0 && len(server) == 0 && len(compile) == 0 && overhead == 0 {
		return nil, nil, nil, 0, errNoBench
	}
	return ns, server, compile, overhead, nil
}

// parsePhaseTrace sums span durations per name from a Chrome trace_event
// JSON file (as written by `record -trace`), in seconds.
func parsePhaseTrace(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		return nil, fmt.Errorf("benchtraj: %s is not a Chrome trace: %w", path, err)
	}
	phases := make(map[string]float64)
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		phases[ev.Name] += ev.Dur / 1e6 // trace durations are microseconds
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("benchtraj: no complete (ph=X) events in %s", path)
	}
	return phases, nil
}

// appendEntry loads the trajectory array (missing file = empty), appends,
// and writes it back pretty-printed.
func appendEntry(path string, e Entry) error {
	var entries []Entry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("benchtraj: %s is not a trajectory array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entries = append(entries, e)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// countEntries returns the number of entries in a trajectory file; a
// missing file counts as zero.  CI compares the count before and after
// its bench append so a silently-empty bench run fails the job instead
// of shipping a trajectory that stopped growing.
func countEntries(path string) (int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return 0, fmt.Errorf("benchtraj: %s is not a trajectory array: %w", path, err)
	}
	return len(entries), nil
}

// prevSlack is the tolerance the "prev" gate grants against run-to-run
// benchmark noise: the new entry may be up to 10% below the previous
// entry's speedup before the gate fails.
const prevSlack = 0.9

// gateSpeedup fails when the trajectory's newest entry regresses in
// parallel-compile speedup.  spec is either an absolute floor ("1.5") or
// "prev", which floors the new entry at prevSlack times the most recent
// earlier entry that recorded a speedup (nothing to compare against =
// pass: the gate bites from the second measured entry onward).
func gateSpeedup(path, spec string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("benchtraj: %s is not a trajectory array: %w", path, err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("benchtraj: %s has no entries to gate", path)
	}
	last := entries[len(entries)-1]
	if last.SpeedupAt4 == 0 {
		return fmt.Errorf("benchtraj: entry %q has no speedup_at_4; cannot gate", last.Label)
	}
	var min float64
	if spec == "prev" {
		for i := len(entries) - 2; i >= 0; i-- {
			if entries[i].SpeedupAt4 > 0 {
				min = entries[i].SpeedupAt4 * prevSlack
				break
			}
		}
		if min == 0 {
			return nil // first measured entry: nothing to regress from
		}
	} else {
		if min, err = strconv.ParseFloat(spec, 64); err != nil {
			return fmt.Errorf("benchtraj: -min-speedup-at-4 wants a number or \"prev\", got %q", spec)
		}
	}
	if last.SpeedupAt4 < min {
		return fmt.Errorf("benchtraj: speedup_at_4 regression: entry %q has %.3f, below the floor %.3f",
			last.Label, last.SpeedupAt4, min)
	}
	return nil
}

// gateTracedOverhead fails when the newest entry's traced compile costs
// more than ratio times its baseline compile — the observability layer's
// per-compile tax, gated so span plumbing on the hot path cannot creep.
// The interleaved traced_overhead measurement is preferred when the
// entry carries one (drift-immune by construction); otherwise the gate
// falls back to the ratio of the separately-timed pair's floors.  An
// entry with neither fails: a bench run that silently dropped its
// compile lines must not pass the gate it feeds.
func gateTracedOverhead(path, spec string) error {
	ratio, err := strconv.ParseFloat(spec, 64)
	if err != nil || ratio <= 0 {
		return fmt.Errorf("benchtraj: -max-traced-overhead wants a positive ratio, got %q", spec)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("benchtraj: %s is not a trajectory array: %w", path, err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("benchtraj: %s has no entries to gate", path)
	}
	last := entries[len(entries)-1]
	if last.TracedOverhead > 0 {
		if last.TracedOverhead > ratio {
			return fmt.Errorf("benchtraj: traced compile overhead %.4f exceeds the ceiling %.4f (interleaved measurement)",
				last.TracedOverhead, ratio)
		}
		return nil
	}
	base, traced := last.CompileNsPerOp["base"], last.CompileNsPerOp["traced"]
	if base <= 0 || traced <= 0 {
		return fmt.Errorf("benchtraj: entry %q has neither traced_overhead nor a compile_ns_per_op base/traced pair; cannot gate", last.Label)
	}
	if got := traced / base; got > ratio {
		return fmt.Errorf("benchtraj: traced compile overhead %.4f exceeds the ceiling %.4f (base %.0f ns/op, traced %.0f ns/op)",
			got, ratio, base, traced)
	}
	return nil
}

func run(in io.Reader, outPath, label, tracePath string) error {
	ns, server, compile, overhead, err := parse(in)
	if err != nil {
		// A run that only records phase timings has no bench lines to
		// parse; any other parse failure is still fatal.
		if !(errors.Is(err, errNoBench) && tracePath != "") {
			return err
		}
	}
	e := Entry{Label: label, NsPerOp: ns, ServerNsPerOp: server,
		CompileNsPerOp: compile, TracedOverhead: overhead}
	if len(e.NsPerOp) == 0 {
		e.NsPerOp = nil
	}
	if len(e.ServerNsPerOp) == 0 {
		e.ServerNsPerOp = nil
	}
	if len(e.CompileNsPerOp) == 0 {
		e.CompileNsPerOp = nil
	}
	if n1, ok1 := ns["1"]; ok1 {
		if n4, ok4 := ns["4"]; ok4 && n4 > 0 {
			e.SpeedupAt4 = n1 / n4
		}
		if n16, ok16 := ns["16"]; ok16 && n16 > 0 {
			e.SpeedupAt16 = n1 / n16
		}
	}
	if tracePath != "" {
		phases, err := parsePhaseTrace(tracePath)
		if err != nil {
			return err
		}
		e.PhaseSeconds = phases
	}
	return appendEntry(outPath, e)
}

func main() {
	inFile := flag.String("in", "-", "bench output file (- for stdin)")
	outFile := flag.String("out", "bench/trajectory.json", "trajectory JSON to append to")
	label := flag.String("label", "local", "label for this run (e.g. the commit SHA)")
	phaseTrace := flag.String("phase-trace", "", "Chrome trace JSON from `record -trace`; per-phase durations are added to the entry")
	entries := flag.String("entries", "", "print the entry count of this trajectory file and exit (missing file = 0)")
	minSpeedup := flag.String("min-speedup-at-4", "", "after appending, fail unless the new entry's speedup_at_4 meets this floor (a number, or \"prev\" for 90% of the previous entry)")
	maxTraced := flag.String("max-traced-overhead", "", "after appending, fail if the new entry's traced/base compile ratio exceeds this ceiling (e.g. 1.02 for 2%)")
	flag.Parse()

	if *entries != "" {
		n, err := countEntries(*entries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		fmt.Println(n)
		return
	}

	in := io.Reader(os.Stdin)
	if *inFile != "-" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, *outFile, *label, *phaseTrace); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	if *minSpeedup != "" {
		if err := gateSpeedup(*outFile, *minSpeedup); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
	}
	if *maxTraced != "" {
		if err := gateTracedOverhead(*outFile, *maxTraced); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
	}
}
