package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelCompile1 	    2138	    527672 ns/op	  291766 B/op	    3951 allocs/op
BenchmarkParallelCompile2 	    2103	    603139 ns/op	  291934 B/op	    3953 allocs/op
BenchmarkParallelCompile4 	     870	   1268698 ns/op	  291604 B/op	    3947 allocs/op
BenchmarkParallelCompile8-4 	     894	   1493683 ns/op	  291576 B/op	    3944 allocs/op
BenchmarkParallelCompile16-4 	     612	   1655133 ns/op	  291580 B/op	    3944 allocs/op
BenchmarkParallelCompile32-4 	     433	   1892411 ns/op	  291587 B/op	    3945 allocs/op
BenchmarkServerCompile-4     	      50	    353216 ns/op	  107867 B/op	    1517 allocs/op
BenchmarkServerCompileShed-4 	      50	    137470 ns/op	  107898 B/op	    1518 allocs/op
BenchmarkServerCompileQoS-4 	      50	    221133 ns/op	  107902 B/op	    1519 allocs/op
BenchmarkCompileBaseline-4 	    2355	    248272 ns/op	   81876 B/op	    1880 allocs/op
BenchmarkCompileBaseline-4 	    3073	    199936 ns/op	   81858 B/op	    1880 allocs/op
BenchmarkCompileTraced-4   	    2341	    251843 ns/op	   83097 B/op	    1894 allocs/op
BenchmarkCompileTraced-4   	    2844	    201582 ns/op	   83073 B/op	    1894 allocs/op
BenchmarkCompileTracedOverhead-4 	    1204	    455813 ns/op	         1.031 overhead
BenchmarkCompileTracedOverhead-4 	    1311	    441209 ns/op	         1.012 overhead
PASS
ok  	repro	5.234s
`

func TestParse(t *testing.T) {
	ns, server, compile, overhead, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 6 || ns["1"] != 527672 || ns["8"] != 1493683 || ns["32"] != 1892411 {
		t.Fatalf("parsed %v", ns)
	}
	if len(server) != 3 || server["base"] != 353216 || server["shed"] != 137470 || server["qos"] != 221133 {
		t.Fatalf("server latencies %v", server)
	}
	// Repeated -count lines keep the minimum of each half of the pair,
	// and of the interleaved overhead ratio.
	if len(compile) != 2 || compile["base"] != 199936 || compile["traced"] != 201582 {
		t.Fatalf("compile pair %v", compile)
	}
	if overhead != 1.012 {
		t.Fatalf("overhead = %v, want 1.012", overhead)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, _, _, _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("no error for input without benchmark lines")
	}
}

func TestParseServerOnly(t *testing.T) {
	in := "BenchmarkServerCompile-4 	 50 	 353216 ns/op\nPASS\n"
	ns, server, _, _, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 || server["base"] != 353216 {
		t.Fatalf("ns=%v server=%v", ns, server)
	}
}

func TestRunAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench", "trajectory.json")
	for _, label := range []string{"first", "second"} {
		if err := run(strings.NewReader(sample), path, label, ""); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("trajectory not valid JSON: %v\n%s", err, data)
	}
	if len(entries) != 2 || entries[0].Label != "first" || entries[1].Label != "second" {
		t.Fatalf("entries %+v", entries)
	}
	want := 527672.0 / 1268698.0
	if got := entries[0].SpeedupAt4; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("speedup_at_4 = %v, want %v", got, want)
	}
	want16 := 527672.0 / 1655133.0
	if got := entries[0].SpeedupAt16; got < want16-1e-9 || got > want16+1e-9 {
		t.Fatalf("speedup_at_16 = %v, want %v", got, want16)
	}
	if entries[0].ServerNsPerOp["shed"] != 137470 {
		t.Fatalf("server_ns_per_op not persisted: %+v", entries[0])
	}
	if entries[0].CompileNsPerOp["base"] != 199936 || entries[0].CompileNsPerOp["traced"] != 201582 {
		t.Fatalf("compile_ns_per_op not persisted: %+v", entries[0])
	}
	if entries[0].TracedOverhead != 1.012 {
		t.Fatalf("traced_overhead not persisted: %+v", entries[0])
	}
}

func TestRunRejectsCorruptTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trajectory.json")
	if err := os.WriteFile(path, []byte("{not an array"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(sample), path, "x", ""); err == nil {
		t.Fatal("corrupt trajectory accepted")
	}
}

const sampleTrace = `{"displayTimeUnit": "ms", "traceEvents": [
  {"name": "record.run", "ph": "X", "ts": 0, "dur": 5000, "pid": 1, "tid": 1},
  {"name": "retarget", "ph": "X", "ts": 10, "dur": 3000, "pid": 1, "tid": 1},
  {"name": "ise", "ph": "X", "ts": 20, "dur": 1000, "pid": 1, "tid": 1},
  {"name": "ise.dest", "ph": "X", "ts": 30, "dur": 400, "pid": 1, "tid": 1},
  {"name": "ise.dest", "ph": "X", "ts": 500, "dur": 600, "pid": 1, "tid": 1},
  {"name": "meta", "ph": "M", "ts": 0, "dur": 99, "pid": 1, "tid": 1}
]}`

func TestParsePhaseTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := os.WriteFile(path, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	phases, err := parsePhaseTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	// ise.dest durations sum across spans; the "M" metadata event is ignored.
	if phases["ise.dest"] != 0.001 || phases["retarget"] != 0.003 {
		t.Fatalf("phases %v", phases)
	}
	if _, ok := phases["meta"]; ok {
		t.Fatalf("metadata event counted as a phase: %v", phases)
	}
}

func TestRunPhaseTraceWithoutBench(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.json")
	if err := os.WriteFile(trace, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trajectory.json")
	// Empty bench input is tolerated when a phase trace is supplied...
	if err := run(strings.NewReader(""), path, "trace-only", trace); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].PhaseSeconds["record.run"] != 0.005 {
		t.Fatalf("entries %+v", entries)
	}
	if len(entries[0].NsPerOp) != 0 {
		t.Fatalf("trace-only entry has ns_per_op: %+v", entries[0])
	}
	// ...but not without one.
	if err := run(strings.NewReader(""), path, "none", ""); err == nil {
		t.Fatal("empty bench input accepted without a phase trace")
	}
}

// writeTrajectory writes a trajectory of entries with the given
// speedup_at_4 values (0 = entry without a measured speedup).
func writeTrajectory(t *testing.T, speedups ...float64) string {
	t.Helper()
	entries := make([]Entry, len(speedups))
	for i, s := range speedups {
		entries[i] = Entry{Label: "e", SpeedupAt4: s}
	}
	data, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trajectory.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateSpeedup covers the CI regression gate on speedup_at_4.
func TestGateSpeedup(t *testing.T) {
	cases := []struct {
		name     string
		speedups []float64
		spec     string
		wantErr  bool
	}{
		{"absolute-pass", []float64{0.80}, "0.5", false},
		{"absolute-fail", []float64{0.40}, "0.5", true},
		{"prev-pass-equal", []float64{0.80, 0.80}, "prev", false},
		{"prev-pass-within-slack", []float64{0.80, 0.75}, "prev", false},
		{"prev-fail-regression", []float64{0.80, 0.60}, "prev", true},
		{"prev-first-entry", []float64{0.80}, "prev", false},
		{"prev-skips-unmeasured", []float64{0.80, 0, 0.60}, "prev", true},
		{"bad-spec", []float64{0.80}, "fast", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTrajectory(t, tc.speedups...)
			err := gateSpeedup(path, tc.spec)
			if (err != nil) != tc.wantErr {
				t.Fatalf("gateSpeedup(%v, %q) = %v, wantErr=%v", tc.speedups, tc.spec, err, tc.wantErr)
			}
		})
	}
}

// TestGateSpeedupRejectsUnmeasuredHead fails the gate when the entry it is
// supposed to protect carries no speedup at all — a bench run that silently
// dropped its parallel lines must not pass.
func TestGateSpeedupRejectsUnmeasuredHead(t *testing.T) {
	path := writeTrajectory(t, 0.80, 0)
	if err := gateSpeedup(path, "prev"); err == nil {
		t.Fatal("entry without speedup_at_4 passed the gate")
	}
	if err := gateSpeedup(writeTrajectory(t), "0.5"); err == nil {
		t.Fatal("empty trajectory passed the gate")
	}
}

// writeCompileTrajectory writes a one-entry trajectory with the given
// compile_ns_per_op pair (zeroes are omitted).
func writeCompileTrajectory(t *testing.T, base, traced float64) string {
	t.Helper()
	e := Entry{Label: "head", CompileNsPerOp: map[string]float64{}}
	if base > 0 {
		e.CompileNsPerOp["base"] = base
	}
	if traced > 0 {
		e.CompileNsPerOp["traced"] = traced
	}
	data, err := json.Marshal([]Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trajectory.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateTracedOverhead covers the CI ceiling on the tracing tax.
func TestGateTracedOverhead(t *testing.T) {
	cases := []struct {
		name         string
		base, traced float64
		spec         string
		wantErr      bool
	}{
		{"within-ceiling", 200000, 203000, "1.02", false},
		{"at-ceiling", 200000, 204000, "1.02", false},
		{"over-ceiling", 200000, 210000, "1.02", true},
		{"missing-traced", 200000, 0, "1.02", true},
		{"missing-base", 0, 203000, "1.02", true},
		{"bad-spec", 200000, 203000, "fast", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeCompileTrajectory(t, tc.base, tc.traced)
			err := gateTracedOverhead(path, tc.spec)
			if (err != nil) != tc.wantErr {
				t.Fatalf("gateTracedOverhead(base=%v traced=%v, %q) = %v, wantErr=%v",
					tc.base, tc.traced, tc.spec, err, tc.wantErr)
			}
		})
	}
}

// TestGateTracedOverheadPrefersInterleaved: when the entry carries the
// drift-immune interleaved measurement, the gate judges that and ignores
// the separately-timed pair entirely.
func TestGateTracedOverheadPrefersInterleaved(t *testing.T) {
	write := func(overhead float64, pair map[string]float64) string {
		t.Helper()
		data, err := json.Marshal([]Entry{{Label: "head", TracedOverhead: overhead, CompileNsPerOp: pair}})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "trajectory.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Interleaved ratio within the ceiling passes even with no pair at all.
	if err := gateTracedOverhead(write(1.011, nil), "1.02"); err != nil {
		t.Fatalf("clean interleaved measurement failed the gate: %v", err)
	}
	// Interleaved ratio over the ceiling fails even when the pair looks fine.
	if err := gateTracedOverhead(write(1.05, map[string]float64{"base": 200000, "traced": 201000}), "1.02"); err == nil {
		t.Fatal("over-ceiling interleaved measurement passed the gate")
	}
}

// TestCountEntriesGuardsGrowth covers the CI guard: the count is 0 for a
// missing file, grows by exactly one per append, and a corrupt file is an
// error rather than a silent zero.
func TestCountEntriesGuardsGrowth(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trajectory.json")
	if n, err := countEntries(out); err != nil || n != 0 {
		t.Fatalf("countEntries(missing) = (%d, %v), want (0, nil)", n, err)
	}
	before, _ := countEntries(out)
	if err := run(strings.NewReader(sample), out, "a", ""); err != nil {
		t.Fatal(err)
	}
	after, err := countEntries(out)
	if err != nil {
		t.Fatal(err)
	}
	if after != before+1 {
		t.Fatalf("append grew count %d -> %d, want +1", before, after)
	}
	if err := run(strings.NewReader(sample), out, "b", ""); err != nil {
		t.Fatal(err)
	}
	if n, _ := countEntries(out); n != 2 {
		t.Fatalf("second append: count = %d, want 2", n)
	}
	// A bench run that produced no usable output must NOT grow the file —
	// that is exactly the condition the CI guard turns into a failure.
	if err := run(strings.NewReader("PASS\nok repro 1s\n"), out, "empty", ""); err == nil {
		t.Fatal("empty bench input did not error")
	}
	if n, _ := countEntries(out); n != 2 {
		t.Fatalf("empty bench input changed the count to %d", n)
	}
	if err := os.WriteFile(out, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := countEntries(out); err == nil {
		t.Fatal("corrupt trajectory file did not error")
	}
}
