package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/antientropy"
	"repro/internal/rcache"
	"repro/internal/resilience"
)

// seedServerArtifact retargets the demo model on a server and returns
// (key, encoded bytes) — the shape a peer push carries.
func seedServerArtifact(t *testing.T, s *server, ts *httptest.Server) (string, []byte) {
	t.Helper()
	var rt retargetResponse
	code, raw := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, &rt)
	if code != http.StatusOK {
		t.Fatalf("retarget: %d %s", code, raw)
	}
	data, err := s.cache.Encoded(rt.Key)
	if err != nil {
		t.Fatal(err)
	}
	return rt.Key, data
}

func putArtifact(t *testing.T, url string, data []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestArtifactPush(t *testing.T) {
	srcS, srcTS := newTestServer(t, serverConfig{cacheDir: t.TempDir()})
	key, data := seedServerArtifact(t, srcS, srcTS)

	dst, dstTS := newTestServer(t, serverConfig{cacheDir: t.TempDir()})

	resp := putArtifact(t, dstTS.URL+"/v1/artifact/"+key, data)
	if resp.StatusCode != http.StatusNoContent {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("push: %d %s", resp.StatusCode, body)
	}
	// The replica is durable and servable onward.
	if _, err := dst.cache.Encoded(key); err != nil {
		t.Fatalf("pushed artifact not durable: %v", err)
	}
	// Idempotent: a second push is a cheap success.
	if resp := putArtifact(t, dstTS.URL+"/v1/artifact/"+key, data); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("duplicate push: %d", resp.StatusCode)
	}
}

func TestArtifactPushRejectsCorruptAndMalformed(t *testing.T) {
	srcS, srcTS := newTestServer(t, serverConfig{cacheDir: t.TempDir()})
	key, data := seedServerArtifact(t, srcS, srcTS)

	dst, dstTS := newTestServer(t, serverConfig{cacheDir: t.TempDir()})

	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x01
	if resp := putArtifact(t, dstTS.URL+"/v1/artifact/"+key, bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt push: %d, want 400", resp.StatusCode)
	}
	if _, err := dst.cache.Encoded(key); err == nil {
		t.Fatal("corrupt push was persisted")
	}
	if resp := putArtifact(t, dstTS.URL+"/v1/artifact/not-a-key", data); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed-key push: %d, want 400", resp.StatusCode)
	}
}

// TestDegradedRefusalMapping pins the wire shape of a degraded-disk
// refusal without needing a real unwritable disk: 503, a Retry-After
// hint, and the "degraded" refusal kind clients branch on.
func TestDegradedRefusalMapping(t *testing.T) {
	err := &resilience.DegradedError{Resource: "disk tier", After: rcache.DegradedRetryAfter}
	if got := statusFor(err); got != http.StatusServiceUnavailable {
		t.Fatalf("statusFor(DegradedError) = %d, want 503", got)
	}
	if got := refusalKind(err); got != "degraded" {
		t.Fatalf("refusalKind(DegradedError) = %q, want degraded", got)
	}
	if after, ok := resilience.RetryAfterOf(err); !ok || after != rcache.DegradedRetryAfter {
		t.Fatalf("RetryAfterOf = %v/%v, want %v", after, ok, rcache.DegradedRetryAfter)
	}
}

func TestArtifactPushDegradedDiskRefuses(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("read-only directories do not bind as root")
	}
	srcS, srcTS := newTestServer(t, serverConfig{cacheDir: t.TempDir()})
	key, data := seedServerArtifact(t, srcS, srcTS)

	// Revoking write permission on the store directory degrades the disk
	// tier on the first write attempt (os.ErrPermission is an
	// unusable-disk condition) — the same path a full or read-only disk
	// takes in production.
	dstDir := t.TempDir()
	dst, dstTS := newTestServer(t, serverConfig{cacheDir: dstDir})
	if err := os.Chmod(dstDir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dstDir, 0o755)

	resp := putArtifact(t, dstTS.URL+"/v1/artifact/"+key, data)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded push: %d, want 503", resp.StatusCode)
	}
	if !dst.cache.Degraded() {
		t.Fatal("disk tier should be degraded")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 must carry Retry-After")
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "degraded" {
		t.Fatalf("refusal kind %q, want degraded", e.Kind)
	}
}

func TestArtifactPushDrainExempt(t *testing.T) {
	srcS, srcTS := newTestServer(t, serverConfig{cacheDir: t.TempDir()})
	key, data := seedServerArtifact(t, srcS, srcTS)

	dst, dstTS := newTestServer(t, serverConfig{cacheDir: t.TempDir()})
	dst.beginDrain()

	// New compile work is refused during drain...
	if code, _ := post(t, dstTS.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining retarget: %d, want 503", code)
	}
	// ...but an anti-entropy backfill still lands: a draining node is
	// exactly the one whose replicas are about to disappear.
	if resp := putArtifact(t, dstTS.URL+"/v1/artifact/"+key, data); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("draining push: %d, want 204", resp.StatusCode)
	}
	if _, err := dst.cache.Encoded(key); err != nil {
		t.Fatalf("backfill during drain not durable: %v", err)
	}
}

func TestInventoryEndpoint(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{cacheDir: t.TempDir()})
	key, _ := seedServerArtifact(t, s, ts)

	get := func(q string) antientropy.Inventory {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/inventory" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("inventory%s: %d", q, resp.StatusCode)
		}
		var inv antientropy.Inventory
		if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
			t.Fatal(err)
		}
		return inv
	}

	full := get("")
	if full.Total != 1 || len(full.Keys) != 1 || full.Keys[0] != key {
		t.Fatalf("inventory %+v, want the one seeded key", full)
	}
	if want := antientropy.SetDigest([]string{key}); full.Digest != want {
		t.Fatalf("digest %q, want %q", full.Digest, want)
	}

	probe := get("?limit=-1")
	if probe.Digest != full.Digest || len(probe.Keys) != 0 {
		t.Fatalf("digest probe %+v, want keyless with same digest", probe)
	}

	// Inventory stays readable during drain (GET, drain-exempt).
	s.beginDrain()
	if inv := get(""); inv.Total != 1 {
		t.Fatalf("draining inventory %+v", inv)
	}
}

// TestAntiEntropyConvergesFleet wires three real servers into a fleet
// (shared -advertise-style ring naming via httptest URLs) and checks one
// node's sweeps replicate its owned artifact to the ring successor.
func TestAntiEntropyConvergesFleet(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	var servers [3]*server
	var urls [3]string

	// Start the three listeners first so every node can be configured
	// with the others' concrete URLs.
	var tss [3]*httptest.Server
	for i := range tss {
		tss[i] = httptest.NewUnstartedServer(nil)
		tss[i].Start()
		urls[i] = tss[i].URL
		t.Cleanup(tss[i].Close)
	}
	for i := range tss {
		var peers []string
		for j := range tss {
			if j != i {
				peers = append(peers, urls[j])
			}
		}
		s, err := newServer(serverConfig{
			cacheDir:   dirs[i],
			nodeID:     urls[i],
			advertise:  urls[i],
			peers:      peers,
			aeInterval: time.Hour, // sweeps run manually below
			replicate:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		tss[i].Config.Handler = s.handler()
	}

	// Retarget on node 0: it now holds the only copy.
	var rt retargetResponse
	if code, raw := post(t, urls[0]+"/v1/retarget", map[string]string{"model_name": "demo"}, &rt); code != http.StatusOK {
		t.Fatalf("retarget: %d %s", code, raw)
	}

	// All three nodes agree on the owner because the ring members are the
	// same advertised URLs everywhere.
	owner := servers[0].ring.Owner(rt.Key)
	for i := range servers {
		if servers[i].ring.Owner(rt.Key) != owner {
			t.Fatalf("node %d disagrees on owner of %s", i, rt.Key)
		}
	}
	// Anti-entropy pushes only keys a node owns.  The retarget may have
	// landed on a non-owner, so route a by-key compile to the owner: its
	// miss-replication peer fetch pulls the artifact onto the owner's
	// disk, after which its sweeps keep the key at the replication target.
	ownerIdx := -1
	for i, u := range urls {
		if u == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %s is not one of the fleet URLs", owner)
	}
	if code, raw := post(t, urls[ownerIdx]+"/v1/compile", map[string]interface{}{
		"key": rt.Key, "source": "int y; y = 1;",
	}, nil); code != http.StatusOK {
		t.Fatalf("by-key compile on owner: %d %s", code, raw)
	}
	if _, err := servers[ownerIdx].cache.Encoded(rt.Key); err != nil {
		t.Fatalf("owner did not persist the replicated artifact: %v", err)
	}
	for _, s := range servers {
		if s.ae == nil {
			t.Fatal("anti-entropy agent not constructed")
		}
		s.ae.Sweep(context.Background())
	}

	holders := 0
	for i := range servers {
		if _, err := servers[i].cache.Encoded(rt.Key); err == nil {
			holders++
		}
	}
	if holders < 2 {
		t.Fatalf("artifact on %d node(s) after one sweep round, want >= 2", holders)
	}

	// Convergence is stable: another round pushes nothing new.
	for _, s := range servers {
		if rep := s.ae.Sweep(context.Background()); rep.Pushed != 0 {
			t.Fatalf("post-convergence sweep still pushed: %+v", rep)
		}
	}
}
