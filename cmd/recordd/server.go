package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/models"
	"repro/internal/rcache"
)

// serverConfig tunes one daemon instance.
type serverConfig struct {
	cacheDir    string
	cacheSize   int
	workers     int           // bounded worker pool for retarget/compile work
	timeout     time.Duration // per-request wall-clock budget (0 = unlimited)
	maxBDDNodes int           // per-request BDD node cap (0 = unlimited)
	maxRoutes   int           // per-request route cap (0 = phase default)
	maxBody     int64         // request body cap in bytes
}

func (c serverConfig) withDefaults() serverConfig {
	if c.workers <= 0 {
		c.workers = 4
	}
	if c.cacheSize <= 0 {
		c.cacheSize = rcache.DefaultMaxEntries
	}
	if c.maxBody <= 0 {
		c.maxBody = 4 << 20
	}
	return c
}

// phaseClock accumulates latency for one phase of request handling.
type phaseClock struct {
	count int64 // atomic
	nanos int64 // atomic
}

func (p *phaseClock) observe(d time.Duration) {
	atomic.AddInt64(&p.count, 1)
	atomic.AddInt64(&p.nanos, int64(d))
}

func (p *phaseClock) snapshot() (count int64, seconds float64) {
	return atomic.LoadInt64(&p.count), float64(atomic.LoadInt64(&p.nanos)) / 1e9
}

// server is the recordd HTTP service: a retarget-artifact cache behind
// /v1/retarget and /v1/compile, with health and metrics endpoints.
type server struct {
	cfg   serverConfig
	cache *rcache.Cache
	sem   chan struct{} // worker pool slots

	inflight int64 // atomic: compiles currently executing

	retargetClock phaseClock // time inside cache.Get (includes hits)
	compileClock  phaseClock // time inside Entry.Compile
	encodeClock   phaseClock // time rendering responses
}

func newServer(cfg serverConfig) (*server, error) {
	cfg = cfg.withDefaults()
	cache, err := rcache.New(rcache.Options{Dir: cfg.cacheDir, MaxEntries: cfg.cacheSize})
	if err != nil {
		return nil, err
	}
	return &server{
		cfg:   cfg,
		cache: cache,
		sem:   make(chan struct{}, cfg.workers),
	}, nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/retarget", s.handleRetarget)
	mux.HandleFunc("/v1/compile", s.handleCompile)
	return mux
}

// acquire takes a worker-pool slot, failing with 503 when the client goes
// away before one frees up.
func (s *server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("worker pool saturated: %w", ctx.Err())
	}
}

func (s *server) release() { <-s.sem }

// budget builds the per-request resource budget, mirroring the record CLI:
// wall-clock timeout, BDD-node cap, route cap.
func (s *server) budget(ctx context.Context) (*diag.Budget, context.CancelFunc) {
	cancel := context.CancelFunc(func() {})
	if s.cfg.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
	}
	return &diag.Budget{Ctx: ctx, MaxBDDNodes: s.cfg.maxBDDNodes, MaxRoutes: s.cfg.maxRoutes}, cancel
}

// ---- request/response types --------------------------------------------

// modelRequest selects a processor model: inline MDL source or the name of
// a bundled model.
type modelRequest struct {
	Model     string `json:"model,omitempty"`      // inline MDL source
	ModelName string `json:"model_name,omitempty"` // bundled model (see record -list)
}

func (m *modelRequest) source() (string, error) {
	switch {
	case m.Model != "" && m.ModelName != "":
		return "", fmt.Errorf("use either model or model_name, not both")
	case m.Model != "":
		return m.Model, nil
	case m.ModelName != "":
		src, ok := models.Get(m.ModelName)
		if !ok {
			return "", fmt.Errorf("unknown bundled model %q", m.ModelName)
		}
		return src, nil
	}
	return "", fmt.Errorf("no model: set model (inline MDL) or model_name")
}

type retargetRequest struct {
	modelRequest
}

type retargetResponse struct {
	Key       string `json:"key"`
	Name      string `json:"name"`
	Templates int    `json:"templates"`
	Rules     int    `json:"rules"`
	Cache     string `json:"cache"` // hit | hit-disk | miss | coalesced
	Warnings  int    `json:"warnings,omitempty"`
}

type compileRequest struct {
	modelRequest
	Key     string `json:"key,omitempty"` // artifact key from /v1/retarget
	Source  string `json:"source"`        // RecC program
	Options struct {
		NoCompaction bool `json:"no_compaction,omitempty"`
		NoPeephole   bool `json:"no_peephole,omitempty"`
	} `json:"options"`
}

type compileResponse struct {
	Key     string   `json:"key"`
	Name    string   `json:"name"`
	Cache   string   `json:"cache"`
	SeqLen  int      `json:"seq_len"`  // RT instructions before compaction
	CodeLen int      `json:"code_len"` // instruction words
	Words   []uint64 `json:"words"`
	Listing string   `json:"listing"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers -----------------------------------------------------------

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	st := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var lines []string
	add := func(name string, v interface{}) {
		lines = append(lines, fmt.Sprintf("recordd_%s %v", name, v))
	}
	add("cache_mem_hits_total", st.MemHits)
	add("cache_disk_hits_total", st.DiskHits)
	add("cache_misses_total", st.Misses)
	add("cache_coalesced_total", st.Coalesced)
	add("cache_evictions_total", st.Evictions)
	add("cache_corrupt_total", st.Corrupt)
	add("retargets_total", st.Retargets)
	add("inflight_compiles", atomic.LoadInt64(&s.inflight))
	add("worker_pool_size", s.cfg.workers)
	for _, pc := range []struct {
		name  string
		clock *phaseClock
	}{
		{"retarget", &s.retargetClock},
		{"compile", &s.compileClock},
		{"encode", &s.encodeClock},
	} {
		n, secs := pc.clock.snapshot()
		add("phase_"+pc.name+"_count", n)
		add("phase_"+pc.name+"_seconds_total", fmt.Sprintf("%.6f", secs))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

func (s *server) handleRetarget(w http.ResponseWriter, r *http.Request) {
	var req retargetRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	mdl, err := req.source()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.release()

	rep := diag.NewReporter()
	budget, cancel := s.budget(r.Context())
	defer cancel()

	start := time.Now()
	entry, outcome, err := s.cache.Get(mdl, core.RetargetOptions{Reporter: rep, Budget: budget})
	s.retargetClock.observe(time.Since(start))
	if err != nil {
		s.fail(w, statusFor(err), fmt.Errorf("retarget: %w", err))
		return
	}
	t := entry.Target()
	writeJSON(w, http.StatusOK, retargetResponse{
		Key:       entry.Key,
		Name:      t.Name,
		Templates: t.Base.Len(),
		Rules:     len(t.Grammar.Rules),
		Cache:     string(outcome),
		Warnings:  rep.Warns(),
	})
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req compileRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Source == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("no source program"))
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.release()
	atomic.AddInt64(&s.inflight, 1)
	defer atomic.AddInt64(&s.inflight, -1)

	var (
		entry   *rcache.Entry
		outcome rcache.Outcome
	)
	switch {
	case req.Key != "":
		if req.Model != "" || req.ModelName != "" {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("use either key or a model, not both"))
			return
		}
		var ok bool
		entry, ok = s.cache.Lookup(req.Key)
		if !ok {
			s.fail(w, http.StatusNotFound,
				fmt.Errorf("no artifact for key %s: retarget first or send the model inline", req.Key))
			return
		}
		outcome = rcache.Mem
	default:
		mdl, err := req.source()
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		budget, cancel := s.budget(r.Context())
		defer cancel()
		start := time.Now()
		entry, outcome, err = s.cache.Get(mdl, core.RetargetOptions{Budget: budget})
		s.retargetClock.observe(time.Since(start))
		if err != nil {
			s.fail(w, statusFor(err), fmt.Errorf("retarget: %w", err))
			return
		}
	}

	start := time.Now()
	res, err := entry.Compile(req.Source, core.CompileOptions{
		NoCompaction: req.Options.NoCompaction,
		NoPeephole:   req.Options.NoPeephole,
	})
	s.compileClock.observe(time.Since(start))
	if err != nil {
		s.fail(w, statusFor(err), fmt.Errorf("compile: %w", err))
		return
	}

	start = time.Now()
	resp := compileResponse{
		Key:     entry.Key,
		Name:    entry.Target().Name,
		Cache:   string(outcome),
		SeqLen:  res.SeqLen(),
		CodeLen: res.CodeLen(),
		Words:   res.Words(),
		Listing: entry.Listing(res),
	}
	s.encodeClock.observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// ---- plumbing -----------------------------------------------------------

func (s *server) readJSON(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.maxBody+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return false
	}
	if int64(len(body)) > s.cfg.maxBody {
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds %d bytes", s.cfg.maxBody))
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return false
	}
	return true
}

func (s *server) fail(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusFor maps pipeline failures onto HTTP statuses: resource-budget
// exhaustion is the server's fault class (504-ish), internal faults 500,
// everything else is a caller problem (unprocessable model/program).
func statusFor(err error) int {
	var be *diag.BudgetError
	if errors.As(err, &be) {
		return http.StatusGatewayTimeout
	}
	var pe *diag.PanicError
	if errors.As(err, &pe) {
		return http.StatusInternalServerError
	}
	return http.StatusUnprocessableEntity
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
