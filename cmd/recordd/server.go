package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/antientropy"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/faultpoint"
	"repro/internal/fleet"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/rcache"
	"repro/internal/resilience"
)

// serverConfig tunes one daemon instance.
type serverConfig struct {
	cacheDir    string
	cacheSize   int
	workers     int           // bounded worker pool for retarget/compile work
	timeout     time.Duration // per-request wall-clock budget (0 = unlimited)
	maxBDDNodes int           // per-request BDD node cap (0 = unlimited)
	maxRoutes   int           // per-request route cap (0 = phase default)
	maxBody     int64         // request body cap in bytes

	maxQueue    int           // admission bound on pool-slot waiters (0 = unlimited)
	brkWindow   int           // breaker outcome window per model (0 = breaker off)
	brkRate     float64       // breaker failure-rate threshold
	brkCooldown time.Duration // breaker open -> half-open cooldown

	qosWeights   [qos.NumClasses]int // per-class dispatch weights (0 = qos defaults)
	prewarmEvery time.Duration       // speculative pre-warm sweep interval (0 = off)
	prewarmTop   int                 // hot models considered per sweep

	nodeID      string        // fleet identity: /healthz field + node metric label
	advertise   string        // this node's own base URL, for ring membership ("" = nodeID)
	peers       []string      // base URLs of fleet peers to fetch artifacts from
	peerTimeout time.Duration // per-peer artifact fetch budget

	scrubInterval time.Duration // disk-scrub cycle interval (0 = off)
	scrubRate     float64       // scrub pacing, artifacts/sec (0 = rcache default)
	aeInterval    time.Duration // anti-entropy sweep interval (0 = off)
	replicate     int           // desired durable copies per owned key (0 = default 2)

	traceSpans int // span-ring bound for the request tracer (0 = default)

	sloTargets      map[string]time.Duration // per-route latency objectives (nil = defaults)
	sloAvailability float64                  // good-event fraction objective (0 = default)
	sloFastWindow   time.Duration            // fast burn window (0 = default)
	sloSlowWindow   time.Duration            // slow burn window (0 = default)

	brkClock func() time.Time // injectable breaker clock (tests); nil = time.Now
}

// defaultSLOTargets are the per-route latency objectives: a compile
// should be interactive, a retarget may legitimately run the full
// pipeline, artifact serves are a disk read.
func defaultSLOTargets() map[string]time.Duration {
	return map[string]time.Duration{
		"retarget": 60 * time.Second,
		"compile":  500 * time.Millisecond,
		"batch":    10 * time.Second,
		"artifact": 100 * time.Millisecond,
	}
}

func (c serverConfig) withDefaults() serverConfig {
	if c.workers <= 0 {
		c.workers = 4
	}
	if c.cacheSize <= 0 {
		c.cacheSize = rcache.DefaultMaxEntries
	}
	if c.maxBody <= 0 {
		c.maxBody = 4 << 20
	}
	if c.nodeID == "" {
		c.nodeID = "recordd"
	}
	if c.peerTimeout <= 0 {
		c.peerTimeout = 2 * time.Second
	}
	if c.prewarmTop <= 0 {
		c.prewarmTop = 4
	}
	if c.replicate <= 0 {
		c.replicate = 2
	}
	if c.traceSpans <= 0 {
		c.traceSpans = 4096
	}
	if c.sloTargets == nil {
		c.sloTargets = defaultSLOTargets()
	}
	if c.sloFastWindow <= 0 {
		c.sloFastWindow = time.Minute
	}
	if c.sloSlowWindow <= 0 {
		c.sloSlowWindow = 10 * time.Minute
	}
	return c
}

// server is the recordd HTTP service: a retarget-artifact cache behind
// /v1/retarget, /v1/compile and /v1/compile-batch, with health and
// metrics endpoints.  Targets are frozen, so compiles against one entry
// run genuinely in parallel — the worker pool bounds CPU, not correctness.
//
// The service protects itself (internal/resilience + internal/qos): the
// QoS scheduler owns the worker slots — weighted multi-queue admission
// over interactive/batch priority classes sheds with 429 + Retry-After
// once the backlog exceeds -max-queue (batch first, always), duplicate
// /v1/compile requests coalesce into one execution, and idle capacity
// speculatively pre-warms hot models.  A per-model circuit breaker turns
// a repeatedly failing model into fast 503s instead of burnt retarget
// workers, and beginDrain flips the whole surface into refusal mode so
// shutdown finishes in-flight work and nothing is dropped without an
// explicit status.
//
// All counters and gauges live in one obs.Registry: the cache and the
// compile pipeline register their own instruments against it, the
// request-handling instruments below are the server's, and /metrics is a
// plain registry scrape — the server keeps no metric state of its own.
type server struct {
	cfg   serverConfig
	cache *rcache.Cache

	sched     *qos.Scheduler // worker slots + per-class admission
	coal      *qos.Coalescer // duplicate /v1/compile merging
	pop       *qos.Popularity
	prewarmer *qos.Prewarmer

	brk      *resilience.Breaker
	drainCh  chan struct{} // closed when draining starts
	draining atomic.Bool

	reg    *obs.Registry
	scp    *obs.Scope      // registry-only scope for work outside any request
	tracer *obs.Tracer     // bounded span ring served at /v1/debug/spans
	slo    *obs.SLOTracker // per-route burn-rate monitor

	gInflight     *obs.Gauge        // compiles currently executing
	gTargInflight *obs.GaugeVec     // by artifact key; series dropped at zero
	hPhase        *obs.HistogramVec // request-handling latency by phase

	gQueue        *obs.GaugeVec   // queued waiters, by priority class
	gDraining     *obs.Gauge      // 1 while draining
	cShed         *obs.CounterVec // requests shed by admission, by class
	cDispatched   *obs.CounterVec // pool slots granted, by class
	cCoalesced    *obs.Counter    // duplicate compiles answered from a leader's run
	cPrewarmSweep *obs.Counter    // pre-warm sweeps run
	cBrkOpens     *obs.Counter    // breaker trips to open
	cBrkReject    *obs.Counter    // requests refused by an open circuit
	cErrors       *obs.CounterVec // error responses, by status
	cAborts       *obs.Counter    // client disconnects before a response

	ring     *fleet.Ring   // fleet membership, for rebalancing gauges
	gRingKey *obs.GaugeVec // disk-store keys owned, by ring member

	// Fleet state: peer health drives which ring peer a cache miss
	// consults first; peerHTTP is the transport for artifact fetches.
	peerHealth *fleet.Tracker
	peerHTTP   *http.Client

	cPeerFetch      *obs.CounterVec // by node, peer, outcome: hit | miss | error
	cArtifactServes *obs.CounterVec // by node, outcome: hit | miss
	cArtifactPushes *obs.CounterVec // by node, outcome: ok | degraded | rejected

	ae *antientropy.Agent // push replication; nil when peers or interval are unset

	// targMu serializes the zero-check-then-delete on gTargInflight so a
	// concurrent Inc cannot land between Dec and Delete.
	targMu sync.Mutex
}

func newServer(cfg serverConfig) (*server, error) {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	scp := obs.NewScope(reg, nil)
	// The cache's peer hook closes over the server being built: peer
	// fetches only run while serving requests, well after s is assigned.
	var s *server
	copts := rcache.Options{Dir: cfg.cacheDir, MaxEntries: cfg.cacheSize, Obs: scp, ScrubRate: cfg.scrubRate}
	if len(cfg.peers) > 0 {
		copts.PeerFetch = func(ctx context.Context, key string) ([]byte, error) {
			return s.peerFetch(ctx, key)
		}
	}
	cache, err := rcache.New(copts)
	if err != nil {
		return nil, err
	}
	tracer := obs.NewTracer(
		obs.WithMaxSpans(cfg.traceSpans),
		obs.WithDropCounter(reg.Counter("record_obs_spans_dropped_total",
			"spans overwritten past the tracer ring bound")))
	s = &server{
		cfg:     cfg,
		cache:   cache,
		coal:    &qos.Coalescer{},
		drainCh: make(chan struct{}),
		reg:     reg,
		scp:     scp,
		tracer:  tracer,
		slo: obs.NewSLOTracker(reg, "record_recordd_slo", obs.SLOConfig{
			Targets:      cfg.sloTargets,
			Availability: cfg.sloAvailability,
			FastWindow:   cfg.sloFastWindow,
			SlowWindow:   cfg.sloSlowWindow,
		}),
		gInflight: reg.Gauge("record_recordd_inflight_compiles",
			"compiles currently executing"),
		gTargInflight: reg.GaugeVec("record_recordd_target_inflight_compiles",
			"compiles currently executing, by artifact key", "key"),
		hPhase: reg.HistogramVec("record_recordd_phase_seconds",
			"request-handling latency by phase", nil, "phase"),
		gQueue: reg.GaugeVec("record_recordd_queue_depth",
			"requests waiting for a worker-pool slot, by priority class", "class"),
		gDraining: reg.Gauge("record_recordd_draining",
			"1 while the service is draining"),
		cShed: reg.CounterVec("record_recordd_shed_total",
			"requests shed by admission control (429), by priority class", "class"),
		cDispatched: reg.CounterVec("record_recordd_dispatched_total",
			"worker-pool slots granted, by priority class", "class"),
		cCoalesced: reg.Counter("record_recordd_qos_coalesced_total",
			"duplicate compile requests answered from another request's execution"),
		cPrewarmSweep: reg.Counter("record_recordd_prewarm_sweeps_total",
			"speculative pre-warm sweeps run"),
		cBrkOpens: reg.Counter("record_recordd_breaker_opens_total",
			"circuit-breaker trips to open, across all models"),
		cBrkReject: reg.Counter("record_recordd_breaker_rejections_total",
			"requests refused because a model's circuit was open"),
		cErrors: reg.CounterVec("record_recordd_errors_total",
			"error responses, by HTTP status", "status"),
		cAborts: reg.Counter("record_recordd_client_aborts_total",
			"requests whose client disconnected before a response (499-style)"),
		peerHealth: fleet.NewTracker(fleet.TrackerConfig{}),
		peerHTTP:   &http.Client{Timeout: 30 * time.Second},
		cPeerFetch: reg.CounterVec("record_recordd_peer_fetch_total",
			"peer artifact fetch attempts, by node, peer and outcome", "node", "peer", "outcome"),
		cArtifactServes: reg.CounterVec("record_recordd_artifact_serves_total",
			"artifact store lookups served to fleet peers, by node and outcome", "node", "outcome"),
		cArtifactPushes: reg.CounterVec("record_recordd_artifact_pushes_total",
			"anti-entropy artifact pushes received, by node and outcome", "node", "outcome"),
	}
	s.sched = qos.NewScheduler(qos.Config{
		Capacity: cfg.workers,
		MaxQueue: cfg.maxQueue,
		Weights:  cfg.qosWeights,
		Drain:    s.drainCh,
		OnDepth:  func(cl qos.Class, depth int) { s.gQueue.With(cl.String()).Set(int64(depth)) },
	})
	// Pre-create the per-class series so a scrape of an idle server shows
	// explicit zeros instead of absent lines.
	for _, cl := range qos.Classes {
		s.gQueue.With(cl.String()).Set(0)
		s.cShed.With(cl.String()).Add(0)
		s.cDispatched.With(cl.String()).Add(0)
	}
	if cfg.prewarmEvery > 0 {
		s.pop = qos.NewPopularity(0, 0, nil)
		s.prewarmer = &qos.Prewarmer{
			Sched:  s.sched,
			Pop:    s.pop,
			Top:    cfg.prewarmTop,
			IsWarm: s.cache.InMemory,
			Warm:   s.prewarmOne,
		}
	}
	reg.GaugeVec("record_recordd_node_info",
		"static node identity; always 1", "node").With(cfg.nodeID).Set(1)
	if len(cfg.peers) > 0 {
		// Ring members are named by the node's advertised base URL when one
		// is configured: every fleet node then builds the ring over the same
		// member strings (its own URL + its peers' URLs), so ownership and
		// successor order agree fleet-wide — the invariant anti-entropy
		// pushes rely on.  Without -advertise the member name degrades to
		// the nodeID, which keeps single-view uses (rebalancing gauges)
		// working but makes cross-node ownership views disagree.
		members := append([]string{s.self()}, cfg.peers...)
		s.ring = fleet.NewRing(0, members...)
		gArc := reg.GaugeVec("record_recordd_ring_arc_ppm",
			"consistent-hash arc share per fleet member, parts per million", "member")
		for member, frac := range s.ring.Arcs() {
			gArc.With(member).Set(int64(frac * 1e6))
		}
		s.gRingKey = reg.GaugeVec("record_recordd_ring_owned_keys",
			"local disk-store artifacts owned by each ring member", "member")
	}
	if cfg.brkWindow > 0 {
		s.brk = resilience.NewBreaker(resilience.BreakerConfig{
			Window:      cfg.brkWindow,
			FailureRate: cfg.brkRate,
			Cooldown:    cfg.brkCooldown,
			Now:         cfg.brkClock,
			OnTrip:      func(string) { s.cBrkOpens.Inc() },
		})
	}
	reg.Gauge("record_recordd_worker_pool_size",
		"configured worker pool capacity").Set(int64(cfg.workers))
	if len(cfg.peers) > 0 && cfg.aeInterval > 0 {
		s.ae = antientropy.New(antientropy.Config{
			Self:        s.self(),
			Peers:       cfg.peers,
			Ring:        s.ring,
			Replicate:   cfg.replicate,
			Keys:        s.cache.Keys,
			Encoded:     s.cache.Encoded,
			FetchDigest: s.inventoryDigestFrom,
			FetchKeys:   s.inventoryKeysFrom,
			Push:        s.pushTo,
			Healthy:     s.peerHealth.Usable,
			Obs:         scp,
		})
	}
	return s, nil
}

// self is this node's ring member name: its advertised base URL when one
// is configured, else the bare nodeID.
func (s *server) self() string {
	if s.cfg.advertise != "" {
		return strings.TrimRight(s.cfg.advertise, "/")
	}
	return s.cfg.nodeID
}

// prewarmOne is the Prewarmer's Warm hook: it loads one hot model into
// the memory tier under pre-warm attribution.  The budget mirrors
// resolveEntry's so a pre-warm retarget computes the same content
// address a real request would.
func (s *server) prewarmOne(ctx context.Context, key, mdlSource string) error {
	if err := faultpoint.Hit("recordd.prewarm.retarget", key); err != nil {
		return err
	}
	budget, cancel := s.budget(ctx)
	defer cancel()
	_, err := s.cache.Prewarm(ctx, key, mdlSource, core.RetargetOptions{Budget: budget, Obs: s.scp})
	return err
}

// prewarmLoop drives pre-warm sweeps until ctx ends or the drain starts.
// Sweeps only ever use idle capacity: the scheduler refuses the lease
// when any real work is queued, and revokes it when real work arrives.
func (s *server) prewarmLoop(ctx context.Context) {
	if s.prewarmer == nil {
		return
	}
	t := time.NewTicker(s.cfg.prewarmEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.drainCh:
			return
		case <-t.C:
			s.cPrewarmSweep.Inc()
			s.prewarmer.Sweep(ctx)
		}
	}
}

// handler wraps the route mux in the drain gate: once draining, every
// request that would start new work is refused with an explicit 503 so no
// client is dropped without a status; health and metrics stay readable.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/retarget", s.traced("retarget", s.handleRetarget))
	mux.HandleFunc("/v1/compile", s.traced("compile", s.handleCompile))
	mux.HandleFunc("/v1/compile-batch", s.traced("batch", s.handleCompileBatch))
	// GET serves artifacts to peers; PUT accepts anti-entropy pushes.
	// Both stay drain-exempt (see the gate below): peers must be able to
	// replicate artifacts off a draining node AND backfill replicas onto
	// it — a drain is exactly when its copies are about to disappear.
	mux.HandleFunc("/v1/artifact/", s.traced("artifact", s.handleArtifact))
	// GET-only inventory listing for anti-entropy digest exchange;
	// drain-exempt so peers can still see what a draining node holds.
	mux.HandleFunc("/v1/inventory", s.traced("inventory", s.handleInventory))
	// Drain-exempt like /v1/artifact (GET): the span ring must stay
	// readable while a node drains, or a chaos trace loses its tail.
	mux.HandleFunc("/v1/debug/spans", s.handleDebugSpans)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() && r.Method != http.MethodGet &&
			!strings.HasPrefix(r.URL.Path, "/v1/artifact/") {
			s.fail(w, r, http.StatusServiceUnavailable,
				&resilience.DrainingError{After: time.Second})
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// statusWriter captures the response status so the traced middleware can
// tag the request span and classify the SLO event.  code 0 means nothing
// was written (client abort).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// traced is the per-route observability middleware: it opens a request
// span (parented under the caller's X-Record-Trace context when one
// arrived), echoes the span's trace ID in the response header, threads a
// request-scoped obs.Scope through the context for every layer below —
// QoS wait, cache lookups, compile phases, peer fetches — and lands the
// outcome in the SLO tracker.
func (s *server) traced(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		remote, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		scope := obs.NewScope(s.reg, s.tracer).WithRemote(remote)
		sp, rscope := scope.Start("recordd."+route, obs.KV("node", s.cfg.nodeID))
		defer sp.End()
		if sc := sp.Context(); sc.Valid() {
			w.Header().Set(obs.TraceHeader, sc.Header())
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(obs.ContextWithScope(r.Context(), rscope)))
		if sw.code == 0 {
			// Nothing written: the client went away. Not an SLO event —
			// the service never answered, well or badly.
			sp.SetAttr("outcome", "abort")
			return
		}
		sp.SetAttr("status", sw.code)
		s.slo.Observe(route, time.Since(start), sw.code < http.StatusInternalServerError)
	}
}

// obsFrom returns the request's trace-carrying scope when the context
// has one, else the server's registry-only scope — pipeline metrics land
// in the same registry either way.
func (s *server) obsFrom(ctx context.Context) *obs.Scope {
	if scope := obs.ScopeFromContext(ctx); scope != nil {
		return scope
	}
	return s.scp
}

// handleDebugSpans serves the node's span ring for trace fusion:
// cmd/tracefuse joins /v1/debug/spans dumps from every fleet node into
// one cross-process Chrome trace.
func (s *server) handleDebugSpans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.tracer.Dump(s.cfg.nodeID))
}

// beginDrain flips the service into draining mode: /healthz reports
// draining, new work is refused, and requests queued for a pool slot are
// released with an explicit 503 instead of waiting out the shutdown.
func (s *server) beginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.gDraining.Set(1)
		close(s.drainCh)
	}
}

// trackCompile bumps the global and per-target in-flight gauges; the
// returned func undoes both, retiring the per-target series when its last
// compile finishes so /metrics does not accumulate dead keys.
func (s *server) trackCompile(key string) func() {
	s.gInflight.Inc()
	s.targMu.Lock()
	s.gTargInflight.With(key).Inc()
	s.targMu.Unlock()
	return func() {
		s.gInflight.Dec()
		s.targMu.Lock()
		g := s.gTargInflight.With(key)
		g.Dec()
		if g.Value() == 0 {
			s.gTargInflight.Delete(key)
		}
		s.targMu.Unlock()
	}
}

// observePhase lands a request-phase duration in the shared histogram.
func (s *server) observePhase(phase string, d time.Duration) {
	s.hPhase.With(phase).Observe(d.Seconds())
}

// classOf reads the client-declared X-Record-Priority header; unknown,
// empty or garbage values degrade to the route's default class — a bad
// header can never fail a request.
func classOf(r *http.Request, def qos.Class) qos.Class {
	return qos.ParseClass(r.Header.Get("X-Record-Priority"), def)
}

// acquire takes a worker-pool slot through the QoS scheduler.  Weighted
// admission sheds immediately (429) when the waiter backlog is at
// -max-queue — batch first, interactive only when the queue holds
// nothing else; an admitted waiter can still fail with 503 when the
// drain starts or the client goes away before a slot frees up.  The
// returned release is idempotent and must be called when the work ends.
func (s *server) acquire(ctx context.Context, cl qos.Class) (func(), error) {
	sp, _ := obs.ScopeFromContext(ctx).Start("qos.wait", obs.KV("class", cl.String()))
	release, err := s.sched.Acquire(ctx, cl)
	if err != nil {
		sp.SetAttr("outcome", "refused")
		sp.End()
		var ov *resilience.OverloadError
		if errors.As(err, &ov) {
			s.cShed.With(cl.String()).Inc()
		}
		return nil, err
	}
	sp.SetAttr("outcome", "granted")
	sp.End()
	if err := faultpoint.Hit("recordd.worker.spawn", ""); err != nil {
		release()
		return nil, err
	}
	s.cDispatched.With(cl.String()).Inc()
	return release, nil
}

// budget builds the per-request resource budget, mirroring the record CLI:
// wall-clock timeout, BDD-node cap, route cap.
func (s *server) budget(ctx context.Context) (*diag.Budget, context.CancelFunc) {
	cancel := context.CancelFunc(func() {})
	if s.cfg.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
	}
	return &diag.Budget{Ctx: ctx, MaxBDDNodes: s.cfg.maxBDDNodes, MaxRoutes: s.cfg.maxRoutes}, cancel
}

// compileCtx narrows a request context by the configured per-request
// timeout; compiles rely on context cancellation alone.
func (s *server) compileCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.timeout > 0 {
		return context.WithTimeout(ctx, s.cfg.timeout)
	}
	return ctx, func() {}
}

// breakerKey fingerprints the model a request targets: the artifact key
// when the caller sent one, else the content address the cache will use
// for the model — computable without running any pipeline work.
func (s *server) breakerKey(key string, m modelRequest) (string, error) {
	if key != "" {
		return key, nil
	}
	mdl, err := m.source()
	if err != nil {
		return "", err
	}
	return s.cache.Key(mdl, core.RetargetOptions{}), nil
}

// allow consults the model's circuit; an open circuit refuses the request
// with 503 + Retry-After before any pipeline work runs.
func (s *server) allow(w http.ResponseWriter, r *http.Request, bkey string) bool {
	if err := s.brk.Allow(bkey); err != nil {
		s.cBrkReject.Inc()
		s.fail(w, r, statusFor(err), err)
		return false
	}
	return true
}

// serverFault reports whether err is the service's failure class (the
// 5xx statuses the breaker counts): budget exhaustion, recovered panics
// and injected service faults — not caller mistakes.
func serverFault(err error) bool {
	return err != nil && statusFor(err) >= http.StatusInternalServerError
}

// recordOutcome lands one pipeline outcome in the model's circuit: success
// and server faults move the window, caller errors (4xx) do not.
func (s *server) recordOutcome(bkey string, err error) {
	switch {
	case err == nil:
		s.brk.Record(bkey, true)
	case serverFault(err):
		s.brk.Record(bkey, false)
	}
}

// resolveEntry turns (key | model | model_name) into a cache entry,
// retargeting on demand.  On failure it returns the HTTP status the
// caller should fail with.
func (s *server) resolveEntry(ctx context.Context, key string, m modelRequest) (*rcache.Entry, rcache.Outcome, int, error) {
	if key != "" {
		if m.Model != "" || m.ModelName != "" {
			return nil, rcache.Miss, http.StatusBadRequest, fmt.Errorf("use either key or a model, not both")
		}
		// LookupContext consults fleet peers after the local tiers, so a
		// by-key compile routed to a non-owner replicates the artifact
		// instead of 404ing.  The lookup span parents any peer fetch the
		// walk performs, keeping it on the caller's trace.
		sp, lscope := s.obsFrom(ctx).Start("rcache.lookup", obs.KV("key", key))
		entry, outcome, ok := s.cache.LookupContext(obs.ContextWithScope(ctx, lscope), key)
		sp.SetAttr("outcome", string(outcome))
		sp.End()
		if !ok {
			return nil, rcache.Miss, http.StatusNotFound,
				fmt.Errorf("no artifact for key %s: retarget first or send the model inline", key)
		}
		return entry, outcome, 0, nil
	}
	mdl, err := m.source()
	if err != nil {
		return nil, rcache.Miss, http.StatusBadRequest, err
	}
	budget, cancel := s.budget(ctx)
	defer cancel()
	start := time.Now()
	entry, outcome, err := s.cache.GetContext(ctx, mdl, core.RetargetOptions{Budget: budget, Obs: s.obsFrom(ctx)})
	s.observePhase("retarget", time.Since(start))
	if err != nil {
		return nil, rcache.Miss, statusFor(err), fmt.Errorf("retarget: %w", err)
	}
	if outcome == rcache.Miss {
		s.observePhase("freeze", entry.Target().Stats.Freeze)
	}
	return entry, outcome, 0, nil
}

// ---- request/response types --------------------------------------------

// modelRequest selects a processor model: inline MDL source or the name of
// a bundled model.
type modelRequest struct {
	Model     string `json:"model,omitempty"`      // inline MDL source
	ModelName string `json:"model_name,omitempty"` // bundled model (see record -list)
}

func (m *modelRequest) source() (string, error) {
	switch {
	case m.Model != "" && m.ModelName != "":
		return "", fmt.Errorf("use either model or model_name, not both")
	case m.Model != "":
		return m.Model, nil
	case m.ModelName != "":
		src, ok := models.Get(m.ModelName)
		if !ok {
			return "", fmt.Errorf("unknown bundled model %q", m.ModelName)
		}
		return src, nil
	}
	return "", fmt.Errorf("no model: set model (inline MDL) or model_name")
}

type retargetRequest struct {
	modelRequest
}

type retargetResponse struct {
	Key       string `json:"key"`
	Name      string `json:"name"`
	Templates int    `json:"templates"`
	Rules     int    `json:"rules"`
	Cache     string `json:"cache"` // hit | hit-disk | miss | coalesced
	Warnings  int    `json:"warnings,omitempty"`
}

type compileRequest struct {
	modelRequest
	Key     string         `json:"key,omitempty"` // artifact key from /v1/retarget
	Source  string         `json:"source"`        // RecC program
	Options compileOptions `json:"options"`
}

type compileResponse struct {
	Key     string   `json:"key"`
	Name    string   `json:"name"`
	Cache   string   `json:"cache"`
	SeqLen  int      `json:"seq_len"`  // RT instructions before compaction
	CodeLen int      `json:"code_len"` // instruction words
	Words   []uint64 `json:"words"`
	Listing string   `json:"listing"`
}

// compileOptions is the per-program options object shared by /v1/compile
// and /v1/compile-batch.
type compileOptions struct {
	NoCompaction bool `json:"no_compaction,omitempty"`
	NoPeephole   bool `json:"no_peephole,omitempty"`
}

// batchProgram is one unit of work in a /v1/compile-batch request.
type batchProgram struct {
	ID      string          `json:"id,omitempty"` // echoed back; defaults to its index
	Source  string          `json:"source"`
	Options *compileOptions `json:"options,omitempty"` // overrides the batch default
}

// compileBatchRequest fans a set of programs over the worker pool against
// one target.  The model is resolved once (key, inline MDL, or bundled
// name); programs compile concurrently against the frozen target.
type compileBatchRequest struct {
	modelRequest
	Key      string         `json:"key,omitempty"`
	Programs []batchProgram `json:"programs"`
	Options  compileOptions `json:"options"` // default for programs without their own
}

// batchResult is the per-program outcome.  Status mirrors the /v1/compile
// status mapping: 200 ok, 422 unencodable program, 504 budget exhausted,
// 500 internal fault.  On non-200 only Error is populated.
type batchResult struct {
	ID      string   `json:"id"`
	Status  int      `json:"status"`
	Error   string   `json:"error,omitempty"`
	SeqLen  int      `json:"seq_len,omitempty"`
	CodeLen int      `json:"code_len,omitempty"`
	Words   []uint64 `json:"words,omitempty"`
	Listing string   `json:"listing,omitempty"`
}

// compileBatchResponse reports every program's outcome.  The HTTP status
// is 200 whenever the target resolved, even if every program failed —
// partial failure is data, not transport error.
type compileBatchResponse struct {
	Key       string        `json:"key"`
	Name      string        `json:"name"`
	Cache     string        `json:"cache"`
	Succeeded int           `json:"succeeded"`
	Failed    int           `json:"failed"`
	Results   []batchResult `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"` // refusal class: "overload" | "open" | "draining" | "degraded"
}

// refusalKind classifies typed resilience refusals for the wire, so a
// client can tell a draining node (fail over now, the hint is exact)
// from overload or an open circuit (backing off harder is fine) from a
// degraded disk tier (push or write elsewhere; reads still work here).
func refusalKind(err error) string {
	var ov *resilience.OverloadError
	if errors.As(err, &ov) {
		return "overload"
	}
	var oe *resilience.OpenError
	if errors.As(err, &oe) {
		return "open"
	}
	var de *resilience.DrainingError
	if errors.As(err, &de) {
		return "draining"
	}
	var ge *resilience.DegradedError
	if errors.As(err, &ge) {
		return "degraded"
	}
	return ""
}

// ---- handlers -----------------------------------------------------------

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	body := map[string]interface{}{"ok": true, "node": s.cfg.nodeID}
	if slo := s.slo.Health(); slo != nil {
		body["slo"] = slo
	}
	if s.draining.Load() {
		body["ok"] = false
		body["draining"] = true
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleArtifact serves the encoded artifact for a content address to
// fleet peers (GET) and accepts anti-entropy pushes from them (PUT): a
// peer resolving a key its own cache misses fetches the bytes here
// instead of re-running the retarget, and a peer that owns a key this
// node should replicate pushes the bytes here.  Memory-only nodes (no
// -cache-dir) answer 404 to GET and refuse PUT — peer replication runs
// against the durable tier only.
func (s *server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/artifact/")
	switch r.Method {
	case http.MethodGet:
		data, err := s.cache.Encoded(key)
		if err != nil {
			s.cArtifactServes.With(s.cfg.nodeID, "miss").Inc()
			s.fail(w, r, http.StatusNotFound, fmt.Errorf("no artifact for key %s", key))
			return
		}
		s.cArtifactServes.With(s.cfg.nodeID, "hit").Inc()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	case http.MethodPut:
		s.handleArtifactPush(w, r, key)
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET or PUT"))
	}
}

// handleArtifactPush lands one pushed artifact in the durable tier.
// Ingest validates the key shape, decode-verifies the bytes against the
// content address, refuses while the disk tier is degraded (typed 503 +
// Retry-After, satisfying the invariant that an accepted push IS a
// durable replica — never memory-only buffering), and treats an
// already-present key as a successful no-op so repeated pushes are
// idempotent.
func (s *server) handleArtifactPush(w http.ResponseWriter, r *http.Request, key string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		s.cArtifactPushes.With(s.cfg.nodeID, "rejected").Inc()
		s.fail(w, r, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if err := s.cache.Ingest(key, body); err != nil {
		var de *resilience.DegradedError
		switch {
		case errors.As(err, &de):
			s.cArtifactPushes.With(s.cfg.nodeID, "degraded").Inc()
			s.fail(w, r, http.StatusServiceUnavailable, err)
		case errors.Is(err, rcache.ErrNoStore):
			s.cArtifactPushes.With(s.cfg.nodeID, "rejected").Inc()
			s.fail(w, r, http.StatusConflict, err)
		default:
			s.cArtifactPushes.With(s.cfg.nodeID, "rejected").Inc()
			s.fail(w, r, http.StatusBadRequest, err)
		}
		return
	}
	s.cArtifactPushes.With(s.cfg.nodeID, "ok").Inc()
	w.WriteHeader(http.StatusNoContent)
}

// handleInventory serves this node's artifact-key inventory for the
// anti-entropy digest exchange: ?limit=-1 returns the digest alone (the
// cheap "did anything change" probe), otherwise one sorted page of keys
// starting after ?after, each page carrying the full-set digest.
func (s *server) handleInventory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < -1 {
			s.fail(w, r, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	after := r.URL.Query().Get("after")
	writeJSON(w, http.StatusOK, antientropy.Page(s.self(), s.cache.Keys(), after, limit))
}

// peerFetch is the cache's PeerFetch hook, shared by miss-replication
// and scrub repair: it walks fleet.RepairPeers' order — every healthy
// peer, in the key's rendezvous order, self excluded, each exactly once
// (so every node agrees which replica to ask first, and a repair only
// gives up as unrepairable after every candidate was tried) — and
// returns the first copy found.  (nil, nil) means no peer has one; the
// cache then retargets locally.  Failures degrade the peer's health so
// a dead peer stops being asked.
func (s *server) peerFetch(ctx context.Context, key string) ([]byte, error) {
	for _, peer := range fleet.RepairPeers(key, s.self(), s.cfg.peers, s.peerHealth.Usable) {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		sp, pscope := obs.ScopeFromContext(ctx).Start("peer.fetch", obs.KV("peer", peer))
		data, err := s.fetchFrom(obs.ContextWithScope(ctx, pscope), peer, key)
		switch {
		case err != nil:
			sp.SetAttr("outcome", "error")
			s.peerHealth.Report(peer, false)
			s.cPeerFetch.With(s.cfg.nodeID, peer, "error").Inc()
		case data == nil: // peer alive, no copy
			sp.SetAttr("outcome", "miss")
			s.peerHealth.Report(peer, true)
			s.cPeerFetch.With(s.cfg.nodeID, peer, "miss").Inc()
		default:
			sp.SetAttr("outcome", "hit")
			sp.End()
			s.peerHealth.Report(peer, true)
			s.cPeerFetch.With(s.cfg.nodeID, peer, "hit").Inc()
			return data, nil
		}
		sp.End()
	}
	return nil, nil
}

// fetchFrom performs one GET /v1/artifact/{key} against one peer under
// the per-peer timeout.  (nil, nil) is the peer's 404.  The request
// re-injects the active trace (X-Record-Trace) so the peer's artifact
// serve records on the same trace as the compile that triggered it.
func (s *server) fetchFrom(ctx context.Context, peer, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.peerTimeout)
	defer cancel()
	url := strings.TrimRight(peer, "/") + "/v1/artifact/" + key
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if sc := obs.ScopeFromContext(ctx).Span().Context(); sc.Valid() {
		req.Header.Set(obs.TraceHeader, sc.Header())
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("peer %s: status %d", peer, resp.StatusCode)
	}
}

// inventoryDigestFrom is the anti-entropy agent's cheap probe: one
// digest-only inventory page from a peer.
func (s *server) inventoryDigestFrom(ctx context.Context, peer string) (string, error) {
	inv, err := s.inventoryPage(ctx, peer, "", -1)
	if err != nil {
		return "", err
	}
	return inv.Digest, nil
}

// inventoryKeysFrom walks a peer's full paginated inventory.  A digest
// change mid-walk means the set moved underneath us; the partial listing
// is still returned — anti-entropy converges over repeated sweeps, so a
// slightly stale view only defers work, never corrupts it.
func (s *server) inventoryKeysFrom(ctx context.Context, peer string) (*antientropy.PeerInventory, error) {
	out := &antientropy.PeerInventory{Keys: make(map[string]bool)}
	after := ""
	for {
		inv, err := s.inventoryPage(ctx, peer, after, 0)
		if err != nil {
			return nil, err
		}
		out.Digest = inv.Digest
		for _, k := range inv.Keys {
			out.Keys[k] = true
		}
		if inv.Next == "" {
			return out, nil
		}
		after = inv.Next
	}
}

// inventoryPage performs one GET /v1/inventory against a peer under the
// per-peer timeout.
func (s *server) inventoryPage(ctx context.Context, peer, after string, limit int) (*antientropy.Inventory, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.peerTimeout)
	defer cancel()
	u := strings.TrimRight(peer, "/") + "/v1/inventory?limit=" + strconv.Itoa(limit)
	if after != "" {
		u += "&after=" + after
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		s.peerHealth.Report(peer, false)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.peerHealth.Report(peer, false)
		return nil, fmt.Errorf("peer %s: inventory status %d", peer, resp.StatusCode)
	}
	s.peerHealth.Report(peer, true)
	var inv antientropy.Inventory
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&inv); err != nil {
		return nil, err
	}
	return &inv, nil
}

// pushTo uploads one encoded artifact to a peer (PUT /v1/artifact/{key}).
// 204 and 200 both mean the replica is durable over there; anything else
// — including a degraded-disk 503 — is an error the agent retries on a
// later sweep, ideally after the peer recovers.
func (s *server) pushTo(ctx context.Context, peer, key string, data []byte) error {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.peerTimeout)
	defer cancel()
	url := strings.TrimRight(peer, "/") + "/v1/artifact/" + key
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		s.peerHealth.Report(peer, false)
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		s.peerHealth.Report(peer, true)
		return nil
	default:
		// The peer answered: it is alive, just unwilling (degraded disk,
		// memory-only, malformed push).  Do not poison its health — reads
		// may still work fine.
		return fmt.Errorf("peer %s: push status %d", peer, resp.StatusCode)
	}
}

// scrubLoop drives disk-scrub cycles until ctx ends or the drain starts.
func (s *server) scrubLoop(ctx context.Context) {
	s.cache.RunScrubber(ctx, s.cfg.scrubInterval, s.drainCh)
}

// antiEntropyLoop drives push-replication sweeps until ctx ends or the
// drain starts (a draining node stops pushing; its artifact endpoints
// stay drain-exempt so peers can still pull from and backfill to it).
func (s *server) antiEntropyLoop(ctx context.Context) {
	if s.ae == nil {
		return
	}
	s.ae.Run(ctx, s.cfg.aeInterval, s.drainCh)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	// Burn rates and ring ownership are point-in-time quantities, so
	// their gauges refresh at scrape time rather than per request.
	s.slo.Refresh()
	if s.ring != nil && s.gRingKey != nil {
		for member, n := range s.ring.OwnerCounts(s.cache.Keys()) {
			s.gRingKey.With(member).Set(int64(n))
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *server) handleRetarget(w http.ResponseWriter, r *http.Request) {
	var req retargetRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	mdl, err := req.source()
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	bkey := s.cache.Key(mdl, core.RetargetOptions{})
	if !s.allow(w, r, bkey) {
		return
	}
	release, err := s.acquire(r.Context(), classOf(r, qos.Interactive))
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	defer release()

	rep := diag.NewReporter()
	budget, cancel := s.budget(r.Context())
	defer cancel()

	start := time.Now()
	entry, outcome, err := s.cache.GetContext(r.Context(), mdl, core.RetargetOptions{Reporter: rep, Budget: budget, Obs: s.obsFrom(r.Context())})
	s.observePhase("retarget", time.Since(start))
	s.recordOutcome(bkey, err)
	if err != nil {
		s.fail(w, r, statusFor(err), fmt.Errorf("retarget: %w", err))
		return
	}
	s.touch(entry.Key, req.modelRequest)
	t := entry.Target()
	if outcome == rcache.Miss {
		s.observePhase("freeze", t.Stats.Freeze)
	}
	writeJSON(w, http.StatusOK, retargetResponse{
		Key:       entry.Key,
		Name:      t.Name,
		Templates: t.Base.Len(),
		Rules:     len(t.Grammar.Rules),
		Cache:     string(outcome),
		Warnings:  rep.Warns(),
	})
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req compileRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Source == "" {
		s.fail(w, r, http.StatusBadRequest, fmt.Errorf("no source program"))
		return
	}
	bkey, err := s.breakerKey(req.Key, req.modelRequest)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if !s.allow(w, r, bkey) {
		return
	}
	// Identical compiles queued at the same time collapse onto one
	// execution: the first request becomes the leader and runs the work,
	// duplicates wait and replay the leader's byte-identical response.
	cl := classOf(r, qos.Interactive)
	v, shared, err := s.coal.Do(r.Context(), coalesceKey(bkey, req), func() (interface{}, error) {
		return s.compileWire(r.Context(), req, bkey, cl), nil
	})
	if err != nil {
		// This request's own context ended while waiting on the leader.
		s.fail(w, r, statusFor(err), err)
		return
	}
	wr := v.(*wireResult)
	if shared {
		s.cCoalesced.Inc()
		// The work ran on the leader's trace; link the follower's span to
		// it so a trace viewer can hop from the waiter to the execution.
		if sp := obs.ScopeFromContext(r.Context()).Span(); sp != nil {
			sp.SetAttr("coalesced", true)
			if wr.trace != "" {
				sp.SetAttr("leader_trace", wr.trace)
			}
		}
	}
	s.writeWire(w, r, wr)
}

// compileWire runs one /v1/compile request end to end — admission,
// target resolution, compile — and returns the response as wire bytes so
// coalesced duplicates can replay it verbatim.  Failures are encoded
// too: a shed or broken-circuit refusal is shared exactly like a result.
func (s *server) compileWire(ctx context.Context, req compileRequest, bkey string, cl qos.Class) *wireResult {
	// The leader's trace identifies where coalesced followers' work ran.
	var leaderTrace string
	if sc := s.obsFrom(ctx).Span().Context(); sc.Valid() {
		leaderTrace = sc.Trace.String()
	}
	release, err := s.acquire(ctx, cl)
	if err != nil {
		return errWire(err)
	}
	defer release()

	entry, outcome, status, err := s.resolveEntry(ctx, req.Key, req.modelRequest)
	if err != nil {
		s.recordOutcome(bkey, err)
		return errWireStatus(status, err)
	}
	s.touch(entry.Key, req.modelRequest)
	done := s.trackCompile(entry.Key)
	defer done()

	cctx, cancel := s.compileCtx(ctx)
	defer cancel()
	start := time.Now()
	res, err := entry.Compile(cctx, req.Source, core.CompileOptions{
		NoCompaction: req.Options.NoCompaction,
		NoPeephole:   req.Options.NoPeephole,
		Obs:          s.obsFrom(ctx),
	})
	s.observePhase("compile", time.Since(start))
	s.recordOutcome(bkey, err)
	if err != nil {
		return errWire(fmt.Errorf("compile: %w", err))
	}

	start = time.Now()
	wr := marshalWire(http.StatusOK, compileResponse{
		Key:     entry.Key,
		Name:    entry.Target().Name,
		Cache:   string(outcome),
		SeqLen:  res.SeqLen(),
		CodeLen: res.CodeLen(),
		Words:   res.Words(),
		Listing: entry.Listing(res),
	})
	s.observePhase("encode", time.Since(start))
	wr.trace = leaderTrace
	return wr
}

// handleCompileBatch resolves the target once, then fans the programs
// across the worker pool.  Each program independently acquires a pool
// slot, so a large batch cannot starve other requests of more than the
// configured concurrency.
func (s *server) handleCompileBatch(w http.ResponseWriter, r *http.Request) {
	var req compileBatchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Programs) == 0 {
		s.fail(w, r, http.StatusBadRequest, fmt.Errorf("no programs"))
		return
	}
	for i, p := range req.Programs {
		if p.Source == "" {
			s.fail(w, r, http.StatusBadRequest, fmt.Errorf("program %d has no source", i))
			return
		}
	}
	bkey, err := s.breakerKey(req.Key, req.modelRequest)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if !s.allow(w, r, bkey) {
		return
	}
	batchStart := time.Now()
	defer func() { s.observePhase("batch", time.Since(batchStart)) }()

	// Batch work defaults to the batch class: it is dispatched after
	// queued interactive requests and shed first under pressure.
	cl := classOf(r, qos.Batch)

	// Resolving the model may retarget: that runs under a pool slot too.
	release, err := s.acquire(r.Context(), cl)
	if err != nil {
		s.fail(w, r, statusFor(err), err)
		return
	}
	entry, outcome, status, err := s.resolveEntry(r.Context(), req.Key, req.modelRequest)
	release()
	if err != nil {
		s.recordOutcome(bkey, err)
		s.fail(w, r, status, err)
		return
	}
	s.touch(entry.Key, req.modelRequest)

	results := make([]batchResult, len(req.Programs))
	var wg sync.WaitGroup
	for i := range req.Programs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := req.Programs[i]
			id := p.ID
			if id == "" {
				id = fmt.Sprintf("%d", i)
			}
			results[i] = s.compileOne(r.Context(), cl, entry, id, p, req.Options)
		}(i)
	}
	wg.Wait()

	resp := compileBatchResponse{
		Key:     entry.Key,
		Name:    entry.Target().Name,
		Cache:   string(outcome),
		Results: results,
	}
	for _, res := range results {
		if res.Status == http.StatusOK {
			resp.Succeeded++
		} else {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// compileOne runs a single batch program under a worker-pool slot.
func (s *server) compileOne(ctx context.Context, cl qos.Class, entry *rcache.Entry, id string, p batchProgram, def compileOptions) batchResult {
	release, err := s.acquire(ctx, cl)
	if err != nil {
		return batchResult{ID: id, Status: statusFor(err), Error: err.Error()}
	}
	defer release()
	done := s.trackCompile(entry.Key)
	defer done()

	opts := def
	if p.Options != nil {
		opts = *p.Options
	}
	cctx, cancel := s.compileCtx(ctx)
	defer cancel()
	start := time.Now()
	res, err := entry.Compile(cctx, p.Source, core.CompileOptions{
		NoCompaction: opts.NoCompaction,
		NoPeephole:   opts.NoPeephole,
		Obs:          s.obsFrom(ctx),
	})
	s.observePhase("compile", time.Since(start))
	s.recordOutcome(entry.Key, err)
	if err != nil {
		return batchResult{ID: id, Status: statusFor(err), Error: err.Error()}
	}
	return batchResult{
		ID:      id,
		Status:  http.StatusOK,
		SeqLen:  res.SeqLen(),
		CodeLen: res.CodeLen(),
		Words:   res.Words(),
		Listing: entry.Listing(res),
	}
}

// ---- plumbing -----------------------------------------------------------

// touch records one unit of demand against an artifact key for the
// pre-warm popularity tracker.  The model source rides along so an
// evicted entry can be re-retargeted speculatively; by-key requests have
// no source and contribute demand only.
func (s *server) touch(key string, m modelRequest) {
	if s.pop == nil {
		return
	}
	src, err := m.source()
	if err != nil {
		src = ""
	}
	s.pop.Touch(key, src)
}

// coalesceKey fingerprints everything that determines a /v1/compile
// response: the model's breaker key (its content address), the program
// source and the compile options.  Two requests with equal keys are
// interchangeable and safe to answer with one execution.
func coalesceKey(bkey string, req compileRequest) string {
	h := sha256.New()
	io.WriteString(h, bkey)
	h.Write([]byte{0})
	io.WriteString(h, req.Source)
	fmt.Fprintf(h, "\x00%v\x00%v", req.Options.NoCompaction, req.Options.NoPeephole)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// wireResult is a fully rendered HTTP response — status, Retry-After
// hint, marshaled JSON body — so a coalesced duplicate can write exactly
// the bytes its leader produced.
type wireResult struct {
	status int
	after  time.Duration // Retry-After hint; 0 = none
	body   []byte        // JSON body, newline-framed like writeJSON
	trace  string        // leader's trace ID, for coalesced-follower linkage
}

func errWire(err error) *wireResult { return errWireStatus(statusFor(err), err) }

func errWireStatus(status int, err error) *wireResult {
	wr := &wireResult{status: status}
	if after, ok := resilience.RetryAfterOf(err); ok {
		wr.after = after
	}
	body, _ := json.Marshal(errorResponse{Error: err.Error(), Kind: refusalKind(err)})
	wr.body = append(body, '\n')
	return wr
}

func marshalWire(status int, v interface{}) *wireResult {
	body, err := json.Marshal(v)
	if err != nil {
		return errWireStatus(http.StatusInternalServerError, err)
	}
	return &wireResult{status: status, body: append(body, '\n')}
}

// writeWire writes a pre-rendered response.  Per-request concerns stay
// per-request even when the result was shared: a disconnected client is
// a silent abort, every error response is counted against its own
// request, and the encode faultpoint fires once per response written.
func (s *server) writeWire(w http.ResponseWriter, r *http.Request, wr *wireResult) {
	if r.Context().Err() == context.Canceled {
		s.cAborts.Inc()
		return
	}
	if wr.after > 0 {
		secs := int((wr.after + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	if wr.status >= 400 {
		s.cErrors.With(strconv.Itoa(wr.status)).Inc()
	}
	if err := faultpoint.Hit("recordd.response.encode", ""); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(wr.status)
	_, _ = w.Write(wr.body)
}

func (s *server) readJSON(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		s.fail(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.maxBody+1))
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return false
	}
	if int64(len(body)) > s.cfg.maxBody {
		s.fail(w, r, http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds %d bytes", s.cfg.maxBody))
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		s.fail(w, r, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return false
	}
	return true
}

// fail writes an error response.  A client that already disconnected gets
// nothing — that is a 499-style silent abort counted apart from server
// errors, not a 500.  Resilience errors carry Retry-After hints that
// surface as the HTTP header of the same name.
func (s *server) fail(w http.ResponseWriter, r *http.Request, status int, err error) {
	if r.Context().Err() == context.Canceled {
		s.cAborts.Inc()
		return
	}
	if after, ok := resilience.RetryAfterOf(err); ok {
		secs := int((after + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	s.cErrors.With(strconv.Itoa(status)).Inc()
	writeJSON(w, status, errorResponse{Error: err.Error(), Kind: refusalKind(err)})
}

// statusFor maps failures onto HTTP statuses: overload sheds as 429,
// breaker/drain refusals and abandoned pool waits are 503, resource-budget
// exhaustion is the server's fault class (504-ish), internal faults —
// recovered panics and injected service faults — are 500, and everything
// else is a caller problem (unprocessable model/program).
func statusFor(err error) int {
	var ov *resilience.OverloadError
	if errors.As(err, &ov) {
		return http.StatusTooManyRequests
	}
	var oe *resilience.OpenError
	if errors.As(err, &oe) {
		return http.StatusServiceUnavailable
	}
	var de *resilience.DrainingError
	if errors.As(err, &de) {
		return http.StatusServiceUnavailable
	}
	var ge *resilience.DegradedError
	if errors.As(err, &ge) {
		return http.StatusServiceUnavailable
	}
	var be *diag.BudgetError
	if errors.As(err, &be) {
		return http.StatusGatewayTimeout
	}
	var pe *diag.PanicError
	if errors.As(err, &pe) {
		return http.StatusInternalServerError
	}
	var fe *faultpoint.Fault
	if errors.As(err, &fe) {
		return http.StatusInternalServerError
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	if err := faultpoint.Hit("recordd.response.encode", ""); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
