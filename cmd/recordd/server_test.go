package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dspstone"
	"repro/internal/qos"
)

func newTestServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body interface{}, out interface{}) (int, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("bad response JSON %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestRetargetThenCompileByKey(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{cacheDir: t.TempDir()})

	var rt retargetResponse
	code, raw := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, &rt)
	if code != http.StatusOK {
		t.Fatalf("retarget: %d %s", code, raw)
	}
	if rt.Key == "" || rt.Templates == 0 || rt.Rules == 0 {
		t.Fatalf("thin retarget response: %+v", rt)
	}
	if rt.Cache != "miss" {
		t.Fatalf("first retarget outcome %q, want miss", rt.Cache)
	}

	var cp compileResponse
	code, raw = post(t, ts.URL+"/v1/compile", map[string]interface{}{
		"key":    rt.Key,
		"source": "int a = 2; int b = 3; int y; y = a + b;",
	}, &cp)
	if code != http.StatusOK {
		t.Fatalf("compile by key: %d %s", code, raw)
	}
	if cp.Key != rt.Key || cp.CodeLen == 0 || len(cp.Words) != cp.CodeLen || cp.Listing == "" {
		t.Fatalf("thin compile response: %+v", cp)
	}

	// Second retarget of the same model is a cache hit.
	code, raw = post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, &rt)
	if code != http.StatusOK || !strings.Contains(rt.Cache, "hit") {
		t.Fatalf("second retarget: %d %s outcome %q", code, raw, rt.Cache)
	}
}

func TestCompileUnknownKey404(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	code, _ := post(t, ts.URL+"/v1/compile", map[string]string{
		"key": "deadbeef", "source": "int y; y = 1;",
	}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown key: %d, want 404", code)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	cases := []struct {
		path string
		body interface{}
		want int
	}{
		{"/v1/retarget", map[string]string{}, http.StatusBadRequest},
		{"/v1/retarget", map[string]string{"model_name": "nope"}, http.StatusBadRequest},
		{"/v1/retarget", map[string]string{"model": "bogus model text"}, http.StatusUnprocessableEntity},
		{"/v1/compile", map[string]string{"model_name": "demo"}, http.StatusBadRequest}, // no source
		{"/v1/compile", map[string]string{"key": "k", "model_name": "demo", "source": "int y;"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, raw := post(t, ts.URL+c.path, c.body, nil); code != c.want {
			t.Errorf("%s %v: %d (want %d): %s", c.path, c.body, code, c.want, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/retarget")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET retarget: %d", resp.StatusCode)
	}
}

// TestConcurrentCompileSingleflight is the acceptance-criterion test: many
// concurrent /v1/compile requests for the same (uncached) model must
// trigger exactly one underlying retarget and all return identical code.
func TestConcurrentCompileSingleflight(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 16})
	k, ok := dspstone.Get("real_update")
	if !ok {
		t.Fatal("kernel real_update missing")
	}

	const n = 8
	responses := make([]compileResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]string{
				"model_name": "tms320c25",
				"source":     k.Source,
			})
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(responses[i].Words, responses[0].Words) {
			t.Fatalf("request %d emitted different code:\n%v\n%v", i, responses[i].Words, responses[0].Words)
		}
		if responses[i].Key != responses[0].Key {
			t.Fatalf("request %d got key %s, want %s", i, responses[i].Key, responses[0].Key)
		}
	}
	if responses[0].CodeLen == 0 {
		t.Fatal("empty code")
	}
	if got := s.cache.Stats().Retargets; got != 1 {
		t.Fatalf("%d concurrent compiles ran %d retargets, want exactly 1 (singleflight)", n, got)
	}
}

func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	if code, _ := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, nil); code != http.StatusOK {
		t.Fatalf("retarget: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"record_rcache_retargets_total 1",
		"record_rcache_misses_total 1",
		"record_recordd_inflight_compiles 0",
		`record_recordd_phase_seconds_count{phase="retarget"} 1`,
		// The pipeline's own instruments surface through the same scrape.
		"record_core_retargets_total 1",
		"record_ise_templates_extracted_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestWorkerPoolBounds(t *testing.T) {
	// With one worker, many parallel compiles still succeed (they queue).
	_, ts := newTestServer(t, serverConfig{workers: 1})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]string{
				"model_name": "demo",
				"source":     "int a = 2; int y; y = a + 1;",
			})
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestCompileBatch(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 4})
	good1 := "int a = 2; int b = 3; int y; y = a + b;"
	good2 := "int a = 5; int b = 2; int y; y = a - b;"
	bad := "int a = 1; int y; y = a + ;"

	// Individual reference words for the good programs.
	ref := func(src string) []uint64 {
		var cr compileResponse
		code, raw := post(t, ts.URL+"/v1/compile", map[string]interface{}{
			"model_name": "demo", "source": src,
		}, &cr)
		if code != http.StatusOK {
			t.Fatalf("reference compile: %d %s", code, raw)
		}
		return cr.Words
	}
	ref1, ref2 := ref(good1), ref(good2)

	var br compileBatchResponse
	code, raw := post(t, ts.URL+"/v1/compile-batch", map[string]interface{}{
		"model_name": "demo",
		"programs": []map[string]string{
			{"id": "first", "source": good1},
			{"source": bad},
			{"id": "third", "source": good2},
		},
	}, &br)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, raw)
	}
	if br.Succeeded != 2 || br.Failed != 1 || len(br.Results) != 3 {
		t.Fatalf("batch counts: %+v", br)
	}
	if br.Results[0].ID != "first" || br.Results[1].ID != "1" || br.Results[2].ID != "third" {
		t.Fatalf("ids not echoed: %+v", br.Results)
	}
	if br.Results[0].Status != http.StatusOK || !reflect.DeepEqual(br.Results[0].Words, ref1) {
		t.Fatalf("program 0: %+v, want words %v", br.Results[0], ref1)
	}
	if br.Results[2].Status != http.StatusOK || !reflect.DeepEqual(br.Results[2].Words, ref2) {
		t.Fatalf("program 2: %+v, want words %v", br.Results[2], ref2)
	}
	// Partial failure mirrors the /v1/compile status mapping: a program
	// the frontend rejects is 422 with an error, no words.
	if br.Results[1].Status != http.StatusUnprocessableEntity || br.Results[1].Error == "" || len(br.Results[1].Words) != 0 {
		t.Fatalf("bad program: %+v, want 422 with error", br.Results[1])
	}
}

func TestCompileBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	if code, _ := post(t, ts.URL+"/v1/compile-batch", map[string]interface{}{
		"model_name": "demo",
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", code)
	}
	if code, _ := post(t, ts.URL+"/v1/compile-batch", map[string]interface{}{
		"model_name": "demo",
		"programs":   []map[string]string{{"id": "x"}},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("sourceless program: %d, want 400", code)
	}
	if code, _ := post(t, ts.URL+"/v1/compile-batch", map[string]interface{}{
		"programs": []map[string]string{{"source": "int a = 1;"}},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("no model: %d, want 400", code)
	}
}

func TestCompileBatchParallelConsistency(t *testing.T) {
	// A batch larger than the pool, all compiling the same program, must
	// return identical words for every entry (frozen-target determinism).
	_, ts := newTestServer(t, serverConfig{workers: 4})
	src := "int a = 2; int b = 3; int c = 4; int y; y = (a + b) - c;"
	programs := make([]map[string]string, 12)
	for i := range programs {
		programs[i] = map[string]string{"source": src}
	}
	var br compileBatchResponse
	code, raw := post(t, ts.URL+"/v1/compile-batch", map[string]interface{}{
		"model_name": "demo", "programs": programs,
	}, &br)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, raw)
	}
	if br.Succeeded != len(programs) {
		t.Fatalf("%d of %d succeeded: %s", br.Succeeded, len(programs), raw)
	}
	for i := 1; i < len(br.Results); i++ {
		if !reflect.DeepEqual(br.Results[i].Words, br.Results[0].Words) {
			t.Fatalf("result %d words %v differ from result 0 %v", i, br.Results[i].Words, br.Results[0].Words)
		}
	}
}

func TestMetricsParallelGauges(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{})
	if code, _ := post(t, ts.URL+"/v1/compile-batch", map[string]interface{}{
		"model_name": "demo",
		"programs":   []map[string]string{{"source": "int a = 1; int y; y = a + a;"}},
	}, nil); code != http.StatusOK {
		t.Fatalf("batch: %d", code)
	}

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	text := scrape()
	for _, want := range []string{
		`record_recordd_phase_seconds_count{phase="freeze"} 1`, // one retarget ran, so one freeze was measured
		`record_recordd_phase_seconds_sum{phase="freeze"}`,
		`record_recordd_phase_seconds_count{phase="batch"} 1`,
		`record_recordd_phase_seconds_count{phase="compile"} 1`,
		"record_rcache_misses_total 1",
		"record_recordd_worker_pool_size",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// The per-target gauge appears exactly while a compile is in flight.
	release := s.trackCompile("somekey")
	if text := scrape(); !strings.Contains(text, `record_recordd_target_inflight_compiles{key="somekey"} 1`) {
		t.Errorf("per-target inflight gauge missing:\n%s", text)
	}
	release()
	if text := scrape(); strings.Contains(text, "somekey") {
		t.Errorf("per-target gauge leaked after compile finished:\n%s", text)
	}
}

// TestPoolSaturationSheds is the admission-control acceptance test: with
// the worker pool held and the waiter queue full, the next request must be
// rejected promptly with 429 + Retry-After rather than queuing without
// bound, and queued work must still complete once capacity frees up.
func TestPoolSaturationSheds(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 1, maxQueue: 1})

	// Warm the cache so the queued compile needs no retarget.
	if code, raw := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, nil); code != http.StatusOK {
		t.Fatalf("warm retarget: %d %s", code, raw)
	}

	// Occupy the only worker slot.
	hold, err := s.sched.Acquire(context.Background(), qos.Interactive)
	if err != nil {
		t.Fatal(err)
	}

	// One request is allowed to queue for the slot...
	queued := make(chan int, 1)
	go func() {
		code, _, _, _ := rawPost(ts.URL+"/v1/compile",
			map[string]string{"model_name": "demo", "source": "int a = 2; int y; y = a + 1;"})
		queued <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// ...and the one after that is shed, fast and with a retry hint.  The
	// program differs from the queued one so the coalescer cannot merge it
	// into the waiting leader — it must face the full queue on its own.
	start := time.Now()
	code, hdr, raw, err := rawPost(ts.URL+"/v1/compile",
		map[string]string{"model_name": "demo", "source": "int a = 3; int y; y = a + 2;"})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated pool: %d %s, want 429", code, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shed took %v, want a fast rejection", d)
	}
	if got := s.sched.Shed(qos.Interactive); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Freeing the slot lets the queued request finish normally.
	hold()
	select {
	case code := <-queued:
		if code != http.StatusOK {
			t.Fatalf("queued request finished %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request never completed")
	}
}

// TestClientDisconnectIsSilentAbort asserts the 499-style contract: a
// client that goes away mid-request produces no error response and is
// counted as an abort, not a server error.
func TestClientDisconnectIsSilentAbort(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 1})
	// Hold the only slot so the request queues and cancellation lands first.
	hold, err := s.sched.Acquire(context.Background(), qos.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(map[string]string{"model_name": "demo", "source": "int y; y = 1;"})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request unexpectedly succeeded")
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.cAborts.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("client abort not counted (aborts=%d)", s.cAborts.Value())
		}
		time.Sleep(time.Millisecond)
	}
	// The disconnect is not misfiled as a server error.
	if got := s.cErrors.With("500").Value(); got != 0 {
		t.Fatalf("client disconnect counted as %d server errors", got)
	}
}
