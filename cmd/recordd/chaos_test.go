// Chaos harness for the resilient compile service: concurrent traffic with
// armed faultpoints, a mid-flight SIGTERM drain, crash-shaped cache damage
// and a model that fails until its circuit opens.  The invariants under
// test are the resilience model's contract (DESIGN.md "Resilience model"):
//
//   - no accepted request is dropped without an explicit 4xx/5xx status;
//   - SIGTERM loses no in-flight request and the process exits within the
//     drain timeout;
//   - the cache recovers from orphaned temp files and corrupt artifacts;
//   - a repeatedly failing model trips its breaker (fast 503s with
//     Retry-After) while other models keep compiling, and recovers through
//     a half-open probe once the fault clears.
//
// These run under -race in the CI chaos job; `go test -short` skips them.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultpoint"
)

func skipChaos(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("chaos harness skipped under -short")
	}
}

// rawPost is like post but never fails the test on a non-OK status: the
// chaos invariant is exactly that every request yields SOME status.
func rawPost(url string, body interface{}) (int, http.Header, string, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, "", err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.String(), nil
}

// TestChaosFaultedTrafficAlwaysAnswered storms a small faulted server with
// mixed traffic.  Whatever the armed faults do — failed worker spawns,
// dying disk writes, broken response encoders, slow extractions — every
// request must come back with an explicit status from the documented set,
// and the service must return to full health once the faults clear.
func TestChaosFaultedTrafficAlwaysAnswered(t *testing.T) {
	skipChaos(t)
	defer faultpoint.Reset()

	_, ts := newTestServer(t, serverConfig{
		workers: 2, maxQueue: 4, cacheDir: t.TempDir(),
	})
	for _, spec := range []string{
		"recordd.worker.spawn=error*3",
		"rcache.disk.write=error*2",
		"recordd.response.encode=error*2",
		"ise.extract=delay:20ms*4",
	} {
		if err := faultpoint.ArmSpec(spec); err != nil {
			t.Fatal(err)
		}
	}

	type shot struct {
		path string
		body interface{}
	}
	shots := []shot{
		{"/v1/compile", map[string]string{"model_name": "demo", "source": "int a = 2; int y; y = a + 1;"}},
		{"/v1/compile", map[string]string{"model_name": "demo", "source": "int a = 1; int y; y = a + ;"}}, // bad program
		{"/v1/retarget", map[string]string{"model_name": "ref"}},
		{"/v1/compile", map[string]string{"key": "nope", "source": "int y; y = 1;"}},
	}
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusBadRequest: true, http.StatusNotFound: true,
		http.StatusUnprocessableEntity: true, http.StatusTooManyRequests: true,
		http.StatusInternalServerError: true, http.StatusServiceUnavailable: true,
		http.StatusGatewayTimeout: true,
	}

	const n = 32
	statuses := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := shots[i%len(shots)]
			statuses[i], _, _, errs[i] = rawPost(ts.URL+sh.path, sh.body)
		}(i)
	}
	wg.Wait()

	okCount := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d dropped without a status: %v", i, errs[i])
		}
		if !allowed[statuses[i]] {
			t.Fatalf("request %d: undocumented status %d", i, statuses[i])
		}
		if statuses[i] == http.StatusOK {
			okCount++
		}
	}
	if okCount == 0 {
		t.Fatal("no request succeeded under partial faults")
	}

	// Faults cleared: the service is fully healthy again.
	faultpoint.Reset()
	code, _, raw, err := rawPost(ts.URL+"/v1/compile",
		map[string]string{"model_name": "demo", "source": "int a = 2; int y; y = a + 1;"})
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-chaos compile: %d %v %s", code, err, raw)
	}
}

// TestChaosDrainSIGTERM runs the real serve() loop, parks slow requests
// mid-flight, delivers a SIGTERM and asserts the drain contract: every
// in-flight request completes with 200, and serve returns well within the
// drain timeout.
func TestChaosDrainSIGTERM(t *testing.T) {
	skipChaos(t)
	defer faultpoint.Reset()

	s, err := newServer(serverConfig{workers: 4, cacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	// Hold extractions mid-flight so the drain has something to wait for.
	if err := faultpoint.ArmSpec("ise.extract=delay:300ms*"); err != nil {
		t.Fatal(err)
	}

	sigs := make(chan os.Signal, 1)
	var logbuf bytes.Buffer
	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(ln, s, 5*time.Second, sigs, &logbuf) }()

	const n = 4
	statuses := make([]int, n)
	reqErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, _, reqErrs[i] = rawPost(base+"/v1/compile",
				map[string]string{"model_name": "ref", "source": "int a = 2; int y; y = a + 1;"})
		}(i)
	}

	// Let the requests reach the slow extraction, then pull the plug.
	time.Sleep(100 * time.Millisecond)
	sigs <- syscall.SIGTERM

	start := time.Now()
	wg.Wait()
	for i := 0; i < n; i++ {
		if reqErrs[i] != nil {
			t.Fatalf("in-flight request %d dropped by the drain: %v", i, reqErrs[i])
		}
		if statuses[i] != http.StatusOK {
			t.Fatalf("in-flight request %d finished %d, want 200", i, statuses[i])
		}
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not exit within the drain timeout")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("drain took %v", time.Since(start))
	}
	if !strings.Contains(logbuf.String(), "draining") || !strings.Contains(logbuf.String(), "drained, exiting") {
		t.Fatalf("drain log incomplete:\n%s", logbuf.String())
	}
}

// TestDrainRefusesNewWork covers the drain gate itself, independent of
// socket shutdown timing: once draining, /healthz reports it and new work
// is refused with an explicit 503 + Retry-After.
func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{})
	s.beginDrain()
	s.beginDrain() // idempotent

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", resp.StatusCode)
	}

	code, hdr, raw, err := rawPost(ts.URL+"/v1/compile",
		map[string]string{"model_name": "demo", "source": "int y; y = 1;"})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable || !strings.Contains(raw, "draining") {
		t.Fatalf("draining compile: %d %s, want 503 draining", code, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining refusal missing Retry-After")
	}
}

// TestChaosCacheCrashRecovery damages the cache directory the way crashes
// do — an orphaned temp file from a kill -9 mid-write, a truncated
// artifact from a torn write — and asserts a fresh server heals both:
// orphans are swept at startup, corrupt artifacts are dropped and
// recomputed, and the rewritten artifact serves disk hits again.
func TestChaosCacheCrashRecovery(t *testing.T) {
	skipChaos(t)
	defer faultpoint.Reset()
	dir := t.TempDir()

	// A first server populates the cache.
	_, ts := newTestServer(t, serverConfig{cacheDir: dir})
	var rt retargetResponse
	if code, raw := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, &rt); code != http.StatusOK {
		t.Fatalf("seed retarget: %d %s", code, raw)
	}

	// Crash damage: an orphaned temp and a truncated artifact.
	orphan := filepath.Join(dir, "."+rt.Key+".tmp12345")
	if err := os.WriteFile(orphan, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	art := filepath.Join(dir, rt.Key+".rart")
	data, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(art, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh server sweeps the orphan at startup...
	s2, ts2 := newTestServer(t, serverConfig{cacheDir: dir})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file survived the recovery scan")
	}
	if s2.cache.Stats().Orphans != 1 {
		t.Fatalf("orphans recovered = %d, want 1", s2.cache.Stats().Orphans)
	}
	// ...and recomputes through the corrupt artifact.
	var rt2 retargetResponse
	if code, raw := post(t, ts2.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, &rt2); code != http.StatusOK {
		t.Fatalf("retarget over corrupt artifact: %d %s", code, raw)
	}
	if rt2.Key != rt.Key {
		t.Fatalf("key changed across recovery: %s vs %s", rt2.Key, rt.Key)
	}
	if s2.cache.Stats().Corrupt != 1 {
		t.Fatalf("corrupt drops = %d, want 1", s2.cache.Stats().Corrupt)
	}

	// The rewritten artifact is whole again: a third server gets disk hits.
	_, ts3 := newTestServer(t, serverConfig{cacheDir: dir})
	var rt3 retargetResponse
	if code, raw := post(t, ts3.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, &rt3); code != http.StatusOK || !strings.Contains(rt3.Cache, "hit") {
		t.Fatalf("post-recovery retarget: %d %s outcome %q, want a hit", code, raw, rt3.Cache)
	}

	// A store that dies mid-write (injected) must leave no temp behind.
	if err := faultpoint.ArmSpec("rcache.disk.write=error"); err != nil {
		t.Fatal(err)
	}
	if code, raw := post(t, ts3.URL+"/v1/retarget", map[string]string{"model_name": "ref"}, nil); code != http.StatusOK {
		t.Fatalf("retarget with dying disk write: %d %s", code, raw)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("failed store leaked temp file %s", e.Name())
		}
	}
}

// TestChaosBreakerOpensAndRecovers makes one model fail persistently: its
// circuit must open (fast 503s with Retry-After, no pipeline work) while
// another model keeps compiling, then recover through a half-open probe
// once the fault clears.  The breaker metrics must agree with the
// failures the client observed.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	skipChaos(t)
	defer faultpoint.Reset()

	s, ts := newTestServer(t, serverConfig{
		workers: 2, brkWindow: 4, brkRate: 0.5, brkCooldown: 200 * time.Millisecond,
	})
	if err := faultpoint.ArmSpec("ise.extract@tms320c25=error*"); err != nil {
		t.Fatal(err)
	}

	body := map[string]string{"model_name": "tms320c25"}
	var n500, n503 int
	// Failures accumulate until the window trips; then the circuit fails
	// fast without touching the pipeline.
	sawOpen := false
	for i := 0; i < 6; i++ {
		code, hdr, raw, err := rawPost(ts.URL+"/v1/retarget", body)
		if err != nil {
			t.Fatal(err)
		}
		switch code {
		case http.StatusInternalServerError:
			n500++
			if !strings.Contains(raw, "injected fault ise.extract") {
				t.Fatalf("500 without the injected fault: %s", raw)
			}
		case http.StatusServiceUnavailable:
			n503++
			sawOpen = true
			if hdr.Get("Retry-After") == "" {
				t.Fatalf("open-circuit 503 missing Retry-After: %s", raw)
			}
			if !strings.Contains(raw, "circuit open") {
				t.Fatalf("open-circuit 503 body: %s", raw)
			}
		default:
			t.Fatalf("attempt %d: status %d: %s", i, code, raw)
		}
	}
	if !sawOpen {
		t.Fatalf("circuit never opened after %d failures", n500)
	}

	// The broken model's open circuit does not affect other models.
	if code, raw := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, nil); code != http.StatusOK {
		t.Fatalf("healthy model collateral damage: %d %s", code, raw)
	}

	// Fault cleared + cooldown elapsed: the half-open probe closes the
	// circuit again.
	faultpoint.Disarm("ise.extract")
	time.Sleep(250 * time.Millisecond)
	if code, _, raw, err := rawPost(ts.URL+"/v1/retarget", body); err != nil || code != http.StatusOK {
		t.Fatalf("recovery probe: %d %v %s", code, err, raw)
	}

	// Metrics agree with what the client saw.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = io.Copy(&buf, resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"record_recordd_breaker_opens_total 1",
		fmt.Sprintf("record_recordd_breaker_rejections_total %d", n503),
		fmt.Sprintf(`record_recordd_errors_total{status="500"} %d`, n500),
		fmt.Sprintf(`record_recordd_errors_total{status="503"} %d`, n503),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	_ = s
}
