package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServer starts a service, warms the demo artifact and returns the
// compile endpoint plus a request body compiling by key.
func benchServer(b *testing.B, cfg serverConfig) (string, []byte) {
	b.Helper()
	s, err := newServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	b.Cleanup(ts.Close)

	rtBody, _ := json.Marshal(map[string]string{"model_name": "demo"})
	resp, err := http.Post(ts.URL+"/v1/retarget", "application/json", bytes.NewReader(rtBody))
	if err != nil {
		b.Fatal(err)
	}
	var rt retargetResponse
	if err := json.NewDecoder(resp.Body).Decode(&rt); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	body, _ := json.Marshal(map[string]string{
		"key":    rt.Key,
		"source": "int a = 2; int b = 3; int y; y = a + b;",
	})
	return ts.URL + "/v1/compile", body
}

// BenchmarkServerCompile measures request latency through the full
// admission + breaker + pool path with ample capacity: the resilience
// layers' overhead on the happy path.
func BenchmarkServerCompile(b *testing.B) {
	url, body := benchServer(b, serverConfig{
		workers: 8, maxQueue: 64, brkWindow: 8, brkRate: 0.5,
	})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			_ = resp.Body.Close()
		}
	})
}

// BenchmarkServerCompileShed measures the same traffic against a
// deliberately starved pool (one worker, one queue slot): most requests
// shed with 429, so this is the cost of the fast-rejection path — the
// latency an overloaded service imposes on the clients it turns away.
func BenchmarkServerCompileShed(b *testing.B) {
	url, body := benchServer(b, serverConfig{
		workers: 1, maxQueue: 1, brkWindow: 8, brkRate: 0.5,
	})
	b.ReportAllocs()
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				b.Fatalf("status %d", resp.StatusCode)
			}
			_ = resp.Body.Close()
		}
	})
}

// BenchmarkServerCompileQoS measures mixed-priority traffic through the
// weighted QoS scheduler: alternating interactive and batch requests for
// the same (model, program), so the run exercises class parsing, the
// multi-queue dispatch path and duplicate-compile coalescing together.
func BenchmarkServerCompileQoS(b *testing.B) {
	url, body := benchServer(b, serverConfig{
		workers: 8, maxQueue: 64, brkWindow: 8, brkRate: 0.5,
	})
	classes := []string{"interactive", "batch"}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Record-Priority", classes[i%len(classes)])
			i++
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			_ = resp.Body.Close()
		}
	})
}
