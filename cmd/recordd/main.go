// Command recordd is the long-running compile service over the retargetable
// compiler: the expensive retarget step (ISE → template extension → tree
// grammar → BURS tables) runs at most once per processor model and is kept
// as a content-addressed artifact in a two-tier cache (internal/rcache);
// compile requests against a cached model pay only code selection,
// compaction and encoding.
//
// Endpoints:
//
//	POST /v1/retarget  {"model": "<MDL source>"} or {"model_name": "tms320c25"}
//	                   → {"key", "name", "templates", "rules", "cache"}
//	POST /v1/compile   {"key": "<artifact key>"} or a model selector, plus
//	                   {"source": "<RecC program>", "options": {...}}
//	                   → {"key", "cache", "words", "listing", "seq_len", "code_len"}
//	GET  /healthz      liveness; 503 {"draining": true} during shutdown;
//	                   includes the node identity ("node")
//	GET  /metrics      cache counters, in-flight compiles, per-phase latency
//	GET  /v1/artifact/{key}  encoded artifact bytes for fleet peers; 404
//	                   when the key is not in the local disk store
//	PUT  /v1/artifact/{key}  anti-entropy push from a fleet peer; the body
//	                   is decode-verified against the content address, 503
//	                   + Retry-After while the disk tier is degraded
//	GET  /v1/inventory paginated artifact-key listing + set digest, for
//	                   the peers' anti-entropy inventory exchange
//
// Flags:
//
//	-addr host:port    listen address (default :8347)
//	-node-id id        fleet node identity in /healthz and metrics
//	                   (default: the bound listen address)
//	-peers urls        comma-separated base URLs of the other fleet nodes;
//	                   on a local cache miss the artifact is fetched from
//	                   the key's rendezvous peer before retargeting
//	-advertise url     this node's own base URL as the peers dial it; names
//	                   the node on the consistent-hash ring so all nodes
//	                   compute the same ownership (required for anti-entropy)
//	-scrub-interval d  background disk-scrub cycle interval (0 = off);
//	                   corrupt artifacts are quarantined and peer-repaired
//	-scrub-rate f      scrub pacing in artifacts verified per second
//	-anti-entropy-interval d  push-replication sweep interval (0 = off)
//	-replicate n       desired durable copies per owned artifact (default 2)
//	-debug-addr h:p    profiling listener: net/http/pprof plus /metrics
//	                   (default off; keep it off the public address)
//	-cache-dir dir     artifact store directory (default: memory-only)
//	-cache-size n      in-memory target LRU capacity
//	-workers n         bounded worker pool for retarget/compile work
//	-timeout d         per-request wall-clock budget (0 = unlimited)
//	-max-bdd-nodes n   per-request BDD universe cap (0 = unlimited)
//	-max-routes n      per-request route enumeration cap (0 = default)
//	-max-queue n       pool-slot waiters admitted before shedding 429 (0 = unlimited)
//	-qos-weights spec  per-class dispatch weights, "interactive=8,batch=1";
//	                   clients declare a class with X-Record-Priority
//	-prewarm d         speculative pre-warm sweep interval (0 = off);
//	                   idle capacity retargets hot models back into memory
//	-prewarm-top n     hot models considered per pre-warm sweep
//	-drain-timeout d   grace for in-flight requests after SIGTERM/SIGINT
//	-breaker-window n  per-model circuit-breaker outcome window (0 = off)
//	-breaker-rate f    failure rate that opens a model's circuit
//	-breaker-cooldown d  open → half-open probe cooldown
//	-faultpoints spec  arm fault-injection points (chaos testing; see
//	                   `record -faultpoints list`)
//	-trace-spans n     request-tracer span ring bound; overwritten spans
//	                   count in record_obs_spans_dropped_total
//	-slo-targets spec  per-route latency objectives,
//	                   "compile=500ms,retarget=60s,batch=10s,artifact=100ms"
//	-slo-availability f  good-event fraction objective (default 0.999)
//	-slo-fast-window d   fast burn-rate window (default 1m)
//	-slo-slow-window d   slow burn-rate window (default 10m)
//
// Every traced request (X-Record-Trace in, echoed out) records into a
// bounded span ring served at GET /v1/debug/spans for cmd/tracefuse.
//
// On SIGTERM/SIGINT the daemon drains: /healthz flips to 503, new work is
// refused with explicit statuses, in-flight requests get -drain-timeout to
// finish, and the artifact cache directory is flushed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/qos"
)

func main() {
	var (
		addr      = flag.String("addr", ":8347", "listen address")
		debugAddr = flag.String("debug-addr", "", "profiling listener (pprof + /metrics); empty = disabled")
		drain     = flag.Duration("drain-timeout", 15*time.Second, "grace for in-flight requests on SIGTERM/SIGINT")
		faults    = flag.String("faultpoints", "", "arm fault-injection points: name[@match]=kind[:arg][*times],...")
		peers     = flag.String("peers", "", "comma-separated base URLs of the other fleet nodes (enables peer artifact replication)")
		cfg       serverConfig
	)
	flag.StringVar(&cfg.nodeID, "node-id", "", "fleet node identity in /healthz and metrics (default: the listen address)")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "artifact store directory (empty = memory-only)")
	flag.IntVar(&cfg.cacheSize, "cache-size", 16, "in-memory target LRU capacity")
	flag.IntVar(&cfg.workers, "workers", 4, "bounded worker pool size")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "per-request wall-clock budget (0 = unlimited)")
	flag.IntVar(&cfg.maxBDDNodes, "max-bdd-nodes", 0, "per-request BDD universe cap (0 = unlimited)")
	flag.IntVar(&cfg.maxRoutes, "max-routes", 0, "per-request route enumeration cap (0 = default)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 64, "pool-slot waiters admitted before shedding with 429 (0 = unlimited)")
	qosWeights := flag.String("qos-weights", "", `per-class dispatch weights, e.g. "interactive=8,batch=1"`)
	flag.DurationVar(&cfg.prewarmEvery, "prewarm", 0, "speculative pre-warm sweep interval (0 = off)")
	flag.IntVar(&cfg.prewarmTop, "prewarm-top", 4, "hot models considered per pre-warm sweep")
	flag.IntVar(&cfg.brkWindow, "breaker-window", 8, "per-model circuit-breaker outcome window (0 = breaker off)")
	flag.Float64Var(&cfg.brkRate, "breaker-rate", 0.5, "failure rate that opens a model's circuit")
	flag.DurationVar(&cfg.brkCooldown, "breaker-cooldown", 10*time.Second, "circuit open -> half-open probe cooldown")
	flag.StringVar(&cfg.advertise, "advertise", "", "this node's own base URL as peers dial it (ring member name; default: -node-id)")
	flag.DurationVar(&cfg.scrubInterval, "scrub-interval", 0, "disk-scrub cycle interval (0 = off)")
	flag.Float64Var(&cfg.scrubRate, "scrub-rate", 0, "disk-scrub pacing in artifacts/sec (0 = default)")
	flag.DurationVar(&cfg.aeInterval, "anti-entropy-interval", 0, "anti-entropy replication sweep interval (0 = off)")
	flag.IntVar(&cfg.replicate, "replicate", 2, "desired durable copies per owned artifact, self included")
	flag.IntVar(&cfg.traceSpans, "trace-spans", 4096, "request-tracer span ring bound")
	sloTargets := flag.String("slo-targets", "", `per-route latency objectives, e.g. "compile=500ms,retarget=60s"`)
	flag.Float64Var(&cfg.sloAvailability, "slo-availability", 0, "SLO good-event fraction objective (0 = 0.999)")
	flag.DurationVar(&cfg.sloFastWindow, "slo-fast-window", 0, "fast burn-rate window (0 = 1m)")
	flag.DurationVar(&cfg.sloSlowWindow, "slo-slow-window", 0, "slow burn-rate window (0 = 10m)")
	flag.Parse()

	if *sloTargets != "" {
		targets, err := parseSLOTargets(*sloTargets)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recordd: %v\n", err)
			os.Exit(2)
		}
		cfg.sloTargets = targets
	}

	if *faults != "" {
		if err := faultpoint.ArmSpec(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "recordd: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "recordd: armed faultpoints: %v\n", faultpoint.Armed())
	}

	if *qosWeights != "" {
		w, err := qos.ParseWeights(*qosWeights)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recordd: %v\n", err)
			os.Exit(2)
		}
		cfg.qosWeights = w
	}

	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			cfg.peers = append(cfg.peers, p)
		}
	}

	// Listen before building the server so an unset -node-id can default
	// to the concrete bound address (":8347" resolves to host:port here).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recordd: %v\n", err)
		os.Exit(1)
	}
	if cfg.nodeID == "" {
		cfg.nodeID = ln.Addr().String()
	}

	s, err := newServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recordd: %v\n", err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, obs.DebugMux(s.reg)); err != nil {
				fmt.Fprintf(os.Stderr, "recordd: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("recordd debug listener on %s (pprof + /metrics)\n", *debugAddr)
	}
	fmt.Printf("recordd %s listening on %s (workers=%d, cache-dir=%q, peers=%d)\n",
		s.cfg.nodeID, ln.Addr(), s.cfg.workers, s.cfg.cacheDir, len(s.cfg.peers))

	// Probe peers in the background so a dead peer is excluded from
	// artifact fetches (and a revived one rejoins) without waiting for a
	// cache miss to discover it.
	proberCtx, stopProber := context.WithCancel(context.Background())
	defer stopProber()
	if s.cfg.prewarmEvery > 0 {
		go s.prewarmLoop(proberCtx)
		fmt.Printf("recordd pre-warm every %v (top %d hot models)\n", s.cfg.prewarmEvery, s.cfg.prewarmTop)
	}
	if s.cfg.scrubInterval > 0 && s.cfg.cacheDir != "" {
		go s.scrubLoop(proberCtx)
		fmt.Printf("recordd disk scrub every %v\n", s.cfg.scrubInterval)
	}
	if s.ae != nil {
		go s.antiEntropyLoop(proberCtx)
		fmt.Printf("recordd anti-entropy every %v (replicate=%d)\n", s.cfg.aeInterval, s.cfg.replicate)
	}
	if len(s.cfg.peers) > 0 {
		p := &fleet.Prober{
			Tracker:   s.peerHealth,
			Endpoints: s.cfg.peers,
			Check: func(ctx context.Context, ep string) error {
				ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				defer cancel()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet,
					strings.TrimRight(ep, "/")+"/healthz", nil)
				if err != nil {
					return err
				}
				resp, err := s.peerHTTP.Do(req)
				if err != nil {
					return err
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("peer %s: status %d", ep, resp.StatusCode)
				}
				return nil
			},
		}
		go p.Run(proberCtx)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	if err := serve(ln, s, *drain, sigs, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "recordd: %v\n", err)
		os.Exit(1)
	}
}

// parseSLOTargets parses "route=duration,..." into per-route latency
// objectives, starting from the defaults so a spec can override one
// route without restating the rest.
func parseSLOTargets(spec string) (map[string]time.Duration, error) {
	targets := defaultSLOTargets()
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		route, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("slo-targets: %q is not route=duration", part)
		}
		d, err := time.ParseDuration(strings.TrimSpace(val))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("slo-targets: bad duration in %q", part)
		}
		targets[strings.TrimSpace(route)] = d
	}
	return targets, nil
}

// serve runs the HTTP service on ln until a signal arrives on sigs, then
// drains gracefully: the server flips into refusal mode (queued waiters
// shed with 503, /healthz reports draining), in-flight requests get
// drainTimeout to finish, and the cache directory is flushed before
// returning.  Factored out of main so the chaos harness can exercise the
// full drain sequence in-process.
func serve(ln net.Listener, s *server, drainTimeout time.Duration, sigs <-chan os.Signal, logw io.Writer) error {
	srv := &http.Server{Handler: s.handler()}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
		close(errc)
	}()

	select {
	case err, ok := <-errc:
		if ok && err != nil {
			return err
		}
		return fmt.Errorf("listener closed unexpectedly")
	case sig := <-sigs:
		fmt.Fprintf(logw, "recordd: %v: draining (timeout %v)\n", sig, drainTimeout)
	}

	s.beginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(logw, "recordd: drain timeout exceeded, closing: %v\n", err)
		srv.Close()
	}
	if err := s.cache.Close(); err != nil {
		fmt.Fprintf(logw, "recordd: cache flush: %v\n", err)
	}
	for err := range errc {
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(logw, "recordd: drained, exiting\n")
	return nil
}
