// Command recordd is the long-running compile service over the retargetable
// compiler: the expensive retarget step (ISE → template extension → tree
// grammar → BURS tables) runs at most once per processor model and is kept
// as a content-addressed artifact in a two-tier cache (internal/rcache);
// compile requests against a cached model pay only code selection,
// compaction and encoding.
//
// Endpoints:
//
//	POST /v1/retarget  {"model": "<MDL source>"} or {"model_name": "tms320c25"}
//	                   → {"key", "name", "templates", "rules", "cache"}
//	POST /v1/compile   {"key": "<artifact key>"} or a model selector, plus
//	                   {"source": "<RecC program>", "options": {...}}
//	                   → {"key", "cache", "words", "listing", "seq_len", "code_len"}
//	GET  /healthz      liveness
//	GET  /metrics      cache counters, in-flight compiles, per-phase latency
//
// Flags:
//
//	-addr host:port    listen address (default :8347)
//	-debug-addr h:p    profiling listener: net/http/pprof plus /metrics
//	                   (default off; keep it off the public address)
//	-cache-dir dir     artifact store directory (default: memory-only)
//	-cache-size n      in-memory target LRU capacity
//	-workers n         bounded worker pool for retarget/compile work
//	-timeout d         per-request wall-clock budget (0 = unlimited)
//	-max-bdd-nodes n   per-request BDD universe cap (0 = unlimited)
//	-max-routes n      per-request route enumeration cap (0 = default)
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8347", "listen address")
		debugAddr = flag.String("debug-addr", "", "profiling listener (pprof + /metrics); empty = disabled")
		cfg       serverConfig
	)
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "artifact store directory (empty = memory-only)")
	flag.IntVar(&cfg.cacheSize, "cache-size", 16, "in-memory target LRU capacity")
	flag.IntVar(&cfg.workers, "workers", 4, "bounded worker pool size")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "per-request wall-clock budget (0 = unlimited)")
	flag.IntVar(&cfg.maxBDDNodes, "max-bdd-nodes", 0, "per-request BDD universe cap (0 = unlimited)")
	flag.IntVar(&cfg.maxRoutes, "max-routes", 0, "per-request route enumeration cap (0 = default)")
	flag.Parse()

	s, err := newServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recordd: %v\n", err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, obs.DebugMux(s.reg)); err != nil {
				fmt.Fprintf(os.Stderr, "recordd: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("recordd debug listener on %s (pprof + /metrics)\n", *debugAddr)
	}
	fmt.Printf("recordd listening on %s (workers=%d, cache-dir=%q)\n",
		*addr, s.cfg.workers, s.cfg.cacheDir)
	if err := http.ListenAndServe(*addr, s.handler()); err != nil {
		fmt.Fprintf(os.Stderr, "recordd: %v\n", err)
		os.Exit(1)
	}
}
