package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// getJSON fetches url and decodes the body into out, failing the test on
// transport or decode errors.  It returns the response for header checks.
func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp
}

// TestTracedRequestJoinsCallerTrace sends a retarget carrying a caller
// trace context and asserts the request span lands in the node's ring
// under the caller's trace ID, with the echo header agreeing.
func TestTracedRequestJoinsCallerTrace(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{cacheDir: t.TempDir(), nodeID: "n-test"})

	callerTrace := "0123456789abcdef0123456789abcdef"
	header := fmt.Sprintf("00-%s-%s-01", callerTrace, "00000000000000ab")
	body := strings.NewReader(`{"model_name":"demo"}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/retarget", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, header)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retarget: %d", resp.StatusCode)
	}

	// The echo header carries the caller's trace ID with the server's own
	// request span ID.
	echo, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("unparseable echo header %q", resp.Header.Get(obs.TraceHeader))
	}
	if echo.Trace.String() != callerTrace {
		t.Fatalf("echo trace %s, want %s", echo.Trace, callerTrace)
	}

	var dump obs.SpanDump
	getJSON(t, ts.URL+"/v1/debug/spans", &dump)
	if dump.Node != "n-test" {
		t.Fatalf("dump node %q, want n-test", dump.Node)
	}
	var reqSpan *obs.SpanRecord
	inTrace := 0
	for i, rec := range dump.Spans {
		if rec.Trace != callerTrace {
			continue
		}
		inTrace++
		if rec.Name == "recordd.retarget" {
			reqSpan = &dump.Spans[i]
		}
	}
	if reqSpan == nil {
		t.Fatalf("no recordd.retarget span under the caller trace; dump: %+v", dump.Spans)
	}
	// Remote parenting: the request span's parent is the caller's span ID,
	// a span this ring has never seen.
	if reqSpan.Parent != "00000000000000ab" {
		t.Fatalf("request span parent %q, want the caller span", reqSpan.Parent)
	}
	if reqSpan.Attrs["node"] != "n-test" || reqSpan.Attrs["status"] != float64(http.StatusOK) {
		t.Fatalf("request span attrs %v", reqSpan.Attrs)
	}
	// The layers below — QoS wait, cache lookup — joined the same trace
	// rather than opening fresh ones.
	if inTrace < 2 {
		t.Fatalf("only %d spans joined the caller trace, want the request plus inner work", inTrace)
	}
}

// TestTracedRequestWithoutHeaderStartsFreshTrace checks that headerless
// requests still get a ring entry with a nonzero self-assigned trace ID.
func TestTracedRequestWithoutHeaderStartsFreshTrace(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{cacheDir: t.TempDir()})
	code, _ := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, nil)
	if code != http.StatusOK {
		t.Fatalf("retarget: %d", code)
	}
	var dump obs.SpanDump
	getJSON(t, ts.URL+"/v1/debug/spans", &dump)
	for _, rec := range dump.Spans {
		if rec.Name == "recordd.retarget" {
			if rec.Trace == "" || rec.Trace == strings.Repeat("0", 32) {
				t.Fatalf("request span has no trace identity: %+v", rec)
			}
			return
		}
	}
	t.Fatalf("no recordd.retarget span in the ring: %+v", dump.Spans)
}

// TestHealthzReportsSLO asserts /healthz carries the burn-rate snapshot
// for every configured route.
func TestHealthzReportsSLO(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{cacheDir: t.TempDir()})
	code, _ := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, nil)
	if code != http.StatusOK {
		t.Fatalf("retarget: %d", code)
	}

	var hz struct {
		SLO map[string]obs.SLOStatus `json:"slo"`
	}
	getJSON(t, ts.URL+"/healthz", &hz)
	for _, route := range []string{"retarget", "compile", "batch", "artifact"} {
		if _, ok := hz.SLO[route]; !ok {
			t.Fatalf("healthz slo missing route %q: %v", route, hz.SLO)
		}
	}
	st := hz.SLO["retarget"]
	if st.Target == "" {
		t.Fatalf("retarget SLO has no latency target: %+v", st)
	}
	if st.Page || st.Warn {
		t.Fatalf("healthy server paging: %+v", st)
	}
}

// TestSpanRingDropCounterExposed bounds the ring at two spans so a single
// request overflows it, then checks the drop shows up on /metrics.
func TestSpanRingDropCounterExposed(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{cacheDir: t.TempDir(), traceSpans: 2})
	for i := 0; i < 3; i++ {
		code, _ := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, nil)
		if code != http.StatusOK {
			t.Fatalf("retarget %d: %d", i, code)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "record_obs_spans_dropped_total ") {
			found = true
			var v float64
			if _, err := fmt.Sscanf(line, "record_obs_spans_dropped_total %f", &v); err != nil || v <= 0 {
				t.Fatalf("drop counter not incremented: %q", line)
			}
		}
	}
	if !found {
		t.Fatalf("record_obs_spans_dropped_total not exposed:\n%s", text)
	}
	// The SLO gauges ride the same scrape (Refresh runs before exposition).
	if !strings.Contains(text, `record_recordd_slo_burn_ppm{route="retarget",window="fast"}`) {
		t.Fatalf("slo burn gauges not exposed:\n%s", text)
	}
}
