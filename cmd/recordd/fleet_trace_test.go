// Fleet trace assembly: one traced compile crosses three real recordd
// processes — the client misses on the node it asked, which walks its
// peers (one miss, one hit) to replicate the artifact — and every hop
// records spans under the client's single trace ID.  cmd/tracefuse's
// library then joins the four span rings (client + three nodes) into one
// Chrome trace with a pid lane per process.
//
// Runs under the fleet chaos harness's child re-exec; `go test -short`
// skips it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/rclient"
	"repro/internal/tracefuse"
)

func TestFleetChaosTraceAssembly(t *testing.T) {
	skipChaos(t)

	addrs := freeAddrs(t, 3)
	urls := make([]string, 3)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	nodes := make([]*fleetNode, 3)
	for i := range nodes {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		nodes[i] = &fleetNode{
			id:       fmt.Sprintf("n%d", i+1),
			addr:     addrs[i],
			url:      urls[i],
			cacheDir: t.TempDir(),
			peers:    peers,
		}
		nodes[i].start(t)
	}
	byURL := make(map[string]*fleetNode, 3)
	for _, n := range nodes {
		byURL[n.url] = n
	}

	// The artifact key is computable without retargeting, so the test can
	// stage the topology it needs: plant the artifact on the node with the
	// LOWEST rendezvous rank for the key.  Whichever node then compiles,
	// its peer walk asks the higher-ranked peer first (miss) before
	// hitting the planted copy — so the one compile touches every node.
	src, ok := models.Get("demo")
	if !ok {
		t.Fatal("bundled model demo missing")
	}
	key := artifact.Key(src, core.RetargetOptions{})
	order := fleet.Rendezvous(key, urls, 3)
	planted, missPeer, compileOn := byURL[order[2]], byURL[order[1]], byURL[order[0]]
	t.Logf("artifact %.12s…: planted on %s, compiling on %s (peer walk: %s then %s)",
		key, planted.id, compileOn.id, missPeer.id, planted.id)

	ctx := context.Background()
	rt, err := rclient.NewClient(planted.url).Retarget(ctx, rclient.ModelRef{ModelName: "demo"})
	if err != nil {
		t.Fatalf("planting retarget on %s: %v", planted.id, err)
	}
	if rt.Key != key {
		t.Fatalf("server key %s differs from client-side key %s", rt.Key, key)
	}

	// The traced compile: a client-side root span rides the context into
	// rclient, which ships the trace in X-Record-Trace.
	tracer := obs.NewTracer()
	root, scope := obs.NewScope(obs.NewRegistry(), tracer).Start("record.run")
	res, err := rclient.NewClient(compileOn.url).Compile(
		obs.ContextWithScope(ctx, scope),
		rclient.ModelRef{Key: key}, "int a = 2; int b = 3; int y; y = a + b;",
		rclient.CompileOptions{})
	if err != nil {
		t.Fatalf("traced compile on %s: %v", compileOn.id, err)
	}
	tid := root.Context().Trace.String()
	root.End()
	if res.Cache != "hit-peer" {
		t.Fatalf("compile outcome %q, want hit-peer", res.Cache)
	}
	if res.Trace != tid {
		t.Fatalf("response echoed trace %q, want the client root %q", res.Trace, tid)
	}

	// Every process holds a piece of the same trace: the client ring plus
	// all three node rings fetched over /v1/debug/spans.
	dumps := []obs.SpanDump{tracer.Dump("client")}
	fetched, err := tracefuse.Fetch(ctx, nil, urls)
	if err != nil {
		t.Fatal(err)
	}
	dumps = append(dumps, fetched...)
	for _, d := range dumps {
		found := false
		for _, rec := range d.Spans {
			if rec.Trace == tid {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("node %s has no span under trace %s", d.Node, tid)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Fusion joins the rings into one Chrome trace with a pid lane per
	// process.
	fused, err := tracefuse.Fuse(dumps, tracefuse.Options{Trace: tid})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fused.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	lanes := map[string]bool{}
	spansByPid := map[int]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			lanes[ev.Args["name"].(string)] = true
			continue
		}
		spansByPid[ev.Pid]++
	}
	for _, want := range []string{"client", "n1", "n2", "n3"} {
		if !lanes[want] {
			t.Errorf("fused trace lacks a pid lane for %s (lanes: %v)", want, lanes)
		}
	}
	if len(spansByPid) != 4 {
		t.Errorf("spans landed in %d pid lanes, want 4: %v", len(spansByPid), spansByPid)
	}
}
