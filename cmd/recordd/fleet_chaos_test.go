// Fleet chaos harness: three real recordd processes (re-execed from this
// test binary), cross-wired as peers, under a fleet client — then one of
// them is SIGKILLed mid-storm.  The invariants:
//
//   - a by-key compile on a non-owner node replicates the artifact from
//     the owner instead of 404ing (cross-node hit visible in the
//     node-labelled metrics on both sides);
//   - every storm request completes through failover with byte-identical
//     output after the routing primary is SIGKILLed;
//   - surviving nodes' metrics agree with a quiesced fleet;
//   - the killed node restarts on the same address and cache directory,
//     serves from its crash-safe store, and rejoins the client's ring.
//
// Like the single-node chaos harness, `go test -short` skips this.
package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/fleet"
	"repro/internal/rclient"
)

// TestMain lets this test binary double as the recordd executable: a
// child process spawned with RECORDD_FLEET_CHILD=1 runs the real main(),
// so the fleet harness exercises the daemon end to end — flags, signal
// handling, drain — not a test-only approximation.
func TestMain(m *testing.M) {
	if os.Getenv("RECORDD_FLEET_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// fleetNode is one child recordd process under test control.
type fleetNode struct {
	id       string
	addr     string // host:port
	url      string
	cacheDir string
	peers    []string
	extra    []string // additional flags (scrub/anti-entropy tuning)
	cmd      *exec.Cmd
}

// start launches the child and waits for /healthz to answer.
func (n *fleetNode) start(t *testing.T) {
	t.Helper()
	args := []string{
		"-addr", n.addr,
		"-node-id", n.id,
		"-cache-dir", n.cacheDir,
		"-workers", "2",
		"-drain-timeout", "3s",
		"-peers", strings.Join(n.peers, ","),
	}
	args = append(args, n.extra...)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "RECORDD_FLEET_CHILD=1")
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting node %s: %v", n.id, err)
	}
	n.cmd = cmd
	t.Cleanup(func() {
		if n.cmd != nil && n.cmd.Process != nil {
			_ = n.cmd.Process.Kill()
			_, _ = n.cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(n.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("node %s (%s) did not become healthy", n.id, n.url)
}

// kill SIGKILLs the child — no drain, no goodbye — and reaps it.
func (n *fleetNode) kill(t *testing.T) {
	t.Helper()
	if err := n.cmd.Process.Kill(); err != nil {
		t.Fatalf("killing node %s: %v", n.id, err)
	}
	_, _ = n.cmd.Process.Wait()
	n.cmd = nil
}

// freeAddrs reserves n distinct loopback ports by binding and releasing
// them; the tiny race against other processes is acceptable in tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// scrape fetches a node's /metrics exposition.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scraping %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricLine matches an exposition line for name with the given label
// pairs (in any order) and a non-zero value.
func metricLine(body, name string, labels ...string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		ok := true
		for _, l := range labels {
			if !strings.Contains(line, l) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if m := regexp.MustCompile(`\} ([0-9.e+]+)$`).FindStringSubmatch(line); m != nil && m[1] != "0" {
			return true
		}
	}
	return false
}

func TestFleetChaosNodeKillFailover(t *testing.T) {
	skipChaos(t)
	if testing.Verbose() {
		t.Log("booting 3-node fleet")
	}

	addrs := freeAddrs(t, 3)
	urls := make([]string, 3)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	nodes := make([]*fleetNode, 3)
	for i := range nodes {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		nodes[i] = &fleetNode{
			id:       fmt.Sprintf("n%d", i+1),
			addr:     addrs[i],
			url:      urls[i],
			cacheDir: t.TempDir(),
			peers:    peers,
		}
		nodes[i].start(t)
	}
	byURL := make(map[string]*fleetNode, 3)
	for _, n := range nodes {
		byURL[n.url] = n
	}

	fl, err := rclient.NewFleet(urls)
	if err != nil {
		t.Fatal(err)
	}
	fl.Policy.MaxAttempts = 5
	fl.Policy.Base = 50 * time.Millisecond
	fl.Policy.Cap = 500 * time.Millisecond
	fl.HedgeDelay = -1 // failover only; hedging has its own unit tests

	ctx := context.Background()
	const prog = "int a = 2; int b = 3; int y; y = a + b;"

	// Retarget through the fleet: the artifact lands on the key's ring
	// owner and is persisted in its store.
	rt, err := fl.Retarget(ctx, rclient.ModelRef{ModelName: "demo"})
	if err != nil {
		t.Fatalf("fleet retarget: %v", err)
	}
	byKey := rclient.ModelRef{Key: rt.Key}

	// The client-side ring and the test agree on replica order because
	// both hash the same endpoint URLs.
	order := fleet.NewRing(fleet.DefaultVirtualNodes, urls...).Successors(rt.Key, 3)
	owner := byURL[order[0]]
	t.Logf("artifact %.12s… owned by %s", rt.Key, owner.id)

	expected, err := fl.Compile(ctx, byKey, prog, rclient.CompileOptions{})
	if err != nil {
		t.Fatalf("reference compile: %v", err)
	}

	// Cross-node replication: a by-key compile sent directly to a
	// non-owner must succeed by fetching the encoded artifact from a
	// peer, and the transfer must be visible in node-labelled metrics on
	// both ends.
	nonOwner := byURL[order[1]]
	direct := rclient.NewClient(nonOwner.url)
	res, err := direct.Compile(ctx, byKey, prog, rclient.CompileOptions{})
	if err != nil {
		t.Fatalf("by-key compile on non-owner %s: %v", nonOwner.id, err)
	}
	if res.Cache != "hit-peer" {
		t.Fatalf("non-owner cache outcome %q, want hit-peer", res.Cache)
	}
	if !metricLine(scrape(t, nonOwner.url), "record_recordd_peer_fetch_total",
		`node="`+nonOwner.id+`"`, `outcome="hit"`) {
		t.Fatalf("non-owner %s shows no node-labelled peer fetch hit", nonOwner.id)
	}
	if !metricLine(scrape(t, owner.url), "record_recordd_artifact_serves_total",
		`node="`+owner.id+`"`, `outcome="hit"`) {
		t.Fatalf("owner %s shows no node-labelled artifact serve", owner.id)
	}

	// Storm, with a real SIGKILL of the routing primary mid-batch.  Every
	// request must complete via failover with byte-identical output.
	const storms = 24
	results := make([]*rclient.CompileResult, storms)
	errs := make([]error, storms)
	var wg sync.WaitGroup
	for i := 0; i < storms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 25 * time.Millisecond) // spread across the kill
			results[i], errs[i] = fl.Compile(ctx, byKey, prog, rclient.CompileOptions{})
		}(i)
	}
	time.Sleep(150 * time.Millisecond)
	owner.kill(t)
	t.Logf("SIGKILLed %s mid-batch", owner.id)
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("storm request %d failed despite failover: %v", i, errs[i])
		}
		if results[i].Listing != expected.Listing || fmt.Sprint(results[i].Words) != fmt.Sprint(expected.Words) {
			t.Fatalf("storm request %d output differs from pre-kill reference", i)
		}
	}

	// Surviving nodes' metrics agree with a quiesced fleet: correct node
	// identity, nothing in flight, nothing queued.
	for _, u := range order[1:] {
		n := byURL[u]
		body := scrape(t, u)
		if !metricLine(body, "record_recordd_node_info", `node="`+n.id+`"`) {
			t.Errorf("node %s does not report its node_info metric", n.id)
		}
		for _, want := range []string{
			"record_recordd_inflight_compiles 0",
			`record_recordd_queue_depth{class="batch"} 0`,
			`record_recordd_queue_depth{class="interactive"} 0`,
		} {
			if !strings.Contains(body, want) {
				t.Errorf("node %s not quiesced: missing %q", n.id, want)
			}
		}
	}

	// Revive the killed node on the same address and store.  Its
	// crash-safe cache must still hold the artifact, and the fleet
	// client's ring must route to it again after a probe.
	owner.start(t)
	revived := rclient.NewClient(owner.url)
	res, err = revived.Compile(ctx, byKey, prog, rclient.CompileOptions{})
	if err != nil {
		t.Fatalf("compile on revived %s: %v", owner.id, err)
	}
	if res.Cache != "hit-disk" {
		t.Errorf("revived node served from %q, want hit-disk (crash-safe store)", res.Cache)
	}
	if res.Listing != expected.Listing {
		t.Error("revived node output differs from reference")
	}
	fl.Probe(ctx)
	if st := fl.States()[owner.url]; st != fleet.Healthy {
		t.Fatalf("revived node state %v in client ring, want healthy", st)
	}
	post, err := fl.Compile(ctx, byKey, prog, rclient.CompileOptions{})
	if err != nil || post.Listing != expected.Listing {
		t.Fatalf("post-revival fleet compile: %v", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// gaugeValue extracts a bare (unlabelled) integer gauge from an
// exposition, or -1 if the metric is absent.
func gaugeValue(body, name string) int {
	m := regexp.MustCompile(`(?m)^` + name + ` ([0-9]+)$`).FindStringSubmatch(body)
	if m == nil {
		return -1
	}
	v, _ := strconv.Atoi(m[1])
	return v
}

// counterValue extracts the value of the first exposition line for name
// carrying all the given label pairs, or -1 if none matches.
func counterValue(body, name string, labels ...string) int {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		ok := true
		for _, l := range labels {
			if !strings.Contains(line, l) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if m := regexp.MustCompile(`\} ([0-9]+)$`).FindStringSubmatch(line); m != nil {
			v, _ := strconv.Atoi(m[1])
			return v
		}
	}
	return -1
}

// corruptOnDisk flips one byte in the middle of a stored artifact — the
// frame checksum no longer matches, exactly what slow bit rot produces.
func corruptOnDisk(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFleetChaosScrubRepair exercises the self-healing path end to end:
// three recordd processes with fast anti-entropy and scrub cycles
// converge on two replicas per artifact, then every artifact's on-disk
// copy is bit-flipped on its shard owner mid-storm.  Invariants:
//
//   - every storm request completes with byte-identical output — the
//     memory tier and the peer replicas mask the disk corruption;
//   - the scrubber quarantines each corrupt file (renamed aside, never
//     deleted) and lands an intact replacement fetched from a peer
//     within a scrub cycle or two;
//   - scrub and quarantine metrics agree with the observed file state on
//     every victim, and the replication-factor gauge sits back at the
//     -replicate target once healed.
func TestFleetChaosScrubRepair(t *testing.T) {
	skipChaos(t)
	if testing.Verbose() {
		t.Log("booting 3-node self-healing fleet")
	}

	addrs := freeAddrs(t, 3)
	urls := make([]string, 3)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	nodes := make([]*fleetNode, 3)
	for i := range nodes {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		nodes[i] = &fleetNode{
			id:       fmt.Sprintf("n%d", i+1),
			addr:     addrs[i],
			url:      urls[i],
			cacheDir: t.TempDir(),
			peers:    peers,
			// -advertise makes every node build its ring over the same
			// member URLs (cross-node ownership agreement); scrubbing and
			// anti-entropy run at test speed.
			extra: []string{
				"-advertise", urls[i],
				"-replicate", "2",
				"-anti-entropy-interval", "250ms",
				"-scrub-interval", "400ms",
				"-scrub-rate", "1000",
			},
		}
		nodes[i].start(t)
	}
	byURL := make(map[string]*fleetNode, 3)
	for _, n := range nodes {
		byURL[n.url] = n
	}

	fl, err := rclient.NewFleet(urls)
	if err != nil {
		t.Fatal(err)
	}
	fl.Policy.MaxAttempts = 5
	fl.Policy.Base = 50 * time.Millisecond
	fl.Policy.Cap = 500 * time.Millisecond
	fl.HedgeDelay = -1

	ctx := context.Background()
	const prog = "int a = 2; int b = 3; int y; y = a + b;"
	ring := fleet.NewRing(fleet.DefaultVirtualNodes, urls...)

	// Three distinct models → three distinct artifacts spread over the
	// ring.  The by-key compile routes to each key's owner, so the owner
	// ends up holding a durable copy (miss-replication pulls it over if
	// the retarget landed elsewhere); its anti-entropy sweeps then push
	// the key to the ring successor.
	type target struct {
		key     string
		owner   *fleetNode
		listing string
	}
	var targets []*target
	for _, model := range []string{"demo", "manocpu", "tanenbaum"} {
		rt, err := fl.Retarget(ctx, rclient.ModelRef{ModelName: model})
		if err != nil {
			t.Fatalf("retarget %s: %v", model, err)
		}
		res, err := fl.Compile(ctx, rclient.ModelRef{Key: rt.Key}, prog, rclient.CompileOptions{})
		if err != nil {
			t.Fatalf("reference compile on %s: %v", model, err)
		}
		targets = append(targets, &target{key: rt.Key, owner: byURL[ring.Owner(rt.Key)], listing: res.Listing})
	}

	holders := func(key string) int {
		n := 0
		for _, nd := range nodes {
			if _, err := os.Stat(filepath.Join(nd.cacheDir, key+".rart")); err == nil {
				n++
			}
		}
		return n
	}
	waitFor(t, 20*time.Second, "anti-entropy to reach 2 replicas per key", func() bool {
		for _, tg := range targets {
			if _, err := os.Stat(filepath.Join(tg.owner.cacheDir, tg.key+".rart")); err != nil {
				return false
			}
			if holders(tg.key) < 2 {
				return false
			}
		}
		return true
	})
	if testing.Verbose() {
		for _, tg := range targets {
			t.Logf("artifact %.12s… owned by %s, %d replicas", tg.key, tg.owner.id, holders(tg.key))
		}
	}

	// Storm the fleet, bit-flipping every owner's on-disk copy mid-batch.
	const storms = 24
	results := make([]*rclient.CompileResult, storms)
	errs := make([]error, storms)
	var wg sync.WaitGroup
	for i := 0; i < storms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 25 * time.Millisecond) // spread across the corruption
			tg := targets[i%len(targets)]
			results[i], errs[i] = fl.Compile(ctx, rclient.ModelRef{Key: tg.key}, prog, rclient.CompileOptions{})
		}(i)
	}
	time.Sleep(150 * time.Millisecond)
	for _, tg := range targets {
		corruptOnDisk(t, filepath.Join(tg.owner.cacheDir, tg.key+".rart"))
	}
	t.Logf("bit-flipped %d artifacts on their shard owners mid-batch", len(targets))
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("storm request %d failed despite corruption: %v", i, errs[i])
		}
		if results[i].Listing != targets[i%len(targets)].listing {
			t.Fatalf("storm request %d output differs from pre-corruption reference", i)
		}
	}

	// The scrubber must quarantine every corrupt file — renamed aside as
	// forensic evidence, never deleted — and repair an intact copy into
	// its place from a peer replica.
	waitFor(t, 30*time.Second, "scrub to quarantine and repair every corrupted artifact", func() bool {
		for _, tg := range targets {
			dir := tg.owner.cacheDir
			if _, err := os.Stat(filepath.Join(dir, tg.key+".quarantine")); err != nil {
				return false
			}
			data, err := os.ReadFile(filepath.Join(dir, tg.key+".rart"))
			if err != nil {
				return false
			}
			if a, err := artifact.Decode(data); err != nil || a.Key != tg.key {
				return false
			}
		}
		return true
	})

	// Metrics agree with the file state on every victim.  Gauges refresh
	// once per sweep/scrub cycle, so poll briefly rather than racing them.
	victims := map[*fleetNode][]string{}
	for _, tg := range targets {
		victims[tg.owner] = append(victims[tg.owner], tg.key)
	}
	waitFor(t, 15*time.Second, "victim metrics to agree with on-disk state", func() bool {
		for nd, keys := range victims {
			body := scrape(t, nd.url)
			if counterValue(body, "record_rcache_scrub_total", `outcome="repaired"`) < len(keys) {
				return false
			}
			quarantined, _ := filepath.Glob(filepath.Join(nd.cacheDir, "*.quarantine"))
			if gaugeValue(body, "record_rcache_quarantined_files") != len(quarantined) {
				return false
			}
			// Every key this victim owns is whole again across the fleet.
			if gaugeValue(body, "record_recordd_replication_factor") < 2 {
				return false
			}
		}
		return true
	})

	// Healed fleet: byte-identical output for every key, quarantine
	// evidence still on disk.
	for _, tg := range targets {
		res, err := fl.Compile(ctx, rclient.ModelRef{Key: tg.key}, prog, rclient.CompileOptions{})
		if err != nil {
			t.Fatalf("post-heal compile for %.12s…: %v", tg.key, err)
		}
		if res.Listing != tg.listing {
			t.Fatalf("post-heal output for %.12s… differs from reference", tg.key)
		}
		if _, err := os.Stat(filepath.Join(tg.owner.cacheDir, tg.key+".quarantine")); err != nil {
			t.Fatalf("quarantine evidence for %.12s… was deleted: %v", tg.key, err)
		}
	}
}
