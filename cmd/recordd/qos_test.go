package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/qos"
)

// postPriority is rawPost with an X-Record-Priority header (empty =
// no header, the server's per-route default applies).
func postPriority(url, priority string, body interface{}) (int, http.Header, string, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, "", err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return 0, nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if priority != "" {
		req.Header.Set("X-Record-Priority", priority)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.String(), nil
}

// waitCond polls cond until it holds or the test deadline budget runs out.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQoSMixedPriorityStorm is the priority-class acceptance test: with
// the pool saturated by a batch flood, interactive traffic must displace
// queued batch work and complete, and every shed must land on the batch
// class — zero interactive requests refused.
func TestQoSMixedPriorityStorm(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 1, maxQueue: 4, cacheDir: t.TempDir()})

	// Warm the cache so no queued request needs a retarget.
	if code, raw := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, nil); code != http.StatusOK {
		t.Fatalf("warm retarget: %d %s", code, raw)
	}

	// Occupy the only worker slot for the whole storm.
	hold, err := s.sched.Acquire(context.Background(), qos.Interactive)
	if err != nil {
		t.Fatal(err)
	}

	// Batch flood: 12 distinct programs (distinct so none coalesce).
	// With the slot held, 4 queue and the remaining 8 shed immediately.
	const flood, queueCap = 12, 4
	batchCodes := make(chan int, flood)
	for i := 0; i < flood; i++ {
		go func(i int) {
			code, _, _, err := postPriority(ts.URL+"/v1/compile", "batch", map[string]interface{}{
				"model_name": "demo",
				"source":     fmt.Sprintf("int a = %d; int y; y = a + 1;", i+2),
			})
			if err != nil {
				code = -1
			}
			batchCodes <- code
		}(i)
	}
	waitCond(t, "batch flood to fill the queue", func() bool {
		return s.sched.Depth(qos.Batch) == queueCap && s.sched.Shed(qos.Batch) == flood-queueCap
	})

	// Interactive trickle: each arrival finds the queue full, evicts the
	// newest queued batch waiter and takes its place.
	const trickle = 4
	iCodes := make(chan int, trickle)
	for i := 0; i < trickle; i++ {
		go func(i int) {
			code, _, _, err := postPriority(ts.URL+"/v1/compile", "interactive", map[string]interface{}{
				"model_name": "demo",
				"source":     fmt.Sprintf("int b = %d; int y; y = b + 2;", i+2),
			})
			if err != nil {
				code = -1
			}
			iCodes <- code
		}(i)
		waitCond(t, "interactive request to displace a batch waiter", func() bool {
			return s.sched.Depth(qos.Interactive) == i+1
		})
	}
	if d := s.sched.Depth(qos.Batch); d != 0 {
		t.Fatalf("batch depth %d after interactive displacement, want 0", d)
	}

	// Free the slot: the queued interactive work drains and completes.
	hold()
	for i := 0; i < trickle; i++ {
		if code := <-iCodes; code != http.StatusOK {
			t.Fatalf("interactive request finished %d, want 200", code)
		}
	}
	for i := 0; i < flood; i++ {
		if code := <-batchCodes; code != http.StatusTooManyRequests {
			t.Fatalf("batch request finished %d, want 429", code)
		}
	}

	// Every shed was a batch shed.
	if got := s.sched.Shed(qos.Interactive); got != 0 {
		t.Fatalf("interactive sheds = %d, want 0", got)
	}
	if got := s.sched.Shed(qos.Batch); got != flood {
		t.Fatalf("batch sheds = %d, want %d", got, flood)
	}
	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`record_recordd_shed_total{class="batch"} 12`,
		`record_recordd_shed_total{class="interactive"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestQoSCompileCoalescing asserts the thundering-herd contract: N
// identical compiles queued at once cost exactly one underlying
// execution, and every caller receives byte-identical bytes.
func TestQoSCompileCoalescing(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 1, cacheDir: t.TempDir()})
	if code, raw := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, nil); code != http.StatusOK {
		t.Fatalf("warm retarget: %d %s", code, raw)
	}
	hold, err := s.sched.Acquire(context.Background(), qos.Interactive)
	if err != nil {
		t.Fatal(err)
	}

	const dup = 6
	prog := "int a = 2; int b = 3; int y; y = a * b;"
	type reply struct {
		code int
		body string
	}
	replies := make(chan reply, dup)
	for i := 0; i < dup; i++ {
		go func() {
			code, _, raw, err := postPriority(ts.URL+"/v1/compile", "", map[string]interface{}{
				"model_name": "demo", "source": prog,
			})
			if err != nil {
				code = -1
			}
			replies <- reply{code, raw}
		}()
	}
	// One leader queues for the held slot; the duplicates join its flight
	// without ever entering the scheduler.
	waitCond(t, "duplicates to coalesce onto the leader", func() bool {
		return s.sched.Queued() == 1 && s.coal.Merged() == dup-1
	})
	base := s.sched.Dispatched(qos.Interactive)

	hold()
	var first string
	for i := 0; i < dup; i++ {
		r := <-replies
		if r.code != http.StatusOK {
			t.Fatalf("coalesced compile finished %d: %s", r.code, r.body)
		}
		if first == "" {
			first = r.body
		} else if r.body != first {
			t.Fatalf("coalesced responses differ:\n%q\nvs\n%q", r.body, first)
		}
	}

	// Exactly one slot grant ran the compile; the rest were merged.
	if got := s.sched.Dispatched(qos.Interactive) - base; got != 1 {
		t.Fatalf("underlying executions = %d, want 1", got)
	}
	if got := s.coal.Merged(); got != dup-1 {
		t.Fatalf("merged = %d, want %d", got, dup-1)
	}
	if body := scrapeMetrics(t, ts.URL); !strings.Contains(body,
		fmt.Sprintf("record_recordd_qos_coalesced_total %d", dup-1)) {
		t.Errorf("coalescing counter missing from metrics:\n%s", body)
	}
}

// TestQoSPriorityHeaderGarbage: whatever a client puts in
// X-Record-Priority, the request is served — garbage degrades to the
// route default, it can never become an error.
func TestQoSPriorityHeaderGarbage(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{cacheDir: t.TempDir()})
	if code, raw := post(t, ts.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, nil); code != http.StatusOK {
		t.Fatalf("warm retarget: %d %s", code, raw)
	}
	for _, hdr := range []string{
		"", "interactive", "batch", "BATCH", " Interactive ", "urgent",
		"batch;q=1", "0", strings.Repeat("x", 4096), "ínterâctive",
	} {
		code, _, raw, err := postPriority(ts.URL+"/v1/compile", hdr, map[string]interface{}{
			"model_name": "demo", "source": "int a = 2; int y; y = a;",
		})
		if err != nil {
			t.Fatalf("header %q: %v", hdr, err)
		}
		if code != http.StatusOK {
			t.Errorf("header %q: status %d, want 200 (%s)", hdr, code, raw)
		}
	}

	// A well-formed "batch" header actually routes to the batch class.
	before := s.sched.Dispatched(qos.Batch)
	if code, _, raw, err := postPriority(ts.URL+"/v1/compile", "batch", map[string]interface{}{
		"model_name": "demo", "source": "int a = 3; int y; y = a;",
	}); err != nil || code != http.StatusOK {
		t.Fatalf("batch-class compile: %d %s %v", code, raw, err)
	}
	if got := s.sched.Dispatched(qos.Batch) - before; got != 1 {
		t.Fatalf("batch dispatches = %d, want 1", got)
	}
}

// TestQoSPrewarmServesFromMemory is the pre-warm acceptance test: a hot
// model pre-warmed from the disk store serves its first external request
// from the memory tier, with the pre-warm work attributed to its own
// counters so the serving hit-rate is not inflated.
func TestQoSPrewarmServesFromMemory(t *testing.T) {
	dir := t.TempDir()

	// Seed the shared disk store with one retargeted model.
	_, seed := newTestServer(t, serverConfig{cacheDir: dir})
	var rt retargetResponse
	if code, raw := post(t, seed.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, &rt); code != http.StatusOK {
		t.Fatalf("seed retarget: %d %s", code, raw)
	}

	// Fresh instance: cold memory, warm disk, pre-warm enabled.
	s, ts := newTestServer(t, serverConfig{cacheDir: dir, prewarmEvery: time.Hour})
	if s.cache.InMemory(rt.Key) {
		t.Fatal("fresh instance claims the artifact in memory")
	}
	s.pop.Touch(rt.Key, "")
	if n := s.prewarmer.Sweep(context.Background()); n != 1 {
		t.Fatalf("sweep warmed %d models, want 1", n)
	}
	if !s.cache.InMemory(rt.Key) {
		t.Fatal("sweep did not land the artifact in memory")
	}

	// The first external request is a memory hit.
	var cp compileResponse
	code, raw := post(t, ts.URL+"/v1/compile", map[string]interface{}{
		"key": rt.Key, "source": "int a = 2; int y; y = a + 1;",
	}, &cp)
	if code != http.StatusOK {
		t.Fatalf("post-prewarm compile: %d %s", code, raw)
	}
	if cp.Cache != "hit" {
		t.Fatalf("post-prewarm compile served from %q, want hit (memory)", cp.Cache)
	}

	// Attribution: the pre-warm shows up only in its own counters.
	st := s.cache.Stats()
	if st.PrewarmLoads != 1 {
		t.Fatalf("prewarm loads = %d, want 1 (%+v)", st.PrewarmLoads, st)
	}
	if st.MemHits != 1 || st.DiskHits != 0 || st.Misses != 0 || st.Retargets != 0 {
		t.Fatalf("serving stats inflated by prewarm: %+v", st)
	}
	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`record_rcache_prewarm_total{outcome="hit-disk"} 1`,
		`record_rcache_hits_total{tier="mem"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestQoSPrewarmFaultpoint: an armed recordd.prewarm.retarget fault
// makes the sweep count an error and warm nothing; once cleared, the
// next sweep succeeds — pre-warm failures never escalate.
func TestQoSPrewarmFaultpoint(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	_, seed := newTestServer(t, serverConfig{cacheDir: dir})
	var rt retargetResponse
	if code, raw := post(t, seed.URL+"/v1/retarget", map[string]string{"model_name": "demo"}, &rt); code != http.StatusOK {
		t.Fatalf("seed retarget: %d %s", code, raw)
	}

	s, _ := newTestServer(t, serverConfig{cacheDir: dir, prewarmEvery: time.Hour})
	s.pop.Touch(rt.Key, "")
	faultpoint.Arm("recordd.prewarm.retarget", faultpoint.Action{Kind: faultpoint.KindError})
	if n := s.prewarmer.Sweep(context.Background()); n != 0 {
		t.Fatalf("faulted sweep warmed %d models, want 0", n)
	}
	if s.cache.InMemory(rt.Key) {
		t.Fatal("faulted sweep warmed the artifact anyway")
	}
	if _, _, _, errs := s.prewarmer.Stats(); errs != 1 {
		t.Fatalf("sweep errors = %d, want 1", errs)
	}
	// The fault fired once and disarmed; the next sweep recovers.
	if n := s.prewarmer.Sweep(context.Background()); n != 1 {
		t.Fatalf("post-fault sweep warmed %d models, want 1", n)
	}
	if !s.cache.InMemory(rt.Key) {
		t.Fatal("post-fault sweep did not warm the artifact")
	}
}

// scrapeMetrics fetches /metrics as text.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
