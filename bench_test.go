// Benchmark harness regenerating the paper's evaluation:
//
//   - BenchmarkTable3_* measure retargeting time (instruction-set
//     extraction + template extension + grammar construction + parser
//     generation) for each of the six processor models of table 3.
//   - BenchmarkFigure2_* measure compilation of each DSPStone kernel on
//     the TMS320C25 model; the reported code sizes are printed by
//     cmd/benchtab and recorded in EXPERIMENTS.md.
//   - BenchmarkAblation* quantify the design choices called out in
//     DESIGN.md: commutative template extension, code compaction, the
//     peephole pass, and the BDD variable order inside extraction.
//   - BenchmarkCodeSelection measures raw tree-parsing throughput (the
//     paper: "several hundred RT templates per CPU second").
package repro

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dspstone"
	"repro/internal/ise"
	"repro/internal/models"
	"repro/internal/naive"
	"repro/internal/obs"
	"repro/internal/rcache"
)

// ---- Table 3: retargeting time per processor model ---------------------

func benchRetarget(b *testing.B, model string) {
	mdl, ok := models.Get(model)
	if !ok {
		b.Fatalf("model %s missing", model)
	}
	b.ReportAllocs()
	var templates int
	for i := 0; i < b.N; i++ {
		tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{EmitParserSource: true})
		if err != nil {
			b.Fatal(err)
		}
		templates = tg.Stats.Templates
	}
	b.ReportMetric(float64(templates), "templates")
}

func BenchmarkTable3_Demo(b *testing.B)      { benchRetarget(b, "demo") }
func BenchmarkTable3_Ref(b *testing.B)       { benchRetarget(b, "ref") }
func BenchmarkTable3_ManoCPU(b *testing.B)   { benchRetarget(b, "manocpu") }
func BenchmarkTable3_Tanenbaum(b *testing.B) { benchRetarget(b, "tanenbaum") }
func BenchmarkTable3_BassBoost(b *testing.B) { benchRetarget(b, "bass_boost") }
func BenchmarkTable3_TMS320C25(b *testing.B) { benchRetarget(b, "tms320c25") }

// BenchmarkRetargetCached measures the artifact cache against the full
// pipeline: Cold is one complete retarget per iteration, WarmDisk decodes
// the persisted artifact (a fresh cache instance each iteration, so the
// memory tier never helps), WarmMem hits the in-memory LRU.  The paper's
// economics demand WarmDisk ≫ Cold.
func BenchmarkRetargetCached(b *testing.B) {
	mdl, ok := models.Get("tms320c25")
	if !ok {
		b.Fatal("model tms320c25 missing")
	}
	dir := b.TempDir()
	warm, err := rcache.New(rcache.Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := warm.GetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil {
		b.Fatal(err)
	}

	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WarmDisk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := rcache.New(rcache.Options{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			_, out, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if out != rcache.Disk {
				b.Fatalf("outcome %s, want disk hit", out)
			}
		}
	})
	b.Run("WarmMem", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, out, err := warm.GetContext(context.Background(), mdl, core.RetargetOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if !out.Hit() {
				b.Fatalf("outcome %s, want hit", out)
			}
		}
	})
}

// ---- Figure 2: DSPStone kernel compilation on the TMS320C25 ------------

var (
	c25Once sync.Once
	c25Tg   *core.Target
	c25Err  error
)

func c25(b *testing.B) *core.Target {
	c25Once.Do(func() {
		mdl, _ := models.Get("tms320c25")
		c25Tg, c25Err = core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	})
	if c25Err != nil {
		b.Fatal(c25Err)
	}
	return c25Tg
}

func benchKernel(b *testing.B, name string) {
	tg := c25(b)
	k, ok := dspstone.Get(name)
	if !ok {
		b.Fatalf("kernel %s missing", name)
	}
	b.ReportAllocs()
	var words int
	for i := 0; i < b.N; i++ {
		res, err := tg.CompileSourceContext(context.Background(), k.Source, core.CompileOptions{})
		if err != nil {
			b.Fatal(err)
		}
		words = res.CodeLen()
	}
	b.ReportMetric(float64(words), "words")
	b.ReportMetric(100*float64(words)/float64(k.HandWords), "%ofhand")
}

func BenchmarkFigure2_RealUpdate(b *testing.B)      { benchKernel(b, "real_update") }
func BenchmarkFigure2_ComplexMultiply(b *testing.B) { benchKernel(b, "complex_multiply") }
func BenchmarkFigure2_ComplexUpdate(b *testing.B)   { benchKernel(b, "complex_update") }
func BenchmarkFigure2_NRealUpdates(b *testing.B)    { benchKernel(b, "n_real_updates") }
func BenchmarkFigure2_NComplexUpdates(b *testing.B) { benchKernel(b, "n_complex_updates") }
func BenchmarkFigure2_DotProduct(b *testing.B)      { benchKernel(b, "dot_product") }
func BenchmarkFigure2_Fir(b *testing.B)             { benchKernel(b, "fir") }
func BenchmarkFigure2_BiquadOne(b *testing.B)       { benchKernel(b, "biquad_one") }
func BenchmarkFigure2_BiquadN(b *testing.B)         { benchKernel(b, "biquad_N") }
func BenchmarkFigure2_Convolution(b *testing.B)     { benchKernel(b, "convolution") }

// ---- Parallel compilation throughput on the frozen target --------------

// benchParallelCompile measures DSPStone kernel compilation throughput at
// a fixed worker count through one shared core.Compiler over the frozen
// TMS320C25 target: the contention-free scaling claim of the frozen-target
// design plus the pooled-session hot path.  ns/op is per compiled kernel,
// so near-linear scaling shows as ns/op dropping with the worker count.
func benchParallelCompile(b *testing.B, workers int) {
	tg := c25(b)
	comp, err := core.NewCompiler(tg, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	kernels := []string{"real_update", "dot_product", "fir", "biquad_one"}
	srcs := make([]string, len(kernels))
	for i, name := range kernels {
		k, ok := dspstone.Get(name)
		if !ok {
			b.Fatalf("kernel %s missing", name)
		}
		srcs[i] = k.Source
	}
	b.ReportAllocs()
	b.SetParallelism(1) // worker count == GOMAXPROCS slice below
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			src := srcs[i%len(srcs)]
			i++
			if _, err := comp.CompileSource(context.Background(), src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchCompileObs measures one kernel compile through a shared Compiler
// with and without a live obs scope, so CI can gate the tracing tax: the
// traced variant runs every compile under a span-producing scope exactly
// as recordd does per request, against a bounded ring with a drop
// counter.  benchtraj records the pair as compile_ns_per_op{base,traced}
// and -max-traced-overhead fails the build if traced/base drifts.
func benchCompileObs(b *testing.B, traced bool) {
	tg := c25(b)
	var cfg core.Config
	if traced {
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(obs.WithMaxSpans(4096),
			obs.WithDropCounter(reg.Counter("record_obs_spans_dropped_total",
				"spans overwritten past the tracer ring bound")))
		_, cfg.Obs = obs.NewScope(reg, tracer).Start("bench.compile")
	}
	comp, err := core.NewCompiler(tg, cfg)
	if err != nil {
		b.Fatal(err)
	}
	k, ok := dspstone.Get("dot_product")
	if !ok {
		b.Fatal("kernel dot_product missing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.CompileSource(context.Background(), k.Source); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileBaseline(b *testing.B) { benchCompileObs(b, false) }
func BenchmarkCompileTraced(b *testing.B)   { benchCompileObs(b, true) }

// BenchmarkCompileTracedOverhead measures the tracing tax as a ratio the
// CI gate can trust on a noisy runner.  Three defences against bias:
// plain and traced compiles alternate in small batches, so slow drift
// lands on both sides of each pair equally; whichever half runs second
// inherits warm caches from the first, so the pair order itself flips
// every iteration; and each order's per-pair ratios are reduced by
// MEDIAN — a CPU-steal burst inside one batch corrupts only that pair's
// ratio, which the median discards where a total-time quotient would
// absorb it.  The reported "overhead" metric is the geometric mean of
// the two order-specific medians, cancelling the warm-second advantage.
// ns/op covers one plain+traced compile pair.
func BenchmarkCompileTracedOverhead(b *testing.B) {
	tg := c25(b)
	plain, err := core.NewCompiler(tg, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.WithMaxSpans(4096),
		obs.WithDropCounter(reg.Counter("record_obs_spans_dropped_total",
			"spans overwritten past the tracer ring bound")))
	var cfg core.Config
	_, cfg.Obs = obs.NewScope(reg, tracer).Start("bench.compile")
	traced, err := core.NewCompiler(tg, cfg)
	if err != nil {
		b.Fatal(err)
	}
	k, ok := dspstone.Get("dot_product")
	if !ok {
		b.Fatal("kernel dot_product missing")
	}
	ctx := context.Background()
	run := func(c *core.Compiler, n int) time.Duration {
		from := time.Now()
		for j := 0; j < n; j++ {
			if _, err := c.CompileSource(ctx, k.Source); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(from)
	}
	const batch = 4
	var ratios [2][]float64 // [0]: plain ran first; [1]: traced ran first
	pair := 0
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		n := batch
		if left := b.N - done; left < n {
			n = left
		}
		var tPlain, tTraced time.Duration
		order := pair % 2
		if order == 0 {
			tPlain = run(plain, n)
			tTraced = run(traced, n)
		} else {
			tTraced = run(traced, n)
			tPlain = run(plain, n)
		}
		if tPlain > 0 {
			ratios[order] = append(ratios[order], float64(tTraced)/float64(tPlain))
		}
		pair++
	}
	b.StopTimer()
	median := func(v []float64) float64 {
		if len(v) == 0 {
			return 0
		}
		sort.Float64s(v)
		return v[len(v)/2]
	}
	m0, m1 := median(ratios[0]), median(ratios[1])
	switch {
	case m0 > 0 && m1 > 0:
		b.ReportMetric(math.Sqrt(m0*m1), "overhead")
	case m0+m1 > 0:
		b.ReportMetric(m0 + m1, "overhead")
	}
}

func BenchmarkParallelCompile1(b *testing.B)  { benchParallelCompile(b, 1) }
func BenchmarkParallelCompile2(b *testing.B)  { benchParallelCompile(b, 2) }
func BenchmarkParallelCompile4(b *testing.B)  { benchParallelCompile(b, 4) }
func BenchmarkParallelCompile8(b *testing.B)  { benchParallelCompile(b, 8) }
func BenchmarkParallelCompile16(b *testing.B) { benchParallelCompile(b, 16) }
func BenchmarkParallelCompile32(b *testing.B) { benchParallelCompile(b, 32) }

// BenchmarkFigure2_NaiveBaseline measures the baseline compiler on the
// dot-product kernel (its worst case, 527% of hand-written).
func BenchmarkFigure2_NaiveBaseline(b *testing.B) {
	tg := c25(b)
	k, _ := dspstone.Get("dot_product")
	b.ReportAllocs()
	var words int
	for i := 0; i < b.N; i++ {
		res, err := naive.CompileSource(tg, k.Source)
		if err != nil {
			b.Fatal(err)
		}
		words = res.CodeLen()
	}
	b.ReportMetric(float64(words), "words")
}

// ---- Ablations ----------------------------------------------------------

// BenchmarkAblationCommutativity compares code size for a sum-of-products
// block with and without the commutative template extension (paper
// section 3: badly structured expression trees).
func BenchmarkAblationCommutativity(b *testing.B) {
	mdl, _ := models.Get("tms320c25")
	src := `
int a = 2; int b = 3; int c = 4; int d = 5;
int y;
y = b*a + d*c;
`
	for _, ext := range []bool{true, false} {
		ext := ext
		name := "extended"
		if !ext {
			name = "plain"
		}
		b.Run(name, func(b *testing.B) {
			tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{NoExtension: !ext})
			if err != nil {
				b.Fatal(err)
			}
			var words int
			for i := 0; i < b.N; i++ {
				res, err := tg.CompileSourceContext(context.Background(), src, core.CompileOptions{})
				if err != nil {
					b.Fatal(err)
				}
				words = res.CodeLen()
			}
			b.ReportMetric(float64(words), "words")
		})
	}
}

// BenchmarkAblationCompaction measures the contribution of code compaction
// on the MAC-pipeline kernel.
func BenchmarkAblationCompaction(b *testing.B) {
	tg := c25(b)
	k, _ := dspstone.Get("dot_product")
	for _, on := range []bool{true, false} {
		on := on
		name := "compacted"
		if !on {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			var words int
			for i := 0; i < b.N; i++ {
				res, err := tg.CompileSourceContext(context.Background(), k.Source,
					core.CompileOptions{NoCompaction: !on})
				if err != nil {
					b.Fatal(err)
				}
				words = res.CodeLen()
			}
			b.ReportMetric(float64(words), "words")
		})
	}
}

// BenchmarkAblationPeephole measures the redundant-load/dead-store pass.
func BenchmarkAblationPeephole(b *testing.B) {
	tg := c25(b)
	k, _ := dspstone.Get("dot_product")
	for _, on := range []bool{true, false} {
		on := on
		name := "peephole"
		if !on {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			var words int
			for i := 0; i < b.N; i++ {
				res, err := tg.CompileSourceContext(context.Background(), k.Source,
					core.CompileOptions{NoPeephole: !on})
				if err != nil {
					b.Fatal(err)
				}
				words = res.CodeLen()
			}
			b.ReportMetric(float64(words), "words")
		})
	}
}

// BenchmarkAblationBDDOrder measures instruction-set extraction under the
// two instruction-bit variable orders.
func BenchmarkAblationBDDOrder(b *testing.B) {
	mdl, _ := models.Get("demo")
	for _, msb := range []bool{false, true} {
		msb := msb
		name := "lsb-first"
		if msb {
			name = "msb-first"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{
					ISE: iseOptions(msb),
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = tg
			}
		})
	}
}

// ---- Raw selection throughput ------------------------------------------

// BenchmarkCodeSelection measures tree covering throughput on the largest
// kernel (templates emitted per second; the paper reports several hundred
// per CPU second on a SPARC-20).
func BenchmarkCodeSelection(b *testing.B) {
	tg := c25(b)
	k, _ := dspstone.Get("n_complex_updates")
	b.ResetTimer()
	var rts int
	for i := 0; i < b.N; i++ {
		res, err := tg.CompileSourceContext(context.Background(), k.Source, core.CompileOptions{NoCompaction: true})
		if err != nil {
			b.Fatal(err)
		}
		rts = res.SeqLen()
	}
	b.ReportMetric(float64(rts), "RTs")
}

// BenchmarkSimulation measures netlist-level execution speed.
func BenchmarkSimulation(b *testing.B) {
	tg := c25(b)
	k, _ := dspstone.Get("fir")
	res, err := tg.CompileSourceContext(context.Background(), k.Source, core.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tg.Execute(res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CodeLen()), "cycles")
}

func iseOptions(msb bool) ise.Options {
	return ise.Options{MSBFirstVars: msb}
}
