package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing(0, "n1", "n2", "n3")
	b := NewRing(0, "n3", "n1", "n2") // insertion order must not matter
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s differs across construction orders: %s vs %s",
				k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingSuccessorsDistinctAndStable(t *testing.T) {
	r := NewRing(0, "n1", "n2", "n3")
	for _, k := range keys(100) {
		s := r.Successors(k, 3)
		if len(s) != 3 {
			t.Fatalf("successors(%s) = %v, want 3 distinct nodes", k, s)
		}
		seen := map[string]bool{}
		for _, n := range s {
			if seen[n] {
				t.Fatalf("successors(%s) repeats %s: %v", k, n, s)
			}
			seen[n] = true
		}
		if s[0] != r.Owner(k) {
			t.Fatalf("successors(%s)[0] = %s, owner = %s", k, s[0], r.Owner(k))
		}
		if got := r.Successors(k, 10); len(got) != 3 {
			t.Fatalf("successors capped at membership: %v", got)
		}
	}
}

// TestRingStabilityOnRemoval is the consistent-hashing contract: removing
// one endpoint remaps only the keys that endpoint owned.  Every other
// key keeps its owner, so a node death never invalidates the surviving
// nodes' cache locality.
func TestRingStabilityOnRemoval(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := NewRing(0, nodes...)
	ks := keys(500)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k)
	}

	victim := "n3"
	r.Remove(victim)
	remapped := 0
	for _, k := range ks {
		after := r.Owner(k)
		if after == victim {
			t.Fatalf("removed node still owns %s", k)
		}
		switch {
		case before[k] == victim:
			remapped++
		case after != before[k]:
			t.Fatalf("key %s moved from surviving node %s to %s", k, before[k], after)
		}
	}
	if remapped == 0 {
		t.Fatal("victim owned no keys; test has no teeth (bad spread?)")
	}

	// Re-adding restores exactly the original assignment.
	r.Add(victim)
	for _, k := range ks {
		if got := r.Owner(k); got != before[k] {
			t.Fatalf("after rejoin, key %s owned by %s, want %s", k, got, before[k])
		}
	}
}

func TestRingSpread(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := NewRing(0, nodes...)
	counts := map[string]int{}
	ks := keys(3000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(ks))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("node %s owns %.0f%% of keys; vnode spread broken: %v",
				n, share*100, counts)
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(4)
	if r.Owner("k") != "" || r.Successors("k", 2) != nil || r.Len() != 0 {
		t.Fatal("empty ring not empty")
	}
	r.Add("a")
	r.Add("a") // idempotent
	r.Remove("missing")
	if r.Len() != 1 || r.Owner("k") != "a" {
		t.Fatalf("membership: len=%d owner=%q", r.Len(), r.Owner("k"))
	}
	if got := r.Nodes(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("nodes %v", got)
	}
}

func TestRendezvousDeterministicAndStable(t *testing.T) {
	cands := []string{"n1", "n2", "n3", "n4"}
	for _, k := range keys(100) {
		full := Rendezvous(k, cands, 0)
		if len(full) != len(cands) {
			t.Fatalf("rendezvous dropped candidates: %v", full)
		}
		if top := Rendezvous(k, cands, 2); !reflect.DeepEqual(top, full[:2]) {
			t.Fatalf("top-2 %v disagrees with full order %v", top, full)
		}
		// Removing a non-top candidate never reorders the survivors.
		without := Rendezvous(k, []string{"n1", "n2", "n4"}, 0)
		want := make([]string, 0, 3)
		for _, n := range full {
			if n != "n3" {
				want = append(want, n)
			}
		}
		if !reflect.DeepEqual(without, want) {
			t.Fatalf("removal reordered survivors: %v vs %v", without, want)
		}
	}
}

func TestRingArcsNearUniform(t *testing.T) {
	// With the default 128-vnode split, every member's share of the hash
	// space stays near 1/n — the property the rebalancing gauges exist
	// to watch.  sha256 point placement is deterministic, so the bounds
	// here are exact for these member names, with headroom for growth.
	for _, n := range []int{2, 3, 5, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("node-%d", i)
		}
		r := NewRing(0, members...)
		arcs := r.Arcs()
		if len(arcs) != n {
			t.Fatalf("n=%d: %d arcs", n, len(arcs))
		}
		total := 0.0
		uniform := 1.0 / float64(n)
		for node, frac := range arcs {
			total += frac
			if frac < uniform/2 || frac > uniform*2 {
				t.Errorf("n=%d: %s owns %.4f of the ring (uniform %.4f)", n, node, frac, uniform)
			}
		}
		if total < 0.9999 || total > 1.0001 {
			t.Fatalf("n=%d: arcs sum to %.6f", n, total)
		}
	}
}

func TestRingArcsEdgeCases(t *testing.T) {
	if got := NewRing(0).Arcs(); len(got) != 0 {
		t.Fatalf("empty ring arcs: %v", got)
	}
	one := NewRing(1, "solo").Arcs()
	if one["solo"] != 1 {
		t.Fatalf("single-point ring arc = %v", one["solo"])
	}
}

func TestRingOwnerCounts(t *testing.T) {
	r := NewRing(0, "a", "b", "c")
	ks := keys(300)
	counts := r.OwnerCounts(ks)
	if len(counts) != 3 {
		t.Fatalf("counts for %d nodes", len(counts))
	}
	total := 0
	for node, c := range counts {
		total += c
		if c == 0 {
			t.Errorf("node %s owns zero of %d keys", node, len(ks))
		}
	}
	if total != len(ks) {
		t.Fatalf("counts sum to %d, want %d", total, len(ks))
	}
	// Counts agree with Owner, and absent members report zero.
	for node, c := range counts {
		manual := 0
		for _, k := range ks {
			if r.Owner(k) == node {
				manual++
			}
		}
		if manual != c {
			t.Fatalf("node %s: OwnerCounts %d vs manual %d", node, c, manual)
		}
	}
	r2 := NewRing(0, "a", "b", "lonely-node-that-owns-nothing-maybe")
	counts2 := r2.OwnerCounts(nil)
	for node, c := range counts2 {
		if c != 0 {
			t.Fatalf("no keys but node %s counts %d", node, c)
		}
	}
}
