// Package fleet is the distribution layer of the compile service: the
// pieces that turn a set of independent recordd nodes into one fleet that
// survives any single node dying mid-compile.
//
// It provides three mechanisms, all deterministic and all free of I/O so
// both sides of the wire can share them:
//
//   - Ring: a consistent-hash ring with virtual nodes, keyed on the
//     artifact SHA-256 content address (internal/artifact).  The ring
//     decides which node owns a model's retarget product; removing a node
//     remaps only that node's keys, so a node death never reshuffles the
//     whole fleet's cache locality.
//
//   - Rendezvous: highest-random-weight replica selection.  Given a key
//     and a candidate set it yields a deterministic preference order that
//     every node computes identically without coordination — used to pick
//     which peers to consult for artifact replication.
//
//   - Tracker: a per-endpoint health state machine
//     (healthy → suspect → down → probing) driven by request outcomes and
//     periodic /healthz probes (Prober), with an injectable clock so the
//     full lifecycle is unit-testable without wall time.
//
// Everything here is safe for concurrent use and stdlib-only, in the
// style of internal/resilience.
package fleet
