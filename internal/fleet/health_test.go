package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// clock is an adjustable tracker clock.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTracker() (*Tracker, *clock) {
	clk := &clock{t: time.Unix(1000, 0)}
	return NewTracker(TrackerConfig{DownAfter: 3, ProbeAfter: 2 * time.Second, Now: clk.now}), clk
}

func TestTrackerLifecycle(t *testing.T) {
	tr, clk := newTestTracker()

	if tr.State("a") != Healthy || !tr.Usable("a") {
		t.Fatal("unknown endpoint not healthy")
	}

	// One failure: suspect, still usable.
	tr.Report("a", false)
	if tr.State("a") != Suspect || !tr.Usable("a") {
		t.Fatalf("after 1 failure: %v usable=%v", tr.State("a"), tr.Usable("a"))
	}

	// Success heals a suspect fully (failure streak resets).
	tr.Report("a", true)
	if tr.State("a") != Healthy {
		t.Fatalf("suspect did not heal: %v", tr.State("a"))
	}

	// DownAfter consecutive failures: down, not usable.
	for i := 0; i < 3; i++ {
		tr.Report("a", false)
	}
	if tr.State("a") != Down || tr.Usable("a") {
		t.Fatalf("after 3 failures: %v usable=%v", tr.State("a"), tr.Usable("a"))
	}

	// Before the cooldown nobody gets through.
	clk.advance(time.Second)
	if tr.Usable("a") {
		t.Fatal("down endpoint usable before ProbeAfter")
	}

	// After the cooldown exactly one caller claims the probe slot.
	clk.advance(2 * time.Second)
	if !tr.Usable("a") {
		t.Fatal("probe slot not granted after cooldown")
	}
	if tr.State("a") != Probing {
		t.Fatalf("state %v, want Probing", tr.State("a"))
	}
	if tr.Usable("a") {
		t.Fatal("second caller admitted while probe in flight")
	}

	// Probe failure: down again for another full cooldown.
	tr.Report("a", false)
	if tr.State("a") != Down || tr.Usable("a") {
		t.Fatalf("failed probe: %v usable=%v", tr.State("a"), tr.Usable("a"))
	}

	// Probe success after the next cooldown: healthy again.
	clk.advance(3 * time.Second)
	if !tr.Usable("a") {
		t.Fatal("second probe slot not granted")
	}
	tr.Report("a", true)
	if tr.State("a") != Healthy || !tr.Usable("a") {
		t.Fatalf("recovery: %v", tr.State("a"))
	}
}

func TestTrackerAbandonedProbeExpires(t *testing.T) {
	tr, clk := newTestTracker()
	for i := 0; i < 3; i++ {
		tr.Report("a", false)
	}
	clk.advance(2 * time.Second)
	if !tr.Usable("a") {
		t.Fatal("probe slot not granted")
	}
	// The probe's outcome never arrives (hedged away, caller died).
	clk.advance(2 * time.Second)
	if !tr.Usable("a") {
		t.Fatal("abandoned probe slot never expired")
	}
}

func TestTrackerDownRecoversOnStragglerSuccess(t *testing.T) {
	tr, _ := newTestTracker()
	for i := 0; i < 3; i++ {
		tr.Report("a", false)
	}
	// A request that was in flight when the endpoint went down comes back
	// fine: that is direct evidence of life.
	tr.Report("a", true)
	if tr.State("a") != Healthy {
		t.Fatalf("straggler success ignored: %v", tr.State("a"))
	}
}

func TestTrackerIndependentEndpoints(t *testing.T) {
	tr, _ := newTestTracker()
	for i := 0; i < 3; i++ {
		tr.Report("a", false)
	}
	if tr.Usable("a") || !tr.Usable("b") {
		t.Fatal("endpoint states not independent")
	}
	snap := tr.Snapshot()
	if snap["a"] != Down {
		t.Fatalf("snapshot %v", snap)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.Report("a", false)
	if !tr.Usable("a") || tr.State("a") != Healthy || tr.Snapshot() != nil {
		t.Fatal("nil tracker has opinions")
	}
}

func TestProberDrivesTracker(t *testing.T) {
	tr, clk := newTestTracker()
	alive := map[string]bool{"a": true, "b": false}
	var mu sync.Mutex
	p := &Prober{
		Tracker:   tr,
		Endpoints: []string{"a", "b"},
		Check: func(_ context.Context, ep string) error {
			mu.Lock()
			defer mu.Unlock()
			if alive[ep] {
				return nil
			}
			return errors.New("connection refused")
		},
	}
	for i := 0; i < 3; i++ {
		p.Once(context.Background())
	}
	if tr.State("a") != Healthy || tr.State("b") != Down {
		t.Fatalf("a=%v b=%v", tr.State("a"), tr.State("b"))
	}

	// b comes back: the next probe after the cooldown revives it.
	mu.Lock()
	alive["b"] = true
	mu.Unlock()
	clk.advance(2 * time.Second)
	p.Once(context.Background())
	if tr.State("b") != Healthy {
		t.Fatalf("revived endpoint not healthy after probe: %v", tr.State("b"))
	}
}

func TestProberRunStopsOnContext(t *testing.T) {
	tick := make(chan time.Time)
	tr, _ := newTestTracker()
	probed := make(chan string, 8)
	p := &Prober{
		Tracker:   tr,
		Endpoints: []string{"a"},
		Check: func(_ context.Context, ep string) error {
			probed <- ep
			return nil
		},
		Tick: tick,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { p.Run(ctx); close(done) }()
	tick <- time.Now()
	if ep := <-probed; ep != "a" {
		t.Fatalf("probed %q", ep)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on context cancel")
	}
}
