package fleet

// RepairPeers is the walk order for fetching (or repairing) an artifact
// from the fleet: every healthy peer, in the key's rendezvous order,
// with self excluded.  The properties callers rely on (pinned by the
// property test):
//
//   - self never appears, regardless of whether it is listed in peers —
//     a node repairing its own corrupt copy must never ask itself;
//   - the order is a pure function of (key, peers): every node computes
//     the same order with no shared state, so the fleet converges on
//     asking the same replica first;
//   - every healthy peer appears exactly once before the walk is
//     exhausted — a repair gives up as unrepairable only after every
//     candidate has been tried;
//   - healthy == nil filters nothing.
func RepairPeers(key, self string, peers []string, healthy func(string) bool) []string {
	out := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range Rendezvous(key, peers, 0) {
		if p == self || seen[p] {
			continue
		}
		seen[p] = true
		if healthy != nil && !healthy(p) {
			continue
		}
		out = append(out, p)
	}
	return out
}
