package fleet

import (
	"context"
	"sort"
	"sync"
	"time"
)

// State is one endpoint health state.
type State int

// Endpoint health states.  The lifecycle is
// Healthy → Suspect → Down → Probing → Healthy (or back to Down): a
// failure makes a healthy endpoint suspect, repeated failures take it
// down, a down endpoint is retried by exactly one probe per cooldown,
// and the probe's outcome decides between recovery and another cooldown.
const (
	Healthy State = iota // serving normally
	Suspect              // recent failure; still routed, watched closely
	Down                 // failing; excluded from routing until a probe
	Probing              // one probe in flight deciding recovery
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Probing:
		return "probing"
	}
	return "state(?)"
}

// TrackerConfig tunes a Tracker; zero fields take the documented defaults.
type TrackerConfig struct {
	// DownAfter is the consecutive-failure count that takes an endpoint
	// from suspect to down (default 3, minimum 2 — the first failure is
	// what makes it suspect).
	DownAfter int
	// ProbeAfter is how long a down endpoint is excluded before one
	// probe may try it again (default 2s).  It also bounds a probe: a
	// probe older than ProbeAfter whose outcome never arrived (caller
	// died, request hedged away) is forgotten and a new probe allowed.
	ProbeAfter time.Duration
	// Now is the clock; nil means time.Now.  Injectable for tests.
	Now func() time.Time
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	if c.DownAfter < 2 {
		if c.DownAfter <= 0 {
			c.DownAfter = 3
		} else {
			c.DownAfter = 2
		}
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// endpoint is the per-endpoint state; guarded by the Tracker's mutex.
type endpoint struct {
	state State
	fails int       // consecutive failures while suspect
	since time.Time // when the current Down/Probing state began
}

// Tracker is the per-endpoint health state machine.  Request outcomes
// land via Report; routing consults Usable, which also hands out the
// single probe slot a down endpoint gets per cooldown.  A nil *Tracker
// considers every endpoint healthy and records nothing.
type Tracker struct {
	cfg TrackerConfig

	mu  sync.Mutex
	eps map[string]*endpoint
}

// NewTracker builds a tracker; zero-valued config fields get defaults.
func NewTracker(cfg TrackerConfig) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), eps: make(map[string]*endpoint)}
}

func (t *Tracker) endpointFor(name string) *endpoint {
	e, ok := t.eps[name]
	if !ok {
		e = &endpoint{state: Healthy}
		t.eps[name] = e
	}
	return e
}

// Report lands one observed outcome for an endpoint: a completed request,
// a refused connection, or a /healthz probe result.
func (t *Tracker) Report(name string, ok bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.endpointFor(name)
	switch e.state {
	case Healthy:
		if !ok {
			e.state = Suspect
			e.fails = 1
		}
	case Suspect:
		if ok {
			e.state = Healthy
			e.fails = 0
		} else if e.fails++; e.fails >= t.cfg.DownAfter {
			e.state = Down
			e.since = t.cfg.Now()
		}
	case Down:
		// An outcome from before the endpoint went down, or a straggler
		// racing the probe slot: success is evidence enough to recover.
		if ok {
			e.state = Healthy
			e.fails = 0
		}
	case Probing:
		if ok {
			e.state = Healthy
			e.fails = 0
		} else {
			e.state = Down
			e.since = t.cfg.Now()
		}
	}
}

// Usable reports whether an endpoint should receive traffic.  Healthy and
// suspect endpoints are usable; a down endpoint becomes usable once per
// ProbeAfter cooldown — the caller that sees true is the probe, and its
// next Report decides recovery.  While a probe is in flight everyone else
// sees false.
func (t *Tracker) Usable(name string) bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.endpointFor(name)
	now := t.cfg.Now()
	switch e.state {
	case Healthy, Suspect:
		return true
	case Down:
		if now.Sub(e.since) >= t.cfg.ProbeAfter {
			e.state = Probing
			e.since = now
			return true
		}
		return false
	default: // Probing
		// A probe whose outcome never arrived expires; claim a new one.
		if now.Sub(e.since) >= t.cfg.ProbeAfter {
			e.since = now
			return true
		}
		return false
	}
}

// State returns the endpoint's current state (Healthy for unknown names).
func (t *Tracker) State(name string) State {
	if t == nil {
		return Healthy
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.eps[name]
	if !ok {
		return Healthy
	}
	return e.state
}

// Snapshot returns every tracked endpoint's state.
func (t *Tracker) Snapshot() map[string]State {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]State, len(t.eps))
	for n, e := range t.eps {
		out[n] = e.state
	}
	return out
}

// Prober drives the tracker from periodic /healthz checks: every tick it
// probes each endpoint and reports the outcome, so a dead node is noticed
// even when no request traffic touches it, and a revived node rejoins the
// rotation without waiting for a request-path probe.
type Prober struct {
	// Tracker receives the probe outcomes.
	Tracker *Tracker
	// Endpoints are the names to probe.
	Endpoints []string
	// Check performs one health check (a GET /healthz round trip).
	Check func(ctx context.Context, endpoint string) error
	// Interval is the probe period (default 5s).
	Interval time.Duration
	// Tick overrides the internal ticker when non-nil — injectable so
	// tests drive probes without wall time.
	Tick <-chan time.Time
}

// Once probes every endpoint, in sorted order, reporting each outcome.
func (p *Prober) Once(ctx context.Context) {
	eps := append([]string(nil), p.Endpoints...)
	sort.Strings(eps)
	for _, ep := range eps {
		if ctx.Err() != nil {
			return
		}
		p.Tracker.Report(ep, p.Check(ctx, ep) == nil)
	}
}

// Run probes on every tick until ctx is done.
func (p *Prober) Run(ctx context.Context) {
	tick := p.Tick
	if tick == nil {
		iv := p.Interval
		if iv <= 0 {
			iv = 5 * time.Second
		}
		t := time.NewTicker(iv)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			p.Once(ctx)
		}
	}
}
