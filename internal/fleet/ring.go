package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-node vnode count when NewRing is given
// zero.  128 points per node keeps the load spread within a few percent
// of uniform for small fleets while the ring stays tiny (a 3-node fleet
// is 384 points, one binary search per lookup).
const DefaultVirtualNodes = 128

// hash64 is the ring's hash: the first 8 bytes of SHA-256, matching the
// family of the artifact content addresses the ring is keyed on.  Speed
// is irrelevant here (one hash per lookup, a few hundred at membership
// changes); stability and spread are what matter.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Ring is a consistent-hash ring with virtual nodes.  Keys (artifact
// content addresses) map to the first node point at or clockwise after
// the key's hash; each node contributes vnodes points so load spreads
// evenly.  Membership changes move only the keys of the node that
// changed — the property the stability test pins down.
//
// All methods are safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given nodes with vnodes virtual points
// per node (0 = DefaultVirtualNodes).
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node (idempotent).  Only keys owned by the removed
// node change owners.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}

// Successors returns up to n distinct nodes in ring order starting at
// key's owner: the owner first, then each next distinct node clockwise.
// This is the failover order — when the owner is down, the next successor
// is the node whose cache is most likely warm for neighboring keys.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Arcs returns each node's share of the hash space as a fraction in
// [0, 1], summing to 1 on a non-empty ring.  The arc between two
// consecutive ring points belongs to the later point's node (the one a
// key in that arc resolves to), with the wrap-around arc closing the
// circle.  With the default 128 vnodes per node the shares stay within
// a few tens of percent of 1/n — the rebalancing gauges built on this
// make any drift visible as the fleet grows.
func (r *Ring) Arcs() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.nodes))
	for n := range r.nodes {
		out[n] = 0
	}
	if len(r.points) == 0 {
		return out
	}
	if len(r.points) == 1 {
		out[r.points[0].node] = 1 // the self-wrap arc is the whole circle
		return out
	}
	const space = float64(1 << 63) * 2 // 2^64 as a float
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		// Arc length from the previous point to this one, clockwise.
		// The first iteration wraps: p.hash - prev underflows to
		// exactly the wrap-around arc in uint64 arithmetic.
		out[p.node] += float64(p.hash-prev) / space
		prev = p.hash
	}
	return out
}

// OwnerCounts buckets keys by their owning node, including zero counts
// for members that own none of them.
func (r *Ring) OwnerCounts(keys []string) map[string]int {
	out := make(map[string]int)
	for _, n := range r.Nodes() {
		out[n] = 0
	}
	for _, k := range keys {
		if owner := r.Owner(k); owner != "" {
			out[owner]++
		}
	}
	return out
}

// Rendezvous orders candidates by highest-random-weight for key and
// returns the top n (n <= 0 or n > len means all).  Every caller computes
// the same order with no shared state, and removing a candidate never
// reorders the survivors — the classic rendezvous-hashing property, used
// here to pick which ring peers to ask for a replicated artifact.
func Rendezvous(key string, candidates []string, n int) []string {
	type scored struct {
		node  string
		score uint64
	}
	scores := make([]scored, 0, len(candidates))
	for _, c := range candidates {
		scores = append(scores, scored{node: c, score: hash64(c + "\x00" + key)})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].score != scores[j].score {
			return scores[i].score > scores[j].score
		}
		return scores[i].node < scores[j].node
	})
	if n <= 0 || n > len(scores) {
		n = len(scores)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = scores[i].node
	}
	return out
}
