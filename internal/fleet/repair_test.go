package fleet

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"testing"
)

// keyFor fabricates a content-address-shaped key from a seed.
func keyFor(seed int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", seed)))
	return fmt.Sprintf("%x", sum)
}

// TestRepairPeersProperties pins the repair-walk contract over many keys
// and fleet shapes: self excluded, deterministic per key, every healthy
// peer enumerated exactly once before the walk is exhausted.
func TestRepairPeersProperties(t *testing.T) {
	fleets := [][]string{
		{"http://a:1"},
		{"http://a:1", "http://b:2"},
		{"http://a:1", "http://b:2", "http://c:3"},
		{"http://a:1", "http://b:2", "http://c:3", "http://d:4", "http://e:5"},
		// Self listed among the peers, and a duplicate entry: both must
		// be filtered.
		{"http://self:0", "http://a:1", "http://b:2", "http://b:2"},
	}
	const self = "http://self:0"

	for fi, peers := range fleets {
		// The expected full walk: unique peers minus self.
		want := map[string]bool{}
		for _, p := range peers {
			if p != self {
				want[p] = true
			}
		}
		for seed := 0; seed < 50; seed++ {
			key := keyFor(seed)
			walk := RepairPeers(key, self, peers, nil)

			// Self never appears.
			seen := map[string]bool{}
			for _, p := range walk {
				if p == self {
					t.Fatalf("fleet %d key %d: walk contains self", fi, seed)
				}
				if seen[p] {
					t.Fatalf("fleet %d key %d: %s appears twice in %v", fi, seed, p, walk)
				}
				seen[p] = true
			}
			// Every healthy peer appears (healthy == nil filters nothing),
			// so the walk only gives up after exhausting every candidate.
			if len(seen) != len(want) {
				t.Fatalf("fleet %d key %d: walk %v misses peers, want all of %v", fi, seed, walk, want)
			}
			// Deterministic: a pure function of (key, peers).
			if again := RepairPeers(key, self, peers, nil); !reflect.DeepEqual(walk, again) {
				t.Fatalf("fleet %d key %d: walk not deterministic: %v vs %v", fi, seed, walk, again)
			}
		}
	}
}

// TestRepairPeersHealthyFilter: unhealthy peers are skipped, and the
// relative order of the survivors matches the unfiltered rendezvous walk
// — filtering must not reshuffle who gets asked first.
func TestRepairPeersHealthyFilter(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	const self = "http://self:0"
	down := map[string]bool{"http://b:2": true}
	healthy := func(p string) bool { return !down[p] }

	for seed := 0; seed < 20; seed++ {
		key := keyFor(seed)
		full := RepairPeers(key, self, peers, nil)
		got := RepairPeers(key, self, peers, healthy)

		var wantOrder []string
		for _, p := range full {
			if healthy(p) {
				wantOrder = append(wantOrder, p)
			}
		}
		if !reflect.DeepEqual(got, wantOrder) {
			t.Fatalf("key %d: filtered walk %v, want %v (full %v)", seed, got, wantOrder, full)
		}
	}
}

// TestRepairPeersOrderVariesByKey: the rendezvous walk should not be the
// same permutation for every key — otherwise one peer absorbs every
// first-attempt repair in the fleet.
func TestRepairPeersOrderVariesByKey(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4", "http://e:5"}
	firsts := map[string]bool{}
	for seed := 0; seed < 64; seed++ {
		walk := RepairPeers(keyFor(seed), "http://self:0", peers, nil)
		if len(walk) > 0 {
			firsts[walk[0]] = true
		}
	}
	if len(firsts) < 2 {
		t.Fatalf("first repair peer identical for 64 distinct keys: %v", firsts)
	}
}
