// Package burs implements a bottom-up rewrite system (BURS) tree parser —
// the equivalent of the iburg code-generator generator the paper plugs its
// tree grammars into (Fraser/Hanson/Proebsting, LOPLAS 1992; paper section
// 3.2).
//
// Given the tree grammar built by internal/grammar, the parser labels a
// subject expression tree bottom-up with the minimum derivation cost per
// nonterminal, applying chain-rule closure at every node, and then emits
// the optimal (minimum-cost) derivation top-down.  Optimal code selection
// for an expression tree — covering it by a minimum set of RT templates —
// is exactly a minimum-cost derivation of the tree in the grammar.
//
// iburg emits C source compiled into the retargeted compiler; EmitGo
// mirrors that step by generating a Go source rendering of the rule tables.
package burs

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/grammar"
	"repro/internal/rtl"
)

// Inf is the cost of an impossible derivation.
const Inf = math.MaxInt32 / 4

// Node is a labelled subject-tree node.
type Node struct {
	Expr *rtl.Expr
	Kids []*Node
	// cost[nt] is the minimal derivation cost of this subtree from
	// nonterminal nt; rule[nt] achieves it.
	cost []int32
	rule []*grammar.Rule
}

// Cost returns the minimal cost of deriving the subtree from nonterminal
// nt (Inf if impossible).
func (n *Node) Cost(nt int) int { return int(n.cost[nt]) }

// Rule returns the rule achieving Cost(nt), or nil.
func (n *Node) Rule(nt int) *grammar.Rule { return n.rule[nt] }

// Parser is a processor-specific tree parser generated from a grammar.
type Parser struct {
	G *grammar.Grammar
	// chain is the chain-rule table in ascending source-nonterminal order.
	// Closure must not iterate the grammar's ChainRules map directly: on a
	// cost tie the first rule processed wins, so map order would make code
	// selection (and artifact-cached compiles) nondeterministic.
	chain []chainGroup
}

type chainGroup struct {
	src   int
	rules []*grammar.Rule
}

// NewParser constructs the parser for grammar g.
func NewParser(g *grammar.Grammar) *Parser {
	p := &Parser{G: g}
	srcs := make([]int, 0, len(g.ChainRules))
	for src := range g.ChainRules {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	for _, src := range srcs {
		p.chain = append(p.chain, chainGroup{src: src, rules: g.ChainRules[src]})
	}
	return p
}

// Label computes the dynamic-programming labels for the subject tree.
func (p *Parser) Label(e *rtl.Expr) *Node {
	nNT := p.G.NumNT()
	node := &Node{Expr: e, cost: make([]int32, nNT), rule: make([]*grammar.Rule, nNT)}
	for i := range node.cost {
		node.cost[i] = Inf
	}
	for _, k := range e.Kids {
		node.Kids = append(node.Kids, p.Label(k))
	}
	// Match every rule whose root terminal bucket fits this node.
	for _, r := range p.G.RulesByKey[grammar.SubjectKey(e)] {
		c := p.MatchCost(r.Pat, node)
		if c >= Inf {
			continue
		}
		total := int32(r.Cost) + c
		if total < node.cost[r.LHS] {
			node.cost[r.LHS] = total
			node.rule[r.LHS] = r
		}
	}
	// Chain-rule closure to fixpoint, in deterministic table order.
	for changed := true; changed; {
		changed = false
		for _, cg := range p.chain {
			if node.cost[cg.src] >= Inf {
				continue
			}
			src := cg.src
			for _, r := range cg.rules {
				total := int32(r.Cost) + node.cost[src]
				if total < node.cost[r.LHS] {
					node.cost[r.LHS] = total
					node.rule[r.LHS] = r
					changed = true
				}
			}
		}
	}
	return node
}

// FieldKey identifies an instruction field by its bit range.
type FieldKey struct{ Hi, Lo int }

// MatchCost returns the cost of matching pattern pat at node (excluding the
// rule's own cost), or Inf.  Nonlinear patterns — where one instruction
// field appears at several leaves (both FU inputs wired to the same memory
// output, say) — only match when every occurrence binds the same operand
// value.
func (p *Parser) MatchCost(pat *grammar.Pat, node *Node) int32 {
	return p.MatchCostFields(pat, node, make(map[FieldKey]int64, 2))
}

// MatchCostFields is MatchCost threading an explicit field-binding map; the
// same (non-nil) map may be shared across several patterns (a template's
// source and destination-address patterns) to enforce global consistency.
func (p *Parser) MatchCostFields(pat *grammar.Pat, node *Node, fields map[FieldKey]int64) int32 {
	if pat.Kind == grammar.PatNT {
		return node.cost[pat.NT]
	}
	if !pat.MatchesLeaf(node.Expr) {
		return Inf
	}
	if pat.Kind == grammar.PatImm {
		key := FieldKey{pat.ImmHi, pat.ImmLo}
		if prev, ok := fields[key]; ok && prev != node.Expr.Val {
			return Inf
		}
		fields[key] = node.Expr.Val
		return 0
	}
	if len(pat.Kids) != len(node.Kids) {
		return Inf
	}
	var sum int32
	for i, k := range pat.Kids {
		c := p.MatchCostFields(k, node.Kids[i], fields)
		if c >= Inf {
			return Inf
		}
		sum += c
	}
	return sum
}

// Step is one rule application in a derivation.  Kids are the
// sub-derivations at the nonterminal positions of the rule's pattern, in
// pattern pre-order; NodeAt pairs each with the subject node it derives.
type Step struct {
	Rule *grammar.Rule
	Node *Node
	Kids []*Step
}

// Walk visits the derivation bottom-up (kids before parent).
func (s *Step) Walk(f func(*Step)) {
	for _, k := range s.Kids {
		k.Walk(f)
	}
	f(s)
}

// Templates returns the RT templates selected by the derivation in
// bottom-up (operand-first) order.
func (s *Step) Templates() []*rtl.Template {
	var out []*rtl.Template
	s.Walk(func(st *Step) {
		if st.Rule.Kind == grammar.KindRT {
			out = append(out, st.Rule.Template)
		}
	})
	return out
}

// Cover is an optimal covering of one expression tree for one destination.
type Cover struct {
	Dest  string
	Start *grammar.Rule
	Root  *Step
	Cost  int
}

// CoverError explains an uncoverable tree.
type CoverError struct {
	Dest string
	Expr *rtl.Expr
	// Derivable lists the nonterminals the tree can be derived from, to
	// help diagnose the gap.
	Derivable []string
}

func (e *CoverError) Error() string {
	if len(e.Derivable) == 0 {
		return fmt.Sprintf("burs: expression %s not derivable from any nonterminal (operator unsupported by the target?)", e.Expr)
	}
	return fmt.Sprintf("burs: expression %s not derivable into destination %s (only into %s)",
		e.Expr, e.Dest, strings.Join(e.Derivable, ", "))
}

// Cover computes the minimum-cost derivation of e into destination dest
// (the paper's ASSIGN(Term(dest), NonTerm(dest)) start rule).
func (p *Parser) Cover(dest string, e *rtl.Expr) (*Cover, error) {
	root := p.Label(e)
	return p.CoverLabeled(dest, root)
}

// CoverLabeled is Cover for an already-labelled tree.
func (p *Parser) CoverLabeled(dest string, root *Node) (*Cover, error) {
	sr, ok := p.G.StartRules[dest]
	if !ok {
		return nil, fmt.Errorf("burs: unknown destination %q", dest)
	}
	nt := sr.Pat.NT
	if root.cost[nt] >= Inf {
		var derivable []string
		for i := 1; i < p.G.NumNT(); i++ {
			if root.cost[i] < Inf {
				derivable = append(derivable, p.G.NTNames[i])
			}
		}
		sort.Strings(derivable)
		return nil, &CoverError{Dest: dest, Expr: root.Expr, Derivable: derivable}
	}
	step, err := p.Derive(root, nt)
	if err != nil {
		return nil, err
	}
	return &Cover{Dest: dest, Start: sr, Root: step, Cost: int(root.cost[nt]) + sr.Cost}, nil
}

// Derive reconstructs the optimal derivation of node from nonterminal nt
// (Label must have produced the node).
func (p *Parser) Derive(node *Node, nt int) (*Step, error) {
	r := node.rule[nt]
	if r == nil {
		return nil, fmt.Errorf("burs: internal: no rule for %s at %s",
			p.G.NTNames[nt], node.Expr)
	}
	step := &Step{Rule: r, Node: node}
	var rec func(pat *grammar.Pat, n *Node) error
	rec = func(pat *grammar.Pat, n *Node) error {
		if pat.Kind == grammar.PatNT {
			kid, err := p.Derive(n, pat.NT)
			if err != nil {
				return err
			}
			step.Kids = append(step.Kids, kid)
			return nil
		}
		for i, k := range pat.Kids {
			if err := rec(k, n.Kids[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(r.Pat, node); err != nil {
		return nil, err
	}
	return step, nil
}

// NTPairs returns, for each nonterminal position of the rule's pattern (in
// pre-order), the subject node derived there.  It parallels Step.Kids.
func NTPairs(r *grammar.Rule, node *Node) []*Node {
	var out []*Node
	var rec func(pat *grammar.Pat, n *Node)
	rec = func(pat *grammar.Pat, n *Node) {
		if pat.Kind == grammar.PatNT {
			out = append(out, n)
			return
		}
		for i, k := range pat.Kids {
			rec(k, n.Kids[i])
		}
	}
	rec(r.Pat, node)
	return out
}
