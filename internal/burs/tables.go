// BURS match tables in serializable form.
//
// A freshly built grammar carries its rule indexes as in-memory maps
// (RulesByKey, ChainRules, StartRules).  The retarget-artifact cache needs
// those tables on disk, so Tables flattens them into sorted slices of rule
// ids — deterministic to encode, cheap to reinstall — and RestoreParser
// rebuilds a working parser from a grammar whose maps are still empty
// (grammar.Restore output).
package burs

import (
	"fmt"
	"sort"

	"repro/internal/grammar"
)

// KeyRules lists the non-chain rules bucketed under one root terminal key,
// in rule-id order (the order Build appended them, which fixes cost-tie
// winners during labelling).
type KeyRules struct {
	Key   string `json:"key"`
	Rules []int  `json:"rules"`
}

// ChainRules lists the chain rules deriving from one source nonterminal.
type ChainRules struct {
	Src   int   `json:"src"`
	Rules []int `json:"rules"`
}

// StartRule names the start rule for one destination.
type StartRule struct {
	Dest string `json:"dest"`
	Rule int    `json:"rule"`
}

// Tables is the serializable form of a generated tree parser's match
// tables.  All three sections are emitted in sorted order so that encoding
// a grammar twice yields byte-identical tables.
type Tables struct {
	ByKey []KeyRules   `json:"by_key"`
	Chain []ChainRules `json:"chain"`
	Start []StartRule  `json:"start"`
}

// BuildTables extracts the match tables from a constructed grammar.
func BuildTables(g *grammar.Grammar) Tables {
	var t Tables
	keys := make([]string, 0, len(g.RulesByKey))
	for k := range g.RulesByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		kr := KeyRules{Key: k}
		for _, r := range g.RulesByKey[k] {
			kr.Rules = append(kr.Rules, r.ID)
		}
		t.ByKey = append(t.ByKey, kr)
	}
	srcs := make([]int, 0, len(g.ChainRules))
	for src := range g.ChainRules {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	for _, src := range srcs {
		cr := ChainRules{Src: src}
		for _, r := range g.ChainRules[src] {
			cr.Rules = append(cr.Rules, r.ID)
		}
		t.Chain = append(t.Chain, cr)
	}
	dests := make([]string, 0, len(g.StartRules))
	for d := range g.StartRules {
		dests = append(dests, d)
	}
	sort.Strings(dests)
	for _, d := range dests {
		t.Start = append(t.Start, StartRule{Dest: d, Rule: g.StartRules[d].ID})
	}
	return t
}

// RestoreParser installs decoded match tables into g (whose index maps must
// be empty or stale) and returns the parser over them.  Rule references are
// validated against g.Rules.
func RestoreParser(g *grammar.Grammar, t Tables) (*Parser, error) {
	rule := func(id int) (*grammar.Rule, error) {
		if id < 0 || id >= len(g.Rules) {
			return nil, fmt.Errorf("burs: tables: rule id %d out of range [0,%d)", id, len(g.Rules))
		}
		return g.Rules[id], nil
	}
	byKey := make(map[string][]*grammar.Rule, len(t.ByKey))
	for _, kr := range t.ByKey {
		if _, dup := byKey[kr.Key]; dup {
			return nil, fmt.Errorf("burs: tables: duplicate key bucket %q", kr.Key)
		}
		for _, id := range kr.Rules {
			r, err := rule(id)
			if err != nil {
				return nil, err
			}
			if r.Kind == grammar.KindStart || r.IsChain() {
				return nil, fmt.Errorf("burs: tables: rule %d cannot sit in a terminal bucket", id)
			}
			byKey[kr.Key] = append(byKey[kr.Key], r)
		}
	}
	chain := make(map[int][]*grammar.Rule, len(t.Chain))
	for _, cr := range t.Chain {
		if _, dup := chain[cr.Src]; dup {
			return nil, fmt.Errorf("burs: tables: duplicate chain source %d", cr.Src)
		}
		for _, id := range cr.Rules {
			r, err := rule(id)
			if err != nil {
				return nil, err
			}
			if !r.IsChain() {
				return nil, fmt.Errorf("burs: tables: rule %d is not a chain rule", id)
			}
			chain[cr.Src] = append(chain[cr.Src], r)
		}
	}
	start := make(map[string]*grammar.Rule, len(t.Start))
	for _, sr := range t.Start {
		r, err := rule(sr.Rule)
		if err != nil {
			return nil, err
		}
		if r.Kind != grammar.KindStart {
			return nil, fmt.Errorf("burs: tables: rule %d is not a start rule", sr.Rule)
		}
		if _, dup := start[sr.Dest]; dup {
			return nil, fmt.Errorf("burs: tables: duplicate start destination %q", sr.Dest)
		}
		start[sr.Dest] = r
	}
	g.RulesByKey = byKey
	g.ChainRules = chain
	g.StartRules = start
	return NewParser(g), nil
}
