package burs

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/grammar"
	"repro/internal/rtl"
)

// testMachine builds a small accumulator-machine template base and grammar:
//
//	acc := acc + ram[IW]     acc := acc - ram[IW]
//	acc := ram[IW]           ram[IW] := acc
//	acc := IW (8-bit imm)    t := ram[IW]
//	acc := t * ram[IW]       acc := acc + t
//	t := acc                 (a chain rule)
func testMachine(t *testing.T) (*grammar.Grammar, *rtl.Base) {
	t.Helper()
	m := bdd.New()
	base := rtl.NewBase(m)
	imm := func() *rtl.Expr { return rtl.NewInsnField(7, 0) }
	ram := func() *rtl.Expr { return rtl.NewRead("ram.m", 16, imm()) }
	acc := func() *rtl.Expr { return rtl.NewRead("acc.r", 16, nil) }
	tr := func() *rtl.Expr { return rtl.NewRead("t.r", 16, nil) }
	add := func(tpl *rtl.Template) {
		tpl.Cond = rtl.ExecCond{Static: m.True()}
		tpl.Width = 16
		base.Add(tpl)
	}
	add(&rtl.Template{Dest: "acc.r", Src: rtl.NewOp(rtl.OpAdd, 16, acc(), ram())})
	add(&rtl.Template{Dest: "acc.r", Src: rtl.NewOp(rtl.OpSub, 16, acc(), ram())})
	add(&rtl.Template{Dest: "acc.r", Src: ram()})
	add(&rtl.Template{Dest: "ram.m", DestAddr: imm(), Src: acc()})
	add(&rtl.Template{Dest: "acc.r", Src: imm()})
	add(&rtl.Template{Dest: "t.r", Src: ram()})
	add(&rtl.Template{Dest: "acc.r", Src: rtl.NewOp(rtl.OpMul, 16, tr(), ram())})
	add(&rtl.Template{Dest: "acc.r", Src: rtl.NewOp(rtl.OpAdd, 16, acc(), tr())})
	add(&rtl.Template{Dest: "t.r", Src: acc()})

	spec := grammar.Spec{Storages: []grammar.StorageInfo{
		{Name: "acc.r", Width: 16, Size: 1},
		{Name: "t.r", Width: 16, Size: 1},
		{Name: "ram.m", Width: 16, Size: 256},
	}}
	g, err := grammar.Build(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	return g, base
}

func ramAt(addr int64) *rtl.Expr {
	return rtl.NewRead("ram.m", 16, rtl.NewConst(addr, 16))
}

func accLeaf() *rtl.Expr { return rtl.NewRead("acc.r", 16, nil) }

func TestGrammarShape(t *testing.T) {
	g, base := testMachine(t)
	st := g.Stats()
	if st.StartRules != 3 || st.StopRules != 2 {
		t.Errorf("start=%d stop=%d", st.StartRules, st.StopRules)
	}
	if st.RTRules != base.Len() {
		t.Errorf("rt rules = %d, templates = %d", st.RTRules, base.Len())
	}
	// Two chain rules: "t := acc" and the store "ram[IW] := acc" (whose
	// pattern is the bare nonterminal acc).
	if st.ChainRules != 2 {
		t.Errorf("chain rules = %d, want 2", st.ChainRules)
	}
	if g.NT("acc.r") < 1 || g.NT("ram.m") < 1 || g.NT("nope") != -1 {
		t.Error("NT lookup broken")
	}
	if !strings.Contains(g.String(), "->") {
		t.Error("grammar rendering empty")
	}
}

func TestCoverSimpleLoad(t *testing.T) {
	g, _ := testMachine(t)
	p := NewParser(g)
	// acc := ram[5]
	c, err := p.Cover("acc.r", ramAt(5))
	if err != nil {
		t.Fatal(err)
	}
	if c.Cost != 1 {
		t.Fatalf("cost = %d, want 1", c.Cost)
	}
	tpls := c.Root.Templates()
	if len(tpls) != 1 || tpls[0].String() != "acc.r := ram.m[IW[7:0]]" {
		t.Fatalf("selected %v", tpls)
	}
}

func TestCoverAdd(t *testing.T) {
	g, _ := testMachine(t)
	p := NewParser(g)
	// acc := ram[5] + ram[6]  -> load; add  (cost 2)
	e := rtl.NewOp(rtl.OpAdd, 16, ramAt(5), ramAt(6))
	c, err := p.Cover("acc.r", e)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cost != 2 {
		t.Fatalf("cost = %d, want 2", c.Cost)
	}
	tpls := c.Root.Templates()
	if len(tpls) != 2 {
		t.Fatalf("templates = %v", tpls)
	}
	// Bottom-up order: the load comes first.
	if !strings.Contains(tpls[0].String(), "acc.r := ram.m") {
		t.Errorf("first template = %s", tpls[0])
	}
	if !strings.Contains(tpls[1].String(), "(acc.r + ram.m") {
		t.Errorf("second template = %s", tpls[1])
	}
}

func TestCoverChainedMulAcc(t *testing.T) {
	g, _ := testMachine(t)
	p := NewParser(g)
	// acc := acc + ram[5]*ram[6]
	// -> t := ram[5]; acc := t*ram[6]; t := acc; acc := acc + t
	e := rtl.NewOp(rtl.OpAdd, 16, accLeaf(),
		rtl.NewOp(rtl.OpMul, 16, ramAt(5), ramAt(6)))
	c, err := p.Cover("acc.r", e)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cost != 4 {
		t.Fatalf("cost = %d, want 4", c.Cost)
	}
	if got := len(c.Root.Templates()); got != 4 {
		t.Fatalf("template count = %d", got)
	}
}

func TestCoverMemoryDestination(t *testing.T) {
	g, _ := testMachine(t)
	p := NewParser(g)
	// ram[9] := ram[5] + ram[6]: load, add, store = 3.
	e := rtl.NewOp(rtl.OpAdd, 16, ramAt(5), ramAt(6))
	c, err := p.Cover("ram.m", e)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cost != 3 {
		t.Fatalf("cost = %d, want 3", c.Cost)
	}
}

func TestCoverImmediates(t *testing.T) {
	g, _ := testMachine(t)
	p := NewParser(g)
	// Fits the 8-bit field.
	if c, err := p.Cover("acc.r", rtl.NewConst(255, 16)); err != nil || c.Cost != 1 {
		t.Fatalf("imm 255: cost=%v err=%v", c, err)
	}
	// Too wide for the field: uncoverable on this machine.
	if _, err := p.Cover("acc.r", rtl.NewConst(4096, 16)); err == nil {
		t.Fatal("imm 4096 should not be encodable")
	}
	// Negative immediate fits signed.
	if c, err := p.Cover("acc.r", rtl.NewConst(-128, 16)); err != nil || c.Cost != 1 {
		t.Fatalf("imm -128: cost=%v err=%v", c, err)
	}
}

func TestCoverErrors(t *testing.T) {
	g, _ := testMachine(t)
	p := NewParser(g)
	// Unsupported operator.
	e := rtl.NewOp(rtl.OpXor, 16, ramAt(1), ramAt(2))
	_, err := p.Cover("acc.r", e)
	ce, ok := err.(*CoverError)
	if !ok {
		t.Fatalf("err = %v, want CoverError", err)
	}
	if len(ce.Derivable) != 0 {
		t.Errorf("xor should be underivable anywhere, got %v", ce.Derivable)
	}
	if !strings.Contains(ce.Error(), "unsupported") {
		t.Errorf("message = %q", ce.Error())
	}
	// Unknown destination.
	if _, err := p.Cover("bogus", ramAt(1)); err == nil {
		t.Error("unknown destination accepted")
	}
	// Derivable into acc but not into a destination with no templates:
	// t.r only accepts ram loads and acc moves, so an add tree still works
	// via chaining — but a PORT-less dest that lacks rules fails cleanly.
}

func TestStepWalkOrder(t *testing.T) {
	g, _ := testMachine(t)
	p := NewParser(g)
	e := rtl.NewOp(rtl.OpAdd, 16, ramAt(5), ramAt(6))
	c, err := p.Cover("acc.r", e)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []grammar.RuleKind
	c.Root.Walk(func(s *Step) { kinds = append(kinds, s.Rule.Kind) })
	if kinds[len(kinds)-1] != grammar.KindRT {
		t.Errorf("root of derivation should be the RT rule, got %v", kinds)
	}
}

// refCost is an independent top-down memoized implementation of minimum
// derivation cost, used as the oracle for optimality property tests.
func refCost(g *grammar.Grammar, e *rtl.Expr, nt int, memo map[string]int32, visiting map[string]bool) int32 {
	key := e.Key() + "@" + g.NTNames[nt]
	if v, ok := memo[key]; ok {
		return v
	}
	if visiting[key] {
		return Inf // cyclic chain derivations are never cheaper
	}
	visiting[key] = true
	defer delete(visiting, key)

	best := int32(Inf)
	var try func(pat *grammar.Pat, n *rtl.Expr) int32
	try = func(pat *grammar.Pat, n *rtl.Expr) int32 {
		if pat.Kind == grammar.PatNT {
			return refCost(g, n, pat.NT, memo, visiting)
		}
		if !pat.MatchesLeaf(n) || len(pat.Kids) != len(n.Kids) {
			return Inf
		}
		var sum int32
		for i, k := range pat.Kids {
			c := try(k, n.Kids[i])
			if c >= Inf {
				return Inf
			}
			sum += c
		}
		return sum
	}
	for _, r := range g.Rules {
		if r.Kind == grammar.KindStart || r.LHS != nt {
			continue
		}
		c := try(r.Pat, e)
		if c < Inf && int32(r.Cost)+c < best {
			best = int32(r.Cost) + c
		}
	}
	// Do not memoize Inf reached through an active chain (it may improve
	// on a different path); only cache final results outside cycles.
	memo[key] = best
	return best
}

func TestPropOptimalityVsReference(t *testing.T) {
	g, _ := testMachine(t)
	p := NewParser(g)
	rng := rand.New(rand.NewSource(21))

	var gen func(depth int) *rtl.Expr
	gen = func(depth int) *rtl.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			switch rng.Intn(3) {
			case 0:
				return ramAt(int64(rng.Intn(200)))
			case 1:
				return accLeaf()
			default:
				return rtl.NewConst(int64(rng.Intn(200)), 16)
			}
		}
		ops := []rtl.Op{rtl.OpAdd, rtl.OpSub, rtl.OpMul}
		return rtl.NewOp(ops[rng.Intn(3)], 16, gen(depth-1), gen(depth-1))
	}

	for trial := 0; trial < 300; trial++ {
		e := gen(3)
		root := p.Label(e)
		memo := make(map[string]int32)
		for nt := 1; nt < g.NumNT(); nt++ {
			want := refCost(g, e, nt, memo, make(map[string]bool))
			got := root.cost[nt]
			if got >= Inf && want >= Inf {
				continue
			}
			if got != want {
				t.Fatalf("trial %d: cost mismatch for %s at %s: parser=%d ref=%d",
					trial, e, g.NTNames[nt], got, want)
			}
		}
	}
}

// TestPropDerivationCostConsistent: the sum of rule costs along the emitted
// derivation equals the claimed optimal cost.
func TestPropDerivationCostConsistent(t *testing.T) {
	g, _ := testMachine(t)
	p := NewParser(g)
	rng := rand.New(rand.NewSource(77))
	var gen func(depth int) *rtl.Expr
	gen = func(depth int) *rtl.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return ramAt(int64(rng.Intn(100)))
			}
			return accLeaf()
		}
		ops := []rtl.Op{rtl.OpAdd, rtl.OpSub, rtl.OpMul}
		return rtl.NewOp(ops[rng.Intn(3)], 16, gen(depth-1), gen(depth-1))
	}
	for trial := 0; trial < 200; trial++ {
		e := gen(3)
		c, err := p.Cover("acc.r", e)
		if err != nil {
			continue // some shapes are legitimately uncoverable
		}
		sum := 0
		c.Root.Walk(func(s *Step) { sum += s.Rule.Cost })
		if sum+c.Start.Cost != c.Cost {
			t.Fatalf("trial %d: derivation cost %d != claimed %d for %s",
				trial, sum, c.Cost, e)
		}
	}
}

func TestNTPairs(t *testing.T) {
	g, _ := testMachine(t)
	p := NewParser(g)
	e := rtl.NewOp(rtl.OpAdd, 16, accLeaf(), ramAt(6))
	root := p.Label(e)
	c, err := p.CoverLabeled("acc.r", root)
	if err != nil {
		t.Fatal(err)
	}
	pairs := NTPairs(c.Root.Rule, c.Root.Node)
	if len(pairs) != len(c.Root.Kids) {
		t.Fatalf("pairs %d != kids %d", len(pairs), len(c.Root.Kids))
	}
	if pairs[0].Expr.Storage != "acc.r" {
		t.Errorf("first NT pair = %s", pairs[0].Expr)
	}
}

func TestEmitGo(t *testing.T) {
	g, _ := testMachine(t)
	src := EmitGo(g, "tinyparser")
	if !strings.Contains(src, "package tinyparser") {
		t.Fatal("missing package clause")
	}
	if !strings.Contains(src, "var Rules = []Rule{") {
		t.Fatal("missing rule table")
	}
	// The emitted file must be valid Go.
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "gen.go", src, 0)
	if err != nil {
		t.Fatalf("emitted source does not parse: %v\n%s", err, src)
	}
	// ... and must type-check (the analogue of iburg's output surviving
	// the C compiler).
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("tinyparser", fset, []*ast.File{f}, nil); err != nil {
		t.Fatalf("emitted source does not type-check: %v", err)
	}
}
