package ise

import (
	"context"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/faultpoint"
	"repro/internal/hdl"
	"repro/internal/netlist"
	"repro/internal/rtl"
)

const tinySrc = `
PROCESSOR tiny;
CONST WORD = 8;

MODULE Alu (IN a: WORD; IN b: WORD; IN ctl: 2; OUT y: WORD);
BEGIN
  y <- CASE ctl OF 0: a + b; 1: a - b; 2: a & b; ELSE: b; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 4; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [16];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE Rom (IN a: 4; OUT q: 16);
VAR m: 16 [16];
BEGIN q <- m[a]; END;

MODULE Inc (IN a: 4; OUT y: 4);
BEGIN y <- a + 1; END;

MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN q <- r; r <- d; END;

PARTS
  alu  : Alu;
  acc  : Reg;
  ram  : Ram;
  imem : Rom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc;

CONNECT
  alu.a   <- acc.q;
  alu.b   <- ram.q;
  alu.ctl <- imem.q[15:14];
  acc.d   <- alu.y;
  acc.ld  <- imem.q[13];
  ram.a   <- imem.q[3:0];
  ram.d   <- acc.q;
  ram.w   <- imem.q[12];
  imem.a  <- pc.q;
  pinc.a  <- pc.q;
  pc.d    <- pinc.y;
END.
`

func extract(t *testing.T, src string) *Result {
	t.Helper()
	m, err := hdl.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	n, err := netlist.Elaborate(m)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	res, err := Extract(n, Options{})
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return res
}

// find returns the templates whose rendering contains every given fragment.
func find(res *Result, frags ...string) []*rtl.Template {
	var out []*rtl.Template
	for _, tpl := range res.Base.Templates {
		s := tpl.String()
		all := true
		for _, f := range frags {
			if !strings.Contains(s, f) {
				all = false
				break
			}
		}
		if all {
			out = append(out, tpl)
		}
	}
	return out
}

func TestExtractTinyTemplateSet(t *testing.T) {
	res := extract(t, tinySrc)
	if res.Base.Len() != 6 {
		t.Fatalf("templates = %d, want 6:\n%s", res.Base.Len(), res.Base)
	}
	wants := []string{
		"acc.r := (acc.r + ram.m[IW[3:0]])",
		"acc.r := (acc.r - ram.m[IW[3:0]])",
		"acc.r := (acc.r & ram.m[IW[3:0]])",
		"acc.r := ram.m[IW[3:0]]",
		"ram.m[IW[3:0]] := acc.r",
		"pc.r := (pc.r + 1)",
	}
	for _, w := range wants {
		if len(find(res, w)) != 1 {
			t.Errorf("template %q missing or duplicated:\n%s", w, res.Base)
		}
	}
}

func TestExtractTinyConditions(t *testing.T) {
	res := extract(t, tinySrc)
	m := res.Vars.M

	// acc.r := acc.r + ram[...]: requires ld(I13)=1 and ctl(I15:14)=00.
	add := find(res, "acc.r := (acc.r + ram.m")[0]
	assign := map[int]bool{13: true, 14: false, 15: false}
	if !m.Eval(add.Cond.Static, assign) {
		t.Error("add template must fire with I13=1, ctl=00")
	}
	if m.Eval(add.Cond.Static, map[int]bool{13: false, 14: false, 15: false}) {
		t.Error("add template must not fire with I13=0")
	}
	if m.Eval(add.Cond.Static, map[int]bool{13: true, 14: true, 15: false}) {
		t.Error("add template must not fire with ctl=01")
	}
	// The pass-through template uses the ELSE branch: ctl=11.
	mov := find(res, "acc.r := ram.m")[0]
	if !m.Eval(mov.Cond.Static, map[int]bool{13: true, 14: true, 15: true}) {
		t.Error("move template must fire with ctl=11")
	}
	// Store: requires I12.
	st := find(res, "ram.m[IW[3:0]] := acc.r")[0]
	if !m.Eval(st.Cond.Static, map[int]bool{12: true}) ||
		m.Eval(st.Cond.Static, map[int]bool{12: false}) {
		t.Error("store template condition must be exactly I12")
	}
	// PC increment: unconditional.
	inc := find(res, "pc.r := (pc.r + 1)")[0]
	if !m.Tautology(inc.Cond.Static) {
		t.Errorf("pc increment must be unconditional, got %s", m.String(inc.Cond.Static))
	}
	// Parallelism: add and store can be encoded in the same word.
	if m.And(add.Cond.Static, st.Cond.Static) == m.False() {
		t.Error("add and store should be encodable in parallel")
	}
}

func TestExtractStats(t *testing.T) {
	res := extract(t, tinySrc)
	if res.Stats.Templates != res.Base.Len() {
		t.Error("stats template count mismatch")
	}
	if res.Stats.RoutesEnumerated < res.Stats.Templates {
		t.Errorf("routes %d < templates %d", res.Stats.RoutesEnumerated, res.Stats.Templates)
	}
	if res.Stats.BDDNodes <= 2 {
		t.Error("BDD universe suspiciously empty")
	}
	if res.Vars.InsnWidth() != 16 {
		t.Errorf("insn width = %d", res.Vars.InsnWidth())
	}
}

func TestVarMapQueries(t *testing.T) {
	res := extract(t, tinySrc)
	if bit, ok := res.Vars.IsInsnVar(res.Vars.InsnVars[13]); !ok || bit != 13 {
		t.Error("IsInsnVar(13) failed")
	}
	if _, ok := res.Vars.IsInsnVar(-7); ok {
		t.Error("bogus var reported as instruction bit")
	}
	if s, _ := res.Vars.ModeVarOwner(res.Vars.InsnVars[0]); s != "" {
		t.Error("instruction bit misattributed to mode storage")
	}
}

// Immediate operands: instruction bits routed into the datapath.
const immSrc = `
PROCESSOR immy;
MODULE Alu (IN a: 8; IN b: 8; IN ctl: 1; OUT y: 8);
BEGIN
  y <- CASE ctl OF 0: a + b; 1: a; END;
END;
MODULE Reg (IN d: 8; IN ld: 1; OUT q: 8);
VAR r: 8;
BEGIN q <- r; AT ld == 1 DO r <- d; END;
MODULE Rom (IN a: 4; OUT q: 16);
VAR m: 16 [16];
BEGIN q <- m[a]; END;
MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN q <- r; r <- d; END;
MODULE Inc (IN a: 4; OUT y: 4);
BEGIN y <- a + 1; END;
PARTS
  alu : Alu; acc : Reg; imem : Rom INSTRUCTION; pc : PcReg PC; pinc : Inc;
CONNECT
  alu.a  <- imem.q[7:0];
  alu.b  <- acc.q;
  alu.ctl<- imem.q[15];
  acc.d  <- alu.y;
  acc.ld <- imem.q[14];
  imem.a <- pc.q;
  pinc.a <- pc.q;
  pc.d   <- pinc.y;
END.
`

func TestImmediateOperands(t *testing.T) {
	res := extract(t, immSrc)
	// acc.r := IW[7:0] + acc.r  and  acc.r := IW[7:0]
	addi := find(res, "acc.r := (IW[7:0] + acc.r)")
	if len(addi) != 1 {
		t.Fatalf("add-immediate template missing:\n%s", res.Base)
	}
	ldi := find(res, "acc.r := IW[7:0]")
	if len(ldi) == 0 {
		t.Fatalf("load-immediate template missing:\n%s", res.Base)
	}
	fields := addi[0].Src.InsnFields()
	if len(fields) != 1 || fields[0].Hi != 7 || fields[0].Lo != 0 {
		t.Errorf("immediate field = %v", fields)
	}
}

// Bus contention: two drivers enabled by the same condition must prune each
// other; complementary conditions survive.
const busSrc = `
PROCESSOR bussy;
MODULE Reg (IN d: 8; IN ld: 1; OUT q: 8);
VAR r: 8;
BEGIN q <- r; AT ld == 1 DO r <- d; END;
MODULE Rom (IN a: 4; OUT q: 16);
VAR m: 16 [16];
BEGIN q <- m[a]; END;
MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN q <- r; r <- d; END;
MODULE Inc (IN a: 4; OUT y: 4);
BEGIN y <- a + 1; END;
BUS db : 8;
PARTS
  r0 : Reg; r1 : Reg; r2 : Reg; imem : Rom INSTRUCTION; pc : PcReg PC; pinc : Inc;
CONNECT
  db <- r0.q WHEN imem.q[7] == 1;
  db <- r1.q WHEN imem.q[7] == 0;
  db <- r2.q WHEN imem.q[7] == 1;   -- contends with the r0 driver
  r0.d <- db;
  r1.d <- db;
  r2.d <- db;
  r0.ld <- imem.q[6];
  r1.ld <- imem.q[5];
  r2.ld <- imem.q[4];
  imem.a <- pc.q;
  pinc.a <- pc.q;
  pc.d <- pinc.y;
END.
`

func TestBusContentionPruned(t *testing.T) {
	res := extract(t, busSrc)
	// Routes via r0 and r2 require I7=1 AND NOT(other's I7=1) => unsat.
	if got := find(res, ":= r0.r"); len(got) != 0 {
		t.Errorf("contending r0 route survived: %v", got)
	}
	if got := find(res, ":= r2.r"); len(got) != 0 {
		t.Errorf("contending r2 route survived: %v", got)
	}
	// The r1 route (I7=0) is exclusive and must survive into each register.
	if got := find(res, "r0.r := r1.r"); len(got) != 1 {
		t.Errorf("r0 := r1 missing:\n%s", res.Base)
	}
	if res.Stats.Unsatisfiable == 0 {
		t.Error("expected unsatisfiable routes to be counted")
	}
}

// Conditional jump: the PC mux is steered by a data register, so the jump
// templates carry residual dynamic guards.
const jumpSrc = `
PROCESSOR jumpy;
MODULE Reg1 (IN d: 1; IN ld: 1; OUT q: 1);
VAR r: 1;
BEGIN q <- r; AT ld == 1 DO r <- d; END;
MODULE Rom (IN a: 4; OUT q: 16);
VAR m: 16 [16];
BEGIN q <- m[a]; END;
MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN q <- r; r <- d; END;
MODULE Inc (IN a: 4; OUT y: 4);
BEGIN y <- a + 1; END;
MODULE PcMux (IN inc: 4; IN tgt: 4; IN take: 1; OUT y: 4);
BEGIN y <- CASE take OF 1: tgt; ELSE: inc; END; END;
PARTS
  flag : Reg1; imem : Rom INSTRUCTION; pc : PcReg PC; pinc : Inc; pmux : PcMux;
CONNECT
  flag.d  <- imem.q[8];
  flag.ld <- imem.q[9];
  pmux.inc <- pinc.y;
  pmux.tgt <- imem.q[3:0];
  pmux.take <- flag.q;
  pinc.a <- pc.q;
  pc.d <- pmux.y;
  imem.a <- pc.q;
END.
`

func TestDynamicGuards(t *testing.T) {
	res := extract(t, jumpSrc)
	jump := find(res, "pc.r := IW[3:0]", "when")
	if len(jump) != 1 {
		t.Fatalf("conditional jump template missing:\n%s", res.Base)
	}
	if len(jump[0].Cond.Dynamic) != 1 {
		t.Fatalf("jump guards = %v", jump[0].Cond.Dynamic)
	}
	g := jump[0].Cond.Dynamic[0]
	if g.Kind != rtl.OpApp || g.Op != rtl.OpEq {
		t.Errorf("guard = %s", g)
	}
	if !strings.Contains(g.String(), "flag.r") {
		t.Errorf("guard must test flag.r, got %s", g)
	}
	// Fallthrough template with the complementary guard.
	ft := find(res, "pc.r := (pc.r + 1)", "when")
	if len(ft) != 1 {
		t.Fatalf("guarded fallthrough missing:\n%s", res.Base)
	}
	if ft[0].Cond.Dynamic[0].Op != rtl.OpNe {
		t.Errorf("fallthrough guard = %s", ft[0].Cond.Dynamic[0])
	}
}

// Mode registers: a control signal stored in a mode register becomes a BDD
// variable distinct from instruction bits.
const modeSrc = `
PROCESSOR mody;
MODULE Alu (IN a: 8; IN b: 8; IN ctl: 1; OUT y: 8);
BEGIN y <- CASE ctl OF 0: a + b; 1: a - b; END; END;
MODULE Reg (IN d: 8; IN ld: 1; OUT q: 8);
VAR r: 8;
BEGIN q <- r; AT ld == 1 DO r <- d; END;
MODULE Reg1 (IN d: 1; IN ld: 1; OUT q: 1);
VAR r: 1;
BEGIN q <- r; AT ld == 1 DO r <- d; END;
MODULE Rom (IN a: 4; OUT q: 16);
VAR m: 16 [16];
BEGIN q <- m[a]; END;
MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN q <- r; r <- d; END;
MODULE Inc (IN a: 4; OUT y: 4);
BEGIN y <- a + 1; END;
PARTS
  alu : Alu; acc : Reg; mr : Reg1 MODE; imem : Rom INSTRUCTION; pc : PcReg PC; pinc : Inc;
CONNECT
  alu.a <- acc.q;
  alu.b <- imem.q[7:0];
  alu.ctl <- mr.q;
  acc.d <- alu.y;
  acc.ld <- imem.q[14];
  mr.d <- imem.q[15];
  mr.ld <- imem.q[13];
  imem.a <- pc.q;
  pinc.a <- pc.q;
  pc.d <- pinc.y;
END.
`

func TestModeRegisterConditions(t *testing.T) {
	res := extract(t, modeSrc)
	m := res.Vars.M
	add := find(res, "acc.r := (acc.r + IW[7:0])")
	if len(add) != 1 {
		t.Fatalf("mode-steered add missing:\n%s", res.Base)
	}
	modeBits := res.Vars.ModeVars["mr.r"]
	if len(modeBits) != 1 {
		t.Fatalf("mode vars = %v", res.Vars.ModeVars)
	}
	mv := modeBits[0]
	// Condition: I14=1 AND mode bit = 0.
	if !m.Eval(add[0].Cond.Static, map[int]bool{14: true, mv: false}) {
		t.Error("add must fire with mode=0")
	}
	if m.Eval(add[0].Cond.Static, map[int]bool{14: true, mv: true}) {
		t.Error("add must not fire with mode=1")
	}
	// The mode register itself is also an RT destination.
	if len(find(res, "mr.r := IW[15]")) != 1 {
		t.Errorf("mode-set template missing:\n%s", res.Base)
	}
}

func TestExtractDegradesOnRouteExplosion(t *testing.T) {
	// Undriven-port models are rejected by the checker, so exercise the
	// route-explosion limit instead.  With MaxAlts=1 exploding destinations
	// are dropped with warnings; extraction either degrades (some routes
	// survive) or fails outright when nothing survives — it must not crash
	// and must account for every destination it abandoned.
	m, err := hdl.ParseAndCheck(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := netlist.Elaborate(m)
	if err != nil {
		t.Fatal(err)
	}
	rep := &diag.Reporter{}
	res, err := Extract(n, Options{MaxAlts: 1, MaxTemplates: 10, Reporter: rep})
	if err != nil {
		if rep.Warns() == 0 {
			t.Errorf("total failure must still explain itself: %v, no warnings", err)
		}
		return
	}
	if res.Stats.Dropped == 0 {
		t.Error("MaxAlts=1 should drop at least one destination on tinySrc")
	}
	if got := rep.Warns(); got != res.Stats.Dropped {
		t.Errorf("warnings = %d, dropped = %d; want one warning per dropped destination", got, res.Stats.Dropped)
	}
	if res.Base.Len() == 0 {
		t.Error("degraded result should keep surviving templates")
	}
}

// TestExtractFaultpointDropsOneDestination injects a route explosion into a
// single destination and checks that exactly that destination is dropped
// while the rest of the instruction set survives intact.
func TestExtractFaultpointDropsOneDestination(t *testing.T) {
	m, err := hdl.ParseAndCheck(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := netlist.Elaborate(m)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Extract(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dests := full.Base.Destinations()
	if len(dests) < 2 {
		t.Fatalf("need >= 2 destinations, got %v", dests)
	}
	victim := dests[0]

	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Arm("ise.route.explosion", faultpoint.Action{Kind: faultpoint.KindError, Match: victim})
	rep := &diag.Reporter{}
	res, err := Extract(n, Options{Reporter: rep})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", res.Stats.Dropped)
	}
	if rep.Warns() != 1 {
		t.Errorf("warnings = %d, want 1: %v", rep.Warns(), rep.Diags())
	}
	for _, d := range res.Base.Destinations() {
		if d == victim {
			t.Errorf("victim destination %s still present", victim)
		}
	}
	// Every other destination is unaffected.
	want := make(map[string]bool)
	for _, d := range dests {
		if d != victim {
			want[d] = true
		}
	}
	for _, d := range res.Base.Destinations() {
		delete(want, d)
	}
	for d := range want {
		t.Errorf("destination %s lost collaterally", d)
	}
}

// TestExtractBudgetPartial stops extraction with an already-expired deadline:
// the result is empty/partial but Extract reports it rather than hanging.
func TestExtractBudgetPartial(t *testing.T) {
	m, err := hdl.ParseAndCheck(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := netlist.Elaborate(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := &diag.Reporter{}
	res, err := Extract(n, Options{Reporter: rep, Budget: &diag.Budget{Ctx: ctx}})
	if err != nil {
		// All destinations unvisited: acceptable only if warned.
		if rep.Warns() == 0 {
			t.Errorf("budget failure unexplained: %v", err)
		}
		return
	}
	if !res.Stats.Partial {
		t.Error("Stats.Partial not set under expired budget")
	}
	if rep.Warns() == 0 {
		t.Error("no warning for partial extraction")
	}
}

// TestExtractBudgetNodeCap bounds the BDD universe; extraction stops with a
// partial base once the cap is crossed.
func TestExtractBudgetNodeCap(t *testing.T) {
	m, err := hdl.ParseAndCheck(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := netlist.Elaborate(m)
	if err != nil {
		t.Fatal(err)
	}
	rep := &diag.Reporter{}
	res, err := Extract(n, Options{Reporter: rep, Budget: &diag.Budget{MaxBDDNodes: 1}})
	if err != nil {
		if rep.Warns() == 0 {
			t.Errorf("node-cap failure unexplained: %v", err)
		}
		return
	}
	if !res.Stats.Partial {
		t.Error("Stats.Partial not set under 1-node cap")
	}
}

func TestTemplateWidths(t *testing.T) {
	res := extract(t, tinySrc)
	for _, tpl := range res.Base.Templates {
		if tpl.Width <= 0 {
			t.Errorf("template %s has width %d", tpl, tpl.Width)
		}
		if tpl.Src.Width != tpl.Width {
			t.Errorf("template %s: src width %d != dest width %d", tpl, tpl.Src.Width, tpl.Width)
		}
	}
}
