// Package ise implements instruction-set extraction (ISE): it derives the
// complete set of valid RT templates from the elaborated netlist model
// (paper section 2; Leupers/Marwedel ED&TC 1995).
//
// ISE performs the paper's two steps:
//
//   - Enumeration of data transfer routes.  For every RT destination
//     (register, memory cell, primary output port) a backwards traversal of
//     the netlist collects all routes delivering a value within a single
//     machine cycle.  Traversal crosses interconnect, tristate busses and
//     combinational modules; it forks at multiple-input modules (CASE-
//     controlled functional units and multiplexers, bus drivers) and stops
//     at storage reads, primary inputs, hardwired constants and instruction
//     fields (immediates).  Every route yields a tree-shaped RT template.
//
//   - Analysis of control signals.  Conditions governing a route — guard
//     expressions, CASE selector matches and tristate enables — are traced
//     back through arbitrary decoder logic to the primary control sources:
//     instruction-word bits and mode-register bits.  Each template's
//     execution condition is a BDD over those bits; templates whose
//     condition is unsatisfiable (encoding conflicts, bus contention) are
//     discarded.  Conditions that depend on run-time data (e.g. a status
//     flag steering a conditional jump) are kept as residual dynamic
//     guards.
package ise

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/bitvec"
	"repro/internal/diag"
	"repro/internal/faultpoint"
	"repro/internal/hdl"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rtl"
)

// Options tunes extraction.
type Options struct {
	// MaxAlts bounds the number of alternative routes considered per
	// traversal point, guarding against pathological fan-in explosion.
	MaxAlts int
	// MaxTemplates bounds the final template count.
	MaxTemplates int
	// MSBFirstVars declares instruction-word BDD variables MSB-first
	// instead of LSB-first (variable-order ablation; conditions are
	// typically decoded from high opcode bits, so order affects BDD size).
	MSBFirstVars bool
	// Reporter receives a warning for every destination dropped during
	// degraded extraction.  nil is safe: warnings are discarded.
	Reporter *diag.Reporter
	// Budget bounds extraction effort (deadline, BDD node cap).  When it
	// is exhausted mid-extraction, enumeration stops and the partial
	// template base built so far is returned.  nil means unlimited.
	Budget *diag.Budget
	// Obs receives per-destination traversal spans and the extraction
	// instruments (routes enumerated, templates discarded by reason, BDD
	// work).  nil is safe: instrumentation is skipped.
	Obs *obs.Scope
}

// DefaultOptions returns the limits used by the paper-scale models.
func DefaultOptions() Options {
	return Options{MaxAlts: 4096, MaxTemplates: 65536}
}

// VarMap records how BDD variables map onto control sources.
type VarMap struct {
	M *bdd.Manager
	// InsnVars[i] is the BDD variable index of instruction word bit i.
	InsnVars []int
	// ModeVars maps a mode storage qualified name to the BDD variable
	// indices of its bits (LSB first).
	ModeVars map[string][]int
}

// InsnWidth returns the instruction word width.
func (v *VarMap) InsnWidth() int { return len(v.InsnVars) }

// IsInsnVar reports whether BDD variable x is an instruction bit, returning
// the bit position.
func (v *VarMap) IsInsnVar(x int) (bit int, ok bool) {
	for i, iv := range v.InsnVars {
		if iv == x {
			return i, true
		}
	}
	return 0, false
}

// ModeVarOwner returns the mode storage owning BDD variable x, with the bit
// position, or "" when x is not a mode bit.
func (v *VarMap) ModeVarOwner(x int) (storage string, bit int) {
	for name, vars := range v.ModeVars {
		for i, mv := range vars {
			if mv == x {
				return name, i
			}
		}
	}
	return "", 0
}

// Stats reports extraction effort.
type Stats struct {
	RoutesEnumerated int // candidate templates before pruning
	Unsatisfiable    int // discarded: conflicting execution conditions
	// The paper's section 4 splits the unsatisfiable discards by cause;
	// UnsatEncoding + UnsatBus == Unsatisfiable.
	UnsatEncoding int // instruction-encoding conflicts (guards, CASE selectors)
	UnsatBus      int // tristate bus contention (exclusivity violated)
	// DiscardedBudget counts templates already enumerated but thrown away
	// because the extraction budget ran out mid-destination.
	DiscardedBudget int
	Templates       int // final template count
	BDDNodes        int // size of the BDD universe after extraction
	// Dropped counts RT destinations abandoned after route explosion,
	// unsupported constructs or recovered panics; the rest of the
	// instruction set is still extracted (degraded mode).
	Dropped int
	// Partial is set when the Budget ran out mid-extraction and later
	// destinations were never visited.
	Partial bool
}

// Result is the output of extraction.
type Result struct {
	Base  *rtl.Base
	Vars  *VarMap
	Stats Stats
	// Net is the netlist the base was extracted from.
	Net *netlist.Netlist
}

// Extract runs instruction-set extraction on an elaborated netlist.
//
// Extraction degrades gracefully: when route enumeration for one RT
// destination explodes past Options.MaxAlts, hits an unsupported construct
// or panics on a pipeline invariant, only that destination is dropped (with
// a warning on Options.Reporter) and the remaining instruction set is still
// extracted.  Extract returns an error only when nothing usable survives or
// the failure precedes enumeration.
func Extract(n *netlist.Netlist, opts Options) (*Result, error) {
	if opts.MaxAlts <= 0 {
		opts.MaxAlts = DefaultOptions().MaxAlts
	}
	if opts.MaxTemplates <= 0 {
		opts.MaxTemplates = DefaultOptions().MaxTemplates
	}
	x := &extractor{
		n:       n,
		opts:    opts,
		m:       bdd.New(),
		outMemo: make(map[string][]alt),
		symMemo: make(map[string]symResult),
		scope:   opts.Obs,
	}
	if reg := opts.Obs.Registry(); reg != nil {
		x.cRoutes = reg.Counter("record_ise_routes_enumerated_total",
			"Candidate data-transfer routes enumerated before pruning.")
		disc := reg.CounterVec("record_ise_templates_discarded_total",
			"Templates discarded during extraction, by reason.", "reason")
		x.cDiscEnc = disc.With("encoding-conflict")
		x.cDiscBus = disc.With("bus-contention")
		x.cDiscBudget = disc.With("budget")
		x.cDropped = reg.Counter("record_ise_destinations_dropped_total",
			"RT destinations abandoned during degraded extraction.")
		x.cTemplates = reg.Counter("record_ise_templates_extracted_total",
			"Templates delivered into the base.")
		x.m.Instrument(
			reg.Counter("record_bdd_nodes_allocated_total",
				"Canonical BDD nodes allocated during control-signal analysis."),
			reg.Counter("record_bdd_ite_ops_total",
				"BDD Ite operations (including recursive steps)."))
	}
	x.declareVars()
	if err := x.run(); err != nil {
		return nil, err
	}
	x.res.Stats.Templates = x.res.Base.Len()
	x.res.Stats.BDDNodes = x.m.Size()
	if x.res.Base.Len() == 0 && x.res.Stats.Dropped > 0 {
		return nil, fmt.Errorf("ise: no usable templates: all %d destinations dropped", x.res.Stats.Dropped)
	}
	return x.res, nil
}

// alt is one alternative route: a pattern with the conditions required to
// steer the hardware along it.
type alt struct {
	expr *rtl.Expr
	cond *bdd.Node
	dyn  []*rtl.Expr
}

type symResult struct {
	vec bitvec.Vec
	ok  bool
}

type extractor struct {
	n    *netlist.Netlist
	opts Options
	m    *bdd.Manager
	vars *VarMap
	res  *Result

	// Observability: per-destination spans hang off scope; counters are
	// resolved once in Extract (nil when uninstrumented).
	scope       *obs.Scope
	cRoutes     *obs.Counter
	cDiscEnc    *obs.Counter
	cDiscBus    *obs.Counter
	cDiscBudget *obs.Counter
	cDropped    *obs.Counter
	cTemplates  *obs.Counter

	outMemo map[string][]alt     // "inst.port" -> route alternatives
	symMemo map[string]symResult // "inst.port" -> symbolic control value

	// pending buffers the current destination's templates; they reach the
	// base only if the whole destination enumerates successfully, so a
	// dropped destination leaves no half-enumerated alternatives behind.
	pending []*rtl.Template
}

// declareVars declares instruction bits first (they dominate conditions),
// then mode-register bits.
func (x *extractor) declareVars() {
	v := &VarMap{M: x.m, ModeVars: make(map[string][]int)}
	v.InsnVars = make([]int, x.n.InsnWidth)
	if x.opts.MSBFirstVars {
		for i := x.n.InsnWidth - 1; i >= 0; i-- {
			v.InsnVars[i] = x.m.DeclareVar(fmt.Sprintf("I%d", i))
		}
	} else {
		for i := 0; i < x.n.InsnWidth; i++ {
			v.InsnVars[i] = x.m.DeclareVar(fmt.Sprintf("I%d", i))
		}
	}
	for _, s := range x.n.ModeStorages() {
		var bits []int
		for b := 0; b < s.Width(); b++ {
			bits = append(bits, x.m.DeclareVar(fmt.Sprintf("M.%s.%d", s.QName(), b)))
		}
		v.ModeVars[s.QName()] = bits
	}
	x.vars = v
	x.res = &Result{Base: rtl.NewBase(x.m), Vars: v, Net: x.n}
}

func (x *extractor) run() error {
	if err := faultpoint.Hit("ise.extract", x.n.Name); err != nil {
		return fmt.Errorf("ise: %w", err)
	}
	// RT destinations: every write statement of every data storage ...
	for _, s := range x.n.DataStorages() {
		inst := s.Inst
		for _, st := range inst.Mod.Stmts {
			if st.LHS.Var == nil || st.LHS.Name != s.Var.Name {
				continue
			}
			if stop := x.extractDest(s.QName(), func() error {
				return x.extractWrite(s, inst, st)
			}); stop {
				return nil
			}
		}
	}
	// ... plus primary output ports, in deterministic order.
	outs := make([]string, 0, len(x.n.PrimaryOut))
	for name := range x.n.PrimaryOut {
		outs = append(outs, name)
	}
	sort.Strings(outs)
	for _, name := range outs {
		drv := x.n.PrimaryOut[name]
		if stop := x.extractDest(name, func() error {
			alts, err := x.resolveDriver(drv)
			if err != nil {
				return err
			}
			for _, a := range alts {
				x.emit(&rtl.Template{
					Dest:     name,
					DestPort: true,
					Src:      a.expr,
					Width:    drv.Width,
					Cond:     rtl.ExecCond{Static: a.cond, Dynamic: a.dyn},
				})
			}
			return nil
		}); stop {
			return nil
		}
	}
	return nil
}

// extractDest enumerates one RT destination under a recovery boundary.
// A route error or recovered panic drops only this destination with a
// warning; budget exhaustion stops extraction entirely, keeping the
// partial base (stop=true).  Buffered templates reach the base only on
// success.  Each destination is one traversal span with its outcome and
// template count as attributes.
func (x *extractor) extractDest(dest string, fn func() error) (stop bool) {
	x.pending = x.pending[:0]
	sp, _ := x.scope.Start("ise.dest", obs.KV("dest", dest))
	defer sp.End()
	err := faultpoint.Hit("ise.route.explosion", dest)
	if err != nil {
		err = fmt.Errorf("ise: route explosion in %s (limit %d): %w", dest, x.opts.MaxAlts, err)
	} else {
		err = diag.Capture(func() error {
			if err := x.opts.Budget.Exceeded(); err != nil {
				return err
			}
			if err := x.opts.Budget.NodesExceeded(x.m.Size()); err != nil {
				return err
			}
			return fn()
		})
	}
	if err == nil {
		for _, t := range x.pending {
			x.res.Base.Add(t)
		}
		x.cTemplates.Add(len(x.pending))
		sp.SetAttr("templates", len(x.pending))
		sp.SetAttr("outcome", "ok")
		x.pending = x.pending[:0]
		return false
	}
	enumerated := len(x.pending)
	x.pending = x.pending[:0]
	var be *diag.BudgetError
	if errors.As(err, &be) {
		x.res.Stats.Partial = true
		x.res.Stats.DiscardedBudget += enumerated
		x.cDiscBudget.Add(enumerated)
		sp.SetAttr("outcome", "budget")
		x.opts.Reporter.Warnf("ise", diag.Pos{},
			"extraction budget exhausted at destination %s (%v); template base is partial", dest, err)
		return true
	}
	x.res.Stats.Dropped++
	x.cDropped.Inc()
	sp.SetAttr("outcome", "dropped")
	x.opts.Reporter.Warnf("ise", diag.Pos{},
		"dropping destination %s: %v; retargeting continues without it", dest, err)
	return false
}

// unsatEncoding records one template pruned because its execution
// condition conflicts with the instruction encoding; unsatBus one pruned
// because tristate-bus exclusivity cannot hold.
func (x *extractor) unsatEncoding() {
	x.res.Stats.Unsatisfiable++
	x.res.Stats.UnsatEncoding++
	x.cDiscEnc.Inc()
}

func (x *extractor) unsatBus() {
	x.res.Stats.Unsatisfiable++
	x.res.Stats.UnsatBus++
	x.cDiscBus.Inc()
}

// extractWrite enumerates templates for one guarded storage write.
func (x *extractor) extractWrite(s *netlist.Storage, inst *netlist.Inst, st *hdl.Stmt) error {
	// Guard condition.
	gCond, gDyn := x.m.True(), []*rtl.Expr(nil)
	if st.Guard != nil {
		c, d, err := x.condition(inst, st.Guard)
		if err != nil {
			return err
		}
		gCond, gDyn = c, d
	}
	if gCond == x.m.False() {
		x.unsatEncoding()
		return nil
	}

	// Destination address routes (for array storages).
	addrAlts := []alt{{expr: nil, cond: x.m.True()}}
	if st.LHS.Index != nil {
		var err error
		addrAlts, err = x.resolveModExpr(inst, st.LHS.Index)
		if err != nil {
			return err
		}
	}

	// Data routes.
	dataAlts, err := x.resolveModExpr(inst, st.RHS)
	if err != nil {
		return err
	}

	for _, aa := range addrAlts {
		for _, da := range dataAlts {
			cond := x.m.And(gCond, aa.cond, da.cond)
			x.res.Stats.RoutesEnumerated++
			x.cRoutes.Inc()
			if cond == x.m.False() {
				x.unsatEncoding()
				continue
			}
			dyn := concatDyn(gDyn, aa.dyn, da.dyn)
			x.emit(&rtl.Template{
				Dest:     s.QName(),
				DestAddr: aa.expr,
				Src:      da.expr,
				Width:    s.Width(),
				Cond:     rtl.ExecCond{Static: cond, Dynamic: dyn},
			})
		}
	}
	return nil
}

func (x *extractor) emit(t *rtl.Template) {
	if x.res.Base.Len()+len(x.pending) >= x.opts.MaxTemplates {
		return
	}
	x.pending = append(x.pending, t)
}

func concatDyn(ds ...[]*rtl.Expr) []*rtl.Expr {
	var out []*rtl.Expr
	for _, d := range ds {
		out = append(out, d...)
	}
	if len(out) == 0 {
		return nil
	}
	// Deduplicate structurally equal guards.
	var uniq []*rtl.Expr
	seen := make(map[string]bool)
	for _, g := range out {
		k := g.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, g)
		}
	}
	return uniq
}

// ----- symbolic control evaluation ------------------------------------

// symOut symbolically evaluates instance output port out over instruction
// and mode bits.  ok is false when the value depends on run-time data.
func (x *extractor) symOut(inst *netlist.Inst, out string) (bitvec.Vec, bool) {
	key := inst.Name + "." + out
	if r, hit := x.symMemo[key]; hit {
		return r.vec, r.ok
	}
	// Avoid infinite recursion on (already rejected) cycles.
	x.symMemo[key] = symResult{nil, false}
	vec, ok := x.symOutUncached(inst, out)
	x.symMemo[key] = symResult{vec, ok}
	return vec, ok
}

func (x *extractor) symOutUncached(inst *netlist.Inst, out string) (bitvec.Vec, bool) {
	// The instruction word itself.
	if inst == x.n.InsnInst && out == x.n.InsnPort {
		vec := make(bitvec.Vec, x.n.InsnWidth)
		for i, v := range x.vars.InsnVars {
			vec[i] = x.m.Var(v)
		}
		return vec, true
	}
	st := inst.OutStmt(out)
	if st == nil {
		return nil, false
	}
	return x.symModExpr(inst, st.RHS)
}

// symModExpr evaluates a module-scope expression symbolically.
func (x *extractor) symModExpr(inst *netlist.Inst, e hdl.Expr) (bitvec.Vec, bool) {
	switch ex := e.(type) {
	case *hdl.NumExpr:
		return bitvec.Const(x.m, ex.Val, ex.Width), true
	case *hdl.IdentExpr:
		switch {
		case ex.Port != nil:
			return x.symPort(inst, ex.Name)
		case ex.Var != nil:
			// Storage read: only mode registers are static control.
			s := x.n.Storages[inst.Name+"."+ex.Var.Name]
			if s != nil && s.Mode && s.Size() == 1 {
				bits := x.vars.ModeVars[s.QName()]
				vec := make(bitvec.Vec, len(bits))
				for i, v := range bits {
					vec[i] = x.m.Var(v)
				}
				return vec, true
			}
			return nil, false
		case ex.Const != nil:
			return bitvec.Const(x.m, ex.Const.Value, ex.Width), true
		}
		return nil, false
	case *hdl.IndexExpr:
		if ex.IsSlice {
			base, ok := x.symModExpr(inst, ex.X)
			if !ok {
				return nil, false
			}
			return bitvec.Slice(base, ex.SliceHi, ex.SliceLo), true
		}
		return nil, false // data memory read: dynamic
	case *hdl.BinExpr:
		a, okA := x.symModExpr(inst, ex.X)
		if !okA {
			return nil, false
		}
		b, okB := x.symModExpr(inst, ex.Y)
		if !okB {
			return nil, false
		}
		return x.symBin(ex.Op, a, b)
	case *hdl.UnExpr:
		a, ok := x.symModExpr(inst, ex.X)
		if !ok {
			return nil, false
		}
		switch ex.Op {
		case rtl.OpNeg:
			return bitvec.Neg(x.m, a), true
		case rtl.OpNot:
			return bitvec.Not(x.m, a), true
		}
		return nil, false
	case *hdl.CaseExpr:
		sel, ok := x.symModExpr(inst, ex.Sel)
		if !ok {
			return nil, false
		}
		var out bitvec.Vec
		if ex.Else != nil {
			out, ok = x.symModExpr(inst, ex.Else)
			if !ok {
				return nil, false
			}
		} else {
			out = bitvec.Const(x.m, 0, ex.Width)
		}
		for _, a := range ex.Alts {
			body, okB := x.symModExpr(inst, a.Body)
			if !okB {
				return nil, false
			}
			out = bitvec.Mux(x.m, bitvec.EqConst(x.m, sel, a.Val), body, out)
		}
		return out, true
	}
	return nil, false
}

func (x *extractor) symBin(op rtl.Op, a, b bitvec.Vec) (bitvec.Vec, bool) {
	m := x.m
	switch op {
	case rtl.OpAdd:
		return bitvec.Add(m, a, b), true
	case rtl.OpSub:
		return bitvec.Sub(m, a, b), true
	case rtl.OpMul:
		return bitvec.Mul(m, a, b), true
	case rtl.OpAnd:
		return bitvec.And(m, a, b), true
	case rtl.OpOr:
		return bitvec.Or(m, a, b), true
	case rtl.OpXor:
		return bitvec.Xor(m, a, b), true
	case rtl.OpEq:
		return bitvec.Bool(bitvec.Eq(m, a, b)), true
	case rtl.OpNe:
		return bitvec.Bool(m.Not(bitvec.Eq(m, a, b))), true
	case rtl.OpLt:
		return bitvec.Bool(bitvec.Ult(m, a, b)), true
	case rtl.OpGe:
		return bitvec.Bool(m.Not(bitvec.Ult(m, a, b))), true
	case rtl.OpGt:
		return bitvec.Bool(bitvec.Ult(m, b, a)), true
	case rtl.OpLe:
		return bitvec.Bool(m.Not(bitvec.Ult(m, b, a))), true
	case rtl.OpShl, rtl.OpShr, rtl.OpAshr:
		if k, ok := bitvec.IsConst(m, b); ok {
			switch op {
			case rtl.OpShl:
				return bitvec.ShlConst(m, a, int(k)), true
			case rtl.OpShr:
				return bitvec.ShrConst(m, a, int(k)), true
			default:
				return bitvec.AshrConst(m, a, int(k)), true
			}
		}
	}
	return nil, false
}

// symPort symbolically evaluates an instance input port through its driver.
func (x *extractor) symPort(inst *netlist.Inst, port string) (bitvec.Vec, bool) {
	d := inst.Drivers[port]
	if d == nil {
		return nil, false
	}
	return x.symDriver(d)
}

func (x *extractor) symDriver(d *netlist.Driver) (bitvec.Vec, bool) {
	switch d.Kind {
	case netlist.DriveConst:
		return bitvec.Const(x.m, d.Const, d.Width), true
	case netlist.DrivePort:
		full, ok := x.symOut(d.Inst, d.Port)
		if !ok {
			return nil, false
		}
		return bitvec.Slice(full, d.Hi, d.Lo), true
	case netlist.DriveBus:
		// A bus is static control only when it has a single unconditional
		// driver.
		if len(d.Bus.Drivers) == 1 && d.Bus.Drivers[0].When == nil {
			full, ok := x.symDriver(d.Bus.Drivers[0].Src)
			if !ok {
				return nil, false
			}
			return bitvec.Slice(full, d.Hi, d.Lo), true
		}
		return nil, false
	case netlist.DrivePrimary:
		return nil, false // run-time data
	}
	return nil, false
}

// condition converts a module-scope Boolean expression into a static BDD
// condition, or a residual dynamic guard when it depends on run-time data.
func (x *extractor) condition(inst *netlist.Inst, e hdl.Expr) (*bdd.Node, []*rtl.Expr, error) {
	if vec, ok := x.symModExpr(inst, e); ok {
		return bitvec.Truth(x.m, vec), nil, nil
	}
	g, err := x.guardExpr(inst, e)
	if err != nil {
		return nil, nil, err
	}
	return x.m.True(), []*rtl.Expr{g}, nil
}

// guardExpr lowers a dynamic condition to an RT expression (no forking:
// guards must be mux-free routes).
func (x *extractor) guardExpr(inst *netlist.Inst, e hdl.Expr) (*rtl.Expr, error) {
	alts, err := x.resolveModExpr(inst, e)
	if err != nil {
		return nil, err
	}
	if len(alts) != 1 || alts[0].cond != x.m.True() || len(alts[0].dyn) != 0 {
		return nil, fmt.Errorf("ise: dynamic guard %s in %s is steered by control logic; unsupported", e, inst.Name)
	}
	return alts[0].expr, nil
}

// ----- route enumeration ----------------------------------------------

// resolveModExpr enumerates route alternatives for a module-scope
// expression in instance inst.
func (x *extractor) resolveModExpr(inst *netlist.Inst, e hdl.Expr) ([]alt, error) {
	switch ex := e.(type) {
	case *hdl.NumExpr:
		return []alt{{expr: rtl.NewConst(ex.Val, ex.Width), cond: x.m.True()}}, nil

	case *hdl.IdentExpr:
		switch {
		case ex.Port != nil:
			return x.resolvePort(inst, ex.Name)
		case ex.Var != nil:
			q := inst.Name + "." + ex.Var.Name
			return []alt{{expr: rtl.NewRead(q, ex.Var.Width, nil), cond: x.m.True()}}, nil
		case ex.Const != nil:
			return []alt{{expr: rtl.NewConst(ex.Const.Value, ex.Width), cond: x.m.True()}}, nil
		}
		return nil, fmt.Errorf("ise: unresolved identifier %s", ex.Name)

	case *hdl.IndexExpr:
		if ex.IsSlice {
			alts, err := x.resolveModExpr(inst, ex.X)
			if err != nil {
				return nil, err
			}
			out := make([]alt, 0, len(alts))
			for _, a := range alts {
				out = append(out, alt{
					expr: rtl.NewSlice(ex.SliceHi, ex.SliceLo, a.expr),
					cond: a.cond, dyn: a.dyn,
				})
			}
			return out, nil
		}
		// Array storage read: enumerate address routes.
		id := ex.X.(*hdl.IdentExpr)
		q := inst.Name + "." + id.Var.Name
		addrAlts, err := x.resolveModExpr(inst, ex.Hi)
		if err != nil {
			return nil, err
		}
		out := make([]alt, 0, len(addrAlts))
		for _, a := range addrAlts {
			out = append(out, alt{
				expr: rtl.NewRead(q, id.Var.Width, a.expr),
				cond: a.cond, dyn: a.dyn,
			})
		}
		return out, nil

	case *hdl.BinExpr:
		as, err := x.resolveModExpr(inst, ex.X)
		if err != nil {
			return nil, err
		}
		bs, err := x.resolveModExpr(inst, ex.Y)
		if err != nil {
			return nil, err
		}
		var out []alt
		for _, a := range as {
			if err := x.opts.Budget.Exceeded(); err != nil {
				return nil, err
			}
			for _, b := range bs {
				cond := x.m.And(a.cond, b.cond)
				if cond == x.m.False() {
					continue
				}
				out = append(out, alt{
					expr: rtl.NewOp(ex.Op, ex.Width, a.expr, b.expr),
					cond: cond,
					dyn:  concatDyn(a.dyn, b.dyn),
				})
				if len(out) > x.opts.MaxAlts {
					return nil, fmt.Errorf("ise: route explosion in %s (limit %d)", inst.Name, x.opts.MaxAlts)
				}
			}
		}
		return out, nil

	case *hdl.UnExpr:
		as, err := x.resolveModExpr(inst, ex.X)
		if err != nil {
			return nil, err
		}
		out := make([]alt, 0, len(as))
		for _, a := range as {
			out = append(out, alt{
				expr: rtl.NewOp(ex.Op, ex.Width, a.expr),
				cond: a.cond, dyn: a.dyn,
			})
		}
		return out, nil

	case *hdl.CaseExpr:
		return x.resolveCase(inst, ex)
	}
	return nil, fmt.Errorf("ise: cannot enumerate routes for %s", e)
}

// resolveCase forks traversal across CASE alternatives, constraining each
// branch by the selector condition.
func (x *extractor) resolveCase(inst *netlist.Inst, ce *hdl.CaseExpr) ([]alt, error) {
	selVec, selStatic := x.symModExpr(inst, ce.Sel)
	var selDynBase *rtl.Expr
	if !selStatic {
		g, err := x.guardExpr(inst, ce.Sel)
		if err != nil {
			return nil, err
		}
		selDynBase = g
	}

	branchCond := func(val int64) (*bdd.Node, []*rtl.Expr) {
		if selStatic {
			return bitvec.EqConst(x.m, selVec, val), nil
		}
		selW := ce.Sel.ExprWidth()
		g := rtl.NewOp(rtl.OpEq, 1, selDynBase, rtl.NewConst(val, selW))
		return x.m.True(), []*rtl.Expr{g}
	}

	var out []alt
	addBranch := func(cond *bdd.Node, dyn []*rtl.Expr, body hdl.Expr) error {
		if err := x.opts.Budget.Exceeded(); err != nil {
			return err
		}
		if cond == x.m.False() {
			x.unsatEncoding()
			return nil
		}
		alts, err := x.resolveModExpr(inst, body)
		if err != nil {
			return err
		}
		for _, a := range alts {
			c := x.m.And(cond, a.cond)
			if c == x.m.False() {
				x.unsatEncoding()
				continue
			}
			out = append(out, alt{expr: a.expr, cond: c, dyn: concatDyn(dyn, a.dyn)})
			if len(out) > x.opts.MaxAlts {
				return fmt.Errorf("ise: route explosion in CASE of %s (limit %d)", inst.Name, x.opts.MaxAlts)
			}
		}
		return nil
	}

	for _, a := range ce.Alts {
		c, dyn := branchCond(a.Val)
		if err := addBranch(c, dyn, a.Body); err != nil {
			return nil, err
		}
	}
	if ce.Else != nil {
		if selStatic {
			// ELSE condition: none of the listed values match.
			c := x.m.True()
			for _, a := range ce.Alts {
				c = x.m.And(c, x.m.Not(bitvec.EqConst(x.m, selVec, a.Val)))
			}
			if err := addBranch(c, nil, ce.Else); err != nil {
				return nil, err
			}
		} else {
			selW := ce.Sel.ExprWidth()
			var dyn []*rtl.Expr
			for _, a := range ce.Alts {
				dyn = append(dyn, rtl.NewOp(rtl.OpNe, 1, selDynBase, rtl.NewConst(a.Val, selW)))
			}
			if err := addBranch(x.m.True(), dyn, ce.Else); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// resolvePort enumerates routes arriving at an instance input port.
func (x *extractor) resolvePort(inst *netlist.Inst, port string) ([]alt, error) {
	d := inst.Drivers[port]
	if d == nil {
		return nil, fmt.Errorf("ise: input port %s.%s undriven", inst.Name, port)
	}
	return x.resolveDriver(d)
}

// resolveDriver enumerates routes through a driver, applying its bit slice.
func (x *extractor) resolveDriver(d *netlist.Driver) ([]alt, error) {
	switch d.Kind {
	case netlist.DriveConst:
		return []alt{{expr: rtl.NewConst(d.Const, d.Width), cond: x.m.True()}}, nil

	case netlist.DrivePrimary:
		w := x.n.PrimaryIn[d.Primary].Width
		e := rtl.NewSlice(d.Hi, d.Lo, rtl.NewPort(d.Primary, w))
		return []alt{{expr: e, cond: x.m.True()}}, nil

	case netlist.DrivePort:
		alts, err := x.resolveOut(d.Inst, d.Port)
		if err != nil {
			return nil, err
		}
		out := make([]alt, 0, len(alts))
		for _, a := range alts {
			out = append(out, alt{
				expr: rtl.NewSlice(d.Hi, d.Lo, a.expr),
				cond: a.cond, dyn: a.dyn,
			})
		}
		return out, nil

	case netlist.DriveBus:
		alts, err := x.resolveBus(d.Bus)
		if err != nil {
			return nil, err
		}
		out := make([]alt, 0, len(alts))
		for _, a := range alts {
			out = append(out, alt{
				expr: rtl.NewSlice(d.Hi, d.Lo, a.expr),
				cond: a.cond, dyn: a.dyn,
			})
		}
		return out, nil
	}
	return nil, fmt.Errorf("ise: bad driver kind %d", d.Kind)
}

// resolveBus forks across tristate drivers.  Selecting driver i requires
// its enable condition true and every other statically-analysable enable
// false (otherwise the routes would contend on the bus).
func (x *extractor) resolveBus(b *netlist.Bus) ([]alt, error) {
	// Precompute enable conditions.
	type enable struct {
		cond   *bdd.Node
		dyn    *rtl.Expr
		static bool
	}
	enables := make([]enable, len(b.Drivers))
	for i, bd := range b.Drivers {
		if bd.When == nil {
			enables[i] = enable{cond: x.m.True(), static: true}
			continue
		}
		// WHEN conditions are connect-scope expressions.
		if vec, ok := x.symConnExpr(bd.When); ok {
			enables[i] = enable{cond: bitvec.Truth(x.m, vec), static: true}
			continue
		}
		g, err := x.connGuardExpr(bd.When)
		if err != nil {
			return nil, err
		}
		enables[i] = enable{cond: x.m.True(), dyn: g, static: false}
	}

	var out []alt
	for i, bd := range b.Drivers {
		if err := x.opts.Budget.Exceeded(); err != nil {
			return nil, err
		}
		cond := enables[i].cond
		var dyn []*rtl.Expr
		if enables[i].dyn != nil {
			dyn = append(dyn, enables[i].dyn)
		}
		// Exclusivity against other drivers.
		for j := range b.Drivers {
			if j == i {
				continue
			}
			if enables[j].static {
				cond = x.m.And(cond, x.m.Not(enables[j].cond))
			}
		}
		if cond == x.m.False() {
			x.unsatBus()
			continue
		}
		srcAlts, err := x.resolveDriver(bd.Src)
		if err != nil {
			return nil, err
		}
		for _, a := range srcAlts {
			c := x.m.And(cond, a.cond)
			if c == x.m.False() {
				x.unsatBus()
				continue
			}
			out = append(out, alt{expr: a.expr, cond: c, dyn: concatDyn(dyn, a.dyn)})
			if len(out) > x.opts.MaxAlts {
				return nil, fmt.Errorf("ise: route explosion on bus %s (limit %d)", b.Name, x.opts.MaxAlts)
			}
		}
	}
	return out, nil
}

// resolveOut enumerates routes producing an instance output port; results
// are memoized (patterns and conditions are immutable).
func (x *extractor) resolveOut(inst *netlist.Inst, out string) ([]alt, error) {
	key := inst.Name + "." + out
	if alts, ok := x.outMemo[key]; ok {
		return alts, nil
	}
	// The instruction word read is an immediate field.
	if inst == x.n.InsnInst && out == x.n.InsnPort {
		alts := []alt{{expr: rtl.NewInsnField(x.n.InsnWidth-1, 0), cond: x.m.True()}}
		x.outMemo[key] = alts
		return alts, nil
	}
	st := inst.OutStmt(out)
	if st == nil {
		return nil, fmt.Errorf("ise: output %s has no behavior", key)
	}
	alts, err := x.resolveModExpr(inst, st.RHS)
	if err != nil {
		return nil, err
	}
	x.outMemo[key] = alts
	return alts, nil
}

// ----- connect-scope expressions (bus WHEN conditions) -----------------

func (x *extractor) symConnExpr(e hdl.Expr) (bitvec.Vec, bool) {
	switch ex := e.(type) {
	case *hdl.NumExpr:
		return bitvec.Const(x.m, ex.Val, ex.Width), true
	case *hdl.PortSelExpr:
		inst := x.n.InstByName[ex.Part]
		return x.symOut(inst, ex.Port)
	case *hdl.IndexExpr:
		if !ex.IsSlice {
			return nil, false
		}
		base, ok := x.symConnExpr(ex.X)
		if !ok {
			return nil, false
		}
		return bitvec.Slice(base, ex.SliceHi, ex.SliceLo), true
	case *hdl.BinExpr:
		a, okA := x.symConnExpr(ex.X)
		if !okA {
			return nil, false
		}
		b, okB := x.symConnExpr(ex.Y)
		if !okB {
			return nil, false
		}
		return x.symBin(ex.Op, a, b)
	case *hdl.UnExpr:
		a, ok := x.symConnExpr(ex.X)
		if !ok {
			return nil, false
		}
		switch ex.Op {
		case rtl.OpNeg:
			return bitvec.Neg(x.m, a), true
		case rtl.OpNot:
			return bitvec.Not(x.m, a), true
		}
	}
	return nil, false
}

// connGuardExpr lowers a dynamic WHEN condition to an RT expression.
func (x *extractor) connGuardExpr(e hdl.Expr) (*rtl.Expr, error) {
	switch ex := e.(type) {
	case *hdl.NumExpr:
		return rtl.NewConst(ex.Val, ex.Width), nil
	case *hdl.PortSelExpr:
		inst := x.n.InstByName[ex.Part]
		alts, err := x.resolveOut(inst, ex.Port)
		if err != nil {
			return nil, err
		}
		if len(alts) != 1 || alts[0].cond != x.m.True() || len(alts[0].dyn) != 0 {
			return nil, fmt.Errorf("ise: dynamic bus enable %s is itself multiplexed; unsupported", e)
		}
		return alts[0].expr, nil
	case *hdl.IndexExpr:
		if !ex.IsSlice {
			break
		}
		base, err := x.connGuardExpr(ex.X)
		if err != nil {
			return nil, err
		}
		return rtl.NewSlice(ex.SliceHi, ex.SliceLo, base), nil
	case *hdl.BinExpr:
		a, err := x.connGuardExpr(ex.X)
		if err != nil {
			return nil, err
		}
		b, err := x.connGuardExpr(ex.Y)
		if err != nil {
			return nil, err
		}
		return rtl.NewOp(ex.Op, ex.Width, a, b), nil
	case *hdl.UnExpr:
		a, err := x.connGuardExpr(ex.X)
		if err != nil {
			return nil, err
		}
		return rtl.NewOp(ex.Op, ex.Width, a), nil
	}
	return nil, fmt.Errorf("ise: unsupported dynamic bus enable %s", e)
}
