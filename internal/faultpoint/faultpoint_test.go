package faultpoint

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestUnarmedIsNil(t *testing.T) {
	Reset()
	if err := Hit("ise.route.explosion", "ram.m"); err != nil {
		t.Fatalf("unarmed hit: %v", err)
	}
}

func TestErrorFiresOnceByDefault(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Action{Kind: KindError})
	err := Hit("p", "d1")
	var f *Fault
	if !errors.As(err, &f) || f.Name != "p" || f.Detail != "d1" {
		t.Fatalf("first hit: %v", err)
	}
	if err := Hit("p", "d2"); err != nil {
		t.Fatalf("second hit should be disarmed: %v", err)
	}
	if len(Armed()) != 0 {
		t.Errorf("armed = %v", Armed())
	}
}

func TestMatchFilter(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Action{Kind: KindError, Match: "ram.m"})
	if err := Hit("p", "alu.acc"); err != nil {
		t.Fatalf("non-matching detail fired: %v", err)
	}
	if err := Hit("p", "cpu.ram.m"); err == nil {
		t.Fatal("matching detail did not fire")
	}
}

func TestTimes(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Action{Kind: KindError, Times: 2})
	fired := 0
	for i := 0; i < 5; i++ {
		if Hit("p", "") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d times, want 2", fired)
	}
	Reset()
	Arm("q", Action{Kind: KindError, Times: -1})
	for i := 0; i < 3; i++ {
		if Hit("q", "") == nil {
			t.Fatal("unlimited action stopped firing")
		}
	}
}

func TestPanicKind(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Action{Kind: KindPanic})
	defer func() {
		v := recover()
		f, ok := v.(*Fault)
		if !ok || f.Name != "p" {
			t.Errorf("recovered %v", v)
		}
	}()
	Hit("p", "")
	t.Fatal("unreachable: Hit should have panicked")
}

func TestDelayKind(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Action{Kind: KindDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Hit("p", ""); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delay too short: %v", d)
	}
}

func TestArmSpec(t *testing.T) {
	Reset()
	defer Reset()
	err := ArmSpec("a=error, b@ram.m=error*3, c=panic, d=delay:1ms*")
	if err != nil {
		t.Fatal(err)
	}
	if got := Armed(); len(got) != 4 {
		t.Fatalf("armed = %v", got)
	}
	if Hit("a", "") == nil {
		t.Error("a did not fire")
	}
	if Hit("b", "other") != nil {
		t.Error("b fired without match")
	}
	for i := 0; i < 3; i++ {
		if Hit("b", "x.ram.m") == nil {
			t.Error("b stopped early")
		}
	}
	if Hit("b", "x.ram.m") != nil {
		t.Error("b exceeded times")
	}
	for i := 0; i < 2; i++ {
		if Hit("d", "") != nil {
			t.Error("delay returned error")
		}
	}
}

func TestArmSpecErrors(t *testing.T) {
	Reset()
	defer Reset()
	for _, bad := range []string{"noequals", "=error", "a=", "a=warble", "a=delay:xyz", "a=error*0", "a=error*x", "a=error:arg"} {
		if err := ArmSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
		Reset()
	}
	if err := ArmSpec(""); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
	if err := ArmSpec(" , "); err != nil {
		t.Errorf("blank items rejected: %v", err)
	}
}

func TestRecordHits(t *testing.T) {
	Reset()
	defer Reset()
	RecordHits(true)
	// Hit counting requires at least one armed action for the fast path to
	// enter the slow path, so arm an unrelated name.
	Arm("other", Action{Kind: KindError})
	Hit("p", "")
	Hit("p", "")
	if Hits("p") != 2 {
		t.Errorf("hits = %d", Hits("p"))
	}
}

func TestConcurrentHits(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Action{Kind: KindError, Times: 100})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if Hit("p", "") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 100 {
		t.Errorf("fired %d, want exactly 100", fired)
	}
}

// TestSitesMatchHitCalls keeps the Sites table in sync with the
// faultpoint.Hit calls actually planted in the tree.
func TestSitesMatchHitCalls(t *testing.T) {
	re := regexp.MustCompile(`faultpoint\.Hit\("([^"]+)"`)
	planted := make(map[string]bool)
	err := filepath.WalkDir("../..", func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range re.FindAllStringSubmatch(string(data), -1) {
			planted[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	listed := make(map[string]bool)
	for _, s := range Sites() {
		listed[s.Name] = true
		if !planted[s.Name] {
			t.Errorf("Sites lists %s but no faultpoint.Hit(%q, ...) exists", s.Name, s.Name)
		}
	}
	for name := range planted {
		if !listed[name] {
			t.Errorf("faultpoint.Hit(%q, ...) is planted but missing from Sites", name)
		}
	}
}
