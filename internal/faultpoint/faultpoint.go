// Package faultpoint provides named, test-activatable fault-injection
// hooks planted across the retargeting pipeline (ISE, BDD, grammar,
// simulator, ...), so graceful-degradation paths can be exercised
// deterministically from tests and from the driver's -faultpoints flag.
//
// A hook site calls
//
//	if err := faultpoint.Hit("ise.route.explosion", destName); err != nil { ... }
//
// and behaves normally (nil, a single atomic load) unless a matching
// Action has been armed.  Actions either return an error, panic (to test
// recovery boundaries), or sleep (to test deadline budgets).  An action can
// be restricted to hits whose detail string contains a substring, and by
// default fires exactly once, so "break one instruction, keep the rest"
// scenarios are a one-liner.
//
// The planted sites are listed by Sites (and by `record -faultpoints
// list`): eight pipeline sites from the retargeting path plus six
// service-layer sites (cache disk write, disk scrub verification, worker
// spawn, response encode, speculative pre-warm, anti-entropy push)
// exercised by the recordd chaos harness.
package faultpoint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site describes one planted faultpoint: its name and where in the
// pipeline or service it fires.
type Site struct {
	Name  string
	Where string
}

// sites is the authoritative list of planted faultpoints.  Adding a
// Hit call to new code means adding a row here; TestSitesMatchHits keeps
// the two in sync.
var sites = []Site{
	{"bdd.ite", "BDD apply step (panics on error kind)"},
	{"bitvec.slice", "symbolic word slicing (panics on error kind)"},
	{"cflow.block", "per basic-block compilation (detail: block name)"},
	{"grammar.rule", "per-template rule lowering (detail: template dest)"},
	{"hdl.parse", "start of MDL parsing"},
	{"ise.extract", "start of instruction-set extraction (detail: model name)"},
	{"ise.route.explosion", "per RT-destination enumeration (detail: destination)"},
	{"rcache.disk.write", "artifact cache disk write (detail: artifact key)"},
	{"rcache.scrub.verify", "disk scrubber artifact verification (detail: artifact key)"},
	{"recordd.antientropy.push", "anti-entropy artifact push to a peer (detail: artifact key)"},
	{"recordd.prewarm.retarget", "recordd speculative pre-warm of a hot model (detail: artifact key)"},
	{"recordd.response.encode", "recordd response serialization"},
	{"recordd.worker.spawn", "recordd worker-pool slot handoff"},
	{"sim.step", "per simulated machine cycle (detail: netlist name)"},
}

// Sites returns every planted faultpoint, sorted by name.
func Sites() []Site {
	out := make([]Site, len(sites))
	copy(out, sites)
	return out
}

// Kind selects what an armed action does when its faultpoint is hit.
type Kind int

// Action kinds.
const (
	KindError Kind = iota // Hit returns a *Fault error
	KindPanic             // Hit panics with a *Fault
	KindDelay             // Hit sleeps for Action.Delay, then returns nil
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Action describes one armed fault.
type Action struct {
	Kind Kind
	// Match restricts the action to hits whose detail contains this
	// substring; empty matches every hit.
	Match string
	// Times is how often the action fires before disarming itself;
	// <= 0 means every matching hit.
	Times int
	// Delay is the sleep duration for KindDelay.
	Delay time.Duration
}

// Fault is the error returned (or panicked) by a triggered faultpoint.
type Fault struct {
	Name   string
	Detail string
}

func (f *Fault) Error() string {
	if f.Detail != "" {
		return fmt.Sprintf("injected fault %s (at %s)", f.Name, f.Detail)
	}
	return fmt.Sprintf("injected fault %s", f.Name)
}

type entry struct {
	act  Action
	left int // remaining firings; <0 = unlimited
}

var (
	mu      sync.Mutex
	armed   map[string][]*entry
	nArmed  atomic.Int32
	hitLog  map[string]int
	logHits bool
)

// Arm registers an action for the named faultpoint.  Multiple actions may
// be armed on one name; the first matching, non-exhausted one fires.
func Arm(name string, a Action) {
	mu.Lock()
	defer mu.Unlock()
	if armed == nil {
		armed = make(map[string][]*entry)
	}
	left := a.Times
	if left == 0 {
		left = 1
	}
	armed[name] = append(armed[name], &entry{act: a, left: left})
	nArmed.Add(1)
}

// Disarm removes every action armed on name.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if es, ok := armed[name]; ok {
		nArmed.Add(int32(-len(es)))
		delete(armed, name)
	}
}

// Reset disarms everything and clears the hit log (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	hitLog = nil
	logHits = false
	nArmed.Store(0)
}

// Armed returns the sorted names that still have at least one live
// (non-exhausted) action.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(armed))
	for n, es := range armed {
		for _, e := range es {
			if e.left != 0 {
				out = append(out, n)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// RecordHits makes Hit count every invocation (armed or not) so tests can
// assert that a site is actually exercised.
func RecordHits(on bool) {
	mu.Lock()
	defer mu.Unlock()
	logHits = on
	if on && hitLog == nil {
		hitLog = make(map[string]int)
	}
}

// Hits returns how often the named site was hit since RecordHits(true).
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	return hitLog[name]
}

// Hit is the hook planted at instrumented sites.  With nothing armed it is
// a single atomic load.  When an armed action matches, KindError returns a
// *Fault, KindPanic panics with a *Fault, and KindDelay sleeps.
func Hit(name, detail string) error {
	if nArmed.Load() == 0 {
		return nil
	}
	mu.Lock()
	if logHits {
		hitLog[name]++
	}
	var fire *Action
	for _, e := range armed[name] {
		if e.left == 0 {
			continue
		}
		if e.act.Match != "" && !strings.Contains(detail, e.act.Match) {
			continue
		}
		if e.left > 0 {
			e.left--
			if e.left == 0 {
				nArmed.Add(-1)
			}
		}
		a := e.act
		fire = &a
		break
	}
	mu.Unlock()
	if fire == nil {
		return nil
	}
	switch fire.Kind {
	case KindPanic:
		panic(&Fault{Name: name, Detail: detail})
	case KindDelay:
		time.Sleep(fire.Delay)
		return nil
	default:
		return &Fault{Name: name, Detail: detail}
	}
}

// ArmSpec arms faultpoints from a comma-separated textual spec, the syntax
// of the driver's -faultpoints flag:
//
//	name[@match]=kind[:arg][*times]
//
// kind is error, panic or delay; arg is the sleep duration for delay
// (default 10ms); times is the firing count (default 1, "*" alone = every
// hit).  Examples:
//
//	ise.route.explosion=error
//	ise.route.explosion@ram.m=error
//	sim.step=delay:5ms*
//	bdd.ite=panic*3
func ArmSpec(spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, rhs, ok := strings.Cut(item, "=")
		if !ok || name == "" || rhs == "" {
			return fmt.Errorf("faultpoint: bad spec %q (want name[@match]=kind[:arg][*times])", item)
		}
		var a Action
		name, a.Match, _ = strings.Cut(name, "@")
		if star := strings.LastIndex(rhs, "*"); star >= 0 {
			times := rhs[star+1:]
			rhs = rhs[:star]
			if times == "" {
				a.Times = -1
			} else {
				n, err := strconv.Atoi(times)
				if err != nil || n <= 0 {
					return fmt.Errorf("faultpoint: bad repeat count %q in %q", times, item)
				}
				a.Times = n
			}
		}
		kind, arg, _ := strings.Cut(rhs, ":")
		switch kind {
		case "error":
			a.Kind = KindError
		case "panic":
			a.Kind = KindPanic
		case "delay":
			a.Kind = KindDelay
			a.Delay = 10 * time.Millisecond
			if arg != "" {
				d, err := time.ParseDuration(arg)
				if err != nil {
					return fmt.Errorf("faultpoint: bad delay %q in %q: %v", arg, item, err)
				}
				a.Delay = d
			}
		default:
			return fmt.Errorf("faultpoint: unknown kind %q in %q (want error, panic or delay)", kind, item)
		}
		if a.Kind != KindDelay && arg != "" {
			return fmt.Errorf("faultpoint: kind %s takes no argument (got %q in %q)", kind, arg, item)
		}
		Arm(name, a)
	}
	return nil
}
