package grammar

import "fmt"

// Restore rebuilds a Grammar from its serialized parts — the nonterminal
// table, the ordered rule list and the machine spec — without re-deriving
// anything from a template base.  The rule-index maps (RulesByKey,
// ChainRules, StartRules) are left empty: install decoded match tables with
// burs.RestoreParser, or recompute them with Reindex.
func Restore(ntNames []string, rules []*Rule, spec Spec) (*Grammar, error) {
	if len(ntNames) == 0 || ntNames[START] != "START" {
		return nil, fmt.Errorf("grammar: restore: nonterminal table must start with START")
	}
	g := &Grammar{
		NTNames:    ntNames,
		ntIdx:      make(map[string]int, len(ntNames)),
		Rules:      rules,
		RulesByKey: make(map[string][]*Rule),
		ChainRules: make(map[int][]*Rule),
		StartRules: make(map[string]*Rule),
		Spec:       spec,
	}
	for i, name := range ntNames[1:] {
		if _, dup := g.ntIdx[name]; dup {
			return nil, fmt.Errorf("grammar: restore: duplicate nonterminal %q", name)
		}
		g.ntIdx[name] = i + 1
	}
	for i, r := range rules {
		if r == nil || r.Pat == nil {
			return nil, fmt.Errorf("grammar: restore: rule %d is incomplete", i)
		}
		if r.ID != i {
			return nil, fmt.Errorf("grammar: restore: rule at position %d has id %d", i, r.ID)
		}
		if r.LHS < 0 || r.LHS >= len(ntNames) {
			return nil, fmt.Errorf("grammar: restore: rule %d has LHS %d out of range", i, r.LHS)
		}
		if err := checkPat(r.Pat, len(ntNames)); err != nil {
			return nil, fmt.Errorf("grammar: restore: rule %d: %w", i, err)
		}
	}
	return g, nil
}

func checkPat(p *Pat, numNT int) error {
	if p.Kind == PatNT && (p.NT < 0 || p.NT >= numNT) {
		return fmt.Errorf("pattern nonterminal %d out of range", p.NT)
	}
	for _, k := range p.Kids {
		if err := checkPat(k, numNT); err != nil {
			return err
		}
	}
	return nil
}

// Reindex rebuilds the rule-index maps from the rule list, using the same
// bucketing as Build.  Bucket order is rule-id order (the order Build
// appended them), so a reindexed grammar selects code identically.
func (g *Grammar) Reindex() {
	g.RulesByKey = make(map[string][]*Rule)
	g.ChainRules = make(map[int][]*Rule)
	g.StartRules = make(map[string]*Rule)
	for _, r := range g.Rules {
		switch {
		case r.Kind == KindStart:
			g.StartRules[r.Dest] = r
		case r.IsChain():
			g.ChainRules[r.Pat.NT] = append(g.ChainRules[r.Pat.NT], r)
		default:
			key := r.Pat.TermKey()
			g.RulesByKey[key] = append(g.RulesByKey[key], r)
		}
	}
}
