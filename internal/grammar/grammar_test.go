package grammar

import (
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/rtl"
)

func buildTestGrammar(t *testing.T) (*Grammar, *rtl.Base) {
	t.Helper()
	m := bdd.New()
	base := rtl.NewBase(m)
	add := func(tpl *rtl.Template) {
		tpl.Cond = rtl.ExecCond{Static: m.True()}
		tpl.Width = 8
		base.Add(tpl)
	}
	imm := rtl.NewInsnField(3, 0)
	add(&rtl.Template{Dest: "acc.r",
		Src: rtl.NewOp(rtl.OpAdd, 8,
			rtl.NewRead("acc.r", 8, nil),
			rtl.NewRead("ram.m", 8, imm))})
	add(&rtl.Template{Dest: "acc.r", Src: rtl.NewConst(0, 8)}) // hardwired clear
	add(&rtl.Template{Dest: "out", Src: rtl.NewRead("acc.r", 8, nil)})
	add(&rtl.Template{Dest: "acc.r",
		Src: rtl.NewSlice(7, 0, rtl.NewOp(rtl.OpMul, 16,
			rtl.NewRead("x.r", 16, nil), rtl.NewRead("x.r", 16, nil)))})
	add(&rtl.Template{Dest: "acc.r", Src: rtl.NewPort("pin", 8)})

	spec := Spec{
		Storages: []StorageInfo{
			{Name: "acc.r", Width: 8, Size: 1},
			{Name: "x.r", Width: 16, Size: 1},
			{Name: "ram.m", Width: 8, Size: 16},
		},
		OutPorts: []string{"out"},
	}
	g, err := Build(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	return g, base
}

func TestBuildBasics(t *testing.T) {
	g, _ := buildTestGrammar(t)
	// START + acc.r + x.r + ram.m + out.
	if g.NumNT() != 5 {
		t.Fatalf("NTs = %d (%v)", g.NumNT(), g.NTNames)
	}
	if g.NTNames[START] != "START" {
		t.Error("NT 0 must be START")
	}
	st := g.Stats()
	if st.StartRules != 4 { // 3 storages + 1 port
		t.Errorf("start rules = %d", st.StartRules)
	}
	if st.RTRules != 5 {
		t.Errorf("rt rules = %d", st.RTRules)
	}
	if st.StopRules != 2 { // acc.r and x.r (ram.m is addressable)
		t.Errorf("stop rules = %d", st.StopRules)
	}
}

func TestStartRuleCosts(t *testing.T) {
	g, _ := buildTestGrammar(t)
	for dest, r := range g.StartRules {
		if r.Cost != 0 {
			t.Errorf("start rule for %s has cost %d", dest, r.Cost)
		}
		if r.Kind != KindStart {
			t.Errorf("start rule for %s has kind %v", dest, r.Kind)
		}
	}
	if _, ok := g.StartRules["out"]; !ok {
		t.Error("primary output port must have a start rule")
	}
}

func TestRTCostsAndStopCosts(t *testing.T) {
	g, _ := buildTestGrammar(t)
	for _, r := range g.Rules {
		switch r.Kind {
		case KindRT:
			if r.Cost != 1 {
				t.Errorf("RT rule %s cost %d", r, r.Cost)
			}
			if r.Template == nil {
				t.Errorf("RT rule %s lost its template", r)
			}
		case KindStop:
			if r.Cost != 0 {
				t.Errorf("stop rule %s cost %d", r, r.Cost)
			}
		}
	}
}

func TestPatternLowering(t *testing.T) {
	g, _ := buildTestGrammar(t)
	// Find the MAC-ish rule and inspect its pattern.
	var mac *Rule
	for _, r := range g.Rules {
		if r.Kind == KindRT && r.Pat.Kind == PatOp && r.Pat.Op == rtl.OpAdd {
			mac = r
		}
	}
	if mac == nil {
		t.Fatal("add rule missing")
	}
	if mac.Pat.Kids[0].Kind != PatNT || g.NTNames[mac.Pat.Kids[0].NT] != "acc.r" {
		t.Errorf("left kid = %+v", mac.Pat.Kids[0])
	}
	right := mac.Pat.Kids[1]
	if right.Kind != PatMem || right.Storage != "ram.m" {
		t.Fatalf("right kid = %+v", right)
	}
	if right.Kids[0].Kind != PatImm || right.Kids[0].ImmHi != 3 {
		t.Errorf("address pattern = %+v", right.Kids[0])
	}
}

func TestSubjectKeys(t *testing.T) {
	cases := []struct {
		e    *rtl.Expr
		want string
	}{
		{rtl.NewOp(rtl.OpAdd, 8, rtl.NewConst(0, 8), rtl.NewConst(0, 8)), "op:+:8"},
		{rtl.NewRead("acc.r", 8, nil), "reg:acc.r"},
		{rtl.NewRead("ram.m", 8, rtl.NewConst(1, 4)), "mem:ram.m"},
		{rtl.NewConst(7, 8), "#const"},
		{rtl.NewPort("pin", 8), "port:pin"},
		{rtl.NewInsnField(3, 0), "#const"},
	}
	for i, c := range cases {
		if got := SubjectKey(c.e); got != c.want {
			t.Errorf("case %d: key = %q, want %q", i, got, c.want)
		}
	}
	// Slice subject key.
	sl := &rtl.Expr{Kind: rtl.Slice, Hi: 7, Lo: 0, Width: 8,
		Kids: []*rtl.Expr{rtl.NewOp(rtl.OpMul, 16, rtl.NewConst(0, 16), rtl.NewConst(0, 16))}}
	if SubjectKey(sl) != "slice:7:0" {
		t.Errorf("slice key = %q", SubjectKey(sl))
	}
}

func TestMatchesLeaf(t *testing.T) {
	imm := &Pat{Kind: PatImm, ImmHi: 3, ImmLo: 0, Width: 4}
	if !imm.MatchesLeaf(rtl.NewConst(15, 8)) {
		t.Error("15 must fit a 4-bit field")
	}
	if imm.MatchesLeaf(rtl.NewConst(16, 8)) {
		t.Error("16 must not fit a 4-bit field")
	}
	if !imm.MatchesLeaf(rtl.NewConst(-8, 8)) {
		t.Error("-8 must fit signed 4-bit")
	}
	hc := &Pat{Kind: PatConst, Val: 0, Width: 8}
	if !hc.MatchesLeaf(rtl.NewConst(0, 8)) || hc.MatchesLeaf(rtl.NewConst(1, 8)) {
		t.Error("hardwired const matching wrong")
	}
	reg := &Pat{Kind: PatReg, Storage: "acc.r"}
	if !reg.MatchesLeaf(rtl.NewRead("acc.r", 8, nil)) {
		t.Error("reg leaf must match")
	}
	if reg.MatchesLeaf(rtl.NewRead("acc.r", 8, rtl.NewConst(0, 4))) {
		t.Error("reg pattern matched addressable read")
	}
	op := &Pat{Kind: PatOp, Op: rtl.OpAdd, Width: 8,
		Kids: []*Pat{{Kind: PatNT}, {Kind: PatNT}}}
	if op.MatchesLeaf(rtl.NewOp(rtl.OpAdd, 16, rtl.NewConst(0, 16), rtl.NewConst(0, 16))) {
		t.Error("width mismatch must fail")
	}
}

func TestUnknownStorageRejected(t *testing.T) {
	m := bdd.New()
	base := rtl.NewBase(m)
	base.Add(&rtl.Template{Dest: "acc.r", Width: 8,
		Src:  rtl.NewRead("ghost.r", 8, nil),
		Cond: rtl.ExecCond{Static: m.True()}})
	spec := Spec{Storages: []StorageInfo{{Name: "acc.r", Width: 8, Size: 1}}}
	if _, err := Build(base, spec); err == nil || !strings.Contains(err.Error(), "ghost.r") {
		t.Fatalf("expected unknown-storage error, got %v", err)
	}
}

func TestTemplateWithUnknownDestSkipped(t *testing.T) {
	m := bdd.New()
	base := rtl.NewBase(m)
	base.Add(&rtl.Template{Dest: "pc.r", Width: 8,
		Src:  rtl.NewConst(0, 8),
		Cond: rtl.ExecCond{Static: m.True()}})
	spec := Spec{Storages: []StorageInfo{{Name: "acc.r", Width: 8, Size: 1}}}
	g, err := Build(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats().RTRules != 0 {
		t.Error("template with out-of-spec destination must be skipped")
	}
}

func TestGrammarRendering(t *testing.T) {
	g, _ := buildTestGrammar(t)
	s := g.String()
	for _, want := range []string{"START", "ASSIGN", "acc.r", "ram.m[IMM[3:0]]", "[0]", "[1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
