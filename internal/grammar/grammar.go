// Package grammar translates an (extended) RT template base into a tree
// grammar, following paper section 3.1.
//
// The grammar G = (Σ_T, Σ_N, S, R, c) is constructed so that exactly the
// expression trees of the intermediate representation can be derived from
// the start symbol:
//
//   - Terminals: the designated ASSIGN symbol plus Term(x) for every
//     sequential component, primary port, hardware operator and hardwired
//     constant.  Instruction-field immediates appear as IMM terminals that
//     match any program constant fitting the field.
//
//   - Nonterminals: the designated START symbol plus NonTerm(x) for every
//     sequential component and primary port — registers double as
//     "temporary locations" for intermediate results, which is what makes
//     special-purpose register allocation fall out of tree parsing.
//
//   - Rules: start rules START → ASSIGN(Term(dest), NonTerm(dest)) at cost
//     0 for every possible ET destination; one RT rule NonTerm(dest) →
//     L(src) at cost 1 per template (table 2 of the paper); and stop rules
//     NonTerm(reg) → Term(reg) at cost 0 terminating derivations at leaves.
//
// Patterns and subject trees share the rtl.Expr vocabulary; a pattern
// position is either a terminal node or a nonterminal placeholder.
package grammar

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/diag"
	"repro/internal/faultpoint"
	"repro/internal/obs"

	"repro/internal/netlist"
	"repro/internal/rtl"
)

// PatKind discriminates pattern node roles.
type PatKind int

// Pattern node kinds.
const (
	PatNT    PatKind = iota // nonterminal placeholder
	PatOp                   // hardware operator terminal
	PatReg                  // scalar storage terminal (stop-rule leaves)
	PatMem                  // addressable storage terminal; Kids[0] = address
	PatImm                  // instruction-field immediate terminal
	PatConst                // hardwired constant terminal
	PatPort                 // primary input port terminal
	PatSlice                // subword-select terminal; one kid
)

// Pat is a tree-grammar pattern node.  The JSON tags define the
// retarget-artifact wire form (internal/artifact).
type Pat struct {
	Kind    PatKind `json:"k,omitempty"`
	NT      int     `json:"nt,omitempty"`   // PatNT: nonterminal index
	Op      rtl.Op  `json:"op,omitempty"`   // PatOp
	Width   int     `json:"w,omitempty"`    // result width (all kinds)
	Storage string  `json:"st,omitempty"`   // PatReg / PatMem: qualified storage name
	ImmHi   int     `json:"ihi,omitempty"`  // PatImm: instruction field bits
	ImmLo   int     `json:"ilo,omitempty"`  // PatImm
	Val     int64   `json:"val,omitempty"`  // PatConst
	Port    string  `json:"port,omitempty"` // PatPort
	Hi      int     `json:"hi,omitempty"`   // PatSlice
	Lo      int     `json:"lo,omitempty"`
	Kids    []*Pat  `json:"kids,omitempty"`
}

// TermKey returns the rule-indexing bucket for this pattern node (empty for
// nonterminals).  Subject trees map into the same buckets via SubjectKey.
func (p *Pat) TermKey() string {
	switch p.Kind {
	case PatOp:
		return fmt.Sprintf("op:%s:%d", p.Op, p.Width)
	case PatReg:
		return "reg:" + p.Storage
	case PatMem:
		return "mem:" + p.Storage
	case PatImm, PatConst:
		return "#const"
	case PatPort:
		return "port:" + p.Port
	case PatSlice:
		return fmt.Sprintf("slice:%d:%d", p.Hi, p.Lo)
	}
	return ""
}

// SubjectKey returns the rule bucket a subject tree node falls into.
func SubjectKey(e *rtl.Expr) string {
	switch e.Kind {
	case rtl.OpApp:
		return fmt.Sprintf("op:%s:%d", e.Op, e.Width)
	case rtl.Read:
		if e.Addr() != nil {
			return "mem:" + e.Storage
		}
		return "reg:" + e.Storage
	case rtl.Const:
		return "#const"
	case rtl.PortRef:
		return "port:" + e.Port
	case rtl.Slice:
		return fmt.Sprintf("slice:%d:%d", e.Hi, e.Lo)
	case rtl.InsnField:
		return "#const" // fields in subject trees behave like immediates
	}
	return ""
}

// MatchesLeaf reports whether terminal pattern p matches subject node e at
// this level (kids are matched by the parser).
func (p *Pat) MatchesLeaf(e *rtl.Expr) bool {
	switch p.Kind {
	case PatOp:
		return e.Kind == rtl.OpApp && e.Op == p.Op && e.Width == p.Width &&
			len(e.Kids) == len(p.Kids)
	case PatReg:
		return e.Kind == rtl.Read && e.Addr() == nil && e.Storage == p.Storage
	case PatMem:
		return e.Kind == rtl.Read && e.Addr() != nil && e.Storage == p.Storage
	case PatImm:
		return e.Kind == rtl.Const && fitsField(e.Val, p.ImmHi-p.ImmLo+1)
	case PatConst:
		// Hardwired constants match by value; the surrounding operator
		// node already checks widths, and literal widths are inference
		// artifacts (a shift amount infers at minimal width).
		return e.Kind == rtl.Const && e.Val == p.Val
	case PatPort:
		return e.Kind == rtl.PortRef && e.Port == p.Port
	case PatSlice:
		return e.Kind == rtl.Slice && e.Hi == p.Hi && e.Lo == p.Lo
	}
	return false
}

// fitsField reports whether v can be encoded in a w-bit instruction field
// (unsigned or two's-complement signed).
func fitsField(v int64, w int) bool {
	if w >= 64 {
		return true
	}
	if v >= 0 {
		return v < 1<<uint(w)
	}
	return v >= -(1 << uint(w-1))
}

func (p *Pat) String() string {
	switch p.Kind {
	case PatNT:
		return fmt.Sprintf("<%d>", p.NT)
	case PatOp:
		if len(p.Kids) == 1 {
			return fmt.Sprintf("%s(%s)", p.Op, p.Kids[0])
		}
		return fmt.Sprintf("(%s %s %s)", p.Kids[0], p.Op, p.Kids[1])
	case PatReg:
		return p.Storage
	case PatMem:
		return fmt.Sprintf("%s[%s]", p.Storage, p.Kids[0])
	case PatImm:
		return fmt.Sprintf("IMM[%d:%d]", p.ImmHi, p.ImmLo)
	case PatConst:
		return fmt.Sprintf("%d", p.Val)
	case PatPort:
		return p.Port
	case PatSlice:
		return fmt.Sprintf("%s[%d:%d]", p.Kids[0], p.Hi, p.Lo)
	}
	return "?"
}

// RuleKind classifies rules per the paper's three groups.
type RuleKind int

// Rule kinds.
const (
	KindStart RuleKind = iota
	KindRT
	KindStop
)

func (k RuleKind) String() string {
	switch k {
	case KindStart:
		return "start"
	case KindRT:
		return "rt"
	case KindStop:
		return "stop"
	}
	return "?"
}

// Rule is one grammar rule "LHS → Pattern" with cost and provenance.
type Rule struct {
	ID       int
	Kind     RuleKind
	LHS      int // nonterminal index (START for start rules)
	Pat      *Pat
	Cost     int
	Template *rtl.Template // KindRT: the originating template
	Dest     string        // KindStart: the destination this rule targets
}

// IsChain reports whether the rule's pattern is a bare nonterminal (a chain
// rule for the dynamic-programming closure).
func (r *Rule) IsChain() bool { return r.Pat.Kind == PatNT }

func (r *Rule) String() string {
	return fmt.Sprintf("#%d %s: <%d> -> %s (cost %d)", r.ID, r.Kind, r.LHS, r.Pat, r.Cost)
}

// Grammar is the constructed tree grammar.
type Grammar struct {
	// NTNames[i] names nonterminal i; index 0 is START.
	NTNames []string
	ntIdx   map[string]int

	Rules []*Rule
	// RulesByKey indexes non-chain RT and stop rules by root terminal
	// bucket.
	RulesByKey map[string][]*Rule
	// ChainRules[src] lists chain rules deriving from nonterminal src.
	ChainRules map[int][]*Rule
	// StartRules maps destination name to its start rule.
	StartRules map[string]*Rule

	// StorageWidths/Sizes echo the machine spec for clients.
	Spec Spec
}

// START is the index of the start symbol.
const START = 0

// NT returns the index for the nonterminal of object name (a storage
// qualified name or port name), or -1.
func (g *Grammar) NT(name string) int {
	if i, ok := g.ntIdx[name]; ok {
		return i
	}
	return -1
}

// NumNT returns the number of nonterminals.
func (g *Grammar) NumNT() int { return len(g.NTNames) }

// StorageInfo describes one sequential component to the grammar builder.
type StorageInfo struct {
	Name  string // qualified name
	Width int
	Size  int // 1 for plain registers
}

// Spec is the machine information the grammar builder needs beyond the
// template base.
type Spec struct {
	Storages []StorageInfo
	OutPorts []string
}

// SpecFromNetlist derives a Spec from an elaborated netlist (data storages
// plus primary output ports).
func SpecFromNetlist(n *netlist.Netlist) Spec {
	var s Spec
	for _, st := range n.DataStorages() {
		s.Storages = append(s.Storages, StorageInfo{
			Name: st.QName(), Width: st.Width(), Size: st.Size(),
		})
	}
	for name := range n.PrimaryOut {
		s.OutPorts = append(s.OutPorts, name)
	}
	sort.Strings(s.OutPorts)
	return s
}

// Build constructs the tree grammar from a template base and machine spec.
func Build(base *rtl.Base, spec Spec) (*Grammar, error) {
	return BuildReported(base, spec, nil)
}

// BuildObs is BuildReported with instrumentation: the finished grammar's
// rule counts land in the scope's registry, broken down by rule kind, so
// `record -stats` and the recordd /metrics endpoint report grammar size
// without recomputing Stats.  scope may be nil.
func BuildObs(base *rtl.Base, spec Spec, rep *diag.Reporter, scope *obs.Scope) (*Grammar, error) {
	g, err := BuildReported(base, spec, rep)
	if err != nil {
		return nil, err
	}
	if reg := scope.Registry(); reg != nil {
		st := g.Stats()
		rules := reg.CounterVec("record_grammar_rules_total",
			"tree-grammar rules constructed, by rule kind", "kind")
		rules.With("start").Add(st.StartRules)
		rules.With("rt").Add(st.RTRules)
		rules.With("stop").Add(st.StopRules)
		reg.Counter("record_grammar_nonterminals_total",
			"tree-grammar nonterminals constructed").Add(st.Nonterminals)
	}
	return g, nil
}

// BuildReported is Build with degraded-mode diagnostics: a template that
// cannot be lowered into a pattern is skipped with a warning on rep (its RT
// simply stays unselectable) instead of failing the whole build.  The build
// fails only when no selectable rule survives.  rep may be nil.
func BuildReported(base *rtl.Base, spec Spec, rep *diag.Reporter) (*Grammar, error) {
	g := &Grammar{
		ntIdx:      make(map[string]int),
		RulesByKey: make(map[string][]*Rule),
		ChainRules: make(map[int][]*Rule),
		StartRules: make(map[string]*Rule),
		Spec:       spec,
	}
	g.NTNames = append(g.NTNames, "START")

	addNT := func(name string) int {
		if i, ok := g.ntIdx[name]; ok {
			return i
		}
		i := len(g.NTNames)
		g.NTNames = append(g.NTNames, name)
		g.ntIdx[name] = i
		return i
	}

	// Nonterminals: SEQ ∪ PORTS.
	for _, s := range spec.Storages {
		addNT(s.Name)
	}
	for _, p := range spec.OutPorts {
		addNT(p)
	}

	addRule := func(r *Rule) {
		r.ID = len(g.Rules)
		g.Rules = append(g.Rules, r)
		switch {
		case r.Kind == KindStart:
			g.StartRules[r.Dest] = r
		case r.IsChain():
			g.ChainRules[r.Pat.NT] = append(g.ChainRules[r.Pat.NT], r)
		default:
			key := r.Pat.TermKey()
			g.RulesByKey[key] = append(g.RulesByKey[key], r)
		}
	}

	// 1. Start rules, cost 0.
	for _, s := range spec.Storages {
		addRule(&Rule{Kind: KindStart, LHS: START, Dest: s.Name, Cost: 0,
			Pat: &Pat{Kind: PatNT, NT: g.ntIdx[s.Name], Width: s.Width}})
	}
	for _, p := range spec.OutPorts {
		addRule(&Rule{Kind: KindStart, LHS: START, Dest: p, Cost: 0,
			Pat: &Pat{Kind: PatNT, NT: g.ntIdx[p], Width: 0}})
	}

	// 2. RT rules, cost 1.
	var skipErr error
	skipped, rtRules := 0, 0
	for _, t := range base.Templates {
		if len(t.Cond.Dynamic) > 0 {
			// Templates with residual dynamic guards (conditional jumps,
			// flag-steered transfers) execute only under run-time
			// conditions and are not selectable as unconditional ET
			// covers.
			continue
		}
		lhs, ok := g.ntIdx[t.Dest]
		if !ok {
			// Destination outside the spec (e.g. the PC of a machine whose
			// spec excludes it): skip rather than fail, the template simply
			// is not selectable.
			continue
		}
		var pat *Pat
		err := faultpoint.Hit("grammar.rule", t.Dest)
		if err == nil {
			pat, err = g.lower(t.Src)
		}
		if err != nil {
			err = fmt.Errorf("template %d (%s): %w", t.ID, t, err)
			if skipErr == nil {
				skipErr = err
			}
			skipped++
			rep.Warnf("grammar", diag.Pos{}, "skipping %v; its RT stays unselectable", err)
			continue
		}
		addRule(&Rule{Kind: KindRT, LHS: lhs, Pat: pat, Cost: 1, Template: t})
		rtRules++
	}
	if skipped > 0 && rtRules == 0 {
		return nil, fmt.Errorf("grammar: no selectable rules survive lowering: %w", skipErr)
	}

	// 3. Stop rules, cost 0, for plain registers.
	for _, s := range spec.Storages {
		if s.Size != 1 {
			continue
		}
		addRule(&Rule{Kind: KindStop, LHS: g.ntIdx[s.Name], Cost: 0,
			Pat: &Pat{Kind: PatReg, Storage: s.Name, Width: s.Width}})
	}
	return g, nil
}

// LowerPattern converts an RT expression pattern (such as a template's
// destination-address pattern) into a grammar pattern; clients use it to
// match addressing modes against subject address trees.
func (g *Grammar) LowerPattern(e *rtl.Expr) (*Pat, error) { return g.lower(e) }

// lower converts a template source expression into a pattern per table 2 of
// the paper.
func (g *Grammar) lower(e *rtl.Expr) (*Pat, error) {
	switch e.Kind {
	case rtl.Const:
		return &Pat{Kind: PatConst, Val: e.Val, Width: e.Width}, nil
	case rtl.InsnField:
		return &Pat{Kind: PatImm, ImmHi: e.Hi, ImmLo: e.Lo, Width: e.Width}, nil
	case rtl.PortRef:
		return &Pat{Kind: PatPort, Port: e.Port, Width: e.Width}, nil
	case rtl.Read:
		if e.Addr() == nil {
			nt, ok := g.ntIdx[e.Storage]
			if !ok {
				return nil, fmt.Errorf("grammar: storage %s not in spec", e.Storage)
			}
			return &Pat{Kind: PatNT, NT: nt, Width: e.Width}, nil
		}
		addr, err := g.lower(e.Addr())
		if err != nil {
			return nil, err
		}
		return &Pat{Kind: PatMem, Storage: e.Storage, Width: e.Width,
			Kids: []*Pat{addr}}, nil
	case rtl.Slice:
		kid, err := g.lower(e.Kids[0])
		if err != nil {
			return nil, err
		}
		return &Pat{Kind: PatSlice, Hi: e.Hi, Lo: e.Lo, Width: e.Width,
			Kids: []*Pat{kid}}, nil
	case rtl.OpApp:
		kids := make([]*Pat, len(e.Kids))
		for i, k := range e.Kids {
			p, err := g.lower(k)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		return &Pat{Kind: PatOp, Op: e.Op, Width: e.Width, Kids: kids}, nil
	}
	return nil, fmt.Errorf("grammar: cannot lower expression %s", e)
}

// Stats summarizes the grammar for diagnostics and the retargeting report.
type Stats struct {
	Nonterminals int
	Terminals    int
	StartRules   int
	RTRules      int
	StopRules    int
	ChainRules   int
}

// Stats computes summary counts.
func (g *Grammar) Stats() Stats {
	st := Stats{Nonterminals: len(g.NTNames)}
	terms := make(map[string]bool)
	var walkTerms func(p *Pat)
	walkTerms = func(p *Pat) {
		if p.Kind != PatNT {
			terms[p.TermKey()] = true
		}
		for _, k := range p.Kids {
			walkTerms(k)
		}
	}
	for _, r := range g.Rules {
		switch r.Kind {
		case KindStart:
			st.StartRules++
		case KindRT:
			st.RTRules++
			walkTerms(r.Pat)
		case KindStop:
			st.StopRules++
			walkTerms(r.Pat)
		}
		if r.Kind != KindStart && r.IsChain() {
			st.ChainRules++
		}
	}
	st.Terminals = len(terms) + 1 // + ASSIGN
	return st
}

// String renders the grammar in a BNF-like form.
func (g *Grammar) String() string {
	var b strings.Builder
	for _, r := range g.Rules {
		lhs := g.NTNames[r.LHS]
		switch r.Kind {
		case KindStart:
			fmt.Fprintf(&b, "%-8s -> ASSIGN(%s, %s)  [0]\n", lhs, r.Dest, g.patString(r.Pat))
		default:
			fmt.Fprintf(&b, "%-8s -> %s  [%d]\n", lhs, g.patString(r.Pat), r.Cost)
		}
	}
	return b.String()
}

func (g *Grammar) patString(p *Pat) string {
	if p.Kind == PatNT {
		return g.NTNames[p.NT]
	}
	if len(p.Kids) == 0 {
		return p.String()
	}
	parts := make([]string, len(p.Kids))
	for i, k := range p.Kids {
		parts[i] = g.patString(k)
	}
	switch p.Kind {
	case PatOp:
		if len(parts) == 1 {
			return fmt.Sprintf("%s(%s)", p.Op, parts[0])
		}
		return fmt.Sprintf("(%s %s %s)", parts[0], p.Op, parts[1])
	case PatMem:
		return fmt.Sprintf("%s[%s]", p.Storage, parts[0])
	case PatSlice:
		return fmt.Sprintf("%s[%d:%d]", parts[0], p.Hi, p.Lo)
	}
	return p.String()
}
