// Package hdl implements the MDL hardware description language front end:
// lexer, parser, abstract syntax tree and semantic checker.
//
// MDL is a MIMOLA-flavored netlist language.  A processor model consists of
// module definitions (I/O interface plus a behavior given as concurrent,
// optionally guarded assignments — paper section 2), part instantiations,
// tristate busses, and interconnect.  Special part flags mark the
// instruction memory, mode registers and the program counter.  The checker
// resolves names, infers and validates bit widths and rejects structurally
// invalid models, producing an AST that internal/netlist elaborates into
// the internal graph model.
package hdl

import (
	"fmt"
	"strings"

	"repro/internal/rtl"
)

// Dir is a module port direction.
type Dir int

// Port directions.
const (
	DirIn Dir = iota
	DirOut
)

func (d Dir) String() string {
	if d == DirIn {
		return "IN"
	}
	return "OUT"
}

// PartFlag marks special roles of part instances.
type PartFlag int

// Part flags.
const (
	FlagNone        PartFlag = iota
	FlagInstruction          // instruction memory: output is the instruction word
	FlagMode                 // mode register: contents are quasi-static control
	FlagPC                   // program counter register
)

func (f PartFlag) String() string {
	switch f {
	case FlagInstruction:
		return "INSTRUCTION"
	case FlagMode:
		return "MODE"
	case FlagPC:
		return "PC"
	}
	return ""
}

// Model is a parsed processor description.
type Model struct {
	Name     string
	Consts   []*ConstDecl
	Modules  []*Module
	Ports    []*PrimaryPort
	Buses    []*BusDecl
	Parts    []*Part
	Connects []*Connect

	// Resolved by Check:
	ModuleByName map[string]*Module
	PartByName   map[string]*Part
	BusByName    map[string]*BusDecl
	PortByName   map[string]*PrimaryPort
	ConstByName  map[string]int64
}

// ConstDecl is a named integer constant (typically a word width).
type ConstDecl struct {
	Name  string
	Value int64
	Pos   Pos
}

// Module is a hardware module definition.
type Module struct {
	Name  string
	Ports []*ModPort
	Vars  []*VarDecl
	Stmts []*Stmt
	Pos   Pos

	PortByName map[string]*ModPort
	VarByName  map[string]*VarDecl
}

// IsSequential reports whether the module contains storage.
func (m *Module) IsSequential() bool { return len(m.Vars) > 0 }

// ModPort is a port in a module's interface.
type ModPort struct {
	Name     string
	Dir      Dir
	WidthRaw Expr // width expression as parsed (number or const name)
	Width    int  // resolved by Check
	Pos      Pos
}

// VarDecl is module-local storage: Size cells of Width bits (Size 1 for
// plain registers).
type VarDecl struct {
	Name     string
	WidthRaw Expr
	SizeRaw  Expr // nil for scalar
	Width    int
	Size     int
	Pos      Pos
}

// Stmt is a concurrent assignment, optionally guarded:
//
//	AT guard DO lhs <- rhs;
//	lhs <- rhs;
type Stmt struct {
	Guard Expr // nil when unconditional
	LHS   *LValue
	RHS   Expr
	Pos   Pos
}

// LValue is an assignment target: an output port, or storage with an
// optional cell index.
type LValue struct {
	Name  string
	Index Expr // nil for ports and scalar vars
	Pos   Pos

	// Resolved by Check: exactly one of Port/Var is non-nil.
	Port *ModPort
	Var  *VarDecl
}

// PrimaryPort is a processor-level I/O port.
type PrimaryPort struct {
	Name     string
	Dir      Dir
	WidthRaw Expr
	Width    int
	Pos      Pos
}

// BusDecl declares a tristate bus.
type BusDecl struct {
	Name     string
	WidthRaw Expr
	Width    int
	Pos      Pos
}

// Part instantiates a module.
type Part struct {
	Name    string
	ModName string
	Flag    PartFlag
	Pos     Pos

	Module *Module // resolved by Check
}

// Connect is an interconnect statement: Sink <- Src [WHEN cond].
// WHEN is only legal when the sink is a bus (a tristate driver).
type Connect struct {
	SinkPart string // "" when sink is a bus or primary output port
	SinkPort string // port name, bus name or primary output name
	Src      Expr
	When     Expr // nil unless a conditional bus driver
	Pos      Pos
}

// SinkName renders the sink for diagnostics.
func (c *Connect) SinkName() string {
	if c.SinkPart == "" {
		return c.SinkPort
	}
	return c.SinkPart + "." + c.SinkPort
}

// Expr is an MDL expression node.  Widths are filled in by the checker.
type Expr interface {
	ExprPos() Pos
	ExprWidth() int
	String() string
}

// NumExpr is an integer literal.  Its width is inferred from context.
type NumExpr struct {
	Val   int64
	Width int
	Pos   Pos
}

// IdentExpr references a module port, module var, named constant, bus, or
// primary port depending on context (resolved by the checker).
type IdentExpr struct {
	Name  string
	Width int
	Pos   Pos

	// Resolution results (at most one non-nil / true):
	Port    *ModPort
	Var     *VarDecl
	Primary *PrimaryPort
	Bus     *BusDecl
	Const   *ConstDecl
}

// PortSelExpr references a part's port ("part.port"), used in CONNECT
// sources and WHEN conditions.
type PortSelExpr struct {
	Part  string
	Port  string
	Width int
	Pos   Pos

	PartRef *Part
	PortRef *ModPort
}

// IndexExpr is indexing or bit slicing: X[Hi] or X[Hi:Lo].
// For storage vars it is a cell index (Lo == nil); for ports/buses it is a
// bit slice with constant bounds.
type IndexExpr struct {
	X     Expr
	Hi    Expr
	Lo    Expr // nil for single index
	Width int
	Pos   Pos

	// Resolved by Check:
	IsSlice          bool // bit slice (constant bounds) vs storage cell index
	SliceHi, SliceLo int
}

// BinExpr is a binary operator application.
type BinExpr struct {
	Op    rtl.Op
	X, Y  Expr
	Width int
	Pos   Pos
}

// UnExpr is a unary operator application.  Op is one of rtl.OpNeg,
// rtl.OpNot; '!' is parsed as comparison-with-zero and represented as
// OpEq against 0 by the checker, so it never reaches UnExpr.
type UnExpr struct {
	Op    rtl.Op
	X     Expr
	Width int
	Pos   Pos
}

// CaseExpr is a CASE selector OF value: expr; ... [ELSE: expr;] END.
type CaseExpr struct {
	Sel   Expr
	Alts  []CaseAlt
	Else  Expr // nil when absent
	Width int
	Pos   Pos
}

// CaseAlt is one alternative of a CASE expression.
type CaseAlt struct {
	Val  int64
	Body Expr
}

func (e *NumExpr) ExprPos() Pos     { return e.Pos }
func (e *IdentExpr) ExprPos() Pos   { return e.Pos }
func (e *PortSelExpr) ExprPos() Pos { return e.Pos }
func (e *IndexExpr) ExprPos() Pos   { return e.Pos }
func (e *BinExpr) ExprPos() Pos     { return e.Pos }
func (e *UnExpr) ExprPos() Pos      { return e.Pos }
func (e *CaseExpr) ExprPos() Pos    { return e.Pos }

func (e *NumExpr) ExprWidth() int     { return e.Width }
func (e *IdentExpr) ExprWidth() int   { return e.Width }
func (e *PortSelExpr) ExprWidth() int { return e.Width }
func (e *IndexExpr) ExprWidth() int   { return e.Width }
func (e *BinExpr) ExprWidth() int     { return e.Width }
func (e *UnExpr) ExprWidth() int      { return e.Width }
func (e *CaseExpr) ExprWidth() int    { return e.Width }

func (e *NumExpr) String() string     { return fmt.Sprintf("%d", e.Val) }
func (e *IdentExpr) String() string   { return e.Name }
func (e *PortSelExpr) String() string { return e.Part + "." + e.Port }

func (e *IndexExpr) String() string {
	if e.Lo != nil {
		return fmt.Sprintf("%s[%s:%s]", e.X, e.Hi, e.Lo)
	}
	return fmt.Sprintf("%s[%s]", e.X, e.Hi)
}

func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y)
}

func (e *UnExpr) String() string {
	if e.Op == rtl.OpNeg {
		return fmt.Sprintf("-(%s)", e.X)
	}
	return fmt.Sprintf("%s(%s)", e.Op, e.X)
}

func (e *CaseExpr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CASE %s OF ", e.Sel)
	for _, a := range e.Alts {
		fmt.Fprintf(&b, "%d: %s; ", a.Val, a.Body)
	}
	if e.Else != nil {
		fmt.Fprintf(&b, "ELSE: %s; ", e.Else)
	}
	b.WriteString("END")
	return b.String()
}
