package hdl

import "fmt"

// TokKind enumerates lexical token kinds of the MDL processor description
// language.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber

	// Punctuation and operators.
	TokSemi    // ;
	TokColon   // :
	TokComma   // ,
	TokDot     // .
	TokLParen  // (
	TokRParen  // )
	TokLBrack  // [
	TokRBrack  // ]
	TokAssign  // <-
	TokEqual   // =
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokAmp     // &
	TokPipe    // |
	TokCaret   // ^
	TokTilde   // ~
	TokBang    // !
	TokLt      // <
	TokGt      // >
	TokLe      // <=
	TokGe      // >=
	TokEq      // ==
	TokNe      // !=
	TokShl     // <<
	TokShr     // >>
	TokAshr    // >>>

	// Keywords.
	TokProcessor
	TokModule
	TokIn
	TokOut
	TokBegin
	TokEnd
	TokVar
	TokAt
	TokDo
	TokCase
	TokOf
	TokElse
	TokParts
	TokConnect
	TokBus
	TokWhen
	TokConst
	TokPort
	TokInstruction
	TokMode
	TokPC
)

var keywords = map[string]TokKind{
	"PROCESSOR": TokProcessor,
	"MODULE":    TokModule,
	"IN":        TokIn,
	"OUT":       TokOut,
	"BEGIN":     TokBegin,
	"END":       TokEnd,
	"VAR":       TokVar,
	"AT":        TokAt,
	"DO":        TokDo,
	"CASE":      TokCase,
	"OF":        TokOf,
	"ELSE":      TokElse,
	"PARTS":     TokParts,
	"CONNECT":   TokConnect,
	"BUS":       TokBus,
	"WHEN":      TokWhen,
	"CONST":     TokConst,
	"PORT":      TokPort,
	// INSTRUCTION, MODE and PC are contextual: they only act as keywords
	// in part-flag position, so parts may freely be named "pc" etc.
}

var tokNames = map[TokKind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokNumber: "number",
	TokSemi: "';'", TokColon: "':'", TokComma: "','", TokDot: "'.'",
	TokLParen: "'('", TokRParen: "')'", TokLBrack: "'['", TokRBrack: "']'",
	TokAssign: "'<-'", TokEqual: "'='", TokPlus: "'+'", TokMinus: "'-'",
	TokStar: "'*'", TokSlash: "'/'", TokPercent: "'%'", TokAmp: "'&'",
	TokPipe: "'|'", TokCaret: "'^'", TokTilde: "'~'", TokBang: "'!'",
	TokLt: "'<'", TokGt: "'>'", TokLe: "'<='", TokGe: "'>='",
	TokEq: "'=='", TokNe: "'!='", TokShl: "'<<'", TokShr: "'>>'",
	TokAshr:      "'>>>'",
	TokProcessor: "PROCESSOR", TokModule: "MODULE", TokIn: "IN", TokOut: "OUT",
	TokBegin: "BEGIN", TokEnd: "END", TokVar: "VAR", TokAt: "AT", TokDo: "DO",
	TokCase: "CASE", TokOf: "OF", TokElse: "ELSE", TokParts: "PARTS",
	TokConnect: "CONNECT", TokBus: "BUS", TokWhen: "WHEN", TokConst: "CONST",
	TokPort: "PORT", TokInstruction: "INSTRUCTION", TokMode: "MODE", TokPC: "PC",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Pos is a source position for diagnostics.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier spelling
	Val  int64  // numeric value for TokNumber
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokNumber:
		return fmt.Sprintf("number %d", t.Val)
	}
	return t.Kind.String()
}
