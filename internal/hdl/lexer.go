package hdl

import (
	"fmt"
	"strconv"
	"strings"
)

// Error is a positioned HDL front-end diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer turns MDL source text into tokens.  Comments run from "--" to end
// of line.  Keywords are case-insensitive (MIMOLA heritage); identifiers
// keep their spelling.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{l.line, l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token or a positioned error.
func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[strings.ToUpper(text)]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := l.off
		base := 10
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			start = l.off
			base = 16
			for l.off < len(l.src) && isHex(l.peekByte()) {
				l.advance()
			}
		} else if c == '0' && (l.peek2() == 'b' || l.peek2() == 'B') {
			l.advance()
			l.advance()
			start = l.off
			base = 2
			for l.off < len(l.src) && (l.peekByte() == '0' || l.peekByte() == '1') {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		if text == "" {
			return Token{}, errf(pos, "malformed number literal")
		}
		v, err := strconv.ParseInt(text, base, 64)
		if err != nil {
			return Token{}, errf(pos, "bad number %q: %v", text, err)
		}
		return Token{Kind: TokNumber, Val: v, Pos: pos}, nil
	}
	l.advance()
	mk := func(k TokKind) (Token, error) { return Token{Kind: k, Pos: pos}, nil }
	switch c {
	case ';':
		return mk(TokSemi)
	case ':':
		return mk(TokColon)
	case ',':
		return mk(TokComma)
	case '.':
		return mk(TokDot)
	case '(':
		return mk(TokLParen)
	case ')':
		return mk(TokRParen)
	case '[':
		return mk(TokLBrack)
	case ']':
		return mk(TokRBrack)
	case '+':
		return mk(TokPlus)
	case '-':
		return mk(TokMinus)
	case '*':
		return mk(TokStar)
	case '/':
		return mk(TokSlash)
	case '%':
		return mk(TokPercent)
	case '&':
		return mk(TokAmp)
	case '|':
		return mk(TokPipe)
	case '^':
		return mk(TokCaret)
	case '~':
		return mk(TokTilde)
	case '=':
		if l.peekByte() == '=' {
			l.advance()
			return mk(TokEq)
		}
		return mk(TokEqual)
	case '!':
		if l.peekByte() == '=' {
			l.advance()
			return mk(TokNe)
		}
		return mk(TokBang)
	case '<':
		switch l.peekByte() {
		case '-':
			l.advance()
			return mk(TokAssign)
		case '=':
			l.advance()
			return mk(TokLe)
		case '<':
			l.advance()
			return mk(TokShl)
		}
		return mk(TokLt)
	case '>':
		switch l.peekByte() {
		case '=':
			l.advance()
			return mk(TokGe)
		case '>':
			l.advance()
			if l.peekByte() == '>' {
				l.advance()
				return mk(TokAshr)
			}
			return mk(TokShr)
		}
		return mk(TokGt)
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
