package hdl

import (
	"errors"
	"fmt"

	"repro/internal/rtl"
)

// Check resolves names, infers bit widths and validates model m in place.
// It returns an error joining every diagnostic found.
func Check(m *Model) error {
	c := &checker{m: m}
	c.buildTables()
	c.checkModules()
	c.checkParts()
	c.checkBusesAndPorts()
	c.checkConnects()
	if len(c.errs) > 0 {
		return errors.Join(c.errs...)
	}
	return nil
}

type checker struct {
	m    *Model
	errs []error
}

func (c *checker) errorf(pos Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, errf(pos, format, args...))
}

func (c *checker) buildTables() {
	m := c.m
	m.ConstByName = make(map[string]int64)
	for _, d := range m.Consts {
		if _, dup := m.ConstByName[d.Name]; dup {
			c.errorf(d.Pos, "duplicate constant %q", d.Name)
			continue
		}
		m.ConstByName[d.Name] = d.Value
	}
	m.ModuleByName = make(map[string]*Module)
	for _, mod := range m.Modules {
		if _, dup := m.ModuleByName[mod.Name]; dup {
			c.errorf(mod.Pos, "duplicate module %q", mod.Name)
			continue
		}
		m.ModuleByName[mod.Name] = mod
	}
	m.PartByName = make(map[string]*Part)
	for _, p := range m.Parts {
		if _, dup := m.PartByName[p.Name]; dup {
			c.errorf(p.Pos, "duplicate part %q", p.Name)
			continue
		}
		m.PartByName[p.Name] = p
	}
	m.BusByName = make(map[string]*BusDecl)
	for _, b := range m.Buses {
		if _, dup := m.BusByName[b.Name]; dup {
			c.errorf(b.Pos, "duplicate bus %q", b.Name)
			continue
		}
		m.BusByName[b.Name] = b
	}
	m.PortByName = make(map[string]*PrimaryPort)
	for _, p := range m.Ports {
		if _, dup := m.PortByName[p.Name]; dup {
			c.errorf(p.Pos, "duplicate primary port %q", p.Name)
			continue
		}
		m.PortByName[p.Name] = p
	}
}

// resolveWidth evaluates a width expression (number or constant name).
func (c *checker) resolveWidth(e Expr, what string) int {
	switch w := e.(type) {
	case *NumExpr:
		if w.Val <= 0 || w.Val > 64 {
			c.errorf(w.Pos, "%s width %d out of range 1..64", what, w.Val)
			return 1
		}
		return int(w.Val)
	case *IdentExpr:
		v, ok := c.m.ConstByName[w.Name]
		if !ok {
			c.errorf(w.Pos, "%s width: unknown constant %q", what, w.Name)
			return 1
		}
		if v <= 0 || v > 64 {
			c.errorf(w.Pos, "%s width %d (constant %q) out of range 1..64", what, v, w.Name)
			return 1
		}
		return int(v)
	}
	c.errorf(e.ExprPos(), "%s width must be a number or constant", what)
	return 1
}

// resolveSize evaluates a storage size expression.
func (c *checker) resolveSize(e Expr) int {
	switch s := e.(type) {
	case *NumExpr:
		if s.Val <= 0 || s.Val > 1<<24 {
			c.errorf(s.Pos, "storage size %d out of range", s.Val)
			return 1
		}
		return int(s.Val)
	case *IdentExpr:
		v, ok := c.m.ConstByName[s.Name]
		if !ok {
			c.errorf(s.Pos, "storage size: unknown constant %q", s.Name)
			return 1
		}
		return int(v)
	}
	c.errorf(e.ExprPos(), "storage size must be a number or constant")
	return 1
}

func (c *checker) checkModules() {
	for _, mod := range c.m.Modules {
		mod.PortByName = make(map[string]*ModPort)
		for _, p := range mod.Ports {
			if _, dup := mod.PortByName[p.Name]; dup {
				c.errorf(p.Pos, "module %s: duplicate port %q", mod.Name, p.Name)
				continue
			}
			p.Width = c.resolveWidth(p.WidthRaw, "port "+p.Name)
			mod.PortByName[p.Name] = p
		}
		mod.VarByName = make(map[string]*VarDecl)
		for _, v := range mod.Vars {
			if _, dup := mod.VarByName[v.Name]; dup {
				c.errorf(v.Pos, "module %s: duplicate var %q", mod.Name, v.Name)
				continue
			}
			if _, clash := mod.PortByName[v.Name]; clash {
				c.errorf(v.Pos, "module %s: var %q collides with a port", mod.Name, v.Name)
				continue
			}
			v.Width = c.resolveWidth(v.WidthRaw, "var "+v.Name)
			v.Size = 1
			if v.SizeRaw != nil {
				v.Size = c.resolveSize(v.SizeRaw)
			}
			mod.VarByName[v.Name] = v
		}
		c.checkBehavior(mod)
	}
}

func (c *checker) checkBehavior(mod *Module) {
	outAssigned := make(map[string]bool)
	for _, st := range mod.Stmts {
		lv := st.LHS
		if port, ok := mod.PortByName[lv.Name]; ok {
			if port.Dir != DirOut {
				c.errorf(lv.Pos, "module %s: cannot assign to input port %q", mod.Name, lv.Name)
				continue
			}
			if lv.Index != nil {
				c.errorf(lv.Pos, "module %s: bit-sliced port assignment not supported", mod.Name)
				continue
			}
			if st.Guard != nil {
				c.errorf(st.Pos, "module %s: output port %q must be assigned unconditionally (use a bus for tristate)", mod.Name, lv.Name)
			}
			if outAssigned[lv.Name] {
				c.errorf(st.Pos, "module %s: output port %q assigned more than once", mod.Name, lv.Name)
			}
			outAssigned[lv.Name] = true
			lv.Port = port
			c.inferExpr(st.RHS, mod, port.Width)
		} else if v, ok := mod.VarByName[lv.Name]; ok {
			lv.Var = v
			if v.Size > 1 {
				if lv.Index == nil {
					c.errorf(lv.Pos, "module %s: array var %q needs an index", mod.Name, lv.Name)
				} else {
					c.inferExpr(lv.Index, mod, -1)
				}
			} else if lv.Index != nil {
				c.errorf(lv.Pos, "module %s: scalar var %q cannot be indexed", mod.Name, lv.Name)
			}
			c.inferExpr(st.RHS, mod, v.Width)
		} else {
			c.errorf(lv.Pos, "module %s: unknown assignment target %q", mod.Name, lv.Name)
			continue
		}
		if st.Guard != nil {
			if w := c.inferExpr(st.Guard, mod, 1); w != 1 && w != 0 {
				c.errorf(st.Guard.ExprPos(), "module %s: guard must be 1 bit wide, got %d", mod.Name, w)
			}
		}
	}
	// Every output port of a module with a behavior must be driven.
	if len(mod.Stmts) > 0 {
		for _, p := range mod.Ports {
			if p.Dir == DirOut && !outAssigned[p.Name] {
				c.errorf(p.Pos, "module %s: output port %q never assigned", mod.Name, p.Name)
			}
		}
	}
}

// inferExpr type-checks e in module scope (mod non-nil) or connect scope
// (mod nil), with an expected width (-1 to infer).  It returns the width
// (0 on error paths after reporting).
func (c *checker) inferExpr(e Expr, mod *Module, expected int) int {
	switch x := e.(type) {
	case *NumExpr:
		if expected > 0 {
			if !fitsWidth(x.Val, expected) {
				c.errorf(x.Pos, "literal %d does not fit in %d bits", x.Val, expected)
			}
			x.Width = expected
		} else {
			x.Width = minWidth(x.Val)
		}
		return x.Width

	case *IdentExpr:
		return c.inferIdent(x, mod, expected)

	case *PortSelExpr:
		if mod != nil {
			c.errorf(x.Pos, "part.port reference %s not allowed inside a module behavior", x)
			return 0
		}
		return c.inferPortSel(x)

	case *IndexExpr:
		return c.inferIndex(x, mod, expected)

	case *BinExpr:
		return c.inferBin(x, mod, expected)

	case *UnExpr:
		w := c.inferExpr(x.X, mod, expected)
		x.Width = w
		return w

	case *CaseExpr:
		return c.inferCase(x, mod, expected)
	}
	c.errorf(e.ExprPos(), "internal: unknown expression node %T", e)
	return 0
}

func (c *checker) inferIdent(x *IdentExpr, mod *Module, expected int) int {
	if mod != nil {
		if p, ok := mod.PortByName[x.Name]; ok {
			if p.Dir != DirIn {
				c.errorf(x.Pos, "module %s: cannot read output port %q", mod.Name, x.Name)
				return 0
			}
			x.Port = p
			x.Width = p.Width
			return p.Width
		}
		if v, ok := mod.VarByName[x.Name]; ok {
			if v.Size > 1 {
				c.errorf(x.Pos, "array var %q needs an index", x.Name)
				return 0
			}
			x.Var = v
			x.Width = v.Width
			return v.Width
		}
	} else {
		if b, ok := c.m.BusByName[x.Name]; ok {
			x.Bus = b
			x.Width = b.Width
			return b.Width
		}
		if pp, ok := c.m.PortByName[x.Name]; ok {
			if pp.Dir != DirIn {
				c.errorf(x.Pos, "cannot read primary output port %q", x.Name)
				return 0
			}
			x.Primary = pp
			x.Width = pp.Width
			return pp.Width
		}
	}
	if v, ok := c.m.ConstByName[x.Name]; ok {
		x.Const = &ConstDecl{Name: x.Name, Value: v}
		if expected > 0 {
			if !fitsWidth(v, expected) {
				c.errorf(x.Pos, "constant %s=%d does not fit in %d bits", x.Name, v, expected)
			}
			x.Width = expected
		} else {
			x.Width = minWidth(v)
		}
		return x.Width
	}
	c.errorf(x.Pos, "unknown identifier %q", x.Name)
	return 0
}

func (c *checker) inferPortSel(x *PortSelExpr) int {
	part, ok := c.m.PartByName[x.Part]
	if !ok {
		c.errorf(x.Pos, "unknown part %q", x.Part)
		return 0
	}
	x.PartRef = part
	mod, ok := c.m.ModuleByName[part.ModName]
	if !ok {
		return 0 // reported by checkParts
	}
	p, ok := mod.PortByName[x.Port]
	if !ok {
		c.errorf(x.Pos, "part %s (module %s) has no port %q", x.Part, mod.Name, x.Port)
		return 0
	}
	if p.Dir != DirOut {
		c.errorf(x.Pos, "connect source %s.%s is not an output port", x.Part, x.Port)
		return 0
	}
	x.PortRef = p
	x.Width = p.Width
	return p.Width
}

func (c *checker) inferIndex(x *IndexExpr, mod *Module, expected int) int {
	// Array var cell index (module scope only).
	if id, ok := x.X.(*IdentExpr); ok && mod != nil {
		if v, okv := mod.VarByName[id.Name]; okv && v.Size > 1 {
			if x.Lo != nil {
				c.errorf(x.Pos, "storage %q: ranged cell access not supported", id.Name)
				return 0
			}
			id.Var = v
			id.Width = v.Width
			c.inferExpr(x.Hi, mod, -1)
			x.Width = v.Width
			x.IsSlice = false
			return v.Width
		}
	}
	// Otherwise: a constant bit slice of a port/bus/primary reference.
	baseW := c.inferExpr(x.X, mod, -1)
	if baseW == 0 {
		return 0
	}
	hi, okHi := c.constVal(x.Hi)
	lo := hi
	okLo := true
	if x.Lo != nil {
		lo, okLo = c.constVal(x.Lo)
	}
	if !okHi || !okLo {
		c.errorf(x.Pos, "bit-slice bounds must be constants")
		return 0
	}
	if lo < 0 || hi < lo || int(hi) >= baseW {
		c.errorf(x.Pos, "bit slice [%d:%d] out of range for width %d", hi, lo, baseW)
		return 0
	}
	x.IsSlice = true
	x.SliceHi, x.SliceLo = int(hi), int(lo)
	x.Width = int(hi-lo) + 1
	return x.Width
}

// constVal evaluates a constant expression (number or named constant).
func (c *checker) constVal(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *NumExpr:
		return x.Val, true
	case *IdentExpr:
		if v, ok := c.m.ConstByName[x.Name]; ok {
			return v, true
		}
	}
	return 0, false
}

func isLiteral(e Expr) bool {
	switch x := e.(type) {
	case *NumExpr:
		return true
	case *IdentExpr:
		return x.Port == nil && x.Var == nil && x.Bus == nil && x.Primary == nil
	}
	return false
}

func (c *checker) inferBin(x *BinExpr, mod *Module, expected int) int {
	switch x.Op {
	case rtl.OpEq, rtl.OpNe, rtl.OpLt, rtl.OpLe, rtl.OpGt, rtl.OpGe:
		// Operands agree among themselves; result is 1 bit.
		var w int
		if isLiteral(x.X) && !isLiteral(x.Y) {
			w = c.inferExpr(x.Y, mod, -1)
			c.inferExpr(x.X, mod, w)
		} else {
			w = c.inferExpr(x.X, mod, -1)
			c.inferExpr(x.Y, mod, w)
		}
		if yw := x.Y.ExprWidth(); w != 0 && yw != 0 && yw != w {
			c.errorf(x.Pos, "comparison operand widths differ: %d vs %d", w, yw)
		}
		x.Width = 1
		return 1
	case rtl.OpShl, rtl.OpShr, rtl.OpAshr:
		w := c.inferExpr(x.X, mod, expected)
		c.inferExpr(x.Y, mod, -1)
		x.Width = w
		return w
	default:
		// Width-preserving arithmetic/logic.
		var w int
		if isLiteral(x.X) && !isLiteral(x.Y) {
			w = c.inferExpr(x.Y, mod, expected)
			c.inferExpr(x.X, mod, w)
		} else {
			w = c.inferExpr(x.X, mod, expected)
			c.inferExpr(x.Y, mod, w)
		}
		if yw := x.Y.ExprWidth(); w != 0 && yw != 0 && yw != w {
			c.errorf(x.Pos, "operand widths differ: %d vs %d", w, yw)
		}
		x.Width = w
		return w
	}
}

func (c *checker) inferCase(x *CaseExpr, mod *Module, expected int) int {
	selW := c.inferExpr(x.Sel, mod, -1)
	seen := make(map[int64]bool)
	w := expected
	for i := range x.Alts {
		a := &x.Alts[i]
		if seen[a.Val] {
			c.errorf(x.Pos, "duplicate CASE alternative %d", a.Val)
		}
		seen[a.Val] = true
		if selW > 0 && !fitsWidth(a.Val, selW) {
			c.errorf(x.Pos, "CASE alternative %d does not fit selector width %d", a.Val, selW)
		}
		bw := c.inferExpr(a.Body, mod, w)
		if w <= 0 {
			w = bw
		} else if bw != 0 && bw != w {
			c.errorf(a.Body.ExprPos(), "CASE branch width %d differs from %d", bw, w)
		}
	}
	if x.Else != nil {
		bw := c.inferExpr(x.Else, mod, w)
		if w <= 0 {
			w = bw
		} else if bw != 0 && bw != w {
			c.errorf(x.Else.ExprPos(), "ELSE branch width %d differs from %d", bw, w)
		}
	}
	if len(x.Alts) == 0 {
		c.errorf(x.Pos, "CASE with no alternatives")
	}
	if w < 0 {
		w = 0
	}
	x.Width = w
	return w
}

func (c *checker) checkParts() {
	var insnParts, pcParts int
	for _, p := range c.m.Parts {
		mod, ok := c.m.ModuleByName[p.ModName]
		if !ok {
			c.errorf(p.Pos, "part %s: unknown module %q", p.Name, p.ModName)
			continue
		}
		p.Module = mod
		if _, clash := c.m.BusByName[p.Name]; clash {
			c.errorf(p.Pos, "part %s collides with a bus name", p.Name)
		}
		switch p.Flag {
		case FlagInstruction:
			insnParts++
			outs := 0
			for _, mp := range mod.Ports {
				if mp.Dir == DirOut {
					outs++
				}
			}
			if outs != 1 {
				c.errorf(p.Pos, "instruction part %s: module %s must have exactly one output port (the instruction word), has %d", p.Name, mod.Name, outs)
			}
			if !mod.IsSequential() {
				c.errorf(p.Pos, "instruction part %s: module %s must contain storage", p.Name, mod.Name)
			}
		case FlagMode, FlagPC:
			if p.Flag == FlagPC {
				pcParts++
			}
			if !mod.IsSequential() {
				c.errorf(p.Pos, "part %s (%s): module %s must contain storage", p.Name, p.Flag, mod.Name)
			}
		}
	}
	if insnParts != 1 {
		pos := Pos{1, 1}
		c.errorf(pos, "model must declare exactly one INSTRUCTION part, found %d", insnParts)
	}
	if pcParts > 1 {
		c.errorf(Pos{1, 1}, "model declares %d PC parts, at most 1 allowed", pcParts)
	}
}

func (c *checker) checkBusesAndPorts() {
	for _, b := range c.m.Buses {
		b.Width = c.resolveWidth(b.WidthRaw, "bus "+b.Name)
	}
	for _, p := range c.m.Ports {
		p.Width = c.resolveWidth(p.WidthRaw, "primary port "+p.Name)
	}
}

func (c *checker) checkConnects() {
	driven := make(map[string]int) // sink key -> count (buses may repeat)
	for _, conn := range c.m.Connects {
		var sinkWidth int
		var isBus bool
		if conn.SinkPart != "" {
			part, ok := c.m.PartByName[conn.SinkPart]
			if !ok {
				c.errorf(conn.Pos, "connect: unknown part %q", conn.SinkPart)
				continue
			}
			if part.Module == nil {
				continue
			}
			port, ok := part.Module.PortByName[conn.SinkPort]
			if !ok {
				c.errorf(conn.Pos, "connect: part %s has no port %q", conn.SinkPart, conn.SinkPort)
				continue
			}
			if port.Dir != DirIn {
				c.errorf(conn.Pos, "connect: %s is not an input port", conn.SinkName())
				continue
			}
			sinkWidth = port.Width
		} else if b, ok := c.m.BusByName[conn.SinkPort]; ok {
			sinkWidth = b.Width
			isBus = true
		} else if pp, ok := c.m.PortByName[conn.SinkPort]; ok {
			if pp.Dir != DirOut {
				c.errorf(conn.Pos, "connect: primary port %q is not an output", conn.SinkPort)
				continue
			}
			sinkWidth = pp.Width
		} else {
			c.errorf(conn.Pos, "connect: unknown sink %q", conn.SinkPort)
			continue
		}

		if conn.When != nil && !isBus {
			c.errorf(conn.Pos, "connect: WHEN is only allowed on bus drivers (sink %s)", conn.SinkName())
		}
		key := conn.SinkName()
		driven[key]++
		if !isBus && driven[key] > 1 {
			c.errorf(conn.Pos, "connect: sink %s driven more than once (declare a BUS for tristate)", key)
		}

		if w := c.inferExpr(conn.Src, nil, sinkWidth); w != 0 && w != sinkWidth {
			c.errorf(conn.Pos, "connect: width mismatch at %s: sink %d bits, source %d bits", key, sinkWidth, w)
		}
		if conn.When != nil {
			if w := c.inferExpr(conn.When, nil, 1); w != 1 && w != 0 {
				c.errorf(conn.When.ExprPos(), "WHEN condition must be 1 bit wide, got %d", w)
			}
		}
	}
	// Every input port of every part must be driven.
	for _, p := range c.m.Parts {
		if p.Module == nil {
			continue
		}
		for _, mp := range p.Module.Ports {
			if mp.Dir == DirIn && driven[p.Name+"."+mp.Name] == 0 {
				c.errorf(p.Pos, "input port %s.%s is never driven", p.Name, mp.Name)
			}
		}
	}
}

// fitsWidth reports whether v is representable in w bits, allowing both
// unsigned and two's-complement signed interpretations.
func fitsWidth(v int64, w int) bool {
	if w >= 64 {
		return true
	}
	if v >= 0 {
		return v < 1<<uint(w)
	}
	return v >= -(1 << uint(w-1))
}

// minWidth returns the minimal width able to hold v (at least 1).
func minWidth(v int64) int {
	if v < 0 {
		v = -v - 1
		w := 1
		for v > 0 {
			w++
			v >>= 1
		}
		return w
	}
	w := 1
	for v > 1 {
		w++
		v >>= 1
	}
	if v == 1 && w == 1 {
		return 1
	}
	return w
}

// InsnPart returns the model's instruction part and the width of its
// instruction word (the single output port).  Check must have succeeded.
func (m *Model) InsnPart() (*Part, *ModPort, error) {
	for _, p := range m.Parts {
		if p.Flag == FlagInstruction {
			for _, mp := range p.Module.Ports {
				if mp.Dir == DirOut {
					return p, mp, nil
				}
			}
			return nil, nil, fmt.Errorf("instruction part %s has no output port", p.Name)
		}
	}
	return nil, nil, fmt.Errorf("model %s has no INSTRUCTION part", m.Name)
}
