package hdl

import (
	"strings"
	"testing"

	"repro/internal/faultpoint"
	"repro/internal/rtl"
)

// tinyModel is a minimal accumulator machine used across frontend tests.
const tinyModel = `
-- tiny accumulator machine
PROCESSOR tiny;

CONST WORD = 8;

MODULE Alu (IN a: WORD; IN b: WORD; IN ctl: 2; OUT y: WORD);
BEGIN
  y <- CASE ctl OF
         0: a + b;
         1: a - b;
         2: a & b;
         ELSE: b;
       END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN
  q <- r;
  AT ld == 1 DO r <- d;
END;

MODULE Ram (IN a: 4; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [16];
BEGIN
  q <- m[a];
  AT w == 1 DO m[a] <- d;
END;

MODULE Rom (IN a: 4; OUT q: 16);
VAR m: 16 [16];
BEGIN
  q <- m[a];
END;

MODULE Inc (IN a: 4; OUT y: 4);
BEGIN
  y <- a + 1;
END;

MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN
  q <- r;
  r <- d;
END;

PARTS
  alu  : Alu;
  acc  : Reg;
  ram  : Ram;
  imem : Rom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc;

CONNECT
  alu.a   <- acc.q;
  alu.b   <- ram.q;
  alu.ctl <- imem.q[15:14];
  acc.d   <- alu.y;
  acc.ld  <- imem.q[13];
  ram.a   <- imem.q[3:0];
  ram.d   <- acc.q;
  ram.w   <- imem.q[12];
  imem.a  <- pc.q;
  pinc.a  <- pc.q;
  pc.d    <- pinc.y;
END.
`

func TestLexerBasics(t *testing.T) {
	lx := newLexer("alu <- 0x1F + 0b101 -- comment\n;")
	var kinds []TokKind
	var vals []int64
	for {
		tok, err := lx.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tok.Kind)
		vals = append(vals, tok.Val)
	}
	want := []TokKind{TokIdent, TokAssign, TokNumber, TokPlus, TokNumber, TokSemi}
	if len(kinds) != len(want) {
		t.Fatalf("token kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if vals[2] != 0x1F || vals[4] != 5 {
		t.Fatalf("number values = %v", vals)
	}
}

func TestLexerOperators(t *testing.T) {
	src := "<= >= == != << >> >>> <- < > = ! ~ ^ | & % / * - +"
	want := []TokKind{TokLe, TokGe, TokEq, TokNe, TokShl, TokShr, TokAshr,
		TokAssign, TokLt, TokGt, TokEqual, TokBang, TokTilde, TokCaret,
		TokPipe, TokAmp, TokPercent, TokSlash, TokStar, TokMinus, TokPlus}
	lx := newLexer(src)
	for i, k := range want {
		tok, err := lx.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind != k {
			t.Fatalf("token %d = %v, want %v", i, tok.Kind, k)
		}
	}
}

func TestLexerKeywordsCaseInsensitive(t *testing.T) {
	lx := newLexer("processor Module BEGIN end")
	want := []TokKind{TokProcessor, TokModule, TokBegin, TokEnd}
	for _, k := range want {
		tok, err := lx.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind != k {
			t.Fatalf("got %v, want %v", tok.Kind, k)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	lx := newLexer("@")
	if _, err := lx.next(); err == nil {
		t.Fatal("expected error for '@'")
	}
	lx = newLexer("0x")
	if _, err := lx.next(); err == nil {
		t.Fatal("expected error for bare 0x")
	}
}

func TestParseAndCheckTiny(t *testing.T) {
	m, err := ParseAndCheck(tinyModel)
	if err != nil {
		t.Fatalf("ParseAndCheck: %v", err)
	}
	if m.Name != "tiny" {
		t.Errorf("name = %q", m.Name)
	}
	if len(m.Modules) != 6 || len(m.Parts) != 6 || len(m.Connects) != 11 {
		t.Errorf("counts: modules=%d parts=%d connects=%d",
			len(m.Modules), len(m.Parts), len(m.Connects))
	}
	alu := m.ModuleByName["Alu"]
	if alu == nil {
		t.Fatal("Alu missing")
	}
	if alu.PortByName["a"].Width != 8 || alu.PortByName["ctl"].Width != 2 {
		t.Error("width resolution failed")
	}
	if alu.IsSequential() {
		t.Error("Alu must be combinational")
	}
	ram := m.ModuleByName["Ram"]
	if !ram.IsSequential() || ram.VarByName["m"].Size != 16 {
		t.Error("Ram storage wrong")
	}
	part, mp, err := m.InsnPart()
	if err != nil {
		t.Fatal(err)
	}
	if part.Name != "imem" || mp.Name != "q" || mp.Width != 16 {
		t.Errorf("instruction part %s.%s width %d", part.Name, mp.Name, mp.Width)
	}
}

func TestCaseExprChecked(t *testing.T) {
	m, err := ParseAndCheck(tinyModel)
	if err != nil {
		t.Fatal(err)
	}
	alu := m.ModuleByName["Alu"]
	ce, ok := alu.Stmts[0].RHS.(*CaseExpr)
	if !ok {
		t.Fatalf("Alu behavior is %T, want CaseExpr", alu.Stmts[0].RHS)
	}
	if ce.Width != 8 || len(ce.Alts) != 3 || ce.Else == nil {
		t.Errorf("case: width=%d alts=%d else=%v", ce.Width, len(ce.Alts), ce.Else)
	}
	if ce.Sel.ExprWidth() != 2 {
		t.Errorf("selector width = %d", ce.Sel.ExprWidth())
	}
}

func TestSliceResolution(t *testing.T) {
	m, err := ParseAndCheck(tinyModel)
	if err != nil {
		t.Fatal(err)
	}
	// alu.ctl <- imem.q[15:14]
	var conn *Connect
	for _, c := range m.Connects {
		if c.SinkName() == "alu.ctl" {
			conn = c
		}
	}
	if conn == nil {
		t.Fatal("alu.ctl connect missing")
	}
	ix, ok := conn.Src.(*IndexExpr)
	if !ok {
		t.Fatalf("source is %T", conn.Src)
	}
	if !ix.IsSlice || ix.SliceHi != 15 || ix.SliceLo != 14 || ix.Width != 2 {
		t.Errorf("slice: %+v", ix)
	}
}

// checkFails asserts that the model text fails Check with a message
// containing want.
func checkFails(t *testing.T, src, want string) {
	t.Helper()
	_, err := ParseAndCheck(src)
	if err == nil {
		t.Fatalf("expected error containing %q, got success", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

const miniHeader = `
PROCESSOR p;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
`

func TestCheckErrors(t *testing.T) {
	t.Run("no instruction part", func(t *testing.T) {
		checkFails(t, `
PROCESSOR p;
MODULE R (IN d: 1; OUT q: 1);
VAR r: 1;
BEGIN q <- r; AT d == 1 DO r <- d; END;
PARTS x : R;
CONNECT x.d <- x.q;
END.`, "exactly one INSTRUCTION part")
	})
	t.Run("unknown module", func(t *testing.T) {
		checkFails(t, miniHeader+`
PARTS imem : Rom INSTRUCTION; y : Nope;
CONNECT imem.a <- imem.q[3:0];
END.`, "unknown module")
	})
	t.Run("undriven input", func(t *testing.T) {
		checkFails(t, miniHeader+`
PARTS imem : Rom INSTRUCTION;
END.`, "never driven")
	})
	t.Run("width mismatch", func(t *testing.T) {
		checkFails(t, miniHeader+`
PARTS imem : Rom INSTRUCTION;
CONNECT imem.a <- imem.q;
END.`, "width mismatch")
	})
	t.Run("double drive", func(t *testing.T) {
		checkFails(t, miniHeader+`
PARTS imem : Rom INSTRUCTION;
CONNECT imem.a <- imem.q[3:0]; imem.a <- imem.q[7:4];
END.`, "driven more than once")
	})
	t.Run("when without bus", func(t *testing.T) {
		checkFails(t, miniHeader+`
PARTS imem : Rom INSTRUCTION;
CONNECT imem.a <- imem.q[3:0] WHEN imem.q[7] == 1;
END.`, "WHEN is only allowed on bus")
	})
	t.Run("bad slice bounds", func(t *testing.T) {
		checkFails(t, miniHeader+`
PARTS imem : Rom INSTRUCTION;
CONNECT imem.a <- imem.q[9:6];
END.`, "out of range")
	})
	t.Run("guard width", func(t *testing.T) {
		checkFails(t, `
PROCESSOR p;
MODULE R (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; AT d DO r <- d; END;
`+miniPartsRom("R", "x", "x.d <- x.q;"), "guard must be 1 bit")
	})
	t.Run("assign to input", func(t *testing.T) {
		checkFails(t, `
PROCESSOR p;
MODULE R (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; d <- r; END;
`+miniPartsRom("R", "x", "x.d <- x.q;"), "cannot assign to input")
	})
	t.Run("duplicate case alt", func(t *testing.T) {
		checkFails(t, `
PROCESSOR p;
MODULE F (IN a: 8; IN s: 1; OUT y: 8);
BEGIN y <- CASE s OF 0: a; 0: a; END; END;
`+miniPartsRom("F", "x", "x.a <- imem.q; x.s <- imem.q[0];"), "duplicate CASE")
	})
	t.Run("unknown ident", func(t *testing.T) {
		checkFails(t, `
PROCESSOR p;
MODULE F (IN a: 8; OUT y: 8);
BEGIN y <- a + bogus; END;
`+miniPartsRom("F", "x", "x.a <- imem.q;"), "unknown identifier")
	})
	t.Run("literal too wide", func(t *testing.T) {
		checkFails(t, `
PROCESSOR p;
MODULE F (IN a: 4; OUT y: 4);
BEGIN y <- a + 99; END;
`+miniPartsRom("F", "x", "x.a <- imem.q[3:0];"), "does not fit")
	})
	t.Run("array without index", func(t *testing.T) {
		checkFails(t, `
PROCESSOR p;
MODULE M (IN a: 4; OUT y: 8);
VAR m: 8 [16];
BEGIN y <- m; END;
`+miniPartsRom("M", "x", "x.a <- imem.q[3:0];"), "needs an index")
	})
}

// miniPartsRom appends a Rom instruction part plus one part of module mod
// named name with the given extra connects; imem output is 8 bits wide.
func miniPartsRom(mod, name, connects string) string {
	return `
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
PARTS imem : Rom INSTRUCTION; ` + name + ` : ` + mod + `;
CONNECT imem.a <- imem.q[3:0]; ` + connects + `
END.`
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"MODULE x;",                      // missing PROCESSOR
		"PROCESSOR p",                    // missing semicolon
		"PROCESSOR p; MODULE (IN a:1;);", // missing module name
		"PROCESSOR p; MODULE M (IN a:);", // missing width
		"PROCESSOR p; CONST = 4;",        // missing const name
		"PROCESSOR p; MODULE M (IN a:1); BEGIN a <- ; END;",
		"PROCESSOR p; PARTS x;",    // missing module binding
		"PROCESSOR p; CONNECT x <", // bad connect
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, src)
		}
	}
}

func TestBusParsing(t *testing.T) {
	src := `
PROCESSOR p;
CONST W = 8;
MODULE Rom (IN a: 4; OUT q: W);
VAR m: W [16];
BEGIN q <- m[a]; END;
MODULE Reg (IN d: W; IN ld: 1; OUT q: W);
VAR r: W;
BEGIN q <- r; AT ld == 1 DO r <- d; END;
BUS db : W;
PARTS imem : Rom INSTRUCTION; r0 : Reg; r1 : Reg;
CONNECT
  imem.a <- imem.q[3:0];
  db <- r0.q WHEN imem.q[7] == 1;
  db <- r1.q WHEN imem.q[7] == 0;
  r0.d <- db;
  r1.d <- db;
  r0.ld <- imem.q[6];
  r1.ld <- imem.q[5];
END.
`
	m, err := ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Buses) != 1 || m.Buses[0].Width != 8 {
		t.Fatalf("bus not resolved: %+v", m.Buses)
	}
	busDrivers := 0
	for _, c := range m.Connects {
		if c.SinkPort == "db" && c.SinkPart == "" {
			busDrivers++
			if c.When == nil {
				t.Error("bus driver missing WHEN")
			}
		}
	}
	if busDrivers != 2 {
		t.Fatalf("bus drivers = %d, want 2", busDrivers)
	}
}

func TestPrimaryPorts(t *testing.T) {
	src := `
PROCESSOR p;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
PORT IN  din  : 8;
PORT OUT dout : 8;
PARTS imem : Rom INSTRUCTION;
CONNECT
  imem.a <- din[3:0];
  dout <- imem.q;
END.
`
	m, err := ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ports) != 2 {
		t.Fatalf("ports = %d", len(m.Ports))
	}
	if m.PortByName["din"].Dir != DirIn || m.PortByName["dout"].Dir != DirOut {
		t.Error("port directions wrong")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `
PROCESSOR p;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
MODULE F (IN a: 8; IN b: 8; OUT y: 8);
BEGIN y <- a + b * 2 & a; END;
PARTS imem : Rom INSTRUCTION; f : F;
CONNECT imem.a <- imem.q[3:0]; f.a <- imem.q; f.b <- imem.q;
END.
`
	m, err := ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.ModuleByName["F"]
	// & binds loosest: (a + (b*2)) & a
	top, ok := f.Stmts[0].RHS.(*BinExpr)
	if !ok || top.Op != rtl.OpAnd {
		t.Fatalf("top = %v", f.Stmts[0].RHS)
	}
	add, ok := top.X.(*BinExpr)
	if !ok || add.Op != rtl.OpAdd {
		t.Fatalf("left of & = %v", top.X)
	}
	mul, ok := add.Y.(*BinExpr)
	if !ok || mul.Op != rtl.OpMul {
		t.Fatalf("right of + = %v", add.Y)
	}
}

func TestUnaryAndBang(t *testing.T) {
	src := `
PROCESSOR p;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
MODULE F (IN a: 8; IN s: 1; OUT y: 8);
BEGIN y <- CASE !s OF 1: -a; 0: ~a; END; END;
PARTS imem : Rom INSTRUCTION; f : F;
CONNECT imem.a <- imem.q[3:0]; f.a <- imem.q; f.s <- imem.q[0];
END.
`
	m, err := ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.ModuleByName["F"]
	ce := f.Stmts[0].RHS.(*CaseExpr)
	sel, ok := ce.Sel.(*BinExpr)
	if !ok || sel.Op != rtl.OpEq {
		t.Fatalf("!s must desugar to ==0, got %v", ce.Sel)
	}
	if _, ok := ce.Alts[0].Body.(*UnExpr); !ok {
		t.Fatalf("-a not unary: %v", ce.Alts[0].Body)
	}
}

func TestMinWidthFitsWidth(t *testing.T) {
	cases := []struct {
		v int64
		w int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {-1, 1}, {-2, 2}, {-128, 8}}
	for _, c := range cases {
		if got := minWidth(c.v); got != c.w {
			t.Errorf("minWidth(%d) = %d, want %d", c.v, got, c.w)
		}
	}
	if !fitsWidth(255, 8) || fitsWidth(256, 8) {
		t.Error("fitsWidth unsigned wrong")
	}
	if !fitsWidth(-128, 8) || fitsWidth(-129, 8) {
		t.Error("fitsWidth signed wrong")
	}
	if !fitsWidth(1<<62, 64) {
		t.Error("fitsWidth 64 wrong")
	}
}

func TestStringRendering(t *testing.T) {
	m, err := ParseAndCheck(tinyModel)
	if err != nil {
		t.Fatal(err)
	}
	alu := m.ModuleByName["Alu"]
	s := alu.Stmts[0].RHS.String()
	for _, want := range []string{"CASE ctl OF", "(a + b)", "ELSE: b"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered case %q missing %q", s, want)
		}
	}
}

// TestParseRecoversMultipleErrors exercises the parser's error recovery: one
// Parse pass reports every syntax error with its position instead of bailing
// at the first, and still returns the declarations that did parse.
func TestParseRecoversMultipleErrors(t *testing.T) {
	src := `PROCESSOR p;
CONST = 4;
MODULE Alu (IN a: 8; IN b: 8; OUT q: 8);
BEGIN
  q <- a + ;
  q <- * b;
  q <- a - b;
END;
PORT OUT res : ;
BUS db : 8;
`
	m, err := Parse(src)
	if err == nil {
		t.Fatal("expected errors")
	}
	errs := Errors(err)
	if len(errs) < 4 {
		t.Fatalf("got %d errors, want >= 4: %v", len(errs), err)
	}
	wantLines := []int{2, 5, 6, 9}
	for i, line := range wantLines {
		if errs[i].Pos.Line != line {
			t.Errorf("error %d at line %d, want %d: %v", i, errs[i].Pos.Line, line, errs[i])
		}
	}
	// The partial model keeps everything that parsed.
	if m == nil {
		t.Fatal("no partial model")
	}
	if len(m.Modules) != 1 || len(m.Modules[0].Stmts) != 1 {
		t.Errorf("partial model modules=%d stmts=%v, want 1 module with 1 good stmt", len(m.Modules), m.Modules)
	}
	if len(m.Buses) != 1 {
		t.Errorf("partial model buses=%d, want the BUS after the bad PORT", len(m.Buses))
	}
}

// TestParseErrorListMessage checks the ErrorList summary format used by
// non-listing consumers.
func TestParseErrorListMessage(t *testing.T) {
	_, err := Parse("PROCESSOR p;\nCONST = 1;\nCONST = 2;\n")
	if err == nil {
		t.Fatal("expected errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "more error") {
		t.Errorf("ErrorList message %q should mention remaining errors", msg)
	}
}

// TestParseFaultpoint verifies the hdl.parse injection site surfaces as a
// positioned error rather than a crash.
func TestParseFaultpoint(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Arm("hdl.parse", faultpoint.Action{Kind: faultpoint.KindError})
	if _, err := Parse("PROCESSOR p;"); err == nil {
		t.Fatal("expected injected error")
	}
	if _, err := Parse("PROCESSOR p;"); err != nil {
		t.Fatalf("fires once: second parse should succeed, got %v", err)
	}
}
