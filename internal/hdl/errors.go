package hdl

import "fmt"

// ErrorList is every positioned diagnostic collected in one front-end pass;
// it implements error.  The parser's error recovery (sync to ';' and
// section keywords) means a single Parse reports all syntax errors at once
// instead of stopping at the first.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Errors flattens err into its positioned front-end diagnostics: an
// ErrorList yields its elements, the checker's joined error its *Error
// parts, a bare *Error itself, and wrapped variants of all three are
// unwrapped.  Non-front-end errors yield nil, letting drivers decide
// between a positioned listing and a plain message.
func Errors(err error) []*Error {
	switch e := err.(type) {
	case nil:
		return nil
	case ErrorList:
		return e
	case *Error:
		return []*Error{e}
	case interface{ Unwrap() []error }:
		var out []*Error
		for _, sub := range e.Unwrap() {
			out = append(out, Errors(sub)...)
		}
		return out
	case interface{ Unwrap() error }:
		return Errors(e.Unwrap())
	}
	return nil
}
