package hdl

import (
	"strings"
	"testing"

	"repro/internal/models"
)

// FuzzParse drives the recovering parser with arbitrary byte soup.  The
// contract under fuzzing: never panic, never loop forever, and either
// return a model or an ErrorList whose every element carries a valid
// position.
func FuzzParse(f *testing.F) {
	for _, e := range models.All() {
		f.Add(e.MDL)
	}
	f.Add("PROCESSOR p;")
	f.Add("PROCESSOR p; CONST W = 8; MODULE M (IN a: W; OUT q: W); BEGIN q <- a; END;")
	f.Add("PROCESSOR p; MODULE M (IN a: 1; OUT q: 1); BEGIN q <- CASE a OF 0: 1; ELSE: 0; END; END;")
	f.Add("PROCESSOR p; BUS b: 8; CONNECT b <- 1 WHEN 0;")
	f.Add("PROCESSOR \x00;")
	f.Add("PROCESSOR p; CONST = ; CONST = ; MODULE (")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err == nil {
			if m == nil {
				t.Fatal("nil model without error")
			}
			// A clean parse must also survive the checker without panics.
			_ = Check(m)
			return
		}
		errs := Errors(err)
		if len(errs) == 0 {
			t.Fatalf("parse error carries no positioned diagnostics: %v", err)
		}
		for _, e := range errs {
			if e.Pos.Line <= 0 || e.Pos.Col <= 0 {
				t.Errorf("diagnostic without position: %v", e)
			}
			if strings.TrimSpace(e.Msg) == "" {
				t.Errorf("empty diagnostic message at %s", e.Pos)
			}
		}
	})
}
