package hdl

import (
	"strings"

	"repro/internal/faultpoint"
	"repro/internal/rtl"
)

// maxParseErrors caps collection per parse; pathological inputs (fuzzers,
// generated models) stop producing diagnostics after this many.
const maxParseErrors = 100

// Parse parses MDL source text into an unchecked Model.  Call Check on the
// result before elaboration.
//
// The parser recovers from syntax errors by synchronizing to the next ';'
// or section keyword, so one pass reports every syntax error in the model;
// the returned error is an ErrorList and the Model is the (possibly
// partial) tree of everything that did parse.
func Parse(src string) (*Model, error) {
	if err := faultpoint.Hit("hdl.parse", ""); err != nil {
		return nil, ErrorList{errf(Pos{1, 1}, "%v", err)}
	}
	p := &parser{lx: newLexer(src)}
	p.advance()
	m := p.parseModel()
	if len(p.errs) > 0 {
		return m, p.errs
	}
	return m, nil
}

// ParseAndCheck parses and semantically checks a model in one step.
func ParseAndCheck(src string) (*Model, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(m); err != nil {
		return nil, err
	}
	return m, nil
}

type parser struct {
	lx   *lexer
	tok  Token
	errs ErrorList
}

func (p *parser) record(err error) {
	if p.bailed() {
		return
	}
	if e, ok := err.(*Error); ok {
		p.errs = append(p.errs, e)
	} else {
		p.errs = append(p.errs, errf(p.tok.Pos, "%v", err))
	}
}

func (p *parser) bailed() bool { return len(p.errs) >= maxParseErrors }

// advance moves to the next token, recording (and skipping past) lexical
// errors; the lexer consumes the offending byte, so this always progresses.
func (p *parser) advance() {
	for {
		t, err := p.lx.next()
		if err != nil {
			p.record(err)
			if p.bailed() {
				p.tok = Token{Kind: TokEOF, Pos: p.lx.pos()}
				return
			}
			continue
		}
		p.tok = t
		return
	}
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.advance()
	return t, nil
}

func (p *parser) accept(k TokKind) bool {
	if p.tok.Kind != k {
		return false
	}
	p.advance()
	return true
}

// syncDecl skips to a declaration boundary: just past the next ';', or at a
// section keyword, END or EOF.  Callers guarantee progress by consuming at
// least the declaration's leading keyword before failing.
func (p *parser) syncDecl() {
	for {
		switch p.tok.Kind {
		case TokSemi:
			p.advance()
			return
		case TokEOF, TokConst, TokModule, TokPort, TokBus, TokParts, TokConnect, TokEnd:
			return
		}
		p.advance()
	}
}

// syncStmt skips to a statement boundary inside a behavior section: just
// past the next ';', or at END or EOF.
func (p *parser) syncStmt() {
	for {
		switch p.tok.Kind {
		case TokSemi:
			p.advance()
			return
		case TokEnd, TokEOF:
			return
		}
		p.advance()
	}
}

func (p *parser) parseModel() *Model {
	m := &Model{}
	if _, err := p.expect(TokProcessor); err != nil {
		p.record(err)
	} else if name, err := p.expect(TokIdent); err != nil {
		p.record(err)
		p.syncDecl()
	} else {
		m.Name = name.Text
		if _, err := p.expect(TokSemi); err != nil {
			p.record(err)
			p.syncDecl()
		}
	}
	for p.tok.Kind != TokEOF && !p.bailed() {
		switch p.tok.Kind {
		case TokConst:
			d, err := p.parseConst()
			if err != nil {
				p.record(err)
				p.syncDecl()
				continue
			}
			m.Consts = append(m.Consts, d)
		case TokModule:
			mod, err := p.parseModule()
			if err != nil {
				p.record(err)
				p.syncDecl()
				continue
			}
			m.Modules = append(m.Modules, mod)
		case TokPort:
			pp, err := p.parsePrimaryPort()
			if err != nil {
				p.record(err)
				p.syncDecl()
				continue
			}
			m.Ports = append(m.Ports, pp)
		case TokBus:
			b, err := p.parseBus()
			if err != nil {
				p.record(err)
				p.syncDecl()
				continue
			}
			m.Buses = append(m.Buses, b)
		case TokParts:
			if err := p.parseParts(m); err != nil {
				p.record(err)
				p.syncDecl()
			}
		case TokConnect:
			if err := p.parseConnects(m); err != nil {
				p.record(err)
				p.syncDecl()
			}
		case TokEnd:
			// Optional trailing "END." or "END;".
			p.advance()
			if p.tok.Kind == TokDot || p.tok.Kind == TokSemi {
				p.advance()
			}
			if p.tok.Kind != TokEOF {
				p.record(errf(p.tok.Pos, "text after final END"))
			}
			return m
		default:
			p.record(errf(p.tok.Pos, "expected declaration, found %s", p.tok))
			p.syncDecl()
		}
	}
	return m
}

func (p *parser) parseConst() (*ConstDecl, error) {
	pos := p.tok.Pos
	p.advance() // CONST
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEqual); err != nil {
		return nil, err
	}
	num, err := p.expect(TokNumber)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ConstDecl{Name: name.Text, Value: num.Val, Pos: pos}, nil
}

// widthExpr parses a width specifier: a number or a constant name.
func (p *parser) widthExpr() (Expr, error) {
	switch p.tok.Kind {
	case TokNumber:
		e := &NumExpr{Val: p.tok.Val, Pos: p.tok.Pos}
		p.advance()
		return e, nil
	case TokIdent:
		e := &IdentExpr{Name: p.tok.Text, Pos: p.tok.Pos}
		p.advance()
		return e, nil
	}
	return nil, errf(p.tok.Pos, "expected width (number or constant), found %s", p.tok)
}

func (p *parser) parseModule() (*Module, error) {
	pos := p.tok.Pos
	p.advance() // MODULE
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	mod := &Module{Name: name.Text, Pos: pos}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokRParen {
		var dir Dir
		switch p.tok.Kind {
		case TokIn:
			dir = DirIn
		case TokOut:
			dir = DirOut
		default:
			return nil, errf(p.tok.Pos, "expected IN or OUT, found %s", p.tok)
		}
		p.advance()
		pn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		w, err := p.widthExpr()
		if err != nil {
			return nil, err
		}
		mod.Ports = append(mod.Ports, &ModPort{Name: pn.Text, Dir: dir, WidthRaw: w, Pos: pn.Pos})
		if !p.accept(TokSemi) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	// Optional VAR section.
	for p.tok.Kind == TokVar {
		p.advance()
		for p.tok.Kind == TokIdent {
			vn := p.tok
			p.advance()
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			w, err := p.widthExpr()
			if err != nil {
				return nil, err
			}
			v := &VarDecl{Name: vn.Text, WidthRaw: w, Pos: vn.Pos}
			if p.accept(TokLBrack) {
				sz, err := p.widthExpr()
				if err != nil {
					return nil, err
				}
				v.SizeRaw = sz
				if _, err := p.expect(TokRBrack); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			mod.Vars = append(mod.Vars, v)
		}
	}
	// Optional behavior.  Statement errors recover to the next ';' so one
	// pass reports every bad statement in the module body.
	if p.accept(TokBegin) {
		for p.tok.Kind != TokEnd && p.tok.Kind != TokEOF && !p.bailed() {
			st, err := p.parseStmt()
			if err != nil {
				p.record(err)
				p.syncStmt()
				continue
			}
			mod.Stmts = append(mod.Stmts, st)
		}
		if _, err := p.expect(TokEnd); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return mod, nil
}

func (p *parser) parseStmt() (*Stmt, error) {
	pos := p.tok.Pos
	st := &Stmt{Pos: pos}
	if p.accept(TokAt) {
		g, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Guard = g
		if _, err := p.expect(TokDo); err != nil {
			return nil, err
		}
	}
	lv, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	st.LHS = lv
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	st.RHS = rhs
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseLValue() (*LValue, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	lv := &LValue{Name: name.Text, Pos: name.Pos}
	if p.accept(TokLBrack) {
		ix, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		lv.Index = ix
		if _, err := p.expect(TokRBrack); err != nil {
			return nil, err
		}
	}
	return lv, nil
}

func (p *parser) parsePrimaryPort() (*PrimaryPort, error) {
	pos := p.tok.Pos
	p.advance() // PORT
	var dir Dir
	switch p.tok.Kind {
	case TokIn:
		dir = DirIn
	case TokOut:
		dir = DirOut
	default:
		return nil, errf(p.tok.Pos, "expected IN or OUT after PORT, found %s", p.tok)
	}
	p.advance()
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	w, err := p.widthExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &PrimaryPort{Name: name.Text, Dir: dir, WidthRaw: w, Pos: pos}, nil
}

func (p *parser) parseBus() (*BusDecl, error) {
	pos := p.tok.Pos
	p.advance() // BUS
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	w, err := p.widthExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &BusDecl{Name: name.Text, WidthRaw: w, Pos: pos}, nil
}

func (p *parser) parseParts(m *Model) error {
	p.advance() // PARTS
	for p.tok.Kind == TokIdent {
		name := p.tok
		p.advance()
		if _, err := p.expect(TokColon); err != nil {
			return err
		}
		modName, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		part := &Part{Name: name.Text, ModName: modName.Text, Pos: name.Pos}
		if p.tok.Kind == TokIdent {
			switch strings.ToUpper(p.tok.Text) {
			case "INSTRUCTION":
				part.Flag = FlagInstruction
			case "MODE":
				part.Flag = FlagMode
			case "PC":
				part.Flag = FlagPC
			default:
				return errf(p.tok.Pos, "unknown part flag %q (want INSTRUCTION, MODE or PC)", p.tok.Text)
			}
			p.advance()
		}
		if _, err := p.expect(TokSemi); err != nil {
			return err
		}
		m.Parts = append(m.Parts, part)
	}
	return nil
}

func (p *parser) parseConnects(m *Model) error {
	p.advance() // CONNECT
	for p.tok.Kind == TokIdent {
		pos := p.tok.Pos
		first := p.tok
		p.advance()
		c := &Connect{Pos: pos}
		if p.accept(TokDot) {
			port, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			c.SinkPart = first.Text
			c.SinkPort = port.Text
		} else {
			c.SinkPort = first.Text // bus or primary output
		}
		if _, err := p.expect(TokAssign); err != nil {
			return err
		}
		src, err := p.parseExpr()
		if err != nil {
			return err
		}
		c.Src = src
		if p.accept(TokWhen) {
			w, err := p.parseExpr()
			if err != nil {
				return err
			}
			c.When = w
		}
		if _, err := p.expect(TokSemi); err != nil {
			return err
		}
		m.Connects = append(m.Connects, c)
	}
	return nil
}

// Expression parsing with C-like precedence, lowest first:
//
//	|  ^  &  ==/!=  </<=/>/>=  <</>>/>>>  +/-  * / %  unary  primary
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

type binLevel struct {
	toks map[TokKind]rtl.Op
	next func() (Expr, error)
}

func (p *parser) binary(lv binLevel) (Expr, error) {
	x, err := lv.next()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := lv.toks[p.tok.Kind]
		if !ok {
			return x, nil
		}
		pos := p.tok.Pos
		p.advance()
		y, err := lv.next()
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: op, X: x, Y: y, Pos: pos}
	}
}

func (p *parser) parseOr() (Expr, error) {
	return p.binary(binLevel{map[TokKind]rtl.Op{TokPipe: rtl.OpOr}, p.parseXor})
}

func (p *parser) parseXor() (Expr, error) {
	return p.binary(binLevel{map[TokKind]rtl.Op{TokCaret: rtl.OpXor}, p.parseAnd})
}

func (p *parser) parseAnd() (Expr, error) {
	return p.binary(binLevel{map[TokKind]rtl.Op{TokAmp: rtl.OpAnd}, p.parseEquality})
}

func (p *parser) parseEquality() (Expr, error) {
	return p.binary(binLevel{map[TokKind]rtl.Op{TokEq: rtl.OpEq, TokNe: rtl.OpNe}, p.parseRelational})
}

func (p *parser) parseRelational() (Expr, error) {
	return p.binary(binLevel{map[TokKind]rtl.Op{
		TokLt: rtl.OpLt, TokLe: rtl.OpLe, TokGt: rtl.OpGt, TokGe: rtl.OpGe}, p.parseShift})
}

func (p *parser) parseShift() (Expr, error) {
	return p.binary(binLevel{map[TokKind]rtl.Op{
		TokShl: rtl.OpShl, TokShr: rtl.OpShr, TokAshr: rtl.OpAshr}, p.parseAdditive})
}

func (p *parser) parseAdditive() (Expr, error) {
	return p.binary(binLevel{map[TokKind]rtl.Op{TokPlus: rtl.OpAdd, TokMinus: rtl.OpSub}, p.parseMultiplicative})
}

func (p *parser) parseMultiplicative() (Expr, error) {
	return p.binary(binLevel{map[TokKind]rtl.Op{
		TokStar: rtl.OpMul, TokSlash: rtl.OpDiv, TokPercent: rtl.OpMod}, p.parseUnary})
}

func (p *parser) parseUnary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: rtl.OpNeg, X: x, Pos: pos}, nil
	case TokTilde:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: rtl.OpNot, X: x, Pos: pos}, nil
	case TokBang:
		// !x is sugar for x == 0.
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: rtl.OpEq, X: x, Y: &NumExpr{Val: 0, Pos: pos}, Pos: pos}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokLBrack {
		pos := p.tok.Pos
		p.advance()
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ix := &IndexExpr{X: x, Hi: hi, Pos: pos}
		if p.accept(TokColon) {
			lo, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ix.Lo = lo
		}
		if _, err := p.expect(TokRBrack); err != nil {
			return nil, err
		}
		x = ix
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokNumber:
		v := p.tok.Val
		p.advance()
		return &NumExpr{Val: v, Pos: pos}, nil
	case TokIdent:
		name := p.tok.Text
		p.advance()
		if p.accept(TokDot) {
			port, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return &PortSelExpr{Part: name, Port: port.Text, Pos: pos}, nil
		}
		return &IdentExpr{Name: name, Pos: pos}, nil
	case TokLParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokCase:
		return p.parseCase()
	}
	return nil, errf(pos, "expected expression, found %s", p.tok)
}

func (p *parser) parseCase() (Expr, error) {
	pos := p.tok.Pos
	p.advance() // CASE
	sel, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOf); err != nil {
		return nil, err
	}
	ce := &CaseExpr{Sel: sel, Pos: pos}
	for p.tok.Kind != TokEnd {
		if p.accept(TokElse) {
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			body, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ce.Else = body
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			continue
		}
		neg := p.accept(TokMinus)
		num, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		val := num.Val
		if neg {
			val = -val
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Alts = append(ce.Alts, CaseAlt{Val: val, Body: body})
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	p.advance() // END
	return ce, nil
}
