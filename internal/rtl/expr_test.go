package rtl

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bdd"
)

func TestOpProperties(t *testing.T) {
	comm := []Op{OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe}
	for _, op := range comm {
		if !op.Commutative() {
			t.Errorf("%s should be commutative", op)
		}
	}
	noncomm := []Op{OpSub, OpDiv, OpMod, OpShl, OpShr, OpAshr, OpLt, OpLe, OpGt, OpGe}
	for _, op := range noncomm {
		if op.Commutative() {
			t.Errorf("%s should not be commutative", op)
		}
	}
	if OpNeg.Arity() != 1 || OpNot.Arity() != 1 || OpPass.Arity() != 1 {
		t.Error("unary arities wrong")
	}
	if OpAdd.Arity() != 2 || OpLt.Arity() != 2 {
		t.Error("binary arities wrong")
	}
}

func sampleTree() *Expr {
	// acc := (ram[IW[7:0]] * t) + acc   — a MAC-shaped template source
	return NewOp(OpAdd, 16,
		NewOp(OpMul, 16,
			NewRead("ram.m", 16, NewInsnField(7, 0)),
			NewRead("t.r", 16, nil)),
		NewRead("acc.r", 16, nil))
}

func TestExprString(t *testing.T) {
	e := sampleTree()
	want := "((ram.m[IW[7:0]] * t.r) + acc.r)"
	if e.String() != want {
		t.Fatalf("String = %q, want %q", e, want)
	}
	if NewInsnField(3, 3).String() != "IW[3]" {
		t.Error("single-bit field rendering wrong")
	}
	if NewConst(42, 8).String() != "42" {
		t.Error("const rendering wrong")
	}
	if NewPort("in0", 16).String() != "in0" {
		t.Error("port rendering wrong")
	}
	if NewOp(OpNeg, 16, NewConst(1, 16)).String() != "neg(1)" {
		t.Error("unary rendering wrong")
	}
}

func TestSizeDepth(t *testing.T) {
	e := sampleTree()
	if e.Size() != 6 {
		t.Errorf("Size = %d, want 6", e.Size())
	}
	if e.Depth() != 4 {
		t.Errorf("Depth = %d, want 4", e.Depth())
	}
	var nilExpr *Expr
	if nilExpr.Size() != 0 || nilExpr.Depth() != 0 {
		t.Error("nil tree size/depth must be 0")
	}
}

func TestCloneEqual(t *testing.T) {
	e := sampleTree()
	c := e.Clone()
	if !e.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	if e == c || e.Kids[0] == c.Kids[0] {
		t.Fatal("clone must be a deep copy")
	}
	c.Kids[1].Storage = "other.r"
	if e.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
}

func TestEqualDiscriminates(t *testing.T) {
	cases := []struct{ a, b *Expr }{
		{NewConst(1, 8), NewConst(2, 8)},
		{NewConst(1, 8), NewConst(1, 16)},
		{NewConst(1, 8), NewRead("x", 8, nil)},
		{NewRead("x", 8, nil), NewRead("y", 8, nil)},
		{NewPort("a", 8), NewPort("b", 8)},
		{NewInsnField(7, 0), NewInsnField(7, 1)},
		{NewOp(OpAdd, 8, NewConst(1, 8), NewConst(2, 8)),
			NewOp(OpSub, 8, NewConst(1, 8), NewConst(2, 8))},
		{NewRead("m", 8, NewConst(0, 4)), NewRead("m", 8, nil)},
	}
	for i, c := range cases {
		if c.a.Equal(c.b) {
			t.Errorf("case %d: distinct trees reported equal: %s vs %s", i, c.a, c.b)
		}
	}
}

func TestKeyMatchesEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var gen func(depth int) *Expr
	gen = func(depth int) *Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			switch rng.Intn(4) {
			case 0:
				return NewConst(int64(rng.Intn(4)), 8)
			case 1:
				return NewRead([]string{"a.r", "b.r"}[rng.Intn(2)], 8, nil)
			case 2:
				return NewInsnField(7, 0)
			default:
				return NewPort("p", 8)
			}
		}
		ops := []Op{OpAdd, OpSub, OpMul}
		return NewOp(ops[rng.Intn(3)], 8, gen(depth-1), gen(depth-1))
	}
	for trial := 0; trial < 500; trial++ {
		a, b := gen(3), gen(3)
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatalf("Key/Equal disagree for %s vs %s", a, b)
		}
	}
}

func TestWalkAndCollectors(t *testing.T) {
	e := sampleTree()
	count := 0
	e.Walk(func(*Expr) { count++ })
	if count != e.Size() {
		t.Errorf("Walk visited %d nodes, Size = %d", count, e.Size())
	}
	fields := e.InsnFields()
	if len(fields) != 1 || fields[0].Hi != 7 || fields[0].Lo != 0 {
		t.Errorf("InsnFields = %v", fields)
	}
	reads := e.Reads()
	if len(reads) != 3 {
		t.Errorf("Reads found %d, want 3", len(reads))
	}
}

func TestAddr(t *testing.T) {
	r := NewRead("ram.m", 16, NewInsnField(7, 0))
	if r.Addr() == nil || r.Addr().Kind != InsnField {
		t.Fatal("Addr missing")
	}
	if NewRead("acc.r", 16, nil).Addr() != nil {
		t.Fatal("plain register read must have nil Addr")
	}
	if NewConst(0, 1).Addr() != nil {
		t.Fatal("non-read Addr must be nil")
	}
}

func TestTemplateString(t *testing.T) {
	m := bdd.New()
	tpl := &Template{
		Dest:  "acc.r",
		Src:   NewRead("ram.m", 16, NewInsnField(7, 0)),
		Cond:  ExecCond{Static: m.True()},
		Width: 16,
	}
	if got := tpl.String(); got != "acc.r := ram.m[IW[7:0]]" {
		t.Errorf("String = %q", got)
	}
	tpl2 := &Template{
		Dest:     "ram.m",
		DestAddr: NewInsnField(7, 0),
		Src:      NewRead("acc.r", 16, nil),
		Cond: ExecCond{Static: m.True(),
			Dynamic: []*Expr{NewOp(OpEq, 1, NewRead("z.r", 1, nil), NewConst(1, 1))}},
	}
	got := tpl2.String()
	if !strings.Contains(got, "ram.m[IW[7:0]] := acc.r") || !strings.Contains(got, "when") {
		t.Errorf("String = %q", got)
	}
}

func TestBaseDedup(t *testing.T) {
	m := bdd.New()
	b := NewBase(m)
	x, y := m.Var(0), m.Var(1)
	t1 := &Template{Dest: "acc.r", Src: NewRead("b.r", 16, nil),
		Cond: ExecCond{Static: x}, Width: 16}
	t2 := &Template{Dest: "acc.r", Src: NewRead("b.r", 16, nil),
		Cond: ExecCond{Static: y}, Width: 16}
	c1 := b.Add(t1)
	c2 := b.Add(t2)
	if c1 != c2 {
		t.Fatal("identical transfers must merge")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	if c1.Cond.Static != m.Or(x, y) {
		t.Fatal("merged condition must be the disjunction")
	}
	// A different transfer stays separate.
	t3 := &Template{Dest: "acc.r", Src: NewRead("c.r", 16, nil),
		Cond: ExecCond{Static: x}, Width: 16}
	b.Add(t3)
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if got := b.Destinations(); len(got) != 1 || got[0] != "acc.r" {
		t.Fatalf("Destinations = %v", got)
	}
}

func TestBaseDynamicGuardsKeptSeparate(t *testing.T) {
	m := bdd.New()
	b := NewBase(m)
	g := NewOp(OpEq, 1, NewRead("z.r", 1, nil), NewConst(1, 1))
	t1 := &Template{Dest: "pc.r", Src: NewInsnField(7, 0),
		Cond: ExecCond{Static: m.Var(0)}}
	t2 := &Template{Dest: "pc.r", Src: NewInsnField(7, 0),
		Cond: ExecCond{Static: m.Var(1), Dynamic: []*Expr{g}}}
	b.Add(t1)
	b.Add(t2)
	if b.Len() != 2 {
		t.Fatalf("guarded and unguarded jump merged; Len = %d", b.Len())
	}
}

func TestBaseIDsAndString(t *testing.T) {
	m := bdd.New()
	b := NewBase(m)
	b.Add(&Template{Dest: "a.r", Src: NewConst(0, 8), Cond: ExecCond{Static: m.True()}})
	b.Add(&Template{Dest: "b.r", Src: NewConst(0, 8), Cond: ExecCond{Static: m.True()}})
	if b.Templates[0].ID != 0 || b.Templates[1].ID != 1 {
		t.Fatal("IDs not sequential")
	}
	s := b.String()
	if !strings.Contains(s, "a.r := 0") || !strings.Contains(s, "b.r := 0") {
		t.Errorf("base rendering wrong:\n%s", s)
	}
}
