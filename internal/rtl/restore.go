package rtl

import (
	"fmt"

	"repro/internal/bdd"
)

// RestoreBase rebuilds a template base from an already-deduplicated
// template list in its original Add order (a decoded retarget artifact).
// It reproduces the byKey disambiguation Add applied when the base was
// first built — duplicate transfer keys (templates kept apart because of
// distinct dynamic guards) are suffixed with the template id, which equals
// the nextID Add used at insertion time — so a restored base accepts
// further Add calls exactly like the original.
func RestoreBase(m *bdd.Manager, templates []*Template) (*Base, error) {
	b := NewBase(m)
	for i, t := range templates {
		if t == nil {
			return nil, fmt.Errorf("rtl: restore: nil template at position %d", i)
		}
		if t.Src == nil {
			return nil, fmt.Errorf("rtl: restore: template %d has no source pattern", t.ID)
		}
		key := t.Key()
		if _, ok := b.byKey[key]; ok {
			key = fmt.Sprintf("%s#%d", key, t.ID)
			if _, ok := b.byKey[key]; ok {
				return nil, fmt.Errorf("rtl: restore: duplicate template key %q", key)
			}
		}
		b.byKey[key] = t
		b.Templates = append(b.Templates, t)
		if t.ID >= b.nextID {
			b.nextID = t.ID + 1
		}
	}
	return b, nil
}
