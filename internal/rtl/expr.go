// Package rtl defines the register-transfer-level expression trees and RT
// templates that form RECORD's behavioral processor view.
//
// An RT template represents one primitive processor operation: a transfer
// of a value, computed by a tree of hardware operators, into a storage
// destination (register, memory cell) or output port within a single
// machine cycle (paper section 2).  Templates carry an execution condition
// — the instruction-word/mode-register constraint under which the hardware
// actually performs the transfer — represented as a BDD, plus any residual
// dynamic guards (e.g. a conditional jump's flag test).
package rtl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
)

// Op names an RT-level hardware operator.  The set is open: HDL models may
// use any operator the simulator and IR agree on, but these cover the
// fixed-point DSP class of the paper.
type Op string

// Canonical operator names shared between HDL behaviors, extracted
// templates, the tree grammar and the compiler IR.
const (
	OpAdd  Op = "+"
	OpSub  Op = "-"
	OpMul  Op = "*"
	OpDiv  Op = "/"
	OpMod  Op = "%"
	OpAnd  Op = "&"
	OpOr   Op = "|"
	OpXor  Op = "^"
	OpShl  Op = "<<"
	OpShr  Op = ">>"  // logical right shift
	OpAshr Op = ">>>" // arithmetic right shift
	OpEq   Op = "=="
	OpNe   Op = "!="
	OpLt   Op = "<"
	OpLe   Op = "<="
	OpGt   Op = ">"
	OpGe   Op = ">="
	OpNeg  Op = "neg"
	OpNot  Op = "~"
	OpPass Op = "pass" // identity (wire through an FU)
)

// Commutative reports whether swapping the two operands of op preserves
// semantics; used by the template-base extension (paper section 3).
func (op Op) Commutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		return true
	}
	return false
}

// Arity returns the operand count of op (1 or 2).
func (op Op) Arity() int {
	switch op {
	case OpNeg, OpNot, OpPass:
		return 1
	}
	return 2
}

// ExprKind discriminates RT expression nodes.
type ExprKind int

// Expression node kinds.
const (
	Const     ExprKind = iota // integer constant (hardwired or program)
	OpApp                     // operator application
	Read                      // storage read; Kids[0] is the address for arrays
	PortRef                   // primary processor input port
	InsnField                 // instruction word bits Lo..Hi (an immediate operand)
	Slice                     // bit slice Lo..Hi of Kids[0] (a subword select)
)

// Expr is an RT-level expression tree.  Exprs are treated as immutable
// after construction; sharing subtrees is allowed.  The JSON tags define
// the retarget-artifact wire form (internal/artifact); zero-valued fields
// are omitted and restore to their zero values.
type Expr struct {
	Kind    ExprKind `json:"k,omitempty"`
	Width   int      `json:"w,omitempty"` // result width in bits
	Op      Op       `json:"op,omitempty"` // OpApp
	Val     int64    `json:"val,omitempty"` // Const
	Storage string   `json:"st,omitempty"` // Read: qualified "part.var"
	Port    string   `json:"port,omitempty"` // PortRef: qualified primary port name
	Lo      int      `json:"lo,omitempty"` // InsnField: bit range within the instruction word
	Hi      int      `json:"hi,omitempty"`
	Kids    []*Expr  `json:"kids,omitempty"`
}

// NewConst builds a constant node.
func NewConst(val int64, width int) *Expr {
	return &Expr{Kind: Const, Val: val, Width: width}
}

// NewOp builds an operator application.
func NewOp(op Op, width int, kids ...*Expr) *Expr {
	return &Expr{Kind: OpApp, Op: op, Width: width, Kids: kids}
}

// NewRead builds a storage read; addr may be nil for plain registers.
func NewRead(storage string, width int, addr *Expr) *Expr {
	e := &Expr{Kind: Read, Storage: storage, Width: width}
	if addr != nil {
		e.Kids = []*Expr{addr}
	}
	return e
}

// NewPort builds a primary input port reference.
func NewPort(port string, width int) *Expr {
	return &Expr{Kind: PortRef, Port: port, Width: width}
}

// NewInsnField builds an instruction-field (immediate) reference covering
// instruction word bits lo..hi.
func NewInsnField(hi, lo int) *Expr {
	return &Expr{Kind: InsnField, Lo: lo, Hi: hi, Width: hi - lo + 1}
}

// NewSlice builds a bit slice hi..lo of kid, folding constants, nested
// slices, instruction fields and full-range slices.
func NewSlice(hi, lo int, kid *Expr) *Expr {
	w := hi - lo + 1
	switch {
	case lo == 0 && w == kid.Width:
		return kid
	case kid.Kind == Const:
		mask := int64(1)<<uint(w) - 1
		return NewConst((kid.Val>>uint(lo))&mask, w)
	case kid.Kind == InsnField:
		return NewInsnField(kid.Lo+hi, kid.Lo+lo)
	case kid.Kind == Slice:
		return NewSlice(kid.Lo+hi, kid.Lo+lo, kid.Kids[0])
	}
	return &Expr{Kind: Slice, Lo: lo, Hi: hi, Width: w, Kids: []*Expr{kid}}
}

// Addr returns the address subexpression of a Read, or nil.
func (e *Expr) Addr() *Expr {
	if e.Kind == Read && len(e.Kids) == 1 {
		return e.Kids[0]
	}
	return nil
}

// Size returns the number of nodes in the tree.
func (e *Expr) Size() int {
	if e == nil {
		return 0
	}
	n := 1
	for _, k := range e.Kids {
		n += k.Size()
	}
	return n
}

// Depth returns the height of the tree (1 for a leaf).
func (e *Expr) Depth() int {
	if e == nil {
		return 0
	}
	d := 0
	for _, k := range e.Kids {
		if kd := k.Depth(); kd > d {
			d = kd
		}
	}
	return d + 1
}

// Clone returns a deep copy of the tree.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	c := *e
	if len(e.Kids) > 0 {
		c.Kids = make([]*Expr, len(e.Kids))
		for i, k := range e.Kids {
			c.Kids[i] = k.Clone()
		}
	}
	return &c
}

// Equal reports structural equality of two trees.
func (e *Expr) Equal(o *Expr) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Kind != o.Kind || e.Width != o.Width || len(e.Kids) != len(o.Kids) {
		return false
	}
	switch e.Kind {
	case Const:
		if e.Val != o.Val {
			return false
		}
	case OpApp:
		if e.Op != o.Op {
			return false
		}
	case Read:
		if e.Storage != o.Storage {
			return false
		}
	case PortRef:
		if e.Port != o.Port {
			return false
		}
	case InsnField, Slice:
		if e.Lo != o.Lo || e.Hi != o.Hi {
			return false
		}
	}
	for i := range e.Kids {
		if !e.Kids[i].Equal(o.Kids[i]) {
			return false
		}
	}
	return true
}

// Walk calls f on every node of the tree in pre-order.
func (e *Expr) Walk(f func(*Expr)) {
	if e == nil {
		return
	}
	f(e)
	for _, k := range e.Kids {
		k.Walk(f)
	}
}

// InsnFields returns every instruction-field leaf in the tree, in pre-order.
func (e *Expr) InsnFields() []*Expr {
	var fields []*Expr
	e.Walk(func(n *Expr) {
		if n.Kind == InsnField {
			fields = append(fields, n)
		}
	})
	return fields
}

// Reads returns every storage-read node in the tree, in pre-order.
func (e *Expr) Reads() []*Expr {
	var reads []*Expr
	e.Walk(func(n *Expr) {
		if n.Kind == Read {
			reads = append(reads, n)
		}
	})
	return reads
}

// String renders the tree in a compact prefix-free infix form used in
// diagnostics and golden tests.
func (e *Expr) String() string {
	if e == nil {
		return "<nil>"
	}
	switch e.Kind {
	case Const:
		return fmt.Sprintf("%d", e.Val)
	case PortRef:
		return e.Port
	case InsnField:
		if e.Hi == e.Lo {
			return fmt.Sprintf("IW[%d]", e.Lo)
		}
		return fmt.Sprintf("IW[%d:%d]", e.Hi, e.Lo)
	case Read:
		if a := e.Addr(); a != nil {
			return fmt.Sprintf("%s[%s]", e.Storage, a)
		}
		return e.Storage
	case Slice:
		return fmt.Sprintf("%s[%d:%d]", e.Kids[0], e.Hi, e.Lo)
	case OpApp:
		if e.Op.Arity() == 1 {
			return fmt.Sprintf("%s(%s)", e.Op, e.Kids[0])
		}
		return fmt.Sprintf("(%s %s %s)", e.Kids[0], e.Op, e.Kids[1])
	}
	return "<bad expr>"
}

// Key returns a canonical string usable for structural deduplication; two
// trees have equal keys iff Equal reports true (widths included).
func (e *Expr) Key() string {
	var b strings.Builder
	e.key(&b)
	return b.String()
}

func (e *Expr) key(b *strings.Builder) {
	if e == nil {
		b.WriteString("_")
		return
	}
	switch e.Kind {
	case Const:
		fmt.Fprintf(b, "c%d:%d", e.Val, e.Width)
	case PortRef:
		fmt.Fprintf(b, "p%s:%d", e.Port, e.Width)
	case InsnField:
		fmt.Fprintf(b, "f%d.%d", e.Hi, e.Lo)
	case Read:
		fmt.Fprintf(b, "r%s:%d", e.Storage, e.Width)
	case OpApp:
		fmt.Fprintf(b, "o%s:%d", e.Op, e.Width)
	case Slice:
		fmt.Fprintf(b, "s%d.%d", e.Hi, e.Lo)
	}
	if len(e.Kids) > 0 {
		b.WriteByte('(')
		for i, k := range e.Kids {
			if i > 0 {
				b.WriteByte(',')
			}
			k.key(b)
		}
		b.WriteByte(')')
	}
}

// ExecCond is an RT template's execution condition: a static constraint over
// instruction-word and mode-register bits (the BDD), plus residual dynamic
// guards that depend on run-time state (e.g. a zero flag for conditional
// jumps).  A template is valid iff Static is satisfiable.
type ExecCond struct {
	Static  *bdd.Node
	Dynamic []*Expr
}

// Template is one extracted RT template: Dest := Src under Cond.
type Template struct {
	ID       int
	Dest     string // qualified storage name, or primary output port name
	DestPort bool   // true when Dest is a primary output port
	DestAddr *Expr  // address pattern for array destinations, nil otherwise
	Src      *Expr  // the tree pattern
	Cond     ExecCond
	Width    int // transfer width
	// Synthetic marks templates added by algebraic extension rather than
	// extracted from the netlist.
	Synthetic bool
}

// String renders the template as "dest := src [cond]".
func (t *Template) String() string {
	dest := t.Dest
	if t.DestAddr != nil {
		dest = fmt.Sprintf("%s[%s]", t.Dest, t.DestAddr)
	}
	var dyn string
	if len(t.Cond.Dynamic) > 0 {
		parts := make([]string, len(t.Cond.Dynamic))
		for i, d := range t.Cond.Dynamic {
			parts[i] = d.String()
		}
		dyn = " when " + strings.Join(parts, " && ")
	}
	return fmt.Sprintf("%s := %s%s", dest, t.Src, dyn)
}

// Key returns a canonical deduplication key covering destination and source
// pattern (but not the condition: structurally equal transfers with
// different encodings are merged by Base.Add, OR-ing their conditions).
func (t *Template) Key() string {
	var b strings.Builder
	if t.DestPort {
		b.WriteString("P!")
	}
	b.WriteString(t.Dest)
	b.WriteByte('=')
	if t.DestAddr != nil {
		t.DestAddr.key(&b)
	}
	b.WriteByte(';')
	t.Src.key(&b)
	return b.String()
}

// Base is an RT template base: the complete set of valid templates for one
// processor, with structural deduplication.
type Base struct {
	Templates []*Template
	byKey     map[string]*Template
	nextID    int
	// BDD is the manager owning every template's static condition.
	BDD *bdd.Manager
}

// NewBase creates an empty template base whose conditions live in m.
func NewBase(m *bdd.Manager) *Base {
	return &Base{byKey: make(map[string]*Template), BDD: m}
}

// Add inserts t unless an identical transfer already exists; when a
// duplicate transfer arrives, their static conditions are OR-ed (the same
// RT reachable under several encodings).  It returns the canonical
// template.
func (b *Base) Add(t *Template) *Template {
	key := t.Key()
	if prev, ok := b.byKey[key]; ok {
		if len(t.Cond.Dynamic) == 0 && len(prev.Cond.Dynamic) == 0 {
			prev.Cond.Static = b.BDD.Or(prev.Cond.Static, t.Cond.Static)
			return prev
		}
		// Distinct dynamic guards: keep both; disambiguate the key.
		key = fmt.Sprintf("%s#%d", key, b.nextID)
	}
	t.ID = b.nextID
	b.nextID++
	b.byKey[key] = t
	b.Templates = append(b.Templates, t)
	return t
}

// Len returns the number of templates.
func (b *Base) Len() int { return len(b.Templates) }

// Destinations returns the sorted set of distinct destinations.
func (b *Base) Destinations() []string {
	set := make(map[string]bool)
	for _, t := range b.Templates {
		set[t.Dest] = true
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// String renders the whole base, one template per line, sorted by ID.
func (b *Base) String() string {
	var sb strings.Builder
	for _, t := range b.Templates {
		fmt.Fprintf(&sb, "%4d: %s\n", t.ID, t)
	}
	return sb.String()
}
