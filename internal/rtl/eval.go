package rtl

// Fixed-point operator semantics shared by the IR interpreter (the
// compiler-side oracle) and the netlist simulator (the hardware-side
// oracle): values are two's-complement words of a given width, held
// sign-extended in int64.

// Mask returns the w-bit mask (w in 1..64).
func Mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// Wrap truncates v to w bits and sign-extends the result, producing the
// canonical representation of the two's-complement word.
func Wrap(v int64, w int) int64 {
	if w >= 64 {
		return v
	}
	u := uint64(v) & Mask(w)
	if u&(1<<uint(w-1)) != 0 {
		return int64(u | ^Mask(w))
	}
	return int64(u)
}

// EvalBin applies a binary operator at width w.  Comparison results are
// 0/1 wrapped to w (at width 1 the canonical set value is -1, matching
// hardware bit semantics).  Division and modulus by zero yield 0 (hardware
// models are free to do anything; a total function keeps the oracles
// aligned).  Shift amounts are taken from the low bits of b, clamped to w.
func EvalBin(op Op, a, b int64, w int) int64 {
	switch op {
	case OpAdd:
		return Wrap(a+b, w)
	case OpSub:
		return Wrap(a-b, w)
	case OpMul:
		return Wrap(a*b, w)
	case OpDiv:
		if b == 0 {
			return 0
		}
		return Wrap(a/b, w)
	case OpMod:
		if b == 0 {
			return 0
		}
		return Wrap(a%b, w)
	case OpAnd:
		return Wrap(a&b, w)
	case OpOr:
		return Wrap(a|b, w)
	case OpXor:
		return Wrap(a^b, w)
	case OpShl:
		return Wrap(a<<uint(shiftAmount(b, w)), w)
	case OpShr:
		u := uint64(a) & Mask(w)
		return Wrap(int64(u>>uint(shiftAmount(b, w))), w)
	case OpAshr:
		return Wrap(a>>uint(shiftAmount(b, w)), w)
	case OpEq:
		return Wrap(b2i(a == b), w)
	case OpNe:
		return Wrap(b2i(a != b), w)
	case OpLt:
		return Wrap(b2i(a < b), w)
	case OpLe:
		return Wrap(b2i(a <= b), w)
	case OpGt:
		return Wrap(b2i(a > b), w)
	case OpGe:
		return Wrap(b2i(a >= b), w)
	}
	return 0
}

// EvalUn applies a unary operator at width w.
func EvalUn(op Op, a int64, w int) int64 {
	switch op {
	case OpNeg:
		return Wrap(-a, w)
	case OpNot:
		return Wrap(^a, w)
	case OpPass:
		return Wrap(a, w)
	}
	return 0
}

// EvalSlice extracts bits hi..lo of a (viewed as a bit pattern) and
// sign-extends the result to its hi-lo+1 width representation.
func EvalSlice(a int64, hi, lo int) int64 {
	u := uint64(a) >> uint(lo)
	return Wrap(int64(u), hi-lo+1)
}

func shiftAmount(b int64, w int) int {
	if b < 0 {
		return 0
	}
	if b > int64(w) {
		return w
	}
	return int(b)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
