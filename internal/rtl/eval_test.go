package rtl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWrap(t *testing.T) {
	cases := []struct {
		v    int64
		w    int
		want int64
	}{
		{0, 8, 0}, {127, 8, 127}, {128, 8, -128}, {255, 8, -1}, {256, 8, 0},
		{-1, 8, -1}, {-129, 8, 127}, {65535, 16, -1}, {32767, 16, 32767},
		{1 << 40, 64, 1 << 40}, {5, 1, -1}, {2, 1, 0}, {1, 1, -1},
	}
	for _, c := range cases {
		if got := Wrap(c.v, c.w); got != c.want {
			t.Errorf("Wrap(%d,%d) = %d, want %d", c.v, c.w, got, c.want)
		}
	}
}

func TestMask(t *testing.T) {
	if Mask(8) != 0xFF || Mask(1) != 1 || Mask(64) != ^uint64(0) {
		t.Error("Mask wrong")
	}
}

// TestEvalBinMatchesInt16 cross-checks 16-bit semantics against Go int16
// arithmetic on random operands.
func TestEvalBinMatchesInt16(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		a16 := int16(rng.Intn(1 << 16))
		b16 := int16(rng.Intn(1 << 16))
		a, b := int64(a16), int64(b16)
		checks := []struct {
			op   Op
			want int64
		}{
			{OpAdd, int64(a16 + b16)},
			{OpSub, int64(a16 - b16)},
			{OpMul, int64(a16 * b16)},
			{OpAnd, int64(a16 & b16)},
			{OpOr, int64(a16 | b16)},
			{OpXor, int64(a16 ^ b16)},
			{OpEq, b2i(a16 == b16)},
			{OpNe, b2i(a16 != b16)},
			{OpLt, b2i(a16 < b16)},
			{OpLe, b2i(a16 <= b16)},
			{OpGt, b2i(a16 > b16)},
			{OpGe, b2i(a16 >= b16)},
		}
		for _, c := range checks {
			if got := EvalBin(c.op, a, b, 16); got != c.want {
				t.Fatalf("EvalBin(%s, %d, %d) = %d, want %d", c.op, a, b, got, c.want)
			}
		}
		if b16 != 0 {
			if got := EvalBin(OpDiv, a, b, 16); got != int64(a16/b16) {
				t.Fatalf("div(%d,%d) = %d", a, b, got)
			}
			if got := EvalBin(OpMod, a, b, 16); got != int64(a16%b16) {
				t.Fatalf("mod(%d,%d) = %d", a, b, got)
			}
		}
	}
}

func TestDivModByZero(t *testing.T) {
	if EvalBin(OpDiv, 5, 0, 16) != 0 || EvalBin(OpMod, 5, 0, 16) != 0 {
		t.Error("division by zero must yield 0")
	}
}

func TestShifts(t *testing.T) {
	// 8-bit: -1 >> 1 logical = 127; arithmetic = -1.
	if got := EvalBin(OpShr, -1, 1, 8); got != 127 {
		t.Errorf("logical shr = %d", got)
	}
	if got := EvalBin(OpAshr, -1, 1, 8); got != -1 {
		t.Errorf("arith shr = %d", got)
	}
	if got := EvalBin(OpShl, 3, 2, 8); got != 12 {
		t.Errorf("shl = %d", got)
	}
	// Overshift clamps.
	if got := EvalBin(OpShl, 1, 100, 8); got != 0 {
		t.Errorf("overshift = %d", got)
	}
	if got := EvalBin(OpShr, -1, 100, 8); got != 0 {
		t.Errorf("overshift shr = %d", got)
	}
	// Negative shift treated as zero.
	if got := EvalBin(OpShl, 3, -1, 8); got != 3 {
		t.Errorf("negative shift = %d", got)
	}
}

func TestEvalUn(t *testing.T) {
	if EvalUn(OpNeg, 1, 8) != -1 || EvalUn(OpNeg, -128, 8) != -128 {
		t.Error("neg wrong")
	}
	if EvalUn(OpNot, 0, 8) != -1 {
		t.Error("not wrong")
	}
	if EvalUn(OpPass, -5, 8) != -5 {
		t.Error("pass wrong")
	}
}

func TestEvalSlice(t *testing.T) {
	// 0xB7 = 1011_0111
	if got := EvalSlice(0xB7, 7, 4); got != Wrap(0xB, 4) {
		t.Errorf("slice hi = %d", got)
	}
	if got := EvalSlice(0xB7, 3, 0); got != 7 {
		t.Errorf("slice lo = %d", got)
	}
	if got := EvalSlice(-1, 0, 0); got != -1 { // single bit 1 → -1 in 1-bit two's complement
		t.Errorf("slice bit = %d", got)
	}
}

// TestPropWrapIdempotent: Wrap is idempotent and result always fits.
func TestPropWrapIdempotent(t *testing.T) {
	f := func(v int64, wRaw uint8) bool {
		w := int(wRaw%64) + 1
		x := Wrap(v, w)
		if Wrap(x, w) != x {
			return false
		}
		// Result within signed range.
		if w < 64 {
			lo, hi := -(int64(1) << uint(w-1)), int64(1)<<uint(w-1)-1
			if x < lo || x > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropAddHomomorphic: Wrap(a)+Wrap(b) wrapped equals Wrap(a+b).
func TestPropAddHomomorphic(t *testing.T) {
	f := func(a, b int64, wRaw uint8) bool {
		w := int(wRaw%32) + 1
		return EvalBin(OpAdd, Wrap(a, w), Wrap(b, w), w) == Wrap(a+b, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
