package netlist

import (
	"strings"
	"testing"

	"repro/internal/hdl"
)

const tinySrc = `
PROCESSOR tiny;
CONST WORD = 8;

MODULE Alu (IN a: WORD; IN b: WORD; IN ctl: 2; OUT y: WORD);
BEGIN
  y <- CASE ctl OF 0: a + b; 1: a - b; 2: a & b; ELSE: b; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 4; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [16];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE Rom (IN a: 4; OUT q: 16);
VAR m: 16 [16];
BEGIN q <- m[a]; END;

MODULE Inc (IN a: 4; OUT y: 4);
BEGIN y <- a + 1; END;

MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN q <- r; r <- d; END;

PARTS
  alu  : Alu;
  acc  : Reg;
  ram  : Ram;
  imem : Rom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc;

CONNECT
  alu.a   <- acc.q;
  alu.b   <- ram.q;
  alu.ctl <- imem.q[15:14];
  acc.d   <- alu.y;
  acc.ld  <- imem.q[13];
  ram.a   <- imem.q[3:0];
  ram.d   <- acc.q;
  ram.w   <- imem.q[12];
  imem.a  <- pc.q;
  pinc.a  <- pc.q;
  pc.d    <- pinc.y;
END.
`

func elaborate(t *testing.T, src string) *Netlist {
	t.Helper()
	m, err := hdl.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	n, err := Elaborate(m)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return n
}

func TestElaborateTiny(t *testing.T) {
	n := elaborate(t, tinySrc)
	if len(n.Insts) != 6 {
		t.Fatalf("insts = %d", len(n.Insts))
	}
	if n.InsnInst == nil || n.InsnInst.Name != "imem" || n.InsnPort != "q" || n.InsnWidth != 16 {
		t.Fatalf("instruction identification wrong: %+v %q %d", n.InsnInst, n.InsnPort, n.InsnWidth)
	}
	if n.PCInst == nil || n.PCInst.Name != "pc" {
		t.Fatal("PC not identified")
	}
	// Storage registry.
	for _, q := range []string{"acc.r", "ram.m", "imem.m", "pc.r"} {
		if n.Storages[q] == nil {
			t.Errorf("storage %s missing", q)
		}
	}
	if !n.Storages["imem.m"].Insn {
		t.Error("imem.m must be flagged Insn")
	}
	if !n.Storages["pc.r"].PC {
		t.Error("pc.r must be flagged PC")
	}
	// DataStorages excludes the instruction memory.
	for _, s := range n.DataStorages() {
		if s.QName() == "imem.m" {
			t.Error("DataStorages must exclude instruction memory")
		}
	}
	if len(n.DataStorages()) != 3 {
		t.Errorf("DataStorages = %d, want 3", len(n.DataStorages()))
	}
}

func TestDrivers(t *testing.T) {
	n := elaborate(t, tinySrc)
	alu := n.InstByName["alu"]
	a := alu.Drivers["a"]
	if a == nil || a.Kind != DrivePort || a.Inst.Name != "acc" || a.Port != "q" {
		t.Fatalf("alu.a driver = %v", a)
	}
	if a.Hi != 7 || a.Lo != 0 || a.Width != 8 {
		t.Fatalf("alu.a slice = [%d:%d] w%d", a.Hi, a.Lo, a.Width)
	}
	ctl := alu.Drivers["ctl"]
	if ctl.Kind != DrivePort || ctl.Inst.Name != "imem" || ctl.Hi != 15 || ctl.Lo != 14 {
		t.Fatalf("alu.ctl driver = %v [%d:%d]", ctl, ctl.Hi, ctl.Lo)
	}
	if ctl.String() != "imem.q[15:14]" {
		t.Errorf("driver rendering = %q", ctl)
	}
	if a.String() != "acc.q" {
		t.Errorf("full-width driver rendering = %q", a)
	}
}

func TestOutputDeps(t *testing.T) {
	n := elaborate(t, tinySrc)
	alu := n.InstByName["alu"]
	deps := n.OutputDeps(alu, "y")
	if strings.Join(deps, ",") != "a,b,ctl" {
		t.Fatalf("alu.y deps = %v", deps)
	}
	acc := n.InstByName["acc"]
	if deps := n.OutputDeps(acc, "q"); len(deps) != 0 {
		t.Fatalf("register read must have no input deps, got %v", deps)
	}
	ram := n.InstByName["ram"]
	if deps := n.OutputDeps(ram, "q"); strings.Join(deps, ",") != "a" {
		t.Fatalf("ram.q deps = %v", deps)
	}
}

func TestCombLoopDetected(t *testing.T) {
	src := `
PROCESSOR loopy;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
MODULE Buf (IN a: 8; OUT y: 8);
BEGIN y <- a + 1; END;
PARTS imem : Rom INSTRUCTION; b1 : Buf; b2 : Buf;
CONNECT
  imem.a <- 3;
  b1.a <- b2.y;
  b2.a <- b1.y;
END.
`
	m, err := hdl.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(m); err == nil || !strings.Contains(err.Error(), "combinational loop") {
		t.Fatalf("expected combinational loop error, got %v", err)
	}
}

func TestSequentialBreaksLoop(t *testing.T) {
	// acc feeds alu feeds acc: fine, the register breaks the cycle.
	n := elaborate(t, tinySrc)
	if n == nil {
		t.Fatal("tiny model must elaborate")
	}
}

func TestBusElaboration(t *testing.T) {
	src := `
PROCESSOR p;
CONST W = 8;
MODULE Rom (IN a: 4; OUT q: W);
VAR m: W [16];
BEGIN q <- m[a]; END;
MODULE Reg (IN d: W; IN ld: 1; OUT q: W);
VAR r: W;
BEGIN q <- r; AT ld == 1 DO r <- d; END;
BUS db : W;
PARTS imem : Rom INSTRUCTION; r0 : Reg; r1 : Reg;
CONNECT
  imem.a <- 3;
  db <- r0.q WHEN imem.q[7] == 1;
  db <- r1.q WHEN imem.q[7] == 0;
  r0.d <- db;
  r1.d <- db;
  r0.ld <- imem.q[6];
  r1.ld <- imem.q[5];
END.
`
	n := elaborate(t, src)
	bus := n.Buses["db"]
	if bus == nil || len(bus.Drivers) != 2 {
		t.Fatalf("bus drivers = %+v", bus)
	}
	for _, bd := range bus.Drivers {
		if bd.When == nil {
			t.Error("bus driver lost WHEN")
		}
		if bd.Src.Kind != DrivePort {
			t.Errorf("bus driver source kind = %v", bd.Src.Kind)
		}
	}
	r0 := n.InstByName["r0"]
	if r0.Drivers["d"].Kind != DriveBus {
		t.Error("r0.d must be bus-driven")
	}
}

func TestPrimaryPortsElaboration(t *testing.T) {
	src := `
PROCESSOR p;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
PORT IN  din  : 8;
PORT OUT dout : 8;
PARTS imem : Rom INSTRUCTION;
CONNECT
  imem.a <- din[3:0];
  dout <- imem.q;
END.
`
	n := elaborate(t, src)
	if n.PrimaryIn["din"] == nil {
		t.Fatal("primary input missing")
	}
	d := n.PrimaryOut["dout"]
	if d == nil || d.Kind != DrivePort || d.Inst.Name != "imem" {
		t.Fatalf("primary out driver = %v", d)
	}
	imem := n.InstByName["imem"]
	ad := imem.Drivers["a"]
	if ad.Kind != DrivePrimary || ad.Hi != 3 || ad.Lo != 0 {
		t.Fatalf("imem.a driver = %v", ad)
	}
}

func TestConstSource(t *testing.T) {
	src := `
PROCESSOR p;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
MODULE Buf (IN a: 8; OUT y: 8);
BEGIN y <- a; END;
PARTS imem : Rom INSTRUCTION; b : Buf;
CONNECT
  imem.a <- 3;
  b.a <- 42;
END.
`
	n := elaborate(t, src)
	d := n.InstByName["b"].Drivers["a"]
	if d.Kind != DriveConst || d.Const != 42 || d.Width != 8 {
		t.Fatalf("const driver = %+v", d)
	}
}

func TestComplexSourceRejected(t *testing.T) {
	src := `
PROCESSOR p;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
MODULE Buf (IN a: 8; OUT y: 8);
BEGIN y <- a; END;
PARTS imem : Rom INSTRUCTION; b : Buf;
CONNECT
  imem.a <- 3;
  b.a <- imem.q + 1;
END.
`
	m, err := hdl.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(m); err == nil || !strings.Contains(err.Error(), "too complex") {
		t.Fatalf("expected complexity rejection, got %v", err)
	}
}

func TestModeStorages(t *testing.T) {
	src := `
PROCESSOR p;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
MODULE Reg (IN d: 1; IN ld: 1; OUT q: 1);
VAR r: 1;
BEGIN q <- r; AT ld == 1 DO r <- d; END;
PARTS imem : Rom INSTRUCTION; mr : Reg MODE;
CONNECT
  imem.a <- 3;
  mr.d <- imem.q[7];
  mr.ld <- imem.q[6];
END.
`
	n := elaborate(t, src)
	ms := n.ModeStorages()
	if len(ms) != 1 || ms[0].QName() != "mr.r" || !ms[0].Mode {
		t.Fatalf("mode storages = %+v", ms)
	}
}
