// Package netlist elaborates a checked HDL model into RECORD's internal
// graph model (paper fig. 1): part instances as nodes, their port
// interconnections and tristate busses as edges, plus registries of the
// sequential storages, the instruction memory and mode registers that
// instruction-set extraction and the simulator operate on.
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/hdl"
)

// DriverKind discriminates what drives a value sink.
type DriverKind int

// Driver kinds.
const (
	DrivePort    DriverKind = iota // another instance's output port (sliced)
	DriveBus                       // a tristate bus
	DriveConst                     // a hardwired constant
	DrivePrimary                   // a primary processor input port (sliced)
)

// Driver is the resolved source of an instance input port, a bus driver
// value, or a primary output port.
type Driver struct {
	Kind    DriverKind
	Inst    *Inst  // DrivePort
	Port    string // DrivePort: output port name
	Bus     *Bus   // DriveBus
	Const   int64  // DriveConst
	Primary string // DrivePrimary
	Hi, Lo  int    // bit slice of the source (full range when unsliced)
	Width   int    // width delivered to the sink (Hi-Lo+1 except DriveConst/Bus)
}

// String renders the driver for diagnostics.
func (d *Driver) String() string {
	switch d.Kind {
	case DrivePort:
		if d.Hi == d.Inst.Mod.PortByName[d.Port].Width-1 && d.Lo == 0 {
			return fmt.Sprintf("%s.%s", d.Inst.Name, d.Port)
		}
		return fmt.Sprintf("%s.%s[%d:%d]", d.Inst.Name, d.Port, d.Hi, d.Lo)
	case DriveBus:
		return d.Bus.Name
	case DriveConst:
		return fmt.Sprintf("%d", d.Const)
	case DrivePrimary:
		return fmt.Sprintf("%s[%d:%d]", d.Primary, d.Hi, d.Lo)
	}
	return "<bad driver>"
}

// BusDriver is one tristate driver of a bus.
type BusDriver struct {
	Src  *Driver
	When hdl.Expr // nil for an unconditional driver
}

// Bus is an elaborated tristate bus.
type Bus struct {
	Name    string
	Width   int
	Drivers []*BusDriver
}

// Inst is an elaborated part instance.
type Inst struct {
	Name    string
	Mod     *hdl.Module
	Flag    hdl.PartFlag
	Drivers map[string]*Driver // input port name -> driver
}

// IsSequential reports whether the instance contains storage.
func (i *Inst) IsSequential() bool { return i.Mod.IsSequential() }

// OutStmt returns the behavior statement assigning output port name, or nil.
func (i *Inst) OutStmt(port string) *hdl.Stmt {
	for _, st := range i.Mod.Stmts {
		if st.LHS.Port != nil && st.LHS.Name == port {
			return st
		}
	}
	return nil
}

// Storage is one elaborated storage resource (register, register file or
// memory) within an instance.
type Storage struct {
	Inst *Inst
	Var  *hdl.VarDecl
	Mode bool // belongs to a MODE part
	PC   bool // belongs to the PC part
	Insn bool // belongs to the instruction memory
}

// QName returns the qualified "inst.var" name used across the compiler.
func (s *Storage) QName() string { return s.Inst.Name + "." + s.Var.Name }

// Writable reports whether the module behavior ever writes this storage
// (false for ROM-style components).
func (s *Storage) Writable() bool {
	for _, st := range s.Inst.Mod.Stmts {
		if st.LHS.Var != nil && st.LHS.Name == s.Var.Name {
			return true
		}
	}
	return false
}

// Width returns the cell width in bits.
func (s *Storage) Width() int { return s.Var.Width }

// Size returns the number of cells.
func (s *Storage) Size() int { return s.Var.Size }

// Netlist is the elaborated graph model.
type Netlist struct {
	Name       string
	Model      *hdl.Model
	Insts      []*Inst
	InstByName map[string]*Inst
	Buses      map[string]*Bus

	// Storages maps qualified names to storage resources, and Seq lists
	// them in deterministic order.
	Storages map[string]*Storage
	Seq      []*Storage

	// Instruction memory identification.
	InsnInst  *Inst
	InsnPort  string // output port carrying the instruction word
	InsnWidth int

	PCInst *Inst // nil when the model has no PC part

	// Primary ports.
	PrimaryIn  map[string]*hdl.PrimaryPort
	PrimaryOut map[string]*Driver // primary output name -> driver
}

// Elaborate builds the graph model from a checked HDL model.
func Elaborate(m *hdl.Model) (*Netlist, error) {
	n := &Netlist{
		Name:       m.Name,
		Model:      m,
		InstByName: make(map[string]*Inst),
		Buses:      make(map[string]*Bus),
		Storages:   make(map[string]*Storage),
		PrimaryIn:  make(map[string]*hdl.PrimaryPort),
		PrimaryOut: make(map[string]*Driver),
	}
	for _, b := range m.Buses {
		n.Buses[b.Name] = &Bus{Name: b.Name, Width: b.Width}
	}
	for _, pp := range m.Ports {
		if pp.Dir == hdl.DirIn {
			n.PrimaryIn[pp.Name] = pp
		}
	}
	for _, p := range m.Parts {
		inst := &Inst{Name: p.Name, Mod: p.Module, Flag: p.Flag,
			Drivers: make(map[string]*Driver)}
		n.Insts = append(n.Insts, inst)
		n.InstByName[p.Name] = inst
		for _, v := range p.Module.Vars {
			s := &Storage{Inst: inst, Var: v,
				Mode: p.Flag == hdl.FlagMode,
				PC:   p.Flag == hdl.FlagPC,
				Insn: p.Flag == hdl.FlagInstruction,
			}
			n.Storages[s.QName()] = s
			n.Seq = append(n.Seq, s)
		}
		if p.Flag == hdl.FlagInstruction {
			n.InsnInst = inst
			for _, mp := range p.Module.Ports {
				if mp.Dir == hdl.DirOut {
					n.InsnPort = mp.Name
					n.InsnWidth = mp.Width
				}
			}
		}
		if p.Flag == hdl.FlagPC {
			n.PCInst = inst
		}
	}
	sort.Slice(n.Seq, func(i, j int) bool { return n.Seq[i].QName() < n.Seq[j].QName() })

	for _, c := range m.Connects {
		drv, err := n.resolveSource(c.Src)
		if err != nil {
			return nil, err
		}
		switch {
		case c.SinkPart != "":
			inst := n.InstByName[c.SinkPart]
			inst.Drivers[c.SinkPort] = drv
		default:
			if bus, ok := n.Buses[c.SinkPort]; ok {
				bus.Drivers = append(bus.Drivers, &BusDriver{Src: drv, When: c.When})
			} else {
				n.PrimaryOut[c.SinkPort] = drv
			}
		}
	}

	if err := n.checkCombLoops(); err != nil {
		return nil, err
	}
	return n, nil
}

// resolveSource converts a checked connect-source expression into a Driver.
// Sources must be simple references (glue logic belongs in modules).
func (n *Netlist) resolveSource(e hdl.Expr) (*Driver, error) {
	switch x := e.(type) {
	case *hdl.NumExpr:
		return &Driver{Kind: DriveConst, Const: x.Val, Width: x.Width}, nil
	case *hdl.IdentExpr:
		switch {
		case x.Bus != nil:
			return &Driver{Kind: DriveBus, Bus: n.Buses[x.Name],
				Hi: x.Width - 1, Lo: 0, Width: x.Width}, nil
		case x.Primary != nil:
			return &Driver{Kind: DrivePrimary, Primary: x.Name,
				Hi: x.Width - 1, Lo: 0, Width: x.Width}, nil
		case x.Const != nil:
			return &Driver{Kind: DriveConst, Const: x.Const.Value, Width: x.Width}, nil
		}
		return nil, fmt.Errorf("%s: connect source %q is not a bus, primary port or constant", x.Pos, x.Name)
	case *hdl.PortSelExpr:
		inst := n.InstByName[x.Part]
		return &Driver{Kind: DrivePort, Inst: inst, Port: x.Port,
			Hi: x.Width - 1, Lo: 0, Width: x.Width}, nil
	case *hdl.IndexExpr:
		if !x.IsSlice {
			return nil, fmt.Errorf("%s: connect source must be a simple reference or bit slice", x.Pos)
		}
		base, err := n.resolveSource(x.X)
		if err != nil {
			return nil, err
		}
		if base.Kind == DriveConst {
			return nil, fmt.Errorf("%s: cannot slice constant %s in a connect source", x.Pos, base)
		}
		base.Hi = base.Lo + x.SliceHi
		base.Lo = base.Lo + x.SliceLo
		base.Width = x.Width
		return base, nil
	}
	return nil, fmt.Errorf("%s: connect source expression %s too complex (move glue logic into a module)", e.ExprPos(), e)
}

// OutputDeps returns the input port names that output port out of inst
// combinationally depends on.
func (n *Netlist) OutputDeps(inst *Inst, out string) []string {
	st := inst.OutStmt(out)
	if st == nil {
		return nil
	}
	seen := make(map[string]bool)
	var deps []string
	var walk func(e hdl.Expr)
	walk = func(e hdl.Expr) {
		switch x := e.(type) {
		case *hdl.IdentExpr:
			if x.Port != nil && x.Port.Dir == hdl.DirIn && !seen[x.Name] {
				seen[x.Name] = true
				deps = append(deps, x.Name)
			}
		case *hdl.IndexExpr:
			walk(x.X)
			walk(x.Hi)
			if x.Lo != nil {
				walk(x.Lo)
			}
		case *hdl.BinExpr:
			walk(x.X)
			walk(x.Y)
		case *hdl.UnExpr:
			walk(x.X)
		case *hdl.CaseExpr:
			walk(x.Sel)
			for _, a := range x.Alts {
				walk(a.Body)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		}
	}
	walk(st.RHS)
	sort.Strings(deps)
	return deps
}

// checkCombLoops rejects models with combinational cycles.  Nodes of the
// dependency graph are instance output ports and buses; edges follow
// behavior expressions and interconnect.
func (n *Netlist) checkCombLoops() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visitOut func(inst *Inst, port string) error
	var visitDrv func(d *Driver) error
	var visitBus func(b *Bus) error

	visitDrv = func(d *Driver) error {
		if d == nil {
			return nil
		}
		switch d.Kind {
		case DrivePort:
			return visitOut(d.Inst, d.Port)
		case DriveBus:
			return visitBus(d.Bus)
		}
		return nil
	}
	visitBus = func(b *Bus) error {
		key := "bus:" + b.Name
		switch color[key] {
		case gray:
			return fmt.Errorf("combinational loop through bus %s", b.Name)
		case black:
			return nil
		}
		color[key] = gray
		for _, bd := range b.Drivers {
			if err := visitDrv(bd.Src); err != nil {
				return err
			}
			// WHEN conditions also propagate combinationally.
			for _, dep := range whenDeps(bd.When) {
				if err := visitOut(n.InstByName[dep.part], dep.port); err != nil {
					return err
				}
			}
		}
		color[key] = black
		return nil
	}
	visitOut = func(inst *Inst, port string) error {
		key := inst.Name + "." + port
		switch color[key] {
		case gray:
			return fmt.Errorf("combinational loop through %s", key)
		case black:
			return nil
		}
		color[key] = gray
		for _, in := range n.OutputDeps(inst, port) {
			if err := visitDrv(inst.Drivers[in]); err != nil {
				return err
			}
		}
		color[key] = black
		return nil
	}

	for _, inst := range n.Insts {
		for _, mp := range inst.Mod.Ports {
			if mp.Dir == hdl.DirOut {
				if err := visitOut(inst, mp.Name); err != nil {
					return err
				}
			}
		}
	}
	for _, b := range n.Buses {
		if err := visitBus(b); err != nil {
			return err
		}
	}
	return nil
}

type portDep struct{ part, port string }

// whenDeps lists part.port references in a bus WHEN condition.
func whenDeps(e hdl.Expr) []portDep {
	var deps []portDep
	var walk func(e hdl.Expr)
	walk = func(e hdl.Expr) {
		switch x := e.(type) {
		case *hdl.PortSelExpr:
			deps = append(deps, portDep{x.Part, x.Port})
		case *hdl.IndexExpr:
			walk(x.X)
		case *hdl.BinExpr:
			walk(x.X)
			walk(x.Y)
		case *hdl.UnExpr:
			walk(x.X)
		case *hdl.CaseExpr:
			walk(x.Sel)
			for _, a := range x.Alts {
				walk(a.Body)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return deps
}

// DataStorages returns the sequential storages that participate in the
// datapath: everything except the instruction memory (mode registers and
// the PC are included — they are RT destinations too).
func (n *Netlist) DataStorages() []*Storage {
	var out []*Storage
	for _, s := range n.Seq {
		if !s.Insn {
			out = append(out, s)
		}
	}
	return out
}

// ModeStorages returns the mode-register storages.
func (n *Netlist) ModeStorages() []*Storage {
	var out []*Storage
	for _, s := range n.Seq {
		if s.Mode {
			out = append(out, s)
		}
	}
	return out
}
