package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var a *Admission
	leave, err := a.Enter()
	if err != nil {
		t.Fatalf("nil admission shed: %v", err)
	}
	leave()
	if a.Depth() != 0 || a.Shed() != 0 {
		t.Fatal("nil admission has state")
	}

	var b *Breaker
	if err := b.Allow("k"); err != nil {
		t.Fatalf("nil breaker refused: %v", err)
	}
	b.Record("k", false)
	if b.State("k") != Closed {
		t.Fatal("nil breaker not closed")
	}
}

func TestAdmissionShedsAtLimit(t *testing.T) {
	a := NewAdmission(2, 3*time.Second)
	l1, err1 := a.Enter()
	l2, err2 := a.Enter()
	if err1 != nil || err2 != nil {
		t.Fatalf("admits under limit: %v %v", err1, err2)
	}
	if a.Depth() != 2 {
		t.Fatalf("depth %d, want 2", a.Depth())
	}
	_, err := a.Enter()
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("over limit: %v, want OverloadError", err)
	}
	if ov.Queue != 2 || ov.Limit != 2 || ov.After != 3*time.Second {
		t.Fatalf("overload detail: %+v", ov)
	}
	if !IsTransient(err) {
		t.Fatal("overload not transient")
	}
	if after, ok := RetryAfterOf(err); !ok || after != 3*time.Second {
		t.Fatalf("retry-after %v %v", after, ok)
	}
	if a.Shed() != 1 {
		t.Fatalf("shed %d, want 1", a.Shed())
	}
	l1()
	l1() // leave must be idempotent
	if a.Depth() != 1 {
		t.Fatalf("depth after leave %d, want 1", a.Depth())
	}
	if _, err := a.Enter(); err != nil {
		t.Fatalf("freed capacity still sheds: %v", err)
	}
	l2()
}

func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(8, time.Second)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if leave, err := a.Enter(); err == nil {
				leave()
			}
		}()
	}
	wg.Wait()
	if a.Depth() != 0 {
		t.Fatalf("leaked depth %d", a.Depth())
	}
}

// fakeClock is an adjustable breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var trips []string
	b := NewBreaker(BreakerConfig{
		Window:      4,
		MinSamples:  2,
		FailureRate: 0.5,
		Cooldown:    10 * time.Second,
		Now:         clk.now,
		OnTrip:      func(k string) { trips = append(trips, k) },
	})

	// Two failures trip the circuit.
	for i := 0; i < 2; i++ {
		if err := b.Allow("m1"); err != nil {
			t.Fatalf("closed allow %d: %v", i, err)
		}
		b.Record("m1", false)
	}
	if got := b.State("m1"); got != Open {
		t.Fatalf("state %v, want Open", got)
	}
	if len(trips) != 1 || trips[0] != "m1" {
		t.Fatalf("trips %v", trips)
	}

	// Open: fails fast with the remaining cooldown; other keys unaffected.
	err := b.Allow("m1")
	var oe *OpenError
	if !errors.As(err, &oe) || oe.After <= 0 || oe.After > 10*time.Second {
		t.Fatalf("open allow: %v", err)
	}
	if err := b.Allow("other"); err != nil {
		t.Fatalf("independent key refused: %v", err)
	}
	b.Record("other", true)

	// After the cooldown exactly one probe is admitted.
	clk.advance(11 * time.Second)
	if err := b.Allow("m1"); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := b.Allow("m1"); !errors.As(err, &oe) {
		t.Fatalf("second half-open caller admitted: %v", err)
	}

	// Probe failure reopens for another full cooldown.
	b.Record("m1", false)
	if got := b.State("m1"); got != Open {
		t.Fatalf("state after failed probe %v, want Open", got)
	}
	if len(trips) != 2 {
		t.Fatalf("failed probe did not count as a trip: %v", trips)
	}

	// Next probe succeeds: circuit closes with a clean window (one
	// subsequent failure must not re-trip instantly).
	clk.advance(11 * time.Second)
	if err := b.Allow("m1"); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Record("m1", true)
	if got := b.State("m1"); got != Closed {
		t.Fatalf("state after successful probe %v, want Closed", got)
	}
	if err := b.Allow("m1"); err != nil {
		t.Fatalf("closed after recovery: %v", err)
	}
	b.Record("m1", false)
	if got := b.State("m1"); got != Closed {
		t.Fatalf("one failure after recovery re-tripped (window not cleared)")
	}
}

func TestBreakerWindowRolls(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Window: 4, MinSamples: 4, FailureRate: 0.5, Now: clk.now})
	// Alternate success/failure: rate stays at 0.5 once the window fills,
	// so with MinSamples=4 the fourth outcome trips it.
	outcomes := []bool{true, false, true, false}
	for i, ok := range outcomes {
		if err := b.Allow("k"); err != nil {
			t.Fatalf("allow %d: %v", i, err)
		}
		b.Record("k", ok)
	}
	if got := b.State("k"); got != Open {
		t.Fatalf("state %v, want Open at 50%% failure rate", got)
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 8, Cooldown: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			for j := 0; j < 50; j++ {
				if b.Allow(key) == nil {
					b.Record(key, j%3 != 0)
				}
			}
		}(i)
	}
	wg.Wait()
}

type transientErr struct{ after time.Duration }

func (e *transientErr) Error() string                 { return "transient" }
func (e *transientErr) Transient() bool               { return true }
func (e *transientErr) RetryAfterHint() time.Duration { return e.after }

func TestRetrySucceedsAfterTransients(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 5,
		Base:        100 * time.Millisecond,
		Cap:         time.Second,
		Rand:        func(max time.Duration) time.Duration { return max }, // deterministic: worst case
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return &transientErr{}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// Exponential: 100ms then 200ms (full-jitter upper bounds).
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("slept %v, want %v", slept, want)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 2,
		Base:        time.Millisecond,
		Cap:         10 * time.Second,
		Rand:        func(max time.Duration) time.Duration { return 0 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	_ = p.Do(context.Background(), func(context.Context) error {
		calls++
		return &transientErr{after: 700 * time.Millisecond}
	})
	if calls != 2 {
		t.Fatalf("calls %d, want 2", calls)
	}
	if len(slept) != 1 || slept[0] != 700*time.Millisecond {
		t.Fatalf("slept %v, want the 700ms server hint", slept)
	}
}

func TestRetryStopsOnTerminalError(t *testing.T) {
	p := Policy{Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	terminal := errors.New("bad request")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return terminal
	})
	if !errors.Is(err, terminal) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want terminal after 1 call", err, calls)
	}
}

func TestRetryDeadlineAware(t *testing.T) {
	// Deadline of 50ms cannot fit a 10s Retry-After sleep: Do must return
	// promptly with the last error rather than sleeping into the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	p := Policy{MaxAttempts: 3, Base: 10 * time.Second, Cap: 10 * time.Second,
		Rand: func(max time.Duration) time.Duration { return max }}
	calls := 0
	start := time.Now()
	err := p.Do(ctx, func(context.Context) error {
		calls++
		return &transientErr{}
	})
	if calls != 1 {
		t.Fatalf("calls %d, want 1", calls)
	}
	var te *transientErr
	if !errors.As(err, &te) {
		t.Fatalf("final error lost: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("slept into the deadline (%v elapsed)", time.Since(start))
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return &transientErr{}
	})
	if calls != 3 {
		t.Fatalf("calls %d, want 3", calls)
	}
	var te *transientErr
	if !errors.As(err, &te) {
		t.Fatalf("final error lost: %v", err)
	}
}

// TestRetryDrainingHintAuthoritative is the failover regression test: a
// draining node's Retry-After must be honored exactly, even when the
// computed backoff is longer.  Before the fix the hint could only raise
// the wait, so a client whose backoff had grown past the hint slept on —
// retrying into the drain instead of failing over when the node said it
// was safe to.
func TestRetryDrainingHintAuthoritative(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 2,
		Base:        10 * time.Second, // computed backoff far above the hint
		Cap:         10 * time.Second,
		Rand:        func(max time.Duration) time.Duration { return max },
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	_ = p.Do(context.Background(), func(context.Context) error {
		return &DrainingError{After: 50 * time.Millisecond}
	})
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Fatalf("slept %v, want exactly the 50ms drain hint", slept)
	}

	// Overload keeps the old contract: the hint only raises the wait.
	slept = nil
	_ = p.Do(context.Background(), func(context.Context) error {
		return &OverloadError{Queue: 1, Limit: 1, After: 50 * time.Millisecond}
	})
	if len(slept) != 1 || slept[0] != 10*time.Second {
		t.Fatalf("overload slept %v, want the full 10s backoff", slept)
	}

	if !IsDraining(fmt.Errorf("wrapped: %w", &DrainingError{})) {
		t.Fatal("IsDraining does not unwrap")
	}
	if IsDraining(&OverloadError{}) {
		t.Fatal("IsDraining misfires on overload")
	}
}

func TestDrainingError(t *testing.T) {
	err := error(&DrainingError{After: 2 * time.Second})
	if !IsTransient(err) {
		t.Fatal("draining not transient")
	}
	if after, ok := RetryAfterOf(err); !ok || after != 2*time.Second {
		t.Fatalf("retry-after %v %v", after, ok)
	}
}
