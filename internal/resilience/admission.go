package resilience

import (
	"sync/atomic"
	"time"
)

// Admission is a queue-depth admission controller for a bounded worker
// pool: it counts requests currently *waiting* for a pool slot and sheds
// new arrivals once the backlog reaches its limit, so overload turns into
// fast explicit 429s instead of an unbounded queue of doomed waiters.
//
// The controller does not own the pool; callers bracket their slot wait:
//
//	leave, err := adm.Enter()
//	if err != nil { ... shed with 429 + Retry-After ... }
//	defer leave()
//	// block on the worker-pool semaphore
//
// A nil *Admission admits everything (unlimited queue).
type Admission struct {
	limit int
	after time.Duration

	waiting atomic.Int64
	shed    atomic.Uint64
}

// NewAdmission bounds the waiter backlog at maxQueue; retryAfter is the
// back-off hint attached to shed requests (0 means 1s).  maxQueue <= 0
// returns nil: an unlimited, always-admitting controller.
func NewAdmission(maxQueue int, retryAfter time.Duration) *Admission {
	if maxQueue <= 0 {
		return nil
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &Admission{limit: maxQueue, after: retryAfter}
}

// Enter admits the caller into the wait queue, returning the func that
// leaves it (call once the pool slot is acquired or the wait abandoned).
// When the queue is full it returns an *OverloadError and no func.
func (a *Admission) Enter() (leave func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	n := a.waiting.Add(1)
	if int(n) > a.limit {
		a.waiting.Add(-1)
		a.shed.Add(1)
		return nil, &OverloadError{Queue: int(n - 1), Limit: a.limit, After: a.after}
	}
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			a.waiting.Add(-1)
		}
	}, nil
}

// Depth returns the current number of admitted waiters.
func (a *Admission) Depth() int {
	if a == nil {
		return 0
	}
	return int(a.waiting.Load())
}

// Shed returns how many requests have been refused so far.
func (a *Admission) Shed() uint64 {
	if a == nil {
		return 0
	}
	return a.shed.Load()
}
