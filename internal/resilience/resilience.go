// Package resilience is the service-hardening layer of the compile
// service: admission control, circuit breaking, retry policy and drain
// signalling, shared by recordd (server side) and rclient (client side).
//
// The retargeting pipeline already degrades gracefully inside one request
// (internal/diag budgets, faultpoint-exercised recovery boundaries); this
// package makes the *service* around it degrade gracefully across
// requests: overload sheds with an explicit status instead of queueing
// unboundedly, a pathological model stops burning retarget workers once
// its failure rate trips a breaker, transient failures are retried with
// capped exponential backoff and full jitter, and shutdown drains rather
// than drops.
//
// Everything here is stdlib-only and nil-safe in the style of
// diag.Reporter and the obs instruments: a nil *Admission admits
// everything, a nil *Breaker allows everything, and the zero Policy
// performs a sane default retry.  Typed errors (OverloadError, OpenError,
// DrainingError) carry machine-readable retry hints so HTTP layers can
// map them to 429/503 plus a Retry-After header, and the client can honor
// that header symmetrically.
package resilience

import (
	"errors"
	"fmt"
	"time"
)

// OverloadError reports a request shed by admission control: the worker
// backlog already held Queue waiters against a bound of Limit.  It maps to
// HTTP 429 with a Retry-After hint.
type OverloadError struct {
	Queue, Limit int
	After        time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("overloaded: %d requests queued (limit %d), retry in %v",
		e.Queue, e.Limit, e.After)
}

// Transient marks the condition as retryable.
func (e *OverloadError) Transient() bool { return true }

// RetryAfterHint returns how long the caller should back off.
func (e *OverloadError) RetryAfterHint() time.Duration { return e.After }

// OpenError reports a request refused because the circuit for Key is open
// (or a half-open probe is already in flight).  It maps to HTTP 503 with a
// Retry-After hint of the remaining cooldown.
type OpenError struct {
	Key   string
	After time.Duration
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("circuit open for %s: retry in %v", e.Key, e.After)
}

// Transient marks the condition as retryable.
func (e *OpenError) Transient() bool { return true }

// RetryAfterHint returns the remaining cooldown.
func (e *OpenError) RetryAfterHint() time.Duration { return e.After }

// DrainingError reports a request refused because the service is shutting
// down.  It maps to HTTP 503; the client should retry against another
// instance (or the restarted one) after the hint.
type DrainingError struct {
	After time.Duration
}

func (e *DrainingError) Error() string {
	return fmt.Sprintf("service draining: retry in %v", e.After)
}

// Transient marks the condition as retryable.
func (e *DrainingError) Transient() bool { return true }

// RetryAfterHint returns how long the caller should back off.
func (e *DrainingError) RetryAfterHint() time.Duration { return e.After }

// DegradedError reports a request refused because a resource the request
// needs (typically the durable disk tier) is degraded on this node.  It
// maps to HTTP 503 with a Retry-After hint: the condition is transient
// from the fleet's point of view — another replica can accept the work,
// and this node may recover — but unlike draining the node itself stays
// up and keeps serving everything that does not need the degraded
// resource.
type DegradedError struct {
	Resource string
	After    time.Duration
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("%s degraded: retry in %v", e.Resource, e.After)
}

// Transient marks the condition as retryable.
func (e *DegradedError) Transient() bool { return true }

// RetryAfterHint returns how long the caller should back off.
func (e *DegradedError) RetryAfterHint() time.Duration { return e.After }

// IsDraining reports whether err (or anything it wraps) is a
// DrainingError.  Draining is a different kind of transient than overload
// or an open circuit: the node is going away, so its Retry-After hint is
// authoritative in both directions — retrying sooner lands in the drain,
// and waiting longer than the hint just idles when another replica (or
// the restarted node) could already serve.  Policy and the multi-endpoint
// client both branch on this.
func IsDraining(err error) bool {
	var de *DrainingError
	return errors.As(err, &de)
}

// IsTransient reports whether err (or anything it wraps) marks itself as
// worth retrying via a `Transient() bool` method.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// RetryAfterOf extracts a Retry-After hint from err, if any error in its
// chain carries one.
func RetryAfterOf(err error) (time.Duration, bool) {
	var h interface{ RetryAfterHint() time.Duration }
	if errors.As(err, &h) {
		return h.RetryAfterHint(), true
	}
	return 0, false
}
