package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Policy is a retry policy with capped exponential backoff and full
// jitter: attempt n sleeps a uniformly random duration in
// [0, min(Cap, Base<<n)], the spread that minimizes synchronized retry
// storms from many clients.  A Retry-After hint on the error (server
// shedding, open breaker) overrides a shorter computed backoff, and the
// policy is deadline-aware: it never sleeps past the context deadline —
// when the budget cannot fit another attempt it returns the last error
// immediately.
//
// The zero Policy is usable: 4 attempts, 100ms base, 5s cap.
type Policy struct {
	// MaxAttempts bounds total tries, first included (default 4).
	MaxAttempts int
	// Base and Cap shape the backoff (defaults 100ms and 5s).
	Base, Cap time.Duration
	// Rand draws the jittered sleep from [0, max); nil uses math/rand.
	// Injectable for deterministic tests.
	Rand func(max time.Duration) time.Duration
	// Sleep waits d or until ctx is done; nil uses a timer.  Injectable
	// so tests run without wall-clock delays.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
	if p.Rand == nil {
		p.Rand = func(max time.Duration) time.Duration {
			if max <= 0 {
				return 0
			}
			return time.Duration(rand.Int63n(int64(max)))
		}
	}
	if p.Sleep == nil {
		p.Sleep = sleep
	}
	return p
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the jittered wait before retry number attempt (0-based
// count of failures so far).
func (p Policy) backoff(attempt int) time.Duration {
	max := p.Base
	for i := 0; i < attempt && max < p.Cap; i++ {
		max *= 2
	}
	if max > p.Cap {
		max = p.Cap
	}
	return p.Rand(max)
}

// Do invokes f until it succeeds, fails terminally, or the policy gives
// up.  Only errors satisfying IsTransient are retried; the error of the
// final attempt is returned as-is so callers can errors.As through it.
func (p Policy) Do(ctx context.Context, f func(ctx context.Context) error) error {
	p = p.withDefaults()
	var err error
	for attempt := 0; ; attempt++ {
		if err = f(ctx); err == nil || !IsTransient(err) {
			return err
		}
		if attempt+1 >= p.MaxAttempts {
			return err
		}
		wait := p.backoff(attempt)
		if hint, ok := RetryAfterOf(err); ok {
			// A draining node's hint is authoritative: the exponential
			// backoff would sleep PAST the hint and keep the caller
			// pinned to a node that is going away, when the next attempt
			// (routed to another replica, or the restarted node) could
			// already succeed.  Overload and open-circuit hints only
			// raise the wait — backing off harder than asked is safe
			// there because the same node will answer.
			if IsDraining(err) || hint > wait {
				wait = hint
			}
			if wait > p.Cap {
				wait = p.Cap
			}
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= wait {
			return fmt.Errorf("retry budget exhausted after %d attempts: %w", attempt+1, err)
		}
		if serr := p.Sleep(ctx, wait); serr != nil {
			return fmt.Errorf("retry interrupted: %v: %w", serr, err)
		}
	}
}
