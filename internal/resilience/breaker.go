package resilience

import (
	"sync"
	"time"
)

// State is one circuit-breaker state.
type State int

// Breaker states.
const (
	Closed   State = iota // normal operation, outcomes recorded
	Open                  // failing fast until the cooldown elapses
	HalfOpen              // cooldown over: one probe decides reopen/close
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "state(?)"
}

// BreakerConfig tunes a Breaker; zero fields take the documented defaults.
type BreakerConfig struct {
	// Window is the per-key ring of recent outcomes the failure rate is
	// computed over (default 8).
	Window int
	// MinSamples is how many outcomes the window must hold before the
	// breaker may trip (default Window/2, at least 2).
	MinSamples int
	// FailureRate opens the circuit when failures/window >= this
	// (default 0.5).
	FailureRate float64
	// Cooldown is how long an open circuit fails fast before allowing a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// Now is the clock; nil means time.Now.  Injectable for tests.
	Now func() time.Time
	// OnTrip, when non-nil, is called (outside the breaker lock) each
	// time a key's circuit transitions to Open.
	OnTrip func(key string)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
		if c.MinSamples < 2 {
			c.MinSamples = 2
		}
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// circuit is the per-key state machine.  All fields are guarded by the
// owning Breaker's mutex.
type circuit struct {
	state    State
	window   []bool // ring of outcomes, true = failure
	idx, n   int
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// Breaker is a per-key circuit breaker: each key (a model fingerprint in
// recordd, a server endpoint in rclient) gets an independent circuit, so
// one pathological model failing its budget over and over stops consuming
// workers while every other model keeps compiling.
//
// A nil *Breaker allows everything and records nothing.
type Breaker struct {
	cfg BreakerConfig

	mu   sync.Mutex
	keys map[string]*circuit
}

// NewBreaker builds a breaker; zero-valued config fields get defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), keys: make(map[string]*circuit)}
}

func (b *Breaker) circuitFor(key string) *circuit {
	c, ok := b.keys[key]
	if !ok {
		c = &circuit{window: make([]bool, b.cfg.Window)}
		b.keys[key] = c
	}
	return c
}

// Allow reports whether a request for key may proceed.  Open circuits
// return an *OpenError carrying the remaining cooldown; once the cooldown
// elapses exactly one caller is admitted as the half-open probe and
// everyone else keeps failing fast until its outcome is Recorded.
func (b *Breaker) Allow(key string) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.circuitFor(key)
	switch c.state {
	case Closed:
		return nil
	case Open:
		remaining := c.openedAt.Add(b.cfg.Cooldown).Sub(b.cfg.Now())
		if remaining > 0 {
			return &OpenError{Key: key, After: remaining}
		}
		c.state = HalfOpen
		c.probing = true
		return nil
	default: // HalfOpen
		if c.probing {
			return &OpenError{Key: key, After: b.cfg.Cooldown}
		}
		c.probing = true
		return nil
	}
}

// Record lands the outcome of an admitted request for key.  In half-open
// state the probe's outcome decides: success closes the circuit with a
// clean window, failure reopens it for another cooldown.  In closed state
// the outcome joins the rolling window and may trip the circuit.
func (b *Breaker) Record(key string, success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	c := b.circuitFor(key)
	var tripped bool
	switch c.state {
	case HalfOpen:
		c.probing = false
		if success {
			c.reset()
		} else {
			c.open(b.cfg.Now())
			tripped = true
		}
	case Closed:
		c.push(!success)
		if c.n >= b.cfg.MinSamples &&
			float64(c.fails) >= b.cfg.FailureRate*float64(c.n) {
			c.open(b.cfg.Now())
			tripped = true
		}
	// Open: a straggler from before the trip; the window is already
	// cleared, so the late outcome carries no information.
	}
	onTrip := b.cfg.OnTrip
	b.mu.Unlock()
	if tripped && onTrip != nil {
		onTrip(key)
	}
}

// State returns the current state of key's circuit (Closed for unknown
// keys), refreshing an expired Open into HalfOpen the way Allow would.
func (b *Breaker) State(key string) State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.keys[key]
	if !ok {
		return Closed
	}
	if c.state == Open && !b.cfg.Now().Before(c.openedAt.Add(b.cfg.Cooldown)) {
		return HalfOpen
	}
	return c.state
}

func (c *circuit) push(failure bool) {
	if c.n == len(c.window) {
		if c.window[c.idx] {
			c.fails--
		}
	} else {
		c.n++
	}
	c.window[c.idx] = failure
	if failure {
		c.fails++
	}
	c.idx = (c.idx + 1) % len(c.window)
}

func (c *circuit) open(now time.Time) {
	c.state = Open
	c.openedAt = now
	c.clearWindow()
}

func (c *circuit) reset() {
	c.state = Closed
	c.probing = false
	c.clearWindow()
}

func (c *circuit) clearWindow() {
	for i := range c.window {
		c.window[i] = false
	}
	c.idx, c.n, c.fails = 0, 0, 0
}
