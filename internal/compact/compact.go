// Package compact implements code compaction (paper section 3.2, citing
// the authors' time-constrained compaction work [17]): the sequential RT
// instructions produced by code selection are packed into horizontal
// instruction words, exploiting the instruction-level parallelism the
// encoding permits.
//
// An RT may move into an earlier word when (a) data dependences allow it —
// read-after-write and write-after-write predecessors must be in strictly
// earlier words, write-after-read predecessors in the same word or earlier
// (time-stationary RTs read cycle-start values) — and (b) the combined
// word remains encodable: execution conditions conjoin satisfiably,
// operand fields do not clash, and all untouched storages stay quiescent.
// The encoder provides exactly that feasibility test, so compaction and
// encoding can never disagree.
package compact

import (
	"fmt"

	"repro/internal/code"
	"repro/internal/obs"
)

// Options tunes compaction.
type Options struct {
	// Disable turns compaction off: one RT per word (the ablation
	// baseline).
	Disable bool
	// Obs receives compaction instruments (instructions in, words out);
	// nil is safe.
	Obs *obs.Scope
}

// record lands the compaction ratio in the registry; the instruction and
// word totals together give the paper's table 4 packing factor.
func record(scope *obs.Scope, seq *code.Seq, p *code.Program) {
	reg := scope.Registry()
	if reg == nil {
		return
	}
	reg.Counter("record_compact_instrs_total",
		"sequential RT instructions fed to compaction").Add(len(seq.Instrs))
	reg.Counter("record_compact_words_total",
		"instruction words emitted by compaction").Add(len(p.Words))
}

// Feasibility is the encodability test compaction schedules against —
// satisfied by *asm.Encoder and, for concurrent compiles against a frozen
// target, by *asm.Session.
type Feasibility interface {
	Feasible([]*code.Instr) bool
}

// Compact packs a sequential RT list into instruction words using greedy
// earliest-fit list scheduling.
func Compact(seq *code.Seq, enc Feasibility, opts Options) (*code.Program, error) {
	p := &code.Program{}
	if opts.Disable {
		for _, in := range seq.Instrs {
			if !enc.Feasible([]*code.Instr{in}) {
				return nil, fmt.Errorf("compact: instruction %s not encodable alone", in)
			}
			p.Words = append(p.Words, &code.Word{Instrs: []*code.Instr{in}})
		}
		record(opts.Obs, seq, p)
		return p, nil
	}

	wordOf := make([]int, len(seq.Instrs))
	var trial []*code.Instr // placement-probe scratch, reused across trials
	for idx, in := range seq.Instrs {
		earliest := 0
		for j := 0; j < idx; j++ {
			w := wordOf[j]
			if code.RAW(seq.Instrs[j], in) || code.WAW(seq.Instrs[j], in) {
				if w+1 > earliest {
					earliest = w + 1
				}
			} else if code.WAR(seq.Instrs[j], in) {
				if w > earliest {
					earliest = w
				}
			}
		}
		placed := false
		for w := earliest; w < len(p.Words); w++ {
			trial = append(trial[:0], p.Words[w].Instrs...)
			trial = append(trial, in)
			if enc.Feasible(trial) {
				p.Words[w].Instrs = append(p.Words[w].Instrs, in)
				wordOf[idx] = w
				placed = true
				break
			}
		}
		if !placed {
			if !enc.Feasible([]*code.Instr{in}) {
				return nil, fmt.Errorf("compact: instruction %s not encodable alone", in)
			}
			p.Words = append(p.Words, &code.Word{Instrs: []*code.Instr{in}})
			wordOf[idx] = len(p.Words) - 1
		}
	}
	record(opts.Obs, seq, p)
	return p, nil
}

// Verify checks that a compacted program respects every dependence of the
// original sequence and that each word is encodable; it is used by tests
// and as a safety net after compaction.
func Verify(seq *code.Seq, p *code.Program, enc Feasibility) error {
	// Map instructions to their word index (pointer identity).
	wordOf := make(map[*code.Instr]int)
	count := 0
	for w, word := range p.Words {
		for _, in := range word.Instrs {
			wordOf[in] = w
			count++
		}
		if !enc.Feasible(word.Instrs) {
			return fmt.Errorf("compact: word %d not encodable", w)
		}
	}
	if count != len(seq.Instrs) {
		return fmt.Errorf("compact: %d instructions packed, %d expected", count, len(seq.Instrs))
	}
	for i := 0; i < len(seq.Instrs); i++ {
		for j := i + 1; j < len(seq.Instrs); j++ {
			a, b := seq.Instrs[i], seq.Instrs[j]
			wa, wb := wordOf[a], wordOf[b]
			if (code.RAW(a, b) || code.WAW(a, b)) && wb <= wa {
				return fmt.Errorf("compact: dependence %s -> %s violated (words %d, %d)", a, b, wa, wb)
			}
			if code.WAR(a, b) && wb < wa {
				return fmt.Errorf("compact: anti-dependence %s -> %s violated (words %d, %d)", a, b, wa, wb)
			}
		}
	}
	return nil
}
