package compact_test

import (
	"context"
	"testing"

	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/models"
)

func c25(t *testing.T) *core.Target {
	t.Helper()
	mdl, _ := models.Get("tms320c25")
	tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

const macSrc = `
int a[4] = {1, 2, 3, 4};
int b[4] = {5, 6, 7, 8};
int s;
void main() {
  s = 0;
  for (i = 0; i < 4; i++) {
    s = s + a[i] * b[i];
  }
}
`

func TestCompactShortensAndVerifies(t *testing.T) {
	tg := c25(t)
	res, err := tg.CompileSourceContext(context.Background(), macSrc, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CodeLen() >= res.SeqLen() {
		t.Errorf("compaction did not shorten: %d words vs %d RTs",
			res.CodeLen(), res.SeqLen())
	}
	if err := compact.Verify(res.Seq, res.Code, tg.Encoder.NewSession()); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Every instruction appears exactly once.
	total := 0
	for _, w := range res.Code.Words {
		total += len(w.Instrs)
	}
	if total != res.SeqLen() {
		t.Errorf("packed %d of %d instructions", total, res.SeqLen())
	}
}

func TestDisableKeepsOrder(t *testing.T) {
	tg := c25(t)
	res, err := tg.CompileSourceContext(context.Background(), macSrc, core.CompileOptions{NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CodeLen() != res.SeqLen() {
		t.Fatalf("disabled compaction packed: %d vs %d", res.CodeLen(), res.SeqLen())
	}
	for i, w := range res.Code.Words {
		if len(w.Instrs) != 1 || w.Instrs[0] != res.Seq.Instrs[i] {
			t.Fatalf("word %d does not match sequence", i)
		}
	}
}

func TestVerifyCatchesReorderedDependence(t *testing.T) {
	tg := c25(t)
	res, err := tg.CompileSourceContext(context.Background(), `int x; int y; x = 5; y = x + 1;`,
		core.CompileOptions{NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	prg := res.Code
	if len(prg.Words) < 2 {
		t.Skip("program too short to corrupt")
	}
	// Swap two words: some dependence must break.
	prg.Words[0], prg.Words[len(prg.Words)-1] = prg.Words[len(prg.Words)-1], prg.Words[0]
	if err := compact.Verify(res.Seq, prg, tg.Encoder.NewSession()); err == nil {
		t.Error("corrupted schedule passed verification")
	}
}

func TestVerifyCatchesMissingInstr(t *testing.T) {
	tg := c25(t)
	res, err := tg.CompileSourceContext(context.Background(), `int x; x = 5;`, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prg := res.Code
	prg.Words = prg.Words[:len(prg.Words)-1]
	if err := compact.Verify(res.Seq, prg, tg.Encoder.NewSession()); err == nil {
		t.Error("dropped instruction passed verification")
	}
}

func TestParallelWordsEncodable(t *testing.T) {
	tg := c25(t)
	res, err := tg.CompileSourceContext(context.Background(), macSrc, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parallel := 0
	for _, w := range res.Code.Words {
		if len(w.Instrs) > 1 {
			parallel++
			if !tg.Encoder.NewSession().Feasible(w.Instrs) {
				t.Errorf("parallel word not encodable: %s", w)
			}
		}
	}
	if parallel == 0 {
		t.Error("MAC kernel produced no parallel words")
	}
}
