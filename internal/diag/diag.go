// Package diag is the pipeline-wide diagnostics and resource-governance
// layer of the retargetable compiler.
//
// RECORD's premise is that the processor model is *user-written* and may be
// imperfect: encoding conflicts, bus contention, pathological interconnect.
// The paper's response is to degrade — discard the offending templates and
// keep retargeting — rather than abort.  This package carries that policy
// across the whole pipeline:
//
//   - Diagnostic / Reporter: structured, phase-tagged diagnostics with
//     severity and optional source positions, collected concurrently-safely
//     through one Reporter threaded from the HDL frontend down to the
//     driver.  A nil *Reporter is valid everywhere and discards.
//
//   - Budget: resource limits an expensive phase must honor — a wall-clock
//     deadline (via context.Context), a BDD node cap and a route cap —
//     with partial-result semantics: exceeding a budget inside one unit of
//     work drops that unit with a Warn, not the whole retarget.
//
//   - Capture / Guard: recover-to-phase-boundary helpers that convert
//     panics (BDD/bitvec invariant violations, injected faults) into
//     *PanicError values and Error diagnostics instead of crashing the
//     driver.
package diag

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	Info Severity = iota
	Warn
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Pos is an optional source position; the zero value means "no position".
type Pos struct {
	Line, Col int
}

// IsValid reports whether p carries a real position.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Diagnostic is one structured finding from a pipeline phase.
type Diagnostic struct {
	Sev   Severity
	Phase string // pipeline phase tag: "hdl", "ise", "grammar", "core", ...
	Pos   Pos    // optional source position
	Msg   string
}

func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Pos.IsValid() {
		fmt.Fprintf(&b, "%s: ", d.Pos)
	}
	fmt.Fprintf(&b, "%s: [%s] %s", d.Sev, d.Phase, d.Msg)
	return b.String()
}

// Reporter collects diagnostics from every phase of one pipeline run.  All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// Reporter discards everything), so call sites never need nil checks.
type Reporter struct {
	mu        sync.Mutex
	diags     []Diagnostic
	maxErrors int // 0 = unlimited
	strict    bool
	bailed    bool
	counts    [Error + 1]int
}

// NewReporter returns an empty reporter with no error cap.
func NewReporter() *Reporter { return &Reporter{} }

// SetMaxErrors caps collection: after n Error diagnostics the reporter
// bails — it records one final "too many errors" diagnostic, drops further
// reports, and Bailed returns true so phases can stop early.  n <= 0 means
// unlimited.
func (r *Reporter) SetMaxErrors(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxErrors = n
}

// SetStrict promotes every subsequent Warn to Error (the driver's -strict).
func (r *Reporter) SetStrict(strict bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.strict = strict
}

// Report records one diagnostic.
func (r *Reporter) Report(d Diagnostic) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bailed {
		return
	}
	if r.strict && d.Sev == Warn {
		d.Sev = Error
	}
	r.diags = append(r.diags, d)
	r.counts[d.Sev]++
	if r.maxErrors > 0 && d.Sev == Error && r.counts[Error] >= r.maxErrors {
		r.bailed = true
		r.diags = append(r.diags, Diagnostic{
			Sev: Error, Phase: d.Phase,
			Msg: fmt.Sprintf("too many errors (limit %d); further diagnostics suppressed", r.maxErrors),
		})
		r.counts[Error]++
	}
}

// Infof records an Info diagnostic.
func (r *Reporter) Infof(phase string, pos Pos, format string, args ...interface{}) {
	r.Report(Diagnostic{Sev: Info, Phase: phase, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Warnf records a Warn diagnostic (an Error under strict mode).
func (r *Reporter) Warnf(phase string, pos Pos, format string, args ...interface{}) {
	r.Report(Diagnostic{Sev: Warn, Phase: phase, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Errorf records an Error diagnostic.
func (r *Reporter) Errorf(phase string, pos Pos, format string, args ...interface{}) {
	r.Report(Diagnostic{Sev: Error, Phase: phase, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Diags returns a copy of every collected diagnostic, in report order.
func (r *Reporter) Diags() []Diagnostic {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Diagnostic, len(r.diags))
	copy(out, r.diags)
	return out
}

// Count returns how many diagnostics of severity s were collected.
func (r *Reporter) Count(s Severity) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s < 0 || s > Error {
		return 0
	}
	return r.counts[s]
}

// Warns returns the number of Warn diagnostics.
func (r *Reporter) Warns() int { return r.Count(Warn) }

// Errors returns the number of Error diagnostics.
func (r *Reporter) Errors() int { return r.Count(Error) }

// Bailed reports whether the max-errors cap was hit.
func (r *Reporter) Bailed() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bailed
}

// Err summarizes collected errors as a single error, or nil when none.
func (r *Reporter) Err() error {
	if n := r.Errors(); n > 0 {
		return fmt.Errorf("%d error(s) reported", n)
	}
	return nil
}

// Summary renders a one-line severity tally, e.g. "2 warnings, 1 error".
func (r *Reporter) Summary() string {
	if r == nil {
		return "no diagnostics"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var parts []string
	add := func(n int, word string) {
		if n == 1 {
			parts = append(parts, fmt.Sprintf("1 %s", word))
		} else if n > 1 {
			parts = append(parts, fmt.Sprintf("%d %ss", n, word))
		}
	}
	add(r.counts[Info], "note")
	add(r.counts[Warn], "warning")
	add(r.counts[Error], "error")
	if len(parts) == 0 {
		return "no diagnostics"
	}
	return strings.Join(parts, ", ")
}

// Phases returns the sorted set of phases that reported anything.
func (r *Reporter) Phases() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	for _, d := range r.diags {
		seen[d.Phase] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ----- resource budgets -------------------------------------------------

// Budget bounds the resources an expensive phase may consume.  The zero
// value and a nil *Budget mean "unlimited"; every method is nil-safe.
type Budget struct {
	// Ctx carries the wall-clock deadline (and cancellation); nil means
	// context.Background().
	Ctx context.Context
	// MaxBDDNodes caps the BDD universe size during control-signal
	// analysis; 0 = unlimited.
	MaxBDDNodes int
	// MaxRoutes caps route enumeration per traversal point in ISE,
	// overriding the phase default when > 0.
	MaxRoutes int
}

// Context returns the budget's context, never nil.
func (b *Budget) Context() context.Context {
	if b == nil || b.Ctx == nil {
		return context.Background()
	}
	return b.Ctx
}

// Exceeded returns a *BudgetError when the wall-clock deadline has passed
// (or the context was cancelled), else nil.
func (b *Budget) Exceeded() error {
	if b == nil || b.Ctx == nil {
		return nil
	}
	if err := b.Ctx.Err(); err != nil {
		return &BudgetError{Resource: "deadline", Cause: err}
	}
	return nil
}

// NodesExceeded returns a *BudgetError when the BDD universe has grown past
// the cap, else nil.
func (b *Budget) NodesExceeded(nodes int) error {
	if b == nil || b.MaxBDDNodes <= 0 || nodes <= b.MaxBDDNodes {
		return nil
	}
	return &BudgetError{
		Resource: "bdd-nodes",
		Cause:    fmt.Errorf("%d nodes exceed cap %d", nodes, b.MaxBDDNodes),
	}
}

// BudgetError marks work abandoned because a resource budget ran out;
// phases treat it as a degradation trigger, not a hard failure.
type BudgetError struct {
	Resource string // "deadline", "bdd-nodes", "routes"
	Cause    error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("budget exhausted (%s): %v", e.Resource, e.Cause)
}

func (e *BudgetError) Unwrap() error { return e.Cause }

// ----- recovery boundaries ----------------------------------------------

// PanicError wraps a recovered panic so callers can distinguish internal
// faults (driver exit code 3) from input or resource errors.
type PanicError struct {
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("internal fault: %v", e.Value)
}

// Capture invokes fn, converting a panic into a *PanicError.  It is the
// recover-to-phase-boundary primitive: callers decide whether the failure
// degrades (drop one unit of work) or aborts (whole phase).
func Capture(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Guard runs one pipeline phase under a recovery boundary: a panic becomes
// an Error diagnostic on r (tagged with the phase) and a *PanicError return.
func Guard(r *Reporter, phase string, fn func() error) error {
	err := Capture(fn)
	if pe, ok := err.(*PanicError); ok {
		r.Errorf(phase, Pos{}, "phase crashed: %v (recovered at phase boundary)", pe.Value)
	}
	return err
}
