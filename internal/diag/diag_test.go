package diag

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilReporterIsSafe(t *testing.T) {
	var r *Reporter
	r.Warnf("ise", Pos{}, "dropped")
	r.Errorf("hdl", Pos{1, 2}, "boom")
	r.SetMaxErrors(3)
	r.SetStrict(true)
	if r.Warns() != 0 || r.Errors() != 0 || r.Bailed() || r.Err() != nil {
		t.Error("nil reporter must discard everything")
	}
	if got := r.Summary(); got != "no diagnostics" {
		t.Errorf("nil summary = %q", got)
	}
	if r.Diags() != nil || r.Phases() != nil {
		t.Error("nil reporter must return empty views")
	}
}

func TestReporterCountsAndOrder(t *testing.T) {
	r := NewReporter()
	r.Infof("core", Pos{}, "starting")
	r.Warnf("ise", Pos{}, "dropping destination %s", "ram.m")
	r.Errorf("hdl", Pos{3, 7}, "expected ';'")
	if r.Count(Info) != 1 || r.Warns() != 1 || r.Errors() != 1 {
		t.Fatalf("counts = %d/%d/%d", r.Count(Info), r.Warns(), r.Errors())
	}
	ds := r.Diags()
	if len(ds) != 3 || ds[1].Msg != "dropping destination ram.m" {
		t.Fatalf("diags = %v", ds)
	}
	if got := ds[2].String(); got != "3:7: error: [hdl] expected ';'" {
		t.Errorf("String() = %q", got)
	}
	if got := ds[1].String(); got != "warning: [ise] dropping destination ram.m" {
		t.Errorf("String() = %q", got)
	}
	if r.Err() == nil {
		t.Error("Err() should be non-nil with an error recorded")
	}
	want := []string{"core", "hdl", "ise"}
	if got := r.Phases(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Phases() = %v", got)
	}
}

func TestStrictPromotesWarn(t *testing.T) {
	r := NewReporter()
	r.SetStrict(true)
	r.Warnf("ise", Pos{}, "dropped")
	if r.Warns() != 0 || r.Errors() != 1 {
		t.Errorf("strict: warns=%d errors=%d", r.Warns(), r.Errors())
	}
}

func TestMaxErrorsBails(t *testing.T) {
	r := NewReporter()
	r.SetMaxErrors(2)
	r.Errorf("hdl", Pos{}, "e1")
	r.Errorf("hdl", Pos{}, "e2")
	r.Errorf("hdl", Pos{}, "e3") // suppressed
	r.Warnf("ise", Pos{}, "w1")  // suppressed
	if !r.Bailed() {
		t.Fatal("reporter should have bailed")
	}
	// e1, e2, plus the "too many errors" marker; e3/w1 dropped.
	if len(r.Diags()) != 3 {
		t.Errorf("diags = %v", r.Diags())
	}
	last := r.Diags()[2]
	if !strings.Contains(last.Msg, "too many errors") {
		t.Errorf("missing bail marker: %v", last)
	}
}

func TestReporterConcurrent(t *testing.T) {
	r := NewReporter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Warnf("ise", Pos{}, "w")
			}
		}()
	}
	wg.Wait()
	if r.Warns() != 800 {
		t.Errorf("warns = %d", r.Warns())
	}
}

func TestSummary(t *testing.T) {
	r := NewReporter()
	if r.Summary() != "no diagnostics" {
		t.Errorf("empty summary = %q", r.Summary())
	}
	r.Warnf("ise", Pos{}, "a")
	r.Warnf("ise", Pos{}, "b")
	r.Errorf("hdl", Pos{}, "c")
	if got := r.Summary(); got != "2 warnings, 1 error" {
		t.Errorf("summary = %q", got)
	}
}

func TestBudgetNilSafe(t *testing.T) {
	var b *Budget
	if b.Exceeded() != nil || b.NodesExceeded(1<<30) != nil {
		t.Error("nil budget must be unlimited")
	}
	if b.Context() == nil {
		t.Error("nil budget context must not be nil")
	}
}

func TestBudgetDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	b := &Budget{Ctx: ctx}
	err := b.Exceeded()
	if err == nil {
		t.Fatal("expired deadline not detected")
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "deadline" {
		t.Errorf("err = %v", err)
	}
}

func TestBudgetNodes(t *testing.T) {
	b := &Budget{MaxBDDNodes: 100}
	if b.NodesExceeded(100) != nil {
		t.Error("at-cap should pass")
	}
	if b.NodesExceeded(101) == nil {
		t.Error("over-cap not detected")
	}
}

func TestCaptureConvertsPanic(t *testing.T) {
	err := Capture(func() error { panic("invariant broken") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "invariant broken" {
		t.Fatalf("err = %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("stack missing")
	}
	if err := Capture(func() error { return nil }); err != nil {
		t.Errorf("clean fn: %v", err)
	}
	want := errors.New("plain")
	if err := Capture(func() error { return want }); err != want {
		t.Errorf("plain error not passed through: %v", err)
	}
}

func TestGuardReportsPanic(t *testing.T) {
	r := NewReporter()
	err := Guard(r, "ise", func() error { panic("kaboom") })
	if _, ok := err.(*PanicError); !ok {
		t.Fatalf("err = %v", err)
	}
	if r.Errors() != 1 || !strings.Contains(r.Diags()[0].Msg, "kaboom") {
		t.Errorf("diags = %v", r.Diags())
	}
}
