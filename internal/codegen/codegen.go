// Package codegen drives code selection: it covers lowered expression
// trees with RT templates via the BURS tree parser, linearizes the optimal
// derivations into sequential RT instructions with concrete operand
// fields, orders operand evaluation to minimize special-purpose register
// conflicts (the Sethi-Ullman-flavored extension of Araujo/Malik the paper
// cites in section 3.2), and inserts memory spills when a register value
// cannot survive a sibling computation.
package codegen

import (
	"fmt"
	"sort"

	"repro/internal/bind"
	"repro/internal/burs"
	"repro/internal/code"
	"repro/internal/grammar"
	"repro/internal/rtl"
)

// Generator compiles ETs for one retargeted machine.
type Generator struct {
	G *grammar.Grammar
	P *burs.Parser
	B *bind.Binding

	scratchFree []int
	// Stats accumulates selection metrics across Compile calls.
	Stats Stats
}

// Stats reports code-selection effort and quality.
type Stats struct {
	Trees      int // expression trees compiled
	Instrs     int // RT instructions emitted
	Spills     int // spill store/reload pairs inserted
	SelectCost int // accumulated optimal cover cost
}

// New builds a generator from the grammar, its parser and the binding.
func New(g *grammar.Grammar, p *burs.Parser, b *bind.Binding) *Generator {
	cg := &Generator{G: g, P: p, B: b}
	for i := 0; i < b.ScratchLen; i++ {
		cg.scratchFree = append(cg.scratchFree, b.ScratchBase+i)
	}
	return cg
}

// Compile covers every ET and returns the sequential (pre-compaction) code.
func (cg *Generator) Compile(ets []*bind.ET) (*code.Seq, error) {
	seq := &code.Seq{}
	for _, et := range ets {
		cg.Stats.Trees++
		instrs, err := cg.CompileET(et)
		if err != nil {
			return nil, fmt.Errorf("codegen: %s: %w", et.Source, err)
		}
		if len(instrs) > 0 {
			instrs[len(instrs)-1].Comment = et.Source
		}
		for _, in := range instrs {
			seq.Append(in)
		}
	}
	cg.Stats.Instrs = seq.Len()
	return seq, nil
}

// CompileET covers one expression tree and linearizes the derivation.
// Trees the grammar cannot derive in one piece (e.g. two computed operands
// on a single-accumulator machine) are split: a maximal coverable subtree
// is evaluated into a scratch memory cell and replaced by a memory leaf,
// then selection retries — the register-spill handling the paper delegates
// to its scheduling extension of Araujo/Malik.
func (cg *Generator) CompileET(et *bind.ET) ([]*code.Instr, error) {
	return cg.compileET(et, maxSplits)
}

// maxSplits bounds ET splitting depth per tree, and maxSplitCandidates the
// alternatives examined per level (the candidates are size-ordered, so the
// first feasible ones are the most productive).
const (
	maxSplits          = 64
	maxSplitCandidates = 6
)

func (cg *Generator) compileET(et *bind.ET, budget int) ([]*code.Instr, error) {
	instrs, err := cg.compileWhole(et)
	if err == nil {
		return instrs, nil
	}
	if budget <= 0 {
		return nil, err
	}
	// Algebraic fallback: machines without a subtracter/negator compute
	// a-b as a+(~b+1) and -b as ~b+1 (two's complement identities).  One
	// top-level rewrite converts every subtraction at once, so the
	// fallback is tried only there (retrying per split level would
	// duplicate the whole search exponentially).
	if budget == maxSplits {
		for _, rewritten := range []*rtl.Expr{
			twosComplement(et.Src),
			swapComparisons(et.Src, rtl.OpGt, rtl.OpGe),
			swapComparisons(et.Src, rtl.OpLt, rtl.OpLe),
		} {
			if rewritten.Equal(et.Src) {
				continue
			}
			alt := &bind.ET{Dest: et.Dest, DestAddr: et.DestAddr, Src: rewritten, Source: et.Source}
			if instrs, aerr := cg.compileET(alt, budget-1); aerr == nil {
				return instrs, nil
			}
		}
	}
	// Try splitting: largest proper subtree that compiles into memory.
	tried := 0
	for _, sub := range splitCandidates(et.Src) {
		if tried >= maxSplitCandidates {
			break
		}
		tried++
		cell, aerr := cg.allocScratch()
		if aerr != nil {
			return nil, err
		}
		subET := &bind.ET{
			Dest:     cg.B.Memory,
			DestAddr: rtl.NewConst(int64(cell), cg.B.AddrWidth),
			Src:      sub,
		}
		subCode, serr := cg.compileWhole(subET)
		if serr != nil {
			cg.freeScratch(cell)
			continue
		}
		leaf := rtl.NewRead(cg.B.Memory, cg.B.Width, rtl.NewConst(int64(cell), cg.B.AddrWidth))
		rest := &bind.ET{
			Dest:     et.Dest,
			DestAddr: et.DestAddr,
			Src:      replaceFirst(et.Src, sub, leaf),
			Source:   et.Source,
		}
		restCode, rerr := cg.compileET(rest, budget-1)
		cg.freeScratch(cell)
		if rerr != nil {
			// Commit to the first candidate whose subtree compiles:
			// backtracking across candidates is exponential, and the
			// size-ordered heuristic makes later candidates strictly less
			// promising.
			return nil, rerr
		}
		cg.Stats.Spills++
		return append(subCode, restCode...), nil
	}
	return nil, err
}

// twosComplement rewrites every subtraction and negation into complement
// identities: a-b → a+(~b+1), -b → ~b+1.
func twosComplement(e *rtl.Expr) *rtl.Expr {
	if e.Kind != rtl.OpApp {
		return e
	}
	kids := make([]*rtl.Expr, len(e.Kids))
	for i, k := range e.Kids {
		kids[i] = twosComplement(k)
	}
	w := e.Width
	switch e.Op {
	case rtl.OpSub:
		return rtl.NewOp(rtl.OpAdd, w, kids[0],
			rtl.NewOp(rtl.OpAdd, w,
				rtl.NewOp(rtl.OpNot, w, kids[1]), rtl.NewConst(1, w)))
	case rtl.OpNeg:
		return rtl.NewOp(rtl.OpAdd, w,
			rtl.NewOp(rtl.OpNot, w, kids[0]), rtl.NewConst(1, w))
	}
	return rtl.NewOp(e.Op, w, kids...)
}

// swapComparisons mirrors the listed comparison operators (a > b == b < a,
// a >= b == b <= a and vice versa), for machines whose comparator
// implements only one direction.
func swapComparisons(e *rtl.Expr, ops ...rtl.Op) *rtl.Expr {
	if e.Kind != rtl.OpApp {
		return e
	}
	kids := make([]*rtl.Expr, len(e.Kids))
	for i, k := range e.Kids {
		kids[i] = swapComparisons(k, ops...)
	}
	for _, op := range ops {
		if e.Op == op {
			return rtl.NewOp(mirrorOf(op), e.Width, kids[1], kids[0])
		}
	}
	return rtl.NewOp(e.Op, e.Width, kids...)
}

func mirrorOf(op rtl.Op) rtl.Op {
	switch op {
	case rtl.OpGt:
		return rtl.OpLt
	case rtl.OpGe:
		return rtl.OpLe
	case rtl.OpLt:
		return rtl.OpGt
	case rtl.OpLe:
		return rtl.OpGe
	}
	return op
}

// splitCandidates returns proper subtrees worth evaluating separately,
// largest first (a smaller remainder converges faster).
func splitCandidates(e *rtl.Expr) []*rtl.Expr {
	var subs []*rtl.Expr
	e.Walk(func(n *rtl.Expr) {
		if n == e || n.Size() < 3 {
			return
		}
		if n.Kind == rtl.Read {
			return // already a memory/register leaf
		}
		subs = append(subs, n)
	})
	sort.SliceStable(subs, func(i, j int) bool { return subs[i].Size() > subs[j].Size() })
	return subs
}

// replaceFirst returns tree with the first occurrence of old (pointer
// identity) replaced by repl; when old does not occur, tree is returned
// unchanged (same pointer), so callers can detect progress.
func replaceFirst(tree, old, repl *rtl.Expr) *rtl.Expr {
	if tree == old {
		return repl
	}
	for i, k := range tree.Kids {
		if nk := replaceFirst(k, old, repl); nk != k {
			c := *tree
			c.Kids = append([]*rtl.Expr(nil), tree.Kids...)
			c.Kids[i] = nk
			return &c
		}
	}
	return tree
}

// compileWhole covers one expression tree without splitting.
func (cg *Generator) compileWhole(et *bind.ET) ([]*code.Instr, error) {
	root := cg.P.Label(et.Src)
	if et.DestAddr == nil {
		// Plain register/port destination: the paper's standard start rule.
		cov, err := cg.P.CoverLabeled(et.Dest, root)
		if err != nil {
			return nil, err
		}
		cg.Stats.SelectCost += cov.Cost
		return cg.genStep(cov.Root, nil)
	}
	// Addressable destination: pick the best final store considering the
	// destination-address pattern too.
	addrRoot := cg.P.Label(et.DestAddr)
	rule, cost, err := cg.selectRoot(et.Dest, root, addrRoot)
	if err != nil {
		return nil, err
	}
	cg.Stats.SelectCost += cost
	// Build the root step by hand (sub-derivations for the source pattern),
	// then address sub-derivations.
	step := &burs.Step{Rule: rule, Node: root}
	if err := cg.deriveInto(step, rule.Pat, root); err != nil {
		return nil, err
	}
	addrPat, err := cg.G.LowerPattern(rule.Template.DestAddr)
	if err != nil {
		return nil, err
	}
	addrStep := &burs.Step{Rule: rule, Node: addrRoot}
	if err := cg.deriveInto(addrStep, addrPat, addrRoot); err != nil {
		return nil, err
	}

	// Evaluate address operands first (they are registers feeding the
	// store), then the value operands, then the store itself; conflicts
	// among all operand registers are resolved together.
	kids := append(append([]*burs.Step(nil), addrStep.Kids...), step.Kids...)
	combined := &burs.Step{Rule: rule, Node: root, Kids: kids}
	instrs, err := cg.genStepWithFields(combined, func(fields map[burs.FieldKey]int64) error {
		collectFields(rule.Pat, root, fields)
		collectFields(addrPat, addrRoot, fields)
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	return instrs, nil
}

// selectRoot finds the cheapest RT rule writing dest whose source pattern
// matches the labelled tree and whose destination-address pattern matches
// the labelled address tree (with globally consistent operand fields).
func (cg *Generator) selectRoot(dest string, root, addrRoot *burs.Node) (*grammar.Rule, int, error) {
	nt := cg.G.NT(dest)
	if nt < 0 {
		return nil, 0, fmt.Errorf("unknown destination %q", dest)
	}
	var best *grammar.Rule
	bestCost := int32(burs.Inf)
	for _, r := range cg.G.Rules {
		if r.Kind != grammar.KindRT || r.LHS != nt || r.Template.DestAddr == nil {
			continue
		}
		fields := make(map[burs.FieldKey]int64, 2)
		c := cg.P.MatchCostFields(r.Pat, root, fields)
		if c >= burs.Inf {
			continue
		}
		addrPat, err := cg.G.LowerPattern(r.Template.DestAddr)
		if err != nil {
			continue
		}
		ac := cg.P.MatchCostFields(addrPat, addrRoot, fields)
		if ac >= burs.Inf {
			continue
		}
		total := int32(r.Cost) + c + ac
		if total < bestCost {
			bestCost = total
			best = r
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("no store route into %s matches address %s (value %s)",
			dest, addrRoot.Expr, root.Expr)
	}
	return best, int(bestCost), nil
}

// deriveInto appends sub-derivations for every NT position of pat to step.
func (cg *Generator) deriveInto(step *burs.Step, pat *grammar.Pat, node *burs.Node) error {
	if pat.Kind == grammar.PatNT {
		kid, err := cg.P.Derive(node, pat.NT)
		if err != nil {
			return err
		}
		step.Kids = append(step.Kids, kid)
		return nil
	}
	for i, k := range pat.Kids {
		if err := cg.deriveInto(step, k, node.Kids[i]); err != nil {
			return err
		}
	}
	return nil
}

// genStep linearizes a derivation step into instructions.
func (cg *Generator) genStep(step *burs.Step, live []string) ([]*code.Instr, error) {
	return cg.genStepWithFields(step, func(fields map[burs.FieldKey]int64) error {
		collectFields(step.Rule.Pat, step.Node, fields)
		return nil
	}, live)
}

// genStepWithFields is genStep with a custom field collector for the final
// instruction (the memory-destination root also contributes address
// fields).
func (cg *Generator) genStepWithFields(step *burs.Step,
	collect func(map[burs.FieldKey]int64) error, live []string) ([]*code.Instr, error) {

	r := step.Rule
	if r.Kind == grammar.KindStop {
		return nil, nil // value already resides in the register
	}

	// Generate operand code bottom-up.
	n := len(step.Kids)
	kidCode := make([][]*code.Instr, n)
	kidReg := make([]string, n)
	for i, kid := range step.Kids {
		c, err := cg.genStep(kid, nil)
		if err != nil {
			return nil, err
		}
		kidCode[i] = c
		kidReg[i] = cg.G.NTNames[kid.Rule.LHS]
	}

	// Shared-subtree elision: two operands in the same register computing
	// structurally equal subtrees need only one evaluation.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if kidReg[i] == kidReg[j] && len(kidCode[j]) > 0 &&
				step.Kids[i].Node.Expr.Equal(step.Kids[j].Node.Expr) {
				kidCode[j] = nil
			}
		}
	}

	order, spilled, err := cg.schedule(kidCode, kidReg, step)
	if err != nil {
		return nil, err
	}

	var out []*code.Instr
	scratchOf := make(map[int]int) // kid index -> scratch cell
	for _, i := range order {
		out = append(out, kidCode[i]...)
		if spilled[i] {
			cell, err := cg.allocScratch()
			if err != nil {
				return nil, err
			}
			scratchOf[i] = cell
			store, err := cg.spillStore(kidReg[i], cell)
			if err != nil {
				return nil, err
			}
			out = append(out, store...)
			cg.Stats.Spills++
		}
	}
	// Reload spilled values (in order) before the parent instruction.
	for _, i := range order {
		if !spilled[i] {
			continue
		}
		reload, err := cg.spillReload(kidReg[i], scratchOf[i])
		if err != nil {
			return nil, err
		}
		// The reload must not clobber the other operand registers.
		for _, in := range reload {
			d := in.Def().Storage
			for j, reg := range kidReg {
				if j != i && reg == d && kidCode[j] != nil {
					return nil, fmt.Errorf("spill reload of %s clobbers operand register %s", kidReg[i], reg)
				}
			}
		}
		out = append(out, reload...)
		cg.freeScratch(scratchOf[i])
	}

	fields := make(map[burs.FieldKey]int64, 2)
	if err := collect(fields); err != nil {
		return nil, err
	}
	out = append(out, &code.Instr{Template: r.Template, Fields: sortedFields(fields)})
	return out, nil
}

// schedule picks an operand evaluation order minimizing clobbering, and
// marks operands that still need spilling.  A value computed earlier is
// clobbered when a later operand's code writes its register.
func (cg *Generator) schedule(kidCode [][]*code.Instr, kidReg []string,
	step *burs.Step) (order []int, spilled []bool, err error) {

	n := len(kidCode)
	spilled = make([]bool, n)
	if n <= 1 {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order, spilled, nil
	}

	writes := make([]map[string]bool, n)
	for i, c := range kidCode {
		writes[i] = make(map[string]bool)
		for _, in := range c {
			writes[i][in.Def().Storage] = true
		}
	}
	conflicts := func(ord []int) int {
		cnt := 0
		for ai := 0; ai < len(ord); ai++ {
			for bi := ai + 1; bi < len(ord); bi++ {
				a, b := ord[ai], ord[bi]
				if kidCode[b] == nil {
					continue // elided duplicate
				}
				if writes[b][kidReg[a]] {
					cnt++
				}
				if kidReg[a] == kidReg[b] && kidCode[b] != nil && kidCode[a] != nil {
					cnt++ // same register needed for two distinct values
				}
			}
		}
		return cnt
	}

	best := make([]int, n)
	for i := range best {
		best[i] = i
	}
	bestConf := conflicts(best)
	perms := permutations(n)
	for _, p := range perms {
		if c := conflicts(p); c < bestConf {
			bestConf = c
			best = append([]int(nil), p...)
		}
		if bestConf == 0 {
			break
		}
	}
	// Remaining conflicts: spill every earlier operand clobbered later.
	for ai := 0; ai < n; ai++ {
		for bi := ai + 1; bi < n; bi++ {
			a, b := best[ai], best[bi]
			if kidCode[b] == nil {
				continue
			}
			if writes[b][kidReg[a]] {
				spilled[a] = true
			}
			if kidReg[a] == kidReg[b] && kidCode[a] != nil {
				// Two live values in one register cannot be repaired by a
				// memory spill: the reload destroys the second value.
				return nil, nil, fmt.Errorf(
					"operands compete for register %s and cannot be scheduled apart", kidReg[a])
			}
		}
	}
	return best, spilled, nil
}

func permutations(n int) [][]int {
	if n > 4 {
		n = 4 // patterns never carry more nonterminals in practice
	}
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// spillStore emits code storing register reg into the scratch cell.
func (cg *Generator) spillStore(reg string, cell int) ([]*code.Instr, error) {
	regNT := cg.G.NT(reg)
	if regNT < 0 {
		return nil, fmt.Errorf("cannot spill unknown register %s", reg)
	}
	width := 0
	for _, s := range cg.G.Spec.Storages {
		if s.Name == reg {
			width = s.Width
		}
	}
	et := &bind.ET{
		Dest:     cg.B.Memory,
		DestAddr: rtl.NewConst(int64(cell), cg.B.AddrWidth),
		Src:      rtl.NewRead(reg, width, nil),
	}
	instrs, err := cg.CompileET(et)
	if err != nil {
		return nil, fmt.Errorf("spill store of %s: %w", reg, err)
	}
	return instrs, nil
}

// spillReload emits code loading the scratch cell back into register reg.
func (cg *Generator) spillReload(reg string, cell int) ([]*code.Instr, error) {
	et := &bind.ET{
		Dest: reg,
		Src:  rtl.NewRead(cg.B.Memory, cg.B.Width, rtl.NewConst(int64(cell), cg.B.AddrWidth)),
	}
	instrs, err := cg.CompileET(et)
	if err != nil {
		return nil, fmt.Errorf("spill reload of %s: %w", reg, err)
	}
	return instrs, nil
}

func (cg *Generator) allocScratch() (int, error) {
	if len(cg.scratchFree) == 0 {
		return 0, fmt.Errorf("out of spill cells (%d in use)", cg.B.ScratchLen)
	}
	cell := cg.scratchFree[len(cg.scratchFree)-1]
	cg.scratchFree = cg.scratchFree[:len(cg.scratchFree)-1]
	return cell, nil
}

func (cg *Generator) freeScratch(cell int) {
	cg.scratchFree = append(cg.scratchFree, cell)
}

// collectFields walks a pattern against a matching subject collecting the
// immediate-field operand values.
func collectFields(pat *grammar.Pat, node *burs.Node, out map[burs.FieldKey]int64) {
	if pat.Kind == grammar.PatNT {
		return
	}
	if pat.Kind == grammar.PatImm {
		out[burs.FieldKey{Hi: pat.ImmHi, Lo: pat.ImmLo}] = node.Expr.Val
		return
	}
	for i, k := range pat.Kids {
		if i < len(node.Kids) {
			collectFields(k, node.Kids[i], out)
		}
	}
}

func sortedFields(m map[burs.FieldKey]int64) []code.Field {
	keys := make([]burs.FieldKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Lo != keys[j].Lo {
			return keys[i].Lo < keys[j].Lo
		}
		return keys[i].Hi < keys[j].Hi
	})
	out := make([]code.Field, len(keys))
	for i, k := range keys {
		out[i] = code.Field{Hi: k.Hi, Lo: k.Lo, Val: m[k]}
	}
	return out
}
