package codegen_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/rtl"
)

// The micro16-style machine from the core tests has a single accumulator,
// which exercises scheduling and spilling hardest.
const oneAcc = `
PROCESSOR oneacc;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN b: WORD; IN op: 3; OUT y: WORD);
BEGIN
  y <- CASE op OF 0: a + b; 1: a - b; 2: a & b; 3: a | b;
                  4: a ^ b; 5: b; 6: a * b; 7: -b; END;
END;

MODULE BMux (IN m: WORD; IN imm: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: m; 1: imm; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE Rom (IN a: 8; OUT q: 32);
VAR m: 32 [256];
BEGIN q <- m[a]; END;

MODULE Inc (IN a: 8; OUT y: 8);
BEGIN y <- a + 1; END;

MODULE PcReg (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; r <- d; END;

PARTS
  alu  : Alu;
  bmux : BMux;
  acc  : Reg;
  ram  : Ram;
  imem : Rom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc;

CONNECT
  alu.a    <- acc.q;
  alu.b    <- bmux.y;
  alu.op   <- imem.q[31:29];
  bmux.m   <- ram.q;
  bmux.imm <- imem.q[15:0];
  bmux.s   <- imem.q[28];
  acc.d    <- alu.y;
  acc.ld   <- imem.q[27];
  ram.a    <- imem.q[7:0];
  ram.d    <- acc.q;
  ram.w    <- imem.q[26];
  imem.a   <- pc.q;
  pinc.a   <- pc.q;
  pc.d     <- pinc.y;
END.
`

func retarget(t *testing.T, mdl string) *core.Target {
	t.Helper()
	tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestSpillThroughMemory(t *testing.T) {
	tg := retarget(t, oneAcc)
	// Both multiplier operands are computed: the ET must split through a
	// scratch cell.
	res, err := tg.CompileSourceContext(context.Background(), `
int a = 3; int b = 4; int c = 5; int d = 6;
int x;
x = (a + b) * (c + d);
`, core.CompileOptions{NoPeephole: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Spills == 0 {
		t.Error("no spills recorded")
	}
	if err := tg.CheckAgainstOracle(res); err != nil {
		t.Fatal(err)
	}
	// The spill cell must be in the scratch region.
	usedScratch := false
	for _, in := range res.Seq.Instrs {
		d := in.Def()
		if d.Storage == "ram.m" && d.AddrKnown && int(d.Addr) >= res.Binding.ScratchBase {
			usedScratch = true
		}
	}
	if !usedScratch {
		t.Error("no store into the scratch region")
	}
}

func TestDeepNestingStaysCorrect(t *testing.T) {
	tg := retarget(t, oneAcc)
	res, err := tg.CompileSourceContext(context.Background(), `
int a = 1; int b = 2; int c = 3; int d = 4;
int e = 5; int f = 6; int g = 7; int h = 8;
int x;
x = ((a + b) * (c + d)) ^ ((e - f) * (g + h));
`, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.CheckAgainstOracle(res); err != nil {
		t.Fatalf("%v\n%s", err, res.Seq)
	}
	if res.Stats.Spills < 2 {
		t.Errorf("expected several spills, got %d", res.Stats.Spills)
	}
}

func TestEvaluationOrderAvoidsSpill(t *testing.T) {
	tg := retarget(t, oneAcc)
	// (a+b) + c: right operand is a leaf, so evaluating left-first into
	// the accumulator needs no spill at all.
	res, err := tg.CompileSourceContext(context.Background(), `
int a = 1; int b = 2; int c = 3;
int x;
x = (a + b) + c;
`, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Spills != 0 {
		t.Errorf("unnecessary spills: %d\n%s", res.Stats.Spills, res.Seq)
	}
	if err := tg.CheckAgainstOracle(res); err != nil {
		t.Fatal(err)
	}
}

func TestSharedSubtreeElision(t *testing.T) {
	mdl, _ := models.Get("tms320c25")
	tg := retarget(t, mdl)
	// t*t: both multiplier operands are the same subtree; on the c25 the
	// square needs t loaded once.
	res, err := tg.CompileSourceContext(context.Background(), `
int v = 9;
int sq;
sq = v * v;
`, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.CheckAgainstOracle(res); err != nil {
		t.Fatal(err)
	}
	tloads := 0
	for _, in := range res.Seq.Instrs {
		if in.Template.Dest == "t.r" {
			tloads++
		}
	}
	if tloads != 1 {
		t.Errorf("v*v loaded T %d times:\n%s", tloads, res.Seq)
	}
}

func TestFieldConsistencyForcesSplit(t *testing.T) {
	tg := retarget(t, oneAcc)
	// a & (a+1) with a nonlinear immediate would be wrong; here we check
	// two DIFFERENT immediates sharing the field force separate words.
	res, err := tg.CompileSourceContext(context.Background(), `
int x;
x = 100 + 200;
`, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.CheckAgainstOracle(res); err != nil {
		t.Fatal(err)
	}
	// The frontend folds 100+200, so this compiles to a single load of 300.
	if res.SeqLen() > 2 {
		t.Errorf("folded constant took %d RTs", res.SeqLen())
	}
}

func TestCommentsCarrySource(t *testing.T) {
	tg := retarget(t, oneAcc)
	res, err := tg.CompileSourceContext(context.Background(), `int x; x = 5;`, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range res.Seq.Instrs {
		if strings.Contains(in.Comment, "x = 5;") {
			found = true
		}
	}
	if !found {
		t.Error("source comment lost")
	}
}

func TestTwosComplementFallbackWidths(t *testing.T) {
	// Machines without subtracters (manocpu) compute a-b via ~b+1; check
	// the result is numerically right across sign boundaries.
	mdl, _ := models.Get("manocpu")
	tg := retarget(t, mdl)
	res, err := tg.CompileSourceContext(context.Background(), `
int a = 5; int b = 12;
int x; int y;
x = a - b;
y = b - a;
`, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.CheckAgainstOracle(res); err != nil {
		t.Fatal(err)
	}
	env, err := tg.Execute(res)
	if err != nil {
		t.Fatal(err)
	}
	if env["x"][0] != -7 || env["y"][0] != 7 {
		t.Errorf("x=%d y=%d", env["x"][0], env["y"][0])
	}
	_ = rtl.OpSub // document the op under test
}
