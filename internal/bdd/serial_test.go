package bdd

import (
	"math/rand"
	"reflect"
	"testing"
)

// exportImport round-trips f into a fresh manager sharing m's variables.
func exportImport(t *testing.T, m *Manager, f *Node) (*Manager, *Node) {
	t.Helper()
	ex := NewExporter()
	id := ex.Export(f)
	m2 := New()
	for v := 0; v < m.NumVars(); v++ {
		m2.DeclareVar(m.VarName(v))
	}
	im, err := NewImporter(m2, ex.Table())
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	g, err := im.Node(id)
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	return m2, g
}

func TestSerialTerminals(t *testing.T) {
	m := New()
	ex := NewExporter()
	if got := ex.Export(m.False()); got != SerialFalse {
		t.Fatalf("False exported as %d", got)
	}
	if got := ex.Export(m.True()); got != SerialTrue {
		t.Fatalf("True exported as %d", got)
	}
	if len(ex.Table()) != 0 {
		t.Fatalf("terminals added table entries: %v", ex.Table())
	}
}

func TestSerialRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := New()
		const nvars = 6
		f, fn := randomExpr(m, rng, nvars, 4)
		m2, g := exportImport(t, m, f)
		// Equivalence by exhaustive evaluation in the new manager.
		for a := uint(0); a < 1<<nvars; a++ {
			assign := make(map[int]bool)
			for v := 0; v < nvars; v++ {
				assign[v] = a&(1<<uint(v)) != 0
			}
			if m2.Eval(g, assign) != fn(a) {
				t.Fatalf("trial %d: imported BDD disagrees at assignment %b", trial, a)
			}
		}
		// Canonicity: structure sizes must match.
		if m.NodeCount(f) != m2.NodeCount(g) {
			t.Fatalf("trial %d: node count changed %d -> %d", trial, m.NodeCount(f), m2.NodeCount(g))
		}
	}
}

// TestSerialDeterministicTable checks that two managers building the same
// functions in different construction orders export identical tables.
func TestSerialDeterministicTable(t *testing.T) {
	build := func(scrambled bool) []SerialNode {
		m := New()
		for i := 0; i < 4; i++ {
			m.DeclareVar(VarNameForTest(i))
		}
		x0, x1, x2, x3 := m.Var(0), m.Var(1), m.Var(2), m.Var(3)
		if scrambled {
			// Touch the manager with unrelated garbage first so internal ids
			// differ from the clean build.
			_ = m.Or(m.And(x3, x2), m.Not(x1))
		}
		f := m.Or(m.And(x0, x1), m.And(x2, x3))
		g := m.Xor(x0, x3)
		ex := NewExporter()
		ex.Export(f)
		ex.Export(g)
		return ex.Table()
	}
	a, b := build(false), build(true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("export not deterministic:\n%v\n%v", a, b)
	}
}

func TestImportRejectsCorruptTable(t *testing.T) {
	m := New()
	if _, err := NewImporter(m, []SerialNode{{Var: 0, Lo: 5, Hi: 1}}); err == nil {
		t.Fatal("forward child reference accepted")
	}
	if _, err := NewImporter(m, []SerialNode{{Var: -2, Lo: 0, Hi: 1}}); err == nil {
		t.Fatal("negative variable accepted")
	}
	im, err := NewImporter(m, []SerialNode{{Var: 0, Lo: 0, Hi: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := im.Node(99); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

// VarNameForTest gives stable names for serialization tests.
func VarNameForTest(i int) string {
	return string(rune('a' + i))
}
