// BDD serialization: export a set of ROBDD roots as a flat, deterministic
// node table and rebuild them in a fresh manager.
//
// The retarget-artifact cache persists template execution conditions across
// processes.  Manager-internal node ids depend on construction order, so
// Exporter renumbers nodes densely in a deterministic DFS order over the
// roots it is given: the same logical BDDs exported in the same root order
// always produce the same table, regardless of how the manager built them.
package bdd

import "fmt"

// Serial ids 0 and 1 are reserved for the False and True terminals;
// internal nodes are numbered from 2 in table order.
const (
	SerialFalse = 0
	SerialTrue  = 1
)

// SerialNode is one exported internal ROBDD vertex.  Lo and Hi refer to
// earlier table entries (offset by the two terminals), so the table is in
// bottom-up topological order by construction.
type SerialNode struct {
	Var int `json:"v"`
	Lo  int `json:"l"`
	Hi  int `json:"h"`
}

// Exporter assigns deterministic serial ids to the nodes reachable from
// the roots passed to Export, accumulating the shared node table.
type Exporter struct {
	ids   map[*Node]int
	nodes []SerialNode
}

// NewExporter returns an empty exporter.
func NewExporter() *Exporter {
	return &Exporter{ids: make(map[*Node]int)}
}

// Export returns the serial id of root, appending any nodes not yet in the
// table in post-order (children first).
func (e *Exporter) Export(root *Node) int {
	if root.IsLeaf() {
		// Terminals: False is always created first (id 0), True second.
		if root.id == 0 {
			return SerialFalse
		}
		return SerialTrue
	}
	if id, ok := e.ids[root]; ok {
		return id
	}
	lo := e.Export(root.Low)
	hi := e.Export(root.High)
	id := len(e.nodes) + 2
	e.ids[root] = id
	e.nodes = append(e.nodes, SerialNode{Var: root.Var, Lo: lo, Hi: hi})
	return id
}

// Table returns the accumulated node table.
func (e *Exporter) Table() []SerialNode {
	return e.nodes
}

// Importer rebuilds an exported node table inside a manager.  The manager
// must declare the same variable universe (same names in the same order) as
// the exporting manager for the rebuilt functions to be meaningful.
type Importer struct {
	m     *Manager
	built []*Node
}

// NewImporter validates and materializes the node table in m.  Each entry
// is rebuilt with Ite(var, hi, lo), which reduces to the canonical node
// because children always sit at deeper variable levels.
func NewImporter(m *Manager, table []SerialNode) (*Importer, error) {
	im := &Importer{m: m, built: make([]*Node, len(table)+2)}
	im.built[SerialFalse] = m.False()
	im.built[SerialTrue] = m.True()
	for i, sn := range table {
		if sn.Var < 0 {
			return nil, fmt.Errorf("bdd: import: node %d has negative variable %d", i+2, sn.Var)
		}
		if sn.Lo < 0 || sn.Lo >= i+2 || sn.Hi < 0 || sn.Hi >= i+2 {
			return nil, fmt.Errorf("bdd: import: node %d has forward or invalid child reference", i+2)
		}
		im.built[i+2] = m.Ite(m.Var(sn.Var), im.built[sn.Hi], im.built[sn.Lo])
	}
	return im, nil
}

// Node returns the rebuilt node for a serial id.
func (im *Importer) Node(id int) (*Node, error) {
	if id < 0 || id >= len(im.built) {
		return nil, fmt.Errorf("bdd: import: serial id %d out of range [0,%d)", id, len(im.built))
	}
	return im.built[id], nil
}
