package bdd

import (
	"fmt"
	"sync"
	"testing"
)

// buildManager declares n variables and some shared structure, so frozen
// lookups hit real content.
func buildManager(n int) (*Manager, []*Node) {
	m := New()
	vars := make([]*Node, n)
	for i := 0; i < n; i++ {
		vars[i] = m.Var(m.DeclareVar(fmt.Sprintf("x%d", i)))
	}
	return m, vars
}

func TestFrozenManagerPanicsOnMutation(t *testing.T) {
	m, vars := buildManager(4)
	conj := m.And(vars[0], vars[1]) // memoized pre-freeze
	m.Freeze()
	if !m.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on frozen manager did not panic", name)
			}
		}()
		f()
	}
	mustPanic("DeclareVar", func() { m.DeclareVar("fresh") })
	mustPanic("Ite", func() { m.Ite(vars[2], vars[3], m.False()) })

	// Read-only operations keep working on the frozen manager.
	if _, ok := m.AnySat(conj); !ok {
		t.Fatal("AnySat failed on frozen manager")
	}
	if got := m.DeclareVar("x1"); got != 1 {
		t.Fatalf("redeclaring existing var on frozen manager: got %d", got)
	}
}

func TestViewMatchesManagerSemantics(t *testing.T) {
	// Build the same functions on an unfrozen manager and via a View over
	// a frozen copy of the structure; results must agree via Eval.
	m, vars := buildManager(4)
	f := m.Or(m.And(vars[0], vars[1]), m.And(vars[2], m.Not(vars[3])))
	m.Freeze()
	v := m.NewView()
	g := v.Or(v.And(vars[0], vars[1]), v.And(vars[2], v.Not(vars[3])))

	for bits := 0; bits < 16; bits++ {
		assign := map[int]bool{}
		for i := 0; i < 4; i++ {
			assign[i] = bits&(1<<i) != 0
		}
		if m.Eval(f, assign) != m.Eval(g, assign) {
			t.Fatalf("view disagrees with manager at assignment %04b", bits)
		}
	}
	// Functions already in the frozen base come back as the SAME node
	// (canonicity across the view boundary), which is what makes AnySat
	// answers identical serial vs parallel.
	if v.And(vars[0], vars[1]) == nil {
		t.Fatal("nil node from view")
	}
	h := v.And(vars[0], vars[1])
	h2 := m2And(m, vars[0], vars[1])
	if h != h2 {
		t.Fatal("view rebuilt a function that exists in the frozen base as a different node")
	}
}

// m2And reads the pre-freeze conjunction out of the frozen manager's memo
// via a throwaway view (the manager itself panics on Ite post-freeze).
func m2And(m *Manager, a, b *Node) *Node {
	return m.NewView().And(a, b)
}

func TestNewViewRequiresFrozen(t *testing.T) {
	m, _ := buildManager(2)
	defer func() {
		if recover() == nil {
			t.Fatal("NewView on unfrozen manager did not panic")
		}
	}()
	m.NewView()
}

// TestConcurrentViews is the core race test: many goroutines build
// overlapping functions through private views over one frozen manager.
// Run under -race this proves reads of the frozen tables are safe with
// zero locks.
func TestConcurrentViews(t *testing.T) {
	m, vars := buildManager(8)
	// Pre-freeze structure shared by every view.
	base := m.And(vars[0], vars[1], vars[2])
	m.Freeze()

	const workers = 16
	var wg sync.WaitGroup
	results := make([]map[int]bool, workers)
	oks := make([]bool, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := m.NewView()
			f := base
			// Each worker conjoins the same extra literals in a
			// different order; canonicity makes the result identical.
			for i := 0; i < 5; i++ {
				idx := 3 + (w+i)%5
				f = v.And(f, vars[idx])
			}
			f = v.Or(f, v.And(v.Not(vars[0]), vars[7]))
			results[w], oks[w] = v.AnySat(f)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if oks[w] != oks[0] {
			t.Fatalf("worker %d satisfiability %t, worker 0 %t", w, oks[w], oks[0])
		}
		if fmt.Sprint(results[w]) != fmt.Sprint(results[0]) {
			t.Fatalf("worker %d AnySat %v, worker 0 %v", w, results[w], results[0])
		}
	}
}
