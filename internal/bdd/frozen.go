// Frozen managers and copy-on-write views.
//
// A Manager memoizes destructively: every Ite call may insert into the
// unique table and the operation cache, so two goroutines sharing one
// manager race even when they compute logically independent functions.
// RECORD's serving shape makes that expensive — one retarget produces a
// condition universe that thousands of compiles then only *query* — so the
// manager can be frozen once retargeting is done: Freeze marks every table
// read-only (mutation panics with InvariantError), and NewView hands out
// cheap copy-on-write overlays for the residual node construction a
// compile still needs (conjoining word conditions, operand-field cubes).
//
// A View resolves nodes against the frozen base tables first and keeps its
// private inserts in overlay maps, so concurrent views never write shared
// state; reads of the frozen maps are safe because Freeze guarantees no
// further writes.  Canonicity is preserved per view: structurally equal
// functions built through one view are pointer-equal, and any function
// already present in the frozen base resolves to the base node, so results
// are bit-for-bit the ones a serial, unfrozen run would produce (ROBDDs
// are canonical for a fixed variable order).  A View is NOT safe for
// concurrent use itself — it is meant to live for one compilation.
package bdd

import "sort"

// Freeze marks the manager read-only.  Subsequent calls that would create
// nodes, declare variables or write the operation cache panic with an
// InvariantError; read-only queries (Sat, AnySat, Eval, SatCount, Support,
// NodeCount, String) remain valid, and become safe for concurrent use
// because nothing writes anymore.  Freeze is idempotent.
func (m *Manager) Freeze() { m.frozen = true }

// Frozen reports whether Freeze was called.
func (m *Manager) Frozen() bool { return m.frozen }

// View is a copy-on-write overlay over a frozen Manager: node construction
// reads the frozen unique table and operation cache, and keeps its own
// inserts privately.  Views of the same manager may be used concurrently
// with each other (one goroutine per view).
type View struct {
	base    *Manager
	unique  map[triple]*Node
	iteMemo map[triple]*Node
	nextID  int
}

// NewView returns a fresh copy-on-write overlay.  The manager must be
// frozen first: a live manager could still grow its tables under the view.
func (m *Manager) NewView() *View {
	if !m.frozen {
		panic(InvariantError("bdd: NewView on unfrozen manager (call Freeze first)"))
	}
	return &View{base: m, nextID: len(m.nodes)}
}

// True returns the constant-true node of the underlying manager.
func (v *View) True() *Node { return v.base.trueN }

// False returns the constant-false node of the underlying manager.
func (v *View) False() *Node { return v.base.falseN }

// mk is Manager.mk against base-then-overlay tables.  Overlay node ids
// start past the frozen table so memo keys never collide with base ids.
func (v *View) mk(va int, lo, hi *Node) *Node {
	if lo == hi {
		return lo
	}
	key := triple{va, lo.id, hi.id}
	if n, ok := v.base.unique[key]; ok {
		return n
	}
	if n, ok := v.unique[key]; ok {
		return n
	}
	if v.unique == nil {
		v.unique = make(map[triple]*Node)
	}
	n := &Node{Var: va, Low: lo, High: hi, id: v.nextID}
	v.nextID++
	v.unique[key] = n
	return n
}

// Ite computes if-then-else through the overlay, consulting the frozen
// operation cache read-only and memoizing privately.
func (v *View) Ite(f, g, h *Node) *Node {
	m := v.base
	switch {
	case f == m.trueN:
		return g
	case f == m.falseN:
		return h
	case g == h:
		return g
	case g == m.trueN && h == m.falseN:
		return f
	}
	key := triple{f.id, g.id, h.id}
	if r, ok := m.iteMemo[key]; ok {
		return r
	}
	if r, ok := v.iteMemo[key]; ok {
		return r
	}
	vv := topVar(f, g, h)
	f0, f1 := m.cofactors(f, vv)
	g0, g1 := m.cofactors(g, vv)
	h0, h1 := m.cofactors(h, vv)
	lo := v.Ite(f0, g0, h0)
	hi := v.Ite(f1, g1, h1)
	r := v.mk(vv, lo, hi)
	if v.iteMemo == nil {
		v.iteMemo = make(map[triple]*Node)
	}
	v.iteMemo[key] = r
	return r
}

// And returns the conjunction of its arguments (true for zero arguments).
func (v *View) And(ns ...*Node) *Node {
	r := v.base.trueN
	for _, n := range ns {
		r = v.Ite(r, n, v.base.falseN)
		if r == v.base.falseN {
			return r
		}
	}
	return r
}

// Or returns the disjunction of its arguments (false for zero arguments).
func (v *View) Or(ns ...*Node) *Node {
	r := v.base.falseN
	for _, n := range ns {
		r = v.Ite(n, v.base.trueN, r)
		if r == v.base.trueN {
			return r
		}
	}
	return r
}

// Not returns the complement of f.
func (v *View) Not(f *Node) *Node { return v.Ite(f, v.base.falseN, v.base.trueN) }

// Cube builds the conjunction of literals given as variable→value, exactly
// as Manager.Cube but through the overlay.
func (v *View) Cube(assign map[int]bool) *Node {
	vars := make([]int, 0, len(assign))
	for va := range assign {
		vars = append(vars, va)
	}
	sort.Ints(vars)
	r := v.base.trueN
	for i := len(vars) - 1; i >= 0; i-- {
		va := vars[i]
		if assign[va] {
			r = v.mk(va, v.base.falseN, r)
		} else {
			r = v.mk(va, r, v.base.falseN)
		}
	}
	return r
}

// CubeLits builds the conjunction of the given literals through the
// overlay; lits must be sorted by Var ascending with no duplicates (see
// Manager.CubeLits).
func (v *View) CubeLits(lits []Lit) *Node {
	r := v.base.trueN
	for i := len(lits) - 1; i >= 0; i-- {
		l := lits[i]
		if l.Val {
			r = v.mk(l.Var, v.base.falseN, r)
		} else {
			r = v.mk(l.Var, r, v.base.falseN)
		}
	}
	return r
}

// AnySat returns one satisfying assignment of f (which may contain overlay
// nodes); semantics match Manager.AnySat.
func (v *View) AnySat(f *Node) (map[int]bool, bool) { return v.base.AnySat(f) }

// AnySatWalk visits one satisfying assignment of f without allocating;
// semantics match Manager.AnySatWalk.
func (v *View) AnySatWalk(f *Node, fn func(va int, val bool)) bool {
	return v.base.AnySatWalk(f, fn)
}

// OverlaySize returns the number of private nodes this view has created —
// the memory it retains beyond the frozen base.  Session pools use it to
// decide when a recycled view has grown too large to be worth keeping.
func (v *View) OverlaySize() int { return len(v.unique) }

// Sat reports whether f is satisfiable.
func (v *View) Sat(f *Node) bool { return f != v.base.falseN }
