package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	m := New()
	if m.True() == m.False() {
		t.Fatal("True and False must differ")
	}
	if !m.True().IsLeaf() || !m.False().IsLeaf() {
		t.Fatal("constants must be leaves")
	}
	if m.Const(true) != m.True() || m.Const(false) != m.False() {
		t.Fatal("Const mapping wrong")
	}
}

func TestVarBasics(t *testing.T) {
	m := New()
	x := m.Var(0)
	if x.IsLeaf() || x.Var != 0 {
		t.Fatalf("Var(0) malformed: %+v", x)
	}
	if x.Low != m.False() || x.High != m.True() {
		t.Fatal("Var(0) cofactors wrong")
	}
	if m.Var(0) != x {
		t.Fatal("hash-consing failed: Var(0) not canonical")
	}
	nx := m.NVar(0)
	if nx != m.Not(x) {
		t.Fatal("NVar must equal Not(Var)")
	}
}

func TestDeclareVar(t *testing.T) {
	m := New()
	a := m.DeclareVar("ir0")
	b := m.DeclareVar("ir1")
	if a != 0 || b != 1 {
		t.Fatalf("declaration order broken: %d %d", a, b)
	}
	if m.DeclareVar("ir0") != 0 {
		t.Fatal("re-declaration must return existing index")
	}
	if m.VarByName("ir1") != 1 || m.VarByName("nope") != -1 {
		t.Fatal("VarByName lookup wrong")
	}
	if m.VarName(0) != "ir0" {
		t.Fatalf("VarName(0) = %q", m.VarName(0))
	}
	if m.NumVars() != 2 {
		t.Fatalf("NumVars = %d", m.NumVars())
	}
}

func TestBasicAlgebra(t *testing.T) {
	m := New()
	x, y := m.Var(0), m.Var(1)
	if m.And(x, m.Not(x)) != m.False() {
		t.Error("x & !x != 0")
	}
	if m.Or(x, m.Not(x)) != m.True() {
		t.Error("x | !x != 1")
	}
	if m.And(x, y) != m.And(y, x) {
		t.Error("And not commutative")
	}
	if m.Or(x, y) != m.Or(y, x) {
		t.Error("Or not commutative")
	}
	if m.Xor(x, x) != m.False() {
		t.Error("x ^ x != 0")
	}
	if m.Xnor(x, y) != m.Not(m.Xor(x, y)) {
		t.Error("Xnor != !Xor")
	}
	if m.Implies(x, y) != m.Or(m.Not(x), y) {
		t.Error("Implies wrong")
	}
	if m.And() != m.True() || m.Or() != m.False() {
		t.Error("empty And/Or identities wrong")
	}
}

func TestDeMorgan(t *testing.T) {
	m := New()
	x, y, z := m.Var(0), m.Var(1), m.Var(2)
	lhs := m.Not(m.And(x, y, z))
	rhs := m.Or(m.Not(x), m.Not(y), m.Not(z))
	if lhs != rhs {
		t.Error("De Morgan (3-ary) violated")
	}
}

func TestRestrict(t *testing.T) {
	m := New()
	x, y := m.Var(0), m.Var(1)
	f := m.And(x, y)
	if m.Restrict(f, 0, true) != y {
		t.Error("(x&y)|x=1 should be y")
	}
	if m.Restrict(f, 0, false) != m.False() {
		t.Error("(x&y)|x=0 should be 0")
	}
	if m.Restrict(f, 1, true) != x {
		t.Error("(x&y)|y=1 should be x")
	}
	// Restricting a variable not in the support is the identity.
	if m.Restrict(f, 7, true) != f {
		t.Error("restrict of free variable changed function")
	}
}

func TestExists(t *testing.T) {
	m := New()
	x, y := m.Var(0), m.Var(1)
	f := m.And(x, y)
	if m.Exists(f, 0) != y {
		t.Error("∃x. x&y should be y")
	}
	g := m.Xor(x, y)
	if m.Exists(g, 0) != m.True() {
		t.Error("∃x. x^y should be 1")
	}
	if m.ExistsAll(f, []int{0, 1}) != m.True() {
		t.Error("∃x∃y. x&y should be 1")
	}
}

func TestAnySatAndEval(t *testing.T) {
	m := New()
	x, y, z := m.Var(0), m.Var(1), m.Var(2)
	f := m.And(x, m.Not(y), z)
	a, ok := m.AnySat(f)
	if !ok {
		t.Fatal("satisfiable function reported unsat")
	}
	if !m.Eval(f, a) {
		t.Fatalf("AnySat assignment %v does not satisfy f", a)
	}
	if _, ok := m.AnySat(m.False()); ok {
		t.Error("False reported satisfiable")
	}
	if a, ok := m.AnySat(m.True()); !ok || len(a) != 0 {
		t.Error("True should be satisfiable with empty assignment")
	}
}

func TestSatCount(t *testing.T) {
	m := New()
	x, y, z := m.Var(0), m.Var(1), m.Var(2)
	cases := []struct {
		f    *Node
		want float64
	}{
		{m.True(), 8},
		{m.False(), 0},
		{x, 4},
		{m.And(x, y), 2},
		{m.And(x, y, z), 1},
		{m.Or(x, y), 6},
		{m.Xor(x, y), 4},
		{z, 4},
	}
	for i, c := range cases {
		if got := m.SatCount(c.f, 3); got != c.want {
			t.Errorf("case %d: SatCount = %v, want %v", i, got, c.want)
		}
	}
}

func TestSupport(t *testing.T) {
	m := New()
	x, z := m.Var(0), m.Var(2)
	f := m.And(x, z)
	s := m.Support(f)
	if len(s) != 2 || s[0] != 0 || s[1] != 2 {
		t.Fatalf("Support = %v, want [0 2]", s)
	}
	if len(m.Support(m.True())) != 0 {
		t.Error("constant support must be empty")
	}
}

func TestCube(t *testing.T) {
	m := New()
	f := m.Cube(map[int]bool{0: true, 2: false, 5: true})
	want := m.And(m.Var(0), m.Not(m.Var(2)), m.Var(5))
	if f != want {
		t.Fatal("Cube does not equal literal conjunction")
	}
	if m.Cube(nil) != m.True() {
		t.Error("empty cube must be True")
	}
}

func TestNodeCount(t *testing.T) {
	m := New()
	x, y := m.Var(0), m.Var(1)
	if m.NodeCount(m.True()) != 0 {
		t.Error("terminal node count must be 0")
	}
	if m.NodeCount(x) != 1 {
		t.Error("single-variable node count must be 1")
	}
	f := m.Xor(x, y)
	if m.NodeCount(f) != 3 {
		t.Errorf("xor node count = %d, want 3", m.NodeCount(f))
	}
}

func TestStringRendering(t *testing.T) {
	m := New()
	m.DeclareVar("a")
	m.DeclareVar("b")
	if s := m.String(m.True()); s != "1" {
		t.Errorf("String(True) = %q", s)
	}
	if s := m.String(m.False()); s != "0" {
		t.Errorf("String(False) = %q", s)
	}
	got := m.String(m.And(m.Var(0), m.Var(1)))
	if got != "a&b" {
		t.Errorf("String(a&b) = %q", got)
	}
}

// randomExpr builds a random Boolean function over nvars variables together
// with a reference truth-table evaluator, used for property testing.
type boolFn func(assign uint) bool

func randomExpr(m *Manager, rng *rand.Rand, nvars, depth int) (*Node, boolFn) {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return m.True(), func(uint) bool { return true }
		case 1:
			return m.False(), func(uint) bool { return false }
		default:
			v := rng.Intn(nvars)
			return m.Var(v), func(a uint) bool { return a&(1<<uint(v)) != 0 }
		}
	}
	l, lf := randomExpr(m, rng, nvars, depth-1)
	r, rf := randomExpr(m, rng, nvars, depth-1)
	switch rng.Intn(4) {
	case 0:
		return m.And(l, r), func(a uint) bool { return lf(a) && rf(a) }
	case 1:
		return m.Or(l, r), func(a uint) bool { return lf(a) || rf(a) }
	case 2:
		return m.Xor(l, r), func(a uint) bool { return lf(a) != rf(a) }
	default:
		return m.Not(l), func(a uint) bool { return !lf(a) }
	}
}

// TestPropTruthTable checks that random BDDs agree with a direct truth-table
// evaluation of the same expression on every assignment.
func TestPropTruthTable(t *testing.T) {
	const nvars = 5
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := New()
		f, ref := randomExpr(m, rng, nvars, 4)
		for a := uint(0); a < 1<<nvars; a++ {
			assign := make(map[int]bool)
			for v := 0; v < nvars; v++ {
				assign[v] = a&(1<<uint(v)) != 0
			}
			if m.Eval(f, assign) != ref(a) {
				t.Fatalf("trial %d: BDD disagrees with reference at %05b", trial, a)
			}
		}
	}
}

// TestPropCanonicity: semantically equal random expressions built through
// different operator decompositions must be pointer-equal.
func TestPropCanonicity(t *testing.T) {
	m := New()
	f := func(xv, yv, zv bool) bool {
		x, y, z := m.Const(xv), m.Const(yv), m.Const(zv)
		// Trivial on constants, but exercised symbolically below.
		_ = z
		return m.And(x, y) == m.Not(m.Or(m.Not(x), m.Not(y)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Symbolic canonicity over random functions.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		g, _ := randomExpr(m, rng, 4, 4)
		h, _ := randomExpr(m, rng, 4, 4)
		// (g -> h) == (!g | h) must be pointer-equal.
		if m.Implies(g, h) != m.Or(m.Not(g), h) {
			t.Fatalf("trial %d: implication decomposition not canonical", trial)
		}
		// Double negation.
		if m.Not(m.Not(g)) != g {
			t.Fatalf("trial %d: double negation not identity", trial)
		}
		// Shannon expansion: g == ite(x0, g|x0=1, g|x0=0).
		x0 := m.Var(0)
		if m.Ite(x0, m.Restrict(g, 0, true), m.Restrict(g, 0, false)) != g {
			t.Fatalf("trial %d: Shannon expansion violated", trial)
		}
	}
}

// TestPropSatCountMatchesEnumeration cross-checks SatCount against explicit
// enumeration for random functions.
func TestPropSatCountMatchesEnumeration(t *testing.T) {
	const nvars = 5
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		m := New()
		f, _ := randomExpr(m, rng, nvars, 4)
		count := 0
		for a := uint(0); a < 1<<nvars; a++ {
			assign := make(map[int]bool)
			for v := 0; v < nvars; v++ {
				assign[v] = a&(1<<uint(v)) != 0
			}
			if m.Eval(f, assign) {
				count++
			}
		}
		if got := m.SatCount(f, nvars); got != float64(count) {
			t.Fatalf("trial %d: SatCount = %v, enumeration = %d", trial, got, count)
		}
	}
}

// TestPropAnySatSound: AnySat results always satisfy the function.
func TestPropAnySatSound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		m := New()
		f, _ := randomExpr(m, rng, 6, 5)
		a, ok := m.AnySat(f)
		if ok != m.Sat(f) {
			t.Fatalf("trial %d: AnySat ok=%v but Sat=%v", trial, ok, m.Sat(f))
		}
		if ok && !m.Eval(f, a) {
			t.Fatalf("trial %d: AnySat assignment does not satisfy", trial)
		}
	}
}

// TestPropExistsIsDisjunction: ∃v.f == f|v=0 | f|v=1, and quantifying a
// variable removes it from the support.
func TestPropExistsIsDisjunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		m := New()
		f, _ := randomExpr(m, rng, 4, 4)
		for v := 0; v < 4; v++ {
			q := m.Exists(f, v)
			if q != m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true)) {
				t.Fatalf("trial %d: Exists mismatch for var %d", trial, v)
			}
			for _, s := range m.Support(q) {
				if s == v {
					t.Fatalf("trial %d: var %d still in support after Exists", trial, v)
				}
			}
		}
	}
}

func BenchmarkIteDense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New()
		// n-queens-flavored dense constraint: pairwise xor chain.
		f := m.True()
		for v := 0; v < 16; v++ {
			f = m.And(f, m.Xor(m.Var(v), m.Var((v+1)%16)))
		}
		_ = m.SatCount(f, 16)
	}
}
