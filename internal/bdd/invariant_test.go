package bdd

import (
	"errors"
	"testing"

	"repro/internal/diag"
	"repro/internal/faultpoint"
)

// TestInvariantPanicsAreTyped documents the invariant-only panic contract:
// caller-contract violations panic with InvariantError, never with bare
// strings, so recovery boundaries can attribute them.
func TestInvariantPanicsAreTyped(t *testing.T) {
	m := New()
	for _, fn := range []func(){
		func() { m.Var(-1) },
		func() { m.NVar(-5) },
	} {
		func() {
			defer func() {
				v := recover()
				if _, ok := v.(InvariantError); !ok {
					t.Errorf("panic value %T %v, want InvariantError", v, v)
				}
			}()
			fn()
			t.Error("no panic")
		}()
	}
}

// TestRecoveryBoundary shows the diag.Capture boundary converting an
// invariant panic into an inspectable error instead of a crash.
func TestRecoveryBoundary(t *testing.T) {
	m := New()
	err := diag.Capture(func() error {
		m.Var(-1)
		return nil
	})
	var pe *diag.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := pe.Value.(InvariantError); !ok {
		t.Errorf("recovered %T, want InvariantError", pe.Value)
	}
}

// TestIteFaultpoint verifies the bdd.ite injection site panics with a
// *faultpoint.Fault that the phase boundary can recover.
func TestIteFaultpoint(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Arm("bdd.ite", faultpoint.Action{Kind: faultpoint.KindError})
	m := New()
	a, b := m.Var(0), m.Var(1)
	err := diag.Capture(func() error {
		m.And(a, b)
		return nil
	})
	var pe *diag.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := pe.Value.(*faultpoint.Fault); !ok {
		t.Errorf("recovered %T, want *faultpoint.Fault", pe.Value)
	}
	// Disarmed after one firing: the same operation now succeeds.
	if got := m.And(a, b); got == nil || got == m.False() {
		t.Errorf("And after disarm = %v", got)
	}
}
