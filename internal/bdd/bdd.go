// Package bdd implements reduced ordered binary decision diagrams (ROBDDs).
//
// RECORD models execution conditions of register-transfer templates as
// Boolean functions over instruction-word bits and mode-register bits
// (Leupers/Marwedel, DATE 1997, section 2).  This package provides the
// underlying BDD machinery: a manager with a unique table guaranteeing
// canonicity, the classic ternary ITE operator with memoization, quantifier
// and restriction operations, and satisfiability queries used to prune
// templates with conflicting encodings.
//
// Nodes are immutable and hash-consed: two structurally equal functions are
// represented by the same *Node pointer, so semantic equivalence is pointer
// equality.  All operations on nodes from different managers are invalid.
package bdd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/faultpoint"
	"repro/internal/obs"
)

// InvariantError is the panic value used for caller-contract violations
// (negative variable indices).  These panics are invariant-only: they are
// unreachable from well-formed pipeline input, so they are not converted to
// returned errors; instead every pipeline phase runs under a diag.Capture
// recovery boundary that turns them into Error diagnostics rather than
// driver crashes (see internal/diag and the boundary tests in this
// package's test file).
type InvariantError string

func (e InvariantError) Error() string { return string(e) }

// Node is a vertex of a shared ROBDD.  Leaf nodes are the manager's True
// and False constants.  For internal nodes, Low is the cofactor for
// variable=0 and High for variable=1.
type Node struct {
	Var  int // variable index (level); -1 for terminals
	Low  *Node
	High *Node
	id   int // unique id within the manager, used for cache keys
}

// IsLeaf reports whether n is a terminal (constant) node.
func (n *Node) IsLeaf() bool { return n.Var < 0 }

// Manager owns a universe of BDD nodes over a fixed, growable variable
// order.  The zero value is not usable; call New.
type Manager struct {
	unique  map[triple]*Node
	iteMemo map[triple]*Node
	nodes   []*Node
	names   []string // variable names, index = variable
	byName  map[string]int
	trueN   *Node
	falseN  *Node
	// frozen makes every table read-only: mutation panics, concurrent
	// reads become safe, and NewView hands out copy-on-write overlays.
	frozen bool

	// Optional observability counters (nil-safe, single atomic add on the
	// hot path): nodes allocated by mk, Ite invocations.  Set before the
	// manager is shared; per-template satisfiability cost then shows up
	// in /metrics instead of requiring a profiler.
	nodesAllocated *obs.Counter
	iteOps         *obs.Counter
}

type triple struct{ a, b, c int }

// New creates an empty manager with no variables declared.
func New() *Manager {
	m := &Manager{
		unique:  make(map[triple]*Node),
		iteMemo: make(map[triple]*Node),
		byName:  make(map[string]int),
	}
	m.falseN = &Node{Var: -1, id: 0}
	m.trueN = &Node{Var: -1, id: 1}
	m.nodes = []*Node{m.falseN, m.trueN}
	return m
}

// True returns the constant-true node.
func (m *Manager) True() *Node { return m.trueN }

// False returns the constant-false node.
func (m *Manager) False() *Node { return m.falseN }

// Const returns the constant node for b.
func (m *Manager) Const(b bool) *Node {
	if b {
		return m.trueN
	}
	return m.falseN
}

// NumVars returns the number of declared variables.
func (m *Manager) NumVars() int { return len(m.names) }

// VarName returns the declared name of variable v.
func (m *Manager) VarName(v int) string {
	if v >= 0 && v < len(m.names) {
		return m.names[v]
	}
	return fmt.Sprintf("x%d", v)
}

// DeclareVar declares (or retrieves) a named variable and returns its index.
// Variable order is declaration order.
func (m *Manager) DeclareVar(name string) int {
	if v, ok := m.byName[name]; ok {
		return v
	}
	if m.frozen {
		panic(InvariantError("bdd: DeclareVar on frozen manager"))
	}
	v := len(m.names)
	m.names = append(m.names, name)
	m.byName[name] = v
	return v
}

// VarByName returns the index of a declared variable, or -1.
func (m *Manager) VarByName(name string) int {
	if v, ok := m.byName[name]; ok {
		return v
	}
	return -1
}

// Var returns the BDD for the single variable v, declaring anonymous
// variables as needed so that v is in range.
func (m *Manager) Var(v int) *Node {
	if v < 0 {
		panic(InvariantError("bdd: negative variable index"))
	}
	for len(m.names) <= v {
		m.DeclareVar(fmt.Sprintf("x%d", len(m.names)))
	}
	return m.mk(v, m.falseN, m.trueN)
}

// NVar returns the BDD for the negation of variable v.
func (m *Manager) NVar(v int) *Node {
	if v < 0 {
		panic(InvariantError("bdd: negative variable index"))
	}
	for len(m.names) <= v {
		m.DeclareVar(fmt.Sprintf("x%d", len(m.names)))
	}
	return m.mk(v, m.trueN, m.falseN)
}

// mk returns the canonical node (v, lo, hi), applying the reduction rule.
func (m *Manager) mk(v int, lo, hi *Node) *Node {
	if lo == hi {
		return lo
	}
	key := triple{v, lo.id, hi.id}
	if n, ok := m.unique[key]; ok {
		return n
	}
	if m.frozen {
		panic(InvariantError("bdd: node creation on frozen manager (use a View)"))
	}
	n := &Node{Var: v, Low: lo, High: hi, id: len(m.nodes)}
	m.nodes = append(m.nodes, n)
	m.unique[key] = n
	m.nodesAllocated.Inc()
	return n
}

// Instrument wires observability counters into the manager's hot paths:
// nodesAllocated counts canonical nodes created by mk, iteOps counts Ite
// calls (the unit of BDD work).  Either may be nil.  Call before sharing
// the manager; the counters themselves are atomic, so instrumented
// managers stay safe under frozen-target parallel compilation.
func (m *Manager) Instrument(nodesAllocated, iteOps *obs.Counter) {
	m.nodesAllocated = nodesAllocated
	m.iteOps = iteOps
}

// Size returns the total number of nodes ever created in the manager
// (including the two terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Ite computes if-then-else: f·g + ¬f·h.  All binary operations are
// expressed through Ite, sharing one memo table.
func (m *Manager) Ite(f, g, h *Node) *Node {
	if err := faultpoint.Hit("bdd.ite", ""); err != nil {
		panic(err) // Ite cannot return errors; the phase boundary recovers.
	}
	m.iteOps.Inc()
	// Terminal cases.
	switch {
	case f == m.trueN:
		return g
	case f == m.falseN:
		return h
	case g == h:
		return g
	case g == m.trueN && h == m.falseN:
		return f
	}
	key := triple{f.id, g.id, h.id}
	if r, ok := m.iteMemo[key]; ok {
		return r
	}
	if m.frozen {
		// Even a cache-miss recomputation would write the memo table and
		// race concurrent readers; residual operations go through a View.
		panic(InvariantError("bdd: Ite on frozen manager (use a View)"))
	}
	v := topVar(f, g, h)
	f0, f1 := m.cofactors(f, v)
	g0, g1 := m.cofactors(g, v)
	h0, h1 := m.cofactors(h, v)
	lo := m.Ite(f0, g0, h0)
	hi := m.Ite(f1, g1, h1)
	r := m.mk(v, lo, hi)
	m.iteMemo[key] = r
	return r
}

func topVar(ns ...*Node) int {
	v := int(^uint(0) >> 1) // max int
	for _, n := range ns {
		if !n.IsLeaf() && n.Var < v {
			v = n.Var
		}
	}
	return v
}

func (m *Manager) cofactors(n *Node, v int) (lo, hi *Node) {
	if n.IsLeaf() || n.Var != v {
		return n, n
	}
	return n.Low, n.High
}

// And returns the conjunction of its arguments (true for zero arguments).
func (m *Manager) And(ns ...*Node) *Node {
	r := m.trueN
	for _, n := range ns {
		r = m.Ite(r, n, m.falseN)
		if r == m.falseN {
			return r
		}
	}
	return r
}

// Or returns the disjunction of its arguments (false for zero arguments).
func (m *Manager) Or(ns ...*Node) *Node {
	r := m.falseN
	for _, n := range ns {
		r = m.Ite(n, m.trueN, r)
		if r == m.trueN {
			return r
		}
	}
	return r
}

// Not returns the complement of f.
func (m *Manager) Not(f *Node) *Node { return m.Ite(f, m.falseN, m.trueN) }

// Xor returns the exclusive-or of f and g.
func (m *Manager) Xor(f, g *Node) *Node { return m.Ite(f, m.Not(g), g) }

// Xnor returns the complement of Xor(f, g), i.e. Boolean equality.
func (m *Manager) Xnor(f, g *Node) *Node { return m.Ite(f, g, m.Not(g)) }

// Implies returns ¬f + g.
func (m *Manager) Implies(f, g *Node) *Node { return m.Ite(f, g, m.trueN) }

// Restrict fixes variable v to the given value in f.
func (m *Manager) Restrict(f *Node, v int, value bool) *Node {
	if f.IsLeaf() || f.Var > v {
		return f
	}
	if f.Var == v {
		if value {
			return f.High
		}
		return f.Low
	}
	return m.mk(f.Var, m.Restrict(f.Low, v, value), m.Restrict(f.High, v, value))
}

// Exists existentially quantifies variable v out of f.
func (m *Manager) Exists(f *Node, v int) *Node {
	return m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// ExistsAll existentially quantifies every variable in vs out of f.
func (m *Manager) ExistsAll(f *Node, vs []int) *Node {
	for _, v := range vs {
		f = m.Exists(f, v)
	}
	return f
}

// Sat reports whether f is satisfiable.
func (m *Manager) Sat(f *Node) bool { return f != m.falseN }

// Tautology reports whether f is constant true.
func (m *Manager) Tautology(f *Node) bool { return f == m.trueN }

// AnySat returns one satisfying assignment of f as a map from variable to
// value.  Variables not in the map are don't-cares.  ok is false when f is
// unsatisfiable.
func (m *Manager) AnySat(f *Node) (assign map[int]bool, ok bool) {
	if f == m.falseN {
		return nil, false
	}
	assign = make(map[int]bool)
	for !f.IsLeaf() {
		if f.Low != m.falseN {
			assign[f.Var] = false
			f = f.Low
		} else {
			assign[f.Var] = true
			f = f.High
		}
	}
	return assign, true
}

// Eval evaluates f under a total assignment (missing variables read false).
func (m *Manager) Eval(f *Node, assign map[int]bool) bool {
	for !f.IsLeaf() {
		if assign[f.Var] {
			f = f.High
		} else {
			f = f.Low
		}
	}
	return f == m.trueN
}

// SatCount returns the number of satisfying assignments of f over the first
// nvars variables (nvars must be at least the index of every variable in f,
// plus one).  The result is a float64 because counts grow as 2^nvars.
func (m *Manager) SatCount(f *Node, nvars int) float64 {
	memo := make(map[int]float64)
	var count func(n *Node) float64 // over variables n.Var..nvars-1
	count = func(n *Node) float64 {
		if n == m.falseN {
			return 0
		}
		if n == m.trueN {
			return 1
		}
		if c, ok := memo[n.id]; ok {
			return c
		}
		c := count(n.Low)*pow2(gap(n, n.Low, nvars)) +
			count(n.High)*pow2(gap(n, n.High, nvars))
		memo[n.id] = c
		return c
	}
	if f.IsLeaf() {
		if f == m.trueN {
			return pow2(nvars)
		}
		return 0
	}
	return count(f) * pow2(f.Var)
}

// gap returns the number of skipped variable levels between parent n and
// child c, counting toward nvars for terminals.
func gap(n, c *Node, nvars int) int {
	if c.IsLeaf() {
		return nvars - n.Var - 1
	}
	return c.Var - n.Var - 1
}

func pow2(k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= 2
	}
	return r
}

// Support returns the sorted set of variables f depends on.
func (m *Manager) Support(f *Node) []int {
	seen := make(map[int]bool)
	visited := make(map[int]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() || visited[n.id] {
			return
		}
		visited[n.id] = true
		seen[n.Var] = true
		walk(n.Low)
		walk(n.High)
	}
	walk(f)
	vars := make([]int, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	return vars
}

// NodeCount returns the number of distinct internal nodes reachable from f.
func (m *Manager) NodeCount(f *Node) int {
	visited := make(map[int]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() || visited[n.id] {
			return
		}
		visited[n.id] = true
		walk(n.Low)
		walk(n.High)
	}
	walk(f)
	return len(visited)
}

// Cube builds the conjunction of literals given as variable→value.
func (m *Manager) Cube(assign map[int]bool) *Node {
	vars := make([]int, 0, len(assign))
	for v := range assign {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	r := m.trueN
	// Build bottom-up for linear-size construction.
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		if assign[v] {
			r = m.mk(v, m.falseN, r)
		} else {
			r = m.mk(v, r, m.falseN)
		}
	}
	return r
}

// Lit is one literal of a cube: variable Var with value Val.  Slices of
// literals replace map[int]bool on hot paths so one scratch slice can be
// reused across many cube constructions.
type Lit struct {
	Var int
	Val bool
}

// CubeLits builds the conjunction of the given literals.  lits must be
// sorted by Var ascending with no duplicate variables; unlike Cube this
// allocates nothing beyond the canonical nodes themselves.
func (m *Manager) CubeLits(lits []Lit) *Node {
	r := m.trueN
	// Build bottom-up for linear-size construction.
	for i := len(lits) - 1; i >= 0; i-- {
		l := lits[i]
		if l.Val {
			r = m.mk(l.Var, m.falseN, r)
		} else {
			r = m.mk(l.Var, r, m.falseN)
		}
	}
	return r
}

// AnySatWalk visits one satisfying assignment of f literal by literal
// (variables absent from the path are don't-cares), avoiding the map
// allocation of AnySat.  It reports whether f is satisfiable; fn is never
// called when it is not.
func (m *Manager) AnySatWalk(f *Node, fn func(v int, val bool)) bool {
	if f == m.falseN {
		return false
	}
	for !f.IsLeaf() {
		if f.Low != m.falseN {
			fn(f.Var, false)
			f = f.Low
		} else {
			fn(f.Var, true)
			f = f.High
		}
	}
	return true
}

// String renders f as a sum of cubes over variable names (for diagnostics;
// exponential in the worst case, so callers should keep f small).
func (m *Manager) String(f *Node) string {
	switch f {
	case m.trueN:
		return "1"
	case m.falseN:
		return "0"
	}
	var cubes []string
	lits := make([]string, 0, 8)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == m.falseN {
			return
		}
		if n == m.trueN {
			if len(lits) == 0 {
				cubes = append(cubes, "1")
			} else {
				cubes = append(cubes, strings.Join(lits, "&"))
			}
			return
		}
		lits = append(lits, "!"+m.VarName(n.Var))
		walk(n.Low)
		lits = lits[:len(lits)-1]
		lits = append(lits, m.VarName(n.Var))
		walk(n.High)
		lits = lits[:len(lits)-1]
	}
	walk(f)
	return strings.Join(cubes, " | ")
}
