// Package tracefuse merges per-process span dumps from a recordd fleet
// into one cross-process Chrome trace.
//
// Each recordd node serves its bounded span ring at GET /v1/debug/spans
// (obs.SpanDump): span timestamps are offsets from that node's tracer
// base, and the bases are different wall clocks that disagree by
// whatever skew the machines have.  Fusion joins the dumps by trace ID
// and estimates per-node clock adjustments from request/response span
// pairs — a child span recorded on node B under a parent recorded on
// node A ran *inside* the parent's window, so the midpoints of the two
// spans should coincide; the average midpoint difference over all such
// pairs estimates A→B skew.  Adjustments propagate breadth-first from
// the first node, so any fleet connected by at least one cross-node
// trace aligns onto a single timeline.
//
// The output is Chrome trace_event JSON with one pid lane per node
// (process_name metadata carries the node identity), loadable in
// chrome://tracing or Perfetto.
package tracefuse

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/obs"
)

// Fetch collects the span dump of every endpoint's /v1/debug/spans.
// Endpoint order is preserved: it determines the pid lane numbering.
func Fetch(ctx context.Context, client *http.Client, endpoints []string) ([]obs.SpanDump, error) {
	if client == nil {
		client = http.DefaultClient
	}
	dumps := make([]obs.SpanDump, 0, len(endpoints))
	for _, ep := range endpoints {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep+"/v1/debug/spans", nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("tracefuse: %s: %w", ep, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("tracefuse: %s: status %d", ep, resp.StatusCode)
		}
		var d obs.SpanDump
		err = json.NewDecoder(resp.Body).Decode(&d)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("tracefuse: %s: %w", ep, err)
		}
		dumps = append(dumps, d)
	}
	return dumps, nil
}

// Options tunes a fusion.
type Options struct {
	// Trace, when set, keeps only spans of that trace ID (hex).
	Trace string
}

// Fused is a merged multi-node trace ready to serialize.
type Fused struct {
	// Nodes maps pid lane (index+1) to node identity.
	Nodes []string
	// AdjustNS is the per-node clock adjustment applied, in nanoseconds
	// (node 0 is the reference and always 0).
	AdjustNS []int64
	events   []chromeEvent
}

// chromeEvent is one trace_event entry; ph "X" for spans, "M" for the
// process_name metadata naming each pid lane.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   int64                  `json:"ts,omitempty"` // µs on the fused timeline
	Dur  int64                  `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// fusedSpan is one span placed on the shared wall-clock timeline.
type fusedSpan struct {
	node int // dump index
	rec  obs.SpanRecord
	abs  int64 // adjusted absolute start, ns
}

// midAbs is a span's unadjusted absolute midpoint on its own node's
// clock, the quantity skew estimation compares across nodes.
func midAbs(base int64, rec obs.SpanRecord) int64 {
	return base + rec.StartUS*1000 + rec.DurUS*500
}

// Fuse joins dumps into one timeline.  It errors when no spans survive
// filtering — a trace ID that appears nowhere is a harness failure, not
// an empty trace.
func Fuse(dumps []obs.SpanDump, opts Options) (*Fused, error) {
	if len(dumps) == 0 {
		return nil, fmt.Errorf("tracefuse: no dumps")
	}

	// Index every span by ID for cross-node parent resolution.  IDs are
	// 64-bit random, so collisions across rings are negligible.
	type spanAt struct {
		node int
		rec  obs.SpanRecord
	}
	byID := make(map[string]spanAt)
	for ni, d := range dumps {
		for _, rec := range d.Spans {
			byID[rec.Span] = spanAt{node: ni, rec: rec}
		}
	}

	// Skew samples per directed node pair, from cross-node parent links.
	type pair struct{ parent, child int }
	samples := make(map[pair][]int64)
	for ni, d := range dumps {
		for _, rec := range d.Spans {
			if rec.Parent == "" {
				continue
			}
			p, ok := byID[rec.Parent]
			if !ok || p.node == ni {
				continue
			}
			s := midAbs(dumps[p.node].BaseUnixNS, p.rec) - midAbs(d.BaseUnixNS, rec)
			samples[pair{parent: p.node, child: ni}] = append(samples[pair{parent: p.node, child: ni}], s)
		}
	}
	// Undirected mean offset per node pair: offset[i][j] is what to add
	// to node j's clock to land on node i's, averaged over samples in
	// both directions.
	offsets := make(map[pair]int64)
	counts := make(map[pair]int)
	for pr, ss := range samples {
		for _, s := range ss {
			offsets[pr] += s
			counts[pr]++
			rev := pair{parent: pr.child, child: pr.parent}
			offsets[rev] -= s
			counts[rev]++
		}
	}

	// BFS the adjustment out from node 0; disconnected nodes keep 0
	// (nothing to align them by).
	adjust := make([]int64, len(dumps))
	visited := make([]bool, len(dumps))
	queue := []int{0}
	visited[0] = true
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for j := range dumps {
			if visited[j] {
				continue
			}
			pr := pair{parent: i, child: j}
			if counts[pr] == 0 {
				continue
			}
			adjust[j] = adjust[i] + offsets[pr]/int64(counts[pr])
			visited[j] = true
			queue = append(queue, j)
		}
	}

	var spans []fusedSpan
	for ni, d := range dumps {
		for _, rec := range d.Spans {
			if opts.Trace != "" && rec.Trace != opts.Trace {
				continue
			}
			spans = append(spans, fusedSpan{
				node: ni,
				rec:  rec,
				abs:  d.BaseUnixNS + rec.StartUS*1000 + adjust[ni],
			})
		}
	}
	if len(spans) == 0 {
		if opts.Trace != "" {
			return nil, fmt.Errorf("tracefuse: no spans for trace %s", opts.Trace)
		}
		return nil, fmt.Errorf("tracefuse: no spans in any dump")
	}

	// The fused timeline starts at the earliest adjusted span.
	origin := spans[0].abs
	for _, s := range spans {
		if s.abs < origin {
			origin = s.abs
		}
	}

	f := &Fused{AdjustNS: adjust}
	lanes := make(map[int]bool)
	for _, s := range spans {
		lanes[s.node] = true
	}
	for ni, d := range dumps {
		f.Nodes = append(f.Nodes, d.Node)
		if !lanes[ni] {
			continue
		}
		f.events = append(f.events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: ni + 1,
			Args: map[string]interface{}{"name": d.Node},
		})
	}
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].abs != spans[b].abs {
			return spans[a].abs < spans[b].abs
		}
		if spans[a].node != spans[b].node {
			return spans[a].node < spans[b].node
		}
		return spans[a].rec.Seq < spans[b].rec.Seq
	})
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.rec.Name, Ph: "X",
			Ts:  (s.abs - origin) / 1000,
			Dur: s.rec.DurUS,
			Pid: s.node + 1, Tid: s.rec.Tid,
		}
		ev.Args = map[string]interface{}{"trace": s.rec.Trace}
		for k, v := range s.rec.Attrs {
			ev.Args[k] = v
		}
		f.events = append(f.events, ev)
	}
	return f, nil
}

// WriteChrome serializes the fused trace as Chrome trace_event JSON.
func (f *Fused) WriteChrome(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{TraceEvents: f.events, DisplayTimeUnit: "ms"})
}
