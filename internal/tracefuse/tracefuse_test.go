package tracefuse

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// twoNodeDumps builds a client dump and a server dump whose clocks
// disagree by skewNS: the server span physically ran inside the client
// request span, but the server's base clock is skewNS fast.
func twoNodeDumps(skewNS int64) []obs.SpanDump {
	const base = int64(1_700_000_000_000_000_000)
	client := obs.SpanDump{
		Node:       "client",
		BaseUnixNS: base,
		Spans: []obs.SpanRecord{
			{Name: "record.run", Trace: "t1", Span: "c1", Tid: 1, Seq: 0,
				StartUS: 0, DurUS: 10_000, Ended: true},
			{Name: "rclient.request", Trace: "t1", Span: "c2", Parent: "c1",
				Tid: 1, Seq: 1, StartUS: 1_000, DurUS: 8_000, Ended: true},
		},
	}
	// On true time, the server span runs at [2ms, 8ms] — inside the
	// request leg [1ms, 9ms].  On the server's skewed clock everything
	// reads skewNS later.
	server := obs.SpanDump{
		Node:       "owner",
		BaseUnixNS: base + skewNS,
		Spans: []obs.SpanRecord{
			{Name: "recordd.compile", Trace: "t1", Span: "s1", Parent: "c2",
				Tid: 1, Seq: 0, StartUS: 2_000, DurUS: 6_000, Ended: true},
		},
	}
	return []obs.SpanDump{client, server}
}

func TestFuseAlignsSkewedClocks(t *testing.T) {
	const skew = int64(250_000_000) // server clock 250ms fast
	f, err := Fuse(twoNodeDumps(skew), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.AdjustNS[0] != 0 {
		t.Fatalf("reference node adjusted by %d", f.AdjustNS[0])
	}
	// Span midpoints coincide on true time, so the estimated adjustment
	// recovers the skew exactly.
	if f.AdjustNS[1] != -skew {
		t.Fatalf("adjust[1] = %d, want %d", f.AdjustNS[1], -skew)
	}

	var buf bytes.Buffer
	if err := f.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   int64                  `json:"ts"`
			Pid  int                    `json:"pid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	byName := map[string]int64{}
	pids := map[int]bool{}
	names := 0
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			names++
			continue
		}
		byName[ev.Name] = ev.Ts
		pids[ev.Pid] = true
	}
	if names != 2 {
		t.Fatalf("process_name lanes = %d, want 2", names)
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("pid lanes = %v, want 1 and 2", pids)
	}
	// After adjustment the server span lands inside the request leg on
	// the shared timeline: run@0, request@1000, compile@2000 µs.
	if byName["record.run"] != 0 || byName["rclient.request"] != 1000 || byName["recordd.compile"] != 2000 {
		t.Fatalf("fused timeline wrong: %v", byName)
	}
}

func TestFuseTraceFilter(t *testing.T) {
	dumps := twoNodeDumps(0)
	dumps[0].Spans = append(dumps[0].Spans, obs.SpanRecord{
		Name: "other", Trace: "t2", Span: "x1", Tid: 2, Seq: 2, Ended: true,
	})
	f, err := Fuse(dumps, Options{Trace: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range f.events {
		if ev.Ph == "X" && ev.Args["trace"] != "t1" {
			t.Fatalf("foreign trace survived the filter: %+v", ev)
		}
	}
	if _, err := Fuse(dumps, Options{Trace: "absent"}); err == nil {
		t.Fatal("fusing an absent trace did not error")
	}
}

func TestFetch(t *testing.T) {
	dump := obs.SpanDump{Node: "n1", BaseUnixNS: 42, Spans: []obs.SpanRecord{}}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/debug/spans" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(dump)
	}))
	defer srv.Close()

	dumps, err := Fetch(t.Context(), nil, []string{srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 || dumps[0].Node != "n1" || dumps[0].BaseUnixNS != 42 {
		t.Fatalf("fetched %+v", dumps)
	}
	if _, err := Fetch(t.Context(), nil, []string{srv.URL + "/nope"}); err == nil ||
		!strings.Contains(err.Error(), "status") {
		t.Fatalf("bad endpoint error = %v", err)
	}
}
