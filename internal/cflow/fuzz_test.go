package cflow_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cflow"
	"repro/internal/ir"
	"repro/internal/rtl"
)

// randomCFProgram generates a structured random program with nested
// if/while over a few scalars, with loops guaranteed to terminate (each
// while decrements a dedicated counter).
func randomCFProgram(rng *rand.Rand) *ir.Program {
	scalars := []string{"v0", "v1", "v2"}
	p := &ir.Program{}
	for i, s := range scalars {
		p.Decls = append(p.Decls, &ir.Decl{Name: s,
			Init: []int64{int64(rng.Intn(50) + i)}})
	}
	counters := 0

	ops := []rtl.Op{rtl.OpAdd, rtl.OpSub, rtl.OpAnd, rtl.OpOr, rtl.OpXor}
	rels := []rtl.Op{rtl.OpLt, rtl.OpLe, rtl.OpEq, rtl.OpNe, rtl.OpGt, rtl.OpGe}

	var genExpr func(depth int) ir.Expr
	genExpr = func(depth int) ir.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(3) == 0 {
				return &ir.Const{Val: int64(rng.Intn(64) - 32)}
			}
			return &ir.Ref{Name: scalars[rng.Intn(len(scalars))]}
		}
		return &ir.Bin{Op: ops[rng.Intn(len(ops))],
			X: genExpr(depth - 1), Y: genExpr(depth - 1)}
	}
	genCond := func() ir.Expr {
		return &ir.Bin{Op: rels[rng.Intn(len(rels))],
			X: &ir.Ref{Name: scalars[rng.Intn(len(scalars))]},
			Y: &ir.Const{Val: int64(rng.Intn(40))}}
	}

	var genStmts func(depth, n int) []ir.Stmt
	genStmts = func(depth, n int) []ir.Stmt {
		var out []ir.Stmt
		for i := 0; i < n; i++ {
			switch {
			case depth > 0 && rng.Intn(4) == 0:
				st := &ir.If{Cond: genCond(), Then: genStmts(depth-1, 1+rng.Intn(2))}
				if rng.Intn(2) == 0 {
					st.Else = genStmts(depth-1, 1+rng.Intn(2))
				}
				out = append(out, st)
			case depth > 0 && rng.Intn(5) == 0:
				// Bounded loop via a fresh counter.
				cname := fmt.Sprintf("c%d", counters)
				counters++
				p.Decls = append(p.Decls, &ir.Decl{Name: cname,
					Init: []int64{int64(rng.Intn(5) + 1)}})
				body := genStmts(depth-1, 1+rng.Intn(2))
				body = append(body, &ir.Assign{LHS: &ir.Ref{Name: cname},
					RHS: &ir.Bin{Op: rtl.OpSub,
						X: &ir.Ref{Name: cname}, Y: &ir.Const{Val: 1}}})
				out = append(out, &ir.While{
					Cond: &ir.Bin{Op: rtl.OpGt,
						X: &ir.Ref{Name: cname}, Y: &ir.Const{Val: 0}},
					Body: body,
				})
			default:
				out = append(out, &ir.Assign{
					LHS: &ir.Ref{Name: scalars[rng.Intn(len(scalars))]},
					RHS: genExpr(2),
				})
			}
		}
		return out
	}
	p.Body = genStmts(2, 2+rng.Intn(4))
	return p
}

// TestPropRandomControlFlow fuzzes the whole branch pipeline: random
// structured programs compile for the brancher and the simulated execution
// matches the CFG interpreter.
func TestPropRandomControlFlow(t *testing.T) {
	target := brancher(t)
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 80; trial++ {
		p := randomCFProgram(rng)
		res, err := cflow.Compile(target, p, cflow.Options{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		if err := cflow.CheckAgainstOracle(target, res, cflow.Options{}); err != nil {
			t.Fatalf("trial %d: %v\nblocks=%d words=%d\n%s",
				trial, err, len(res.CFG.Blocks), res.Code.Len(),
				target.Encoder.Listing(res.Code))
		}
	}
}

// TestPropRandomControlFlowNoCompaction isolates per-block compaction.
func TestPropRandomControlFlowNoCompaction(t *testing.T) {
	target := brancher(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		p := randomCFProgram(rng)
		res, err := cflow.Compile(target, p, cflow.Options{NoCompaction: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := cflow.CheckAgainstOracle(target, res, cflow.Options{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
