package cflow_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/cflow"
	"repro/internal/cfront"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/models"
)

var (
	once sync.Once
	tg   *core.Target
	tgE  error
)

func brancher(t *testing.T) *core.Target {
	t.Helper()
	once.Do(func() {
		tg, tgE = core.RetargetContext(context.Background(), models.BrancherMDL, core.RetargetOptions{})
	})
	if tgE != nil {
		t.Fatal(tgE)
	}
	return tg
}

// compileRun compiles a control-flow program, runs it on the netlist
// simulator, checks the CFG oracle, and returns the environment.
func compileRun(t *testing.T, src string) (ir.Env, *cflow.Result) {
	t.Helper()
	target := brancher(t)
	prog, err := cfront.Parse(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	res, err := cflow.Compile(target, prog, cflow.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := cflow.CheckAgainstOracle(target, res, cflow.Options{}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	env, err := cflow.Execute(target, res, cflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return env, res
}

func TestJumpTemplatesExtracted(t *testing.T) {
	target := brancher(t)
	seenUncond, seenCond := false, false
	for _, tpl := range target.Base.Templates {
		if tpl.Dest != "pc.r" {
			continue
		}
		s := tpl.String()
		if strings.Contains(s, "IW[7:0]") {
			if len(tpl.Cond.Dynamic) == 0 {
				seenUncond = true
			} else {
				seenCond = true
			}
		}
	}
	if !seenUncond || !seenCond {
		t.Fatalf("jump templates missing: uncond=%v cond=%v", seenUncond, seenCond)
	}
}

func TestIfTaken(t *testing.T) {
	env, _ := compileRun(t, `
int a = 5; int b = 3; int x;
void main() {
  x = 0;
  if (a > b) { x = 1; }
}
`)
	if env["x"][0] != 1 {
		t.Errorf("x = %d", env["x"][0])
	}
}

func TestIfNotTaken(t *testing.T) {
	env, _ := compileRun(t, `
int a = 2; int b = 3; int x;
void main() {
  x = 0;
  if (a == b) { x = 1; }
}
`)
	if env["x"][0] != 0 {
		t.Errorf("x = %d", env["x"][0])
	}
}

func TestIfElseChain(t *testing.T) {
	env, _ := compileRun(t, `
int a = 7; int kind;
void main() {
  if (a < 5) { kind = 1; }
  else if (a < 10) { kind = 2; }
  else { kind = 3; }
}
`)
	if env["kind"][0] != 2 {
		t.Errorf("kind = %d", env["kind"][0])
	}
}

func TestWhileLoop(t *testing.T) {
	// Real runtime loop: sum 1..10 without unrolling.
	env, res := compileRun(t, `
int s; int i;
void main() {
  s = 0;
  i = 1;
  while (i <= 10) {
    s = s + i;
    i = i + 1;
  }
}
`)
	if env["s"][0] != 55 {
		t.Errorf("s = %d", env["s"][0])
	}
	// The loop is NOT unrolled: code is much shorter than 10 iterations'
	// worth of straight-line code.
	if res.Code.Len() > 25 {
		t.Errorf("loop seems unrolled: %d words", res.Code.Len())
	}
}

func TestForLoopAsRealLoop(t *testing.T) {
	env, res := compileRun(t, `
int fact;
void main() {
  fact = 1;
  for (i = 1; i < 7; i++) {
    fact = fact * i;
  }
}
`)
	if env["fact"][0] != 720 {
		t.Errorf("fact = %d", env["fact"][0])
	}
	if res.Code.Len() > 20 {
		t.Errorf("for loop seems unrolled: %d words", res.Code.Len())
	}
}

func TestNestedLoops(t *testing.T) {
	env, _ := compileRun(t, `
int acc;
void main() {
  acc = 0;
  for (i = 0; i < 5; i++) {
    for (j = 0; j < 4; j++) {
      acc = acc + 1;
    }
  }
}
`)
	if env["acc"][0] != 20 {
		t.Errorf("acc = %d", env["acc"][0])
	}
}

func TestWhileWithComputedBound(t *testing.T) {
	// Collatz-ish iteration: data-dependent trip count, impossible to
	// unroll at compile time.
	env, _ := compileRun(t, `
int n = 27; int steps;
void main() {
  steps = 0;
  while (n != 1) {
    if ((n & 1) == 1) { n = 3*n + 1; }
    else { n = n >> 1; }
    steps = steps + 1;
  }
}
`)
	if env["steps"][0] != 111 {
		t.Errorf("steps = %d", env["steps"][0])
	}
}

func TestTruthyCondition(t *testing.T) {
	// Non-comparison condition coerced to != 0.
	env, _ := compileRun(t, `
int a = 4; int x;
void main() {
  x = 0;
  while (a) {
    x = x + a;
    a = a - 1;
  }
}
`)
	if env["x"][0] != 10 {
		t.Errorf("x = %d", env["x"][0])
	}
}

func TestArrayLoopRuntimeIndexRejectedGracefully(t *testing.T) {
	// The brancher has no indexed addressing: a runtime array index must
	// produce a diagnostic, not wrong code.
	target := brancher(t)
	prog, err := cfront.Parse(`
int a[4] = {1,2,3,4};
int s;
void main() {
  s = 0;
  for (i = 0; i < 4; i++) { s = s + a[i]; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cflow.Compile(target, prog, cflow.Options{}); err == nil {
		t.Error("runtime-indexed array access compiled for a machine without indexed addressing")
	}
}

func TestInfiniteLoopDetected(t *testing.T) {
	target := brancher(t)
	prog, err := cfront.Parse(`
int x;
void main() {
  x = 0;
  while (x == 0) { x = 0; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cflow.Compile(target, prog, cflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cflow.Execute(target, res, cflow.Options{MaxCycles: 5000}); err == nil {
		t.Error("non-terminating loop not detected")
	}
}

func TestCompactionWithinBlocks(t *testing.T) {
	target := brancher(t)
	prog, err := cfront.Parse(`
int a = 1; int b = 2; int x; int y; int i;
void main() {
  i = 0;
  while (i < 3) {
    x = a + 10;
    y = b + 20;
    i = i + 1;
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := cflow.Compile(target, prog, cflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := cflow.Compile(target, prog, cflow.Options{NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Code.Len() > plain.Code.Len() {
		t.Errorf("compaction grew code: %d > %d", packed.Code.Len(), plain.Code.Len())
	}
	if err := cflow.CheckAgainstOracle(target, packed, cflow.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := cflow.CheckAgainstOracle(target, plain, cflow.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestNoJumpTemplatesDiagnostic(t *testing.T) {
	// The micro16-family machines have a plain incrementing PC: cflow must
	// refuse with a clear error.
	mdl, _ := models.Get("tms320c25")
	c25, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfront.Parse(`int x; void main() { x = 0; while (x < 3) { x = x + 1; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cflow.Compile(c25, prog, cflow.Options{}); err == nil ||
		!strings.Contains(err.Error(), "jump template") {
		t.Errorf("err = %v", err)
	}
}
