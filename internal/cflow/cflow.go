// Package cflow compiles programs with control flow (if/while and
// non-unrolled counted loops) for targets whose instruction set includes
// jump templates — the "standard jump instructions" of the paper's
// processor class (table 1).
//
// Instruction-set extraction discovers PC-destination RT templates
// automatically: the unconditional jump (PC := target field) and the
// conditional pair steered by a flag register, carried as residual dynamic
// guards.  This package lowers a program to a CFG, compiles each basic
// block through the ordinary selection/peephole/compaction pipeline,
// materializes branch conditions into the flag register, appends jump
// words, lays the blocks out, patches jump target fields, and encodes.
package cflow

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/bind"
	"repro/internal/code"
	"repro/internal/codegen"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/faultpoint"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rtl"
	"repro/internal/sim"
)

// Options tunes control-flow compilation and execution.
type Options struct {
	// MaxCycles bounds simulated execution (default 1<<20).
	MaxCycles int
	// NoCompaction disables per-block compaction.
	NoCompaction bool
	// Reporter receives per-block diagnostics.  nil is safe.
	Reporter *diag.Reporter
	// Budget bounds compilation (checked at block boundaries) and
	// execution (checked per simulated cycle).  nil means unlimited.
	Budget *diag.Budget
	// Obs receives per-block spans and block/word counters.  nil is safe.
	Obs *obs.Scope
	// Session, when set, is a caller-provided (typically pooled) encoding
	// session used for the whole program instead of allocating a fresh
	// one; the caller keeps ownership and must not use it concurrently.
	// core.Compiler.AcquireSession is the intended source.
	Session *asm.Session
}

// Result is a compiled control-flow program.
type Result struct {
	CFG     *ir.CFG
	Binding *bind.Binding
	Code    *code.Program
	// BlockStart[i] is the word address of block i; Exit is the halt
	// address (one past the last word).
	BlockStart []int
	Exit       int
	ModeReq    asm.ModeReq
}

// Words returns the encoded instruction words.
func (r *Result) Words() []uint64 {
	out := make([]uint64, len(r.Code.Words))
	for i, w := range r.Code.Words {
		out[i] = w.Bits
	}
	return out
}

// jumpSet is the target's branch machinery discovered in the template base.
type jumpSet struct {
	pcStorage string
	uncond    *rtl.Template // PC := field, no dynamic guard
	condTaken *rtl.Template // PC := field when flag == 1
	flagReg   string        // the register the conditional jump tests
	targetHi  int
	targetLo  int
}

// findJumps classifies the PC-destination templates of the target.
func findJumps(t *core.Target) (*jumpSet, error) {
	var pcQ string
	for _, st := range t.Net.Seq {
		if st.PC {
			pcQ = st.QName()
		}
	}
	if pcQ == "" {
		return nil, fmt.Errorf("cflow: target %s has no PC part", t.Name)
	}
	js := &jumpSet{pcStorage: pcQ}
	for _, tpl := range t.Base.Templates {
		if tpl.Dest != pcQ || tpl.DestPort || tpl.Src.Kind != rtl.InsnField {
			continue
		}
		switch len(tpl.Cond.Dynamic) {
		case 0:
			if js.uncond == nil {
				js.uncond = tpl
			}
		case 1:
			g := tpl.Cond.Dynamic[0]
			// Guard shape: (flag == 1).
			if g.Kind == rtl.OpApp && g.Op == rtl.OpEq &&
				g.Kids[0].Kind == rtl.Read && g.Kids[1].Kind == rtl.Const &&
				g.Kids[1].Val != 0 {
				if js.condTaken == nil {
					js.condTaken = tpl
					js.flagReg = g.Kids[0].Storage
				}
			}
		}
	}
	if js.uncond == nil {
		return nil, fmt.Errorf("cflow: target %s has no unconditional jump template", t.Name)
	}
	if js.condTaken == nil {
		return nil, fmt.Errorf("cflow: target %s has no flag-conditional jump template", t.Name)
	}
	js.targetHi, js.targetLo = js.uncond.Src.Hi, js.uncond.Src.Lo
	if js.condTaken.Src.Hi != js.targetHi || js.condTaken.Src.Lo != js.targetLo {
		return nil, fmt.Errorf("cflow: conditional and unconditional jumps use different target fields")
	}
	return js, nil
}

// pendingJump records a jump word whose target is patched after layout.
type pendingJump struct {
	word        *code.Word
	instr       *code.Instr
	targetBlock int // or exit when < 0
}

// Compile lowers, selects, compacts and encodes a control-flow program.
func Compile(t *core.Target, prog *ir.Program, opts Options) (*Result, error) {
	cfg, err := ir.BuildCFG(prog)
	if err != nil {
		return nil, err
	}
	js, err := findJumps(t)
	if err != nil {
		return nil, err
	}
	declProg := &ir.Program{Decls: cfg.Decls, Body: prog.Body}
	b, err := bind.Bind(declProg, t.Net)
	if err != nil {
		return nil, err
	}
	gen := codegen.New(t.Grammar, t.Parser, b)
	// One encoding session for the whole program keeps cflow reentrant on
	// frozen targets (feasibility tests and encoding share a private view);
	// a caller-supplied pooled session skips the per-program allocation.
	sess := opts.Session
	if sess == nil {
		sess = t.Encoder.NewSessionObs(opts.Obs)
	}
	cfSpan, scope := opts.Obs.Start("cflow.compile", obs.KV("blocks", len(cfg.Blocks)))
	defer cfSpan.End()
	cBlocks := scope.Registry().Counter("record_cflow_blocks_total",
		"basic blocks compiled by the control-flow pipeline")

	res := &Result{CFG: cfg, Binding: b, Code: &code.Program{},
		BlockStart: make([]int, len(cfg.Blocks))}
	var pending []*pendingJump

	appendJump := func(tpl *rtl.Template, target int) {
		in := &code.Instr{Template: tpl}
		w := &code.Word{Instrs: []*code.Instr{in}}
		res.Code.Words = append(res.Code.Words, w)
		pending = append(pending, &pendingJump{word: w, instr: in, targetBlock: target})
	}

	for i, blk := range cfg.Blocks {
		blk := blk
		// Each block compiles under its own span so traces show where a
		// control-flow-heavy program spends its time.
		err := func() error {
			sp, bscope := scope.Start("cflow.block", obs.KV("block", i))
			defer sp.End()
			if err := faultpoint.Hit("cflow.block", fmt.Sprintf("%s#%d", t.Name, i)); err != nil {
				return fmt.Errorf("cflow: block %d: %w", i, err)
			}
			if err := opts.Budget.Exceeded(); err != nil {
				opts.Reporter.Errorf("cflow", diag.Pos{}, "compilation budget exhausted at block %d of %d", i, len(cfg.Blocks))
				return fmt.Errorf("cflow: block %d: %w", i, err)
			}
			res.BlockStart[i] = len(res.Code.Words)
			// Straight-line part.
			var ets []*bind.ET
			for _, a := range blk.Assigns {
				et, err := b.LowerAssign(a)
				if err != nil {
					return err
				}
				ets = append(ets, et)
			}
			seq, err := gen.Compile(ets)
			if err != nil {
				return fmt.Errorf("cflow: block %d: %w", i, err)
			}
			seq, _ = opt.Optimize(seq)

			// Branch conditions materialize into the flag register before the
			// jump; the flag-set code joins the block for compaction.
			br, isBranch := blk.Term.(*ir.Branch)
			if isBranch {
				condTree, err := b.LowerExpr(asBool(br.Cond))
				if err != nil {
					return err
				}
				flagCode, err := gen.CompileET(&bind.ET{
					Dest: js.flagReg, Src: condTree,
					Source: fmt.Sprintf("branch if %s", br.Cond)})
				if err != nil {
					return fmt.Errorf("cflow: block %d condition: %w", i, err)
				}
				for _, in := range flagCode {
					seq.Append(in)
				}
			}
			prg, err := compact.Compact(seq, sess, compact.Options{Disable: opts.NoCompaction, Obs: bscope})
			if err != nil {
				return fmt.Errorf("cflow: block %d: %w", i, err)
			}
			if err := compact.Verify(seq, prg, sess); err != nil {
				return err
			}
			res.Code.Words = append(res.Code.Words, prg.Words...)

			// Terminator.
			next := i + 1 // fallthrough block in layout order
			switch term := blk.Term.(type) {
			case *ir.Halt:
				if i != len(cfg.Blocks)-1 {
					appendJump(js.uncond, -1)
				}
			case *ir.Goto:
				if term.Target != next {
					appendJump(js.uncond, term.Target)
				}
			case *ir.Branch:
				appendJump(js.condTaken, term.Then)
				if term.Else != next {
					appendJump(js.uncond, term.Else)
				}
			default:
				return fmt.Errorf("cflow: block %d missing terminator", i)
			}
			sp.SetAttr("words", len(res.Code.Words)-res.BlockStart[i])
			cBlocks.Inc()
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	res.Exit = len(res.Code.Words)

	// Patch jump targets and encode everything.
	for _, pj := range pending {
		target := res.Exit
		if pj.targetBlock >= 0 {
			target = res.BlockStart[pj.targetBlock]
		}
		pj.instr.Fields = []code.Field{{Hi: js.targetHi, Lo: js.targetLo, Val: int64(target)}}
	}
	mode, err := sess.EncodeProgram(res.Code)
	if err != nil {
		return nil, err
	}
	res.ModeReq = mode
	return res, nil
}

// asBool coerces an arbitrary condition expression to a 1-bit comparison.
func asBool(e ir.Expr) ir.Expr {
	if bin, ok := e.(*ir.Bin); ok {
		switch bin.Op {
		case rtl.OpEq, rtl.OpNe, rtl.OpLt, rtl.OpLe, rtl.OpGt, rtl.OpGe:
			return e
		}
	}
	return &ir.Bin{Op: rtl.OpNe, X: e, Y: &ir.Const{Val: 0}}
}

// Execute runs the compiled program on the netlist simulator until the PC
// reaches the exit address, returning the final variable values.
func Execute(t *core.Target, r *Result, opts Options) (ir.Env, error) {
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 1 << 20
	}
	s := sim.New(t.Net)
	for storage, val := range r.ModeReq {
		if err := s.SetMemory(storage, []int64{val}); err != nil {
			return nil, err
		}
	}
	declProg := &ir.Program{Decls: r.CFG.Decls}
	for storage, img := range r.Binding.InitialImages(declProg) {
		if err := s.SetMemory(storage, img); err != nil {
			return nil, err
		}
	}
	if err := s.LoadProgram(r.Words()); err != nil {
		return nil, err
	}
	for cycle := 0; ; cycle++ {
		if int(s.PC()) == r.Exit {
			break
		}
		if cycle >= maxCycles {
			return nil, fmt.Errorf("cflow: execution exceeded %d cycles (PC=%d)", maxCycles, s.PC())
		}
		if cycle&1023 == 0 {
			if err := opts.Budget.Exceeded(); err != nil {
				return nil, fmt.Errorf("cflow: execution stopped at cycle %d: %w", cycle, err)
			}
		}
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	env := make(ir.Env)
	for _, d := range r.CFG.Decls {
		place, ok := r.Binding.AddrOf(d.Name)
		if !ok {
			continue
		}
		memory := s.Mem[place.Storage]
		cells := make([]int64, d.Cells())
		copy(cells, memory[place.Addr:place.Addr+d.Cells()])
		env[d.Name] = cells
	}
	return env, nil
}

// CheckAgainstOracle executes the compiled program and compares every
// variable with the CFG interpreter.
func CheckAgainstOracle(t *core.Target, r *Result, opts Options) error {
	got, err := Execute(t, r, opts)
	if err != nil {
		return err
	}
	want := ir.NewEnv(&ir.Program{Decls: r.CFG.Decls}, r.Binding.Width)
	if err := r.CFG.Interp(want, r.Binding.Width); err != nil {
		return fmt.Errorf("cflow: oracle: %w", err)
	}
	for _, d := range r.CFG.Decls {
		for i := range want[d.Name] {
			if got[d.Name][i] != want[d.Name][i] {
				return fmt.Errorf("cflow: %s[%d] = %d on hardware, %d per oracle",
					d.Name, i, got[d.Name][i], want[d.Name][i])
			}
		}
	}
	return nil
}
