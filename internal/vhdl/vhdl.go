// Package vhdl implements the VHDL frontend the paper names as planned
// work ("Currently, the netlist model is constructed from a processor
// description in the MIMOLA HDL.  The concepts are, however, language
// independent, and a VHDL frontend is planned." — section 2).
//
// It accepts a structural/behavioral VHDL-93 subset and translates it to
// MDL text, so both frontends share the same internal graph model and
// everything downstream:
//
//   - entity/architecture pairs with in/out ports of types
//     unsigned(H downto 0) and std_logic become MODULEs;
//   - selected signal assignments (with ... select) become CASE behaviors,
//     simple concurrent assignments become plain behaviors;
//   - clocked processes (if rising_edge(clk) [if en = '1']) writing an
//     architecture signal become guarded storage writes; array-typed
//     signals (type ... is array (0 to N-1) of unsigned(...)) become
//     addressable storages;
//   - the top-level architecture's direct entity instantiations become
//     PARTS and its signal wiring becomes CONNECT;
//   - attribute record_role of <label> : label is "instruction"|"pc"|"mode"
//     marks the special parts.
//
// The subset is deliberately small but real: see the package tests for a
// complete processor written in it.
package vhdl

import (
	"fmt"
	"strconv"
	"strings"
)

// Translate converts VHDL subset source into MDL text.
func Translate(src string) (string, error) {
	toks, err := lex(src)
	if err != nil {
		return "", err
	}
	p := &parser{toks: toks}
	design, err := p.parseDesign()
	if err != nil {
		return "", err
	}
	return design.emitMDL()
}

// ---- lexer ---------------------------------------------------------------

type tok struct {
	kind string // "id", "num", "str", "char", punctuation itself
	text string
	val  int64
	line int
}

func lex(src string) ([]tok, error) {
	var out []tok
	line := 1
	i := 0
	push := func(kind, text string, val int64) {
		out = append(out, tok{kind, text, val, line})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isLetter(c):
			start := i
			for i < len(src) && (isLetter(src[i]) || isDigit(src[i]) || src[i] == '_') {
				i++
			}
			push("id", strings.ToLower(src[start:i]), 0)
		case isDigit(c):
			start := i
			for i < len(src) && isDigit(src[i]) {
				i++
			}
			v, _ := strconv.ParseInt(src[start:i], 10, 64)
			push("num", src[start:i], v)
		case c == '"':
			// Bit-string literal "0101", or a plain string (attribute
			// values): the numeric value is only set when the contents
			// parse as binary.
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("vhdl: line %d: unterminated string", line)
			}
			text := src[i+1 : j]
			v, err := strconv.ParseInt(text, 2, 64)
			if err != nil {
				v = 0
			}
			push("str", text, v)
			i = j + 1
		case c == 'x' && false:
			i++
		case c == '\'':
			// Character literal '0' / '1'.
			if i+2 < len(src) && src[i+2] == '\'' {
				ch := src[i+1]
				v := int64(0)
				if ch == '1' {
					v = 1
				}
				push("char", string(ch), v)
				i += 3
			} else {
				return nil, fmt.Errorf("vhdl: line %d: bad character literal", line)
			}
		default:
			// Multi-char operators.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "=>", "/=", ":=", "**":
				push(two, two, 0)
				i += 2
				continue
			}
			push(string(c), string(c), 0)
			i++
		}
	}
	push("eof", "", 0)
	return out, nil
}

func isLetter(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
