package vhdl

import (
	"fmt"
	"strings"
)

// ---- design model --------------------------------------------------------

type port struct {
	name  string
	dir   string // "in" / "out"
	width int
	isClk bool
}

type sigDecl struct {
	name  string
	width int
	size  int // 1 for scalars, >1 for array-typed signals
}

// expr is a tiny VHDL expression tree rendered to MDL text.
type expr struct {
	op   string // MDL operator, or "" for leaves
	id   string // identifier leaf
	val  int64  // literal leaf
	lit  bool   // literal?
	hi   int    // slice bounds (op == "slice")
	lo   int
	kids []*expr
}

// assign is one concurrent assignment in a behavioral architecture.
type assign struct {
	target    string
	targetIdx *expr // array write/read index, nil for scalars
	// Either a simple RHS ...
	rhs *expr
	// ... or a with/select: selector + alternatives (+ optional others).
	sel    *expr
	alts   []selAlt
	others *expr
}

type selAlt struct {
	val  int64
	body *expr
}

// regWrite is a guarded storage write from a clocked process.
type regWrite struct {
	target    string
	targetIdx *expr
	guard     *expr // nil for unconditional
	rhs       *expr
}

type inst struct {
	label  string
	entity string
	// assocs: formal port -> actual expression (signal, slice or literal).
	assocs []assoc
}

type assoc struct {
	formal string
	actual *expr
}

type entity struct {
	name    string
	ports   []port
	signals []sigDecl
	assigns []assign
	writes  []regWrite
	insts   []inst
	roles   map[string]string // instance label -> record_role
}

func (e *entity) isStructural() bool { return len(e.insts) > 0 }

func (e *entity) portByName(n string) *port {
	for i := range e.ports {
		if e.ports[i].name == n {
			return &e.ports[i]
		}
	}
	return nil
}

type design struct {
	entities []*entity
	byName   map[string]*entity
}

// ---- parser ----------------------------------------------------------------

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) cur() tok  { return p.toks[p.pos] }
func (p *parser) next() tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("vhdl: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) is(kind string) bool { return p.cur().kind == kind }

func (p *parser) isKw(kw string) bool {
	return p.cur().kind == "id" && p.cur().text == kw
}

func (p *parser) expectKw(kw string) error {
	if !p.isKw(kw) {
		return p.errf("expected %q, found %q", kw, p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) expect(kind string) (tok, error) {
	if !p.is(kind) {
		return tok{}, p.errf("expected %q, found %q", kind, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) ident() (string, error) {
	t, err := p.expect("id")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

// skipToSemicolon consumes tokens through the next ';' (library/use).
func (p *parser) skipToSemicolon() {
	for !p.is("eof") && !p.is(";") {
		p.next()
	}
	if p.is(";") {
		p.next()
	}
}

func (p *parser) parseDesign() (*design, error) {
	d := &design{byName: make(map[string]*entity)}
	for !p.is("eof") {
		switch {
		case p.isKw("library"), p.isKw("use"):
			p.skipToSemicolon()
		case p.isKw("entity"):
			e, err := p.parseEntity()
			if err != nil {
				return nil, err
			}
			d.entities = append(d.entities, e)
			d.byName[e.name] = e
		case p.isKw("architecture"):
			if err := p.parseArchitecture(d); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected entity or architecture, found %q", p.cur().text)
		}
	}
	return d, nil
}

// parseEntity: entity NAME is [port ( ... );] end [entity] [NAME];
func (p *parser) parseEntity() (*entity, error) {
	p.next() // entity
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("is"); err != nil {
		return nil, err
	}
	e := &entity{name: name, roles: make(map[string]string)}
	if p.isKw("port") {
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		for {
			var names []string
			for {
				n, err := p.ident()
				if err != nil {
					return nil, err
				}
				names = append(names, n)
				if p.is(",") {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			dir, err := p.ident()
			if err != nil {
				return nil, err
			}
			if dir != "in" && dir != "out" {
				return nil, p.errf("unsupported port mode %q", dir)
			}
			width, err := p.parseType()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				e.ports = append(e.ports, port{name: n, dir: dir, width: width,
					isClk: n == "clk"})
			}
			if p.is(";") {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	p.acceptKw("entity")
	p.acceptId(name)
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) acceptKw(kw string) { //nolint:unparam
	if p.isKw(kw) {
		p.next()
	}
}

func (p *parser) acceptId(name string) {
	if p.is("id") && p.cur().text == name {
		p.next()
	}
}

// parseType: std_logic | unsigned(H downto 0)
func (p *parser) parseType() (int, error) {
	t, err := p.ident()
	if err != nil {
		return 0, err
	}
	switch t {
	case "std_logic":
		return 1, nil
	case "unsigned", "signed", "std_logic_vector":
		if _, err := p.expect("("); err != nil {
			return 0, err
		}
		hi, err := p.expect("num")
		if err != nil {
			return 0, err
		}
		if err := p.expectKw("downto"); err != nil {
			return 0, err
		}
		lo, err := p.expect("num")
		if err != nil {
			return 0, err
		}
		if lo.val != 0 {
			return 0, p.errf("only (H downto 0) ranges are supported")
		}
		if _, err := p.expect(")"); err != nil {
			return 0, err
		}
		return int(hi.val) + 1, nil
	}
	return 0, p.errf("unsupported type %q", t)
}

// parseArchitecture: architecture A of E is {decls} begin {stmts} end ...;
func (p *parser) parseArchitecture(d *design) error {
	p.next() // architecture
	if _, err := p.ident(); err != nil {
		return err
	}
	if err := p.expectKw("of"); err != nil {
		return err
	}
	entName, err := p.ident()
	if err != nil {
		return err
	}
	e, ok := d.byName[entName]
	if !ok {
		return p.errf("architecture of unknown entity %q", entName)
	}
	if err := p.expectKw("is"); err != nil {
		return err
	}
	arrayTypes := make(map[string]struct{ width, size int })
	// Declarations.
	for !p.isKw("begin") {
		switch {
		case p.isKw("signal"):
			p.next()
			var names []string
			for {
				name, err := p.ident()
				if err != nil {
					return err
				}
				names = append(names, name)
				if p.is(",") {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(":"); err != nil {
				return err
			}
			if p.is("id") {
				if at, isArr := arrayTypes[p.cur().text]; isArr {
					p.next()
					for _, name := range names {
						e.signals = append(e.signals, sigDecl{name: name,
							width: at.width, size: at.size})
					}
					if _, err := p.expect(";"); err != nil {
						return err
					}
					continue
				}
			}
			w, err := p.parseType()
			if err != nil {
				return err
			}
			for _, name := range names {
				e.signals = append(e.signals, sigDecl{name: name, width: w, size: 1})
			}
			if _, err := p.expect(";"); err != nil {
				return err
			}
		case p.isKw("type"):
			// type NAME is array (0 to N-1) of unsigned(H downto 0);
			p.next()
			tname, err := p.ident()
			if err != nil {
				return err
			}
			if err := p.expectKw("is"); err != nil {
				return err
			}
			if err := p.expectKw("array"); err != nil {
				return err
			}
			if _, err := p.expect("("); err != nil {
				return err
			}
			if _, err := p.expect("num"); err != nil {
				return err
			}
			if err := p.expectKw("to"); err != nil {
				return err
			}
			hi, err := p.expect("num")
			if err != nil {
				return err
			}
			if _, err := p.expect(")"); err != nil {
				return err
			}
			if err := p.expectKw("of"); err != nil {
				return err
			}
			w, err := p.parseType()
			if err != nil {
				return err
			}
			arrayTypes[tname] = struct{ width, size int }{w, int(hi.val) + 1}
			if _, err := p.expect(";"); err != nil {
				return err
			}
		case p.isKw("attribute"):
			if err := p.parseAttribute(e); err != nil {
				return err
			}
		case p.isKw("component"):
			// Skip component declarations entirely.
			for !p.isKw("end") {
				p.next()
			}
			p.next()
			p.acceptKw("component")
			if _, err := p.expect(";"); err != nil {
				return err
			}
		default:
			return p.errf("unsupported declaration %q", p.cur().text)
		}
	}
	p.next() // begin
	// Statements.
	for !p.isKw("end") {
		if err := p.parseConcurrent(e); err != nil {
			return err
		}
	}
	p.next() // end
	p.acceptKw("architecture")
	if p.is("id") {
		p.next()
	}
	_, err = p.expect(";")
	return err
}

// parseAttribute: attribute record_role : string;
//
//	attribute record_role of LABEL : label is "role";
func (p *parser) parseAttribute(e *entity) error {
	p.next() // attribute
	if _, err := p.ident(); err != nil {
		return err
	}
	if p.is(":") {
		p.next()
		if _, err := p.ident(); err != nil { // string
			return err
		}
		_, err := p.expect(";")
		return err
	}
	if err := p.expectKw("of"); err != nil {
		return err
	}
	label, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.expect(":"); err != nil {
		return err
	}
	if err := p.expectKw("label"); err != nil {
		return err
	}
	if err := p.expectKw("is"); err != nil {
		return err
	}
	role, err := p.expect("str")
	if err != nil {
		// Roles are words, which the lexer reads as bit strings only when
		// they happen to be binary; accept a plain string of letters too.
		return err
	}
	e.roles[label] = role.text
	_, err2 := p.expect(";")
	return err2
}

// parseConcurrent parses one concurrent statement.
func (p *parser) parseConcurrent(e *entity) error {
	switch {
	case p.isKw("with"):
		return p.parseWithSelect(e)
	case p.isKw("process"):
		return p.parseProcess(e)
	}
	// label : entity work.NAME port map ( ... );  |  target <= expr ;
	name, err := p.ident()
	if err != nil {
		return err
	}
	if p.is(":") {
		p.next()
		return p.parseInstance(e, name)
	}
	// Assignment; the target may be indexed: m(to_integer(a)) <= ...
	var idx *expr
	if p.is("(") {
		p.next()
		idx, err = p.parseExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(")"); err != nil {
			return err
		}
	}
	if _, err := p.expect("<="); err != nil {
		return err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return err
	}
	// Conditional assignment: e1 when cond else e2.
	if p.isKw("when") {
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return err
		}
		if err := p.expectKw("else"); err != nil {
			return err
		}
		alt, err := p.parseExpr()
		if err != nil {
			return err
		}
		rhs = &expr{op: "?", kids: []*expr{cond, rhs, alt}}
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	e.assigns = append(e.assigns, assign{target: name, targetIdx: idx, rhs: rhs})
	return nil
}

// parseWithSelect: with SEL select TGT <= E when "..", ..., E when others;
func (p *parser) parseWithSelect(e *entity) error {
	p.next() // with
	sel, err := p.parseExpr()
	if err != nil {
		return err
	}
	if err := p.expectKw("select"); err != nil {
		return err
	}
	tgt, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.expect("<="); err != nil {
		return err
	}
	a := assign{target: tgt, sel: sel}
	for {
		body, err := p.parseExpr()
		if err != nil {
			return err
		}
		if err := p.expectKw("when"); err != nil {
			return err
		}
		if p.isKw("others") {
			p.next()
			a.others = body
		} else {
			v, err := p.parseLiteral()
			if err != nil {
				return err
			}
			a.alts = append(a.alts, selAlt{val: v, body: body})
		}
		if p.is(",") {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	e.assigns = append(e.assigns, a)
	return nil
}

func (p *parser) parseLiteral() (int64, error) {
	switch p.cur().kind {
	case "num", "str", "char":
		return p.next().val, nil
	}
	return 0, p.errf("expected literal, found %q", p.cur().text)
}

// parseInstance: entity work.NAME port map ( f => a, ... );
func (p *parser) parseInstance(e *entity, label string) error {
	if err := p.expectKw("entity"); err != nil {
		return err
	}
	lib, err := p.ident()
	if err != nil {
		return err
	}
	if lib != "work" {
		return p.errf("only library work is supported")
	}
	if _, err := p.expect("."); err != nil {
		return err
	}
	entName, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expectKw("port"); err != nil {
		return err
	}
	if err := p.expectKw("map"); err != nil {
		return err
	}
	if _, err := p.expect("("); err != nil {
		return err
	}
	in := inst{label: label, entity: entName}
	for {
		formal, err := p.ident()
		if err != nil {
			return err
		}
		if _, err := p.expect("=>"); err != nil {
			return err
		}
		actual, err := p.parseExpr()
		if err != nil {
			return err
		}
		in.assocs = append(in.assocs, assoc{formal: formal, actual: actual})
		if p.is(",") {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(")"); err != nil {
		return err
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	e.insts = append(e.insts, in)
	return nil
}

// parseProcess: process (..) begin if rising_edge(clk) then BODY end if; end process;
func (p *parser) parseProcess(e *entity) error {
	p.next() // process
	if p.is("(") {
		for !p.is(")") {
			p.next()
		}
		p.next()
	}
	if err := p.expectKw("begin"); err != nil {
		return err
	}
	if err := p.expectKw("if"); err != nil {
		return err
	}
	if err := p.expectKw("rising_edge"); err != nil {
		return err
	}
	if _, err := p.expect("("); err != nil {
		return err
	}
	if _, err := p.ident(); err != nil {
		return err
	}
	if _, err := p.expect(")"); err != nil {
		return err
	}
	if err := p.expectKw("then"); err != nil {
		return err
	}
	// Body: assignments, optionally wrapped in one guard level.
	for !p.isKw("end") {
		if p.isKw("if") {
			p.next()
			guard, err := p.parseExpr()
			if err != nil {
				return err
			}
			if err := p.expectKw("then"); err != nil {
				return err
			}
			for !p.isKw("end") {
				if err := p.parseProcAssign(e, guard); err != nil {
					return err
				}
			}
			p.next() // end
			if err := p.expectKw("if"); err != nil {
				return err
			}
			if _, err := p.expect(";"); err != nil {
				return err
			}
			continue
		}
		if err := p.parseProcAssign(e, nil); err != nil {
			return err
		}
	}
	p.next() // end (of rising_edge if)
	if err := p.expectKw("if"); err != nil {
		return err
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	if err := p.expectKw("end"); err != nil {
		return err
	}
	if err := p.expectKw("process"); err != nil {
		return err
	}
	_, err := p.expect(";")
	return err
}

func (p *parser) parseProcAssign(e *entity, guard *expr) error {
	tgt, err := p.ident()
	if err != nil {
		return err
	}
	var idx *expr
	if p.is("(") {
		p.next()
		idx, err = p.parseExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(")"); err != nil {
			return err
		}
	}
	if _, err := p.expect("<="); err != nil {
		return err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return err
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	e.writes = append(e.writes, regWrite{target: tgt, targetIdx: idx, guard: guard, rhs: rhs})
	return nil
}

// ---- expressions ----------------------------------------------------------

// Precedence (loosest first): or, xor, and, =/=/</<=, srl/sll, +/-, *, unary.
func (p *parser) parseExpr() (*expr, error) { return p.parseBinary(0) }

var vhdlLevels = [][]struct{ kw, op string }{
	{{"or", "|"}},
	{{"xor", "^"}},
	{{"and", "&"}},
	{{"=", "=="}, {"/=", "!="}, {"<", "<"}, {"<=", "<="}, {">", ">"}, {">=", ">="}},
	{{"srl", ">>"}, {"sll", "<<"}},
	{{"+", "+"}, {"-", "-"}},
	{{"*", "*"}},
}

func (p *parser) matchLevel(level int) (string, bool) {
	for _, cand := range vhdlLevels[level] {
		switch cand.kw {
		case "or", "xor", "and", "srl", "sll":
			if p.isKw(cand.kw) {
				return cand.op, true
			}
		default:
			if p.is(cand.kw) {
				return cand.op, true
			}
		}
	}
	return "", false
}

func (p *parser) parseBinary(level int) (*expr, error) {
	if level >= len(vhdlLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.matchLevel(level)
		if !ok {
			return x, nil
		}
		p.next()
		y, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		x = &expr{op: op, kids: []*expr{x, y}}
	}
}

func (p *parser) parseUnary() (*expr, error) {
	if p.isKw("not") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr{op: "~", kids: []*expr{x}}, nil
	}
	if p.is("-") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr{op: "neg", kids: []*expr{x}}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*expr, error) {
	switch p.cur().kind {
	case "num", "str", "char":
		t := p.next()
		return &expr{lit: true, val: t.val}, nil
	case "(":
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(")")
		return x, err
	case "id":
		name := p.next().text
		if name == "to_integer" {
			// to_integer(x) is the identity in MDL.
			if _, err := p.expect("("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			_, err = p.expect(")")
			return x, err
		}
		if p.is("(") {
			p.next()
			// Either a slice x(H downto L) or an array index x(e).
			save := p.pos
			if p.is("num") {
				hi := p.next()
				if p.isKw("downto") {
					p.next()
					lo, err := p.expect("num")
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(")"); err != nil {
						return nil, err
					}
					return &expr{op: "slice", hi: int(hi.val), lo: int(lo.val),
						kids: []*expr{{id: name}}}, nil
				}
				p.pos = save
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return &expr{op: "index", kids: []*expr{{id: name}, idx}}, nil
		}
		return &expr{id: name}, nil
	}
	return nil, p.errf("expected expression, found %q", p.cur().text)
}

// render converts an expression tree to MDL text.
func (e *expr) render() string {
	switch {
	case e.lit:
		return fmt.Sprintf("%d", e.val)
	case e.id != "":
		return e.id
	case e.op == "slice":
		if e.hi == e.lo {
			return fmt.Sprintf("%s[%d]", e.kids[0].render(), e.hi)
		}
		return fmt.Sprintf("%s[%d:%d]", e.kids[0].render(), e.hi, e.lo)
	case e.op == "index":
		return fmt.Sprintf("%s[%s]", e.kids[0].render(), e.kids[1].render())
	case e.op == "neg":
		return fmt.Sprintf("-(%s)", e.kids[0].render())
	case e.op == "~":
		return fmt.Sprintf("~(%s)", e.kids[0].render())
	case e.op == "?":
		// cond ? a : b rendered as a CASE over the 1-bit condition.
		return fmt.Sprintf("CASE %s OF 1: %s; ELSE: %s; END",
			e.kids[0].render(), e.kids[1].render(), e.kids[2].render())
	case len(e.kids) == 2:
		return fmt.Sprintf("(%s %s %s)", e.kids[0].render(), e.op, e.kids[1].render())
	}
	return "<bad>"
}

// usedIDs collects identifier leaves.
func (e *expr) usedIDs(out map[string]bool) {
	if e == nil {
		return
	}
	if e.id != "" {
		out[e.id] = true
	}
	for _, k := range e.kids {
		k.usedIDs(out)
	}
}

var _ = strings.ToUpper
