package vhdl_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vhdl"
)

// cpuVHDL is a complete accumulator processor written in the VHDL subset —
// the same micro16-style machine the core tests build in MDL.
const cpuVHDL = `
library ieee;
use ieee.numeric_std.all;

entity alu is
  port (a  : in  unsigned(15 downto 0);
        b  : in  unsigned(15 downto 0);
        op : in  unsigned(2 downto 0);
        y  : out unsigned(15 downto 0));
end entity;

architecture rtl of alu is
begin
  with op select y <=
    a + b   when "000",
    a - b   when "001",
    a and b when "010",
    a or b  when "011",
    a xor b when "100",
    a * b   when "110",
    b       when others;
end architecture;

entity bmux is
  port (m   : in  unsigned(15 downto 0);
        imm : in  unsigned(15 downto 0);
        s   : in  std_logic;
        y   : out unsigned(15 downto 0));
end entity;

architecture rtl of bmux is
begin
  y <= imm when s = '1' else m;
end architecture;

entity reg is
  port (clk : in std_logic;
        d   : in unsigned(15 downto 0);
        ld  : in std_logic;
        q   : out unsigned(15 downto 0));
end entity;

architecture rtl of reg is
  signal r : unsigned(15 downto 0);
begin
  q <= r;
  process (clk) begin
    if rising_edge(clk) then
      if ld = '1' then
        r <= d;
      end if;
    end if;
  end process;
end architecture;

entity ram is
  port (clk : in std_logic;
        a   : in unsigned(7 downto 0);
        d   : in unsigned(15 downto 0);
        w   : in std_logic;
        q   : out unsigned(15 downto 0));
end entity;

architecture rtl of ram is
  type mem_t is array (0 to 255) of unsigned(15 downto 0);
  signal m : mem_t;
begin
  q <= m(to_integer(a));
  process (clk) begin
    if rising_edge(clk) then
      if w = '1' then
        m(to_integer(a)) <= d;
      end if;
    end if;
  end process;
end architecture;

entity rom is
  port (a : in unsigned(7 downto 0);
        q : out unsigned(31 downto 0));
end entity;

architecture rtl of rom is
  type mem_t is array (0 to 255) of unsigned(31 downto 0);
  signal m : mem_t;
begin
  q <= m(to_integer(a));
end architecture;

entity pcinc is
  port (a : in unsigned(7 downto 0); y : out unsigned(7 downto 0));
end entity;

architecture rtl of pcinc is
begin
  y <= a + 1;
end architecture;

entity pcreg is
  port (clk : in std_logic;
        d   : in unsigned(7 downto 0);
        q   : out unsigned(7 downto 0));
end entity;

architecture rtl of pcreg is
  signal r : unsigned(7 downto 0);
begin
  q <= r;
  process (clk) begin
    if rising_edge(clk) then
      r <= d;
    end if;
  end process;
end architecture;

entity cpu is
  port (clk : in std_logic);
end entity;

architecture struct of cpu is
  signal accq, aluy, bmuxy, ramq : unsigned(15 downto 0);
  signal insn : unsigned(31 downto 0);
  signal pcq, pcn : unsigned(7 downto 0);
  attribute record_role : string;
  attribute record_role of imem_i : label is "instruction";
  attribute record_role of pc_i : label is "pc";
begin
  alu_i  : entity work.alu   port map (a => accq, b => bmuxy, op => insn(31 downto 29), y => aluy);
  bmux_i : entity work.bmux  port map (m => ramq, imm => insn(15 downto 0), s => insn(28), y => bmuxy);
  acc_i  : entity work.reg   port map (clk => clk, d => aluy, ld => insn(27), q => accq);
  ram_i  : entity work.ram   port map (clk => clk, a => insn(7 downto 0), d => accq, w => insn(26), q => ramq);
  imem_i : entity work.rom   port map (a => pcq, q => insn);
  pc_i   : entity work.pcreg port map (clk => clk, d => pcn, q => pcq);
  pinc_i : entity work.pcinc port map (a => pcq, y => pcn);
end architecture;
`

func TestTranslateProducesValidMDL(t *testing.T) {
	mdl, err := vhdl.Translate(cpuVHDL)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	for _, want := range []string{
		"PROCESSOR cpu;",
		"MODULE alu",
		"CASE op OF 0: (a + b);",
		"VAR m: 16 [256];",
		"AT (w == 1) DO m[a] <- d;",
		"imem_i : rom INSTRUCTION;",
		"pc_i : pcreg PC;",
		"alu_i.op <- imem_i.q[31:29];",
	} {
		if !strings.Contains(mdl, want) {
			t.Errorf("MDL output missing %q:\n%s", want, mdl)
		}
	}
}

// TestVHDLEndToEnd is the paper's planned VHDL frontend, closed: a VHDL
// processor model retargets and compiles programs that run correctly on
// the simulated netlist.
func TestVHDLEndToEnd(t *testing.T) {
	mdl, err := vhdl.Translate(cpuVHDL)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatalf("retarget translated model: %v\n%s", err, mdl)
	}
	if tg.Stats.Extracted == 0 {
		t.Fatal("no templates extracted")
	}
	res, err := tg.CompileSourceContext(context.Background(), `
int a = 6; int b = 7;
int prod; int mix;
prod = a * b;
mix = (prod ^ a) & 255;
`, core.CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := tg.CheckAgainstOracle(res); err != nil {
		t.Fatalf("oracle: %v\n%s", err, tg.Listing(res))
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"entity e is end;", "no structural architecture"},
		{"garbage", "expected entity"},
		{`entity e is port (x : inout std_logic); end;`, "unsupported port mode"},
		{`entity e is port (x : in unsigned(3 downto 1)); end;`, "downto 0"},
		{`library ieee;
entity a is port (y : out std_logic); end;
architecture r of a is begin y <= '1'; end;
entity t is end;
architecture s of t is
  signal q : std_logic;
begin
  a1 : entity work.a port map (y => q);
  a2 : entity work.b port map (y => q);
end;`, "no declaration"},
	}
	for i, c := range cases {
		_, err := vhdl.Translate(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want substring %q", i, err, c.want)
		}
	}
}

func TestKeywordSanitization(t *testing.T) {
	// VHDL identifiers that collide with MDL keywords must be renamed.
	src := `
entity pass is
  port (a : in unsigned(7 downto 0); q : out unsigned(7 downto 0));
end;
architecture r of pass is
begin
  q <= a;
end;
entity rom is
  port (a : in unsigned(3 downto 0); q : out unsigned(15 downto 0));
end;
architecture r of rom is
  type m_t is array (0 to 15) of unsigned(15 downto 0);
  signal m : m_t;
begin
  q <= m(to_integer(a));
end;
entity pcreg is
  port (clk : in std_logic; d : in unsigned(3 downto 0); q : out unsigned(3 downto 0));
end;
architecture r of pcreg is
  signal r : unsigned(3 downto 0);
begin
  q <= r;
  process (clk) begin
    if rising_edge(clk) then
      r <= d;
    end if;
  end process;
end;
entity inc is
  port (a : in unsigned(3 downto 0); y : out unsigned(3 downto 0));
end;
architecture r of inc is
begin
  y <= a + 1;
end;
entity top is end;
architecture s of top is
  signal insn : unsigned(15 downto 0);
  signal pc, pcn : unsigned(3 downto 0);
  signal px : unsigned(7 downto 0);
  attribute record_role : string;
  attribute record_role of imem : label is "instruction";
  attribute record_role of pcr : label is "pc";
begin
  imem : entity work.rom port map (a => pc, q => insn);
  pcr  : entity work.pcreg port map (clk => insn(0), d => pcn, q => pc);
  inc1 : entity work.inc port map (a => pc, y => pcn);
  parts : entity work.pass port map (a => insn(15 downto 8), q => px);
end;
`
	mdl, err := vhdl.Translate(src)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	// The instance label "parts" collides with an MDL keyword and gets
	// the _v suffix.
	if !strings.Contains(mdl, "parts_v") {
		t.Errorf("keyword-colliding label not renamed:\n%s", mdl)
	}
	if _, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil {
		t.Fatalf("translated model does not retarget: %v\n%s", err, mdl)
	}
}
