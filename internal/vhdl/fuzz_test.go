package vhdl_test

import (
	"testing"

	"repro/internal/hdl"
	"repro/internal/vhdl"
)

// FuzzParse feeds arbitrary text through the VHDL-subset translator.  The
// contract: Translate never panics, and when it succeeds the emitted MDL
// must itself parse (the translator may not fabricate syntax errors).
func FuzzParse(f *testing.F) {
	f.Add(cpuVHDL)
	f.Add("entity cpu is end;")
	f.Add("-- comment only\n")
	f.Add("entity e is port (clk : in std_logic); end entity;")
	f.Add("architecture rtl of cpu is begin end;")
	f.Add("entity \x00 is")
	f.Fuzz(func(t *testing.T, src string) {
		mdl, err := vhdl.Translate(src)
		if err != nil {
			return
		}
		if _, err := hdl.Parse(mdl); err != nil {
			t.Fatalf("translator emitted unparseable MDL: %v\ninput:\n%s\noutput:\n%s", err, src, mdl)
		}
	})
}
