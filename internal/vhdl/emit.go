package vhdl

import (
	"fmt"
	"sort"
	"strings"
)

// mdlKeywords are MDL's case-insensitive reserved words; VHDL identifiers
// colliding with them are suffixed during emission.
var mdlKeywords = map[string]bool{
	"processor": true, "module": true, "in": true, "out": true,
	"begin": true, "end": true, "var": true, "at": true, "do": true,
	"case": true, "of": true, "else": true, "parts": true, "connect": true,
	"bus": true, "when": true, "const": true, "port": true,
	"instruction": true, "mode": true, "pc": true,
}

func sanitize(name string) string {
	if mdlKeywords[name] {
		return name + "_v"
	}
	return name
}

// sanitizeExpr renames identifier leaves in place.
func (e *expr) sanitizeIDs() {
	if e == nil {
		return
	}
	if e.id != "" {
		e.id = sanitize(e.id)
	}
	for _, k := range e.kids {
		k.sanitizeIDs()
	}
}

// emitMDL renders the design as MDL text.
func (d *design) emitMDL() (string, error) {
	var top *entity
	for _, e := range d.entities {
		if e.isStructural() {
			if top != nil {
				return "", fmt.Errorf("vhdl: more than one structural architecture (%s and %s)", top.name, e.name)
			}
			top = e
		}
	}
	if top == nil {
		return "", fmt.Errorf("vhdl: no structural architecture found")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "PROCESSOR %s;\n\n", sanitize(top.name))

	// Modules for every behavioral entity actually instantiated.
	used := make(map[string]bool)
	for _, in := range top.insts {
		used[in.entity] = true
	}
	var names []string
	for n := range used {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e, ok := d.byName[n]
		if !ok {
			return "", fmt.Errorf("vhdl: instantiated entity %q has no declaration", n)
		}
		if e.isStructural() {
			return "", fmt.Errorf("vhdl: nested structural entities are not supported (%s)", n)
		}
		if err := emitModule(&b, e); err != nil {
			return "", err
		}
	}

	// Primary ports of the top entity.
	for _, pt := range top.ports {
		if pt.isClk {
			continue
		}
		dir := "IN"
		if pt.dir == "out" {
			dir = "OUT"
		}
		fmt.Fprintf(&b, "PORT %s %s : %d;\n", dir, sanitize(pt.name), pt.width)
	}
	if len(top.ports) > 0 {
		b.WriteString("\n")
	}

	// Parts.
	b.WriteString("PARTS\n")
	for _, in := range top.insts {
		flag := ""
		switch top.roles[in.label] {
		case "instruction":
			flag = " INSTRUCTION"
		case "pc":
			flag = " PC"
		case "mode":
			flag = " MODE"
		}
		fmt.Fprintf(&b, "  %s : %s%s;\n", sanitize(in.label), sanitize(in.entity), flag)
	}
	b.WriteString("\nCONNECT\n")

	// Build the signal driver map from output associations.
	driver := make(map[string]string) // signal -> "label.port"
	for _, in := range top.insts {
		ent := d.byName[in.entity]
		for _, as := range in.assocs {
			fp := ent.portByName(as.formal)
			if fp == nil {
				return "", fmt.Errorf("vhdl: %s has no port %q", in.entity, as.formal)
			}
			if fp.dir != "out" {
				continue
			}
			if as.actual.id == "" {
				return "", fmt.Errorf("vhdl: output port %s.%s must map to a plain signal", in.label, as.formal)
			}
			driver[as.actual.id] = sanitize(in.label) + "." + sanitize(as.formal)
		}
	}
	// Top input ports drive like signals.
	for _, pt := range top.ports {
		if pt.dir == "in" && !pt.isClk {
			driver[pt.name] = sanitize(pt.name)
		}
	}

	renderActual := func(a *expr) (string, error) {
		switch {
		case a.lit:
			return fmt.Sprintf("%d", a.val), nil
		case a.id != "":
			drv, ok := driver[a.id]
			if !ok {
				return "", fmt.Errorf("vhdl: signal %q has no driver", a.id)
			}
			return drv, nil
		case a.op == "slice":
			drv, ok := driver[a.kids[0].id]
			if !ok {
				return "", fmt.Errorf("vhdl: signal %q has no driver", a.kids[0].id)
			}
			if a.hi == a.lo {
				return fmt.Sprintf("%s[%d]", drv, a.hi), nil
			}
			return fmt.Sprintf("%s[%d:%d]", drv, a.hi, a.lo), nil
		case a.op == "index" && a.kids[1].lit:
			// sig(3): a single-bit select.
			drv, ok := driver[a.kids[0].id]
			if !ok {
				return "", fmt.Errorf("vhdl: signal %q has no driver", a.kids[0].id)
			}
			return fmt.Sprintf("%s[%d]", drv, a.kids[1].val), nil
		}
		return "", fmt.Errorf("vhdl: unsupported port-map actual (must be a signal, slice or literal)")
	}

	for _, in := range top.insts {
		ent := d.byName[in.entity]
		for _, as := range in.assocs {
			fp := ent.portByName(as.formal)
			if fp.dir != "in" || fp.isClk {
				continue
			}
			src, err := renderActual(as.actual)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "  %s.%s <- %s;\n", sanitize(in.label), sanitize(as.formal), src)
		}
	}
	// Top-level output assignments: outport <= signal.
	for _, as := range top.assigns {
		if as.sel != nil || as.targetIdx != nil {
			return "", fmt.Errorf("vhdl: unsupported top-level assignment to %s", as.target)
		}
		src, err := renderActual(as.rhs)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %s <- %s;\n", sanitize(as.target), src)
	}
	b.WriteString("END.\n")
	return b.String(), nil
}

// emitModule renders one behavioral entity as an MDL MODULE.
func emitModule(b *strings.Builder, e *entity) error {
	var decls []string
	for _, pt := range e.ports {
		if pt.isClk {
			continue
		}
		dir := "IN"
		if pt.dir == "out" {
			dir = "OUT"
		}
		decls = append(decls, fmt.Sprintf("%s %s: %d", dir, sanitize(pt.name), pt.width))
	}
	fmt.Fprintf(b, "MODULE %s (%s);\n", sanitize(e.name), strings.Join(decls, "; "))
	for _, sg := range e.signals {
		if sg.size > 1 {
			fmt.Fprintf(b, "VAR %s: %d [%d];\n", sanitize(sg.name), sg.width, sg.size)
		} else {
			fmt.Fprintf(b, "VAR %s: %d;\n", sanitize(sg.name), sg.width)
		}
	}
	b.WriteString("BEGIN\n")
	for _, as := range e.assigns {
		as.rhs.sanitizeIDs()
		if as.sel != nil {
			as.sel.sanitizeIDs()
			fmt.Fprintf(b, "  %s <- CASE %s OF", sanitize(as.target), as.sel.render())
			for _, alt := range as.alts {
				alt.body.sanitizeIDs()
				fmt.Fprintf(b, " %d: %s;", alt.val, alt.body.render())
			}
			if as.others != nil {
				as.others.sanitizeIDs()
				fmt.Fprintf(b, " ELSE: %s;", as.others.render())
			}
			b.WriteString(" END;\n")
			continue
		}
		tgt := sanitize(as.target)
		if as.targetIdx != nil {
			as.targetIdx.sanitizeIDs()
			tgt = fmt.Sprintf("%s[%s]", tgt, as.targetIdx.render())
		}
		fmt.Fprintf(b, "  %s <- %s;\n", tgt, as.rhs.render())
	}
	for _, w := range e.writes {
		w.rhs.sanitizeIDs()
		tgt := sanitize(w.target)
		if w.targetIdx != nil {
			w.targetIdx.sanitizeIDs()
			tgt = fmt.Sprintf("%s[%s]", tgt, w.targetIdx.render())
		}
		if w.guard != nil {
			w.guard.sanitizeIDs()
			fmt.Fprintf(b, "  AT %s DO %s <- %s;\n", w.guard.render(), tgt, w.rhs.render())
		} else {
			fmt.Fprintf(b, "  %s <- %s;\n", tgt, w.rhs.render())
		}
	}
	b.WriteString("END;\n\n")
	return nil
}
