package ir

import (
	"strings"
	"testing"

	"repro/internal/rtl"
)

func ref(name string) *Ref         { return &Ref{Name: name} }
func idx(name string, i Expr) *Ref { return &Ref{Name: name, Index: i} }
func c(v int64) *Const             { return &Const{Val: v} }
func add(x, y Expr) *Bin           { return &Bin{Op: rtl.OpAdd, X: x, Y: y} }
func mul(x, y Expr) *Bin           { return &Bin{Op: rtl.OpMul, X: x, Y: y} }

func TestFlattenStraightLine(t *testing.T) {
	p := &Program{
		Decls: []*Decl{{Name: "x"}, {Name: "y"}},
		Body: []Stmt{
			&Assign{LHS: ref("x"), RHS: c(5)},
			&Assign{LHS: ref("y"), RHS: add(ref("x"), c(2))},
		},
	}
	as, err := Flatten(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("assigns = %d", len(as))
	}
	if as[1].String() != "y = (x + 2);" {
		t.Errorf("assign = %s", as[1])
	}
}

func TestFlattenUnrollsLoop(t *testing.T) {
	// for (i=0; i<4; i=i+1) s = s + a[i];
	p := &Program{
		Decls: []*Decl{{Name: "s"}, {Name: "a", Size: 4}},
		Body: []Stmt{
			&For{Var: "i", From: c(0), To: c(4), Step: c(1),
				Body: []Stmt{
					&Assign{LHS: ref("s"), RHS: add(ref("s"), idx("a", ref("i")))},
				}},
		},
	}
	as, err := Flatten(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 4 {
		t.Fatalf("unrolled to %d assigns", len(as))
	}
	// Induction variable substituted by constants.
	if as[2].String() != "s = (s + a[2]);" {
		t.Errorf("iteration 2 = %s", as[2])
	}
	for _, a := range as {
		if strings.Contains(a.String(), "i") && strings.Contains(a.String(), "a[i]") {
			t.Errorf("induction variable leaked: %s", a)
		}
	}
}

func TestFlattenNestedLoops(t *testing.T) {
	// for i in 0..2 { for j in 0..3 { m[i*3+j] = i + j; } }
	p := &Program{
		Decls: []*Decl{{Name: "m", Size: 6}},
		Body: []Stmt{
			&For{Var: "i", From: c(0), To: c(2), Step: c(1), Body: []Stmt{
				&For{Var: "j", From: c(0), To: c(3), Step: c(1), Body: []Stmt{
					&Assign{
						LHS: idx("m", add(mul(ref("i"), c(3)), ref("j"))),
						RHS: add(ref("i"), ref("j")),
					},
				}},
			}},
		},
	}
	as, err := Flatten(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 6 {
		t.Fatalf("assigns = %d", len(as))
	}
	// Everything folded to constants.
	if as[5].String() != "m[5] = 3;" {
		t.Errorf("last = %s", as[5])
	}
}

func TestFlattenLoopBoundsUsingOuterVar(t *testing.T) {
	p := &Program{
		Decls: []*Decl{{Name: "s"}},
		Body: []Stmt{
			&For{Var: "i", From: c(1), To: c(3), Step: c(1), Body: []Stmt{
				&For{Var: "j", From: c(0), To: ref("i"), Step: c(1), Body: []Stmt{
					&Assign{LHS: ref("s"), RHS: add(ref("s"), c(1))},
				}},
			}},
		},
	}
	as, err := Flatten(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 3 { // i=1: 1 iter; i=2: 2 iters
		t.Fatalf("assigns = %d", len(as))
	}
}

func TestFlattenErrors(t *testing.T) {
	nonConst := &Program{
		Decls: []*Decl{{Name: "n"}, {Name: "s"}},
		Body: []Stmt{
			&For{Var: "i", From: c(0), To: ref("n"), Step: c(1),
				Body: []Stmt{&Assign{LHS: ref("s"), RHS: c(0)}}},
		},
	}
	if _, err := Flatten(nonConst); err == nil || !strings.Contains(err.Error(), "non-constant") {
		t.Errorf("err = %v", err)
	}
	badStep := &Program{
		Body: []Stmt{&For{Var: "i", From: c(0), To: c(4), Step: c(0)}},
	}
	if _, err := Flatten(badStep); err == nil || !strings.Contains(err.Error(), "step") {
		t.Errorf("err = %v", err)
	}
	huge := &Program{
		Body: []Stmt{&For{Var: "i", From: c(0), To: c(1 << 20), Step: c(1)}},
	}
	if _, err := Flatten(huge); err == nil || !strings.Contains(err.Error(), "unrolls") {
		t.Errorf("err = %v", err)
	}
}

func TestInterpDotProduct(t *testing.T) {
	p := &Program{
		Decls: []*Decl{
			{Name: "a", Size: 4, Init: []int64{1, 2, 3, 4}},
			{Name: "b", Size: 4, Init: []int64{5, 6, 7, 8}},
			{Name: "s"},
		},
		Body: []Stmt{
			&Assign{LHS: ref("s"), RHS: c(0)},
			&For{Var: "i", From: c(0), To: c(4), Step: c(1), Body: []Stmt{
				&Assign{LHS: ref("s"),
					RHS: add(ref("s"), mul(idx("a", ref("i")), idx("b", ref("i"))))},
			}},
		},
	}
	env, err := Run(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := env["s"][0]; got != 1*5+2*6+3*7+4*8 {
		t.Fatalf("dot product = %d", got)
	}
}

func TestInterpWrapsAtWidth(t *testing.T) {
	p := &Program{
		Decls: []*Decl{{Name: "x", Init: []int64{30000}}, {Name: "y"}},
		Body: []Stmt{
			&Assign{LHS: ref("y"), RHS: add(ref("x"), ref("x"))},
		},
	}
	env, err := Run(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := env["y"][0]; got != rtl.Wrap(60000, 16) {
		t.Fatalf("wrapped add = %d, want %d", got, rtl.Wrap(60000, 16))
	}
}

func TestInterpErrors(t *testing.T) {
	undeclared := []*Assign{{LHS: ref("zz"), RHS: c(0)}}
	if err := Interp(undeclared, Env{}, 16); err == nil {
		t.Error("undeclared assignment accepted")
	}
	oob := &Program{
		Decls: []*Decl{{Name: "a", Size: 2}},
		Body:  []Stmt{&Assign{LHS: idx("a", c(5)), RHS: c(0)}},
	}
	if _, err := Run(oob, 16); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
	unkRead := &Program{
		Decls: []*Decl{{Name: "a"}},
		Body:  []Stmt{&Assign{LHS: ref("a"), RHS: ref("ghost")}},
	}
	if _, err := Run(unkRead, 16); err == nil {
		t.Error("undeclared read accepted")
	}
}

func TestFoldAndStrings(t *testing.T) {
	e := Fold(&Bin{Op: rtl.OpMul, X: c(6), Y: c(7)})
	if cc, ok := e.(*Const); !ok || cc.Val != 42 {
		t.Errorf("fold = %v", e)
	}
	u := Fold(&Un{Op: rtl.OpNeg, X: c(5)})
	if cc, ok := u.(*Const); !ok || cc.Val != -5 {
		t.Errorf("fold neg = %v", u)
	}
	// Non-constant untouched.
	if _, ok := Fold(add(ref("x"), c(1))).(*Bin); !ok {
		t.Error("non-const folded away")
	}
	if (&Un{Op: rtl.OpNeg, X: ref("x")}).String() != "-(x)" {
		t.Error("neg rendering")
	}
	f := &For{Var: "i", From: c(0), To: c(4), Step: c(1),
		Body: []Stmt{&Assign{LHS: ref("s"), RHS: c(0)}}}
	if !strings.Contains(f.String(), "for (i = 0; i < 4;") {
		t.Errorf("for rendering = %s", f)
	}
}

func TestNewEnvInitAndDecl(t *testing.T) {
	p := &Program{Decls: []*Decl{
		{Name: "x", Init: []int64{70000}},
		{Name: "a", Size: 3, Init: []int64{1, 2}},
	}}
	env := NewEnv(p, 16)
	if env["x"][0] != rtl.Wrap(70000, 16) {
		t.Error("scalar init not wrapped")
	}
	if len(env["a"]) != 3 || env["a"][1] != 2 || env["a"][2] != 0 {
		t.Errorf("array init = %v", env["a"])
	}
	d := &Decl{Name: "a", Size: 3}
	if !d.IsArray() || d.Cells() != 3 {
		t.Error("array decl queries wrong")
	}
	s := &Decl{Name: "x"}
	if s.IsArray() || s.Cells() != 1 {
		t.Error("scalar decl queries wrong")
	}
}
