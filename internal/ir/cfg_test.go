package ir

import (
	"strings"
	"testing"

	"repro/internal/rtl"
)

func lt(x, y Expr) Expr { return &Bin{Op: rtl.OpLt, X: x, Y: y} }

func TestBuildCFGStraightLine(t *testing.T) {
	p := &Program{
		Decls: []*Decl{{Name: "x"}},
		Body:  []Stmt{&Assign{LHS: ref("x"), RHS: c(1)}},
	}
	cfg, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(cfg.Blocks))
	}
	if _, ok := cfg.Blocks[0].Term.(*Halt); !ok {
		t.Fatalf("terminator = %T", cfg.Blocks[0].Term)
	}
}

func TestBuildCFGIf(t *testing.T) {
	p := &Program{
		Decls: []*Decl{{Name: "x"}, {Name: "y"}},
		Body: []Stmt{
			&If{Cond: lt(ref("x"), c(5)),
				Then: []Stmt{&Assign{LHS: ref("y"), RHS: c(1)}},
				Else: []Stmt{&Assign{LHS: ref("y"), RHS: c(2)}}},
			&Assign{LHS: ref("x"), RHS: c(9)},
		},
	}
	cfg, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	br, ok := cfg.Blocks[0].Term.(*Branch)
	if !ok {
		t.Fatalf("entry terminator = %T", cfg.Blocks[0].Term)
	}
	thenB, elseB := cfg.Blocks[br.Then], cfg.Blocks[br.Else]
	if len(thenB.Assigns) != 1 || len(elseB.Assigns) != 1 {
		t.Fatal("branch targets wrong")
	}
	tg, ok := thenB.Term.(*Goto)
	if !ok {
		t.Fatalf("then terminator = %T", thenB.Term)
	}
	eg := elseB.Term.(*Goto)
	if tg.Target != eg.Target {
		t.Fatal("branches do not rejoin")
	}
	join := cfg.Blocks[tg.Target]
	if len(join.Assigns) != 1 {
		t.Fatal("join block missing trailing assignment")
	}
}

func TestBuildCFGWhile(t *testing.T) {
	p := &Program{
		Decls: []*Decl{{Name: "i"}},
		Body: []Stmt{
			&While{Cond: lt(ref("i"), c(3)),
				Body: []Stmt{&Assign{LHS: ref("i"),
					RHS: &Bin{Op: rtl.OpAdd, X: ref("i"), Y: c(1)}}}},
		},
	}
	cfg, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	// entry -> head(branch) -> body -> head; exit.
	head := cfg.Blocks[cfg.Blocks[0].Term.(*Goto).Target]
	br := head.Term.(*Branch)
	body := cfg.Blocks[br.Then]
	back := body.Term.(*Goto)
	if back.Target != head.ID {
		t.Fatal("loop back edge missing")
	}
	if _, ok := cfg.Blocks[br.Else].Term.(*Halt); !ok {
		t.Fatal("exit does not halt")
	}
}

func TestBuildCFGForMaterializesInduction(t *testing.T) {
	p := &Program{
		Decls: []*Decl{{Name: "s"}},
		Body: []Stmt{
			&For{Var: "k", From: c(0), To: c(4), Step: c(1),
				Body: []Stmt{&Assign{LHS: ref("s"),
					RHS: &Bin{Op: rtl.OpAdd, X: ref("s"), Y: ref("k")}}}},
		},
	}
	cfg, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range cfg.Decls {
		if d.Name == "k" {
			found = true
		}
	}
	if !found {
		t.Fatal("induction variable not declared")
	}
	env := NewEnv(&Program{Decls: cfg.Decls}, 16)
	if err := cfg.Interp(env, 16); err != nil {
		t.Fatal(err)
	}
	if env["s"][0] != 0+1+2+3 {
		t.Errorf("s = %d", env["s"][0])
	}
	if env["k"][0] != 4 {
		t.Errorf("k = %d", env["k"][0])
	}
}

func TestCFGInterpMatchesFlattenOnLoops(t *testing.T) {
	// A program both paths can run: results must agree.
	p := &Program{
		Decls: []*Decl{{Name: "s"}, {Name: "a", Size: 4, Init: []int64{3, 1, 4, 1}}},
		Body: []Stmt{
			&Assign{LHS: ref("s"), RHS: c(0)},
			&For{Var: "i", From: c(0), To: c(4), Step: c(1),
				Body: []Stmt{&Assign{LHS: ref("s"),
					RHS: &Bin{Op: rtl.OpAdd, X: ref("s"), Y: idx("a", ref("i"))}}}},
		},
	}
	flat, err := Run(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfgEnv, err := RunCFG(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if flat["s"][0] != cfgEnv["s"][0] {
		t.Fatalf("flatten %d != cfg %d", flat["s"][0], cfgEnv["s"][0])
	}
}

func TestCFGNonTermination(t *testing.T) {
	p := &Program{
		Decls: []*Decl{{Name: "x"}},
		Body: []Stmt{
			&While{Cond: &Bin{Op: rtl.OpEq, X: ref("x"), Y: c(0)},
				Body: []Stmt{&Assign{LHS: ref("x"), RHS: c(0)}}},
		},
	}
	if _, err := RunCFG(p, 16); err == nil || !strings.Contains(err.Error(), "steps") {
		t.Errorf("err = %v", err)
	}
}

func TestHasControlFlow(t *testing.T) {
	plain := &Program{Body: []Stmt{&Assign{LHS: ref("x"), RHS: c(0)}}}
	if HasControlFlow(plain) {
		t.Error("plain program reported control flow")
	}
	nested := &Program{Body: []Stmt{
		&For{Var: "i", From: c(0), To: c(2), Step: c(1),
			Body: []Stmt{&If{Cond: c(1), Then: []Stmt{}}}},
	}}
	if !HasControlFlow(nested) {
		t.Error("nested if missed")
	}
	loop := &Program{Body: []Stmt{&While{Cond: c(1)}}}
	if !HasControlFlow(loop) {
		t.Error("while missed")
	}
}

func TestIfWhileStrings(t *testing.T) {
	s := (&If{Cond: c(1), Then: []Stmt{&Assign{LHS: ref("x"), RHS: c(2)}},
		Else: []Stmt{&Assign{LHS: ref("x"), RHS: c(3)}}}).String()
	if !strings.Contains(s, "if (1)") || !strings.Contains(s, "else") {
		t.Errorf("if rendering: %s", s)
	}
	w := (&While{Cond: c(1), Body: []Stmt{&Assign{LHS: ref("x"), RHS: c(2)}}}).String()
	if !strings.Contains(w, "while (1)") {
		t.Errorf("while rendering: %s", w)
	}
}
