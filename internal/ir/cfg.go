package ir

// Control flow: structured if/while statements and their lowering to a
// control-flow graph of basic blocks.  The paper's evaluation operates on
// basic blocks (loops unrolled at compile time); this is the "standard
// jump instructions" extension of its processor class (table 1): counted
// and condition-controlled loops compile to the PC-destination RT
// templates instruction-set extraction discovers, instead of being
// unrolled.

import (
	"fmt"
	"strings"

	"repro/internal/rtl"
)

// If is "if (cond) { Then } else { Else }"; Cond is any 1-bit expression
// (typically a comparison).
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While is "while (cond) { Body }".
type While struct {
	Cond Expr
	Body []Stmt
}

func (*If) stmt()    {}
func (*While) stmt() {}

func (s *If) String() string {
	out := fmt.Sprintf("if (%s) { %s }", s.Cond, stmtsString(s.Then))
	if len(s.Else) > 0 {
		out += fmt.Sprintf(" else { %s }", stmtsString(s.Else))
	}
	return out
}

func (s *While) String() string {
	return fmt.Sprintf("while (%s) { %s }", s.Cond, stmtsString(s.Body))
}

func stmtsString(stmts []Stmt) string {
	parts := make([]string, len(stmts))
	for i, s := range stmts {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Terminator ends a basic block.
type Terminator interface{ term() }

// Goto transfers unconditionally to another block.
type Goto struct{ Target int }

// Branch tests Cond: true goes to Then, false to Else.
type Branch struct {
	Cond Expr
	Then int
	Else int
}

// Halt ends the program.
type Halt struct{}

func (*Goto) term()   {}
func (*Branch) term() {}
func (*Halt) term()   {}

// Block is one basic block: straight-line assignments plus a terminator.
type Block struct {
	ID      int
	Assigns []*Assign
	Term    Terminator
}

// CFG is a lowered program: basic blocks with explicit control flow.
// Block 0 is the entry.
type CFG struct {
	Decls  []*Decl
	Blocks []*Block
}

// HasControlFlow reports whether the program contains if/while statements
// (callers without branch support fall back to Flatten).
func HasControlFlow(p *Program) bool { return hasCF(p.Body) }

func hasCF(stmts []Stmt) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *If:
			return true
		case *While:
			return true
		case *For:
			if hasCF(st.Body) {
				return true
			}
		}
	}
	return false
}

// BuildCFG lowers a program to basic blocks.  For-loops become genuine
// loops (induction variable materialized as a synthetic declaration), so
// nothing is unrolled.
func BuildCFG(p *Program) (*CFG, error) {
	b := &cfgBuilder{decls: append([]*Decl(nil), p.Decls...)}
	declared := make(map[string]bool)
	for _, d := range p.Decls {
		declared[d.Name] = true
	}
	b.declared = declared
	entry := b.newBlock()
	last, err := b.lower(p.Body, entry)
	if err != nil {
		return nil, err
	}
	last.Term = &Halt{}
	return &CFG{Decls: b.decls, Blocks: b.blocks}, nil
}

type cfgBuilder struct {
	blocks   []*Block
	decls    []*Decl
	declared map[string]bool
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{ID: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

// lower appends stmts starting in cur, returning the block control falls
// out of (its Term left nil for the caller to fill).
func (b *cfgBuilder) lower(stmts []Stmt, cur *Block) (*Block, error) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *Assign:
			cur.Assigns = append(cur.Assigns, st)

		case *If:
			thenB := b.newBlock()
			var elseB *Block
			join := b.newBlock()
			if len(st.Else) > 0 {
				elseB = b.newBlock()
				cur.Term = &Branch{Cond: st.Cond, Then: thenB.ID, Else: elseB.ID}
			} else {
				cur.Term = &Branch{Cond: st.Cond, Then: thenB.ID, Else: join.ID}
			}
			tEnd, err := b.lower(st.Then, thenB)
			if err != nil {
				return nil, err
			}
			tEnd.Term = &Goto{Target: join.ID}
			if elseB != nil {
				eEnd, err := b.lower(st.Else, elseB)
				if err != nil {
					return nil, err
				}
				eEnd.Term = &Goto{Target: join.ID}
			}
			cur = join

		case *While:
			head := b.newBlock()
			body := b.newBlock()
			exit := b.newBlock()
			cur.Term = &Goto{Target: head.ID}
			head.Term = &Branch{Cond: st.Cond, Then: body.ID, Else: exit.ID}
			bEnd, err := b.lower(st.Body, body)
			if err != nil {
				return nil, err
			}
			bEnd.Term = &Goto{Target: head.ID}
			cur = exit

		case *For:
			// i = From; while (i < To) { body; i = i + Step }
			if !b.declared[st.Var] {
				b.decls = append(b.decls, &Decl{Name: st.Var})
				b.declared[st.Var] = true
			}
			iv := &Ref{Name: st.Var}
			cur.Assigns = append(cur.Assigns, &Assign{LHS: iv, RHS: st.From})
			loop := &While{
				Cond: &Bin{Op: rtl.OpLt, X: &Ref{Name: st.Var}, Y: st.To},
				Body: append(append([]Stmt(nil), st.Body...),
					&Assign{LHS: iv,
						RHS: &Bin{Op: rtl.OpAdd, X: &Ref{Name: st.Var}, Y: st.Step}}),
			}
			next, err := b.lower([]Stmt{loop}, cur)
			if err != nil {
				return nil, err
			}
			cur = next

		default:
			return nil, fmt.Errorf("ir: cannot lower %T to a CFG", s)
		}
	}
	return cur, nil
}

// MaxCFGSteps bounds CFG interpretation (runaway-loop protection).
const MaxCFGSteps = 1 << 20

// Interp executes the CFG at the given word width, mutating env.
func (c *CFG) Interp(env Env, width int) error {
	steps := 0
	cur := 0
	for {
		blk := c.Blocks[cur]
		if err := Interp(blk.Assigns, env, width); err != nil {
			return err
		}
		steps += len(blk.Assigns) + 1
		if steps > MaxCFGSteps {
			return fmt.Errorf("ir: CFG interpretation exceeded %d steps (non-terminating loop?)", MaxCFGSteps)
		}
		switch t := blk.Term.(type) {
		case *Halt:
			return nil
		case *Goto:
			cur = t.Target
		case *Branch:
			v, err := evalExpr(t.Cond, env, width)
			if err != nil {
				return err
			}
			if v != 0 {
				cur = t.Then
			} else {
				cur = t.Else
			}
		default:
			return fmt.Errorf("ir: block %d has no terminator", cur)
		}
	}
}

// RunCFG builds the CFG, interprets it, and returns the final environment.
func RunCFG(p *Program, width int) (Env, error) {
	cfg, err := BuildCFG(p)
	if err != nil {
		return nil, err
	}
	env := NewEnv(&Program{Decls: cfg.Decls}, width)
	if err := cfg.Interp(env, width); err != nil {
		return nil, err
	}
	return env, nil
}
