// Package ir defines the compiler's intermediate representation: programs
// over fixed-point scalar and array variables, with assignments and
// counted loops.
//
// RECORD's code selection operates on expression trees (ETs) in basic
// blocks (paper section 3.1): unary/binary trees whose inner nodes are
// operators and whose leaves are program variables, inputs or constants,
// each tree evaluated into an explicit destination.  Flatten lowers a
// program to that form by unrolling counted loops (substituting the
// induction variable) and folding constants, producing a straight-line
// list of assignments.  Interp executes that list with the same
// fixed-point semantics as the hardware (rtl.EvalBin), serving as the
// end-to-end oracle against the netlist simulator.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/rtl"
)

// Program is a RecC compilation unit.
type Program struct {
	Decls []*Decl
	Body  []Stmt
}

// Decl declares a scalar (Size 0) or array variable, optionally with
// initial values.
type Decl struct {
	Name string
	Size int // 0 for scalars; else element count
	Init []int64
}

// IsArray reports whether the declaration is an array.
func (d *Decl) IsArray() bool { return d.Size > 0 }

// Cells returns the number of memory cells the variable occupies.
func (d *Decl) Cells() int {
	if d.Size == 0 {
		return 1
	}
	return d.Size
}

// Stmt is a program statement.
type Stmt interface {
	stmt()
	String() string
}

// Assign is "lhs = rhs;".
type Assign struct {
	LHS *Ref
	RHS Expr
}

// For is a counted loop "for (v = From; v < To; v = v + Step) { Body }".
// Bounds must fold to constants for Flatten to unroll the loop.
type For struct {
	Var      string
	From, To Expr
	Step     Expr
	Body     []Stmt
}

func (*Assign) stmt() {}
func (*For) stmt()    {}

func (a *Assign) String() string { return fmt.Sprintf("%s = %s;", a.LHS, a.RHS) }

func (f *For) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "for (%s = %s; %s < %s; %s = %s + %s) { ",
		f.Var, f.From, f.Var, f.To, f.Var, f.Var, f.Step)
	for _, s := range f.Body {
		b.WriteString(s.String())
		b.WriteByte(' ')
	}
	b.WriteString("}")
	return b.String()
}

// Expr is an IR expression.
type Expr interface {
	expr()
	String() string
}

// Const is an integer literal.
type Const struct{ Val int64 }

// Ref references a scalar variable (Index nil) or array element.
type Ref struct {
	Name  string
	Index Expr
}

// Bin applies a binary operator.
type Bin struct {
	Op   rtl.Op
	X, Y Expr
}

// Un applies a unary operator.
type Un struct {
	Op rtl.Op
	X  Expr
}

func (*Const) expr() {}
func (*Ref) expr()   {}
func (*Bin) expr()   {}
func (*Un) expr()    {}

func (c *Const) String() string { return fmt.Sprintf("%d", c.Val) }

func (r *Ref) String() string {
	if r.Index != nil {
		return fmt.Sprintf("%s[%s]", r.Name, r.Index)
	}
	return r.Name
}

func (b *Bin) String() string { return fmt.Sprintf("(%s %s %s)", b.X, b.Op, b.Y) }

func (u *Un) String() string {
	if u.Op == rtl.OpNeg {
		return fmt.Sprintf("-(%s)", u.X)
	}
	return fmt.Sprintf("%s(%s)", u.Op, u.X)
}

// subst returns e with every reference to name replaced by val, folding
// constants as it goes.
func subst(e Expr, name string, val int64) Expr {
	switch x := e.(type) {
	case *Const:
		return x
	case *Ref:
		if x.Name == name && x.Index == nil {
			return &Const{Val: val}
		}
		if x.Index != nil {
			return &Ref{Name: x.Name, Index: subst(x.Index, name, val)}
		}
		return x
	case *Bin:
		return fold(&Bin{Op: x.Op, X: subst(x.X, name, val), Y: subst(x.Y, name, val)})
	case *Un:
		return fold(&Un{Op: x.Op, X: subst(x.X, name, val)})
	}
	return e
}

// fold performs constant folding at 64-bit precision (final wrapping
// happens at code generation / interpretation width).
func fold(e Expr) Expr {
	switch x := e.(type) {
	case *Bin:
		cx, okx := x.X.(*Const)
		cy, oky := x.Y.(*Const)
		if okx && oky {
			return &Const{Val: rtl.EvalBin(x.Op, cx.Val, cy.Val, 64)}
		}
	case *Un:
		if c, ok := x.X.(*Const); ok {
			return &Const{Val: rtl.EvalUn(x.Op, c.Val, 64)}
		}
	}
	return e
}

// Fold exposes constant folding for frontends.
func Fold(e Expr) Expr { return fold(e) }

// constVal extracts a constant value from a (folded) expression.
func constVal(e Expr) (int64, bool) {
	c, ok := fold(e).(*Const)
	if !ok {
		return 0, false
	}
	return c.Val, true
}

// MaxUnroll bounds loop unrolling.
const MaxUnroll = 4096

// Flatten lowers the program body to a straight-line list of assignments:
// counted loops are unrolled with their induction variable substituted per
// iteration, and constants folded.
func Flatten(p *Program) ([]*Assign, error) {
	var out []*Assign
	err := flattenStmts(p.Body, nil, &out)
	return out, err
}

type binding struct {
	name string
	val  int64
}

func flattenStmts(stmts []Stmt, env []binding, out *[]*Assign) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *Assign:
			lhs := &Ref{Name: st.LHS.Name, Index: st.LHS.Index}
			rhs := st.RHS
			for _, b := range env {
				if lhs.Index != nil {
					lhs = &Ref{Name: lhs.Name, Index: subst(lhs.Index, b.name, b.val)}
				}
				rhs = subst(rhs, b.name, b.val)
			}
			*out = append(*out, &Assign{LHS: lhs, RHS: fold(rhs)})
		case *For:
			from, to, step := st.From, st.To, st.Step
			for _, b := range env {
				from = subst(from, b.name, b.val)
				to = subst(to, b.name, b.val)
				step = subst(step, b.name, b.val)
			}
			f, ok1 := constVal(from)
			t, ok2 := constVal(to)
			inc, ok3 := constVal(step)
			if !ok1 || !ok2 || !ok3 {
				return fmt.Errorf("ir: loop over %s has non-constant bounds (%s; %s; %s)",
					st.Var, from, to, step)
			}
			if inc <= 0 {
				return fmt.Errorf("ir: loop over %s has non-positive step %d", st.Var, inc)
			}
			if (t-f+inc-1)/inc > MaxUnroll {
				return fmt.Errorf("ir: loop over %s unrolls to more than %d iterations", st.Var, MaxUnroll)
			}
			for i := f; i < t; i += inc {
				if err := flattenStmts(st.Body, append(env, binding{st.Var, i}), out); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("ir: unknown statement %T", s)
		}
	}
	return nil
}

// Env is a variable store for interpretation: one slice per declaration.
type Env map[string][]int64

// NewEnv builds the initial environment from declarations (missing initial
// values are zero).
func NewEnv(p *Program, width int) Env {
	env := make(Env)
	for _, d := range p.Decls {
		cells := make([]int64, d.Cells())
		for i, v := range d.Init {
			if i < len(cells) {
				cells[i] = rtl.Wrap(v, width)
			}
		}
		env[d.Name] = cells
	}
	return env
}

// Interp executes a flattened assignment list at the given word width,
// mutating env.  Out-of-range indices and unknown variables are errors.
func Interp(assigns []*Assign, env Env, width int) error {
	for _, a := range assigns {
		v, err := evalExpr(a.RHS, env, width)
		if err != nil {
			return err
		}
		cells, ok := env[a.LHS.Name]
		if !ok {
			return fmt.Errorf("ir: assignment to undeclared %s", a.LHS.Name)
		}
		idx := int64(0)
		if a.LHS.Index != nil {
			idx, err = evalExpr(a.LHS.Index, env, width)
			if err != nil {
				return err
			}
		}
		if idx < 0 || idx >= int64(len(cells)) {
			return fmt.Errorf("ir: index %d out of range for %s[%d]", idx, a.LHS.Name, len(cells))
		}
		cells[idx] = v
	}
	return nil
}

func evalExpr(e Expr, env Env, width int) (int64, error) {
	switch x := e.(type) {
	case *Const:
		return rtl.Wrap(x.Val, width), nil
	case *Ref:
		cells, ok := env[x.Name]
		if !ok {
			return 0, fmt.Errorf("ir: undeclared variable %s", x.Name)
		}
		idx := int64(0)
		if x.Index != nil {
			var err error
			idx, err = evalExpr(x.Index, env, width)
			if err != nil {
				return 0, err
			}
		}
		if idx < 0 || idx >= int64(len(cells)) {
			return 0, fmt.Errorf("ir: index %d out of range for %s[%d]", idx, x.Name, len(cells))
		}
		return cells[idx], nil
	case *Bin:
		a, err := evalExpr(x.X, env, width)
		if err != nil {
			return 0, err
		}
		b, err := evalExpr(x.Y, env, width)
		if err != nil {
			return 0, err
		}
		return rtl.EvalBin(x.Op, a, b, width), nil
	case *Un:
		a, err := evalExpr(x.X, env, width)
		if err != nil {
			return 0, err
		}
		return rtl.EvalUn(x.Op, a, width), nil
	}
	return 0, fmt.Errorf("ir: unknown expression %T", e)
}

// Run flattens and interprets a program in one step, returning the final
// environment.
func Run(p *Program, width int) (Env, error) {
	assigns, err := Flatten(p)
	if err != nil {
		return nil, err
	}
	env := NewEnv(p, width)
	if err := Interp(assigns, env, width); err != nil {
		return nil, err
	}
	return env, nil
}
