// Package opt implements peephole optimization of sequential RT code
// between code selection and compaction: redundant-load elimination (a
// register reloaded from a memory cell whose value it already mirrors) and
// dead-store elimination (a store overwritten by a later store to the same
// cell with no intervening read).
//
// Code selection works one expression tree at a time with all program
// variables bound to memory, so accumulator values are stored and
// immediately reloaded between consecutive statements (e.g. the running
// sum of a multiply-accumulate loop).  The paper's per-basic-block quality
// relies on removing exactly this traffic before compaction packs the
// surviving RTs.
package opt

import (
	"repro/internal/code"
	"repro/internal/rtl"
)

// Stats reports what Optimize removed.
type Stats struct {
	LoadsRemoved  int
	StoresRemoved int
	Passes        int
}

// Optimize returns a new sequence with redundant loads and dead stores
// removed, iterating to a fixpoint.
func Optimize(seq *code.Seq) (*code.Seq, Stats) {
	var st Stats
	cur := seq.Instrs
	for {
		st.Passes++
		afterLoads, nl := removeRedundantLoads(cur)
		afterStores, ns := removeDeadStores(afterLoads)
		st.LoadsRemoved += nl
		st.StoresRemoved += ns
		cur = afterStores
		if nl == 0 && ns == 0 {
			break
		}
	}
	out := &code.Seq{}
	for _, in := range cur {
		out.Append(in)
	}
	return out, st
}

// loadOf reports whether in is a plain register load "reg := mem[addr]"
// with a concrete address.
func loadOf(in *code.Instr) (reg string, cell code.Loc, ok bool) {
	t := in.Template
	if t.DestPort || t.DestAddr != nil {
		return "", code.Loc{}, false
	}
	src := t.Src
	if src.Kind != rtl.Read || src.Addr() == nil {
		return "", code.Loc{}, false
	}
	a, known := in.ResolveAddr(src.Addr())
	if !known {
		return "", code.Loc{}, false
	}
	return t.Dest, code.Loc{Storage: src.Storage, Addr: a, AddrKnown: true}, true
}

// storeOf reports whether in is a plain store "mem[addr] := reg" with a
// concrete address.
func storeOf(in *code.Instr) (reg string, cell code.Loc, ok bool) {
	t := in.Template
	if t.DestPort || t.DestAddr == nil {
		return "", code.Loc{}, false
	}
	if t.Src.Kind != rtl.Read || t.Src.Addr() != nil {
		return "", code.Loc{}, false
	}
	a, known := in.ResolveAddr(t.DestAddr)
	if !known {
		return "", code.Loc{}, false
	}
	return t.Src.Storage, code.Loc{Storage: t.Dest, Addr: a, AddrKnown: true}, true
}

// mirror is a known equality between a register and a memory cell.
type mirror struct {
	reg  string
	cell code.Loc
}

// removeRedundantLoads deletes loads whose register already mirrors the
// loaded cell.
func removeRedundantLoads(instrs []*code.Instr) ([]*code.Instr, int) {
	var facts []mirror
	removed := 0
	var out []*code.Instr

	kill := func(pred func(mirror) bool) {
		kept := facts[:0]
		for _, f := range facts {
			if !pred(f) {
				kept = append(kept, f)
			}
		}
		facts = kept
	}
	holds := func(reg string, cell code.Loc) bool {
		for _, f := range facts {
			if f.reg == reg && f.cell == cell {
				return true
			}
		}
		return false
	}

	for _, in := range instrs {
		if reg, cell, ok := loadOf(in); ok {
			if holds(reg, cell) {
				removed++
				continue // the register already holds this value
			}
			kill(func(f mirror) bool { return f.reg == reg })
			facts = append(facts, mirror{reg, cell})
			out = append(out, in)
			continue
		}
		if reg, cell, ok := storeOf(in); ok {
			kill(func(f mirror) bool { return f.cell.Overlaps(cell) })
			facts = append(facts, mirror{reg, cell})
			out = append(out, in)
			continue
		}
		// Generic instruction: its definition invalidates mirrors of the
		// written register/cells.
		def := in.Def()
		kill(func(f mirror) bool {
			return f.reg == def.Storage || f.cell.Overlaps(def)
		})
		out = append(out, in)
	}
	return out, removed
}

// removeDeadStores deletes stores overwritten by a later store to the same
// cell with no intervening (possible) read of that cell.
func removeDeadStores(instrs []*code.Instr) ([]*code.Instr, int) {
	removed := 0
	keep := make([]bool, len(instrs))
	// overwritten maps cells that will be stored again before any read.
	type cellKey struct {
		storage string
		addr    int64
	}
	overwritten := make(map[cellKey]bool)

	for i := len(instrs) - 1; i >= 0; i-- {
		in := instrs[i]
		keep[i] = true
		if _, cell, ok := storeOf(in); ok {
			key := cellKey{cell.Storage, cell.Addr}
			if overwritten[key] {
				keep[i] = false
				removed++
				continue
			}
			overwritten[key] = true
			// The store reads its source register, not memory; reads of
			// the destination cell are not implied.
			continue
		}
		// Any read of a cell clears its overwritten status; unknown
		// addresses clear the whole storage.
		for _, u := range in.Uses() {
			if u.AddrKnown {
				delete(overwritten, cellKey{u.Storage, u.Addr})
			} else {
				for k := range overwritten {
					if k.storage == u.Storage {
						delete(overwritten, k)
					}
				}
			}
		}
		// A non-store write with unknown address also invalidates.
		def := in.Def()
		if !def.AddrKnown {
			for k := range overwritten {
				if k.storage == def.Storage {
					delete(overwritten, k)
				}
			}
		} else if def.Storage != "" {
			// A full overwrite by a non-store instruction (e.g. a
			// register write) does not make earlier *memory* stores dead,
			// so only memory-destination instructions matter; those are
			// handled by storeOf above or by generic templates writing
			// memory, which count as overwrites only when plain stores.
			// Be conservative: a generic memory write with known address
			// clears the flag (we cannot prove the earlier store dead
			// against a non-move write... it actually overwrites too, but
			// conservatism costs only a kept store).
			if in.Template.DestAddr != nil {
				delete(overwritten, cellKey{def.Storage, def.Addr})
			}
		}
	}
	var out []*code.Instr
	for i, in := range instrs {
		if keep[i] {
			out = append(out, in)
		}
	}
	return out, removed
}
