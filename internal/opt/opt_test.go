package opt

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/code"
	"repro/internal/rtl"
)

// Test fixtures: a tiny accumulator machine's worth of templates.
type fixture struct {
	m     *bdd.Manager
	load  *rtl.Template // acc := mem[IW]
	store *rtl.Template // mem[IW] := acc
	add   *rtl.Template // acc := acc + mem[IW]
	tld   *rtl.Template // t := mem[IW]
}

func newFixture() *fixture {
	m := bdd.New()
	cond := rtl.ExecCond{Static: m.True()}
	imm := func() *rtl.Expr { return rtl.NewInsnField(7, 0) }
	return &fixture{
		m: m,
		load: &rtl.Template{Dest: "acc.r", Width: 16, Cond: cond,
			Src: rtl.NewRead("mem.m", 16, imm())},
		store: &rtl.Template{Dest: "mem.m", DestAddr: imm(), Width: 16, Cond: cond,
			Src: rtl.NewRead("acc.r", 16, nil)},
		add: &rtl.Template{Dest: "acc.r", Width: 16, Cond: cond,
			Src: rtl.NewOp(rtl.OpAdd, 16,
				rtl.NewRead("acc.r", 16, nil), rtl.NewRead("mem.m", 16, imm()))},
		tld: &rtl.Template{Dest: "t.r", Width: 16, Cond: cond,
			Src: rtl.NewRead("mem.m", 16, imm())},
	}
}

func instr(t *rtl.Template, addr int64) *code.Instr {
	return &code.Instr{Template: t, Fields: []code.Field{{Hi: 7, Lo: 0, Val: addr}}}
}

func seqOf(instrs ...*code.Instr) *code.Seq {
	s := &code.Seq{}
	for _, in := range instrs {
		s.Append(in)
	}
	return s
}

func TestRedundantLoadAfterStore(t *testing.T) {
	f := newFixture()
	// acc := mem[3]; mem[5] := acc; acc := mem[5]  -> reload removed
	s := seqOf(instr(f.load, 3), instr(f.store, 5), instr(f.load, 5))
	out, st := Optimize(s)
	if st.LoadsRemoved != 1 {
		t.Fatalf("loads removed = %d, want 1", st.LoadsRemoved)
	}
	if out.Len() != 2 {
		t.Fatalf("len = %d:\n%s", out.Len(), out)
	}
}

func TestRedundantLoadAfterLoad(t *testing.T) {
	f := newFixture()
	s := seqOf(instr(f.load, 3), instr(f.load, 3))
	out, st := Optimize(s)
	if st.LoadsRemoved != 1 || out.Len() != 1 {
		t.Fatalf("removed=%d len=%d", st.LoadsRemoved, out.Len())
	}
}

func TestLoadNotRemovedAfterClobber(t *testing.T) {
	f := newFixture()
	// acc := mem[3]; acc := acc + mem[4]; acc := mem[3]  -> keep reload
	s := seqOf(instr(f.load, 3), instr(f.add, 4), instr(f.load, 3))
	out, st := Optimize(s)
	if st.LoadsRemoved != 0 || out.Len() != 3 {
		t.Fatalf("removed=%d len=%d:\n%s", st.LoadsRemoved, out.Len(), out)
	}
}

func TestLoadNotRemovedAfterMemWrite(t *testing.T) {
	f := newFixture()
	// acc := mem[3]; t := mem[3]; mem[3] := acc ... t load of same cell ok;
	// then a store to cell 3 invalidates the t fact.
	s := seqOf(instr(f.load, 3), instr(f.store, 3), instr(f.load, 3))
	out, st := Optimize(s)
	// The final load is redundant: mem[3] := acc re-establishes acc==mem[3].
	if st.LoadsRemoved != 1 {
		t.Fatalf("removed=%d:\n%s", st.LoadsRemoved, out)
	}
	// But a load into a different register after the same cell is rewritten
	// by a non-mirrored value must stay.
	s2 := seqOf(instr(f.tld, 3), instr(f.load, 9), instr(f.store, 3), instr(f.tld, 3))
	out2, st2 := Optimize(s2)
	want := 4 // t := mem[3] fact dies when mem[3] is overwritten by acc
	if out2.Len() != want || st2.LoadsRemoved != 0 {
		t.Fatalf("len=%d removed=%d:\n%s", out2.Len(), st2.LoadsRemoved, out2)
	}
}

func TestDeadStoreRemoved(t *testing.T) {
	f := newFixture()
	// mem[5] := acc; acc := mem[2]; mem[5] := acc  -> first store dead
	s := seqOf(instr(f.store, 5), instr(f.load, 2), instr(f.store, 5))
	out, st := Optimize(s)
	if st.StoresRemoved != 1 || out.Len() != 2 {
		t.Fatalf("removed=%d len=%d:\n%s", st.StoresRemoved, out.Len(), out)
	}
}

func TestStoreKeptWhenRead(t *testing.T) {
	f := newFixture()
	// mem[5] := acc; acc := acc + mem[5]; mem[5] := acc  -> all kept... the
	// reload is via add (reads mem[5]) so the first store is live.
	s := seqOf(instr(f.store, 5), instr(f.add, 5), instr(f.store, 5))
	out, st := Optimize(s)
	if st.StoresRemoved != 0 || out.Len() != 3 {
		t.Fatalf("removed=%d len=%d:\n%s", st.StoresRemoved, out.Len(), out)
	}
}

func TestFinalStoreAlwaysKept(t *testing.T) {
	f := newFixture()
	s := seqOf(instr(f.load, 1), instr(f.store, 5))
	out, st := Optimize(s)
	if st.StoresRemoved != 0 || out.Len() != 2 {
		t.Fatalf("live-out store removed: %d len=%d", st.StoresRemoved, out.Len())
	}
}

func TestMacPatternShrinks(t *testing.T) {
	f := newFixture()
	// Three taps of: acc := mem[s]; acc := acc + mem[k]; mem[s] := acc.
	var ins []*code.Instr
	ins = append(ins, instr(f.load, 10), instr(f.add, 20), instr(f.store, 10))
	ins = append(ins, instr(f.load, 10), instr(f.add, 21), instr(f.store, 10))
	ins = append(ins, instr(f.load, 10), instr(f.add, 22), instr(f.store, 10))
	out, st := Optimize(seqOf(ins...))
	// Reloads of s removed (2), intermediate stores dead (2):
	// load, add, add, add, store.
	if out.Len() != 5 {
		t.Fatalf("len = %d (loads-removed=%d stores-removed=%d):\n%s",
			out.Len(), st.LoadsRemoved, st.StoresRemoved, out)
	}
}

func TestFixpointIteration(t *testing.T) {
	f := newFixture()
	// Removing the reload exposes the dead store on the next pass.
	s := seqOf(instr(f.store, 5), instr(f.load, 5), instr(f.store, 5))
	out, st := Optimize(s)
	if out.Len() != 1 {
		t.Fatalf("len = %d (%+v):\n%s", out.Len(), st, out)
	}
	if st.Passes < 2 {
		t.Errorf("expected at least 2 passes, got %d", st.Passes)
	}
}

func TestEmptySeq(t *testing.T) {
	out, st := Optimize(&code.Seq{})
	if out.Len() != 0 || st.LoadsRemoved != 0 || st.StoresRemoved != 0 {
		t.Fatal("empty sequence mishandled")
	}
}
