package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/models"
)

// TestRetargetFreezesTarget checks the tentpole invariant: every target
// coming out of Retarget is frozen, and freeze time is measured.
func TestRetargetFreezesTarget(t *testing.T) {
	target, err := RetargetContext(context.Background(), micro16, RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !target.Frozen() {
		t.Fatal("Retarget returned an unfrozen target")
	}
	if target.Stats.Freeze <= 0 {
		t.Fatalf("freeze phase not measured: %v", target.Stats.Freeze)
	}
}

// TestConcurrentCompileByteIdentical is the acceptance test for lock-free
// parallel compilation: 8 goroutines compile the same programs against one
// frozen target with no external synchronization, and every word sequence
// must equal the serial reference bit for bit.
func TestConcurrentCompileByteIdentical(t *testing.T) {
	target, err := RetargetContext(context.Background(), micro16, RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srcs := []string{
		"int a = 2; int b = 3; int y; y = a + b;",
		"int a = 7; int b = 2; int c = 1; int y; y = (a - b) + c;",
		"int a = 4; int y; y = a + a;",
		"int a = 9; int b = 5; int y; int z; y = a - b; z = y + a;",
	}
	// Serial reference words, compiled before any concurrency starts.
	ref := make([][]uint64, len(srcs))
	for i, src := range srcs {
		res, err := target.CompileSourceContext(context.Background(), src, CompileOptions{})
		if err != nil {
			t.Fatalf("serial reference %d: %v", i, err)
		}
		ref[i] = res.Words()
	}

	const workers = 8
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % len(srcs)
				res, err := target.CompileSourceContext(context.Background(), srcs[i], CompileOptions{})
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				got := res.Words()
				if len(got) != len(ref[i]) {
					errs <- fmt.Errorf("worker %d program %d: %d words, serial produced %d", w, i, len(got), len(ref[i]))
					return
				}
				for k := range got {
					if got[k] != ref[i][k] {
						errs <- fmt.Errorf("worker %d program %d word %d: %#x != serial %#x", w, i, k, got[k], ref[i][k])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// randomSource builds a straight-line RecC program from a deterministic
// seed: a few declared scalars combined with +, -, * into assignment
// chains.  Only structure varies; every generated program is compilable on
// both test machines (micro16 has add/sub, tms320c25 adds mul — so the
// operator set is restricted per target).
func randomSource(rng *rand.Rand, ops []string) string {
	nVars := 2 + rng.Intn(3)
	vars := make([]string, nVars)
	src := ""
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
		src += fmt.Sprintf("int v%d = %d; ", i, 1+rng.Intn(9))
	}
	nOut := 1 + rng.Intn(2)
	for i := 0; i < nOut; i++ {
		src += fmt.Sprintf("int y%d; ", i) // declarations precede statements in RecC
	}
	for i := 0; i < nOut; i++ {
		a := vars[rng.Intn(nVars)]
		b := vars[rng.Intn(nVars)]
		op := ops[rng.Intn(len(ops))]
		src += fmt.Sprintf("y%d = %s %s %s; ", i, a, op, b)
	}
	return src
}

// TestFreezePropertyRandomPrograms is the semantics-preservation property
// test: for random programs over micro16 and tms320c25, words compiled
// concurrently against the frozen target equal the serial reference, with
// GOMAXPROCS forced above 1 so -race actually interleaves.
func TestFreezePropertyRandomPrograms(t *testing.T) {
	if n := runtime.GOMAXPROCS(0); n < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(n)
	}
	c25, ok := models.Get("tms320c25")
	if !ok {
		t.Fatal("tms320c25 model missing")
	}
	cases := []struct {
		name, mdl string
		ops       []string
	}{
		{"micro16", micro16, []string{"+", "-"}},
		{"tms320c25", c25, []string{"+", "-", "*"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			target, err := RetargetContext(context.Background(), tc.mdl, RetargetOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1997)) // paper year; deterministic corpus
			const nPrograms = 12
			srcs := make([]string, nPrograms)
			ref := make([][]uint64, nPrograms)
			for i := range srcs {
				srcs[i] = randomSource(rng, tc.ops)
				res, err := target.CompileSourceContext(context.Background(), srcs[i], CompileOptions{})
				if err != nil {
					t.Fatalf("serial %q: %v", srcs[i], err)
				}
				ref[i] = res.Words()
			}
			var wg sync.WaitGroup
			errs := make(chan error, nPrograms)
			for i := range srcs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := target.CompileSourceContext(context.Background(), srcs[i], CompileOptions{})
					if err != nil {
						errs <- fmt.Errorf("parallel %q: %v", srcs[i], err)
						return
					}
					got := res.Words()
					if fmt.Sprint(got) != fmt.Sprint(ref[i]) {
						errs <- fmt.Errorf("program %q: frozen parallel words %v != serial %v", srcs[i], got, ref[i])
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestCompileContextCancellation checks the satellite API change: a
// canceled context aborts CompileProgram between stages with a budget
// error, not a hang or a panic.
func TestCompileContextCancellation(t *testing.T) {
	target, err := RetargetContext(context.Background(), micro16, RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = target.CompileSourceContext(ctx, "int a = 1; int y; y = a + a;", CompileOptions{})
	if err == nil {
		t.Fatal("compile with canceled context succeeded")
	}
}

// TestConfigValidate exercises the collapsed driver configuration.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	good := Config{Jobs: 8, MaxErrors: 3, MaxBDDNodes: 1 << 20}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, bad := range map[string]Config{
		"jobs":      {Jobs: -1},
		"timeout":   {Timeout: -1},
		"bddnodes":  {MaxBDDNodes: -2},
		"maxerrors": {MaxErrors: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: negative value accepted", name)
		}
	}
	if (Config{}).JobCount() != 1 || (Config{Jobs: 5}).JobCount() != 5 {
		t.Fatal("JobCount normalization wrong")
	}
	// The views carry the fields across.
	c := Config{NoCompaction: true, NoExtension: true}
	if !c.Compile().NoCompaction {
		t.Fatal("Compile view dropped NoCompaction")
	}
	rep := c.Reporter()
	budget, cancel := c.Budget(context.Background())
	defer cancel()
	ropts := c.Retarget(rep, budget)
	if !ropts.NoExtension || ropts.Reporter != rep || ropts.Budget != budget {
		t.Fatal("Retarget view dropped fields")
	}
}
