package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/models"
)

// TestNewCompilerRejectsBadTargets pins the constructor contract: no nil
// target, no unfrozen target, no invalid config.
func TestNewCompilerRejectsBadTargets(t *testing.T) {
	if _, err := NewCompiler(nil, Config{}); err == nil {
		t.Error("nil target accepted")
	}
	target, err := RetargetContext(context.Background(), micro16, RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCompiler(target, Config{Jobs: -1}); err == nil {
		t.Error("invalid config accepted")
	}
	c, err := NewCompiler(target, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Target() != target {
		t.Error("Target() does not return the constructed target")
	}
}

// TestCompilerParallelByteIdentical is the acceptance test for the pooled
// hot path: 32 goroutines compile through ONE Compiler — recycling warm
// sessions from its pool — across two processor models, and every word
// sequence must equal a serial fresh-session baseline bit for bit.  Run
// under -race in CI; multiple rounds per worker make session reuse (a
// worker picking up another worker's warmed memo) all but certain.
func TestCompilerParallelByteIdentical(t *testing.T) {
	if n := runtime.GOMAXPROCS(0); n < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(n)
	}
	c25, ok := models.Get("tms320c25")
	if !ok {
		t.Fatal("tms320c25 model missing")
	}
	cases := []struct {
		name, mdl string
		srcs      []string
	}{
		{"micro16", micro16, []string{
			"int a = 2; int b = 3; int y; y = a + b;",
			"int a = 7; int b = 2; int c = 1; int y; y = (a - b) + c;",
			"int a = 4; int y; y = a + a;",
			"int a = 9; int b = 5; int y; int z; y = a - b; z = y + a;",
		}},
		{"tms320c25", c25, []string{
			"int a = 3; int b = 4; int y; y = a * b;",
			"int a = 2; int b = 5; int c = 7; int y; y = a * b + c;",
			"int a = 6; int b = 2; int y; int z; y = a - b; z = y * a;",
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			target, err := RetargetContext(context.Background(), tc.mdl, RetargetOptions{})
			if err != nil {
				t.Fatal(err)
			}
			// Serial baseline through the one-shot path: a fresh session
			// per compile, before any pooling is in play.
			ref := make([][]uint64, len(tc.srcs))
			for i, src := range tc.srcs {
				res, err := target.CompileSourceContext(context.Background(), src, CompileOptions{})
				if err != nil {
					t.Fatalf("serial reference %d: %v", i, err)
				}
				ref[i] = res.Words()
			}

			comp, err := NewCompiler(target, Config{})
			if err != nil {
				t.Fatal(err)
			}
			const workers = 32
			const rounds = 6
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						i := (w + r) % len(tc.srcs)
						res, err := comp.CompileSource(context.Background(), tc.srcs[i])
						if err != nil {
							errs <- fmt.Errorf("worker %d round %d: %v", w, r, err)
							return
						}
						got := res.Words()
						if len(got) != len(ref[i]) {
							errs <- fmt.Errorf("worker %d program %d: %d words, serial produced %d",
								w, i, len(got), len(ref[i]))
							return
						}
						for k := range got {
							if got[k] != ref[i][k] {
								errs <- fmt.Errorf("worker %d program %d word %d: %#x != serial %#x",
									w, i, k, got[k], ref[i][k])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestCompilerSessionPoolRecycles checks the session borrow/return API the
// control-flow driver uses: a released session comes back warm, and the
// pool never hands the same session to two concurrent borrowers.
func TestCompilerSessionPoolRecycles(t *testing.T) {
	target, err := RetargetContext(context.Background(), micro16, RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewCompiler(target, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := comp.AcquireSession()
	s2 := comp.AcquireSession()
	if s1 == nil || s2 == nil {
		t.Fatal("AcquireSession returned nil")
	}
	if s1 == s2 {
		t.Fatal("two concurrent borrowers got the same session")
	}
	comp.ReleaseSession(s1)
	comp.ReleaseSession(s2)
	comp.ReleaseSession(nil) // must not panic or pool a nil
	if got := comp.AcquireSession(); got == nil {
		t.Fatal("pool drained after release")
	}
}
