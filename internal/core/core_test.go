package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ir"
)

// micro16 is a small but complete 16-bit accumulator machine with an
// immediate path, used for end-to-end pipeline tests.
//
// Instruction word (24 bits):
//
//	[23:21] ALU operation   [20] B-operand source (0=memory, 1=immediate)
//	[19]    acc load enable [18] memory write enable
//	[15:0]  immediate       [7:0] memory address (overlaps the immediate)
const micro16 = `
PROCESSOR micro16;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN b: WORD; IN op: 3; OUT y: WORD);
BEGIN
  y <- CASE op OF
         0: a + b;
         1: a - b;
         2: a & b;
         3: a | b;
         4: a ^ b;
         5: b;
         6: a * b;
         7: -b;
       END;
END;

MODULE BMux (IN mem: WORD; IN imm: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: mem; 1: imm; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE Rom (IN a: 8; OUT q: 24);
VAR m: 24 [256];
BEGIN q <- m[a]; END;

MODULE Inc (IN a: 8; OUT y: 8);
BEGIN y <- a + 1; END;

MODULE PcReg (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; r <- d; END;

PARTS
  alu  : Alu;
  bmux : BMux;
  acc  : Reg;
  ram  : Ram;
  imem : Rom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc;

CONNECT
  alu.a    <- acc.q;
  alu.b    <- bmux.y;
  alu.op   <- imem.q[23:21];
  bmux.mem <- ram.q;
  bmux.imm <- imem.q[15:0];
  bmux.s   <- imem.q[20];
  acc.d    <- alu.y;
  acc.ld   <- imem.q[19];
  ram.a    <- imem.q[7:0];
  ram.d    <- acc.q;
  ram.w    <- imem.q[18];
  imem.a   <- pc.q;
  pinc.a   <- pc.q;
  pc.d     <- pinc.y;
END.
`

func retargetMicro16(t *testing.T) *Target {
	t.Helper()
	tg, err := RetargetContext(context.Background(), micro16, RetargetOptions{})
	if err != nil {
		t.Fatalf("retarget: %v", err)
	}
	return tg
}

func TestRetargetMicro16(t *testing.T) {
	tg := retargetMicro16(t)
	if tg.Name != "micro16" {
		t.Errorf("name = %q", tg.Name)
	}
	// 8 ALU ops x 2 operand sources + store + pc increment = 18 extracted.
	if tg.Stats.Extracted != 18 {
		t.Errorf("extracted = %d, want 18", tg.Stats.Extracted)
	}
	if tg.Stats.Templates <= tg.Stats.Extracted {
		t.Errorf("extension added nothing: %d -> %d", tg.Stats.Extracted, tg.Stats.Templates)
	}
	if tg.Stats.Total <= 0 {
		t.Error("missing timing")
	}
	if tg.Stats.GrammarSz.RTRules == 0 || tg.Stats.GrammarSz.StartRules == 0 {
		t.Errorf("grammar stats: %+v", tg.Stats.GrammarSz)
	}
}

func TestParserSourceEmission(t *testing.T) {
	tg, err := RetargetContext(context.Background(), micro16, RetargetOptions{EmitParserSource: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tg.ParserSource, "package micro16parser") {
		t.Errorf("parser source missing package clause")
	}
}

// compileAndCheck compiles RecC source on the target, runs it on the
// netlist simulator, and compares every variable with the IR oracle.
func compileAndCheck(t *testing.T, tg *Target, src string, opts CompileOptions) *CompileResult {
	t.Helper()
	res, err := tg.CompileSourceContext(context.Background(), src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := tg.CheckAgainstOracle(res); err != nil {
		t.Fatalf("oracle mismatch: %v\nlisting:\n%s", err, tg.Listing(res))
	}
	return res
}

func TestEndToEndSimpleAssignments(t *testing.T) {
	tg := retargetMicro16(t)
	compileAndCheck(t, tg, `
int a = 7;
int b = 9;
int x;
int y;
x = a + b;
y = x * 3;
`, CompileOptions{})
}

func TestEndToEndImmediates(t *testing.T) {
	tg := retargetMicro16(t)
	res := compileAndCheck(t, tg, `
int x;
int y;
x = 1234;
y = x - 100;
`, CompileOptions{})
	if res.CodeLen() == 0 {
		t.Fatal("no code emitted")
	}
}

func TestEndToEndNegativeValues(t *testing.T) {
	tg := retargetMicro16(t)
	compileAndCheck(t, tg, `
int a = -5;
int b;
int c;
b = -a;
c = a * a - 7;
`, CompileOptions{})
}

func TestEndToEndBitOps(t *testing.T) {
	tg := retargetMicro16(t)
	compileAndCheck(t, tg, `
int a = 0x0F0F;
int b = 0x00FF;
int x; int y; int z;
x = a & b;
y = a | b;
z = a ^ b;
`, CompileOptions{})
}

func TestEndToEndArraysAndLoops(t *testing.T) {
	tg := retargetMicro16(t)
	compileAndCheck(t, tg, `
int a[4] = {1, 2, 3, 4};
int b[4] = {10, 20, 30, 40};
int s;
void main() {
  s = 0;
  for (i = 0; i < 4; i++) {
    s = s + a[i] * b[i];
  }
}
`, CompileOptions{})
}

func TestEndToEndDeepExpression(t *testing.T) {
	tg := retargetMicro16(t)
	// A badly associated tree forcing intermediate results through memory
	// (micro16 has a single accumulator, so the right operand of the outer
	// operation must be spilled).
	res := compileAndCheck(t, tg, `
int a = 3; int b = 4; int c = 5; int d = 6;
int x;
x = (a + b) * (c + d);
`, CompileOptions{})
	if res.Stats.Spills == 0 {
		t.Error("expected at least one spill on a single-accumulator machine")
	}
}

func TestCompactionReducesWordsAndStaysCorrect(t *testing.T) {
	tg := retargetMicro16(t)
	src := `
int a = 1; int b = 2; int x; int y;
x = a + 10;
y = b + 20;
`
	packed := compileAndCheck(t, tg, src, CompileOptions{})
	unpacked := compileAndCheck(t, tg, src, CompileOptions{NoCompaction: true})
	if packed.CodeLen() > unpacked.CodeLen() {
		t.Errorf("compaction grew code: %d > %d", packed.CodeLen(), unpacked.CodeLen())
	}
	if unpacked.CodeLen() != unpacked.SeqLen() {
		t.Errorf("uncompacted code must be one RT per word")
	}
}

func TestCompileErrors(t *testing.T) {
	tg := retargetMicro16(t)
	// Unsupported operator (no divider in micro16).
	if _, err := tg.CompileSourceContext(context.Background(), `int a = 8; int b = 2; int x; x = a / b;`,
		CompileOptions{}); err == nil {
		t.Error("division should be uncoverable on micro16")
	}
	// Frontend error propagates.
	if _, err := tg.CompileSourceContext(context.Background(), `int x; x = ;`, CompileOptions{}); err == nil {
		t.Error("syntax error not reported")
	}
	// Memory overflow.
	if _, err := tg.CompileSourceContext(context.Background(), `int big[1000]; big[0] = 1;`, CompileOptions{}); err == nil {
		t.Error("oversized frame not reported")
	}
}

func TestListing(t *testing.T) {
	tg := retargetMicro16(t)
	res := compileAndCheck(t, tg, `int x; x = 42;`, CompileOptions{})
	lst := tg.Listing(res)
	if !strings.Contains(lst, "acc.r :=") || !strings.Contains(lst, "ram.m[IW[7:0]] :=") {
		t.Errorf("listing:\n%s", lst)
	}
}

func TestWordsEncoded(t *testing.T) {
	tg := retargetMicro16(t)
	res := compileAndCheck(t, tg, `int x; x = 42;`, CompileOptions{})
	words := res.Words()
	if len(words) < 2 {
		t.Fatalf("words = %d", len(words))
	}
	// First word: load immediate 42 -> acc: op=5 (pass b), s=1, ld=1.
	w := words[0]
	if w&0xFFFF != 42 {
		t.Errorf("imm field = %d", w&0xFFFF)
	}
	if (w>>19)&1 != 1 {
		t.Error("acc.ld not set")
	}
	if (w>>20)&1 != 1 {
		t.Error("imm source not selected")
	}
}

func TestRetargetBadModel(t *testing.T) {
	if _, err := RetargetContext(context.Background(), "PROCESSOR x;", RetargetOptions{}); err == nil {
		t.Error("model without instruction part accepted")
	}
	if _, err := RetargetContext(context.Background(), "garbage", RetargetOptions{}); err == nil {
		t.Error("unparsable model accepted")
	}
}

func TestNoExtensionOption(t *testing.T) {
	tg, err := RetargetContext(context.Background(), micro16, RetargetOptions{NoExtension: true})
	if err != nil {
		t.Fatal(err)
	}
	if tg.Stats.Templates != tg.Stats.Extracted {
		t.Errorf("extension ran despite NoExtension: %d != %d",
			tg.Stats.Templates, tg.Stats.Extracted)
	}
}

func TestCommutativityImprovesCover(t *testing.T) {
	// b + a*b with a single-accumulator: without commuted templates the
	// right-heavy tree costs more (or spills more).
	src := `
int a = 3; int b = 4; int x;
x = b + a * b;
`
	with := retargetMicro16(t)
	resWith := compileAndCheck(t, with, src, CompileOptions{})

	without, err := RetargetContext(context.Background(), micro16, RetargetOptions{NoExtension: true})
	if err != nil {
		t.Fatal(err)
	}
	resWithout, err := without.CompileSourceContext(context.Background(), src, CompileOptions{})
	if err == nil {
		if err := without.CheckAgainstOracle(resWithout); err != nil {
			t.Fatalf("no-extension result wrong: %v", err)
		}
		if resWith.SeqLen() > resWithout.SeqLen() {
			t.Errorf("extension made code longer: %d > %d", resWith.SeqLen(), resWithout.SeqLen())
		}
	}
	_ = resWith
}

func TestExecuteReturnsAllVariables(t *testing.T) {
	tg := retargetMicro16(t)
	res := compileAndCheck(t, tg, `
int a = 2; int b[2] = {5, 6}; int x;
x = a + b[1];
`, CompileOptions{})
	env, err := tg.Execute(res)
	if err != nil {
		t.Fatal(err)
	}
	if env["x"][0] != 8 {
		t.Errorf("x = %d", env["x"][0])
	}
	if len(env["b"]) != 2 || env["b"][0] != 5 {
		t.Errorf("b = %v", env["b"])
	}
	want, _ := ir.Run(res.Program, 16)
	if want["x"][0] != env["x"][0] {
		t.Error("oracle disagrees")
	}
}

// modeMachine gates the ALU function bank on a mode register: mode 0 gives
// add/sub, mode 1 gives and/or.  Compiling an add program must report the
// required mode state, and Execute must preset it.
const modeMachine = `
PROCESSOR mody;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN b: WORD; IN f: 2; IN mode: 1; OUT y: WORD);
BEGIN
  y <- CASE mode OF
         0: CASE f OF 0: a + b; 1: a - b; ELSE: b; END;
         1: CASE f OF 0: a & b; 1: a | b; ELSE: b; END;
       END;
END;

MODULE BMux (IN m: WORD; IN imm: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: m; 1: imm; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Reg1 (IN d: 1; IN ld: 1; OUT q: 1);
VAR r: 1;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE Rom (IN a: 8; OUT q: 32);
VAR m: 32 [256];
BEGIN q <- m[a]; END;

MODULE Inc (IN a: 8; OUT y: 8);
BEGIN y <- a + 1; END;

MODULE PcReg (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; r <- d; END;

PARTS
  alu  : Alu;
  bmux : BMux;
  acc  : Reg;
  mr   : Reg1 MODE;
  ram  : Ram;
  imem : Rom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc;

CONNECT
  alu.a    <- acc.q;
  alu.b    <- bmux.y;
  alu.f    <- imem.q[30:29];
  alu.mode <- mr.q;
  bmux.m   <- ram.q;
  bmux.imm <- imem.q[15:0];
  bmux.s   <- imem.q[28];
  acc.d    <- alu.y;
  acc.ld   <- imem.q[27];
  ram.a    <- imem.q[7:0];
  ram.d    <- acc.q;
  ram.w    <- imem.q[26];
  mr.d     <- imem.q[25];
  mr.ld    <- imem.q[24];
  imem.a   <- pc.q;
  pinc.a   <- pc.q;
  pc.d     <- pinc.y;
END.
`

func TestModeRegisterEndToEnd(t *testing.T) {
	tg, err := RetargetContext(context.Background(), modeMachine, RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Arithmetic program: needs mode 0.
	res, err := tg.CompileSourceContext(context.Background(), `
int a = 9; int b = 4; int x;
x = a - b;
`, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.ModeReq["mr.r"]; !ok || v != 0 {
		t.Fatalf("mode requirement = %v", res.ModeReq)
	}
	if err := tg.CheckAgainstOracle(res); err != nil {
		t.Fatal(err)
	}
	// Logic program: needs mode 1.
	res2, err := tg.CompileSourceContext(context.Background(), `
int a = 12; int b = 10; int x;
x = a & b;
`, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res2.ModeReq["mr.r"]; !ok || v != 1 {
		t.Fatalf("mode requirement = %v", res2.ModeReq)
	}
	if err := tg.CheckAgainstOracle(res2); err != nil {
		t.Fatal(err)
	}
	// Mixing both banks in one straight-line program must be diagnosed
	// (this encoder does not insert mode switches).
	if _, err := tg.CompileSourceContext(context.Background(), `
int a = 9; int b = 4; int x; int y;
x = a - b;
y = a & b;
`, CompileOptions{}); err == nil {
		t.Error("conflicting mode requirements not diagnosed")
	}
}
