package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/dspstone"
	"repro/internal/ise"
)

// explosiveMicro16 extends micro16 with a write-only junk register fed by a
// chain of five muxes whose both inputs tap the previous stage: every stage
// doubles the route count under distinct selector bits, so enumerating
// junk.r's routes blows past a small MaxAlts while every original
// destination stays cheap.
func explosiveMicro16(t *testing.T) string {
	t.Helper()
	src := strings.Replace(micro16, "PARTS", `
MODULE JMux (IN a: WORD; IN b: WORD; IN s: 1; OUT y: WORD);
BEGIN y <- CASE s OF 0: a; 1: b; END; END;

PARTS
  j1 : JMux; j2 : JMux; j3 : JMux; j4 : JMux; j5 : JMux;
  junk : Reg;`, 1)
	src = strings.Replace(src, "CONNECT", `CONNECT
  j1.a <- acc.q;  j1.b <- ram.q;  j1.s <- imem.q[17];
  j2.a <- j1.y;   j2.b <- j1.y;   j2.s <- imem.q[16];
  j3.a <- j2.y;   j3.b <- j2.y;   j3.s <- imem.q[15];
  j4.a <- j3.y;   j4.b <- j3.y;   j4.s <- imem.q[14];
  j5.a <- j4.y;   j5.b <- j4.y;   j5.s <- imem.q[13];
  junk.d  <- j5.y;
  junk.ld <- imem.q[12];`, 1)
	if src == micro16 {
		t.Fatal("string surgery failed")
	}
	return src
}

// TestDegradedRetargetCompilesKernels is the core-level degradation
// guarantee: one genuinely explosive instruction (no fault injection) costs
// exactly its own destination — a Warn, not an abort — and the remaining
// instruction set still compiles and oracle-checks DSPStone kernels.
func TestDegradedRetargetCompilesKernels(t *testing.T) {
	rep := diag.NewReporter()
	tg, err := RetargetContext(context.Background(), explosiveMicro16(t), RetargetOptions{
		ISE:      ise.Options{MaxAlts: 20},
		Reporter: rep,
	})
	if err != nil {
		t.Fatalf("retarget must degrade, not fail: %v", err)
	}
	if got := tg.ISE.Stats.Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want exactly 1 (junk.r)", got)
	}
	if rep.Warns() != 1 {
		t.Fatalf("warnings = %d, want 1: %v", rep.Warns(), rep.Diags())
	}
	warn := rep.Diags()[0]
	if !strings.Contains(warn.Msg, "junk.r") || !strings.Contains(warn.Msg, "route explosion") {
		t.Errorf("warning does not identify the explosion: %s", warn)
	}
	for _, d := range tg.Base.Destinations() {
		if d == "junk.r" {
			t.Error("exploded destination survived in the template base")
		}
	}

	// The degraded target still compiles and oracle-checks straight-line
	// DSPStone kernels.
	checked := 0
	for _, k := range dspstone.Suite() {
		res, err := tg.CompileSourceContext(context.Background(), k.Source, CompileOptions{})
		if err != nil {
			continue // kernels needing features micro16 lacks
		}
		if err := tg.CheckAgainstOracle(res); err != nil {
			t.Errorf("kernel %s: oracle mismatch on degraded target: %v", k.Name, err)
			continue
		}
		checked++
	}
	if checked == 0 {
		t.Error("no kernel compiled on the degraded target; degradation untestable")
	}
}

// TestExplosiveModelFailsWithoutDegradation pins the baseline: the same
// model under the old all-or-nothing semantics (every destination must
// enumerate) would have lost everything, which is what strict callers see
// when all destinations drop.
func TestExplosiveModelFailsWithoutDegradation(t *testing.T) {
	// Sanity: with generous limits the junk register is extractable.
	tg, err := RetargetContext(context.Background(), explosiveMicro16(t), RetargetOptions{})
	if err != nil {
		t.Fatalf("generous limits: %v", err)
	}
	if tg.ISE.Stats.Dropped != 0 {
		t.Errorf("Dropped = %d with default MaxAlts, want 0", tg.ISE.Stats.Dropped)
	}
	found := false
	for _, d := range tg.Base.Destinations() {
		if d == "junk.r" {
			found = true
		}
	}
	if !found {
		t.Error("junk.r missing under default limits; explosion fixture is broken")
	}
}
