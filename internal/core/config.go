package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/diag"
	"repro/internal/ise"
	"repro/internal/obs"
	"repro/internal/rewrite"
)

// Config collapses the drivers' grab-bag of knobs — retargeting options,
// compile options, resource budgets, diagnostics policy, parallelism —
// into one validated unit.  The record CLI and the recordd service both
// build a Config from their flags and derive everything else from it;
// RetargetOptions and CompileOptions remain as views produced by the
// Retarget and Compile methods, so the per-phase APIs keep their narrow
// signatures.
//
// The flag → field mapping is documented in the README ("Configuration"
// section).
type Config struct {
	// Retargeting.
	NoExtension      bool             // skip template-base extension (ablation)
	EmitParserSource bool             // also render the BURS tables as Go source
	ISE              ise.Options      // instruction-set extraction limits
	Extension        *rewrite.Options // nil = rewrite.DefaultOptions()

	// Compilation.
	NoCompaction bool // one RT per word (ablation baseline)
	NoPeephole   bool // skip redundant-load/dead-store elimination

	// Resource budgets.  Timeout is a convenience for callers without
	// their own context plumbing; context deadlines passed to the
	// *Context APIs take effect regardless.
	Timeout     time.Duration // wall clock per run; 0 = unlimited
	MaxBDDNodes int           // BDD universe cap during extraction; 0 = unlimited
	MaxRoutes   int           // route enumeration cap per traversal point; 0 = default

	// Diagnostics policy.
	Strict    bool // promote warnings to errors
	MaxErrors int  // bail after this many errors; 0 = unlimited

	// Parallelism: concurrent compiles against one frozen target
	// (record -jobs, recordd -workers).  0 means 1.
	Jobs int

	// Observability: the scope carried into both option views.  Like
	// Reporter state it never affects produced code or cache keys; nil
	// disables instrumentation.
	Obs *obs.Scope
}

// Validate checks the configuration for nonsensical values.  A zero Config
// is valid (everything unlimited, serial, defaults).
func (c Config) Validate() error {
	bad := func(field string, v interface{}) error {
		return fmt.Errorf("core: config: %s must not be negative (got %v)", field, v)
	}
	switch {
	case c.Timeout < 0:
		return bad("Timeout", c.Timeout)
	case c.MaxBDDNodes < 0:
		return bad("MaxBDDNodes", c.MaxBDDNodes)
	case c.MaxRoutes < 0:
		return bad("MaxRoutes", c.MaxRoutes)
	case c.MaxErrors < 0:
		return bad("MaxErrors", c.MaxErrors)
	case c.Jobs < 0:
		return bad("Jobs", c.Jobs)
	case c.ISE.MaxAlts < 0:
		return bad("ISE.MaxAlts", c.ISE.MaxAlts)
	case c.ISE.MaxTemplates < 0:
		return bad("ISE.MaxTemplates", c.ISE.MaxTemplates)
	}
	if c.Extension != nil && c.Extension.MaxVariantsPerTemplate < 0 {
		return bad("Extension.MaxVariantsPerTemplate", c.Extension.MaxVariantsPerTemplate)
	}
	return nil
}

// JobCount returns the effective parallel-compile width (at least 1).
func (c Config) JobCount() int {
	if c.Jobs < 1 {
		return 1
	}
	return c.Jobs
}

// Reporter builds a diagnostics reporter with the configured policy.
func (c Config) Reporter() *diag.Reporter {
	rep := diag.NewReporter()
	rep.SetStrict(c.Strict)
	rep.SetMaxErrors(c.MaxErrors)
	return rep
}

// Budget derives the resource budget: ctx bounds the wall clock, narrowed
// by Timeout when set.  The returned cancel func must be called when the
// run finishes (it is a no-op when Timeout is unset).
func (c Config) Budget(ctx context.Context) (*diag.Budget, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if c.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
	}
	return &diag.Budget{Ctx: ctx, MaxBDDNodes: c.MaxBDDNodes, MaxRoutes: c.MaxRoutes}, cancel
}

// Retarget is the RetargetOptions view of the config.  rep and budget
// come from Reporter and Budget (or the caller's own).
func (c Config) Retarget(rep *diag.Reporter, budget *diag.Budget) RetargetOptions {
	return RetargetOptions{
		ISE:              c.ISE,
		Extension:        c.Extension,
		NoExtension:      c.NoExtension,
		EmitParserSource: c.EmitParserSource,
		Reporter:         rep,
		Budget:           budget,
		Obs:              c.Obs,
	}
}

// Compile is the CompileOptions view of the config.
func (c Config) Compile() CompileOptions {
	return CompileOptions{NoCompaction: c.NoCompaction, NoPeephole: c.NoPeephole, Obs: c.Obs}
}
