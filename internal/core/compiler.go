// The Compiler handle: the long-lived compile side of a retargeted
// processor.
//
// RetargetContext is the expensive offline step; per-program compilation is
// meant to be cheap and massively parallel.  CompileSourceContext alone
// cannot deliver that: every call re-resolves metric instruments through
// the registry mutex, allocates a fresh encoding session (a BDD view plus
// its overlay maps) and throws the session's warmed operation memo away.
// A Compiler binds one frozen Target to one Config once and amortizes all
// of it — sessions are pooled per worker via sync.Pool and recycled while
// their copy-on-write overlay stays small, instruments are resolved at
// construction, and the compile options are fixed up front — so cmd/record
// -jobs, recordd workers and the batch path all compile through one
// reusable object.
//
// Reusing an encoding session across compilations is sound because the
// produced code is a pure function of the frozen tables: ROBDDs are
// canonical for the frozen variable order, so every condition a session
// builds is structurally identical whether its view memo is cold or warm,
// and the satisfying-path walk that picks instruction bits sees the same
// structure either way.  Output stays byte-identical to a serial,
// fresh-session run; the -race 32-way test in freeze_test.go holds this.
package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/cfront"
	"repro/internal/ir"
	"repro/internal/obs"
)

// maxPooledOverlay bounds the private BDD nodes a pooled session may
// accumulate before ReleaseSession drops it instead of recycling it: the
// warm operation memo is worth keeping, an unboundedly growing overlay is
// not.  2^15 nodes ≈ 1.5 MB of overlay map per retained session.
const maxPooledOverlay = 1 << 15

// compileStages are the per-program pipeline stage labels, in order.
var compileStages = []string{"bind", "select", "peephole", "compact", "encode"}

// Compiler is a reusable compile handle for one frozen Target.  It is safe
// for concurrent use by any number of goroutines; its pooled sessions give
// the contention-free hot path that per-call session allocation cannot.
type Compiler struct {
	t    *Target
	opts CompileOptions

	// sessions pools *asm.Session values.  Sessions of a frozen encoder
	// are independent; pooling trades the per-compile view allocation for
	// an OverlaySize-bounded amount of retained memo per idle session.
	sessions sync.Pool

	// Instruments resolved once against the configured registry so the hot
	// path never takes the registry mutex.  All are nil-safe.
	compiles *obs.Counter
	stageSec map[string]*obs.Histogram
}

// NewCompiler builds a compile handle for a frozen target.  cfg supplies
// the compile options (NoCompaction, NoPeephole), the observability scope
// and nothing else; retargeting fields are ignored here.  The target must
// be frozen — an unfrozen target's encoder mutates shared state and cannot
// back a concurrent handle.
func NewCompiler(t *Target, cfg Config) (*Compiler, error) {
	if t == nil {
		return nil, fmt.Errorf("core: NewCompiler: nil target")
	}
	if !t.Frozen() {
		return nil, fmt.Errorf("core: NewCompiler: target %q is not frozen", t.Name)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Compiler{t: t, opts: cfg.Compile()}
	reg := cfg.Obs.Registry()
	c.compiles = reg.Counter("record_core_compiles_total",
		"program compilations started")
	phaseSec := phaseSeconds(reg)
	c.stageSec = make(map[string]*obs.Histogram, len(compileStages))
	for _, s := range compileStages {
		c.stageSec[s] = phaseSec.With(s)
	}
	obsScope := cfg.Obs
	c.sessions.New = func() any { return t.Encoder.NewSessionObs(obsScope) }
	return c, nil
}

// Target returns the frozen target the compiler compiles for.
func (c *Compiler) Target() *Target { return c.t }

// CompileSource compiles RecC source text through the pooled hot path.
func (c *Compiler) CompileSource(ctx context.Context, src string) (*CompileResult, error) {
	return c.CompileSourceOpts(ctx, src, c.opts)
}

// CompileSourceOpts compiles RecC source text with per-call option
// overrides.  opts.Obs overrides the span scope only; counters, stage
// histograms and session instruments stay bound to the registry the
// Compiler was constructed with.
func (c *Compiler) CompileSourceOpts(ctx context.Context, src string, opts CompileOptions) (*CompileResult, error) {
	prog, err := cfront.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: RecC frontend: %w", err)
	}
	return c.CompileProgramOpts(ctx, prog, opts)
}

// CompileProgram compiles an IR program through the pooled hot path.
func (c *Compiler) CompileProgram(ctx context.Context, prog *ir.Program) (*CompileResult, error) {
	return c.CompileProgramOpts(ctx, prog, c.opts)
}

// CompileProgramOpts compiles an IR program with per-call option
// overrides (see CompileSourceOpts for the Obs caveat).
func (c *Compiler) CompileProgramOpts(ctx context.Context, prog *ir.Program, opts CompileOptions) (*CompileResult, error) {
	c.compiles.Inc()
	sess := c.AcquireSession()
	defer c.ReleaseSession(sess)
	if opts.Obs == nil {
		opts.Obs = c.opts.Obs
	}
	return c.t.compile(ctx, prog, opts, sess, opts.Obs, c.observeStage)
}

func (c *Compiler) observeStage(stage string, seconds float64) {
	if h := c.stageSec[stage]; h != nil {
		h.Observe(seconds)
	}
}

// AcquireSession borrows an encoding session from the pool for callers
// that drive the phases themselves (the control-flow compiler).  The
// session must be returned with ReleaseSession and must not be shared
// between goroutines while borrowed.
func (c *Compiler) AcquireSession() *asm.Session {
	return c.sessions.Get().(*asm.Session)
}

// ReleaseSession returns a borrowed session to the pool, discarding it
// when its private BDD overlay has grown past maxPooledOverlay.
func (c *Compiler) ReleaseSession(s *asm.Session) {
	if s == nil || s.OverlaySize() > maxPooledOverlay {
		return
	}
	c.sessions.Put(s)
}

// Listing renders a compiled program as an annotated listing.
func (c *Compiler) Listing(r *CompileResult) string { return c.t.Listing(r) }
