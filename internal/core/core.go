// Package core is the public facade of the retargetable compiler: it wires
// the full RECORD pipeline of the paper's figure 1.
//
//	HDL model → internal graph model → instruction-set extraction →
//	template-base extension → tree grammar → tree parser (code selector)
//
// Retarget runs that pipeline once per processor model and returns a
// Target whose Compile methods translate RecC source programs into
// compacted, encoded machine code; Execute runs the code on the netlist
// simulator so results can be checked against the IR interpreter oracle.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/bind"
	"repro/internal/burs"
	"repro/internal/cfront"
	"repro/internal/code"
	"repro/internal/codegen"
	"repro/internal/compact"
	"repro/internal/diag"
	"repro/internal/grammar"
	"repro/internal/hdl"
	"repro/internal/ir"
	"repro/internal/ise"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rewrite"
	"repro/internal/rtl"
	"repro/internal/sim"
)

// RetargetOptions tunes the retargeting pipeline.
type RetargetOptions struct {
	ISE ise.Options
	// Extension configures the template-base extension; zero value means
	// rewrite.DefaultOptions().
	Extension *rewrite.Options
	// NoExtension skips the extension phase entirely (ablation).
	NoExtension bool
	// EmitParserSource also renders the generated tree parser as Go source
	// (mirroring iburg's C emission); the source is stored in
	// Target.ParserSource and its generation counted as parser-generation
	// time.
	EmitParserSource bool
	// Reporter collects diagnostics (frontend errors with positions,
	// degraded-mode warnings) from every phase.  nil is safe.
	Reporter *diag.Reporter
	// Budget bounds the whole retargeting run: its deadline is checked at
	// phase boundaries and inside route enumeration, its BDD node cap
	// during control-signal analysis, and Budget.MaxRoutes overrides
	// ISE.MaxAlts when set.  nil means unlimited.
	Budget *diag.Budget
	// Obs receives per-phase spans and pipeline instruments (see
	// internal/obs); like Reporter it is excluded from artifact
	// fingerprints and nil is safe.
	Obs *obs.Scope
}

// phaseSeconds is the shared per-phase wall-clock histogram; retargeting
// phases and compile stages land in one family distinguished by the phase
// label, so both register with identical metadata.
func phaseSeconds(reg *obs.Registry) *obs.HistogramVec {
	return reg.HistogramVec("record_core_phase_seconds",
		"wall-clock seconds per pipeline phase", nil, "phase")
}

// RetargetStats reports per-phase retargeting effort — the quantities of
// the paper's table 3.
type RetargetStats struct {
	Frontend   time.Duration // HDL parse + check + elaboration
	ISE        time.Duration // instruction-set extraction
	Extension  time.Duration // template-base extension
	Grammar    time.Duration // tree grammar construction
	ParserGen  time.Duration // parser generation (tables + optional source)
	Freeze     time.Duration // baking the read-only encoding tables
	Total      time.Duration
	Extracted  int // templates delivered by ISE
	Templates  int // templates after extension (the paper's column 2)
	GrammarSz  grammar.Stats
	ISEDetails ise.Stats
}

// Target is a retargeted compiler instance for one processor model.
//
// Retarget returns the Target frozen: the encoder's per-template encoding
// tables are baked and the shared BDD manager is read-only, so Compile
// methods touch no shared mutable state and any number of goroutines may
// compile against one Target concurrently.  Degraded (partial) targets are
// frozen too — freezing is about reentrancy, cacheability is a separate
// question (see internal/artifact.Cacheable).
type Target struct {
	Name    string
	Model   *hdl.Model
	Net     *netlist.Netlist
	ISE     *ise.Result
	Base    *rtl.Base
	Grammar *grammar.Grammar
	Parser  *burs.Parser
	Encoder *asm.Encoder

	ParserSource string
	Stats        RetargetStats
}

// RetargetContext builds a compiler for the processor described by MDL
// source.  ctx bounds the run: cancellation or deadline expiry is observed
// at phase boundaries and inside route enumeration (it becomes the
// wall-clock axis of the diag.Budget, replacing the older ad-hoc timeout
// plumbing — a Budget with its own Ctx keeps it, so legacy callers are
// unaffected).
//
// Every phase runs under a recovery boundary: panics (pipeline invariant
// violations, injected faults) surface as Error diagnostics on
// opts.Reporter and a *diag.PanicError return instead of crashing the
// caller.  Frontend syntax errors are reported individually with their
// source positions.
//
// The returned Target is frozen (see Target) and safe for concurrent
// compilation.
func RetargetContext(ctx context.Context, mdlSource string, opts RetargetOptions) (*Target, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Merge ctx into the budget so every existing deadline check in the
	// pipeline observes the caller's cancellation.
	switch {
	case opts.Budget == nil:
		if ctx != context.Background() {
			opts.Budget = &diag.Budget{Ctx: ctx}
		}
	case opts.Budget.Ctx == nil:
		b := *opts.Budget
		b.Ctx = ctx
		opts.Budget = &b
	}
	rep := opts.Reporter
	t := &Target{}
	start := time.Now()

	// Instrumentation: one span per phase under a retarget root, and the
	// same durations as seconds in the shared phase histogram.  A nil
	// opts.Obs (or one without a tracer/registry) makes all of this
	// discard.
	opts.Obs.Registry().Counter("record_core_retargets_total",
		"retargeting pipeline runs").Inc()
	phaseSec := phaseSeconds(opts.Obs.Registry())
	rtSpan, scope := opts.Obs.Start("retarget")
	defer rtSpan.End()

	// Thread the budget and reporter into ISE unless the caller set them
	// on the ISE options explicitly.
	if opts.ISE.Reporter == nil {
		opts.ISE.Reporter = rep
	}
	if opts.ISE.Budget == nil {
		opts.ISE.Budget = opts.Budget
	}
	if opts.ISE.MaxAlts <= 0 && opts.Budget != nil && opts.Budget.MaxRoutes > 0 {
		opts.ISE.MaxAlts = opts.Budget.MaxRoutes
	}

	feSpan, _ := scope.Start("frontend")
	err := diag.Guard(rep, "hdl", func() error {
		model, err := hdl.ParseAndCheck(mdlSource)
		if err != nil {
			for _, e := range hdl.Errors(err) {
				rep.Errorf("hdl", diag.Pos{Line: e.Pos.Line, Col: e.Pos.Col}, "%s", e.Msg)
			}
			return err
		}
		net, err := netlist.Elaborate(model)
		if err != nil {
			rep.Errorf("hdl", diag.Pos{}, "elaboration: %v", err)
			return err
		}
		t.Name = net.Name
		t.Model = model
		t.Net = net
		return nil
	})
	feSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: HDL frontend: %w", err)
	}
	t.Stats.Frontend = time.Since(start)
	phaseSec.With("frontend").Observe(t.Stats.Frontend.Seconds())
	rtSpan.SetAttr("target", t.Name)

	if err := opts.Budget.Exceeded(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	phase := time.Now()
	iseSpan, iseScope := scope.Start("ise")
	if opts.ISE.Obs == nil {
		opts.ISE.Obs = iseScope
	}
	err = diag.Guard(rep, "ise", func() error {
		res, err := ise.Extract(t.Net, opts.ISE)
		if err != nil {
			return err
		}
		t.ISE = res
		t.Base = res.Base
		return nil
	})
	if err != nil {
		iseSpan.End()
		return nil, fmt.Errorf("core: instruction-set extraction: %w", err)
	}
	iseSpan.SetAttr("templates", t.Base.Len())
	iseSpan.SetAttr("dropped", t.ISE.Stats.Dropped)
	iseSpan.End()
	t.Stats.ISE = time.Since(phase)
	t.Stats.Extracted = t.Base.Len()
	t.Stats.ISEDetails = t.ISE.Stats
	phaseSec.With("ise").Observe(t.Stats.ISE.Seconds())

	phase = time.Now()
	extSpan, _ := scope.Start("extend")
	err = diag.Guard(rep, "extend", func() error {
		if !opts.NoExtension {
			ext := rewrite.DefaultOptions()
			if opts.Extension != nil {
				ext = *opts.Extension
			}
			rewrite.Extend(t.Base, ext)
		}
		return nil
	})
	extSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: template-base extension: %w", err)
	}
	t.Stats.Extension = time.Since(phase)
	t.Stats.Templates = t.Base.Len()
	phaseSec.With("extend").Observe(t.Stats.Extension.Seconds())

	if err := opts.Budget.Exceeded(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	phase = time.Now()
	gSpan, gScope := scope.Start("grammar")
	err = diag.Guard(rep, "grammar", func() error {
		g, err := grammar.BuildObs(t.Base, grammar.SpecFromNetlist(t.Net), rep, gScope)
		if err != nil {
			return err
		}
		t.Grammar = g
		return nil
	})
	gSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: grammar construction: %w", err)
	}
	t.Stats.Grammar = time.Since(phase)
	t.Stats.GrammarSz = t.Grammar.Stats()
	phaseSec.With("grammar").Observe(t.Stats.Grammar.Seconds())

	phase = time.Now()
	bSpan, _ := scope.Start("burs")
	err = diag.Guard(rep, "burs", func() error {
		t.Parser = burs.NewParser(t.Grammar)
		if opts.EmitParserSource {
			t.ParserSource = burs.EmitGo(t.Grammar, sanitizeIdent(t.Name)+"parser")
		}
		var background []string
		for _, st := range t.Net.Seq {
			if st.PC {
				background = append(background, st.QName())
			}
		}
		t.Encoder = asm.NewEncoder(t.ISE.Vars, t.Base, background...)
		return nil
	})
	bSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: parser generation: %w", err)
	}
	t.Stats.ParserGen = time.Since(phase)
	phaseSec.With("burs").Observe(t.Stats.ParserGen.Seconds())

	// Freeze: bake the per-template encoding tables and mark the BDD
	// manager read-only, making the Target safe for concurrent compiles.
	// This is the last manager-mutating step; it runs for degraded targets
	// too (frozen ≠ cacheable).
	phase = time.Now()
	fzSpan, _ := scope.Start("freeze")
	err = diag.Guard(rep, "freeze", func() error {
		t.Encoder.Freeze()
		return nil
	})
	fzSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: target freeze: %w", err)
	}
	t.Stats.Freeze = time.Since(phase)
	phaseSec.With("freeze").Observe(t.Stats.Freeze.Seconds())

	t.Stats.Total = time.Since(start)
	if t.ISE.Stats.Dropped > 0 {
		rep.Infof("core", diag.Pos{},
			"retargeted %s in degraded mode: %d destination(s) dropped, %d templates kept",
			t.Name, t.ISE.Stats.Dropped, t.Stats.Templates)
	}
	return t, nil
}

func sanitizeIdent(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return "target"
	}
	return string(out)
}

// CompileOptions tunes program compilation.
type CompileOptions struct {
	// NoCompaction keeps one RT per word (ablation baseline).
	NoCompaction bool
	// NoPeephole skips redundant-load/dead-store elimination (ablation).
	NoPeephole bool
	// Obs receives per-stage spans and compile instruments.  Instruments
	// are atomic, so concurrent compiles against one frozen target may
	// share a scope.  nil is safe.
	Obs *obs.Scope
}

// CompileResult is compiled machine code with its provenance.
type CompileResult struct {
	Program *ir.Program
	Binding *bind.Binding
	Seq     *code.Seq     // sequential RT code (post-peephole, pre-compaction)
	RawSeq  *code.Seq     // as selected, before peephole optimization
	Code    *code.Program // compacted, encoded instruction words
	ModeReq asm.ModeReq
	Stats   codegen.Stats
	Opt     opt.Stats
}

// Words returns the encoded instruction words.
func (r *CompileResult) Words() []uint64 {
	out := make([]uint64, len(r.Code.Words))
	for i, w := range r.Code.Words {
		out[i] = w.Bits
	}
	return out
}

// SeqLen is the pre-compaction code size (number of RT instructions).
func (r *CompileResult) SeqLen() int { return r.Seq.Len() }

// CodeLen is the post-compaction code size (number of instruction words).
func (r *CompileResult) CodeLen() int { return r.Code.Len() }

// Frozen reports whether the target's encoding tables are baked and its
// BDD manager read-only (always true for Retarget-built targets).
func (t *Target) Frozen() bool { return t.Encoder != nil && t.Encoder.Frozen() }

// CompileSourceContext compiles RecC source text for the target,
// observing ctx cancellation between pipeline stages.  Safe for concurrent
// use on a frozen target.
func (t *Target) CompileSourceContext(ctx context.Context, src string, opts CompileOptions) (*CompileResult, error) {
	prog, err := cfront.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: RecC frontend: %w", err)
	}
	return t.CompileProgramContext(ctx, prog, opts)
}

// CompileProgramContext compiles an IR program for the target.  ctx
// cancellation is observed between stages (bind, selection, peephole,
// compaction, encoding); a cancelled compile returns ctx.Err wrapped in a
// *diag.BudgetError so servers map it onto their timeout class.
//
// On a frozen target the whole compilation touches no shared mutable
// state: selection walks read-only tables, and encoding runs in a private
// copy-on-write BDD view, so concurrent compiles need no locking and the
// produced words are byte-identical to a serial run's.
func (t *Target) CompileProgramContext(ctx context.Context, prog *ir.Program, opts CompileOptions) (*CompileResult, error) {
	opts.Obs.Registry().Counter("record_core_compiles_total",
		"program compilations started").Inc()
	phaseSec := phaseSeconds(opts.Obs.Registry())
	// One throwaway encoding session per compilation; long-lived callers
	// should hold a Compiler, whose pooled sessions and pre-resolved
	// instruments avoid the per-call registry lookups and view allocation.
	sess := t.Encoder.NewSessionObs(opts.Obs)
	return t.compile(ctx, prog, opts, sess, opts.Obs, func(stage string, seconds float64) {
		phaseSec.With(stage).Observe(seconds)
	})
}

// compile is the shared per-program pipeline behind CompileProgramContext
// and Compiler: bind → select → peephole → compact → encode, using the
// caller-provided encoding session (owned by the caller; never retained)
// and reporting each stage's wall clock through observe.
func (t *Target) compile(ctx context.Context, prog *ir.Program, opts CompileOptions, sess *asm.Session, parent *obs.Scope, observe func(stage string, seconds float64)) (*CompileResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	check := func(stage string) error {
		if err := ctx.Err(); err != nil {
			return &diag.BudgetError{Resource: "deadline", Cause: fmt.Errorf("compile cancelled at %s: %w", stage, err)}
		}
		return nil
	}
	cSpan, scope := parent.Start("compile")
	defer cSpan.End()
	// stage wraps one pipeline stage in a span and the phase histogram;
	// the returned func must run exactly once, error path included.  The
	// stage's own wall-clock measurement feeds both, via Event, so tracing
	// a stage costs one ring append rather than a Start/End pair.
	stage := func(name string) func() {
		from := time.Now()
		return func() {
			d := time.Since(from)
			scope.Event(name, d)
			observe(name, d.Seconds())
		}
	}
	done := stage("bind")
	b, err := bind.Bind(prog, t.Net)
	if err != nil {
		done()
		return nil, err
	}
	ets, err := b.LowerProgram(prog)
	done()
	if err != nil {
		return nil, err
	}
	if err := check("selection"); err != nil {
		return nil, err
	}
	done = stage("select")
	gen := codegen.New(t.Grammar, t.Parser, b)
	raw, err := gen.Compile(ets)
	done()
	if err != nil {
		return nil, err
	}
	seq := raw
	var optStats opt.Stats
	if !opts.NoPeephole {
		done = stage("peephole")
		seq, optStats = opt.Optimize(raw)
		done()
	}
	if err := check("compaction"); err != nil {
		return nil, err
	}
	done = stage("compact")
	prg, err := compact.Compact(seq, sess, compact.Options{Disable: opts.NoCompaction, Obs: scope})
	if err != nil {
		done()
		return nil, err
	}
	err = compact.Verify(seq, prg, sess)
	done()
	if err != nil {
		return nil, err
	}
	if err := check("encoding"); err != nil {
		return nil, err
	}
	done = stage("encode")
	mode, err := sess.EncodeProgram(prg)
	done()
	if err != nil {
		return nil, err
	}
	cSpan.SetAttr("instrs", seq.Len())
	cSpan.SetAttr("words", prg.Len())
	return &CompileResult{
		Program: prog,
		Binding: b,
		Seq:     seq,
		RawSeq:  raw,
		Code:    prg,
		ModeReq: mode,
		Stats:   gen.Stats,
		Opt:     optStats,
	}, nil
}

// Listing renders the compiled program as an annotated listing.
func (t *Target) Listing(r *CompileResult) string {
	return t.Encoder.Listing(r.Code)
}

// Execute runs compiled code on the netlist simulator and returns the final
// values of every program variable (read back from the bound data memory).
func (t *Target) Execute(r *CompileResult) (ir.Env, error) {
	s := sim.New(t.Net)
	if len(r.ModeReq) > 0 {
		for storage, val := range r.ModeReq {
			if err := s.SetMemory(storage, []int64{val}); err != nil {
				return nil, err
			}
		}
	}
	for storage, img := range r.Binding.InitialImages(r.Program) {
		if err := s.SetMemory(storage, img); err != nil {
			return nil, err
		}
	}
	if err := s.RunProgram(r.Words()); err != nil {
		return nil, err
	}
	env := make(ir.Env)
	for _, d := range r.Program.Decls {
		place, _ := r.Binding.AddrOf(d.Name)
		memory := s.Mem[place.Storage]
		cells := make([]int64, d.Cells())
		copy(cells, memory[place.Addr:place.Addr+d.Cells()])
		env[d.Name] = cells
	}
	return env, nil
}

// CheckAgainstOracle compiles nothing new: it compares the simulator
// results with the IR interpreter on the same program and word width,
// returning a descriptive error on the first mismatch.
func (t *Target) CheckAgainstOracle(r *CompileResult) error {
	got, err := t.Execute(r)
	if err != nil {
		return fmt.Errorf("core: simulation: %w", err)
	}
	want, err := ir.Run(r.Program, r.Binding.Width)
	if err != nil {
		return fmt.Errorf("core: oracle: %w", err)
	}
	for _, d := range r.Program.Decls {
		for i := range want[d.Name] {
			if got[d.Name][i] != want[d.Name][i] {
				return fmt.Errorf("core: %s[%d] = %d on hardware, %d per oracle",
					d.Name, i, got[d.Name][i], want[d.Name][i])
			}
		}
	}
	return nil
}
