package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/rtl"
)

// randomProgram builds a random straight-line program over a handful of
// scalars and one array, using only operators every test machine supports.
func randomProgram(rng *rand.Rand) *ir.Program {
	scalars := []string{"v0", "v1", "v2", "v3"}
	p := &ir.Program{}
	for _, s := range scalars {
		p.Decls = append(p.Decls, &ir.Decl{
			Name: s, Init: []int64{int64(rng.Intn(2000) - 1000)}})
	}
	p.Decls = append(p.Decls, &ir.Decl{Name: "arr", Size: 4,
		Init: []int64{int64(rng.Intn(100)), int64(rng.Intn(100)),
			int64(rng.Intn(100)), int64(rng.Intn(100))}})

	ops := []rtl.Op{rtl.OpAdd, rtl.OpSub, rtl.OpMul, rtl.OpAnd, rtl.OpOr, rtl.OpXor}
	var gen func(depth int) ir.Expr
	gen = func(depth int) ir.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			switch rng.Intn(4) {
			case 0:
				return &ir.Const{Val: int64(rng.Intn(512) - 256)}
			case 1:
				return &ir.Ref{Name: "arr", Index: &ir.Const{Val: int64(rng.Intn(4))}}
			default:
				return &ir.Ref{Name: scalars[rng.Intn(len(scalars))]}
			}
		}
		if rng.Intn(8) == 0 {
			return &ir.Un{Op: rtl.OpNeg, X: gen(depth - 1)}
		}
		return &ir.Bin{Op: ops[rng.Intn(len(ops))], X: gen(depth - 1), Y: gen(depth - 1)}
	}

	nStmts := 1 + rng.Intn(5)
	for i := 0; i < nStmts; i++ {
		var lhs *ir.Ref
		if rng.Intn(4) == 0 {
			lhs = &ir.Ref{Name: "arr", Index: &ir.Const{Val: int64(rng.Intn(4))}}
		} else {
			lhs = &ir.Ref{Name: scalars[rng.Intn(len(scalars))]}
		}
		p.Body = append(p.Body, &ir.Assign{LHS: lhs, RHS: gen(2 + rng.Intn(2))})
	}
	return p
}

// TestPropRandomProgramsMicro16 compiles random programs and checks the
// netlist simulation against the IR interpreter — the end-to-end fuzz of
// the whole pipeline (selection, scheduling, spilling, splitting,
// peephole, compaction, encoding, simulation).
func TestPropRandomProgramsMicro16(t *testing.T) {
	tg := retargetMicro16(t)
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 150; trial++ {
		p := randomProgram(rng)
		res, err := tg.CompileProgramContext(context.Background(), p, CompileOptions{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nprogram: %v", trial, err, p.Body)
		}
		if err := tg.CheckAgainstOracle(res); err != nil {
			t.Fatalf("trial %d: %v\nprogram: %v\ncode:\n%s",
				trial, err, p.Body, res.Seq)
		}
	}
}

// TestPropRandomProgramsNoPeephole isolates the peephole pass: raw and
// optimized code must both match the oracle.
func TestPropRandomProgramsNoPeephole(t *testing.T) {
	tg := retargetMicro16(t)
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 60; trial++ {
		p := randomProgram(rng)
		raw, err := tg.CompileProgramContext(context.Background(), p, CompileOptions{NoPeephole: true, NoCompaction: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tg.CheckAgainstOracle(raw); err != nil {
			t.Fatalf("trial %d (raw): %v", trial, err)
		}
	}
}
