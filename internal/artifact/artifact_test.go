package artifact

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dspstone"
	"repro/internal/models"
)

func retarget(t testing.TB, model string) (*core.Target, string) {
	t.Helper()
	mdl, ok := models.Get(model)
	if !ok {
		t.Fatalf("model %s missing", model)
	}
	tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatalf("retarget %s: %v", model, err)
	}
	return tg, mdl
}

// TestRoundTripGolden retargets the TMS320C25, encodes and decodes the
// artifact, compiles a DSPStone kernel through the decoded Target and
// requires the emitted words to be identical to the fresh-Target compile.
func TestRoundTripGolden(t *testing.T) {
	tg, mdl := retarget(t, "tms320c25")
	k, ok := dspstone.Get("dot_product")
	if !ok {
		t.Fatal("kernel dot_product missing")
	}

	fresh, err := tg.CompileSourceContext(context.Background(), k.Source, core.CompileOptions{})
	if err != nil {
		t.Fatalf("fresh compile: %v", err)
	}

	a, err := New(tg, mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	data, err := a.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	a2, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if a2.Key != a.Key || a2.Name != tg.Name {
		t.Fatalf("metadata lost: key %q name %q", a2.Key, a2.Name)
	}
	tg2, err := a2.Target()
	if err != nil {
		t.Fatalf("Target: %v", err)
	}
	if tg2.Base.Len() != tg.Base.Len() {
		t.Fatalf("template count %d -> %d", tg.Base.Len(), tg2.Base.Len())
	}
	if len(tg2.Grammar.Rules) != len(tg.Grammar.Rules) {
		t.Fatalf("rule count %d -> %d", len(tg.Grammar.Rules), len(tg2.Grammar.Rules))
	}

	decoded, err := tg2.CompileSourceContext(context.Background(), k.Source, core.CompileOptions{})
	if err != nil {
		t.Fatalf("decoded compile: %v", err)
	}
	fw, dw := fresh.Words(), decoded.Words()
	if len(fw) != len(dw) {
		t.Fatalf("word count %d -> %d", len(fw), len(dw))
	}
	for i := range fw {
		if fw[i] != dw[i] {
			t.Fatalf("word %d: fresh %#x, decoded %#x", i, fw[i], dw[i])
		}
	}
	if tg.Listing(fresh) != tg2.Listing(decoded) {
		t.Fatal("listings differ between fresh and decoded targets")
	}
	// The decoded target must also pass the hardware-vs-oracle check.
	if err := tg2.CheckAgainstOracle(decoded); err != nil {
		t.Fatalf("decoded target fails oracle: %v", err)
	}
}

// TestEncodeDeterministic asserts that two independent Retarget runs of
// the same model encode to byte-identical artifacts (satellite: map-order
// nondeterminism in grammar/BURS table construction would surface here).
func TestEncodeDeterministic(t *testing.T) {
	for _, model := range []string{"demo", "tms320c25"} {
		tg1, mdl := retarget(t, model)
		tg2, _ := retarget(t, model)
		a1, err := New(tg1, mdl, core.RetargetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		a2, err := New(tg2, mdl, core.RetargetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b1, err := a1.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := a2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: independent retargets encode differently (%d vs %d bytes)", model, len(b1), len(b2))
		}
	}
}

func TestKeySensitivity(t *testing.T) {
	mdl, _ := models.Get("demo")
	base := Key(mdl, core.RetargetOptions{})
	if got := Key(mdl, core.RetargetOptions{}); got != base {
		t.Fatal("key not stable")
	}
	if Key(mdl+" ", core.RetargetOptions{}) == base {
		t.Fatal("key ignores model source")
	}
	if Key(mdl, core.RetargetOptions{NoExtension: true}) == base {
		t.Fatal("key ignores options")
	}
	// Normalized defaults share a key with the explicit default values.
	explicit := core.RetargetOptions{}
	explicit.ISE.MaxAlts = 4096
	explicit.ISE.MaxTemplates = 65536
	if Key(mdl, explicit) != base {
		t.Fatal("key does not normalize default ISE limits")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tg, mdl := retarget(t, "demo")
	a, err := New(tg, mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Fatal("truncated artifact accepted")
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-10] ^= 0x40
	if _, err := Decode(flipped); err == nil {
		t.Fatal("bit-flipped artifact accepted")
	}
	if _, err := Decode([]byte("not an artifact")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}
