// Package artifact serializes the full retarget product — template base,
// tree grammar, BURS match tables and model metadata — into a versioned,
// deterministic, content-addressed artifact.
//
// Retargeting is automatic but not free (the paper's table 3 measures
// minutes of CPU per processor model), while the artifact is a pure
// function of the MDL source and the retargeting options.  Encoding that
// product once and decoding it into a working core.Target lets a cache
// (internal/rcache) and a compile service (cmd/recordd) amortize the
// expensive phases — ISE, template extension, grammar construction, parser
// generation — across every program compiled for the same model.  Only the
// cheap frontend (parse + elaborate) is re-run on decode, to rebuild the
// netlist the simulator and binder need.
//
// Determinism: encoding the same Target twice, or Targets from two
// independent Retarget runs of the same model, yields byte-identical
// artifacts.  BDD nodes are renumbered in template order by bdd.Exporter,
// match tables are emitted sorted (burs.BuildTables), and wall-clock
// durations are excluded from the stats.  The content address is
// SHA-256 over the format version, an options fingerprint and the MDL
// source — computable without running the pipeline, which is what makes
// cache lookups free.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/bdd"
	"repro/internal/burs"
	"repro/internal/core"
	"repro/internal/grammar"
	"repro/internal/hdl"
	"repro/internal/ise"
	"repro/internal/netlist"
	"repro/internal/rewrite"
	"repro/internal/rtl"
)

// FormatVersion is bumped whenever the wire form changes; decoders reject
// other versions (a stale cache file is a miss, not an error).
//
// Version 2 added the frozen encoding tables (per-template solo word
// conditions) so decoded targets are born frozen without re-running the
// freeze-time conjunction sweep.
const FormatVersion = 2

// magic heads every encoded artifact, followed by the payload checksum.
const magic = "recordart"

// TemplateEnc is the wire form of one RT template.  Static and Solo are
// bdd.Exporter serial ids: the raw execution condition and the frozen
// single-instruction word condition Freeze baked from it.
type TemplateEnc struct {
	ID        int         `json:"id"`
	Dest      string      `json:"dest"`
	DestPort  bool        `json:"dest_port,omitempty"`
	DestAddr  *rtl.Expr   `json:"dest_addr,omitempty"`
	Src       *rtl.Expr   `json:"src"`
	Static    int         `json:"static"`
	Solo      int         `json:"solo"`
	Dynamic   []*rtl.Expr `json:"dynamic,omitempty"`
	Width     int         `json:"width"`
	Synthetic bool        `json:"synthetic,omitempty"`
}

// RuleEnc is the wire form of one grammar rule; Template indexes the
// artifact's template list (-1 for start/stop rules).
type RuleEnc struct {
	ID       int          `json:"id"`
	Kind     int          `json:"kind"`
	LHS      int          `json:"lhs"`
	Pat      *grammar.Pat `json:"pat"`
	Cost     int          `json:"cost"`
	Template int          `json:"template"`
	Dest     string       `json:"dest,omitempty"`
}

// BDDTable carries the shared condition universe: the manager's variable
// names in declaration order (indices must match ise.VarMap) and the
// renumbered node table.
type BDDTable struct {
	Names []string         `json:"names"`
	Nodes []bdd.SerialNode `json:"nodes"`
}

// VarsEnc is the wire form of ise.VarMap (minus the manager).
type VarsEnc struct {
	InsnVars []int            `json:"insn_vars"`
	ModeVars map[string][]int `json:"mode_vars,omitempty"`
}

// StatsEnc keeps the deterministic counters of RetargetStats; durations
// are measurements, not products, and would break byte-determinism.
type StatsEnc struct {
	Extracted int           `json:"extracted"`
	Templates int           `json:"templates"`
	Grammar   grammar.Stats `json:"grammar"`
	ISE       ise.Stats     `json:"ise"`
}

// Artifact is the complete serialized retarget product.
type Artifact struct {
	Format       int           `json:"format"`
	Key          string        `json:"key"`
	Name         string        `json:"name"`
	Options      string        `json:"options"`
	Model        string        `json:"model"`
	BDD          BDDTable      `json:"bdd"`
	Vars         VarsEnc       `json:"vars"`
	Templates    []TemplateEnc `json:"templates"`
	NTNames      []string      `json:"nt_names"`
	Spec         grammar.Spec  `json:"spec"`
	Rules        []RuleEnc     `json:"rules"`
	Tables       burs.Tables   `json:"tables"`
	ParserSource string        `json:"parser_source,omitempty"`
	Stats        StatsEnc      `json:"stats"`
}

// Fingerprint renders the product-relevant retargeting options as a
// canonical string.  Reporter and Budget are excluded: they affect
// diagnostics and effort, not (absent budget exhaustion) the product.
// ISE limits are normalized the way core.Retarget resolves them so that
// equivalent option sets share a fingerprint.
func Fingerprint(opts core.RetargetOptions) string {
	iseOpts := opts.ISE
	if iseOpts.MaxAlts <= 0 && opts.Budget != nil && opts.Budget.MaxRoutes > 0 {
		iseOpts.MaxAlts = opts.Budget.MaxRoutes
	}
	def := ise.DefaultOptions()
	if iseOpts.MaxAlts <= 0 {
		iseOpts.MaxAlts = def.MaxAlts
	}
	if iseOpts.MaxTemplates <= 0 {
		iseOpts.MaxTemplates = def.MaxTemplates
	}
	ext := rewrite.DefaultOptions()
	if opts.Extension != nil {
		ext = *opts.Extension
	}
	if ext.MaxVariantsPerTemplate <= 0 {
		ext.MaxVariantsPerTemplate = rewrite.DefaultOptions().MaxVariantsPerTemplate
	}
	ruleNames := make([]string, len(ext.Rules))
	for i, r := range ext.Rules {
		ruleNames[i] = r.Name
	}
	return fmt.Sprintf(
		"ise.maxalts=%d;ise.maxtemplates=%d;ise.msbfirst=%t;noext=%t;ext.comm=%t;ext.maxvariants=%d;ext.rules=%s;emitsrc=%t",
		iseOpts.MaxAlts, iseOpts.MaxTemplates, iseOpts.MSBFirstVars,
		opts.NoExtension, ext.Commutativity, ext.MaxVariantsPerTemplate,
		strings.Join(ruleNames, ","), opts.EmitParserSource)
}

// Key returns the content address of the artifact for (mdlSource, opts):
// SHA-256 over the format version, the options fingerprint and the MDL
// source.  It never runs the pipeline.
func Key(mdlSource string, opts core.RetargetOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s/v%d\n%s\n", magic, FormatVersion, Fingerprint(opts))
	h.Write([]byte(mdlSource))
	return hex.EncodeToString(h.Sum(nil))
}

// New captures a freshly retargeted Target as an artifact.  mdlSource and
// opts must be the inputs the Target was retargeted from; they determine
// the content address.
func New(t *core.Target, mdlSource string, opts core.RetargetOptions) (*Artifact, error) {
	if t.Base == nil || t.Grammar == nil || t.ISE == nil || t.ISE.Vars == nil {
		return nil, fmt.Errorf("artifact: target is incomplete")
	}
	if !t.Frozen() {
		return nil, fmt.Errorf("artifact: target is not frozen (retarget always freezes; construct targets through core.Retarget)")
	}
	a := &Artifact{
		Format:       FormatVersion,
		Key:          Key(mdlSource, opts),
		Name:         t.Name,
		Options:      Fingerprint(opts),
		Model:        mdlSource,
		NTNames:      t.Grammar.NTNames,
		Spec:         t.Grammar.Spec,
		Tables:       burs.BuildTables(t.Grammar),
		ParserSource: t.ParserSource,
		Stats: StatsEnc{
			Extracted: t.Stats.Extracted,
			Templates: t.Stats.Templates,
			Grammar:   t.Stats.GrammarSz,
			ISE:       t.Stats.ISEDetails,
		},
	}

	m := t.Base.BDD
	a.BDD.Names = make([]string, m.NumVars())
	for v := range a.BDD.Names {
		a.BDD.Names[v] = m.VarName(v)
	}
	ex := bdd.NewExporter()
	tmplIdx := make(map[*rtl.Template]int, t.Base.Len())
	for i, tm := range t.Base.Templates {
		tmplIdx[tm] = i
		a.Templates = append(a.Templates, TemplateEnc{
			ID:        tm.ID,
			Dest:      tm.Dest,
			DestPort:  tm.DestPort,
			DestAddr:  tm.DestAddr,
			Src:       tm.Src,
			Static:    ex.Export(tm.Cond.Static),
			Solo:      ex.Export(t.Encoder.SoloCond(tm)),
			Dynamic:   tm.Cond.Dynamic,
			Width:     tm.Width,
			Synthetic: tm.Synthetic,
		})
	}
	a.BDD.Nodes = ex.Table()

	a.Vars.InsnVars = t.ISE.Vars.InsnVars
	if len(t.ISE.Vars.ModeVars) > 0 {
		a.Vars.ModeVars = t.ISE.Vars.ModeVars
	}

	for _, r := range t.Grammar.Rules {
		re := RuleEnc{
			ID: r.ID, Kind: int(r.Kind), LHS: r.LHS,
			Pat: r.Pat, Cost: r.Cost, Template: -1, Dest: r.Dest,
		}
		if r.Template != nil {
			idx, ok := tmplIdx[r.Template]
			if !ok {
				return nil, fmt.Errorf("artifact: rule %d references a template outside the base", r.ID)
			}
			re.Template = idx
		}
		a.Rules = append(a.Rules, re)
	}
	return a, nil
}

// Encode renders the artifact in its wire form: a header line
// "recordart <version> <sha256-of-payload>" followed by the deterministic
// JSON payload.  The checksum makes truncated or bit-rotted cache files
// detectable before any field is trusted.
func (a *Artifact) Encode() ([]byte, error) {
	payload, err := json.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("artifact: encode: %w", err)
	}
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %d %s\n", magic, a.Format, hex.EncodeToString(sum[:]))
	b.Write(payload)
	return b.Bytes(), nil
}

// Decode parses and integrity-checks an encoded artifact.  Any framing,
// checksum, version or structural mismatch returns an error; callers (the
// cache) treat that as a miss, not a failure.
func Decode(data []byte) (*Artifact, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("artifact: decode: missing header")
	}
	var gotMagic, sumHex string
	var version int
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %d %s", &gotMagic, &version, &sumHex); err != nil || gotMagic != magic {
		return nil, fmt.Errorf("artifact: decode: bad header %q", string(data[:nl]))
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("artifact: decode: format %d not supported (want %d)", version, FormatVersion)
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, fmt.Errorf("artifact: decode: payload checksum mismatch (corrupt or truncated)")
	}
	a := &Artifact{}
	if err := json.Unmarshal(payload, a); err != nil {
		return nil, fmt.Errorf("artifact: decode: %w", err)
	}
	if a.Format != FormatVersion {
		return nil, fmt.Errorf("artifact: decode: payload format %d disagrees with header", a.Format)
	}
	return a, nil
}

// Target rebuilds a working compiler from the artifact: the cheap frontend
// re-runs on the stored MDL source (netlist for the binder and simulator),
// while templates, conditions, grammar and match tables are restored from
// the wire form without re-running ISE, extension or grammar construction.
func (a *Artifact) Target() (*core.Target, error) {
	model, err := hdl.ParseAndCheck(a.Model)
	if err != nil {
		return nil, fmt.Errorf("artifact: stored model no longer parses: %w", err)
	}
	net, err := netlist.Elaborate(model)
	if err != nil {
		return nil, fmt.Errorf("artifact: stored model no longer elaborates: %w", err)
	}

	m := bdd.New()
	for _, name := range a.BDD.Names {
		m.DeclareVar(name)
	}
	im, err := bdd.NewImporter(m, a.BDD.Nodes)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}

	templates := make([]*rtl.Template, len(a.Templates))
	solo := make([]*bdd.Node, len(a.Templates))
	for i, te := range a.Templates {
		static, err := im.Node(te.Static)
		if err != nil {
			return nil, fmt.Errorf("artifact: template %d: %w", te.ID, err)
		}
		if solo[i], err = im.Node(te.Solo); err != nil {
			return nil, fmt.Errorf("artifact: template %d solo condition: %w", te.ID, err)
		}
		templates[i] = &rtl.Template{
			ID:        te.ID,
			Dest:      te.Dest,
			DestPort:  te.DestPort,
			DestAddr:  te.DestAddr,
			Src:       te.Src,
			Cond:      rtl.ExecCond{Static: static, Dynamic: te.Dynamic},
			Width:     te.Width,
			Synthetic: te.Synthetic,
		}
	}
	base, err := rtl.RestoreBase(m, templates)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}

	vars := &ise.VarMap{M: m, InsnVars: a.Vars.InsnVars, ModeVars: a.Vars.ModeVars}
	if vars.ModeVars == nil {
		vars.ModeVars = make(map[string][]int)
	}
	if vars.InsnWidth() != net.InsnWidth {
		return nil, fmt.Errorf("artifact: instruction width %d disagrees with elaborated model (%d)",
			vars.InsnWidth(), net.InsnWidth)
	}

	rules := make([]*grammar.Rule, len(a.Rules))
	for i, re := range a.Rules {
		r := &grammar.Rule{
			ID: re.ID, Kind: grammar.RuleKind(re.Kind), LHS: re.LHS,
			Pat: re.Pat, Cost: re.Cost, Dest: re.Dest,
		}
		if re.Template >= 0 {
			if re.Template >= len(templates) {
				return nil, fmt.Errorf("artifact: rule %d references template %d of %d", re.ID, re.Template, len(templates))
			}
			r.Template = templates[re.Template]
		}
		rules[i] = r
	}
	g, err := grammar.Restore(a.NTNames, rules, a.Spec)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	parser, err := burs.RestoreParser(g, a.Tables)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}

	var background []string
	for _, st := range net.Seq {
		if st.PC {
			background = append(background, st.QName())
		}
	}
	enc := asm.NewEncoder(vars, base, background...)
	// Decoded targets are born frozen: the expensive solo conditions come
	// from the wire, only quiescence negations and the NOP are rebuilt.
	if err := enc.FreezeWithSolo(solo); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	t := &core.Target{
		Name:         a.Name,
		Model:        model,
		Net:          net,
		ISE:          &ise.Result{Base: base, Vars: vars, Stats: a.Stats.ISE, Net: net},
		Base:         base,
		Grammar:      g,
		Parser:       parser,
		Encoder:      enc,
		ParserSource: a.ParserSource,
	}
	t.Stats.Extracted = a.Stats.Extracted
	t.Stats.Templates = a.Stats.Templates
	t.Stats.GrammarSz = a.Stats.Grammar
	t.Stats.ISEDetails = a.Stats.ISE
	return t, nil
}

// RuleCount returns the number of grammar rules in the artifact.
func (a *Artifact) RuleCount() int { return len(a.Rules) }

// TemplateCount returns the number of RT templates in the artifact.
func (a *Artifact) TemplateCount() int { return len(a.Templates) }

// Cacheable reports whether t's retarget product may be stored under its
// content address.  A run whose budget expired mid-extraction (Partial) is
// input-independent only by accident — the same key retried with a larger
// budget must not hit the degraded product.
func Cacheable(t *core.Target) bool {
	return t != nil && !t.Stats.ISEDetails.Partial
}
