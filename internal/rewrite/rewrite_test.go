package rewrite

import (
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/rtl"
)

func read(name string) *rtl.Expr { return rtl.NewRead(name, 16, nil) }

func TestPatternMatchBasics(t *testing.T) {
	// (a + b) matches Op(+, $x, $y)
	e := rtl.NewOp(rtl.OpAdd, 16, read("a.r"), read("b.r"))
	p := Op(rtl.OpAdd, V("x"), V("y"))
	b, ok := p.Match(e)
	if !ok {
		t.Fatal("match failed")
	}
	if b.Sub["x"].Storage != "a.r" || b.Sub["y"].Storage != "b.r" {
		t.Errorf("bindings = %v", b.Sub)
	}
	// Wrong operator.
	if _, ok := Op(rtl.OpSub, V("x"), V("y")).Match(e); ok {
		t.Error("sub pattern matched add")
	}
}

func TestPatternNonlinear(t *testing.T) {
	// $x + $x only matches equal operands.
	p := Op(rtl.OpAdd, V("x"), V("x"))
	same := rtl.NewOp(rtl.OpAdd, 16, read("a.r"), read("a.r"))
	diff := rtl.NewOp(rtl.OpAdd, 16, read("a.r"), read("b.r"))
	if _, ok := p.Match(same); !ok {
		t.Error("nonlinear match failed on equal operands")
	}
	if _, ok := p.Match(diff); ok {
		t.Error("nonlinear match succeeded on different operands")
	}
}

func TestPatternConsts(t *testing.T) {
	e := rtl.NewOp(rtl.OpShl, 16, read("a.r"), rtl.NewConst(3, 4))
	if _, ok := Op(rtl.OpShl, V("a"), C(3)).Match(e); !ok {
		t.Error("PConst match failed")
	}
	if _, ok := Op(rtl.OpShl, V("a"), C(2)).Match(e); ok {
		t.Error("PConst matched wrong value")
	}
	b, ok := Op(rtl.OpShl, V("a"), AC("k")).Match(e)
	if !ok || b.Const["k"] != 3 {
		t.Errorf("PAnyConst binding = %v", b)
	}
	// AnyConst refuses non-constants.
	e2 := rtl.NewOp(rtl.OpShl, 16, read("a.r"), read("b.r"))
	if _, ok := Op(rtl.OpShl, V("a"), AC("k")).Match(e2); ok {
		t.Error("PAnyConst matched a register read")
	}
}

func TestInstantiate(t *testing.T) {
	b := &Bindings{
		Sub:   map[string]*rtl.Expr{"a": read("x.r")},
		Const: map[string]int64{"c": 8},
	}
	p := Op(rtl.OpMul, V("a"), AC("c"))
	e, err := p.Instantiate(b, 16)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(x.r * 8)" {
		t.Errorf("instantiated = %s", e)
	}
	if e.Width != 16 || e.Kids[1].Width != 16 {
		t.Errorf("widths = %d/%d", e.Width, e.Kids[1].Width)
	}
	// Unbound variable errors.
	if _, err := Op(rtl.OpAdd, V("zz"), V("a")).Instantiate(b, 16); err == nil {
		t.Error("unbound variable must error")
	}
}

func newBase() (*rtl.Base, *bdd.Manager) {
	m := bdd.New()
	return rtl.NewBase(m), m
}

func addTemplate(b *rtl.Base, m *bdd.Manager, dest string, src *rtl.Expr) *rtl.Template {
	return b.Add(&rtl.Template{
		Dest: dest, Src: src, Width: src.Width,
		Cond: rtl.ExecCond{Static: m.True()},
	})
}

func TestCommutativityExtension(t *testing.T) {
	b, m := newBase()
	// acc := mem + acc  (a MAC-ish shape)
	addTemplate(b, m, "acc.r", rtl.NewOp(rtl.OpAdd, 16, read("mem.m"), read("acc.r")))
	n := Extend(b, Options{Commutativity: true})
	if n != 1 {
		t.Fatalf("added %d templates, want 1:\n%s", n, b)
	}
	found := false
	for _, tpl := range b.Templates {
		if tpl.Src.String() == "(acc.r + mem.m)" {
			found = true
			if !tpl.Synthetic {
				t.Error("swapped template must be synthetic")
			}
		}
	}
	if !found {
		t.Fatalf("swapped template missing:\n%s", b)
	}
}

func TestCommutativityNested(t *testing.T) {
	b, m := newBase()
	// acc := (x * y) + acc: 2 commutative nodes -> 3 new variants.
	mac := rtl.NewOp(rtl.OpAdd, 16,
		rtl.NewOp(rtl.OpMul, 16, read("x.r"), read("y.r")), read("acc.r"))
	addTemplate(b, m, "acc.r", mac)
	n := Extend(b, Options{Commutativity: true})
	if n != 3 {
		t.Fatalf("added %d templates, want 3:\n%s", n, b)
	}
	want := "acc.r := (acc.r + (y.r * x.r))"
	ok := false
	for _, tpl := range b.Templates {
		if tpl.String() == want {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("double-swap variant missing:\n%s", b)
	}
}

func TestNonCommutativeUntouched(t *testing.T) {
	b, m := newBase()
	addTemplate(b, m, "acc.r", rtl.NewOp(rtl.OpSub, 16, read("a.r"), read("b.r")))
	if n := Extend(b, Options{Commutativity: true}); n != 0 {
		t.Fatalf("subtraction gained %d commuted variants", n)
	}
}

func TestMul2ShiftRule(t *testing.T) {
	b, m := newBase()
	addTemplate(b, m, "acc.r",
		rtl.NewOp(rtl.OpShl, 16, read("acc.r"), rtl.NewConst(3, 4)))
	n := Extend(b, Options{Rules: StandardLibrary()})
	if n == 0 {
		t.Fatalf("no templates added:\n%s", b)
	}
	found := false
	for _, tpl := range b.Templates {
		if strings.Contains(tpl.String(), "acc.r * 8") {
			found = true
		}
	}
	if !found {
		t.Fatalf("mul-by-8 variant missing:\n%s", b)
	}
}

func TestNegIsZeroSubRule(t *testing.T) {
	b, m := newBase()
	addTemplate(b, m, "acc.r",
		rtl.NewOp(rtl.OpSub, 16, rtl.NewConst(0, 16), read("b.r")))
	Extend(b, Options{Rules: StandardLibrary()})
	found := false
	for _, tpl := range b.Templates {
		if tpl.Src.Kind == rtl.OpApp && tpl.Src.Op == rtl.OpNeg {
			found = true
		}
	}
	if !found {
		t.Fatalf("neg variant missing:\n%s", b)
	}
}

func TestPassthroughRule(t *testing.T) {
	b, m := newBase()
	addTemplate(b, m, "acc.r",
		rtl.NewOp(rtl.OpPass, 16, read("b.r")))
	Extend(b, Options{Rules: StandardLibrary()})
	found := false
	for _, tpl := range b.Templates {
		if tpl.Src.Kind == rtl.Read && tpl.Src.Storage == "b.r" {
			found = true
		}
	}
	if !found {
		t.Fatalf("plain move variant missing:\n%s", b)
	}
}

func TestExtendDedupsAgainstExisting(t *testing.T) {
	b, m := newBase()
	addTemplate(b, m, "acc.r", rtl.NewOp(rtl.OpAdd, 16, read("a.r"), read("b.r")))
	addTemplate(b, m, "acc.r", rtl.NewOp(rtl.OpAdd, 16, read("b.r"), read("a.r")))
	// Both orders already exist: commutativity adds nothing.
	if n := Extend(b, Options{Commutativity: true}); n != 0 {
		t.Fatalf("added %d, want 0", n)
	}
}

func TestExtendPreservesConditions(t *testing.T) {
	b, m := newBase()
	x := m.Var(0)
	b.Add(&rtl.Template{
		Dest: "acc.r", Width: 16,
		Src:  rtl.NewOp(rtl.OpAdd, 16, read("a.r"), read("b.r")),
		Cond: rtl.ExecCond{Static: x},
	})
	Extend(b, Options{Commutativity: true})
	for _, tpl := range b.Templates {
		if tpl.Cond.Static != x {
			t.Errorf("template %s lost its condition", tpl)
		}
	}
}

func TestVariantLimit(t *testing.T) {
	b, m := newBase()
	// Deep chain of commutative adds would explode; the limit caps it.
	e := read("r0.r")
	for i := 1; i < 12; i++ {
		e = rtl.NewOp(rtl.OpAdd, 16, e, read("r1.r"))
	}
	addTemplate(b, m, "acc.r", e)
	n := Extend(b, Options{Commutativity: true, MaxVariantsPerTemplate: 16})
	if n > 16 {
		t.Fatalf("limit not enforced: %d variants", n)
	}
}
