// Package rewrite implements the template-base extension of paper
// section 3: the RT template base delivered by instruction-set extraction
// is enlarged by templates that cannot be derived directly from the
// processor model.
//
// Two mechanisms are provided:
//
//   - Commutativity.  For each template containing a commutative operator, a
//     complementary template with swapped arguments is added.  This avoids
//     code-quality loss on badly structured expression trees, which matters
//     for the sum-of-product computations dominating DSP code.
//
//   - An external transformation library of algebraic rewrite rules.  Each
//     rule pairs a program-side pattern with a hardware-side pattern; when a
//     template subtree matches the hardware side, a synthetic template with
//     the program-side form is added, so that source programs written in
//     the program form can be covered by the same hardware route.
package rewrite

import (
	"fmt"

	"repro/internal/rtl"
)

// PatKind discriminates pattern nodes.
type PatKind int

// Pattern node kinds.
const (
	PVar      PatKind = iota // matches any subtree, binds it by name
	PConst                   // matches a specific constant value
	PAnyConst                // matches any constant, binds its value by name
	POp                      // matches an operator application
)

// Pattern is a tree pattern over RT expressions.
type Pattern struct {
	Kind PatKind
	Name string // PVar / PAnyConst
	Val  int64  // PConst
	Op   rtl.Op // POp
	Kids []*Pattern
}

// V builds a subtree variable pattern.
func V(name string) *Pattern { return &Pattern{Kind: PVar, Name: name} }

// C builds a specific-constant pattern.
func C(val int64) *Pattern { return &Pattern{Kind: PConst, Val: val} }

// AC builds an any-constant pattern binding the value as name.
func AC(name string) *Pattern { return &Pattern{Kind: PAnyConst, Name: name} }

// Op builds an operator pattern.
func Op(op rtl.Op, kids ...*Pattern) *Pattern {
	return &Pattern{Kind: POp, Op: op, Kids: kids}
}

func (p *Pattern) String() string {
	switch p.Kind {
	case PVar:
		return "$" + p.Name
	case PConst:
		return fmt.Sprintf("%d", p.Val)
	case PAnyConst:
		return "#" + p.Name
	case POp:
		if len(p.Kids) == 1 {
			return fmt.Sprintf("%s(%s)", p.Op, p.Kids[0])
		}
		return fmt.Sprintf("(%s %s %s)", p.Kids[0], p.Op, p.Kids[1])
	}
	return "?"
}

// Bindings holds the result of a successful match.
type Bindings struct {
	Sub   map[string]*rtl.Expr // PVar bindings
	Const map[string]int64     // PAnyConst bindings
}

// Match attempts to match p against e, returning bindings on success.
func (p *Pattern) Match(e *rtl.Expr) (*Bindings, bool) {
	b := &Bindings{Sub: make(map[string]*rtl.Expr), Const: make(map[string]int64)}
	if p.match(e, b) {
		return b, true
	}
	return nil, false
}

func (p *Pattern) match(e *rtl.Expr, b *Bindings) bool {
	switch p.Kind {
	case PVar:
		if prev, ok := b.Sub[p.Name]; ok {
			return prev.Equal(e)
		}
		b.Sub[p.Name] = e
		return true
	case PConst:
		return e.Kind == rtl.Const && e.Val == p.Val
	case PAnyConst:
		if e.Kind != rtl.Const {
			return false
		}
		if prev, ok := b.Const[p.Name]; ok {
			return prev == e.Val
		}
		b.Const[p.Name] = e.Val
		return true
	case POp:
		if e.Kind != rtl.OpApp || e.Op != p.Op || len(e.Kids) != len(p.Kids) {
			return false
		}
		for i, k := range p.Kids {
			if !k.match(e.Kids[i], b) {
				return false
			}
		}
		return true
	}
	return false
}

// Instantiate builds an expression from p under bindings, with the given
// result width.  Constants bound by name are looked up in b.Const.
func (p *Pattern) Instantiate(b *Bindings, width int) (*rtl.Expr, error) {
	switch p.Kind {
	case PVar:
		e, ok := b.Sub[p.Name]
		if !ok {
			return nil, fmt.Errorf("rewrite: unbound variable $%s", p.Name)
		}
		return e, nil
	case PConst:
		return rtl.NewConst(p.Val, width), nil
	case PAnyConst:
		v, ok := b.Const[p.Name]
		if !ok {
			return nil, fmt.Errorf("rewrite: unbound constant #%s", p.Name)
		}
		return rtl.NewConst(v, width), nil
	case POp:
		kids := make([]*rtl.Expr, len(p.Kids))
		for i, k := range p.Kids {
			kw := width
			if isComparison(p.Op) && width == 1 {
				// Comparison operands keep their own widths via bindings;
				// fresh constants inherit the sibling width below.
				kw = siblingWidth(p.Kids, i, b, width)
			}
			kid, err := k.Instantiate(b, kw)
			if err != nil {
				return nil, err
			}
			kids[i] = kid
		}
		return rtl.NewOp(p.Op, width, kids...), nil
	}
	return nil, fmt.Errorf("rewrite: bad pattern kind")
}

func isComparison(op rtl.Op) bool {
	switch op {
	case rtl.OpEq, rtl.OpNe, rtl.OpLt, rtl.OpLe, rtl.OpGt, rtl.OpGe:
		return true
	}
	return false
}

func siblingWidth(kids []*Pattern, i int, b *Bindings, fallback int) int {
	for j, k := range kids {
		if j == i {
			continue
		}
		if k.Kind == PVar {
			if e, ok := b.Sub[k.Name]; ok {
				return e.Width
			}
		}
	}
	return fallback
}

// Rule pairs a program-side pattern with a hardware-side pattern.
// During extension, template subtrees matching HW spawn synthetic templates
// with the Prog form substituted (the hardware still executes HW; the rule
// asserts semantic equivalence).
type Rule struct {
	Name string
	Prog *Pattern
	HW   *Pattern
	// MapConsts optionally derives program-side constant bindings from the
	// hardware-side ones (e.g. c = 2^k for shift-to-multiply).  It returns
	// false when the match should be rejected.
	MapConsts func(hw map[string]int64) (map[string]int64, bool)
}

// StandardLibrary returns the default transformation library: algebraic
// identities that commonly bridge DSP source code and datapath structure.
func StandardLibrary() []Rule {
	return []Rule{
		{
			// a * 2^k  ==  a << k
			Name: "mul2shift",
			Prog: Op(rtl.OpMul, V("a"), AC("c")),
			HW:   Op(rtl.OpShl, V("a"), AC("k")),
			MapConsts: func(hw map[string]int64) (map[string]int64, bool) {
				k := hw["k"]
				if k < 0 || k > 30 {
					return nil, false
				}
				return map[string]int64{"c": 1 << uint(k)}, true
			},
		},
		{
			// a - b  ==  a + neg(b)
			Name: "subIsAddNeg",
			Prog: Op(rtl.OpSub, V("a"), V("b")),
			HW:   Op(rtl.OpAdd, V("a"), Op(rtl.OpNeg, V("b"))),
		},
		{
			// neg(a)  ==  0 - a
			Name: "negIsZeroSub",
			Prog: Op(rtl.OpNeg, V("a")),
			HW:   Op(rtl.OpSub, C(0), V("a")),
		},
		{
			// a  ==  pass(a): wires through ALU pass modes cover plain moves
			Name: "passthrough",
			Prog: V("a"),
			HW:   Op(rtl.OpPass, V("a")),
		},
	}
}

// Options configures Extend.
type Options struct {
	Commutativity bool
	Rules         []Rule
	// MaxVariantsPerTemplate bounds combinatorial swap generation.
	MaxVariantsPerTemplate int
}

// DefaultOptions enables commutativity and the standard library.
func DefaultOptions() Options {
	return Options{
		Commutativity:          true,
		Rules:                  StandardLibrary(),
		MaxVariantsPerTemplate: 128,
	}
}

// Extend enlarges base in place with synthetic templates and returns the
// number added (paper section 3).
func Extend(base *rtl.Base, opts Options) int {
	if opts.MaxVariantsPerTemplate <= 0 {
		opts.MaxVariantsPerTemplate = 128
	}
	before := base.Len()
	// Snapshot: extension applies to extracted templates (and first-level
	// synthetic results), not to its own output transitively forever.
	snapshot := append([]*rtl.Template(nil), base.Templates...)

	for _, t := range snapshot {
		var variants []*rtl.Expr
		if opts.Commutativity {
			variants = append(variants, commuteVariants(t.Src, opts.MaxVariantsPerTemplate)...)
		}
		for _, r := range opts.Rules {
			variants = append(variants, ruleVariants(t.Src, r, opts.MaxVariantsPerTemplate)...)
		}
		for _, v := range variants {
			if v.Equal(t.Src) {
				continue
			}
			nt := &rtl.Template{
				Dest:      t.Dest,
				DestPort:  t.DestPort,
				DestAddr:  t.DestAddr,
				Src:       v,
				Width:     t.Width,
				Cond:      t.Cond,
				Synthetic: true,
			}
			base.Add(nt)
		}
	}
	return base.Len() - before
}

// commuteVariants returns every tree obtainable by swapping the operands of
// commutative operator nodes (all subsets of swap positions), excluding the
// original.
func commuteVariants(e *rtl.Expr, limit int) []*rtl.Expr {
	var out []*rtl.Expr
	var rec func(n *rtl.Expr) []*rtl.Expr
	rec = func(n *rtl.Expr) []*rtl.Expr {
		if n.Kind != rtl.OpApp {
			return []*rtl.Expr{n}
		}
		if len(n.Kids) == 1 {
			kidVars := rec(n.Kids[0])
			vars := make([]*rtl.Expr, 0, len(kidVars))
			for _, kv := range kidVars {
				vars = append(vars, rtl.NewOp(n.Op, n.Width, kv))
			}
			return vars
		}
		ls := rec(n.Kids[0])
		rs := rec(n.Kids[1])
		var vars []*rtl.Expr
		for _, l := range ls {
			for _, r := range rs {
				vars = append(vars, rtl.NewOp(n.Op, n.Width, l, r))
				if n.Op.Commutative() {
					vars = append(vars, rtl.NewOp(n.Op, n.Width, r, l))
				}
				if len(vars) > limit {
					return vars[:limit]
				}
			}
		}
		return vars
	}
	for _, v := range rec(e) {
		if !v.Equal(e) {
			out = append(out, v)
		}
	}
	return out
}

// ruleVariants applies rule r at every node of e (one application per
// variant).
func ruleVariants(e *rtl.Expr, r Rule, limit int) []*rtl.Expr {
	var out []*rtl.Expr
	// rewriteAt returns e with the node at path replaced by repl.
	var replaceAt func(n *rtl.Expr, path []int, repl *rtl.Expr) *rtl.Expr
	replaceAt = func(n *rtl.Expr, path []int, repl *rtl.Expr) *rtl.Expr {
		if len(path) == 0 {
			return repl
		}
		c := *n
		c.Kids = append([]*rtl.Expr(nil), n.Kids...)
		c.Kids[path[0]] = replaceAt(n.Kids[path[0]], path[1:], repl)
		return &c
	}
	var walk func(n *rtl.Expr, path []int)
	walk = func(n *rtl.Expr, path []int) {
		if len(out) >= limit {
			return
		}
		if b, ok := r.HW.Match(n); ok {
			accept := true
			if r.MapConsts != nil {
				mapped, okm := r.MapConsts(b.Const)
				if !okm {
					accept = false
				} else {
					b.Const = mapped
				}
			}
			if accept {
				if repl, err := r.Prog.Instantiate(b, n.Width); err == nil {
					out = append(out, replaceAt(e, path, repl))
				}
			}
		}
		for i, k := range n.Kids {
			walk(k, append(append([]int(nil), path...), i))
		}
	}
	walk(e, nil)
	return out
}
