package rclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Service is the compile-service surface shared by the single-endpoint
// Client and the multi-endpoint Fleet, so cmd/record speaks to one node
// or a fleet through the same calls.
type Service interface {
	Healthz(ctx context.Context) error
	Retarget(ctx context.Context, ref ModelRef) (*RetargetResult, error)
	Compile(ctx context.Context, ref ModelRef, source string, opts CompileOptions) (*CompileResult, error)
}

var (
	_ Service = (*Client)(nil)
	_ Service = (*Fleet)(nil)
)

// routeKey is the ring shard key for a request: the artifact content
// address when it can be computed client-side, so requests for a model
// land on the node whose cache owns that model's artifact.  Key refs are
// already the content address; inline source and bundled names hash to
// the same SHA-256 the server caches under (with default options —
// a server running non-default options still shards consistently, just
// under a different owner than its cache key, which only costs one
// peer-fetch).  Unresolvable names fall back to the breaker fingerprint:
// stable routing, arbitrary owner.
func (m ModelRef) routeKey() string {
	switch {
	case m.Key != "":
		return m.Key
	case m.Model != "":
		return artifact.Key(m.Model, core.RetargetOptions{})
	case m.ModelName != "":
		if src, ok := models.Get(m.ModelName); ok {
			return artifact.Key(src, core.RetargetOptions{})
		}
	}
	return m.fingerprint()
}

// Fleet talks to a set of recordd nodes as one service: requests shard
// across the fleet's consistent-hash ring by artifact content address,
// fail over to the next ring replica when a node is down, draining, or
// has an open circuit for the model, and optionally hedge — a second leg
// to the next replica when the first is slow, first answer wins, loser
// cancelled.  Construct with NewFleet.
type Fleet struct {
	// Policy drives cross-endpoint retries.  Each race through the
	// candidate list is one policy attempt; backoff between attempts
	// honors Retry-After hints exactly as the single-endpoint client.
	Policy resilience.Policy
	// HedgeDelay is how long the primary leg may run before a hedge leg
	// starts on the next replica: > 0 is a fixed delay, 0 (the default)
	// adapts to the observed p95 request latency, < 0 disables hedging.
	HedgeDelay time.Duration
	// After is the hedge timer (nil = time.After); injectable for tests.
	After func(d time.Duration) <-chan time.Time

	endpoints []string           // normalized base URLs, stable order
	clients   map[string]*Client // one per endpoint, each with its own breaker
	ring      *fleet.Ring
	health    *fleet.Tracker

	lat               latencyWindow
	hedges, hedgeWins atomic.Uint64

	// Hedge-leg fates beyond wins, so hedge efficacy is measurable
	// without a trace viewer: cancelled legs lost the race to the
	// primary; failed legs errored on their own.
	hedgeCancelled, hedgeFailed atomic.Uint64
}

// NewFleet builds a fleet client over one or more recordd base URLs
// (duplicates and empties dropped).  A single URL degrades gracefully:
// no hedging partner, no failover target, same wire behavior as Client.
func NewFleet(bases []string) (*Fleet, error) {
	seen := make(map[string]bool)
	var eps []string
	for _, b := range bases {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" || seen[b] {
			continue
		}
		seen[b] = true
		eps = append(eps, b)
	}
	if len(eps) == 0 {
		return nil, errors.New("rclient: no endpoints")
	}
	f := &Fleet{
		Policy: resilience.Policy{
			MaxAttempts: 4,
			Base:        250 * time.Millisecond,
			Cap:         5 * time.Second,
		},
		endpoints: eps,
		clients:   make(map[string]*Client, len(eps)),
		ring:      fleet.NewRing(fleet.DefaultVirtualNodes, eps...),
		health:    fleet.NewTracker(fleet.TrackerConfig{}),
	}
	for _, ep := range eps {
		c := NewClient(ep)
		// The fleet's Policy owns retries; per-endpoint clients only
		// contribute their transport and per-model breaker.
		c.Policy = resilience.Policy{MaxAttempts: 1}
		f.clients[ep] = c
	}
	return f, nil
}

// Endpoints returns the fleet's endpoints in ring-independent order.
func (f *Fleet) Endpoints() []string { return append([]string(nil), f.endpoints...) }

// SetPriority declares the QoS class ("interactive" or "batch") sent
// with every request from every endpoint client; "" restores the
// server's per-route defaults.  Call before issuing requests.
func (f *Fleet) SetPriority(p string) {
	for _, c := range f.clients {
		c.Priority = p
	}
}

// States snapshots per-endpoint health, every endpoint present.
func (f *Fleet) States() map[string]fleet.State {
	out := make(map[string]fleet.State, len(f.endpoints))
	for _, ep := range f.endpoints {
		out[ep] = f.health.State(ep)
	}
	return out
}

// Hedges returns (hedge legs started, hedge legs that won).
func (f *Fleet) Hedges() (started, won uint64) {
	return f.hedges.Load(), f.hedgeWins.Load()
}

// HedgeOutcomes returns how started hedge legs ended: won the race,
// cancelled as losers, or failed outright.  Legs still in flight are in
// none of the three.
func (f *Fleet) HedgeOutcomes() (won, cancelled, failed uint64) {
	return f.hedgeWins.Load(), f.hedgeCancelled.Load(), f.hedgeFailed.Load()
}

// countHedge records a hedge leg's fate in the fleet's atomics and, when
// the context carries a scope with a registry, in the
// record_rclient_hedge_total counter vec.
func (f *Fleet) countHedge(ctx context.Context, outcome string) {
	switch outcome {
	case "won":
		f.hedgeWins.Add(1)
	case "cancelled":
		f.hedgeCancelled.Add(1)
	case "failed":
		f.hedgeFailed.Add(1)
	}
	obs.ScopeFromContext(ctx).Registry().CounterVec(
		"record_rclient_hedge_total",
		"Hedge request legs by fate: won the race, cancelled as losers, or failed.",
		"outcome").With(outcome).Inc()
}

// Probe health-checks every endpoint once and feeds the outcomes to the
// health tracker, so a dead node is excluded (and a revived one rejoins)
// without waiting for request traffic to discover it.
func (f *Fleet) Probe(ctx context.Context) {
	p := &fleet.Prober{
		Tracker:   f.health,
		Endpoints: f.endpoints,
		Check: func(ctx context.Context, ep string) error {
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			return f.clients[ep].Healthz(pctx)
		},
	}
	p.Once(ctx)
}

// Healthz reports fleet liveness: nil if any endpoint answers healthy.
func (f *Fleet) Healthz(ctx context.Context) error {
	var lastErr error
	ok := false
	for _, ep := range f.endpoints {
		err := f.clients[ep].Healthz(ctx)
		f.health.Report(ep, err == nil)
		if err == nil {
			ok = true
		} else {
			lastErr = err
		}
	}
	if ok {
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("rclient: no endpoints")
	}
	return lastErr
}

// Retarget asks the fleet to retarget to the model; the request lands on
// the ring owner of the model's content address so the artifact is built
// (and cached) where by-key compiles will look for it.
func (f *Fleet) Retarget(ctx context.Context, ref ModelRef) (*RetargetResult, error) {
	in := map[string]string{}
	if ref.Model != "" {
		in["model"] = ref.Model
	}
	if ref.ModelName != "" {
		in["model_name"] = ref.ModelName
	}
	var out RetargetResult
	trace, err := f.call(ctx, ref.routeKey(), ref.fingerprint(), "/v1/retarget", in, &out)
	if err != nil {
		return nil, err
	}
	out.Trace = trace
	return &out, nil
}

// Compile compiles one RecC program against the model, on the model's
// ring owner when it is up and the next replica when it is not.
func (f *Fleet) Compile(ctx context.Context, ref ModelRef, source string, opts CompileOptions) (*CompileResult, error) {
	in := map[string]interface{}{"source": source, "options": opts}
	if ref.Key != "" {
		in["key"] = ref.Key
	}
	if ref.Model != "" {
		in["model"] = ref.Model
	}
	if ref.ModelName != "" {
		in["model_name"] = ref.ModelName
	}
	var out CompileResult
	trace, err := f.call(ctx, ref.routeKey(), ref.fingerprint(), "/v1/compile", in, &out)
	if err != nil {
		return nil, err
	}
	out.Trace = trace
	return &out, nil
}

// call races one request across the shard's replica order under the
// fleet retry policy, decoding the winning body into out and returning
// the trace ID the winning leg's response echoed.
func (f *Fleet) call(ctx context.Context, rkey, bkey, path string, in, out interface{}) (string, error) {
	var trace string
	err := f.Policy.Do(ctx, func(ctx context.Context) error {
		raw, echo, err := f.race(ctx, f.candidates(rkey), bkey, path, in)
		if err != nil {
			return err
		}
		trace = echoTrace(echo)
		return json.Unmarshal(raw, out)
	})
	return trace, err
}

// candidates is the replica order for a shard key: the ring's successor
// walk filtered to usable endpoints.  When health has everything down the
// full ordered list is returned instead — last-resort traffic is how a
// recovered fleet is rediscovered, and strictly better than refusing.
func (f *Fleet) candidates(rkey string) []string {
	ordered := f.ring.Successors(rkey, len(f.endpoints))
	usable := ordered[:0:0]
	for _, ep := range ordered {
		if f.health.Usable(ep) {
			usable = append(usable, ep)
		}
	}
	if len(usable) == 0 {
		return ordered
	}
	return usable
}

type legResult struct {
	raw    []byte
	echo   string // X-Record-Trace the leg's response echoed
	err    error
	hedged bool
}

// race runs the request against cands in order: the first leg starts
// immediately, a failed leg starts the next one, and — when hedging is
// on and a second candidate exists — a hedge timer starts the next leg
// early while the primary is still in flight.  First success wins and
// cancels the rest; a non-failover-worthy error (the request is wrong,
// not the node) returns immediately.
func (f *Fleet) race(ctx context.Context, cands []string, bkey, path string, in interface{}) ([]byte, string, error) {
	if len(cands) == 0 {
		return nil, "", errors.New("rclient: no usable endpoints")
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels every losing leg

	results := make(chan legResult, len(cands))
	started := 0
	startNext := func(hedged bool) bool {
		if started >= len(cands) {
			return false
		}
		ep := cands[started]
		started++
		go func() {
			raw, echo, err := f.leg(hctx, ep, bkey, path, in, hedged)
			results <- legResult{raw: raw, echo: echo, err: err, hedged: hedged}
		}()
		return true
	}

	startNext(false)
	pending := 1
	var hedgeTimer <-chan time.Time
	if d := f.hedgeDelay(); d >= 0 && len(cands) > 1 {
		after := f.After
		if after == nil {
			after = time.After
		}
		hedgeTimer = after(d)
	}

	var lastErr error
	for pending > 0 {
		select {
		case <-ctx.Done():
			return nil, "", ctx.Err()
		case <-hedgeTimer:
			hedgeTimer = nil
			if startNext(true) {
				pending++
				f.hedges.Add(1)
			}
		case r := <-results:
			pending--
			if r.err == nil {
				if r.hedged {
					f.countHedge(ctx, "won")
				}
				return r.raw, r.echo, nil
			}
			lastErr = r.err
			if r.hedged {
				f.countHedge(ctx, "failed")
			}
			if !failoverWorthy(r.err) {
				return nil, "", r.err
			}
			if startNext(false) {
				pending++
			}
		}
	}
	return nil, "", lastErr
}

// leg runs one request against one endpoint, recording the outcome with
// that endpoint's breaker and the fleet health tracker.  A leg cancelled
// by the race (hedge loser, caller gone) reports nothing to either —
// cancellation is not evidence about the node — but a cancelled hedge
// leg does count as a hedge loser.
func (f *Fleet) leg(ctx context.Context, ep, bkey, path string, in interface{}, hedged bool) ([]byte, string, error) {
	c := f.clients[ep]
	if err := c.Breaker.Allow(bkey); err != nil {
		// Local refusal; the node was never contacted.  The race loop
		// does the hedge-failure accounting when it consumes the result.
		return nil, "", fmt.Errorf("%s: %w", ep, err)
	}
	var extra []obs.Attr
	if hedged {
		extra = append(extra, obs.KV("hedge", true))
	}
	start := time.Now()
	raw, echo, err := c.postRaw(ctx, path, in, extra...)
	if err != nil && ctx.Err() != nil {
		if hedged {
			f.countHedge(ctx, "cancelled")
		}
		return nil, "", err
	}
	switch {
	case err == nil:
		c.Breaker.Record(bkey, true)
		f.health.Report(ep, true)
		f.lat.observe(time.Since(start))
	case serverFault(err):
		c.Breaker.Record(bkey, false)
		f.health.Report(ep, false)
	default:
		// 4xx: the node answered; the request is the problem.
		f.health.Report(ep, true)
	}
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", ep, err)
	}
	return raw, echo, nil
}

// failoverWorthy reports whether another replica could answer where this
// one failed: transient statuses, open circuits, and transport failures
// qualify; a rejected request (bad model, bad program) fails the same
// way everywhere.
func failoverWorthy(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Transient()
	}
	if resilience.IsTransient(err) {
		return true // local breaker open, typed resilience refusal
	}
	return true // transport-level failure: connection refused, reset, ...
}

// hedgeDelay resolves the configured hedge posture to a concrete delay:
// negative disables, positive is fixed, zero adapts to the p95 of the
// recent latency window (hedging off until enough samples exist).
func (f *Fleet) hedgeDelay() time.Duration {
	switch {
	case f.HedgeDelay < 0:
		return -1
	case f.HedgeDelay > 0:
		return f.HedgeDelay
	}
	d, ok := f.lat.percentile(0.95)
	if !ok {
		return -1
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	return d
}

// latencyWindow is a fixed-size ring of recent request latencies feeding
// the adaptive hedge delay.
type latencyWindow struct {
	mu      sync.Mutex
	samples [64]time.Duration
	n       int // total observations; min(n, len) are valid
}

func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.samples[w.n%len(w.samples)] = d
	w.n++
	w.mu.Unlock()
}

// percentile returns the q-quantile of the window, false until at least
// 8 samples have landed (an adaptive delay from 1–2 points hedges wildly).
func (w *latencyWindow) percentile(q float64) (time.Duration, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.n
	if n > len(w.samples) {
		n = len(w.samples)
	}
	if n < 8 {
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, w.samples[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q * float64(n-1))
	return buf[idx], true
}
