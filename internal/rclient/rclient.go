// Package rclient is the HTTP client for the recordd compile service.
//
// It speaks the /v1/retarget and /v1/compile wire protocol and layers the
// client half of the resilience model (internal/resilience) on top:
// transient failures — 429 overload sheds, 503 drain/breaker refusals,
// 5xx faults and transport errors — are retried with capped exponential
// backoff and full jitter, honoring any Retry-After the server sent, and
// a local per-model circuit breaker stops hammering a model the service
// keeps failing on.  Compiles are pure functions of (model, source,
// options), so retrying is always safe.
package rclient

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// ModelRef selects the processor model a request targets: an artifact key
// from a previous retarget, inline MDL source, or a bundled model name.
// Exactly one field should be set; the server validates.
type ModelRef struct {
	Key       string // artifact key from Retarget
	Model     string // inline MDL source
	ModelName string // bundled model name
}

// fingerprint is the client-side circuit-breaker key: stable per model,
// cheap to compute, and independent of the program being compiled.
func (m ModelRef) fingerprint() string {
	switch {
	case m.Key != "":
		return m.Key
	case m.ModelName != "":
		return "name:" + m.ModelName
	}
	sum := sha256.Sum256([]byte(m.Model))
	return "mdl:" + hex.EncodeToString(sum[:8])
}

// CompileOptions mirrors the service's per-program options.
type CompileOptions struct {
	NoCompaction bool `json:"no_compaction,omitempty"`
	NoPeephole   bool `json:"no_peephole,omitempty"`
}

// RetargetResult is the /v1/retarget response.
type RetargetResult struct {
	Key       string `json:"key"`
	Name      string `json:"name"`
	Templates int    `json:"templates"`
	Rules     int    `json:"rules"`
	Cache     string `json:"cache"`
	Warnings  int    `json:"warnings"`

	// Trace is the distributed trace ID echoed by the server in the
	// X-Record-Trace response header ("" when the request carried no
	// trace); it names the server-side spans this request produced.
	Trace string `json:"-"`
}

// CompileResult is the /v1/compile response.
type CompileResult struct {
	Key     string   `json:"key"`
	Name    string   `json:"name"`
	Cache   string   `json:"cache"`
	SeqLen  int      `json:"seq_len"`
	CodeLen int      `json:"code_len"`
	Words   []uint64 `json:"words"`
	Listing string   `json:"listing"`

	// Trace is the distributed trace ID echoed by the server (see
	// RetargetResult.Trace).
	Trace string `json:"-"`
}

// StatusError is a non-2xx service response.  Its transience follows the
// resilience model: overload (429), unavailability (503) and server-side
// faults (500/502/504) are retryable; everything else is the caller's
// request and retrying cannot help.
type StatusError struct {
	Status int           // HTTP status
	Msg    string        // server's error message
	Kind   string        // machine-readable refusal class: "overload" | "open" | "draining"
	After  time.Duration // parsed Retry-After, 0 when absent

	// wrapped is the typed resilience error reconstructed from Kind, so
	// errors.As / resilience.IsDraining see through the HTTP hop: a 503
	// from a draining node unwraps to a *resilience.DrainingError exactly
	// as if the refusal had happened in-process.
	wrapped error
}

// Unwrap exposes the reconstructed resilience error, if any.
func (e *StatusError) Unwrap() error { return e.wrapped }

func (e *StatusError) Error() string {
	return fmt.Sprintf("recordd: %d %s: %s", e.Status, http.StatusText(e.Status), e.Msg)
}

// Transient reports whether retrying the identical request can succeed.
func (e *StatusError) Transient() bool {
	switch e.Status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// RetryAfterHint surfaces the server's Retry-After to the retry policy.
func (e *StatusError) RetryAfterHint() time.Duration { return e.After }

// Client talks to one recordd instance.  The zero value is not usable;
// construct with New.  Fields may be tuned before first use.
type Client struct {
	Base    string              // service base URL, e.g. http://127.0.0.1:8347
	HTTP    *http.Client        // transport; New sets a sane timeout
	Policy  resilience.Policy   // retry policy for transient failures
	Breaker *resilience.Breaker // local per-model circuit; nil = always allow

	// Priority is the declared QoS class sent as X-Record-Priority
	// ("interactive" or "batch"); empty keeps the server's per-route
	// default.  The server treats unknown values as the default, so this
	// is a hint, never a way to fail a request.
	Priority string
}

// Options tunes a Service built by New.
type Options struct {
	// Priority is the declared QoS class ("interactive" or "batch") sent
	// with every request; empty keeps the server's per-route defaults.
	Priority string
}

// New builds a Service over one or more recordd base URLs.  It is the one
// constructor callers need: a single endpoint gets the plain client, two
// or more get the fleet client (content-address sharding, failover,
// hedging) — the caller compiles through the same Service either way.
func New(endpoints []string, opts Options) (Service, error) {
	var eps []string
	for _, e := range endpoints {
		if e = strings.TrimSpace(e); e != "" {
			eps = append(eps, e)
		}
	}
	switch len(eps) {
	case 0:
		return nil, errors.New("rclient: no endpoints")
	case 1:
		c := NewClient(eps[0])
		c.Priority = opts.Priority
		return c, nil
	}
	f, err := NewFleet(eps)
	if err != nil {
		return nil, err
	}
	f.SetPriority(opts.Priority)
	return f, nil
}

// NewClient returns a single-endpoint client with the default resilience
// posture: four attempts with 250ms base / 5s cap full-jitter backoff, and
// a local breaker so a model the service keeps failing on stops consuming
// round trips.
func NewClient(base string) *Client {
	return &Client{
		Base: strings.TrimRight(base, "/"),
		HTTP: &http.Client{Timeout: 5 * time.Minute},
		Policy: resilience.Policy{
			MaxAttempts: 4,
			Base:        250 * time.Millisecond,
			Cap:         5 * time.Second,
		},
		Breaker: resilience.NewBreaker(resilience.BreakerConfig{}),
	}
}

// Healthz reports service liveness; a draining or down service errors.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return nil
}

// Retarget asks the service to retarget to the model, returning the
// artifact key for subsequent by-key compiles.
func (c *Client) Retarget(ctx context.Context, ref ModelRef) (*RetargetResult, error) {
	in := map[string]string{}
	if ref.Model != "" {
		in["model"] = ref.Model
	}
	if ref.ModelName != "" {
		in["model_name"] = ref.ModelName
	}
	var out RetargetResult
	trace, err := c.call(ctx, ref.fingerprint(), "/v1/retarget", in, &out)
	if err != nil {
		return nil, err
	}
	out.Trace = trace
	return &out, nil
}

// Compile compiles one RecC program against the model.
func (c *Client) Compile(ctx context.Context, ref ModelRef, source string, opts CompileOptions) (*CompileResult, error) {
	in := map[string]interface{}{"source": source, "options": opts}
	if ref.Key != "" {
		in["key"] = ref.Key
	}
	if ref.Model != "" {
		in["model"] = ref.Model
	}
	if ref.ModelName != "" {
		in["model_name"] = ref.ModelName
	}
	var out CompileResult
	trace, err := c.call(ctx, ref.fingerprint(), "/v1/compile", in, &out)
	if err != nil {
		return nil, err
	}
	out.Trace = trace
	return &out, nil
}

// call runs one POST under the retry policy and the model's circuit,
// returning the trace ID the winning response echoed.  Breaker
// bookkeeping counts only service-fault outcomes: a 4xx is the caller's
// problem and leaves the circuit alone.
func (c *Client) call(ctx context.Context, bkey, path string, in, out interface{}) (string, error) {
	var trace string
	err := c.Policy.Do(ctx, func(ctx context.Context) error {
		if err := c.Breaker.Allow(bkey); err != nil {
			return err
		}
		echo, err := c.post(ctx, path, in, out)
		switch {
		case err == nil:
			trace = echoTrace(echo)
			c.Breaker.Record(bkey, true)
		case serverFault(err):
			c.Breaker.Record(bkey, false)
		}
		return err
	})
	return trace, err
}

// echoTrace extracts the trace ID from an echoed X-Record-Trace value.
func echoTrace(echo string) string {
	if sc, ok := obs.ParseTraceHeader(echo); ok {
		return sc.Trace.String()
	}
	return ""
}

// serverFault reports whether err indicates the service (not the request)
// failed: transport errors and 5xx statuses.
func serverFault(err error) bool {
	if se, ok := err.(*StatusError); ok {
		return se.Status >= http.StatusInternalServerError
	}
	return true // transport-level failure
}

func (c *Client) post(ctx context.Context, path string, in, out interface{}) (string, error) {
	raw, echo, err := c.postRaw(ctx, path, in)
	if err != nil {
		return "", err
	}
	return echo, json.Unmarshal(raw, out)
}

// postRaw runs one POST and returns the raw 200-response body plus the
// X-Record-Trace value the server echoed.  The fleet client builds on
// this rather than post so hedged request legs can each hold their own
// undecoded body and only the winner is unmarshalled.
//
// When the context carries an obs scope (ContextWithScope), the request
// becomes a child span ("rclient.request", tagged endpoint + path +
// outcome, plus any extra attrs) and the span's identity travels in the
// X-Record-Trace request header, parenting everything the server does —
// queue wait, compile phases, peer fetches — under this leg.
func (c *Client) postRaw(ctx context.Context, path string, in interface{}, extra ...obs.Attr) ([]byte, string, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return nil, "", err
	}
	attrs := append([]obs.Attr{obs.KV("endpoint", c.Base), obs.KV("path", path)}, extra...)
	sp, _ := obs.ScopeFromContext(ctx).Start("rclient.request", attrs...)
	defer sp.End()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		sp.SetAttr("outcome", "bad-request")
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Priority != "" {
		req.Header.Set("X-Record-Priority", c.Priority)
	}
	if sc := sp.Context(); sc.Valid() {
		req.Header.Set(obs.TraceHeader, sc.Header())
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			sp.SetAttr("outcome", "cancelled")
		} else {
			sp.SetAttr("outcome", "transport-error")
		}
		return nil, "", err
	}
	defer resp.Body.Close()
	echo := resp.Header.Get(obs.TraceHeader)
	if resp.StatusCode != http.StatusOK {
		sp.SetAttr("outcome", fmt.Sprintf("status-%d", resp.StatusCode))
		return nil, echo, statusError(resp)
	}
	sp.SetAttr("outcome", "ok")
	raw, err := io.ReadAll(resp.Body)
	return raw, echo, err
}

// statusError drains a non-2xx response into a StatusError, parsing the
// JSON error body (message + refusal kind) and the Retry-After header
// when present.
func statusError(resp *http.Response) *StatusError {
	se := &StatusError{Status: resp.StatusCode}
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10)); err == nil {
		var e struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			se.Msg = e.Error
			se.Kind = e.Kind
		} else {
			se.Msg = strings.TrimSpace(string(b))
		}
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			se.After = time.Duration(secs) * time.Second
		} else if t, err := http.ParseTime(v); err == nil {
			if d := time.Until(t); d > 0 {
				se.After = d
			}
		}
	}
	switch se.Kind {
	case "draining":
		se.wrapped = &resilience.DrainingError{After: se.After}
	case "degraded":
		se.wrapped = &resilience.DegradedError{Resource: "disk tier", After: se.After}
	}
	return se
}
