package rclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
)

// fastPolicy retries immediately so tests do not sleep.
func fastPolicy(attempts int) resilience.Policy {
	return resilience.Policy{
		MaxAttempts: attempts,
		Base:        time.Millisecond,
		Cap:         time.Millisecond,
		Rand:        func(max time.Duration) time.Duration { return 0 },
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

func TestCompileRetriesThroughTransientFailure(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`))
			return
		}
		w.Write([]byte(`{"key":"k","name":"demo","cache":"hit","seq_len":3,"code_len":2,"words":[1,2]}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	var hinted []time.Duration
	c.Policy = fastPolicy(3)
	c.Policy.Cap = 10 * time.Second // leave room for the server's hint
	c.Policy.Sleep = func(_ context.Context, d time.Duration) error {
		hinted = append(hinted, d)
		return nil
	}
	res, err := c.Compile(context.Background(), ModelRef{ModelName: "demo"}, "x = 1;", CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.CodeLen != 2 || res.Name != "demo" || len(res.Words) != 2 {
		t.Fatalf("result %+v", res)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (one transient failure, one success)", got)
	}
	if len(hinted) != 1 || hinted[0] != time.Second {
		t.Fatalf("retry waits %v, want the server's 1s Retry-After", hinted)
	}
}

func TestTerminalStatusDoesNotRetry(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"error":"no rule covers tree"}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Policy = fastPolicy(4)
	_, err := c.Compile(context.Background(), ModelRef{ModelName: "demo"}, "bad", CompileOptions{})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err %v, want 422 StatusError", err)
	}
	if se.Msg != "no rule covers tree" {
		t.Fatalf("message %q", se.Msg)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (422 is terminal)", got)
	}
}

func TestBreakerFastFailsRepeatedlyFailingModel(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"injected"}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Policy = fastPolicy(1) // isolate breaker behavior from retries
	c.Breaker = resilience.NewBreaker(resilience.BreakerConfig{
		Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Hour,
	})
	ref := ModelRef{ModelName: "demo"}
	for i := 0; i < 2; i++ {
		if _, err := c.Compile(context.Background(), ref, "x = 1;", CompileOptions{}); err == nil {
			t.Fatal("expected failure")
		}
	}
	before := calls.Load()
	_, err := c.Compile(context.Background(), ref, "x = 1;", CompileOptions{})
	var oe *resilience.OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("err %v, want OpenError once the circuit tripped", err)
	}
	if calls.Load() != before {
		t.Fatal("open circuit still reached the server")
	}

	// Another model is unaffected by demo's open circuit.
	if _, err := c.Compile(context.Background(), ModelRef{ModelName: "ref"}, "x = 1;", CompileOptions{}); err != nil {
		var se *StatusError
		if !errors.As(err, &se) {
			t.Fatalf("independent model saw %v, want the server's 500", err)
		}
	}
}

func TestStatusErrorTransience(t *testing.T) {
	for status, want := range map[int]bool{
		429: true, 500: true, 502: true, 503: true, 504: true,
		400: false, 404: false, 422: false,
	} {
		se := &StatusError{Status: status}
		if got := resilience.IsTransient(se); got != want {
			t.Errorf("status %d transient=%v, want %v", status, got, want)
		}
	}
}

func TestHealthz(t *testing.T) {
	var draining atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"ok":false,"draining":true}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthy service: %v", err)
	}
	draining.Store(true)
	err := c.Healthz(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz err %v, want 503", err)
	}
}
