package rclient

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/resilience"
)

// fakeNode is a scriptable stand-in for one recordd instance: the test
// swaps its handler after fleet construction, once ring order is known.
type fakeNode struct {
	name    string
	srv     *httptest.Server
	handler atomic.Value // http.HandlerFunc
	hits    atomic.Int64
}

func newFakeNode(t *testing.T, name string) *fakeNode {
	t.Helper()
	n := &fakeNode{name: name}
	n.handler.Store(okCompileHandler(name))
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.hits.Add(1)
		n.handler.Load().(http.HandlerFunc)(w, r)
	}))
	t.Cleanup(n.srv.Close)
	return n
}

func (n *fakeNode) url() string { return n.srv.URL }

// okCompileHandler answers every compile with a result naming the node,
// so tests can tell which replica won.
func okCompileHandler(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(CompileResult{Key: "k", Name: name, Cache: "hit"})
	}
}

func drainingHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{
			"error": "service draining: retry in 1s",
			"kind":  "draining",
		})
	}
}

// newTestFleet builds a fleet over the nodes with instant retries and
// hedging off (tests that want hedging turn it back on).
func newTestFleet(t *testing.T, nodes ...*fakeNode) *Fleet {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.url()
	}
	f, err := NewFleet(urls)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	f.Policy = fastPolicy(3)
	f.HedgeDelay = -1
	return f
}

// byURL finds the fakeNode behind an endpoint URL.
func byURL(t *testing.T, nodes []*fakeNode, url string) *fakeNode {
	t.Helper()
	for _, n := range nodes {
		if n.url() == url {
			return n
		}
	}
	t.Fatalf("no fake node for %s", url)
	return nil
}

func TestFleetRoutesToRingOwner(t *testing.T) {
	a, b, c := newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")
	nodes := []*fakeNode{a, b, c}
	f := newTestFleet(t, nodes...)

	ref := ModelRef{Key: strings.Repeat("ab", 32)}
	order := f.ring.Successors(ref.routeKey(), 3)
	owner := byURL(t, nodes, order[0])

	for i := 0; i < 5; i++ {
		res, err := f.Compile(context.Background(), ref, "x = 1", CompileOptions{})
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		if res.Name != owner.name {
			t.Fatalf("request %d answered by %q, want ring owner %q", i, res.Name, owner.name)
		}
	}
	for _, n := range nodes {
		if n != owner && n.hits.Load() != 0 {
			t.Errorf("non-owner %q saw %d requests, want 0", n.name, n.hits.Load())
		}
	}
}

func TestFleetFailoverConnectionRefused(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	nodes := []*fakeNode{a, b}
	f := newTestFleet(t, nodes...)

	ref := ModelRef{Key: strings.Repeat("cd", 32)}
	order := f.ring.Successors(ref.routeKey(), 2)
	primary, backup := byURL(t, nodes, order[0]), byURL(t, nodes, order[1])
	primary.srv.Close() // connections to the primary now refuse

	res, err := f.Compile(context.Background(), ref, "x = 1", CompileOptions{})
	if err != nil {
		t.Fatalf("Compile with dead primary: %v", err)
	}
	if res.Name != backup.name {
		t.Fatalf("answered by %q, want backup %q", res.Name, backup.name)
	}
	if st := f.health.State(order[0]); st == fleet.Healthy {
		t.Fatalf("dead primary still %v, want degraded", st)
	}
	if st := f.health.State(order[1]); st != fleet.Healthy {
		t.Fatalf("backup is %v, want healthy", st)
	}
}

func TestFleetFailoverDraining(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	nodes := []*fakeNode{a, b}
	f := newTestFleet(t, nodes...)

	ref := ModelRef{Key: strings.Repeat("ef", 32)}
	order := f.ring.Successors(ref.routeKey(), 2)
	primary, backup := byURL(t, nodes, order[0]), byURL(t, nodes, order[1])
	primary.handler.Store(drainingHandler())

	res, err := f.Compile(context.Background(), ref, "x = 1", CompileOptions{})
	if err != nil {
		t.Fatalf("Compile with draining primary: %v", err)
	}
	if res.Name != backup.name {
		t.Fatalf("answered by %q, want backup %q", res.Name, backup.name)
	}
	// Failover happens inside one policy attempt: the race walks to the
	// backup without sleeping out the draining node's Retry-After.
	if primary.hits.Load() != 1 || backup.hits.Load() != 1 {
		t.Fatalf("hits primary=%d backup=%d, want 1 and 1",
			primary.hits.Load(), backup.hits.Load())
	}
}

func TestFleetDrainingReconstructedOverWire(t *testing.T) {
	a := newFakeNode(t, "a")
	a.handler.Store(drainingHandler())
	f := newTestFleet(t, a)

	_, err := f.Compile(context.Background(), ModelRef{Key: strings.Repeat("01", 32)}, "x = 1", CompileOptions{})
	if err == nil {
		t.Fatal("Compile against lone draining node succeeded")
	}
	if !resilience.IsDraining(err) {
		t.Fatalf("error %v does not unwrap to DrainingError", err)
	}
	var se *StatusError
	if !asStatusError(err, &se) || se.Kind != "draining" || se.After != time.Second {
		t.Fatalf("got %#v, want draining StatusError with 1s hint", err)
	}
}

func TestFleetFailoverOpenBreaker(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	nodes := []*fakeNode{a, b}
	f := newTestFleet(t, nodes...)

	ref := ModelRef{Key: strings.Repeat("23", 32)}
	order := f.ring.Successors(ref.routeKey(), 2)
	primary, backup := byURL(t, nodes, order[0]), byURL(t, nodes, order[1])

	// Trip the primary's local per-model circuit: default window opens at
	// 4 consecutive failures.
	brk := f.clients[order[0]].Breaker
	for i := 0; i < 4; i++ {
		brk.Record(ref.fingerprint(), false)
	}
	if brk.Allow(ref.fingerprint()) == nil {
		t.Fatal("breaker did not open")
	}

	res, err := f.Compile(context.Background(), ref, "x = 1", CompileOptions{})
	if err != nil {
		t.Fatalf("Compile with open primary breaker: %v", err)
	}
	if res.Name != backup.name {
		t.Fatalf("answered by %q, want backup %q", res.Name, backup.name)
	}
	if primary.hits.Load() != 0 {
		t.Fatalf("primary was contacted %d times through an open circuit", primary.hits.Load())
	}
}

func TestFleetCallerErrorDoesNotFailOver(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	nodes := []*fakeNode{a, b}
	f := newTestFleet(t, nodes...)

	ref := ModelRef{Key: strings.Repeat("45", 32)}
	order := f.ring.Successors(ref.routeKey(), 2)
	primary, backup := byURL(t, nodes, order[0]), byURL(t, nodes, order[1])
	primary.handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown key"})
	}))

	_, err := f.Compile(context.Background(), ref, "x = 1", CompileOptions{})
	var se *StatusError
	if !asStatusError(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("got %v, want 400 StatusError", err)
	}
	if backup.hits.Load() != 0 {
		t.Fatalf("4xx failed over to backup (%d hits)", backup.hits.Load())
	}
	if primary.hits.Load() != 1 {
		t.Fatalf("4xx retried against primary (%d hits)", primary.hits.Load())
	}
	if st := f.health.State(order[0]); st != fleet.Healthy {
		t.Fatalf("4xx degraded primary health to %v", st)
	}
}

func TestFleetHedgedRequestLoserCancelled(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	nodes := []*fakeNode{a, b}
	f := newTestFleet(t, nodes...)

	ref := ModelRef{Key: strings.Repeat("67", 32)}
	order := f.ring.Successors(ref.routeKey(), 2)
	primary, backup := byURL(t, nodes, order[0]), byURL(t, nodes, order[1])

	cancelled := make(chan struct{})
	primary.handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read can observe the
		// client abandoning the connection.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			close(cancelled)
		case <-time.After(10 * time.Second):
			t.Error("slow primary was never cancelled")
		}
	}))

	// Hedge fires immediately via an injected, pre-fired timer.
	f.HedgeDelay = time.Millisecond
	f.After = func(time.Duration) <-chan time.Time {
		ch := make(chan time.Time, 1)
		ch <- time.Time{}
		return ch
	}

	res, err := f.Compile(context.Background(), ref, "x = 1", CompileOptions{})
	if err != nil {
		t.Fatalf("hedged Compile: %v", err)
	}
	if res.Name != backup.name {
		t.Fatalf("answered by %q, want hedge winner %q", res.Name, backup.name)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing leg was not cancelled")
	}
	started, won := f.Hedges()
	if started != 1 || won != 1 {
		t.Fatalf("hedges started=%d won=%d, want 1 and 1", started, won)
	}
	// Cancellation is not evidence about the slow node's health.
	if st := f.health.State(order[0]); st != fleet.Healthy {
		t.Fatalf("cancelled leg degraded primary health to %v", st)
	}
	if primary.hits.Load() != 1 || backup.hits.Load() != 1 {
		t.Fatalf("hits primary=%d backup=%d, want 1 and 1",
			primary.hits.Load(), backup.hits.Load())
	}
}

func TestFleetAllDownLastResort(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	f := newTestFleet(t, a, b)

	// Mark both endpoints down via the health tracker.
	for _, ep := range f.endpoints {
		for i := 0; i < 3; i++ {
			f.health.Report(ep, false)
		}
		if f.health.State(ep) != fleet.Down {
			t.Fatalf("setup: %s not down", ep)
		}
	}
	// Both nodes actually answer: the last-resort path must still reach
	// them rather than refuse with "no usable endpoints".
	res, err := f.Compile(context.Background(), ModelRef{Key: strings.Repeat("89", 32)}, "x = 1", CompileOptions{})
	if err != nil {
		t.Fatalf("Compile with all-down health state: %v", err)
	}
	if res.Name == "" {
		t.Fatal("empty result")
	}
}

func TestFleetRejectsEmptyEndpointList(t *testing.T) {
	if _, err := NewFleet([]string{" ", ""}); err == nil {
		t.Fatal("NewFleet accepted an empty endpoint list")
	}
	f, err := NewFleet([]string{"http://x:1/", "http://x:1"})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	if len(f.Endpoints()) != 1 {
		t.Fatalf("duplicates not collapsed: %v", f.Endpoints())
	}
}

func TestLatencyWindowPercentile(t *testing.T) {
	var w latencyWindow
	if _, ok := w.percentile(0.95); ok {
		t.Fatal("percentile available with no samples")
	}
	for i := 1; i <= 100; i++ {
		w.observe(time.Duration(i) * time.Millisecond)
	}
	// Window holds the last 64 samples: 37ms..100ms.
	p, ok := w.percentile(0.95)
	if !ok {
		t.Fatal("percentile unavailable after 100 samples")
	}
	if p < 90*time.Millisecond || p > 100*time.Millisecond {
		t.Fatalf("p95 = %v, want in [90ms, 100ms]", p)
	}
}

func asStatusError(err error, out **StatusError) bool {
	return errors.As(err, out)
}
