// Package code defines the machine-code representation shared by the code
// generator, the compactor, the encoder and the simulator: RT instruction
// instances (a template plus concrete instruction-field operand values) and
// the data-dependence analysis between them that compaction must respect.
package code

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rtl"
)

// Field is one instruction-field operand assignment: instruction word bits
// Lo..Hi carry Val.
type Field struct {
	Hi, Lo int
	Val    int64
}

func (f Field) String() string {
	if f.Hi == f.Lo {
		return fmt.Sprintf("IW[%d]=%d", f.Lo, f.Val&1)
	}
	return fmt.Sprintf("IW[%d:%d]=%d", f.Hi, f.Lo, f.Val&int64(rtl.Mask(f.Hi-f.Lo+1)))
}

// Instr is one selected RT instance: the template to execute with concrete
// operand fields.
//
// Dependence queries (Def, Uses) are memoized on first call, because
// compaction and verification ask them O(n²) times per block while the
// answer is a pure function of Template and Fields.  The memo assumes
// Fields do not change after the first dependence query; instructions
// whose fields are patched late (jump targets in cflow) never take part
// in dependence analysis.  An Instr belongs to one compilation and its
// first dependence query is not safe for concurrent use.
type Instr struct {
	Template *rtl.Template
	Fields   []Field
	// Comment carries provenance for listings (e.g. the source statement).
	Comment string

	depCached bool
	defCache  Loc
	usesCache []Loc
}

// String renders the instruction with its operand fields.
func (i *Instr) String() string {
	s := i.Template.String()
	if len(i.Fields) > 0 {
		parts := make([]string, len(i.Fields))
		for j, f := range i.Fields {
			parts[j] = f.String()
		}
		s += " {" + strings.Join(parts, ",") + "}"
	}
	return s
}

// FieldValue returns the value assigned to field (hi,lo), if any.
func (i *Instr) FieldValue(hi, lo int) (int64, bool) {
	for _, f := range i.Fields {
		if f.Hi == hi && f.Lo == lo {
			return f.Val, true
		}
	}
	return 0, false
}

// Loc is a storage location touched by an instruction: a storage name plus
// an optional concrete cell address.  AddrKnown=false means "some cell of
// the storage" and conflicts with every cell.
type Loc struct {
	Storage   string
	Addr      int64
	AddrKnown bool
}

func (l Loc) String() string {
	if l.AddrKnown {
		return fmt.Sprintf("%s[%d]", l.Storage, l.Addr)
	}
	return l.Storage + "[*]"
}

// Overlaps reports whether two locations may alias.
func (l Loc) Overlaps(o Loc) bool {
	if l.Storage != o.Storage {
		return false
	}
	if !l.AddrKnown || !o.AddrKnown {
		return true
	}
	return l.Addr == o.Addr
}

// Def returns the location written by the instruction (not meaningful for
// primary-output templates, which return a port pseudo-location).  The
// result is memoized; see the Instr doc comment for the caveats.
func (i *Instr) Def() Loc {
	if !i.depCached {
		i.fillDeps()
	}
	return i.defCache
}

// Uses returns the locations read by the instruction (storage reads in the
// source pattern and in the destination-address pattern), plus reads
// implied by dynamic guards.  The returned slice is memoized and must not
// be mutated.
func (i *Instr) Uses() []Loc {
	if !i.depCached {
		i.fillDeps()
	}
	return i.usesCache
}

// fillDeps computes the dependence memo: the written location and every
// read location, both pure functions of the template and field values.
func (i *Instr) fillDeps() {
	t := i.Template
	switch {
	case t.DestPort:
		i.defCache = Loc{Storage: "port:" + t.Dest, AddrKnown: true}
	case t.DestAddr == nil:
		i.defCache = Loc{Storage: t.Dest, AddrKnown: true}
	default:
		if a, ok := i.ResolveAddr(t.DestAddr); ok {
			i.defCache = Loc{Storage: t.Dest, Addr: a, AddrKnown: true}
		} else {
			i.defCache = Loc{Storage: t.Dest}
		}
	}

	add := func(e *rtl.Expr) {
		e.Walk(func(n *rtl.Expr) {
			if n.Kind != rtl.Read {
				return
			}
			loc := Loc{Storage: n.Storage, AddrKnown: true}
			if a := n.Addr(); a != nil {
				if v, ok := i.ResolveAddr(a); ok {
					loc.Addr = v
				} else {
					loc.AddrKnown = false
				}
			}
			i.usesCache = append(i.usesCache, loc)
		})
	}
	add(t.Src)
	if t.DestAddr != nil {
		add(t.DestAddr)
	}
	for _, g := range t.Cond.Dynamic {
		add(g)
	}
	i.depCached = true
}

// ResolveAddr resolves an address pattern to a concrete value using the
// instruction's field assignments (InsnField → field value, Const →
// value); anything else is unknown.
func (i *Instr) ResolveAddr(a *rtl.Expr) (int64, bool) {
	switch a.Kind {
	case rtl.Const:
		return a.Val, true
	case rtl.InsnField:
		return i.FieldValue(a.Hi, a.Lo)
	}
	return 0, false
}

// RAW reports a read-after-write dependence: b reads what a wrote.  b must
// execute in a strictly later word (parallel RTs read cycle-start values).
func RAW(a, b *Instr) bool {
	defA := a.Def()
	for _, u := range b.Uses() {
		if defA.Overlaps(u) {
			return true
		}
	}
	return false
}

// WAW reports a write-after-write dependence: both write a common
// location.  b must execute in a strictly later word.
func WAW(a, b *Instr) bool { return a.Def().Overlaps(b.Def()) }

// WAR reports a write-after-read anti-dependence: b writes what a read.
// Time-stationary parallel RTs read at cycle start, so b may share a's
// word but must not precede it.
func WAR(a, b *Instr) bool {
	defB := b.Def()
	for _, u := range a.Uses() {
		if defB.Overlaps(u) {
			return true
		}
	}
	return false
}

// DependsOn reports whether instruction b must stay at-or-after a
// (any dependence kind).
func DependsOn(a, b *Instr) bool { return RAW(a, b) || WAW(a, b) || WAR(a, b) }

// Word is one machine instruction word: RT instances executing in parallel.
type Word struct {
	Instrs []*Instr
	// Bits is the encoded instruction word (filled by the encoder).
	Bits uint64
	// Encoded reports whether Bits is valid.
	Encoded bool
}

func (w *Word) String() string {
	parts := make([]string, len(w.Instrs))
	for i, in := range w.Instrs {
		parts[i] = in.Template.String()
	}
	return strings.Join(parts, "  ||  ")
}

// Seq is a code sequence (one basic block).
type Seq struct {
	Instrs []*Instr
}

// Append adds an instruction.
func (s *Seq) Append(i *Instr) { s.Instrs = append(s.Instrs, i) }

// Len returns the instruction count (pre-compaction code size).
func (s *Seq) Len() int { return len(s.Instrs) }

// String renders the sequence one instruction per line.
func (s *Seq) String() string {
	var b strings.Builder
	for i, in := range s.Instrs {
		fmt.Fprintf(&b, "%4d: %s", i, in)
		if in.Comment != "" {
			fmt.Fprintf(&b, "  ; %s", in.Comment)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Program is compacted code: a sequence of instruction words.
type Program struct {
	Words []*Word
}

// Len returns the word count (post-compaction code size).
func (p *Program) Len() int { return len(p.Words) }

// String renders one word per line.
func (p *Program) String() string {
	var b strings.Builder
	for i, w := range p.Words {
		if w.Encoded {
			fmt.Fprintf(&b, "%4d: %016x  %s\n", i, w.Bits, w)
		} else {
			fmt.Fprintf(&b, "%4d: %s\n", i, w)
		}
	}
	return b.String()
}

// Storages returns the sorted set of storages defined anywhere in the
// sequence (useful for diagnostics).
func (s *Seq) Storages() []string {
	set := make(map[string]bool)
	for _, in := range s.Instrs {
		set[in.Def().Storage] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
