package code

import (
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/rtl"
)

func tpl(dest string, destAddr *rtl.Expr, src *rtl.Expr) *rtl.Template {
	m := bdd.New()
	return &rtl.Template{Dest: dest, DestAddr: destAddr, Src: src, Width: 16,
		Cond: rtl.ExecCond{Static: m.True()}}
}

func imm() *rtl.Expr { return rtl.NewInsnField(7, 0) }

func TestFieldString(t *testing.T) {
	if (Field{Hi: 7, Lo: 0, Val: 5}).String() != "IW[7:0]=5" {
		t.Error("multi-bit field rendering")
	}
	if (Field{Hi: 3, Lo: 3, Val: 1}).String() != "IW[3]=1" {
		t.Error("single-bit field rendering")
	}
}

func TestInstrFieldsAndString(t *testing.T) {
	in := &Instr{
		Template: tpl("acc.r", nil, rtl.NewRead("ram.m", 16, imm())),
		Fields:   []Field{{Hi: 7, Lo: 0, Val: 9}},
	}
	if v, ok := in.FieldValue(7, 0); !ok || v != 9 {
		t.Error("FieldValue lookup")
	}
	if _, ok := in.FieldValue(15, 8); ok {
		t.Error("absent field found")
	}
	if !strings.Contains(in.String(), "IW[7:0]=9") {
		t.Errorf("rendering: %s", in)
	}
}

func TestDefAndUses(t *testing.T) {
	// ram[IW=5] := acc
	store := &Instr{
		Template: tpl("ram.m", imm(), rtl.NewRead("acc.r", 16, nil)),
		Fields:   []Field{{Hi: 7, Lo: 0, Val: 5}},
	}
	def := store.Def()
	if def.Storage != "ram.m" || !def.AddrKnown || def.Addr != 5 {
		t.Errorf("def = %v", def)
	}
	uses := store.Uses()
	if len(uses) != 1 || uses[0].Storage != "acc.r" {
		t.Errorf("uses = %v", uses)
	}
	// Register dest.
	load := &Instr{
		Template: tpl("acc.r", nil, rtl.NewRead("ram.m", 16, imm())),
		Fields:   []Field{{Hi: 7, Lo: 0, Val: 3}},
	}
	if d := load.Def(); d.Storage != "acc.r" || !d.AddrKnown {
		t.Errorf("reg def = %v", d)
	}
	u := load.Uses()
	if len(u) != 1 || u[0].Addr != 3 || !u[0].AddrKnown {
		t.Errorf("load uses = %v", u)
	}
	// Unknown address: read through a register.
	ind := &Instr{
		Template: tpl("acc.r", nil,
			rtl.NewRead("ram.m", 16, rtl.NewRead("ar.r", 8, nil))),
	}
	u2 := ind.Uses()
	foundUnknown := false
	for _, x := range u2 {
		if x.Storage == "ram.m" && !x.AddrKnown {
			foundUnknown = true
		}
	}
	if !foundUnknown {
		t.Errorf("indirect read uses = %v", u2)
	}
}

func TestLocOverlaps(t *testing.T) {
	a := Loc{Storage: "m", Addr: 1, AddrKnown: true}
	b := Loc{Storage: "m", Addr: 2, AddrKnown: true}
	c := Loc{Storage: "m"}
	d := Loc{Storage: "x", Addr: 1, AddrKnown: true}
	if a.Overlaps(b) {
		t.Error("distinct cells overlap")
	}
	if !a.Overlaps(c) || !c.Overlaps(b) {
		t.Error("unknown address must overlap")
	}
	if a.Overlaps(d) {
		t.Error("distinct storages overlap")
	}
	if !a.Overlaps(a) {
		t.Error("self overlap")
	}
}

func TestDependencies(t *testing.T) {
	load3 := &Instr{Template: tpl("acc.r", nil, rtl.NewRead("ram.m", 16, imm())),
		Fields: []Field{{Hi: 7, Lo: 0, Val: 3}}}
	store3 := &Instr{Template: tpl("ram.m", imm(), rtl.NewRead("acc.r", 16, nil)),
		Fields: []Field{{Hi: 7, Lo: 0, Val: 3}}}
	store4 := &Instr{Template: tpl("ram.m", imm(), rtl.NewRead("acc.r", 16, nil)),
		Fields: []Field{{Hi: 7, Lo: 0, Val: 4}}}
	load4 := &Instr{Template: tpl("acc.r", nil, rtl.NewRead("ram.m", 16, imm())),
		Fields: []Field{{Hi: 7, Lo: 0, Val: 4}}}

	// RAW: store3 then load3 (same cell).
	if !RAW(store3, load3) {
		t.Error("RAW on same cell missed")
	}
	if RAW(store4, load3) {
		t.Error("RAW on distinct cells reported")
	}
	// WAR: load3 then store3.
	if !WAR(load3, store3) {
		t.Error("WAR missed")
	}
	// WAW: two stores to the same cell.
	if !WAW(store3, store3) {
		t.Error("WAW missed")
	}
	if WAW(store3, store4) {
		t.Error("WAW on distinct cells reported")
	}
	// RAW through registers: load writes acc, store reads acc.
	if !RAW(load4, store4) {
		t.Error("register RAW missed")
	}
	if !DependsOn(store3, load3) {
		t.Error("DependsOn missed")
	}
}

func TestSeqAndProgramRendering(t *testing.T) {
	s := &Seq{}
	in := &Instr{Template: tpl("acc.r", nil, rtl.NewConst(0, 16)), Comment: "x = 0;"}
	s.Append(in)
	if s.Len() != 1 {
		t.Error("Len")
	}
	if !strings.Contains(s.String(), "x = 0;") {
		t.Error("seq rendering lacks comment")
	}
	if got := s.Storages(); len(got) != 1 || got[0] != "acc.r" {
		t.Errorf("storages = %v", got)
	}
	p := &Program{Words: []*Word{{Instrs: []*Instr{in}, Bits: 0xAB, Encoded: true}}}
	if p.Len() != 1 {
		t.Error("program len")
	}
	if !strings.Contains(p.String(), "ab") {
		t.Errorf("program rendering: %s", p)
	}
	unenc := &Program{Words: []*Word{{Instrs: []*Instr{in}}}}
	if strings.Contains(unenc.String(), "0000000000000000") {
		t.Error("unencoded word rendered bits")
	}
}

func TestPortDef(t *testing.T) {
	m := bdd.New()
	in := &Instr{Template: &rtl.Template{
		Dest: "out", DestPort: true, Width: 16,
		Src:  rtl.NewRead("acc.r", 16, nil),
		Cond: rtl.ExecCond{Static: m.True()},
	}}
	if d := in.Def(); d.Storage != "port:out" {
		t.Errorf("port def = %v", d)
	}
}

func TestDynamicGuardUses(t *testing.T) {
	m := bdd.New()
	in := &Instr{Template: &rtl.Template{
		Dest: "pc.r", Width: 8,
		Src: rtl.NewInsnField(7, 0),
		Cond: rtl.ExecCond{Static: m.True(),
			Dynamic: []*rtl.Expr{rtl.NewOp(rtl.OpEq, 1,
				rtl.NewRead("flag.r", 1, nil), rtl.NewConst(1, 1))}},
	}}
	found := false
	for _, u := range in.Uses() {
		if u.Storage == "flag.r" {
			found = true
		}
	}
	if !found {
		t.Error("dynamic guard read not in Uses")
	}
}
