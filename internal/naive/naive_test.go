package naive

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cfront"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/models"
)

func TestLower3ACShapes(t *testing.T) {
	prog, err := cfront.Parse(`
int a; int b; int c; int x;
x = a + b * c;
`)
	if err != nil {
		t.Fatal(err)
	}
	lowered, err := Lower3AC(prog)
	if err != nil {
		t.Fatal(err)
	}
	// b*c hoisted into a temp; the final assignment carries one op.
	if len(lowered.Body) != 2 {
		t.Fatalf("body = %d stmts: %v", len(lowered.Body), lowered.Body)
	}
	first := lowered.Body[0].String()
	if !strings.Contains(first, "__t0 = (b * c);") {
		t.Errorf("first = %s", first)
	}
	second := lowered.Body[1].String()
	if !strings.Contains(second, "x = (a + __t0);") {
		t.Errorf("second = %s", second)
	}
	// Temp declared.
	found := false
	for _, d := range lowered.Decls {
		if d.Name == "__t0" {
			found = true
		}
	}
	if !found {
		t.Error("temp not declared")
	}
}

func TestLower3ACSemanticsPreserved(t *testing.T) {
	prog, err := cfront.Parse(`
int a = 3; int b = 4; int c = 5;
int x; int y;
x = (a + b) * (c - a);
y = -x + 2;
`)
	if err != nil {
		t.Fatal(err)
	}
	lowered, err := Lower3AC(prog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ir.Run(prog, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ir.Run(lowered, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x", "y"} {
		if got[name][0] != want[name][0] {
			t.Errorf("%s: %d != %d", name, got[name][0], want[name][0])
		}
	}
}

func TestNaiveCompileIsLonger(t *testing.T) {
	mdl, _ := models.Get("tms320c25")
	tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := `
int a = 2; int b = 3; int c = 4;
int y;
y = c + a * b;
`
	nv, err := CompileSource(tg, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.CheckAgainstOracle(nv); err != nil {
		t.Fatal(err)
	}
	rec, err := tg.CompileSourceContext(context.Background(), src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nv.CodeLen() <= rec.CodeLen() {
		t.Errorf("naive (%d) not worse than record (%d)", nv.CodeLen(), rec.CodeLen())
	}
}

func TestNaiveHandlesLoops(t *testing.T) {
	mdl, _ := models.Get("tms320c25")
	tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nv, err := CompileSource(tg, `
int a[4] = {1,2,3,4};
int s;
void main() {
  s = 0;
  for (i = 0; i < 4; i++) { s = s + a[i]; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.CheckAgainstOracle(nv); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveSyntaxError(t *testing.T) {
	mdl, _ := models.Get("tms320c25")
	tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileSource(tg, `int x; x = ;`); err == nil {
		t.Error("syntax error accepted")
	}
}
