// Package naive implements the baseline "vendor compiler" used as the
// left bar of the paper's figure 2: a classic macro-expansion code
// generator.  It lowers every expression into three-address form — one
// temporary memory variable per operation, no tree covering across
// operators, no exploitation of chained operations or operand commuting —
// and disables code compaction.  This reproduces the behavior of the
// contemporary target-specific C compilers the paper compares against,
// which RECORD's grammar-based selector consistently beats.
package naive

import (
	"context"
	"fmt"

	"repro/internal/cfront"
	"repro/internal/core"
	"repro/internal/ir"
)

// Lower3AC rewrites a program into three-address form: every operator
// application is hoisted into an assignment to a fresh temporary scalar.
func Lower3AC(prog *ir.Program) (*ir.Program, error) {
	l := &lowerer{}
	out := &ir.Program{Decls: append([]*ir.Decl(nil), prog.Decls...)}
	body, err := l.stmts(prog.Body)
	if err != nil {
		return nil, err
	}
	out.Body = body
	for i := 0; i < l.temps; i++ {
		out.Decls = append(out.Decls, &ir.Decl{Name: tempName(i)})
	}
	return out, nil
}

type lowerer struct {
	temps int
}

func tempName(i int) string { return fmt.Sprintf("__t%d", i) }

func (l *lowerer) fresh() string {
	n := tempName(l.temps)
	l.temps++
	return n
}

func (l *lowerer) stmts(in []ir.Stmt) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for _, s := range in {
		switch st := s.(type) {
		case *ir.Assign:
			pre, rhs, err := l.expr(st.RHS, true)
			if err != nil {
				return nil, err
			}
			out = append(out, pre...)
			// Index expressions of the destination are also flattened.
			lhs := st.LHS
			if lhs.Index != nil {
				preIdx, idx, err := l.expr(lhs.Index, false)
				if err != nil {
					return nil, err
				}
				out = append(out, preIdx...)
				lhs = &ir.Ref{Name: lhs.Name, Index: idx}
			}
			out = append(out, &ir.Assign{LHS: lhs, RHS: rhs})
		case *ir.For:
			body, err := l.stmts(st.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, &ir.For{Var: st.Var, From: st.From, To: st.To,
				Step: st.Step, Body: body})
		default:
			return nil, fmt.Errorf("naive: unknown statement %T", s)
		}
	}
	return out, nil
}

// expr lowers e, returning prefix statements and a residual expression.
// When top is true the residual may be a single operator over leaves
// (the final assignment carries one operation, as three-address code
// does); otherwise the residual must be a leaf.
func (l *lowerer) expr(e ir.Expr, top bool) ([]ir.Stmt, ir.Expr, error) {
	switch x := e.(type) {
	case *ir.Const:
		return nil, x, nil
	case *ir.Ref:
		if x.Index == nil {
			return nil, x, nil
		}
		pre, idx, err := l.expr(x.Index, false)
		if err != nil {
			return nil, nil, err
		}
		return pre, &ir.Ref{Name: x.Name, Index: idx}, nil
	case *ir.Bin:
		preX, ex, err := l.expr(x.X, false)
		if err != nil {
			return nil, nil, err
		}
		preY, ey, err := l.expr(x.Y, false)
		if err != nil {
			return nil, nil, err
		}
		pre := append(preX, preY...)
		op := &ir.Bin{Op: x.Op, X: ex, Y: ey}
		if top {
			return pre, op, nil
		}
		t := l.fresh()
		pre = append(pre, &ir.Assign{LHS: &ir.Ref{Name: t}, RHS: op})
		return pre, &ir.Ref{Name: t}, nil
	case *ir.Un:
		preX, ex, err := l.expr(x.X, false)
		if err != nil {
			return nil, nil, err
		}
		op := &ir.Un{Op: x.Op, X: ex}
		if top {
			return preX, op, nil
		}
		t := l.fresh()
		preX = append(preX, &ir.Assign{LHS: &ir.Ref{Name: t}, RHS: op})
		return preX, &ir.Ref{Name: t}, nil
	}
	return nil, nil, fmt.Errorf("naive: unknown expression %T", e)
}

// Compile compiles a program with the naive strategy on the given target:
// loops are unrolled first (so array indices are constants, as the tree
// path also sees them), then everything is three-address lowered and
// compiled with compaction disabled.
func Compile(t *core.Target, prog *ir.Program) (*core.CompileResult, error) {
	assigns, err := ir.Flatten(prog)
	if err != nil {
		return nil, err
	}
	flat := &ir.Program{Decls: prog.Decls}
	for _, a := range assigns {
		flat.Body = append(flat.Body, a)
	}
	lowered, err := Lower3AC(flat)
	if err != nil {
		return nil, err
	}
	return t.CompileProgramContext(context.Background(), lowered, core.CompileOptions{NoCompaction: true})
}

// CompileSource is Compile for RecC source text.
func CompileSource(t *core.Target, src string) (*core.CompileResult, error) {
	prog, err := cfront.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(t, prog)
}
