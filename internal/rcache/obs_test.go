package rcache

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// spanNames collects the names of all ended spans in start order.
func spanNames(tr *obs.Tracer) []string {
	var names []string
	for _, si := range tr.Snapshot() {
		names = append(names, si.Name)
	}
	return names
}

// TestCacheHitTrace is the end-to-end trace contract of the cache: a
// request served from the memory tier produces a trace containing a
// cache.hit span and none of the retarget pipeline spans — the trace alone
// proves no ISE work ran.
func TestCacheHitTrace(t *testing.T) {
	c := newCache(t, "", 0)
	mdl := demoModel(t)

	// Cold request: its trace must show the full pipeline.
	cold := obs.NewTracer()
	ropts := core.RetargetOptions{Obs: obs.NewScope(obs.NewRegistry(), cold)}
	if _, out, err := c.GetContext(context.Background(), mdl, ropts); err != nil || out != Miss {
		t.Fatalf("cold get: outcome %s, err %v", out, err)
	}
	coldNames := map[string]bool{}
	for _, n := range spanNames(cold) {
		coldNames[n] = true
	}
	for _, want := range []string{"rcache.get", "retarget", "ise", "ise.dest"} {
		if !coldNames[want] {
			t.Errorf("cold trace missing %q span: %v", want, spanNames(cold))
		}
	}
	if coldNames["cache.hit"] {
		t.Errorf("cold trace claims a cache hit: %v", spanNames(cold))
	}

	// Warm request with a fresh tracer: cache.hit, and no pipeline work.
	warm := obs.NewTracer()
	ropts = core.RetargetOptions{Obs: obs.NewScope(obs.NewRegistry(), warm)}
	if _, out, err := c.GetContext(context.Background(), mdl, ropts); err != nil || out != Mem {
		t.Fatalf("warm get: outcome %s, err %v", out, err)
	}
	names := spanNames(warm)
	hit := false
	for _, n := range names {
		switch n {
		case "cache.hit":
			hit = true
		case "retarget", "ise", "ise.dest", "frontend", "extend", "grammar", "burs", "freeze":
			t.Errorf("warm trace ran pipeline span %q: %v", n, names)
		}
	}
	if !hit {
		t.Errorf("warm trace has no cache.hit span: %v", names)
	}
}

// TestCacheCounters checks the registry mirrors of the Stats counters.
func TestCacheCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Options{Obs: obs.NewScope(reg, nil)})
	if err != nil {
		t.Fatal(err)
	}
	mdl := demoModel(t)
	for i := 0; i < 3; i++ {
		if _, _, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("record_rcache_misses_total", "").Value(); got != 1 {
		t.Errorf("misses counter = %d, want 1", got)
	}
	if got := reg.CounterVec("record_rcache_hits_total", "", "tier").With("mem").Value(); got != 2 {
		t.Errorf("mem hits counter = %d, want 2", got)
	}
	if got := reg.Counter("record_rcache_retargets_total", "").Value(); got != 1 {
		t.Errorf("retargets counter = %d, want 1", got)
	}
}
