package rcache

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// seedArtifact retargets the demo model in a throwaway cache and returns
// (key, encoded artifact bytes) — the shape a fleet peer would serve.
func seedArtifact(t *testing.T) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	c := newCache(t, dir, 4)
	e, _, err := c.GetContext(context.Background(), demoModel(t), core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Encoded(e.Key)
	if err != nil {
		t.Fatal(err)
	}
	return e.Key, data
}

func TestPeerFetchSatisfiesGet(t *testing.T) {
	key, data := seedArtifact(t)

	fetches := 0
	c, err := New(Options{
		Dir:        t.TempDir(),
		MaxEntries: 4,
		PeerFetch: func(ctx context.Context, k string) ([]byte, error) {
			fetches++
			if k != key {
				t.Errorf("peer asked for %s, want %s", k, key)
			}
			return data, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, outcome, err := c.GetContext(context.Background(), demoModel(t), core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Peer {
		t.Fatalf("outcome = %s, want %s", outcome, Peer)
	}
	if !outcome.Hit() {
		t.Fatal("peer outcome should count as a hit")
	}
	if fetches != 1 {
		t.Fatalf("peer fetched %d times, want 1", fetches)
	}
	if e.Key != key {
		t.Fatalf("entry key %s, want %s", e.Key, key)
	}
	st := c.Stats()
	if st.PeerHits != 1 || st.Retargets != 0 {
		t.Fatalf("stats = %+v, want 1 peer hit and 0 retargets", st)
	}

	// The fetched copy must be persisted: a fresh cache over the same dir
	// serves it from disk without peers.
	if _, err := os.Stat(filepath.Join(c.opts.Dir, key+".rart")); err != nil {
		t.Fatalf("peer copy not persisted: %v", err)
	}
}

func TestPeerFetchLookupContext(t *testing.T) {
	key, data := seedArtifact(t)
	c, err := New(Options{
		Dir:        t.TempDir(),
		MaxEntries: 4,
		PeerFetch: func(ctx context.Context, k string) ([]byte, error) {
			return data, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, outcome, ok := c.LookupContext(context.Background(), key)
	if !ok || outcome != Peer {
		t.Fatalf("LookupContext = (%v, %s), want peer hit", ok, outcome)
	}
	// Second lookup is a memory hit; the peer is not consulted again.
	if _, outcome, ok = c.LookupContext(context.Background(), e.Key); !ok || outcome != Mem {
		t.Fatalf("second LookupContext = (%v, %s), want memory hit", ok, outcome)
	}
}

func TestPeerFailureDegradesToRetarget(t *testing.T) {
	for name, hook := range map[string]func(context.Context, string) ([]byte, error){
		"error":   func(context.Context, string) ([]byte, error) { return nil, errors.New("peer down") },
		"corrupt": func(context.Context, string) ([]byte, error) { return []byte("not an artifact"), nil },
		"absent":  func(context.Context, string) ([]byte, error) { return nil, nil },
	} {
		t.Run(name, func(t *testing.T) {
			c, err := New(Options{MaxEntries: 4, PeerFetch: hook})
			if err != nil {
				t.Fatal(err)
			}
			_, outcome, err := c.GetContext(context.Background(), demoModel(t), core.RetargetOptions{})
			if err != nil {
				t.Fatalf("peer %s failed the request: %v", name, err)
			}
			if outcome != Miss {
				t.Fatalf("outcome = %s, want %s (local retarget)", outcome, Miss)
			}
			st := c.Stats()
			if st.Retargets != 1 {
				t.Fatalf("retargets = %d, want 1", st.Retargets)
			}
			if name != "absent" && st.PeerFails != 1 {
				t.Fatalf("peer fails = %d, want 1", st.PeerFails)
			}
			if name == "absent" && st.PeerFails != 0 {
				t.Fatalf("an absent peer copy counted as a failure")
			}
		})
	}
}

func TestPeerWrongKeyRejected(t *testing.T) {
	key, data := seedArtifact(t)
	c, err := New(Options{MaxEntries: 4, PeerFetch: func(context.Context, string) ([]byte, error) {
		return data, nil // valid artifact, but for a different key
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.LookupContext(context.Background(), "deadbeef"+key[8:]); ok {
		t.Fatal("mismatched peer artifact was accepted")
	}
	if st := c.Stats(); st.PeerFails != 1 {
		t.Fatalf("peer fails = %d, want 1", st.PeerFails)
	}
}

func TestEncodedValidatesKey(t *testing.T) {
	c := newCache(t, t.TempDir(), 4)
	for _, bad := range []string{"", "../../etc/passwd", "ABCDEF", "zz"} {
		if _, err := c.Encoded(bad); err == nil {
			t.Errorf("Encoded(%q) accepted a malformed key", bad)
		}
	}
	key, _ := seedArtifact(t)
	if _, err := c.Encoded(key); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Encoded of absent key: %v, want ErrNotExist", err)
	}
	// Memory-only caches never serve peers.
	m := newCache(t, "", 4)
	if _, err := m.Encoded(key); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("memory-only Encoded: %v, want ErrNotExist", err)
	}
}
