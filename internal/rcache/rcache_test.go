package rcache

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/faultpoint"
	"repro/internal/models"
)

func demoModel(t testing.TB) string {
	t.Helper()
	mdl, ok := models.Get("demo")
	if !ok {
		t.Fatal("demo model missing")
	}
	return mdl
}

func newCache(t testing.TB, dir string, max int) *Cache {
	t.Helper()
	c, err := New(Options{Dir: dir, MaxEntries: max})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMemoryTier(t *testing.T) {
	c := newCache(t, "", 0) // memory-only
	mdl := demoModel(t)

	e1, out, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != Miss {
		t.Fatalf("first get: %s, want miss", out)
	}
	e2, out, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != Mem || e2 != e1 {
		t.Fatalf("second get: %s (same entry: %t), want memory hit of same entry", out, e2 == e1)
	}
	st := c.Stats()
	if st.Retargets != 1 || st.MemHits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskTierAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	mdl := demoModel(t)

	c1 := newCache(t, dir, 0)
	if _, out, err := c1.GetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil || out != Miss {
		t.Fatalf("warm: %v %s", err, out)
	}

	// A fresh cache (new process) finds the artifact on disk.
	c2 := newCache(t, dir, 0)
	e, out, err := c2.GetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != Disk {
		t.Fatalf("fresh instance: %s, want disk hit", out)
	}
	if c2.Stats().Retargets != 0 {
		t.Fatal("disk hit still retargeted")
	}
	// The decoded target compiles.
	res, err := e.Compile(context.Background(), "int a = 2; int b = 3; int y; y = a + b;", core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CodeLen() == 0 {
		t.Fatal("empty program from disk-tier target")
	}
}

func TestCorruptAndTruncatedArtifacts(t *testing.T) {
	mdl := demoModel(t)
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"garbage":   func([]byte) []byte { return []byte("recordart 1 feedface\nnot json") },
		"empty":     func([]byte) []byte { return nil },
		"bitflip": func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[len(b)-5] ^= 1
			return b
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c1 := newCache(t, dir, 0)
			if _, _, err := c1.GetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil {
				t.Fatal(err)
			}
			key := c1.Key(mdl, core.RetargetOptions{})
			path := filepath.Join(dir, key+".rart")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			rep := diag.NewReporter()
			c2, err := New(Options{Dir: dir, Reporter: rep})
			if err != nil {
				t.Fatal(err)
			}
			_, out, err := c2.GetContext(context.Background(), mdl, core.RetargetOptions{})
			if err != nil {
				t.Fatalf("corrupt artifact became an error: %v", err)
			}
			if out != Miss {
				t.Fatalf("corrupt artifact: %s, want miss", out)
			}
			st := c2.Stats()
			if st.Corrupt != 1 || st.Retargets != 1 {
				t.Fatalf("stats %+v", st)
			}
			if rep.Warns() == 0 {
				t.Fatal("no corruption warning reported")
			}
			found := false
			for _, d := range rep.Diags() {
				if strings.Contains(d.Msg, "corrupt") {
					found = true
				}
			}
			if !found {
				t.Fatalf("warning does not mention corruption: %v", rep.Diags())
			}
			// The bad file was replaced by a good one.
			c3 := newCache(t, dir, 0)
			if _, out, err := c3.GetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil || out != Disk {
				t.Fatalf("store not repaired: %v %s", err, out)
			}
		})
	}
}

func TestSingleflight(t *testing.T) {
	c := newCache(t, t.TempDir(), 0)
	mdl := demoModel(t)

	const n = 16
	var wg sync.WaitGroup
	entries := make([]*Entry, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries[i], _, errs[i] = c.GetContext(context.Background(), mdl, core.RetargetOptions{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if entries[i] == nil {
			t.Fatalf("request %d got nil entry", i)
		}
	}
	if got := c.Stats().Retargets; got != 1 {
		t.Fatalf("%d concurrent gets ran %d retargets, want 1", n, got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newCache(t, "", 2)
	// Distinct keys via distinct option fingerprints on one model.
	mdl := demoModel(t)
	get := func(maxAlts int) {
		opts := core.RetargetOptions{}
		opts.ISE.MaxAlts = maxAlts
		if _, _, err := c.GetContext(context.Background(), mdl, opts); err != nil {
			t.Fatal(err)
		}
	}
	get(100)
	get(101)
	get(102) // evicts the first
	if c.Len() != 2 {
		t.Fatalf("memory tier holds %d entries, cap 2", c.Len())
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions %d, want 1", c.Stats().Evictions)
	}
	get(100) // must retarget again (memory-only cache)
	if got := c.Stats().Retargets; got != 4 {
		t.Fatalf("retargets %d, want 4", got)
	}
}

func TestLookupByKey(t *testing.T) {
	dir := t.TempDir()
	mdl := demoModel(t)
	c1 := newCache(t, dir, 0)
	e, _, err := c1.GetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := c1.Lookup("no-such-key"); ok {
		t.Fatal("unknown key resolved")
	}
	if got, ok := c1.Lookup(e.Key); !ok || got != e {
		t.Fatal("memory lookup failed")
	}
	c2 := newCache(t, dir, 0)
	if _, ok := c2.Lookup(e.Key); !ok {
		t.Fatal("disk lookup failed")
	}
}

func TestDistinctModelsDistinctEntries(t *testing.T) {
	c := newCache(t, "", 0)
	var keys []string
	for _, name := range []string{"demo", "ref"} {
		mdl, ok := models.Get(name)
		if !ok {
			t.Fatalf("model %s missing", name)
		}
		e, _, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, e.Key)
	}
	if keys[0] == keys[1] {
		t.Fatal("different models share a content address")
	}
	if c.Len() != 2 {
		t.Fatalf("expected 2 entries, got %d", c.Len())
	}
}

func TestConcurrentCompilesOneEntry(t *testing.T) {
	c := newCache(t, "", 0)
	mdl := demoModel(t)
	e, _, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := "int a = 2; int b = 3; int y; y = a + b;"
	ref, err := e.Compile(context.Background(), src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Compile(context.Background(), src, core.CompileOptions{})
			if err != nil {
				panic(err)
			}
			if fmt.Sprint(res.Words()) != fmt.Sprint(ref.Words()) {
				panic("concurrent compile produced different words")
			}
		}()
	}
	wg.Wait()
}

func TestRecoveryScanRemovesOrphans(t *testing.T) {
	dir := t.TempDir()
	mdl := demoModel(t)

	// Simulate a process killed mid-store: a torn temp file next to a
	// valid artifact.
	c1 := newCache(t, dir, 0)
	if _, _, err := c1.GetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, ".deadbeef.tmp123456")
	if err := os.WriteFile(orphan, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := newCache(t, dir, 0)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan survived the recovery scan: %v", err)
	}
	if got := c2.Stats().Orphans; got != 1 {
		t.Fatalf("orphans recovered = %d, want 1", got)
	}
	// The valid artifact next to it is untouched.
	if _, out, err := c2.GetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil || out != Disk {
		t.Fatalf("after recovery: %v %s, want disk hit", err, out)
	}
}

func TestStoreFailureLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	mdl := demoModel(t)

	faultpoint.Arm("rcache.disk.write", faultpoint.Action{Kind: faultpoint.KindError})
	defer faultpoint.Reset()

	rep := diag.NewReporter()
	c, err := New(Options{Dir: dir, Reporter: rep})
	if err != nil {
		t.Fatal(err)
	}
	if _, out, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil || out != Miss {
		t.Fatalf("get through store failure: %v %s", err, out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("failed store left %s behind", e.Name())
	}
	if rep.Warns() == 0 {
		t.Fatal("store failure produced no warning")
	}
	if c.Degraded() {
		t.Fatal("an injected one-off error must not disable the disk tier")
	}
	if got := c.Stats().DiskFails; got != 1 {
		t.Fatalf("disk failures = %d, want 1", got)
	}
}

func TestDiskDegradationToMemoryOnly(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("read-only directories do not bind as root")
	}
	dir := t.TempDir()
	mdl := demoModel(t)

	rep := diag.NewReporter()
	c, err := New(Options{Dir: dir, Reporter: rep})
	if err != nil {
		t.Fatal(err)
	}
	// Make the store unwritable after New succeeded, as if the disk went
	// read-only under a running service.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)

	if _, out, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil || out != Miss {
		t.Fatalf("get on read-only disk: %v %s", err, out)
	}
	if !c.Degraded() {
		t.Fatal("read-only store did not degrade the disk tier")
	}
	warns := rep.Warns()
	if warns == 0 {
		t.Fatal("degradation produced no warning")
	}
	// Further traffic works memory-only and does not warn again.
	if _, out, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{}); err != nil || out != Mem {
		t.Fatalf("degraded get: %v %s, want memory hit", err, out)
	}
	if _, _, err := c.GetContext(context.Background(), mdl+" ", core.RetargetOptions{}); err != nil {
		t.Fatalf("degraded miss: %v", err)
	}
	if got := rep.Warns(); got != warns {
		t.Fatalf("degradation warned %d more times; want exactly one warning", got-warns)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close on degraded cache: %v", err)
	}
}

func TestCloseFlushesDir(t *testing.T) {
	dir := t.TempDir()
	c := newCache(t, dir, 0)
	if _, _, err := c.GetContext(context.Background(), demoModel(t), core.RetargetOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Close holds no handles: the cache keeps working.
	if _, out, err := c.GetContext(context.Background(), demoModel(t), core.RetargetOptions{}); err != nil || out != Mem {
		t.Fatalf("get after Close: %v %s", err, out)
	}
}

func TestDiskFailENOSPCDegrades(t *testing.T) {
	rep := diag.NewReporter()
	c, err := New(Options{Dir: t.TempDir(), Reporter: rep})
	if err != nil {
		t.Fatal(err)
	}
	full := &os.PathError{Op: "write", Path: "x", Err: syscall.ENOSPC}
	c.diskFail("k1", full)
	if !c.Degraded() {
		t.Fatal("ENOSPC did not degrade the disk tier")
	}
	warns := rep.Warns()
	c.diskFail("k2", full)
	if rep.Warns() != warns {
		t.Fatal("degradation warned more than once")
	}
	if got := c.Stats().DiskFails; got != 2 {
		t.Fatalf("disk failures = %d, want 2", got)
	}
	if e := c.loadDisk("k1"); e != nil {
		t.Fatal("degraded cache still reads disk")
	}
}
