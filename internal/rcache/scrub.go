package rcache

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/artifact"
	"repro/internal/diag"
	"repro/internal/faultpoint"
)

// DefaultScrubRate is the scrub pacing when Options.ScrubRate is unset:
// artifacts verified per second.  A verification is one file read plus a
// SHA-256 over it, so even the default keeps scrub I/O far below serving
// traffic.
const DefaultScrubRate = 64

// ScrubReport summarizes one scrub cycle.
type ScrubReport struct {
	Scanned      int // artifacts examined
	Clean        int // verified intact
	Quarantined  int // corrupt, renamed to <key>.quarantine
	Repaired     int // quarantined keys re-fetched from a peer this cycle
	Unrepairable int // quarantined keys no peer could supply
	Paused       bool // the cycle stopped early (degraded disk or ctx end)
}

// scrubPacer is a token bucket: rate tokens per second, burst of one
// second's worth, one token per verified artifact.  It keeps a scrub
// cycle from monopolizing disk bandwidth that serving traffic needs.
type scrubPacer struct {
	rate   float64
	tokens float64
	last   time.Time
}

func newScrubPacer(rate float64) *scrubPacer {
	if rate <= 0 {
		rate = DefaultScrubRate
	}
	return &scrubPacer{rate: rate, tokens: rate, last: time.Now()}
}

// wait blocks until a token is available or ctx ends.
func (p *scrubPacer) wait(ctx context.Context) error {
	now := time.Now()
	p.tokens += now.Sub(p.last).Seconds() * p.rate
	if p.tokens > p.rate {
		p.tokens = p.rate
	}
	p.last = now
	if p.tokens >= 1 {
		p.tokens--
		return nil
	}
	need := time.Duration((1 - p.tokens) / p.rate * float64(time.Second))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(need):
		p.tokens = 0
		p.last = time.Now()
		return nil
	}
}

// ScrubOnce walks every artifact in the disk store, re-verifies each
// against its content-addressed key (frame checksum plus self-identity),
// quarantines failures as <key>.quarantine — never deletes — and
// immediately attempts repair through the PeerFetch hook, which walks
// healthy peers in the key's rendezvous order and persists a verified
// copy.  The walk is paced by Options.ScrubRate.  Scrubbing pauses (the
// cycle ends early, Paused=true) when the disk tier degrades or ctx
// ends; a degraded tier means writes are failing, so neither quarantine
// renames nor repairs could land.
func (c *Cache) ScrubOnce(ctx context.Context) ScrubReport {
	c.scrubGate.Lock()
	defer c.scrubGate.Unlock()

	var rep ScrubReport
	if c.opts.Dir == "" || c.diskOff.Load() {
		rep.Paused = c.diskOff.Load()
		return rep
	}
	start := time.Now()
	pacer := newScrubPacer(c.opts.ScrubRate)
	for _, key := range c.Keys() {
		if ctx.Err() != nil || c.diskOff.Load() {
			rep.Paused = true
			break
		}
		if err := pacer.wait(ctx); err != nil {
			rep.Paused = true
			break
		}
		switch c.scrubOne(ctx, key) {
		case scrubAbsent:
			continue // evicted or repaired concurrently; nothing to count
		case scrubClean:
			rep.Clean++
		case scrubRepaired:
			rep.Quarantined++
			rep.Repaired++
		case scrubLost:
			rep.Quarantined++
			rep.Unrepairable++
		}
		rep.Scanned++
	}
	c.hScrubCycle.Observe(time.Since(start).Seconds())
	return rep
}

type scrubOutcome int

const (
	scrubAbsent scrubOutcome = iota
	scrubClean
	scrubRepaired
	scrubLost
)

// scrubOne verifies a single on-disk artifact, quarantining and repairing
// on failure.
func (c *Cache) scrubOne(ctx context.Context, key string) scrubOutcome {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return scrubAbsent
	}
	verr := faultpoint.Hit("rcache.scrub.verify", key)
	if verr == nil {
		verr = verifyArtifact(key, data)
	}
	if verr == nil {
		c.mu.Lock()
		c.stats.ScrubClean++
		c.mu.Unlock()
		c.cScrub.With("clean").Inc()
		return scrubClean
	}
	c.quarantine(key, verr)
	if c.repair(ctx, key) {
		return scrubRepaired
	}
	return scrubLost
}

// verifyArtifact re-checks an encoded artifact against its content
// address: the frame's payload checksum catches bit rot, the embedded
// key catches a file stored under the wrong name.
func verifyArtifact(key string, data []byte) error {
	a, err := artifact.Decode(data)
	if err != nil {
		return err
	}
	if a.Key != key {
		return fmt.Errorf("artifact self-identifies as %s", a.Key)
	}
	return nil
}

// repair re-fetches a quarantined key through the PeerFetch hook (which
// enumerates every healthy peer in the key's rendezvous order before
// giving up); peerEntry decode-verifies the bytes and persists them, so
// a successful repair leaves a fresh intact copy where the corrupt one
// sat.  Repairs are attributed to the scrub counters, not the serving
// hit counters.
func (c *Cache) repair(ctx context.Context, key string) bool {
	if c.opts.PeerFetch != nil && c.peerEntry(ctx, key) != nil {
		c.mu.Lock()
		c.stats.ScrubRepaired++
		c.mu.Unlock()
		c.cScrub.With("repaired").Inc()
		c.opts.Reporter.Warnf("rcache", diag.Pos{},
			"repaired quarantined artifact %s from a peer", key)
		return true
	}
	c.mu.Lock()
	c.stats.ScrubLost++
	c.mu.Unlock()
	c.cScrub.With("unrepairable").Inc()
	c.opts.Reporter.Warnf("rcache", diag.Pos{},
		"quarantined artifact %s is unrepairable: no healthy peer has a copy", key)
	return false
}

// RunScrubber drives scrub cycles every interval until ctx ends or stop
// closes (recordd passes its drain channel: a draining node must not
// start new background disk work).  Cycles skip — rather than end the
// loop — while the disk tier is degraded, so a tier that recovers at
// restart resumes scrubbing without intervention.
func (c *Cache) RunScrubber(ctx context.Context, interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 || c.opts.Dir == "" {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		case <-t.C:
			c.ScrubOnce(ctx)
		}
	}
}
