package rcache

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultpoint"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// corruptFile flips one byte in the middle of the on-disk artifact so the
// frame checksum no longer matches.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScrubCleanStore(t *testing.T) {
	key, data := seedArtifact(t)
	dir := t.TempDir()
	c := newCache(t, dir, 4)
	if err := c.Ingest(key, data); err != nil {
		t.Fatal(err)
	}
	rep := c.ScrubOnce(context.Background())
	if rep.Scanned != 1 || rep.Clean != 1 || rep.Quarantined != 0 || rep.Paused {
		t.Fatalf("scrub report %+v, want 1 scanned, 1 clean", rep)
	}
	if st := c.Stats(); st.ScrubClean != 1 {
		t.Fatalf("stats %+v, want ScrubClean=1", st)
	}
}

func TestScrubQuarantinesAndRepairs(t *testing.T) {
	key, data := seedArtifact(t)
	dir := t.TempDir()
	c, err := New(Options{
		Dir:        dir,
		MaxEntries: 4,
		PeerFetch: func(ctx context.Context, k string) ([]byte, error) {
			if k != key {
				t.Errorf("repair asked for %s, want %s", k, key)
			}
			return data, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(key, data); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, key+".rart"))

	rep := c.ScrubOnce(context.Background())
	if rep.Quarantined != 1 || rep.Repaired != 1 || rep.Unrepairable != 0 {
		t.Fatalf("scrub report %+v, want 1 quarantined + 1 repaired", rep)
	}
	// The corrupt bytes survive as forensic evidence...
	if _, err := os.Stat(filepath.Join(dir, key+".quarantine")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// ...and a fresh intact copy sits where the corrupt one was.
	fixed, err := os.ReadFile(filepath.Join(dir, key+".rart"))
	if err != nil {
		t.Fatalf("repaired copy missing: %v", err)
	}
	if verifyArtifact(key, fixed) != nil {
		t.Fatal("repaired copy does not verify")
	}
	st := c.Stats()
	if st.Corrupt != 1 || st.Quarantined != 1 || st.ScrubRepaired != 1 {
		t.Fatalf("stats %+v, want Corrupt=Quarantined=ScrubRepaired=1", st)
	}
}

func TestScrubUnrepairableWithoutPeers(t *testing.T) {
	key, data := seedArtifact(t)
	dir := t.TempDir()
	c := newCache(t, dir, 4) // no PeerFetch
	if err := c.Ingest(key, data); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, key+".rart"))

	rep := c.ScrubOnce(context.Background())
	if rep.Quarantined != 1 || rep.Unrepairable != 1 || rep.Repaired != 0 {
		t.Fatalf("scrub report %+v, want 1 quarantined + 1 unrepairable", rep)
	}
	// Quarantined, never deleted: the corrupt bytes must still exist.
	if _, err := os.Stat(filepath.Join(dir, key+".quarantine")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".rart")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt original should have been renamed away, stat err = %v", err)
	}
	if st := c.Stats(); st.ScrubLost != 1 {
		t.Fatalf("stats %+v, want ScrubLost=1", st)
	}
}

func TestScrubVerifyFaultpoint(t *testing.T) {
	key, data := seedArtifact(t)
	dir := t.TempDir()
	c := newCache(t, dir, 4)
	if err := c.Ingest(key, data); err != nil {
		t.Fatal(err)
	}
	// An intact file still quarantines when the verify faultpoint fires:
	// the site stands in for any verification failure.
	faultpoint.Arm("rcache.scrub.verify", faultpoint.Action{Kind: faultpoint.KindError})
	defer faultpoint.Reset()

	rep := c.ScrubOnce(context.Background())
	if rep.Quarantined != 1 {
		t.Fatalf("scrub report %+v, want 1 quarantined via faultpoint", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".quarantine")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

func TestScrubPausesWhileDegraded(t *testing.T) {
	key, data := seedArtifact(t)
	dir := t.TempDir()
	c := newCache(t, dir, 4)
	if err := c.Ingest(key, data); err != nil {
		t.Fatal(err)
	}
	c.diskOff.Store(true)
	rep := c.ScrubOnce(context.Background())
	if !rep.Paused || rep.Scanned != 0 {
		t.Fatalf("scrub report %+v, want paused with nothing scanned", rep)
	}
	c.diskOff.Store(false)
	if rep := c.ScrubOnce(context.Background()); rep.Clean != 1 {
		t.Fatalf("post-recovery scrub %+v, want 1 clean", rep)
	}
}

func TestLoadDiskQuarantinesCorruptArtifact(t *testing.T) {
	key, data := seedArtifact(t)
	dir := t.TempDir()
	c := newCache(t, dir, 4)
	if err := c.Ingest(key, data); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, key+".rart"))

	// A read-path discovery of the corruption must quarantine, not delete.
	if _, ok := c.Lookup(key); ok {
		t.Fatal("corrupt artifact should not load")
	}
	if _, err := os.Stat(filepath.Join(dir, key+".quarantine")); err != nil {
		t.Fatalf("loadDisk should quarantine, not remove: %v", err)
	}
	st := c.Stats()
	if st.Corrupt != 1 || st.Quarantined != 1 {
		t.Fatalf("stats %+v, want Corrupt=1 Quarantined=1", st)
	}
}

func TestStartupQuarantineSweep(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"aa.quarantine", "bb.quarantine"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(Options{
		Dir:        dir,
		MaxEntries: 4,
		Obs:        obs.NewScope(obs.NewRegistry(), nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.gQuarantine.Value(); got != 2 {
		t.Fatalf("startup quarantine gauge = %d, want 2", got)
	}
}

func TestIngest(t *testing.T) {
	key, data := seedArtifact(t)

	t.Run("stores and is idempotent", func(t *testing.T) {
		dir := t.TempDir()
		c := newCache(t, dir, 4)
		if err := c.Ingest(key, data); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(dir, key+".rart")); err != nil {
			t.Fatalf("ingested artifact not on disk: %v", err)
		}
		if err := c.Ingest(key, data); err != nil {
			t.Fatalf("duplicate ingest: %v", err)
		}
		if st := c.Stats(); st.Ingested != 1 {
			t.Fatalf("stats %+v, want exactly 1 ingested (duplicate is a no-op)", st)
		}
	})

	t.Run("rejects malformed key", func(t *testing.T) {
		c := newCache(t, t.TempDir(), 4)
		if err := c.Ingest("../escape", data); err == nil {
			t.Fatal("malformed key accepted")
		}
	})

	t.Run("rejects corrupt bytes", func(t *testing.T) {
		dir := t.TempDir()
		c := newCache(t, dir, 4)
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 0x40
		if err := c.Ingest(key, bad); err == nil {
			t.Fatal("corrupt push accepted")
		}
		if _, err := os.Stat(filepath.Join(dir, key+".rart")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("corrupt push must never be written, stat err = %v", err)
		}
	})

	t.Run("refuses memory-only cache", func(t *testing.T) {
		c := newCache(t, "", 0)
		if err := c.Ingest(key, data); !errors.Is(err, ErrNoStore) {
			t.Fatalf("err = %v, want ErrNoStore", err)
		}
	})

	t.Run("degraded disk refuses with typed transient error", func(t *testing.T) {
		c := newCache(t, t.TempDir(), 4)
		c.diskOff.Store(true)
		err := c.Ingest(key, data)
		var de *resilience.DegradedError
		if !errors.As(err, &de) {
			t.Fatalf("err = %v, want *resilience.DegradedError", err)
		}
		if !resilience.IsTransient(err) {
			t.Fatal("degraded refusal must be transient")
		}
		if after, ok := resilience.RetryAfterOf(err); !ok || after <= 0 {
			t.Fatalf("degraded refusal should carry a Retry-After hint, got %v/%v", after, ok)
		}
	})
}
