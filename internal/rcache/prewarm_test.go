package rcache

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

func TestPrewarmFromDiskAttribution(t *testing.T) {
	dir := t.TempDir()
	mdl := demoModel(t)

	// Seed the disk tier, then start a fresh instance (cold memory).
	c1 := newCache(t, dir, 0)
	e, _, err := c1.GetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	key := e.Key

	c2 := newCache(t, dir, 0)
	if c2.InMemory(key) {
		t.Fatal("fresh cache claims key in memory")
	}
	out, err := c2.Prewarm(context.Background(), key, "", core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != Disk {
		t.Fatalf("prewarm outcome %s, want %s", out, Disk)
	}
	if !c2.InMemory(key) {
		t.Fatal("prewarm did not land in the memory tier")
	}

	// Nothing pre-warm did shows up in the serving counters.
	st := c2.Stats()
	if st.MemHits != 0 || st.DiskHits != 0 || st.Misses != 0 || st.Retargets != 0 {
		t.Fatalf("prewarm leaked into serving stats: %+v", st)
	}
	if st.PrewarmLoads != 1 || st.PrewarmRetargets != 0 {
		t.Fatalf("prewarm attribution: %+v", st)
	}

	// The first real request is now a memory hit.
	e2, out2, err := c2.GetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out2 != Mem || e2.Key != key {
		t.Fatalf("post-prewarm get: %s (key %s)", out2, e2.Key)
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("serving stats after real hit: %+v", st)
	}

	// Prewarming an already-warm key is a cheap no-op.
	if out, err := c2.Prewarm(context.Background(), key, "", core.RetargetOptions{}); err != nil || out != Mem {
		t.Fatalf("warm prewarm: %s, %v", out, err)
	}
}

func TestPrewarmRetargetsFromSource(t *testing.T) {
	c := newCache(t, "", 0)
	mdl := demoModel(t)
	key := c.Key(mdl, core.RetargetOptions{})

	out, err := c.Prewarm(context.Background(), key, mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != Miss {
		t.Fatalf("prewarm outcome %s, want %s (retargeted)", out, Miss)
	}
	if !c.InMemory(key) {
		t.Fatal("retargeting prewarm did not land in memory")
	}
	st := c.Stats()
	if st.Retargets != 0 || st.Misses != 0 {
		t.Fatalf("prewarm retarget counted as serving work: %+v", st)
	}
	if st.PrewarmRetargets != 1 || st.PrewarmLoads != 1 {
		t.Fatalf("prewarm attribution: %+v", st)
	}
	// First real request: memory hit.
	_, out2, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil || out2 != Mem {
		t.Fatalf("post-prewarm get: %s, %v", out2, err)
	}
}

func TestPrewarmNothingToWarmFrom(t *testing.T) {
	c := newCache(t, "", 0)
	key := strings.Repeat("a", 64)
	out, err := c.Prewarm(context.Background(), key, "", core.RetargetOptions{})
	if err != nil || out != Miss {
		t.Fatalf("sourceless prewarm: %s, %v", out, err)
	}
	if c.InMemory(key) || c.Len() != 0 {
		t.Fatal("skipped prewarm inserted something")
	}
	if st := c.Stats(); st.PrewarmLoads != 0 || st.PrewarmRetargets != 0 {
		t.Fatalf("skipped prewarm counted work: %+v", st)
	}
}

func TestPrewarmRejectsBadKeys(t *testing.T) {
	c := newCache(t, "", 0)
	if _, err := c.Prewarm(context.Background(), "../../etc/passwd", "", core.RetargetOptions{}); err == nil {
		t.Fatal("malformed key accepted")
	}
	// A source that addresses a different key is a caller bug, not a
	// silent warm of the wrong artifact.
	mdl := demoModel(t)
	if _, err := c.Prewarm(context.Background(), strings.Repeat("b", 64), mdl, core.RetargetOptions{}); err == nil {
		t.Fatal("mismatched source accepted")
	}
}

func TestPrewarmCoalescesWithRealRequests(t *testing.T) {
	// While a real retarget is in flight, Prewarm for the same key backs
	// off with Coalesced instead of duplicating the work.
	c := newCache(t, "", 0)
	mdl := demoModel(t)
	key := c.Key(mdl, core.RetargetOptions{})

	c.mu.Lock()
	c.flight[key] = &flight{done: make(chan struct{})}
	c.mu.Unlock()
	out, err := c.Prewarm(context.Background(), key, mdl, core.RetargetOptions{})
	if err != nil || out != Coalesced {
		t.Fatalf("prewarm during flight: %s, %v", out, err)
	}
	c.mu.Lock()
	delete(c.flight, key)
	c.mu.Unlock()

	// Conversely, a real GetContext arriving while a prewarm retarget is
	// registered coalesces onto it: run the prewarm, then check the
	// flight bookkeeping emptied and real traffic proceeds.
	if out, err := c.Prewarm(context.Background(), key, mdl, core.RetargetOptions{}); err != nil || out != Miss {
		t.Fatalf("prewarm: %s, %v", out, err)
	}
	c.mu.Lock()
	inflight := len(c.flight)
	c.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("%d stale flights after prewarm", inflight)
	}
}

func TestPrewarmPeerTierAttribution(t *testing.T) {
	// Seed a "peer" by encoding the demo artifact through a disk cache,
	// then prewarm a memory-only cache whose PeerFetch serves it.
	dir := t.TempDir()
	seed := newCache(t, dir, 0)
	mdl := demoModel(t)
	e, _, err := seed.GetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := seed.Encoded(e.Key)
	if err != nil {
		t.Fatal(err)
	}

	c, err := New(Options{PeerFetch: func(ctx context.Context, key string) ([]byte, error) {
		return data, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Prewarm(context.Background(), e.Key, "", core.RetargetOptions{})
	if err != nil || out != Peer {
		t.Fatalf("peer prewarm: %s, %v", out, err)
	}
	st := c.Stats()
	if st.PeerHits != 0 {
		t.Fatalf("peer prewarm counted as a serving peer hit: %+v", st)
	}
	if st.PrewarmLoads != 1 {
		t.Fatalf("prewarm attribution: %+v", st)
	}
	if !c.InMemory(e.Key) {
		t.Fatal("peer prewarm did not land in memory")
	}
}

func TestKeysListsDiskStore(t *testing.T) {
	dir := t.TempDir()
	c := newCache(t, dir, 0)
	if got := c.Keys(); len(got) != 0 {
		t.Fatalf("empty store lists %v", got)
	}
	var want []string
	for _, name := range []string{"demo", "tms320c25"} {
		mdl, ok := models.Get(name)
		if !ok {
			t.Fatalf("model %s missing", name)
		}
		e, _, err := c.GetContext(context.Background(), mdl, core.RetargetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, e.Key)
	}
	got := c.Keys()
	if len(got) != 2 {
		t.Fatalf("Keys() = %v", got)
	}
	for _, k := range want {
		found := false
		for _, g := range got {
			if g == k {
				found = true
			}
		}
		if !found {
			t.Fatalf("Keys() = %v missing %s", got, k)
		}
	}
	// Memory-only caches list nothing.
	if got := newCache(t, "", 0).Keys(); got != nil {
		t.Fatalf("memory-only Keys() = %v", got)
	}
}
