// Package rcache is the two-tier retarget cache: an in-memory LRU of live
// core.Target instances over an on-disk store of encoded artifacts
// (internal/artifact).
//
// Retargeting a processor model costs CPU minutes at paper scale while its
// product is a pure function of (MDL source, options); serving compiles at
// production traffic therefore demands that the product be computed once
// and shared.  Get collapses concurrent requests for the same content
// address into a single underlying Retarget (singleflight), promotes disk
// artifacts into the memory tier on first use, and tolerates cache-file
// corruption: a file that fails to decode is a miss plus a diagnostic
// warning, never an error.
//
// Entries need no per-entry lock: every cached Target is frozen (its BDD
// tables are read-only and compiles run against private copy-on-write
// views), so any number of goroutines may compile through the same entry
// simultaneously.
package rcache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/faultpoint"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Outcome says which tier satisfied a Get.
type Outcome string

// Get outcomes.
const (
	Mem       Outcome = "hit"       // memory tier
	Disk      Outcome = "hit-disk"  // decoded from the artifact store
	Peer      Outcome = "hit-peer"  // fetched encoded from a fleet peer
	Miss      Outcome = "miss"      // full retarget ran
	Coalesced Outcome = "coalesced" // waited on another request's retarget
)

// Hit reports whether the outcome avoided a full retarget.
func (o Outcome) Hit() bool { return o != Miss }

// Stats are the cache counters; all increments happen under the cache
// mutex, reads return a snapshot.
type Stats struct {
	MemHits   uint64 // satisfied from the memory LRU
	DiskHits  uint64 // decoded from the disk store
	Misses    uint64 // required a full retarget
	Coalesced uint64 // waited on an in-flight retarget for the same key
	Evictions uint64 // memory-tier LRU evictions
	Corrupt   uint64 // disk artifacts dropped as corrupt
	Retargets uint64 // underlying core.Retarget invocations
	Orphans   uint64 // crash-orphaned temp files removed by the recovery scan
	DiskFails uint64 // disk-tier write failures (any cause)
	PeerHits  uint64 // artifacts fetched from a fleet peer
	PeerFails uint64 // peer fetches that failed (degraded to local retarget)

	// Self-healing disk tier: corrupt artifacts are renamed to
	// <key>.quarantine (never deleted — the bytes are forensic evidence)
	// and the scrubber repairs them from fleet peers.
	Quarantined   uint64 // corrupt artifacts renamed aside (loadDisk + scrub)
	ScrubClean    uint64 // scrubbed artifacts that verified clean
	ScrubRepaired uint64 // quarantined artifacts re-fetched from a peer
	ScrubLost     uint64 // quarantined artifacts no healthy peer could supply
	Ingested      uint64 // artifacts accepted from peer pushes (anti-entropy)

	// Speculative pre-warm is attributed apart from serving traffic so
	// the hit-rate computed from the counters above is what real
	// requests experienced, not what background loading manufactured.
	PrewarmLoads     uint64 // keys brought into the memory tier by Prewarm
	PrewarmRetargets uint64 // retargets run by Prewarm (not counted in Retargets)
}

// Options configures a cache.
type Options struct {
	// Dir is the artifact store directory; empty disables the disk tier.
	Dir string
	// MaxEntries caps the memory tier (default 16 targets).
	MaxEntries int
	// Reporter receives corruption and store-failure warnings; nil is safe.
	Reporter *diag.Reporter
	// Obs supplies the registry the cache counters land in
	// (record_rcache_*); per-request spans come from the RetargetOptions
	// passed to GetContext instead.  nil is safe.
	Obs *obs.Scope
	// PeerFetch, when set, is consulted on a local miss before a full
	// retarget: it should return the encoded artifact bytes for key from
	// a fleet peer, (nil, nil) when no peer has a copy, or an error.
	// Failures degrade to a local retarget, never to a request failure.
	// The disk scrubber uses the same hook to repair quarantined
	// artifacts.
	PeerFetch func(ctx context.Context, key string) ([]byte, error)
	// ScrubRate paces the disk scrubber in artifacts verified per second
	// (token bucket, burst of one second's worth); 0 means
	// DefaultScrubRate.  The scrubber never runs unless RunScrubber or
	// ScrubOnce is called.
	ScrubRate float64
}

// DefaultMaxEntries is the memory-tier capacity when Options.MaxEntries
// is unset.
const DefaultMaxEntries = 16

// Entry is one cached retarget product.  The target is frozen, so every
// method — and direct use of Target() — is safe for concurrent use with
// no serialization: parallel compiles share the read-only tables and keep
// their mutable state in per-compile sessions.
type Entry struct {
	Key string

	target   *core.Target
	compiler *core.Compiler
}

// Compile compiles RecC source through the cached target's pooled
// Compiler.  Any number of Compiles may run concurrently against the same
// entry; they share the handle's session pool instead of allocating a
// fresh encoding session per request.
func (e *Entry) Compile(ctx context.Context, src string, opts core.CompileOptions) (*core.CompileResult, error) {
	if e.compiler != nil {
		return e.compiler.CompileSourceOpts(ctx, src, opts)
	}
	return e.target.CompileSourceContext(ctx, src, opts)
}

// Compiler exposes the entry's long-lived compile handle (nil only for a
// target that could not back one, e.g. an unfrozen test construction).
func (e *Entry) Compiler() *core.Compiler { return e.compiler }

// Listing renders a compile result against the cached target.
func (e *Entry) Listing(r *core.CompileResult) string {
	return e.target.Listing(r)
}

// Target exposes the underlying frozen target; it is safe to share across
// goroutines.
func (e *Entry) Target() *core.Target { return e.target }

type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Cache is the two-tier retarget cache.  All methods are safe for
// concurrent use.
type Cache struct {
	opts Options

	mu     sync.Mutex
	lru    *list.List               // of *Entry, front = most recent
	byKey  map[string]*list.Element // key -> LRU element
	flight map[string]*flight       // key -> in-flight retarget
	stats  Stats

	// diskOff flips on when the store becomes unusable (disk full,
	// read-only filesystem, permission loss): the cache degrades to
	// memory-only with one warning instead of failing every request.
	diskOff atomic.Bool

	// Registry mirrors of the Stats counters (nil-safe when Options.Obs
	// carries no registry).  Stats stays authoritative for programmatic
	// reads; these exist so /metrics needs no snapshot plumbing.
	cHits       *obs.CounterVec // by tier: mem | disk
	cMisses     *obs.Counter
	cCoalesced  *obs.Counter
	cEvictions  *obs.Counter
	cCorrupt    *obs.Counter
	cRetargets  *obs.Counter
	cOrphans    *obs.Counter
	cDiskErrors *obs.Counter
	cPeerErrors *obs.Counter
	cPrewarm    *obs.CounterVec // by outcome; kept apart from cHits/cMisses
	gDegraded   *obs.Gauge

	// Self-healing instruments: scrub outcomes, cycle duration, the
	// count of .quarantine files accumulated on disk (swept at startup,
	// bumped per quarantine, dropped per repair), and peer-push ingests.
	cScrub      *obs.CounterVec
	hScrubCycle *obs.Histogram
	gQuarantine *obs.Gauge
	cIngest     *obs.CounterVec

	// scrubGate serializes scrub cycles so RunScrubber and a direct
	// ScrubOnce caller never double-walk the store.
	scrubGate sync.Mutex
}

// New creates a cache; when opts.Dir is set the directory is created and
// scanned for crash debris: temp files orphaned by a process killed
// mid-store are deleted so a crash during a cache write never leaks disk
// or confuses a later scan.
func New(opts Options) (*Cache, error) {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("rcache: %w", err)
		}
	}
	c := &Cache{
		opts:   opts,
		lru:    list.New(),
		byKey:  make(map[string]*list.Element),
		flight: make(map[string]*flight),
	}
	reg := opts.Obs.Registry()
	c.cHits = reg.CounterVec("record_rcache_hits_total",
		"retarget cache hits, by tier", "tier")
	c.cMisses = reg.Counter("record_rcache_misses_total",
		"retarget cache misses (full retarget ran)")
	c.cCoalesced = reg.Counter("record_rcache_coalesced_total",
		"requests coalesced onto an in-flight retarget")
	c.cEvictions = reg.Counter("record_rcache_evictions_total",
		"memory-tier LRU evictions")
	c.cCorrupt = reg.Counter("record_rcache_corrupt_total",
		"disk artifacts dropped as corrupt")
	c.cRetargets = reg.Counter("record_rcache_retargets_total",
		"underlying retarget invocations")
	c.cOrphans = reg.Counter("record_rcache_orphans_recovered_total",
		"crash-orphaned temp files removed by the startup recovery scan")
	c.cDiskErrors = reg.Counter("record_rcache_disk_errors_total",
		"disk-tier write failures")
	c.cPeerErrors = reg.Counter("record_rcache_peer_errors_total",
		"peer artifact fetches that failed (degraded to local retarget)")
	c.cPrewarm = reg.CounterVec("record_rcache_prewarm_total",
		"speculative pre-warm attempts, by outcome; attributed apart from the serving hit/miss counters", "outcome")
	c.gDegraded = reg.Gauge("record_rcache_disk_degraded",
		"1 when the disk tier is disabled after an unusable-disk error")
	c.cScrub = reg.CounterVec("record_rcache_scrub_total",
		"disk-scrub verifications, by outcome (clean | quarantined | repaired | unrepairable)", "outcome")
	c.hScrubCycle = reg.Histogram("record_rcache_scrub_cycle_seconds",
		"wall time of one full disk-scrub cycle", nil)
	c.gQuarantine = reg.Gauge("record_rcache_quarantined_files",
		"corrupt artifacts currently set aside as <key>.quarantine in the store directory")
	c.cIngest = reg.CounterVec("record_rcache_ingest_total",
		"artifacts pushed by peers (anti-entropy), by outcome", "outcome")
	if opts.Dir != "" {
		c.recoverOrphans()
		c.sweepQuarantine()
	}
	return c, nil
}

// sweepQuarantine counts the .quarantine files already accumulated in the
// store directory so operators see corruption that predates this process
// (quarantined artifacts are never deleted automatically; clearing them
// is an explicit operator action).
func (c *Cache) sweepQuarantine() {
	entries, err := os.ReadDir(c.opts.Dir)
	if err != nil {
		return
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".quarantine") {
			found++
		}
	}
	c.gQuarantine.Set(int64(found))
	if found > 0 {
		c.opts.Reporter.Warnf("rcache", diag.Pos{},
			"%d quarantined artifact(s) from previous runs in %s", found, c.opts.Dir)
	}
}

// recoverOrphans deletes temp files left behind by a crash mid-store.
// Completed artifacts are never touched: store renames atomically, so any
// ".*.tmp*" file is by construction a torn write.
func (c *Cache) recoverOrphans() {
	entries, err := os.ReadDir(c.opts.Dir)
	if err != nil {
		c.opts.Reporter.Warnf("rcache", diag.Pos{}, "recovery scan failed: %v", err)
		return
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp") {
			continue
		}
		if err := os.Remove(filepath.Join(c.opts.Dir, name)); err == nil {
			removed++
		}
	}
	if removed > 0 {
		c.mu.Lock()
		c.stats.Orphans += uint64(removed)
		c.mu.Unlock()
		c.cOrphans.Add(removed)
		c.opts.Reporter.Warnf("rcache", diag.Pos{},
			"recovered %d orphan temp file(s) from a previous crash", removed)
	}
}

// markHit records a zero-length cache.hit span so the trace of a cached
// request shows which tier answered — and, by the absence of retarget
// spans, that no pipeline work ran.
func markHit(scope *obs.Scope, tier string) {
	sp, _ := scope.Start("cache.hit", obs.KV("tier", tier))
	sp.End()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of memory-tier entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Key returns the content address Get will use for (mdlSource, ropts).
func (c *Cache) Key(mdlSource string, ropts core.RetargetOptions) string {
	return artifact.Key(mdlSource, ropts)
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.opts.Dir, key+".rart")
}

// newEntry wraps a frozen target in an Entry with a pooled compile
// handle.  A target that cannot back one (unfrozen — possible only in
// synthetic tests) still gets an entry; Compile then falls back to the
// per-call session path.
func (c *Cache) newEntry(key string, t *core.Target) *Entry {
	e := &Entry{Key: key, target: t}
	if cc, err := core.NewCompiler(t, core.Config{Obs: c.opts.Obs}); err == nil {
		e.compiler = cc
	}
	return e
}

// GetContext returns the cached retarget product for (mdlSource, ropts),
// running the retarget at most once per content address across concurrent
// callers.  ctx bounds a retarget this call initiates; coalesced waiters
// also stop waiting when their own ctx is done (the in-flight retarget
// keeps running for its initiator).  The returned outcome says which tier
// satisfied the request.
func (c *Cache) GetContext(ctx context.Context, mdlSource string, ropts core.RetargetOptions) (*Entry, Outcome, error) {
	key := artifact.Key(mdlSource, ropts)

	// The request's trace: everything below — hit markers, coalesced
	// waits, a full retarget — parents under one rcache.get span.
	gSpan, gScope := ropts.Obs.Start("rcache.get")
	defer gSpan.End()
	ropts.Obs = gScope

	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.MemHits++
		e := el.Value.(*Entry)
		c.mu.Unlock()
		c.cHits.With("mem").Inc()
		markHit(gScope, "mem")
		return e, Mem, nil
	}
	if f, ok := c.flight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		c.cCoalesced.Inc()
		wSpan, _ := gScope.Start("cache.coalesced")
		select {
		case <-f.done:
		case <-ctx.Done():
			wSpan.End()
			return nil, Miss, &diag.BudgetError{Resource: "deadline", Cause: ctx.Err()}
		}
		wSpan.End()
		if f.err != nil {
			return nil, Miss, f.err
		}
		return f.entry, Coalesced, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flight[key] = f
	c.mu.Unlock()

	entry, outcome, err := c.fill(ctx, key, mdlSource, ropts)

	c.mu.Lock()
	delete(c.flight, key)
	if err == nil {
		// Budget-degraded (partial) products stay out of both tiers: the
		// content address does not encode the budget, so a retry with a
		// larger one must not hit the degraded result.
		if artifact.Cacheable(entry.target) {
			c.insert(key, entry)
		}
		switch outcome {
		case Disk:
			c.stats.DiskHits++
			c.cHits.With("disk").Inc()
		case Miss:
			c.stats.Misses++
			c.cMisses.Inc()
		}
	}
	c.mu.Unlock()

	f.entry, f.err = entry, err
	close(f.done)
	return entry, outcome, err
}

// Lookup is LookupContext with a background context, for callers that
// have no request context to thread through a peer fetch.
func (c *Cache) Lookup(key string) (*Entry, bool) {
	e, _, ok := c.LookupContext(context.Background(), key)
	return e, ok
}

// LookupContext returns the entry for a content address without being
// able to retarget: memory tier, then disk tier, then — when a PeerFetch
// hook is configured — the fleet's peers.  ok is false when the key is
// in none of them (or its disk artifact is corrupt).  The outcome says
// which tier answered, Miss when none did.
func (c *Cache) LookupContext(ctx context.Context, key string) (*Entry, Outcome, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.MemHits++
		e := el.Value.(*Entry)
		c.mu.Unlock()
		c.cHits.With("mem").Inc()
		return e, Mem, true
	}
	c.mu.Unlock()

	entry, outcome := c.loadDisk(key), Disk
	if entry == nil {
		entry, outcome = c.fetchPeer(ctx, key), Peer
		if entry == nil {
			return nil, Miss, false
		}
	}
	c.mu.Lock()
	// Another goroutine may have inserted meanwhile; prefer its entry.
	if el, ok := c.byKey[key]; ok {
		entry = el.Value.(*Entry)
	} else {
		c.insert(key, entry)
	}
	if outcome == Disk {
		c.stats.DiskHits++
	}
	c.mu.Unlock()
	if outcome == Disk {
		c.cHits.With("disk").Inc()
	}
	return entry, outcome, true
}

// fill resolves a key the memory tier does not have: disk first, then a
// fleet peer's copy, then a full retarget (persisting the fresh artifact
// for the next process).
func (c *Cache) fill(ctx context.Context, key, mdlSource string, ropts core.RetargetOptions) (*Entry, Outcome, error) {
	if entry := c.loadDisk(key); entry != nil {
		markHit(ropts.Obs, "disk")
		return entry, Disk, nil
	}
	// The rewrapped context parents the peer fetch's HTTP span (and its
	// trace header) under this get's span rather than the request root.
	if entry := c.fetchPeer(obs.ContextWithScope(ctx, ropts.Obs), key); entry != nil {
		markHit(ropts.Obs, "peer")
		return entry, Peer, nil
	}

	c.mu.Lock()
	c.stats.Retargets++
	c.mu.Unlock()
	c.cRetargets.Inc()
	t, err := core.RetargetContext(ctx, mdlSource, ropts)
	if err != nil {
		return nil, Miss, err
	}
	entry := c.newEntry(key, t)
	if c.opts.Dir != "" && !c.diskOff.Load() && artifact.Cacheable(t) {
		if err := c.store(key, t, mdlSource, ropts); err != nil {
			c.diskFail(key, err)
		}
	}
	return entry, Miss, nil
}

// loadDisk decodes the artifact for key, quarantining corrupt files as
// misses: the bytes are renamed to <key>.quarantine, never deleted, so
// the evidence of how they rotted survives for forensics and the
// scrubber can repair the key from a peer.
func (c *Cache) loadDisk(key string) *Entry {
	if c.opts.Dir == "" || c.diskOff.Load() {
		return nil
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil // absent: plain miss
	}
	bad := func(err error) *Entry {
		c.quarantine(key, err)
		return nil
	}
	a, err := artifact.Decode(data)
	if err != nil {
		return bad(err)
	}
	if a.Key != key {
		return bad(fmt.Errorf("artifact self-identifies as %s", a.Key))
	}
	t, err := a.Target()
	if err != nil {
		return bad(err)
	}
	return c.newEntry(key, t)
}

func (c *Cache) quarantinePath(key string) string {
	return filepath.Join(c.opts.Dir, key+".quarantine")
}

// quarantine sets a corrupt artifact aside as <key>.quarantine and counts
// the corruption once.  Renaming (not deleting) preserves the corrupt
// bytes for forensics; a later scrub repairs the key from a peer.  A
// failed rename leaves the file in place — deletion is never the
// fallback — and the key simply stays a miss until the scrubber retries.
func (c *Cache) quarantine(key string, cause error) {
	c.mu.Lock()
	c.stats.Corrupt++
	c.mu.Unlock()
	c.cCorrupt.Inc()
	_, statErr := os.Stat(c.quarantinePath(key))
	if err := os.Rename(c.path(key), c.quarantinePath(key)); err != nil {
		c.opts.Reporter.Warnf("rcache", diag.Pos{},
			"corrupt cache artifact %s (%v) could not be quarantined: %v", key, cause, err)
		return
	}
	c.mu.Lock()
	c.stats.Quarantined++
	c.mu.Unlock()
	c.cScrub.With("quarantined").Inc()
	if statErr != nil { // first quarantine of this key; re-corruption overwrites
		c.gQuarantine.Inc()
	}
	c.opts.Reporter.Warnf("rcache", diag.Pos{},
		"quarantined corrupt cache artifact %s: %v", key, cause)
}

// fetchPeer asks the PeerFetch hook for another node's encoded artifact
// on a local miss, counting a success as a serving peer hit.  Any
// failure — peer miss, transport error, corrupt or mismatched bytes —
// returns nil and the caller falls back to a local retarget: peer
// replication can only ever save work, never fail a request.
func (c *Cache) fetchPeer(ctx context.Context, key string) *Entry {
	entry := c.peerEntry(ctx, key)
	if entry == nil {
		return nil
	}
	c.mu.Lock()
	c.stats.PeerHits++
	c.mu.Unlock()
	c.cHits.With("peer").Inc()
	return entry
}

// peerEntry is the fetch itself, without the serving-hit attribution:
// Prewarm uses it directly so background replication does not inflate
// the hit counters.  Fetched bytes are persisted to the local disk tier
// so the copy survives restarts and is servable onward to other peers.
func (c *Cache) peerEntry(ctx context.Context, key string) *Entry {
	if c.opts.PeerFetch == nil {
		return nil
	}
	data, err := c.opts.PeerFetch(ctx, key)
	if err != nil {
		c.peerFail(key, err)
		return nil
	}
	if data == nil {
		return nil // no peer has a copy: plain miss, not a failure
	}
	a, err := artifact.Decode(data)
	if err != nil {
		c.peerFail(key, err)
		return nil
	}
	if a.Key != key {
		c.peerFail(key, fmt.Errorf("peer artifact self-identifies as %s", a.Key))
		return nil
	}
	t, err := a.Target()
	if err != nil {
		c.peerFail(key, err)
		return nil
	}
	if c.opts.Dir != "" && !c.diskOff.Load() {
		if err := c.storeBytes(key, data); err != nil {
			c.diskFail(key, err)
		}
	}
	return c.newEntry(key, t)
}

// peerFail records one failed peer fetch; the request continues locally.
func (c *Cache) peerFail(key string, err error) {
	c.mu.Lock()
	c.stats.PeerFails++
	c.mu.Unlock()
	c.cPeerErrors.Inc()
	c.opts.Reporter.Warnf("rcache", diag.Pos{},
		"peer fetch for %s failed, retargeting locally: %v", key, err)
}

// Encoded returns the on-disk encoded artifact for key, for serving to
// fleet peers.  Only the disk tier is served: a memory-only cache (no
// store directory, or a degraded disk) reports os.ErrNotExist — entries
// in RAM no longer carry their model source, so the artifact cannot be
// re-encoded.  The key is validated as a content address first, so a
// peer-supplied key can never escape the store directory.
func (c *Cache) Encoded(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("rcache: malformed artifact key %q", key)
	}
	if c.opts.Dir == "" || c.diskOff.Load() {
		return nil, os.ErrNotExist
	}
	return os.ReadFile(c.path(key))
}

// ErrNoStore reports an Ingest against a cache with no disk tier: a
// memory-only node cannot hold a durable replica, so accepting the push
// would let the fleet believe the key is safer than it is.
var ErrNoStore = errors.New("rcache: no disk store configured")

// DegradedRetryAfter is the backoff hint attached to Ingest refusals
// while the disk tier is degraded.
const DegradedRetryAfter = 30 * time.Second

// Ingest accepts an encoded artifact pushed by a fleet peer
// (anti-entropy replication) and persists it crash-safely.  The bytes
// are decode-verified against the content address before acceptance — a
// corrupt or mis-keyed push is rejected, never written.  A degraded disk
// tier refuses with a typed transient *resilience.DegradedError (the
// push must land on a node that can actually hold a durable replica,
// not be buffered memory-only); a cache with no store directory refuses
// with ErrNoStore.  A key already present is a successful no-op, so
// repeated pushes from concurrent sweeps are idempotent and cheap.
func (c *Cache) Ingest(key string, data []byte) error {
	if !validKey(key) {
		c.cIngest.With("rejected").Inc()
		return fmt.Errorf("rcache: malformed artifact key %q", key)
	}
	if c.opts.Dir == "" {
		c.cIngest.With("rejected").Inc()
		return ErrNoStore
	}
	if c.diskOff.Load() {
		c.cIngest.With("degraded").Inc()
		return &resilience.DegradedError{Resource: "disk tier", After: DegradedRetryAfter}
	}
	if _, err := os.Stat(c.path(key)); err == nil {
		c.cIngest.With("duplicate").Inc()
		return nil
	}
	a, err := artifact.Decode(data)
	if err != nil {
		c.cIngest.With("rejected").Inc()
		return fmt.Errorf("rcache: rejecting pushed artifact for %s: %w", key, err)
	}
	if a.Key != key {
		c.cIngest.With("rejected").Inc()
		return fmt.Errorf("rcache: pushed artifact self-identifies as %s, not %s", a.Key, key)
	}
	if err := c.storeBytes(key, data); err != nil {
		c.diskFail(key, err)
		if c.diskOff.Load() {
			c.cIngest.With("degraded").Inc()
			return &resilience.DegradedError{Resource: "disk tier", After: DegradedRetryAfter}
		}
		c.cIngest.With("error").Inc()
		return err
	}
	c.mu.Lock()
	c.stats.Ingested++
	c.mu.Unlock()
	c.cIngest.With("stored").Inc()
	return nil
}

// validKey reports whether key has the exact shape of a content address
// (64 lowercase hex digits).
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		if ch := key[i]; (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}

// store encodes the artifact and writes it crash-safely.
func (c *Cache) store(key string, t *core.Target, mdlSource string, ropts core.RetargetOptions) error {
	if err := faultpoint.Hit("rcache.disk.write", key); err != nil {
		return err
	}
	a, err := artifact.New(t, mdlSource, ropts)
	if err != nil {
		return err
	}
	data, err := a.Encode()
	if err != nil {
		return err
	}
	return c.storeBytes(key, data)
}

// storeBytes writes encoded artifact bytes crash-safely: temp file, fsync
// of the data, atomic rename, fsync of the directory.  Readers never
// observe a torn write, and a write the caller saw succeed survives a
// machine crash.  On any failure the temp file is removed so failed
// writes cannot leak.
func (c *Cache) storeBytes(key string, data []byte) error {
	tmp, err := os.CreateTemp(c.opts.Dir, "."+key+".tmp*")
	if err != nil {
		return err
	}
	_, err = tmp.Write(data)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), c.path(key))
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	// The rename is in the directory's metadata: fsync it so the entry —
	// not just the bytes — is durable.
	return syncDir(c.opts.Dir)
}

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// diskFail handles a disk-tier write failure.  Unusable-disk conditions
// (no space, read-only filesystem, permission loss) disable the tier for
// the rest of the process with a single warning — the cache keeps serving
// memory-only; anything else warns per-failure and leaves the tier on.
func (c *Cache) diskFail(key string, err error) {
	c.mu.Lock()
	c.stats.DiskFails++
	c.mu.Unlock()
	c.cDiskErrors.Inc()
	if !diskUnusable(err) {
		c.opts.Reporter.Warnf("rcache", diag.Pos{}, "cannot persist artifact %s: %v", key, err)
		return
	}
	if c.diskOff.CompareAndSwap(false, true) {
		c.gDegraded.Set(1)
		c.opts.Reporter.Warnf("rcache", diag.Pos{},
			"disk tier disabled (%v): continuing memory-only", err)
	}
}

// diskUnusable reports whether err means the store directory cannot be
// written at all (as opposed to one artifact failing).
func diskUnusable(err error) bool {
	return errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EROFS) ||
		errors.Is(err, syscall.EDQUOT) ||
		errors.Is(err, os.ErrPermission)
}

// Degraded reports whether the disk tier has been disabled.
func (c *Cache) Degraded() bool { return c.diskOff.Load() }

// Close flushes the disk tier: it fsyncs the store directory so every
// completed artifact rename is durable before the process exits.  The
// cache stays usable after Close (it holds no file handles open); recordd
// calls this as the last step of a graceful drain.
func (c *Cache) Close() error {
	if c.opts.Dir == "" || c.diskOff.Load() {
		return nil
	}
	return syncDir(c.opts.Dir)
}

// ---- speculative pre-warm ----------------------------------------------

// InMemory reports whether key already sits in the memory tier, without
// touching its LRU position or any counter.
func (c *Cache) InMemory(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byKey[key]
	return ok
}

// Keys lists the content addresses present in the disk store, sorted.
// A memory-only or degraded cache lists nothing.
func (c *Cache) Keys() []string {
	if c.opts.Dir == "" || c.diskOff.Load() {
		return nil
	}
	entries, err := os.ReadDir(c.opts.Dir)
	if err != nil {
		return nil
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if k := strings.TrimSuffix(name, ".rart"); k != name && validKey(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Prewarm brings the artifact for key into the memory tier ahead of
// demand: disk first, then a fleet peer, then — when mdlSource is known
// — a fresh retarget.  The next real request for the key is then a
// memory hit.
//
// Attribution is the point of having a separate entry point: everything
// Prewarm does lands in record_rcache_prewarm_total{outcome} and the
// Stats.Prewarm* counters, never in the serving hit/miss/retarget
// counters, so the externally observed hit rate reflects real traffic
// only.  A retargeting Prewarm registers the same in-flight marker as
// GetContext, so a real request arriving mid-warm coalesces onto the
// background work instead of duplicating it.
//
// The returned outcome mirrors GetContext's tiers: Mem (already warm),
// Coalesced (someone else is filling it), Disk/Peer (decoded into
// memory), Miss with nil error (retargeted, or nothing to warm from
// when mdlSource is empty and no tier has a copy).
func (c *Cache) Prewarm(ctx context.Context, key, mdlSource string, ropts core.RetargetOptions) (Outcome, error) {
	if !validKey(key) {
		return Miss, fmt.Errorf("rcache: malformed artifact key %q", key)
	}
	c.mu.Lock()
	if _, ok := c.byKey[key]; ok {
		c.mu.Unlock()
		c.cPrewarm.With("warm").Inc()
		return Mem, nil
	}
	if _, ok := c.flight[key]; ok {
		c.mu.Unlock()
		c.cPrewarm.With("inflight").Inc()
		return Coalesced, nil
	}
	c.mu.Unlock()

	// Cheap tiers first, without an in-flight marker: a decode failure
	// here degrades to the next tier and can never poison a concurrent
	// real request.
	if entry := c.loadDisk(key); entry != nil {
		c.adoptPrewarmed(key, entry, "hit-disk")
		return Disk, nil
	}
	if entry := c.peerEntry(ctx, key); entry != nil {
		c.adoptPrewarmed(key, entry, "hit-peer")
		return Peer, nil
	}
	if mdlSource == "" {
		// Known only by key (the clients always sent "key"): with no
		// tier holding a copy there is nothing to rebuild it from.
		c.cPrewarm.With("skipped").Inc()
		return Miss, nil
	}
	if got := artifact.Key(mdlSource, ropts); got != key {
		return Miss, fmt.Errorf("rcache: prewarm source addresses %s, not %s", got, key)
	}

	c.mu.Lock()
	if _, ok := c.byKey[key]; ok { // raced a real fill
		c.mu.Unlock()
		c.cPrewarm.With("warm").Inc()
		return Mem, nil
	}
	if _, ok := c.flight[key]; ok {
		c.mu.Unlock()
		c.cPrewarm.With("inflight").Inc()
		return Coalesced, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flight[key] = f
	c.stats.PrewarmRetargets++
	c.mu.Unlock()

	t, err := core.RetargetContext(ctx, mdlSource, ropts)
	var entry *Entry
	if err == nil {
		entry = c.newEntry(key, t)
		if c.opts.Dir != "" && !c.diskOff.Load() && artifact.Cacheable(t) {
			if serr := c.store(key, t, mdlSource, ropts); serr != nil {
				c.diskFail(key, serr)
			}
		}
	}
	c.mu.Lock()
	delete(c.flight, key)
	if err == nil && artifact.Cacheable(entry.target) {
		c.insert(key, entry)
		c.stats.PrewarmLoads++
	}
	c.mu.Unlock()
	f.entry, f.err = entry, err
	close(f.done)
	if err != nil {
		c.cPrewarm.With("error").Inc()
		return Miss, err
	}
	c.cPrewarm.With("retargeted").Inc()
	return Miss, nil
}

// adoptPrewarmed inserts a tier-decoded entry under pre-warm
// attribution, preferring a concurrently inserted one.
func (c *Cache) adoptPrewarmed(key string, entry *Entry, outcome string) {
	c.mu.Lock()
	if _, ok := c.byKey[key]; !ok {
		c.insert(key, entry)
		c.stats.PrewarmLoads++
	}
	c.mu.Unlock()
	c.cPrewarm.With(outcome).Inc()
}

// insert adds an entry to the memory tier, evicting from the LRU tail.
// Caller holds c.mu.
func (c *Cache) insert(key string, e *Entry) {
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.opts.MaxEntries {
		tail := c.lru.Back()
		victim := c.lru.Remove(tail).(*Entry)
		delete(c.byKey, victim.Key)
		c.stats.Evictions++
		c.cEvictions.Inc()
	}
}
