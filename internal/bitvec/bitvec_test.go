package bitvec

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

const w = 8 // word width used throughout concrete/symbolic cross checks

// evalConst evaluates a symbolic vector built from two symbolic operands at
// concrete values of those operands.
func operands(m *bdd.Manager) (a, b Vec) {
	a = Vars(m, "a", w)
	b = Vars(m, "b", w)
	return
}

func assignFor(av, bv uint8) map[int]bool {
	assign := make(map[int]bool)
	for i := 0; i < w; i++ {
		assign[i] = av&(1<<uint(i)) != 0   // a0..a7 declared first
		assign[w+i] = bv&(1<<uint(i)) != 0 // then b0..b7
	}
	return assign
}

// checkBinary cross-checks a symbolic binary vector op against a concrete
// reference on random operand values.
func checkBinary(t *testing.T, name string,
	sym func(m *bdd.Manager, a, b Vec) Vec, ref func(a, b uint8) uint8) {
	t.Helper()
	m := bdd.New()
	a, b := operands(m)
	r := sym(m, a, b)
	if r.Width() != w {
		t.Fatalf("%s: result width %d, want %d", name, r.Width(), w)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		av, bv := uint8(rng.Intn(256)), uint8(rng.Intn(256))
		got := uint8(Eval(m, r, assignFor(av, bv)))
		if want := ref(av, bv); got != want {
			t.Fatalf("%s(%d,%d) = %d, want %d", name, av, bv, got, want)
		}
	}
}

func checkPredicate(t *testing.T, name string,
	sym func(m *bdd.Manager, a, b Vec) *bdd.Node, ref func(a, b uint8) bool) {
	t.Helper()
	m := bdd.New()
	a, b := operands(m)
	p := sym(m, a, b)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		av, bv := uint8(rng.Intn(256)), uint8(rng.Intn(256))
		if got, want := m.Eval(p, assignFor(av, bv)), ref(av, bv); got != want {
			t.Fatalf("%s(%d,%d) = %v, want %v", name, av, bv, got, want)
		}
	}
}

func TestAdd(t *testing.T) {
	checkBinary(t, "Add", Add, func(a, b uint8) uint8 { return a + b })
}

func TestSub(t *testing.T) {
	checkBinary(t, "Sub", Sub, func(a, b uint8) uint8 { return a - b })
}

func TestMul(t *testing.T) {
	checkBinary(t, "Mul", Mul, func(a, b uint8) uint8 { return a * b })
}

func TestBitwise(t *testing.T) {
	checkBinary(t, "And", And, func(a, b uint8) uint8 { return a & b })
	checkBinary(t, "Or", Or, func(a, b uint8) uint8 { return a | b })
	checkBinary(t, "Xor", Xor, func(a, b uint8) uint8 { return a ^ b })
}

func TestNotNeg(t *testing.T) {
	checkBinary(t, "Not", func(m *bdd.Manager, a, b Vec) Vec { return Not(m, a) },
		func(a, b uint8) uint8 { return ^a })
	checkBinary(t, "Neg", func(m *bdd.Manager, a, b Vec) Vec { return Neg(m, a) },
		func(a, b uint8) uint8 { return -a })
}

func TestShifts(t *testing.T) {
	for k := 0; k < w; k++ {
		k := k
		checkBinary(t, "Shl", func(m *bdd.Manager, a, b Vec) Vec { return ShlConst(m, a, k) },
			func(a, b uint8) uint8 { return a << uint(k) })
		checkBinary(t, "Shr", func(m *bdd.Manager, a, b Vec) Vec { return ShrConst(m, a, k) },
			func(a, b uint8) uint8 { return a >> uint(k) })
		checkBinary(t, "Ashr", func(m *bdd.Manager, a, b Vec) Vec { return AshrConst(m, a, k) },
			func(a, b uint8) uint8 { return uint8(int8(a) >> uint(k)) })
	}
}

func TestPredicates(t *testing.T) {
	checkPredicate(t, "Eq", Eq, func(a, b uint8) bool { return a == b })
	checkPredicate(t, "Ult", Ult, func(a, b uint8) bool { return a < b })
	checkPredicate(t, "Slt", Slt, func(a, b uint8) bool { return int8(a) < int8(b) })
	checkPredicate(t, "IsZero",
		func(m *bdd.Manager, a, b Vec) *bdd.Node { return IsZero(m, a) },
		func(a, b uint8) bool { return a == 0 })
	checkPredicate(t, "NonZero",
		func(m *bdd.Manager, a, b Vec) *bdd.Node { return NonZero(m, a) },
		func(a, b uint8) bool { return a != 0 })
}

func TestEqConst(t *testing.T) {
	m := bdd.New()
	a := Vars(m, "a", 4)
	p := EqConst(m, a, 5)
	for v := 0; v < 16; v++ {
		assign := make(map[int]bool)
		for i := 0; i < 4; i++ {
			assign[i] = v&(1<<uint(i)) != 0
		}
		if got := m.Eval(p, assign); got != (v == 5) {
			t.Fatalf("EqConst(5) at %d = %v", v, got)
		}
	}
}

func TestConstAndIsConst(t *testing.T) {
	m := bdd.New()
	v := Const(m, 0xA5, 8)
	if val, ok := IsConst(m, v); !ok || val != 0xA5 {
		t.Fatalf("IsConst(Const(0xA5)) = %d,%v", val, ok)
	}
	if _, ok := IsConst(m, Vars(m, "x", 2)); ok {
		t.Fatal("variable vector reported constant")
	}
	// Negative constants wrap in two's complement.
	n := Const(m, -1, 8)
	if val, _ := IsConst(m, n); val != 0xFF {
		t.Fatalf("Const(-1,8) = %#x", val)
	}
}

func TestMux(t *testing.T) {
	m := bdd.New()
	s := m.Var(m.DeclareVar("s"))
	a := Const(m, 0x0F, 8)
	b := Const(m, 0xF0, 8)
	r := Mux(m, s, a, b)
	if got := Eval(m, r, map[int]bool{0: true}); got != 0x0F {
		t.Fatalf("Mux sel=1 = %#x", got)
	}
	if got := Eval(m, r, map[int]bool{0: false}); got != 0xF0 {
		t.Fatalf("Mux sel=0 = %#x", got)
	}
}

func TestSliceConcat(t *testing.T) {
	m := bdd.New()
	v := Const(m, 0xB7, 8) // 1011_0111
	hi := Slice(v, 7, 4)
	lo := Slice(v, 3, 0)
	if val, _ := IsConst(m, hi); val != 0xB {
		t.Fatalf("hi nibble = %#x", val)
	}
	if val, _ := IsConst(m, lo); val != 0x7 {
		t.Fatalf("lo nibble = %#x", val)
	}
	back := Concat(lo, hi)
	if val, _ := IsConst(m, back); val != 0xB7 {
		t.Fatalf("concat = %#x", val)
	}
}

func TestExtend(t *testing.T) {
	m := bdd.New()
	v := Const(m, 0x9, 4) // 1001: negative as signed nibble
	z := ZeroExtend(m, v, 8)
	s := SignExtend(m, v, 8)
	if val, _ := IsConst(m, z); val != 0x09 {
		t.Fatalf("zero extend = %#x", val)
	}
	if val, _ := IsConst(m, s); val != 0xF9 {
		t.Fatalf("sign extend = %#x", val)
	}
	// Truncation path.
	tr := ZeroExtend(m, Const(m, 0x1FF, 9), 8)
	if val, _ := IsConst(m, tr); val != 0xFF {
		t.Fatalf("truncate = %#x", val)
	}
}

func TestTruthAndBool(t *testing.T) {
	m := bdd.New()
	if Truth(m, Vec{}) != m.False() {
		t.Error("Truth of empty vector must be false")
	}
	x := m.Var(0)
	if Truth(m, Bool(x)) != x {
		t.Error("Truth(Bool(x)) != x")
	}
	if Truth(m, Const(m, 2, 2)) != m.False() {
		t.Error("Truth uses bit 0")
	}
}

func TestFromVarRange(t *testing.T) {
	m := bdd.New()
	for i := 0; i < 6; i++ {
		m.DeclareVar("ir" + string(rune('0'+i)))
	}
	v := FromVarRange(m, 2, 3)
	if v.Width() != 3 {
		t.Fatalf("width = %d", v.Width())
	}
	if v[0] != m.Var(2) || v[2] != m.Var(4) {
		t.Fatal("FromVarRange picked wrong variables")
	}
}

// TestAddSubRoundTrip: (a+b)-b == a symbolically (pointer equality per bit).
func TestAddSubRoundTrip(t *testing.T) {
	m := bdd.New()
	a, b := operands(m)
	r := Sub(m, Add(m, a, b), b)
	for i := range a {
		if r[i] != a[i] {
			t.Fatalf("bit %d of (a+b)-b differs from a", i)
		}
	}
}
